module repro

go 1.22

// golang.org/x/tools is pinned by vendoring: the go/analysis subset that
// cmd/dmi-vet builds on lives in third_party/golang.org/x/tools (copied from
// the Go toolchain's own vendored, version-locked copy) and is resolved by
// the replace directive below, so builds are hermetic — no network fetch, no
// @latest drift. See tools.go for the tools-pattern anchor.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e

replace golang.org/x/tools => ./third_party/golang.org/x/tools
