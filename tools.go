//go:build tools

// Package tools anchors build-time tool dependencies in go.mod (the
// standard tools.go pattern): the blank import keeps golang.org/x/tools —
// the go/analysis framework cmd/dmi-vet is built on — in the module graph
// at the version the require/replace pair pins, so `go mod tidy` cannot
// drop it and nothing is installed at a floating @latest. The tools build
// tag is never set; this file only exists to be seen by the module
// resolver.
package repro

import (
	_ "golang.org/x/tools/go/analysis/unitchecker"
)
