package serveproto

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/uia"
	"repro/internal/ung"
)

// TestRipRoundTrip pins the rip wire field names and the expansion
// converters: an in-process ung.Expansion must survive the wire untouched,
// reveal order included, because the coordinator folds it into the graph
// exactly as if the expansion had run locally.
func TestRipRoundTrip(t *testing.T) {
	req := RipRequest{
		Pack: "osworld-w", PackHash: "abc",
		App: "Word", Context: "review",
		Frames: []RipFrame{
			{ID: "btn.bold"},
			{ID: "menu.insert.table", Path: []string{"menu.insert"}},
		},
	}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"app"`, `"context"`, `"frames"`, `"pack"`, `"pack_hash"`, `"id"`, `"path"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("rip request JSON %s lacks %s", data, key)
		}
	}
	back, err := ParseRipRequest(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.App != req.App || back.Context != req.Context || len(back.Frames) != 2 ||
		back.Frames[0].ID != "btn.bold" || len(back.Frames[1].Path) != 1 {
		t.Fatalf("rip request did not survive the round trip: %+v", back)
	}

	exp := ung.Expansion{
		Outcome: ung.ExpandOK,
		Reveals: []ung.Reveal{
			{ID: "dlg.table", Name: "Insert Table", Type: uia.WindowControl, Desc: "table dialog", Parent: "menu.insert.table"},
			{ID: "dlg.table.rows", Name: "Rows", Type: uia.SpinnerControl, LargeEnum: true, Parent: "dlg.table"},
		},
		Clicks: 3, Snapshots: 4, Elapsed: 1500 * time.Millisecond,
	}
	we := FromExpansion(exp)
	data, err = json.Marshal(RipResponse{App: "Word", Context: "review", Results: []RipResult{
		{Status: 200, Expansion: &we},
		{Status: 400, Error: "missing id"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	var resp RipResponse
	if err := json.Unmarshal(data, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 || resp.Results[0].Expansion == nil || resp.Results[1].Status != 400 {
		t.Fatalf("rip response did not survive the round trip: %+v", resp)
	}
	got, err := resp.Results[0].Expansion.Expansion()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, exp) {
		t.Fatalf("expansion changed crossing the wire:\n got %+v\nwant %+v", got, exp)
	}
}

// TestRipOutcomeLabels pins each outcome's wire label and rejects unknown
// labels on decode — a client/replica enum skew must fail loudly, never be
// silently reinterpreted.
func TestRipOutcomeLabels(t *testing.T) {
	cases := []struct {
		outcome ung.ExpandOutcome
		label   string
	}{
		{ung.ExpandOK, RipOutcomeOK},
		{ung.ExpandSkipped, RipOutcomeSkipped},
		{ung.ExpandBlocked, RipOutcomeBlocked},
	}
	for _, c := range cases {
		we := FromExpansion(ung.Expansion{Outcome: c.outcome})
		if we.Outcome != c.label {
			t.Errorf("outcome %v maps to %q, want %q", c.outcome, we.Outcome, c.label)
		}
		back, err := we.Expansion()
		if err != nil {
			t.Errorf("outcome %q did not decode: %v", c.label, err)
		}
		if back.Outcome != c.outcome {
			t.Errorf("outcome %q decoded to %v, want %v", c.label, back.Outcome, c.outcome)
		}
	}
	if _, err := (RipExpansion{Outcome: "exploded"}).Expansion(); err == nil {
		t.Error("unknown outcome label must be a decode error")
	}
}

// TestParseRipRequestRejects pins the envelope-level validation boundary.
func TestParseRipRequestRejects(t *testing.T) {
	frames := func(n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			if i > 0 {
				sb.WriteString(",")
			}
			sb.WriteString(`{"id":"x"}`)
		}
		return sb.String()
	}
	bad := []struct {
		name string
		body string
	}{
		{"garbage", `{"app":`},
		{"missing app", `{"frames":[{"id":"x"}]}`},
		{"no frames", `{"app":"Word"}`},
		{"empty frames", `{"app":"Word","frames":[]}`},
		{"too many frames", `{"app":"Word","frames":[` + frames(MaxRipFrames+1) + `]}`},
	}
	for _, c := range bad {
		if _, err := ParseRipRequest([]byte(c.body)); err == nil {
			t.Errorf("%s: want an envelope error, got none", c.name)
		}
	}
	if _, err := ParseRipRequest([]byte(`{"app":"Word","frames":[` + frames(MaxRipFrames) + `]}`)); err != nil {
		t.Errorf("a full envelope must parse: %v", err)
	}
}

// TestValidateRipFrame pins the per-frame validation the handler answers
// frame-by-frame (so one defective frame does not reject its envelope).
func TestValidateRipFrame(t *testing.T) {
	if err := ValidateRipFrame(RipFrame{ID: "x", Path: []string{"a", "b"}}); err != nil {
		t.Errorf("valid frame rejected: %v", err)
	}
	if err := ValidateRipFrame(RipFrame{}); err == nil {
		t.Error("empty id must be rejected")
	}
	if err := ValidateRipFrame(RipFrame{ID: "x", Path: []string{"a", ""}}); err == nil {
		t.Error("empty path step must be rejected")
	}
	long := make([]string, MaxRipPath+1)
	for i := range long {
		long[i] = "a"
	}
	if err := ValidateRipFrame(RipFrame{ID: "x", Path: long}); err == nil {
		t.Error("overlong path must be rejected")
	}
	if err := ValidateRipFrame(RipFrame{ID: "x", Path: long[1:]}); err != nil {
		t.Errorf("path at the limit must pass: %v", err)
	}
}

// TestRipRequestBytes pins the scaled body cap, clamped like the cell batch
// cap.
func TestRipRequestBytes(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{
		{0, MaxRequestBytes},
		{-3, MaxRequestBytes},
		{1, MaxRequestBytes},
		{8, 8 * MaxRequestBytes},
		{MaxRipFrames, MaxRipFrames * MaxRequestBytes},
		{MaxRipFrames + 1, MaxRipFrames * MaxRequestBytes},
	}
	for _, c := range cases {
		if got := RipRequestBytes(c.n); got != c.want {
			t.Errorf("RipRequestBytes(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

// TestRawRipResponseMirror pins RawRipResponse to RipResponse the way every
// raw view is pinned: same fields, same order, same json tags, with only
// the Results payload type differing.
func TestRawRipResponseMirror(t *testing.T) {
	full := reflect.TypeOf(RipResponse{})
	raw := reflect.TypeOf(RawRipResponse{})
	if full.NumField() != raw.NumField() {
		t.Fatalf("RipResponse has %d fields, RawRipResponse %d", full.NumField(), raw.NumField())
	}
	for i := 0; i < full.NumField(); i++ {
		f, r := full.Field(i), raw.Field(i)
		if f.Name != r.Name || f.Tag.Get("json") != r.Tag.Get("json") {
			t.Errorf("field %d diverges: %s `%s` vs %s `%s`", i, f.Name, f.Tag, r.Name, r.Tag)
		}
		if f.Name != "Results" && f.Type != r.Type {
			t.Errorf("field %s type diverges: %s vs %s", f.Name, f.Type, r.Type)
		}
	}
	if raw.Field(raw.NumField()-1).Type != reflect.TypeOf(json.RawMessage{}) {
		t.Errorf("RawRipResponse.Results must be json.RawMessage")
	}
}

// TestRawRipResultMirror pins the per-frame raw view the same way.
func TestRawRipResultMirror(t *testing.T) {
	full := reflect.TypeOf(RipResult{})
	raw := reflect.TypeOf(RawRipResult{})
	if full.NumField() != raw.NumField() {
		t.Fatalf("RipResult has %d fields, RawRipResult %d", full.NumField(), raw.NumField())
	}
	for i := 0; i < full.NumField(); i++ {
		f, r := full.Field(i), raw.Field(i)
		if f.Name != r.Name || f.Tag.Get("json") != r.Tag.Get("json") {
			t.Errorf("field %d diverges: %s `%s` vs %s `%s`", i, f.Name, f.Tag, r.Name, r.Tag)
		}
		if f.Name != "Expansion" && f.Type != r.Type {
			t.Errorf("field %s type diverges: %s vs %s", f.Name, f.Type, r.Type)
		}
	}
	if raw.Field(raw.NumField()-1).Type != reflect.TypeOf(json.RawMessage{}) {
		t.Errorf("RawRipResult.Expansion must be json.RawMessage")
	}
}
