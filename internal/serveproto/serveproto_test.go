package serveproto

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/modelstore"
)

// TestSessionRoundTrip pins the wire field names: the daemon and the
// coordinator are compiled against these structs, and external clients are
// written against the JSON keys.
func TestSessionRoundTrip(t *testing.T) {
	req := SessionRequest{App: "Word", Task: "word-1", Setting: "GUI+DMI / GPT-5 / Medium", Runs: 3}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"app"`, `"task"`, `"setting"`, `"runs"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("request JSON %s lacks %s", data, key)
		}
	}
	var back SessionRequest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != req {
		t.Fatalf("round trip changed the request: %+v != %+v", back, req)
	}

	resp := SessionResponse{App: "Word", Task: "word-1", Setting: req.Setting, Runs: 1,
		Outcomes: []agent.Outcome{{Task: "word-1", Success: true, Steps: 4}}}
	data, err = json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var respBack SessionResponse
	if err := json.Unmarshal(data, &respBack); err != nil {
		t.Fatal(err)
	}
	if len(respBack.Outcomes) != 1 || respBack.Outcomes[0] != resp.Outcomes[0] {
		t.Fatalf("outcomes did not survive the round trip: %+v", respBack)
	}
}

// TestRawSessionResponseMirror pins RawSessionResponse to SessionResponse:
// same fields, same order, same json tags — only the Outcomes payload type
// differs (raw bytes for byte-level comparisons). A field added to one but
// not the other is a wire drift, which is exactly what the raw view exists
// to catch.
func TestRawSessionResponseMirror(t *testing.T) {
	full := reflect.TypeOf(SessionResponse{})
	raw := reflect.TypeOf(RawSessionResponse{})
	if full.NumField() != raw.NumField() {
		t.Fatalf("SessionResponse has %d fields, RawSessionResponse %d", full.NumField(), raw.NumField())
	}
	for i := 0; i < full.NumField(); i++ {
		f, r := full.Field(i), raw.Field(i)
		if f.Name != r.Name || f.Tag.Get("json") != r.Tag.Get("json") {
			t.Errorf("field %d diverges: %s `%s` vs %s `%s`", i, f.Name, f.Tag, r.Name, r.Tag)
		}
		if f.Name != "Outcomes" && f.Type != r.Type {
			t.Errorf("field %s type diverges: %s vs %s", f.Name, f.Type, r.Type)
		}
	}
	if raw.Field(raw.NumField()-1).Type != reflect.TypeOf(json.RawMessage{}) {
		t.Errorf("RawSessionResponse.Outcomes must be json.RawMessage")
	}
}

// TestRawBatchResponseMirror pins RawBatchResponse to BatchResponse the
// same way the session raw view is pinned: same fields, same order, same
// json tags, with only the Results payload type differing.
func TestRawBatchResponseMirror(t *testing.T) {
	full := reflect.TypeOf(BatchResponse{})
	raw := reflect.TypeOf(RawBatchResponse{})
	if full.NumField() != raw.NumField() {
		t.Fatalf("BatchResponse has %d fields, RawBatchResponse %d", full.NumField(), raw.NumField())
	}
	for i := 0; i < full.NumField(); i++ {
		f, r := full.Field(i), raw.Field(i)
		if f.Name != r.Name || f.Tag.Get("json") != r.Tag.Get("json") {
			t.Errorf("field %d diverges: %s `%s` vs %s `%s`", i, f.Name, f.Tag, r.Name, r.Tag)
		}
		if f.Name != "Results" && f.Type != r.Type {
			t.Errorf("field %s type diverges: %s vs %s", f.Name, f.Type, r.Type)
		}
	}
	if raw.Field(raw.NumField()-1).Type != reflect.TypeOf(json.RawMessage{}) {
		t.Errorf("RawBatchResponse.Results must be json.RawMessage")
	}
}

// TestRawBatchCellResultMirror pins the per-cell raw view the same way.
func TestRawBatchCellResultMirror(t *testing.T) {
	full := reflect.TypeOf(BatchCellResult{})
	raw := reflect.TypeOf(RawBatchCellResult{})
	if full.NumField() != raw.NumField() {
		t.Fatalf("BatchCellResult has %d fields, RawBatchCellResult %d", full.NumField(), raw.NumField())
	}
	for i := 0; i < full.NumField(); i++ {
		f, r := full.Field(i), raw.Field(i)
		if f.Name != r.Name || f.Tag.Get("json") != r.Tag.Get("json") {
			t.Errorf("field %d diverges: %s `%s` vs %s `%s`", i, f.Name, f.Tag, r.Name, r.Tag)
		}
		if f.Name != "Response" && f.Type != r.Type {
			t.Errorf("field %s type diverges: %s vs %s", f.Name, f.Type, r.Type)
		}
	}
	if raw.Field(raw.NumField()-1).Type != reflect.TypeOf(json.RawMessage{}) {
		t.Errorf("RawBatchCellResult.Response must be json.RawMessage")
	}
}

func TestBatchRoundTrip(t *testing.T) {
	req := BatchRequest{Pack: "osworld-w", PackHash: "abc", Cells: []SessionRequest{
		{App: "Word", Task: "word-1", Setting: "GUI+DMI / GPT-5 / Medium", Runs: 2},
		{Task: "files-3", Setting: "GUI / GPT-5 / Medium", Runs: 1},
	}}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"cells"`, `"pack"`, `"pack_hash"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("batch request JSON %s lacks %s", data, key)
		}
	}
	var back BatchRequest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != 2 || back.Cells[0] != req.Cells[0] || back.Cells[1] != req.Cells[1] {
		t.Fatalf("cells did not survive the round trip: %+v", back)
	}

	resp := BatchResponse{Results: []BatchCellResult{
		{Status: 200, Response: &SessionResponse{Task: "word-1", Runs: 1,
			Outcomes: []agent.Outcome{{Task: "word-1", Success: true}}}},
		{Status: 404, Error: "unknown cell"},
	}}
	data, err = json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var respBack BatchResponse
	if err := json.Unmarshal(data, &respBack); err != nil {
		t.Fatal(err)
	}
	if len(respBack.Results) != 2 || respBack.Results[1].Status != 404 ||
		respBack.Results[0].Response == nil || len(respBack.Results[0].Response.Outcomes) != 1 {
		t.Fatalf("results did not survive the round trip: %+v", respBack)
	}
}

// TestBatchRequestBytes pins the scaled body cap: the declared batch size
// multiplies the per-session cap, clamped to [1, MaxBatchCells] so neither
// a zero declaration nor an absurd one escapes the bound.
func TestBatchRequestBytes(t *testing.T) {
	cases := []struct {
		n    int
		want int64
	}{
		{0, MaxRequestBytes},
		{-5, MaxRequestBytes},
		{1, MaxRequestBytes},
		{16, 16 * MaxRequestBytes},
		{MaxBatchCells, MaxBatchCells * MaxRequestBytes},
		{MaxBatchCells + 1, MaxBatchCells * MaxRequestBytes},
		{1 << 30, MaxBatchCells * MaxRequestBytes},
	}
	for _, c := range cases {
		if got := BatchRequestBytes(c.n); got != c.want {
			t.Errorf("BatchRequestBytes(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestHitRatio(t *testing.T) {
	if r := HitRatio(modelstore.Stats{}); r != 0 {
		t.Errorf("zero traffic should have ratio 0, got %v", r)
	}
	if r := HitRatio(modelstore.Stats{Hits: 3, Misses: 1}); r != 0.75 {
		t.Errorf("3 hits / 1 miss should be 0.75, got %v", r)
	}
}
