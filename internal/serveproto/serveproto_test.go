package serveproto

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/agent"
	"repro/internal/modelstore"
)

// TestSessionRoundTrip pins the wire field names: the daemon and the
// coordinator are compiled against these structs, and external clients are
// written against the JSON keys.
func TestSessionRoundTrip(t *testing.T) {
	req := SessionRequest{App: "Word", Task: "word-1", Setting: "GUI+DMI / GPT-5 / Medium", Runs: 3}
	data, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"app"`, `"task"`, `"setting"`, `"runs"`} {
		if !strings.Contains(string(data), key) {
			t.Errorf("request JSON %s lacks %s", data, key)
		}
	}
	var back SessionRequest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != req {
		t.Fatalf("round trip changed the request: %+v != %+v", back, req)
	}

	resp := SessionResponse{App: "Word", Task: "word-1", Setting: req.Setting, Runs: 1,
		Outcomes: []agent.Outcome{{Task: "word-1", Success: true, Steps: 4}}}
	data, err = json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var respBack SessionResponse
	if err := json.Unmarshal(data, &respBack); err != nil {
		t.Fatal(err)
	}
	if len(respBack.Outcomes) != 1 || respBack.Outcomes[0] != resp.Outcomes[0] {
		t.Fatalf("outcomes did not survive the round trip: %+v", respBack)
	}
}

// TestRawSessionResponseMirror pins RawSessionResponse to SessionResponse:
// same fields, same order, same json tags — only the Outcomes payload type
// differs (raw bytes for byte-level comparisons). A field added to one but
// not the other is a wire drift, which is exactly what the raw view exists
// to catch.
func TestRawSessionResponseMirror(t *testing.T) {
	full := reflect.TypeOf(SessionResponse{})
	raw := reflect.TypeOf(RawSessionResponse{})
	if full.NumField() != raw.NumField() {
		t.Fatalf("SessionResponse has %d fields, RawSessionResponse %d", full.NumField(), raw.NumField())
	}
	for i := 0; i < full.NumField(); i++ {
		f, r := full.Field(i), raw.Field(i)
		if f.Name != r.Name || f.Tag.Get("json") != r.Tag.Get("json") {
			t.Errorf("field %d diverges: %s `%s` vs %s `%s`", i, f.Name, f.Tag, r.Name, r.Tag)
		}
		if f.Name != "Outcomes" && f.Type != r.Type {
			t.Errorf("field %s type diverges: %s vs %s", f.Name, f.Type, r.Type)
		}
	}
	if raw.Field(raw.NumField()-1).Type != reflect.TypeOf(json.RawMessage{}) {
		t.Errorf("RawSessionResponse.Outcomes must be json.RawMessage")
	}
}

func TestHitRatio(t *testing.T) {
	if r := HitRatio(modelstore.Stats{}); r != 0 {
		t.Errorf("zero traffic should have ratio 0, got %v", r)
	}
	if r := HitRatio(modelstore.Stats{Hits: 3, Misses: 1}); r != 0.75 {
		t.Errorf("3 hits / 1 miss should be 0.75, got %v", r)
	}
}
