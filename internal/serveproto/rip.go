package serveproto

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/uia"
	"repro/internal/ung"
)

// MaxRipFrames bounds one POST /v1/rip request. Like a cell batch, a rip
// envelope is a transport optimization: the coordinator coalesces whatever
// frames are stacked, and the cap keeps one envelope from pinning a replica
// for an unbounded stretch.
const MaxRipFrames = 64

// MaxRipPath bounds one frame's click path. Rip depth is capped at 10 by
// default and the hard ceiling leaves generous headroom; anything longer is
// a malformed request, not a deep exploration.
const MaxRipPath = 64

// RipBatchHeader declares a rip request's frame count ahead of the body, so
// the daemon can size its MaxBytesReader before reading a byte (the /v1/cells
// BatchSizeHeader pattern).
const RipBatchHeader = "Dmi-Rip-Frames"

// RipRequestBytes is the body cap for a POST /v1/rip declaring n frames:
// the single-session cap scaled by the declared frame count, clamped to
// [1, MaxRipFrames]. A frame is an id plus a click path of ids — far below
// the per-frame allowance — so a legitimate full envelope always fits.
func RipRequestBytes(n int) int64 {
	if n < 1 {
		n = 1
	}
	if n > MaxRipFrames {
		n = MaxRipFrames
	}
	return int64(n) * MaxRequestBytes
}

// RipFrame is one pending exploration shipped to a replica: activate the
// control after replaying the click path that made it visible. It mirrors
// ung.Frame on the wire.
type RipFrame struct {
	ID   string   `json:"id"`
	Path []string `json:"path,omitempty"`
}

// RipRequest is POST /v1/rip: expand up to MaxRipFrames frames of one
// application context on the replica's own instance pool. The pack handshake
// is request-level like a cell batch (one Pack/PackHash pair per envelope)
// because a rip never mixes packs; a mismatch rejects the envelope with 409
// and a PackMismatch body. Expansion is a pure function of
// (app, context, frame) — replaying a request on any replica, or on the same
// replica twice, yields the same bytes, which is the entire failure-handling
// story for distributed rip: re-dispatch after a mid-rip replica death needs
// no deduplication, fencing, or sequencing.
type RipRequest struct {
	Pack     string     `json:"pack,omitempty"`
	PackHash string     `json:"pack_hash,omitempty"`
	App      string     `json:"app"`
	Context  string     `json:"context,omitempty"`
	Frames   []RipFrame `json:"frames"`
}

// Rip outcome labels on the wire, mirroring ung.ExpandOutcome. Strings, not
// ints: a skew between client and replica enum values must be a decode
// error, not a silently reinterpreted outcome.
const (
	RipOutcomeOK      = "ok"
	RipOutcomeSkipped = "skipped"
	RipOutcomeBlocked = "blocked"
)

// RipReveal is one newly revealed control within an expansion, mirroring
// ung.Reveal on the wire. Type uses the numeric uia.ControlType encoding the
// graph snapshot codec already commits to.
type RipReveal struct {
	ID        string          `json:"id"`
	Name      string          `json:"name,omitempty"`
	Type      uia.ControlType `json:"type"`
	Desc      string          `json:"desc,omitempty"`
	LargeEnum bool            `json:"large_enum,omitempty"`
	Parent    string          `json:"parent"`
}

// RipExpansion is one frame's differential capture, mirroring ung.Expansion.
// SimNanos is the expansion's simulated-clock cost on the replica instance,
// so the coordinator can report per-replica modeling time.
type RipExpansion struct {
	Outcome   string      `json:"outcome"`
	Reveals   []RipReveal `json:"reveals,omitempty"`
	Clicks    int         `json:"clicks"`
	Snapshots int         `json:"snapshots"`
	SimNanos  int64       `json:"sim_nanos"`
}

// FromExpansion converts an in-process expansion to its wire form.
func FromExpansion(exp ung.Expansion) RipExpansion {
	we := RipExpansion{
		Clicks:    exp.Clicks,
		Snapshots: exp.Snapshots,
		SimNanos:  int64(exp.Elapsed),
	}
	switch exp.Outcome {
	case ung.ExpandSkipped:
		we.Outcome = RipOutcomeSkipped
	case ung.ExpandBlocked:
		we.Outcome = RipOutcomeBlocked
	default:
		we.Outcome = RipOutcomeOK
	}
	for _, r := range exp.Reveals {
		we.Reveals = append(we.Reveals, RipReveal{
			ID:        r.ID,
			Name:      r.Name,
			Type:      r.Type,
			Desc:      r.Desc,
			LargeEnum: r.LargeEnum,
			Parent:    r.Parent,
		})
	}
	return we
}

// Expansion converts the wire form back for the coordinator's apply loop.
// An unknown outcome label is a protocol skew and decodes to an error — the
// dispatcher treats it like any other malformed response (replica failure,
// frame re-dispatched elsewhere).
func (we RipExpansion) Expansion() (ung.Expansion, error) {
	exp := ung.Expansion{
		Clicks:    we.Clicks,
		Snapshots: we.Snapshots,
		Elapsed:   time.Duration(we.SimNanos),
	}
	switch we.Outcome {
	case RipOutcomeOK:
		exp.Outcome = ung.ExpandOK
	case RipOutcomeSkipped:
		exp.Outcome = ung.ExpandSkipped
	case RipOutcomeBlocked:
		exp.Outcome = ung.ExpandBlocked
	default:
		return ung.Expansion{}, fmt.Errorf("serveproto: unknown rip outcome %q", we.Outcome)
	}
	for _, r := range we.Reveals {
		exp.Reveals = append(exp.Reveals, ung.Reveal{
			ID:        r.ID,
			Name:      r.Name,
			Type:      r.Type,
			Desc:      r.Desc,
			LargeEnum: r.LargeEnum,
			Parent:    r.Parent,
		})
	}
	return exp, nil
}

// RipResult is one frame's result within a rip response. Frames fail
// independently: Status carries the HTTP status the frame would have gotten
// alone (200, 400, ...), with Error naming the rejection, so one malformed
// frame does not poison its envelope-mates.
type RipResult struct {
	Status    int           `json:"status"`
	Error     string        `json:"error,omitempty"`
	Expansion *RipExpansion `json:"expansion,omitempty"`
}

// RipResponse answers POST /v1/rip with one result per requested frame, in
// request order.
type RipResponse struct {
	App     string      `json:"app"`
	Context string      `json:"context,omitempty"`
	Results []RipResult `json:"results"`
}

// RawRipResponse is RipResponse with the results left as raw bytes, for
// byte-equivalence tests over the rip surface. It must mirror RipResponse
// field for field (asserted by TestRawRipResponseMirror and the wiredrift
// analyzer's raw-mirror check).
type RawRipResponse struct {
	App     string          `json:"app"`
	Context string          `json:"context,omitempty"`
	Results json.RawMessage `json:"results"`
}

// RawRipResult is RipResult with the expansion left as raw bytes, the
// second hop of a rip byte-equivalence decode. Mirror-pinned to RipResult
// like the other raw views.
type RawRipResult struct {
	Status    int             `json:"status"`
	Error     string          `json:"error,omitempty"`
	Expansion json.RawMessage `json:"expansion,omitempty"`
}

// ParseRipRequest decodes and validates a POST /v1/rip envelope. Envelope
// errors (unparseable body, missing app, no frames, too many frames) reject
// the whole request; per-frame defects are the handler's business via
// ValidateRipFrame, answered frame-by-frame so the rest of the envelope
// still runs. This is the distributed rip's input boundary and the
// FuzzRipRequestDecode target.
func ParseRipRequest(data []byte) (RipRequest, error) {
	var req RipRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return RipRequest{}, fmt.Errorf("serveproto: rip request: %w", err)
	}
	if req.App == "" {
		return RipRequest{}, fmt.Errorf("serveproto: rip request: missing app")
	}
	if len(req.Frames) == 0 {
		return RipRequest{}, fmt.Errorf("serveproto: rip request: no frames")
	}
	if len(req.Frames) > MaxRipFrames {
		return RipRequest{}, fmt.Errorf("serveproto: rip request: %d frames exceeds limit %d", len(req.Frames), MaxRipFrames)
	}
	return req, nil
}

// ValidateRipFrame checks one frame's shape: a non-empty control id and a
// click path within MaxRipPath, every step non-empty.
func ValidateRipFrame(f RipFrame) error {
	if f.ID == "" {
		return fmt.Errorf("serveproto: rip frame: missing id")
	}
	if len(f.Path) > MaxRipPath {
		return fmt.Errorf("serveproto: rip frame %q: path length %d exceeds limit %d", f.ID, len(f.Path), MaxRipPath)
	}
	for i, step := range f.Path {
		if step == "" {
			return fmt.Errorf("serveproto: rip frame %q: empty path step %d", f.ID, i)
		}
	}
	return nil
}
