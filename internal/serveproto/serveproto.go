// Package serveproto is the wire protocol of the distributed serving tier:
// the request/response types the dmi-serve daemon answers on POST /session
// and GET /stats, shared with the bench.RemoteDispatcher that shards grid
// cells across replicas and with the dmi-coord coordinator that scrapes
// replica stats. Promoting the types out of cmd/dmi-serve is what keeps the
// daemon and its clients from drifting: both sides compile against the same
// structs, so a field rename is a build break, not a silent protocol skew.
//
// The protocol is deliberately tiny. A session request names one evaluation
// grid cell — the task (which implies the app), the matrix setting by its
// Table 3 label, and the repetition count — and the response carries the
// cell's outcomes. Sessions are stateless, pure functions of
// (model, task, setting, run): the RNG stream is derived from those
// coordinates alone, so replaying a request on any replica yields the same
// bytes. That idempotency is the entire failure-handling story — a
// coordinator may re-dispatch a failed cell to another replica without
// deduplication, fencing, or sequencing.
package serveproto

import (
	"encoding/json"

	"repro/internal/agent"
	"repro/internal/modelstore"
)

// MaxRuns bounds one request's repetitions so a typo cannot park a worker
// pool on a single cell indefinitely.
const MaxRuns = 100

// MaxRequestBytes caps a POST /session body. A session request is a few
// short strings; daemons refuse to buffer more and answer 413.
const MaxRequestBytes = 1 << 16

// ProtoV1 is the current wire protocol generation, reported in
// Health.Proto. Generation 1 is the versioned /v1/* route set with the
// batch endpoint; a replica that omits the field (zero) speaks only the
// legacy unversioned routes.
const ProtoV1 = 1

// MaxBatchCells bounds one POST /v1/cells request. A batch is a transport
// optimization, not a work queue: a coordinator coalesces at most a few
// dozen cells per call, and the cap keeps a single request from pinning a
// replica's worker pool for an unbounded stretch.
const MaxBatchCells = 64

// BatchRequestBytes is the body cap for a POST /v1/cells declaring n cells:
// the per-session cap scaled by the declared batch size (clamped to
// [1, MaxBatchCells]). Scaling by the declared size instead of capping flat
// is what lets a full batch of maximum-size cell requests through while
// still bounding what a replica will buffer. Clients declare n in the
// BatchSizeHeader; a missing or malformed declaration gets the single-cell
// cap.
func BatchRequestBytes(n int) int64 {
	if n < 1 {
		n = 1
	}
	if n > MaxBatchCells {
		n = MaxBatchCells
	}
	return int64(n) * MaxRequestBytes
}

// BatchSizeHeader declares a batch request's cell count ahead of the body,
// so the daemon can size its MaxBytesReader before reading a byte.
const BatchSizeHeader = "Dmi-Batch-Cells"

// SessionRequest selects one grid cell. App is optional; when set it must
// match the task's application (a cheap cross-check that the caller and the
// replica agree on the catalog). Pack and PackHash optionally name the task
// pack the caller resolves cells against (see internal/taskpack); a replica
// serving a different pack answers 409 with a PackMismatch body instead of
// running the cell against different task content. Empty values skip the
// handshake.
type SessionRequest struct {
	App      string `json:"app"`
	Task     string `json:"task"`
	Setting  string `json:"setting"`
	Runs     int    `json:"runs"`
	Pack     string `json:"pack,omitempty"`
	PackHash string `json:"pack_hash,omitempty"`
}

// SessionResponse echoes the resolved cell and carries its outcomes in run
// order — exactly the slice the in-process bench.Run produces for the same
// cell. Pack and PackHash identify the pack the replica served the cell
// from.
type SessionResponse struct {
	App      string          `json:"app"`
	Task     string          `json:"task"`
	Setting  string          `json:"setting"`
	Runs     int             `json:"runs"`
	Pack     string          `json:"pack,omitempty"`
	PackHash string          `json:"pack_hash,omitempty"`
	Outcomes []agent.Outcome `json:"outcomes"`
}

// RawSessionResponse is SessionResponse with the outcomes left as raw
// bytes: the view byte-equivalence tests decode into, so a daemon's exact
// outcome encoding can be compared against a reference without a
// decode/re-encode round trip hiding a drift. It must mirror
// SessionResponse field for field (asserted by TestRawSessionResponseMirror).
type RawSessionResponse struct {
	App      string          `json:"app"`
	Task     string          `json:"task"`
	Setting  string          `json:"setting"`
	Runs     int             `json:"runs"`
	Pack     string          `json:"pack,omitempty"`
	PackHash string          `json:"pack_hash,omitempty"`
	Outcomes json.RawMessage `json:"outcomes"`
}

// BatchRequest is POST /v1/cells: up to MaxBatchCells session requests in
// one HTTP call, amortizing per-call overhead at high cell rates. The pack
// handshake stays request-level (one Pack/PackHash pair for the whole
// batch) because a coordinator never mixes packs within a run; a mismatch
// rejects the batch with 409 exactly like a single session.
type BatchRequest struct {
	Pack     string           `json:"pack,omitempty"`
	PackHash string           `json:"pack_hash,omitempty"`
	Cells    []SessionRequest `json:"cells"`
}

// BatchCellResult is one cell's outcome within a batch response. Cells fail
// independently: Status carries the HTTP status the cell would have gotten
// as a single POST /session (200, 400, 404, ...), with Error naming the
// rejection, so one bad cell does not poison its batch-mates.
type BatchCellResult struct {
	Status   int              `json:"status"`
	Error    string           `json:"error,omitempty"`
	Response *SessionResponse `json:"response,omitempty"`
}

// BatchResponse answers POST /v1/cells with one result per requested cell,
// in request order. Pack and PackHash identify the pack the replica served
// the batch from.
type BatchResponse struct {
	Pack     string            `json:"pack,omitempty"`
	PackHash string            `json:"pack_hash,omitempty"`
	Results  []BatchCellResult `json:"results"`
}

// RawBatchResponse is BatchResponse with the results left as raw bytes, for
// byte-equivalence tests over the batch surface. It must mirror
// BatchResponse field for field (asserted by TestRawBatchResponseMirror and
// the wiredrift analyzer's raw-mirror check).
type RawBatchResponse struct {
	Pack     string          `json:"pack,omitempty"`
	PackHash string          `json:"pack_hash,omitempty"`
	Results  json.RawMessage `json:"results"`
}

// RawBatchCellResult is BatchCellResult with the response left as raw
// bytes, the second hop of a batch byte-equivalence decode (RawBatchResponse
// holds the result array, this holds one cell's response). Mirror-pinned to
// BatchCellResult like the other raw views.
type RawBatchCellResult struct {
	Status   int             `json:"status"`
	Error    string          `json:"error,omitempty"`
	Response json.RawMessage `json:"response,omitempty"`
}

// PackMismatch is the body of a 409 session rejection: the replica is
// healthy but serves a different task pack than the request names. Want is
// the requester's pack, Have is the replica's.
type PackMismatch struct {
	WantPack string `json:"want_pack"`
	WantHash string `json:"want_hash"`
	HavePack string `json:"have_pack"`
	HaveHash string `json:"have_hash"`
}

// StatsResponse is GET /stats: serving totals plus the model store's
// warm-serving counters.
type StatsResponse struct {
	Sessions int64 `json:"sessions"`
	Runs     int64 `json:"runs"`
	InFlight int64 `json:"in_flight"`
	// Expansions counts frames expanded for POST /v1/rip — the replica-side
	// ledger of distributed-rip work (omitted when the replica has done
	// none, which keeps pre-rip consumers byte-stable).
	Expansions   int64            `json:"expansions,omitempty"`
	Store        modelstore.Stats `json:"store"`
	WarmHitRatio float64          `json:"warm_hit_ratio"`
	BudgetBytes  int64            `json:"budget_bytes"`
	CoreTokens   map[string]int   `json:"core_tokens"`
}

// Health is GET /healthz: readiness, the catalog size the replica
// prewarmed, and the identity of the task pack it serves — so a coordinator
// can refuse to start a run against mismatched replicas before dispatching
// anything.
type Health struct {
	OK   bool `json:"ok"`
	Apps int  `json:"apps"`
	// Proto is the wire protocol generation (ProtoV1 for the /v1 route
	// set). Zero means a pre-versioning replica that answers only the
	// legacy unversioned routes.
	Proto    int    `json:"proto,omitempty"`
	Pack     string `json:"pack,omitempty"`
	PackHash string `json:"pack_hash,omitempty"`
	// Instance identifies this daemon process (a random id drawn at
	// startup), so a health prober can tell a replica that blipped from one
	// that was killed and restarted — the instance changes on restart.
	Instance string `json:"instance,omitempty"`
}

// HitRatio is the fraction of store lookups served without a build.
func HitRatio(st modelstore.Stats) float64 {
	if st.Hits+st.Misses == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Hits+st.Misses)
}
