// Package serveproto is the wire protocol of the distributed serving tier:
// the request/response types the dmi-serve daemon answers on POST /session
// and GET /stats, shared with the bench.RemoteDispatcher that shards grid
// cells across replicas and with the dmi-coord coordinator that scrapes
// replica stats. Promoting the types out of cmd/dmi-serve is what keeps the
// daemon and its clients from drifting: both sides compile against the same
// structs, so a field rename is a build break, not a silent protocol skew.
//
// The protocol is deliberately tiny. A session request names one evaluation
// grid cell — the task (which implies the app), the matrix setting by its
// Table 3 label, and the repetition count — and the response carries the
// cell's outcomes. Sessions are stateless, pure functions of
// (model, task, setting, run): the RNG stream is derived from those
// coordinates alone, so replaying a request on any replica yields the same
// bytes. That idempotency is the entire failure-handling story — a
// coordinator may re-dispatch a failed cell to another replica without
// deduplication, fencing, or sequencing.
package serveproto

import (
	"encoding/json"

	"repro/internal/agent"
	"repro/internal/modelstore"
)

// MaxRuns bounds one request's repetitions so a typo cannot park a worker
// pool on a single cell indefinitely.
const MaxRuns = 100

// MaxRequestBytes caps a POST /session body. A session request is a few
// short strings; daemons refuse to buffer more and answer 413.
const MaxRequestBytes = 1 << 16

// SessionRequest selects one grid cell. App is optional; when set it must
// match the task's application (a cheap cross-check that the caller and the
// replica agree on the catalog). Pack and PackHash optionally name the task
// pack the caller resolves cells against (see internal/taskpack); a replica
// serving a different pack answers 409 with a PackMismatch body instead of
// running the cell against different task content. Empty values skip the
// handshake.
type SessionRequest struct {
	App      string `json:"app"`
	Task     string `json:"task"`
	Setting  string `json:"setting"`
	Runs     int    `json:"runs"`
	Pack     string `json:"pack,omitempty"`
	PackHash string `json:"pack_hash,omitempty"`
}

// SessionResponse echoes the resolved cell and carries its outcomes in run
// order — exactly the slice the in-process bench.Run produces for the same
// cell. Pack and PackHash identify the pack the replica served the cell
// from.
type SessionResponse struct {
	App      string          `json:"app"`
	Task     string          `json:"task"`
	Setting  string          `json:"setting"`
	Runs     int             `json:"runs"`
	Pack     string          `json:"pack,omitempty"`
	PackHash string          `json:"pack_hash,omitempty"`
	Outcomes []agent.Outcome `json:"outcomes"`
}

// RawSessionResponse is SessionResponse with the outcomes left as raw
// bytes: the view byte-equivalence tests decode into, so a daemon's exact
// outcome encoding can be compared against a reference without a
// decode/re-encode round trip hiding a drift. It must mirror
// SessionResponse field for field (asserted by TestRawSessionResponseMirror).
type RawSessionResponse struct {
	App      string          `json:"app"`
	Task     string          `json:"task"`
	Setting  string          `json:"setting"`
	Runs     int             `json:"runs"`
	Pack     string          `json:"pack,omitempty"`
	PackHash string          `json:"pack_hash,omitempty"`
	Outcomes json.RawMessage `json:"outcomes"`
}

// PackMismatch is the body of a 409 session rejection: the replica is
// healthy but serves a different task pack than the request names. Want is
// the requester's pack, Have is the replica's.
type PackMismatch struct {
	WantPack string `json:"want_pack"`
	WantHash string `json:"want_hash"`
	HavePack string `json:"have_pack"`
	HaveHash string `json:"have_hash"`
}

// StatsResponse is GET /stats: serving totals plus the model store's
// warm-serving counters.
type StatsResponse struct {
	Sessions     int64            `json:"sessions"`
	Runs         int64            `json:"runs"`
	InFlight     int64            `json:"in_flight"`
	Store        modelstore.Stats `json:"store"`
	WarmHitRatio float64          `json:"warm_hit_ratio"`
	BudgetBytes  int64            `json:"budget_bytes"`
	CoreTokens   map[string]int   `json:"core_tokens"`
}

// Health is GET /healthz: readiness, the catalog size the replica
// prewarmed, and the identity of the task pack it serves — so a coordinator
// can refuse to start a run against mismatched replicas before dispatching
// anything.
type Health struct {
	OK       bool   `json:"ok"`
	Apps     int    `json:"apps"`
	Pack     string `json:"pack,omitempty"`
	PackHash string `json:"pack_hash,omitempty"`
	// Instance identifies this daemon process (a random id drawn at
	// startup), so a health prober can tell a replica that blipped from one
	// that was killed and restarted — the instance changes on restart.
	Instance string `json:"instance,omitempty"`
}

// HitRatio is the fraction of store lookups served without a build.
func HitRatio(st modelstore.Stats) float64 {
	if st.Hits+st.Misses == 0 {
		return 0
	}
	return float64(st.Hits) / float64(st.Hits+st.Misses)
}
