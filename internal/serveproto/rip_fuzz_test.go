package serveproto

import (
	"bytes"
	"encoding/json"
	"testing"
)

// FuzzRipRequestDecode hardens the distributed rip's input boundary:
// ParseRipRequest must never panic on hostile bodies, anything it accepts
// must satisfy the envelope invariants it promises the handler (non-empty
// app, 1..MaxRipFrames frames), and an accepted request must be a marshal
// fixed point — re-encoding and re-parsing yields the same bytes, so no
// information is invented or lost crossing the boundary. The committed
// corpus under testdata/fuzz/FuzzRipRequestDecode is replayed by plain
// `go test`; the nightly fuzz job explores beyond it.
func FuzzRipRequestDecode(f *testing.F) {
	f.Add([]byte(`{"app":"Word","frames":[{"id":"btn.bold"}]}`))
	f.Add([]byte(`{"app":"Word","context":"review","frames":[{"id":"menu.insert.table","path":["menu.insert"]}]}`))
	f.Add([]byte(`{"pack":"osworld-w","pack_hash":"abc","app":"Files","frames":[{"id":"x"},{"id":"y","path":["a","b","c"]}]}`))
	f.Add([]byte(`{"app":"Word","frames":[]}`))               // empty frames: rejected
	f.Add([]byte(`{"frames":[{"id":"x"}]}`))                  // missing app: rejected
	f.Add([]byte(`{"app":"Word","frames":[{"path":["a"]}]}`)) // frame missing id: envelope ok, frame invalid
	f.Add([]byte(`{"app":"Word","frames":[{"id":""}],"extra":0}`))
	f.Add([]byte(`{"app":`))      // truncated
	f.Add([]byte(`[1,2,3]`))      // wrong shape
	f.Add([]byte(`null`))         // null body
	f.Add([]byte("\x00\x01\x02")) // binary garbage
	f.Add([]byte(`{"app":"W","frames":[{"id":"x","path":null}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRipRequest(data)
		if err != nil {
			return // rejected: exactly what hostile bodies should get
		}
		if req.App == "" {
			t.Fatal("accepted request with empty app")
		}
		if len(req.Frames) == 0 || len(req.Frames) > MaxRipFrames {
			t.Fatalf("accepted request with %d frames", len(req.Frames))
		}
		// ValidateRipFrame must not panic on any accepted frame shape.
		for _, fr := range req.Frames {
			_ = ValidateRipFrame(fr)
		}
		out, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("re-encode of accepted request failed: %v", err)
		}
		again, err := ParseRipRequest(out)
		if err != nil {
			t.Fatalf("re-parse of re-encoded request failed: %v", err)
		}
		out2, err := json.Marshal(again)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("rip request is not a marshal fixed point:\n first %s\nsecond %s", out, out2)
		}
	})
}
