package strutil

import (
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestLevenshtein(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"abc", "", 3},
		{"", "abc", 3},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"Next", "Go To", 5},
		{"color", "colour", 1},
		{"same", "same", 0},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinProperties(t *testing.T) {
	sym := func(a, b string) bool { return Levenshtein(a, b) == Levenshtein(b, a) }
	if err := quick.Check(sym, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("symmetry:", err)
	}
	ident := func(a string) bool { return Levenshtein(a, a) == 0 }
	if err := quick.Check(ident, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("identity:", err)
	}
	bound := func(a, b string) bool {
		d := Levenshtein(a, b)
		la, lb := utf8.RuneCountInString(a), utf8.RuneCountInString(b)
		max := la
		if lb > max {
			max = lb
		}
		diff := la - lb
		if diff < 0 {
			diff = -diff
		}
		return d >= diff && d <= max
	}
	if err := quick.Check(bound, &quick.Config{MaxCount: 200}); err != nil {
		t.Error("bounds:", err)
	}
}

func TestSimilarity(t *testing.T) {
	if Similarity("Font Color", "font  color") != 1 {
		t.Error("case/space-insensitive equality should score 1")
	}
	if s := Similarity("Go To", "Go To Next"); s < 0.6 {
		t.Errorf("containment floor: %v", s)
	}
	if s := Similarity("Bold", "Italic"); s > 0.4 {
		t.Errorf("unrelated names too similar: %v", s)
	}
	if s := Similarity("Fill Color", "Fill Colour"); s < 0.8 {
		t.Errorf("near-identical names too dissimilar: %v", s)
	}
}

// TestSimilarityEmptyOperands: the containment floor must not fire when one
// normalized side is empty — strings.Contains(x, "") is always true, which
// let empty-named controls fuzzy-match nearly anything at 0.6.
func TestSimilarityEmptyOperands(t *testing.T) {
	for _, c := range [][2]string{
		{"", "Font Color"},
		{"Font Color", ""},
		{"   ", "Font Color"}, // normalizes to empty
		{"Font Color", "\t\n"},
	} {
		if s := Similarity(c[0], c[1]); s != 0 {
			t.Errorf("Similarity(%q, %q) = %v, want 0 (no containment floor)", c[0], c[1], s)
		}
	}
	if Similarity("", "") != 1 {
		t.Error("two empty strings are equal and should score 1")
	}
	if Similarity("  ", "\t") != 1 {
		t.Error("two whitespace-only strings normalize equal and should score 1")
	}
}

func TestSimilarityRange(t *testing.T) {
	f := func(a, b string) bool {
		s := Similarity(a, b)
		return s >= 0 && s <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"  Fill   Color ": "fill color",
		"OK":              "ok",
		"":                "",
		"\tA\nB":          "a b",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTruncateChars(t *testing.T) {
	if got := TruncateChars("hello world", 5); got != "hell…" {
		t.Errorf("got %q", got)
	}
	if got := TruncateChars("hi", 5); got != "hi" {
		t.Errorf("short string changed: %q", got)
	}
	if got := TruncateChars("hello", 1); got != "…" {
		t.Errorf("n=1: %q", got)
	}
}

func TestTruncateCharsProperty(t *testing.T) {
	f := func(s string, n uint8) bool {
		out := TruncateChars(s, int(n))
		return utf8.RuneCountInString(out) <= int(n) || utf8.RuneCountInString(s) <= int(n) || n <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestEstimateTokens(t *testing.T) {
	cases := []struct {
		in   string
		want int
	}{
		{"", 0},
		{"OK", 1},
		{"Bold", 1},
		{"Format Background", 5}, // ceil(6/4) + ceil(10/4)
	}
	for _, c := range cases {
		if got := EstimateTokens(c.in); got != c.want {
			t.Errorf("EstimateTokens(%q) = %d, want %d", c.in, got, c.want)
		}
	}
	// Structural text costs more than plain words of the same length.
	if EstimateTokens(`a(b)(c)_1[d]`) <= EstimateTokens("abcd") {
		t.Error("structural characters should add tokens")
	}
}

func TestEstimateTokensMonotoneUnderConcat(t *testing.T) {
	f := func(a, b string) bool {
		return EstimateTokens(a+" "+b) >= EstimateTokens(a) &&
			EstimateTokens(a+" "+b) >= EstimateTokens(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
