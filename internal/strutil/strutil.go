// Package strutil provides small text utilities shared by the modeling and
// execution layers: edit distance, name-similarity scoring for the fuzzy
// control matcher, and token-aware truncation helpers.
package strutil

import (
	"strings"
	"sync"
	"unicode"
	"unicode/utf8"
)

// levScratch carries the DP rows and decoded-rune buffers one Levenshtein
// call needs. The fuzzy control matcher scores every on-screen candidate
// per observation round, so these four slices were the dominant allocation
// of the matching path; pooling amortizes them across calls and sessions.
type levScratch struct {
	prev, cur []int
	ra, rb    []rune
}

var levPool = sync.Pool{New: func() any { return new(levScratch) }}

// Levenshtein returns the edit distance between a and b.
func Levenshtein(a, b string) int {
	sc := levPool.Get().(*levScratch)
	defer levPool.Put(sc)
	ra, rb := appendRunes(sc.ra[:0], a), appendRunes(sc.rb[:0], b)
	sc.ra, sc.rb = ra, rb
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev, cur := growInts(sc.prev, len(rb)+1), growInts(sc.cur, len(rb)+1)
	sc.prev, sc.cur = prev, cur
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

func appendRunes(buf []rune, s string) []rune {
	for _, r := range s {
		buf = append(buf, r)
	}
	return buf
}

func growInts(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n)
	}
	return buf[:n]
}

func min3(a, b, c int) int {
	if b < a {
		a = b
	}
	if c < a {
		a = c
	}
	return a
}

// Similarity returns a name-similarity score in [0,1]: 1 for equal strings
// (after case folding and space normalization), decreasing with relative
// edit distance. It is the core of the fuzzy control matcher (paper §3.4).
func Similarity(a, b string) float64 {
	na, nb := Normalize(a), Normalize(b)
	if na == nb {
		return 1
	}
	la, lb := utf8.RuneCountInString(na), utf8.RuneCountInString(nb)
	max := la
	if lb > max {
		max = lb
	}
	if max == 0 {
		return 1
	}
	d := Levenshtein(na, nb)
	s := 1 - float64(d)/float64(max)
	if s < 0 {
		return 0
	}
	// Prefix relationships ("Go To" vs "Go To Next") matter for renamed
	// controls; give containment a floor. An empty operand is contained in
	// everything, so the floor applies only when both sides are non-empty —
	// otherwise "[Unnamed]"/empty-named controls fuzzy-match nearly anything.
	if s < 0.6 && na != "" && nb != "" &&
		(strings.Contains(na, nb) || strings.Contains(nb, na)) {
		return 0.6
	}
	return s
}

// Normalize lower-cases, trims, and collapses internal whitespace.
func Normalize(s string) string {
	var b strings.Builder
	space := false
	for _, r := range strings.TrimSpace(s) {
		if unicode.IsSpace(r) {
			space = true
			continue
		}
		if space && b.Len() > 0 {
			b.WriteByte(' ')
		}
		space = false
		b.WriteRune(unicode.ToLower(r))
	}
	return b.String()
}

// TruncateChars shortens s to at most n runes, appending "…" when truncated.
// n <= 1 returns "…" for non-empty overlong input.
func TruncateChars(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	if n <= 1 {
		return "…"
	}
	return string(r[:n-1]) + "…"
}

// EstimateTokens estimates the LLM token count of s. It approximates a BPE
// tokenizer (the paper measures with o200k_base): whitespace-separated words
// contribute ceil(len/4) tokens with a minimum of one, and punctuation and
// structural characters contribute one token each.
func EstimateTokens(s string) int {
	tokens := 0
	wordLen := 0
	flush := func() {
		if wordLen == 0 {
			return
		}
		tokens += (wordLen + 3) / 4
		wordLen = 0
	}
	for _, r := range s {
		switch {
		case unicode.IsSpace(r):
			flush()
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			wordLen++
		default:
			flush()
			tokens++
		}
	}
	flush()
	return tokens
}
