package settings

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/appkit"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/modelstore"
	"repro/internal/uia"
	"repro/internal/ung"
)

func factory() *appkit.App { return New().App }

func TestDefaultsAndToggles(t *testing.T) {
	s := New()
	if s.State.NightLight || s.State.Theme != "Light" {
		t.Fatalf("unexpected defaults: %+v", s.State)
	}
	nl := s.Win.FindByAutomationID("tglNightLight")
	if nl == nil {
		t.Fatal("night light toggle missing")
	}
	if err := s.Desk.Click(nl); err != nil {
		t.Fatal(err)
	}
	if !s.State.NightLight {
		t.Fatal("click did not enable night light")
	}
	if s.State.Theme == "Dark" {
		t.Fatal("night light must not change the theme")
	}
}

func TestAirplaneModeDisablesWiFi(t *testing.T) {
	s := New()
	s.ActivateTabByName("Network & internet")
	air := s.Win.FindByAutomationID("tglAirplane")
	if err := s.Desk.Click(air); err != nil {
		t.Fatal(err)
	}
	if !s.State.Airplane || s.State.WiFi {
		t.Fatalf("airplane=%v wifi=%v", s.State.Airplane, s.State.WiFi)
	}
}

func TestNetworkResetRestoresDefaults(t *testing.T) {
	s := New()
	s.State.VPN = true
	s.State.ProxyOn = true
	s.State.ProxyServer = "proxy.corp:8080"
	s.State.WiFi = false
	s.resetNetwork()
	if s.State.NetworkResets != 1 {
		t.Fatalf("resets = %d", s.State.NetworkResets)
	}
	if s.State.VPN || s.State.ProxyOn || s.State.ProxyServer != "" || !s.State.WiFi {
		t.Fatalf("reset left state dirty: %+v", s.State)
	}
}

func TestTimeZonePickGatedByAutomaticMode(t *testing.T) {
	s := New()
	s.ActivateTabByName("Time & language")
	cb := s.Win.FindByAutomationID("cbTimeZone")
	list := cb.FindByAutomationID("cbTimeZoneList")
	var hawaii *uia.Element
	for _, it := range list.Children() {
		if it.Name() == "(UTC-10:00) Hawaii" {
			hawaii = it
		}
	}
	if hawaii == nil {
		t.Fatal("Hawaii zone missing")
	}
	// Automatic mode on: the pick is ignored.
	if err := s.Desk.Click(cb); err != nil { // expand
		t.Fatal(err)
	}
	if err := s.Desk.Click(hawaii); err != nil {
		t.Fatal(err)
	}
	if s.State.TimeZone != "(UTC+00:00) London" {
		t.Fatalf("zone changed while automatic: %q", s.State.TimeZone)
	}
	// Disable automatic, pick again.
	if err := s.Desk.Click(s.Win.FindByAutomationID("tglAutoTimeZone")); err != nil {
		t.Fatal(err)
	}
	if err := s.Desk.Click(cb); err != nil {
		t.Fatal(err)
	}
	if err := s.Desk.Click(hawaii); err != nil {
		t.Fatal(err)
	}
	if s.State.TimeZone != "(UTC-10:00) Hawaii" {
		t.Fatalf("zone = %q", s.State.TimeZone)
	}
}

func TestAccentVsBackgroundBinding(t *testing.T) {
	s := New()
	s.ActivateTabByName("Personalization")
	s.applyColor(s.App, "") // no binding: no-op
	open := func(autoID string) {
		btn := s.Win.FindByAutomationID(autoID)
		if btn == nil {
			t.Fatalf("%s missing", autoID)
		}
		if err := s.Desk.Click(btn); err != nil {
			t.Fatal(err)
		}
	}
	pick := func(color string) {
		for _, w := range s.AllPopupWindows() {
			if el := w.FindByName(color); el != nil && s.Desk.IsOpen(w) {
				if err := s.Desk.Click(el); err != nil {
					t.Fatal(err)
				}
				return
			}
		}
		t.Fatalf("color %q not reachable", color)
	}
	open("btnAccentColor")
	pick("Purple")
	if s.State.AccentColor != "Purple" || s.State.BackgroundColor == "Purple" {
		t.Fatalf("accent path broken: %+v", s.State)
	}
	open("btnBackgroundColor")
	pick("Gold")
	if s.State.BackgroundColor != "Gold" || s.State.AccentColor != "Purple" {
		t.Fatalf("background path broken: %+v", s.State)
	}
}

func TestBlocklistCoversExternalActions(t *testing.T) {
	s := New()
	if s.BlocklistSize() == 0 {
		t.Fatal("settings app has no access blocklist")
	}
	for _, id := range []string{"btnSignOut", "btnCheckUpdates"} {
		el := s.Win.FindByAutomationID(id)
		if el == nil {
			t.Fatalf("%s missing", id)
		}
		if !s.Blocked(el) {
			t.Errorf("%s not blocklisted", id)
		}
	}
}

// TestRipParallelByteIdentical is the catalog-growth contract: the new app
// must rip deterministically, with the worker-pool rip byte-identical to the
// sequential one (run under -race in CI).
func TestRipParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	seq, _, err := ung.Rip(New().App, ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	seqBytes, err := ung.Encode(seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		par, _, err := ung.RipParallel(factory, ung.Config{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		parBytes, err := ung.Encode(par)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seqBytes, parBytes) {
			t.Fatalf("workers=%d: parallel rip not byte-identical to sequential", workers)
		}
	}
}

// TestModelstoreSnapshotRoundTrip: the app persists through the snapshot
// codec and warm rebuilds spend zero rip clicks.
func TestModelstoreSnapshotRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	dir := t.TempDir()
	cold := modelstore.NewPersistent(dir)
	b1, err := cold.Build("Settings", factory, modelstore.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b1.FromSnapshot {
		t.Fatal("first build cannot come from a snapshot")
	}
	warm := modelstore.NewPersistent(dir)
	b2, err := warm.Build("Settings", factory, modelstore.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !b2.FromSnapshot {
		t.Fatal("second build did not reuse the snapshot")
	}
	if b2.RipStats.Clicks != 0 {
		t.Fatalf("warm build spent %d rip clicks, want 0", b2.RipStats.Clicks)
	}
	g1, _ := ung.Encode(b1.Graph)
	g2, _ := ung.Encode(b2.Graph)
	if !bytes.Equal(g1, g2) {
		t.Fatal("snapshot-restored graph differs from the ripped one")
	}
}

// TestCoreTopologyPruning: the time-zone list is a large enumeration and the
// color-profile leaves sit beyond the core depth, so both are absent from
// the core topology and present in the full one — the further_query stress
// this app exists to provide.
func TestCoreTopologyPruning(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	g, _, err := ung.Rip(New().App, ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := forest.Transform(g, forest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := describe.NewModel(f)
	core := m.Serialize(describe.CoreOptions())
	full := m.Serialize(describe.FullOptions())
	// Note: the serializer renders structural parentheses as ⟨⟩, so match
	// on paren-free fragments.
	for _, pruned := range []string{"Hawaii", "Adobe RGB"} {
		if strings.Contains(core, pruned) {
			t.Errorf("%q should be pruned from the core topology", pruned)
		}
		if !strings.Contains(full, pruned) {
			t.Errorf("%q missing from the full topology", pruned)
		}
	}
	if !strings.Contains(core, "Night light") {
		t.Error("core topology missing shallow functional controls")
	}
}
