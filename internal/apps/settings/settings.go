// Package settings implements a simulated OS Settings application: a deep
// category tree of panels behind a tab bar, dense with toggles, dropdowns,
// sub-dialogs and confirm dialogs. It is the first non-Office member of the
// application catalog and deliberately stresses a different interface shape
// than the ribbon apps do: long vertical chains of nested containers (core
// depth limits and further_query), large enumerations (time zones,
// languages), destructive actions gated behind confirm dialogs, and the
// canonical control-semantics confusions of settings UIs (night light vs
// dark mode, accent color vs background color).
package settings

import (
	"fmt"

	"repro/internal/appkit"
	"repro/internal/office/catalog"
)

// Color-picker bindings: the same picker cells set different properties
// depending on the opener path (paper Challenge #1).
const (
	BindAccentColor     = "accent-color"
	BindBackgroundColor = "background-color"
)

// State is the settings model. All panel interaction mutates it and task
// verification reads it back.
type State struct {
	// System.
	Brightness    float64
	NightLight    bool
	NightLightStr float64
	Resolution    string
	Scale         string
	Volume        float64
	Mute          bool
	OutputDevice  string
	Notifications bool
	DoNotDisturb  bool
	PowerMode     string
	SleepAfter    string
	StorageSense  bool
	ColorProfile  string

	// Network & internet.
	WiFi          bool
	Airplane      bool
	DataSaver     bool
	VPN           bool
	ProxyOn       bool
	ProxyServer   string
	Metered       bool
	NetworkResets int

	// Personalization.
	Theme           string
	AccentColor     string
	BackgroundColor string
	Wallpaper       string

	// Privacy & security.
	Location        bool
	Camera          bool
	Microphone      bool
	AdID            bool
	DiagnosticData  string
	ActivityHistory bool
	HistoryClears   int

	// Time & language.
	AutoTimeZone bool
	TimeZone     string
	DateFormat   string
	Language     string
	Region       string
}

// NewState returns the out-of-box defaults.
func NewState() *State {
	return &State{
		Brightness: 50, NightLightStr: 40,
		Resolution: "1920 x 1080", Scale: "100%",
		Volume: 60, OutputDevice: "Speakers",
		Notifications: true,
		PowerMode:     "Balanced", SleepAfter: "10 minutes",
		ColorProfile: "sRGB",
		WiFi:         true,
		Theme:        "Light", AccentColor: "Blue", BackgroundColor: "White",
		Wallpaper: "Bloom",
		Location:  true, Camera: true, Microphone: true, AdID: true,
		DiagnosticData: "Required", ActivityHistory: true,
		AutoTimeZone: true, TimeZone: "(UTC+00:00) London",
		DateFormat: "dd/MM/yyyy", Language: "English (United States)",
		Region: "United States",
	}
}

// App is the simulated Settings application.
type App struct {
	*appkit.App
	State *State
}

// TimeZones is the zone list offered by the time settings; it is longer
// than appkit.LargeEnumThreshold on purpose, so the zone items are pruned
// from the core topology and must be fetched with further_query (§3.3).
func TimeZones() []string {
	bases := []string{
		"(UTC-12:00) International Date Line West",
		"(UTC-11:00) Midway Island", "(UTC-10:00) Hawaii",
		"(UTC-09:00) Alaska", "(UTC-08:00) Pacific Time",
		"(UTC-07:00) Mountain Time", "(UTC-06:00) Central Time",
		"(UTC-05:00) Eastern Time", "(UTC-04:00) Atlantic Time",
		"(UTC-03:30) Newfoundland", "(UTC-03:00) Brasilia",
		"(UTC-02:00) Mid-Atlantic", "(UTC-01:00) Azores",
		"(UTC+00:00) London", "(UTC+01:00) Berlin", "(UTC+02:00) Cairo",
		"(UTC+03:00) Moscow", "(UTC+03:30) Tehran", "(UTC+04:00) Dubai",
		"(UTC+04:30) Kabul", "(UTC+05:00) Karachi", "(UTC+05:30) New Delhi",
		"(UTC+05:45) Kathmandu", "(UTC+06:00) Dhaka", "(UTC+06:30) Yangon",
		"(UTC+07:00) Bangkok", "(UTC+08:00) Beijing", "(UTC+09:00) Tokyo",
		"(UTC+09:30) Darwin", "(UTC+10:00) Sydney", "(UTC+11:00) Solomon Is.",
		"(UTC+12:00) Auckland", "(UTC+13:00) Nuku'alofa",
	}
	out := make([]string, 0, 2*len(bases))
	out = append(out, bases...)
	for _, b := range bases {
		out = append(out, b+" — Daylight")
	}
	return out
}

// New assembles the Settings simulator.
func New() *App {
	s := &App{App: appkit.New("Settings"), State: NewState()}

	picker := s.ColorPicker("clrPickerS", "Colors", s.applyColor)

	s.buildSystem()
	s.buildNetwork()
	s.buildPersonalization(picker)
	s.buildApps()
	s.buildPrivacy()
	s.buildTimeLanguage()
	s.buildAccounts()
	s.buildBody()
	s.Layout()
	return s
}

func (s *App) applyColor(a *appkit.App, color string) {
	switch a.Binding() {
	case BindAccentColor:
		s.State.AccentColor = color
	case BindBackgroundColor:
		s.State.BackgroundColor = color
	}
}

func (s *App) buildSystem() {
	sys := s.Tab("tabSystem", "System")

	disp := sys.Group("grpDisplay", "Display")
	br := disp.Spinner("spnBrightness", "Brightness", 0, 100, s.State.Brightness,
		func(_ *appkit.App, v float64) { s.State.Brightness = v })
	br.SetDescription("Change the brightness of the built-in display")
	nl := disp.ToggleButton("tglNightLight", "Night light",
		func(*appkit.App) bool { return s.State.NightLight },
		func(_ *appkit.App, on bool) { s.State.NightLight = on })
	nl.SetDescription("Use warmer colors to help block blue light")
	nlDlg := s.NewDialog("dlgNightLight", "Night light settings")
	np := nlDlg.Panel()
	np.Spinner("spnNightStrength", "Strength", 0, 100, s.State.NightLightStr,
		func(_ *appkit.App, v float64) { s.State.NightLightStr = v })
	np.ComboBox("cbNightSchedule", "Schedule night light",
		[]string{"Off", "Sunset to sunrise", "Set hours"}, nil)
	nlDlg.AddOKCancel(nil)
	disp.DialogButton("btnNightLightOptions", "Night light settings", nlDlg, nil)
	disp.ComboBox("cbResolution", "Display resolution",
		[]string{"3840 x 2160", "2560 x 1440", "1920 x 1080", "1680 x 1050",
			"1600 x 900", "1440 x 900", "1366 x 768", "1280 x 720"},
		func(_ *appkit.App, v string) { s.State.Resolution = v })
	disp.ComboBox("cbScale", "Scale",
		[]string{"100%", "125%", "150%", "175%", "200%"},
		func(_ *appkit.App, v string) { s.State.Scale = v })

	// Advanced display → color management → profile: a deliberately deep
	// chain. The profile items sit beyond the core-topology depth limit, so
	// reaching them declaratively requires a further_query round.
	adv := s.NewDialog("dlgAdvancedDisplay", "Advanced display")
	ap := adv.Panel()
	info := ap.Pane("pnlDisplayInfo", "Display information")
	info.Label("Internal Display: 1920 x 1080, 60 Hz")
	info.ComboBox("cbRefreshRate", "Refresh rate",
		[]string{"60 Hz", "75 Hz", "120 Hz", "144 Hz"}, nil)
	colorMgmt := ap.Pane("pnlColorManagement", "Color management")
	profDlg := s.NewDialog("dlgColorProfile", "Color profile")
	pp := profDlg.Panel()
	profList := pp.Pane("pnlProfiles", "Installed profiles")
	for _, prof := range []string{"sRGB", "Adobe RGB", "Display P3", "Rec. 709", "ProPhoto RGB"} {
		prof := prof
		it := profList.MenuItem("", prof, func(*appkit.App) { s.State.ColorProfile = prof })
		it.SetDescription("Use the " + prof + " color profile")
	}
	profDlg.AddOKCancel(nil)
	colorMgmt.DialogButton("btnColorProfile", "Color profile", profDlg, nil)
	adv.AddOKCancel(nil)
	disp.DialogButton("btnAdvancedDisplay", "Advanced display", adv, nil)

	snd := sys.Group("grpSound", "Sound")
	snd.Spinner("spnVolume", "Volume", 0, 100, s.State.Volume,
		func(_ *appkit.App, v float64) { s.State.Volume = v })
	snd.ToggleButton("tglMute", "Mute",
		func(*appkit.App) bool { return s.State.Mute },
		func(_ *appkit.App, on bool) { s.State.Mute = on })
	snd.ComboBox("cbOutputDevice", "Output device",
		[]string{"Speakers", "Headphones", "Monitor Audio", "Bluetooth Speaker"},
		func(_ *appkit.App, v string) { s.State.OutputDevice = v })
	mixDlg := s.NewDialog("dlgVolumeMixer", "Volume mixer")
	mp := mixDlg.Panel()
	for i, app := range []string{"System Sounds", "Browser", "Music Player", "Video Call"} {
		mp.Spinner(fmt.Sprintf("spnMix%d", i), app+" volume", 0, 100, 50, nil)
	}
	mixDlg.AddOKCancel(nil)
	snd.DialogButton("btnVolumeMixer", "Volume mixer", mixDlg, nil)

	ntf := sys.Group("grpNotifications", "Notifications")
	ntf.ToggleButton("tglNotifications", "Notifications",
		func(*appkit.App) bool { return s.State.Notifications },
		func(_ *appkit.App, on bool) { s.State.Notifications = on })
	dnd := ntf.ToggleButton("tglDoNotDisturb", "Do not disturb",
		func(*appkit.App) bool { return s.State.DoNotDisturb },
		func(_ *appkit.App, on bool) { s.State.DoNotDisturb = on })
	dnd.SetDescription("Silence notification banners and sounds")
	priDlg := s.NewDialog("dlgPriorityList", "Priority notifications")
	for _, app := range []string{"Calendar", "Mail", "Messages", "Reminders", "Phone"} {
		priDlg.Panel().CheckBox("", "Allow "+app,
			func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	}
	priDlg.AddOKCancel(nil)
	ntf.DialogButton("btnPriorityList", "Set priority notifications", priDlg, nil)

	pwr := sys.Group("grpPower", "Power & battery")
	pwr.ComboBox("cbPowerMode", "Power mode",
		[]string{"Best power efficiency", "Balanced", "Best performance"},
		func(_ *appkit.App, v string) { s.State.PowerMode = v })
	pwr.ComboBox("cbSleepAfter", "Put my device to sleep after",
		[]string{"Never", "5 minutes", "10 minutes", "30 minutes", "1 hour"},
		func(_ *appkit.App, v string) { s.State.SleepAfter = v })

	sto := sys.Group("grpStorage", "Storage")
	sto.ToggleButton("tglStorageSense", "Storage Sense",
		func(*appkit.App) bool { return s.State.StorageSense },
		func(_ *appkit.App, on bool) { s.State.StorageSense = on })
	cleanDlg := s.NewDialog("dlgCleanup", "Cleanup recommendations")
	cleanDlg.Panel().Label("Temporary files: 1.2 GB")
	cleanDlg.Panel().CheckBox("chkCleanTemp", "Temporary files",
		func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})
	cleanDlg.AddOKCancel(nil)
	sto.DialogButton("btnCleanup", "Cleanup recommendations", cleanDlg, nil)

	upd := sys.Group("grpUpdate", "Windows Update")
	check := upd.Button("btnCheckUpdates", "Check for updates", nil)
	check.SetDescription("Contact the update service (network side effects)")
	// Checking for updates reaches outside the machine under test; the
	// modeling operator blocklists it (paper §4.1).
	s.Block(check.ControlID())
	upd.ComboBox("cbActiveHours", "Active hours",
		[]string{"8:00 to 17:00", "9:00 to 18:00", "Automatically adjust"}, nil)
}

func (s *App) buildNetwork() {
	net := s.Tab("tabNetwork", "Network & internet")

	wifi := net.Group("grpWiFi", "Wi-Fi")
	wt := wifi.ToggleButton("tglWiFi", "Wi-Fi",
		func(*appkit.App) bool { return s.State.WiFi },
		func(_ *appkit.App, on bool) { s.State.WiFi = on })
	wt.SetDescription("Turn wireless networking on or off")
	// Show available networks reveals an inline pane: a functional control
	// the ripper records as a navigation (non-leaf) node.
	known := wifi.Pane("pnlKnownNetworks", "Known networks")
	known.El.SetVisible(false)
	for _, n := range []string{"HomeBase-5G", "Office-Guest", "CafeHotspot", "LabNet"} {
		known.Pane("pnlNet"+n, n).Label("Saved network: " + n)
	}
	wifi.NavButton("btnShowNetworks", "Show available networks", func(*appkit.App) {
		known.El.SetVisible(true)
	})
	// Inline reveals persist until reset; restore the collapsed default so
	// the ripper's replay assumptions hold (see appkit.AddDetailToggle).
	s.OnSoftReset(func(*appkit.App) { known.El.SetVisible(false) })

	air := net.Group("grpAirplane", "Airplane mode")
	air.ToggleButton("tglAirplane", "Airplane mode",
		func(*appkit.App) bool { return s.State.Airplane },
		func(_ *appkit.App, on bool) {
			s.State.Airplane = on
			if on {
				s.State.WiFi = false
			}
		})
	air.ToggleButton("tglDataSaver", "Data saver",
		func(*appkit.App) bool { return s.State.DataSaver },
		func(_ *appkit.App, on bool) { s.State.DataSaver = on })
	air.ToggleButton("tglMetered", "Metered connection",
		func(*appkit.App) bool { return s.State.Metered },
		func(_ *appkit.App, on bool) { s.State.Metered = on })

	vpn := net.Group("grpVPNProxy", "VPN & proxy")
	vpn.ToggleButton("tglVPN", "VPN",
		func(*appkit.App) bool { return s.State.VPN },
		func(_ *appkit.App, on bool) { s.State.VPN = on })
	proxyDlg := s.NewDialog("dlgProxy", "Proxy settings")
	prx := proxyDlg.Panel()
	prx.CheckBox("chkUseProxy", "Use a proxy server",
		func(*appkit.App) bool { return s.State.ProxyOn },
		func(_ *appkit.App, on bool) { s.State.ProxyOn = on })
	prx.Edit("edProxyServer", "Proxy address", s.State.ProxyServer,
		func(_ *appkit.App, v string) { s.State.ProxyServer = v })
	prx.Edit("edProxyPort", "Port", "8080", nil)
	proxyDlg.AddOKCancel(nil)
	vpn.DialogButton("btnProxySetup", "Proxy setup", proxyDlg, nil)

	advn := net.Group("grpAdvancedNetwork", "Advanced network settings")
	// Network reset: a destructive action double-gated behind a warning
	// dialog and a confirm dialog. "Reset now" reveals the confirm dialog,
	// making it a non-leaf the DMI agent must reach imperatively (§5.7).
	confirm := s.NewDialog("dlgResetConfirm", "Confirm network reset")
	confirm.Panel().Label("This removes VPN profiles and proxy settings.")
	confirm.AddOKCancel(func(*appkit.App) { s.resetNetwork() })
	resetDlg := s.NewDialog("dlgNetworkReset", "Network reset")
	rp := resetDlg.Panel()
	rp.Label("Reset all network adapters to factory defaults.")
	rn := rp.DialogButton("btnResetNow", "Reset now", confirm, nil)
	rn.SetDescription("Reset the network stack; asks for confirmation first")
	resetDlg.AddOKCancel(nil)
	advn.DialogButton("btnNetworkReset", "Network reset", resetDlg, nil)
	advn.ComboBox("cbDNS", "DNS server assignment",
		[]string{"Automatic (DHCP)", "Manual"}, nil)
}

// resetNetwork restores the network defaults and counts the reset.
func (s *App) resetNetwork() {
	s.State.NetworkResets++
	s.State.WiFi = true
	s.State.Airplane = false
	s.State.DataSaver = false
	s.State.VPN = false
	s.State.ProxyOn = false
	s.State.ProxyServer = ""
	s.State.Metered = false
}

func (s *App) buildPersonalization(picker *appkit.Popup) {
	per := s.Tab("tabPersonalization", "Personalization")

	col := per.Group("grpColors", "Colors")
	theme := s.NewMenu("mnuTheme", "Choose your mode")
	for _, m := range []string{"Light", "Dark"} {
		m := m
		it := theme.Panel().MenuItem("", m, func(*appkit.App) { s.State.Theme = m })
		it.SetDescription("Use the " + m + " interface mode")
	}
	tm := col.MenuButton("btnTheme", "Choose your mode", theme, nil)
	tm.SetDescription("Switch between the light and dark interface modes")
	ac := col.MenuButton("btnAccentColor", "Accent color", picker,
		func(*appkit.App) any { return BindAccentColor })
	ac.SetDescription("Color used for window accents and highlights")
	bg := col.MenuButton("btnBackgroundColor", "Background color", picker,
		func(*appkit.App) any { return BindBackgroundColor })
	bg.SetDescription("Solid color used as the desktop background")

	back := per.Group("grpBackground", "Background")
	wp := s.Gallery("galWallpaper", "Wallpaper",
		[]string{"Bloom", "Glow", "Captured Motion", "Sunrive", "Flow",
			"Ribbons", "Dunes", "Meadow", "Harbor", "Skyline", "Aurora",
			"Monochrome"}, 12,
		func(_ *appkit.App, w string) { s.State.Wallpaper = w })
	back.MenuButton("btnWallpaper", "Personalize your background", wp, nil)
	back.ComboBox("cbWallpaperFit", "Choose a fit",
		[]string{"Fill", "Fit", "Stretch", "Tile", "Center", "Span"}, nil)

	lock := per.Group("grpLockScreen", "Lock screen")
	lock.ComboBox("cbLockStatus", "Lock screen status",
		[]string{"None", "Calendar", "Mail", "Weather"}, nil)
	lock.CheckBox("chkLockTips", "Get fun facts and tips on the lock screen",
		func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})
}

func (s *App) buildApps() {
	apps := s.Tab("tabApps", "Apps")
	def := apps.Group("grpDefaultApps", "Default apps")
	def.ComboBox("cbDefaultBrowser", "Web browser",
		[]string{"Edge", "Firefox", "Chrome", "Safari"}, nil)
	def.ComboBox("cbDefaultMail", "Email", []string{"Mail", "Outlook", "Thunderbird"}, nil)
	def.ComboBox("cbDefaultMusic", "Music player", []string{"Media Player", "Spotify", "VLC"}, nil)

	inst := apps.Group("grpInstalledApps", "Installed apps")
	for i, app := range []string{"Calculator", "Calendar", "Camera", "Maps",
		"Notepad", "Paint", "Photos", "Terminal"} {
		pane := inst.Pane(fmt.Sprintf("pnlApp%d", i), app)
		pane.Label(app + " · 48 MB")
	}
	stDlg := s.NewDialog("dlgStartupApps", "Startup apps")
	for _, app := range []string{"Cloud Sync", "Chat", "Updater"} {
		stDlg.Panel().CheckBox("chkStartup"+app, app,
			func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	}
	stDlg.AddOKCancel(nil)
	inst.DialogButton("btnStartupApps", "Startup apps", stDlg, nil)
}

func (s *App) buildPrivacy() {
	pri := s.Tab("tabPrivacy", "Privacy & security")

	perm := pri.Group("grpAppPermissions", "App permissions")
	loc := perm.ToggleButton("tglLocation", "Location",
		func(*appkit.App) bool { return s.State.Location },
		func(_ *appkit.App, on bool) { s.State.Location = on })
	loc.SetDescription("Let apps access your location")
	cam := perm.ToggleButton("tglCamera", "Camera",
		func(*appkit.App) bool { return s.State.Camera },
		func(_ *appkit.App, on bool) { s.State.Camera = on })
	cam.SetDescription("Let apps access your camera")
	mic := perm.ToggleButton("tglMicrophone", "Microphone",
		func(*appkit.App) bool { return s.State.Microphone },
		func(_ *appkit.App, on bool) { s.State.Microphone = on })
	mic.SetDescription("Let apps access your microphone")

	win := pri.Group("grpWindowsPermissions", "General")
	win.ToggleButton("tglAdID", "Let apps use my advertising ID",
		func(*appkit.App) bool { return s.State.AdID },
		func(_ *appkit.App, on bool) { s.State.AdID = on })
	win.ComboBox("cbDiagnostic", "Diagnostic data",
		[]string{"Required", "Optional"},
		func(_ *appkit.App, v string) { s.State.DiagnosticData = v })
	win.ToggleButton("tglActivityHistory", "Activity history",
		func(*appkit.App) bool { return s.State.ActivityHistory },
		func(_ *appkit.App, on bool) { s.State.ActivityHistory = on })
	clear := s.NewDialog("dlgClearHistory", "Clear activity history")
	clear.Panel().Label("Clear your activity history for this account?")
	clear.AddOKCancel(func(*appkit.App) { s.State.HistoryClears++ })
	win.DialogButton("btnClearHistory", "Clear history", clear, nil)
}

func (s *App) buildTimeLanguage() {
	tl := s.Tab("tabTime", "Time & language")

	dt := tl.Group("grpDateTime", "Date & time")
	auto := dt.ToggleButton("tglAutoTimeZone", "Set time zone automatically",
		func(*appkit.App) bool { return s.State.AutoTimeZone },
		func(_ *appkit.App, on bool) { s.State.AutoTimeZone = on })
	auto.SetDescription("Pick the time zone from your location; disable to choose manually")
	// Picking a zone while automatic mode is on has no effect — the subtle
	// semantics ("forgot to disable automatic first") this panel is known for.
	dt.ComboBox("cbTimeZone", "Time zone", TimeZones(),
		func(_ *appkit.App, v string) {
			if !s.State.AutoTimeZone {
				s.State.TimeZone = v
			}
		})
	dt.ComboBox("cbDateFormat", "Date format",
		[]string{"dd/MM/yyyy", "MM/dd/yyyy", "yyyy-MM-dd", "dd.MM.yyyy"},
		func(_ *appkit.App, v string) { s.State.DateFormat = v })

	lang := tl.Group("grpLanguage", "Language & region")
	lang.ComboBox("cbLanguage", "Windows display language", catalog.Languages(),
		func(_ *appkit.App, v string) { s.State.Language = v })
	lang.ComboBox("cbRegion", "Country or region",
		[]string{"United States", "United Kingdom", "Germany", "France",
			"Japan", "Brazil", "India", "Australia", "Canada", "Spain"},
		func(_ *appkit.App, v string) { s.State.Region = v })
}

func (s *App) buildAccounts() {
	acc := s.Tab("tabAccounts", "Accounts")
	info := acc.Group("grpYourInfo", "Your info")
	info.Label("Local Account · Administrator")
	signOut := info.Button("btnSignOut", "Sign out", nil)
	signOut.SetDescription("Sign out of this device (ends the session)")
	// Signing out leaves the application in a state Esc cannot recover;
	// blocklisted like the slide-show start buttons.
	s.Block(signOut.ControlID())

	sync := acc.Group("grpSync", "Windows backup")
	sync.ToggleButton("tglSyncSettings", "Remember my preferences",
		func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})
	sync.ToggleButton("tglSyncPasswords", "Remember my passwords",
		func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
}

// buildBody attaches the static chrome outside the category panels.
func (s *App) buildBody() {
	status := s.Window().Pane("pnlStatusBarS", "Status Bar")
	status.Label("Settings")
}
