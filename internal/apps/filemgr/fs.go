// Package filemgr implements a simulated file manager ("Files"): a folder
// sidebar, a scrollable multi-select file list with per-file context menus,
// rename/delete/new-folder dialogs, and a text preview pane. It is the
// list-and-selection-state member of the application catalog, stressing the
// state declarations (set_scrollbar_pos over the list viewport, select_lines
// over the preview, select_controls over file items) and the fuzzy control
// matcher: file items are name-identified, so renaming a file drifts its
// synthesized identifier away from the offline model exactly like the
// paper's §6 "Find Next"→"Go To" example.
package filemgr

import "strings"

// File is one entry of a folder.
type File struct {
	Name    string
	Size    int // kilobytes
	Kind    string
	Hidden  bool
	Content []string // preview lines for text files

	// Deleted marks a trashed file. Deletion is a mark rather than removal
	// so the application's soft reset can restore it — the property the GUI
	// ripper's replay determinism depends on (see ung.Rip).
	Deleted bool
}

// Folder is a named list of files.
type Folder struct {
	Name  string
	Files []*File
}

// FS is the file-system model beneath the UI. All toolbar and context-menu
// interaction mutates it, and task verification reads it back.
type FS struct {
	Folders []*Folder

	// Trash records deleted file names in deletion order.
	Trash []string

	// Clipboard holds cut or copied files; ClipCut marks a pending move.
	// (paste derives each file's source folder itself, so no source
	// bookkeeping is kept here.)
	Clipboard []*File
	ClipCut   bool

	// TextClipboard holds text copied out of the preview pane.
	TextClipboard string
}

// NewFS builds the default tree the simulator starts with.
func NewFS() *FS {
	text := func(lines ...string) []string { return lines }
	return &FS{Folders: []*Folder{
		{Name: "Documents", Files: []*File{
			{Name: "notes.txt", Size: 4, Kind: "Text", Content: text(
				"Meeting notes, Monday:",
				"Ship the quarterly report by Friday.",
				"Review the budget draft with finance.",
				"Schedule the planning offsite.",
				"Collect feedback from the pilot users.",
				"Archive last year's contracts.")},
			{Name: "report_draft.txt", Size: 18, Kind: "Text", Content: text(
				"Quarterly report — DRAFT",
				"Revenue grew moderately across regions.",
				"Costs were dominated by infrastructure.")},
			{Name: "old_notes.txt", Size: 2, Kind: "Text", Content: text(
				"Stale notes from the previous quarter.")},
			{Name: "budget.xlsx", Size: 96, Kind: "Spreadsheet"},
			{Name: "minutes.txt", Size: 6, Kind: "Text", Content: text(
				"Minutes of the steering committee.")},
			{Name: "todo.txt", Size: 1, Kind: "Text", Content: text(
				"[ ] book travel", "[ ] send invoices")},
			{Name: "contract_scan.pdf", Size: 420, Kind: "PDF"},
			{Name: ".drafts.tmp", Size: 1, Kind: "Text", Hidden: true},
		}},
		{Name: "Pictures", Files: []*File{
			{Name: "photo1.jpg", Size: 2048, Kind: "Image"},
			{Name: "photo2.jpg", Size: 1890, Kind: "Image"},
			{Name: "photo3.jpg", Size: 2210, Kind: "Image"},
			{Name: "photo4.jpg", Size: 1750, Kind: "Image"},
			{Name: "screenshot.png", Size: 310, Kind: "Image"},
			{Name: "wallpaper.png", Size: 890, Kind: "Image"},
		}},
		{Name: "Music", Files: []*File{
			{Name: "track01.mp3", Size: 5120, Kind: "Audio"},
			{Name: "track02.mp3", Size: 4980, Kind: "Audio"},
			{Name: "track03.mp3", Size: 5360, Kind: "Audio"},
			{Name: "podcast_ep12.mp3", Size: 20480, Kind: "Audio"},
			{Name: "podcast_ep13.mp3", Size: 19870, Kind: "Audio"},
			{Name: "voicememo.m4a", Size: 350, Kind: "Audio"},
			{Name: "playlist.m3u", Size: 1, Kind: "Playlist"},
		}},
		{Name: "Videos", Files: []*File{
			{Name: "demo_recording.mp4", Size: 154200, Kind: "Video"},
			{Name: "standup_monday.mp4", Size: 88400, Kind: "Video"},
			{Name: "tutorial_clip.mov", Size: 45100, Kind: "Video"},
			{Name: "launch_teaser.mp4", Size: 120300, Kind: "Video"},
			{Name: "subtitles.srt", Size: 12, Kind: "Text", Content: []string{
				"1", "00:00:01 --> 00:00:04", "Welcome to the demo."}},
			{Name: "thumbnail.png", Size: 220, Kind: "Image"},
		}},
		{Name: "Downloads", Files: []*File{
			{Name: "manual.pdf", Size: 1200, Kind: "PDF"},
			{Name: "dataset.csv", Size: 780, Kind: "Data"},
			{Name: "installer.pkg", Size: 88210, Kind: "Package"},
			{Name: "release_notes.txt", Size: 3, Kind: "Text", Content: text(
				"v2.1: faster indexing, bug fixes.")},
			{Name: "conference_slides.pdf", Size: 3400, Kind: "PDF"},
			{Name: "fonts_bundle.zip", Size: 15200, Kind: "Archive"},
			{Name: "invoice_0423.pdf", Size: 180, Kind: "PDF"},
			{Name: ".partial.crdownload", Size: 512, Kind: "Download", Hidden: true},
		}},
		{Name: "Desktop", Files: []*File{
			{Name: "shortcuts.txt", Size: 1, Kind: "Text", Content: text(
				"ctrl+t new tab", "ctrl+l address bar")},
			{Name: "scratchpad.txt", Size: 2, Kind: "Text", Content: text(
				"ideas for the retro")},
			{Name: "team_photo.jpg", Size: 2890, Kind: "Image"},
			{Name: "quarterly_okrs.xlsx", Size: 64, Kind: "Spreadsheet"},
			{Name: "recycle_info.log", Size: 3, Kind: "Log"},
		}},
		{Name: "Projects", Files: []*File{
			{Name: "proj_alpha.go", Size: 12, Kind: "Code"},
			{Name: "proj_beta.go", Size: 9, Kind: "Code"},
			{Name: "proj_gamma.go", Size: 14, Kind: "Code"},
			{Name: "proj_delta.go", Size: 7, Kind: "Code"},
			{Name: "design_spec.md", Size: 22, Kind: "Text", Content: text(
				"Design spec", "Goals and non-goals.", "Open questions.")},
			{Name: "benchmarks.txt", Size: 5, Kind: "Text", Content: text(
				"run1: 3.2s", "run2: 3.1s")},
			{Name: "makefile", Size: 2, Kind: "Build"},
			{Name: "readme.md", Size: 4, Kind: "Text", Content: text(
				"Project readme", "Build with make.", "Test with make test.")},
			{Name: "archive_2023.zip", Size: 51200, Kind: "Archive"},
			{Name: "archive_2024.zip", Size: 61440, Kind: "Archive"},
			{Name: "profiling.out", Size: 830, Kind: "Data"},
			{Name: "coverage.html", Size: 96, Kind: "Report"},
			{Name: "deps.lock", Size: 11, Kind: "Build"},
			{Name: "todo_projects.txt", Size: 1, Kind: "Text", Content: text(
				"[ ] merge beta branch")},
		}},
	}}
}

// Folder returns the named folder, or nil.
func (fs *FS) Folder(name string) *Folder {
	for _, f := range fs.Folders {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// File returns the named, non-deleted file in the named folder, or nil.
func (fs *FS) File(folder, name string) *File {
	fo := fs.Folder(folder)
	if fo == nil {
		return nil
	}
	for _, f := range fo.Files {
		if f.Name == name && !f.Deleted {
			return f
		}
	}
	return nil
}

// Has reports whether the folder contains a file with the name.
func (fs *FS) Has(folder, name string) bool { return fs.File(folder, name) != nil }

// Remove deletes the file from the folder, returning whether it was found.
func (fs *FS) Remove(folder *Folder, file *File) bool {
	for i, f := range folder.Files {
		if f == file {
			folder.Files = append(folder.Files[:i], folder.Files[i+1:]...)
			return true
		}
	}
	return false
}

// Trashed reports whether a file name was deleted.
func (fs *FS) Trashed(name string) bool {
	for _, n := range fs.Trash {
		if n == name {
			return true
		}
	}
	return false
}

// PreviewText joins a text file's content for the preview pane; non-text
// files preview as a one-line placeholder.
func (f *File) PreviewText() []string {
	if len(f.Content) > 0 {
		return f.Content
	}
	return []string{"(no text preview for " + strings.ToLower(f.Kind) + " files)"}
}
