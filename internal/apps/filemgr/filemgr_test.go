package filemgr

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/appkit"
	"repro/internal/core"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/modelstore"
	"repro/internal/uia"
	"repro/internal/ung"
)

func factory() *appkit.App { return New().App }

func (f *App) mustClick(t *testing.T, el *uia.Element) {
	t.Helper()
	if el == nil {
		t.Fatal("nil element")
	}
	if err := f.Desk.Click(el); err != nil {
		t.Fatal(err)
	}
}

func TestFolderSwitchAndViewport(t *testing.T) {
	f := New()
	if f.Current != "Documents" {
		t.Fatalf("current = %q", f.Current)
	}
	notes := f.FS.File("Documents", "notes.txt")
	if notes == nil || !f.Item(notes).OnScreen() {
		t.Fatal("documents rows not visible")
	}
	f.SetFolder("Projects")
	if f.Item(notes).OnScreen() {
		t.Fatal("documents row still visible after folder switch")
	}
	alpha := f.FS.File("Projects", "proj_alpha.go")
	last := f.FS.File("Projects", "todo_projects.txt")
	if !f.Item(alpha).OnScreen() {
		t.Fatal("first projects row not visible")
	}
	if f.Item(last).OnScreen() {
		t.Fatal("row beyond the viewport visible without scrolling")
	}
	f.ScrollTo(100)
	if f.ViewTop() == 0 || !f.Item(last).OnScreen() {
		t.Fatalf("scroll did not reveal the tail (top=%d)", f.ViewTop())
	}
}

func TestHiddenFilter(t *testing.T) {
	f := New()
	hidden := f.FS.File("Documents", ".drafts.tmp")
	if f.Item(hidden).OnScreen() {
		t.Fatal("hidden file visible by default")
	}
	f.ActivateTabByName("View")
	f.mustClick(t, f.Win.FindByAutomationID("chkHiddenF"))
	if !f.ShowHidden || !f.Item(hidden).OnScreen() {
		t.Fatal("hidden items checkbox did not reveal dotfiles")
	}
}

func TestSelectionCutPasteMovesFiles(t *testing.T) {
	f := New()
	f.SetFolder("Pictures")
	p2 := f.FS.File("Pictures", "photo2.jpg")
	p4 := f.FS.File("Pictures", "photo4.jpg")
	si2 := f.Item(p2).Pattern(uia.SelectionItemPattern).(uia.SelectionItem)
	si4 := f.Item(p4).Pattern(uia.SelectionItemPattern).(uia.SelectionItem)
	if err := si2.Select(f.Item(p2)); err != nil {
		t.Fatal(err)
	}
	if err := si4.AddToSelection(f.Item(p4)); err != nil {
		t.Fatal(err)
	}
	if len(f.Selected()) != 2 {
		t.Fatalf("selected %d files", len(f.Selected()))
	}
	f.mustClick(t, f.Win.FindByAutomationID("btnCutF"))
	f.SetFolder("Downloads")
	f.mustClick(t, f.Win.FindByAutomationID("btnPasteF"))
	if f.FS.Has("Pictures", "photo2.jpg") || f.FS.Has("Pictures", "photo4.jpg") {
		t.Fatal("cut files still in the source folder")
	}
	if !f.FS.Has("Downloads", "photo2.jpg") || !f.FS.Has("Downloads", "photo4.jpg") {
		t.Fatal("cut files not in the destination folder")
	}
	if !f.Item(f.FS.File("Downloads", "photo2.jpg")).OnScreen() {
		t.Fatal("moved file has no visible row")
	}
}

func TestDeleteViaContextMenuAndSoftResetRestore(t *testing.T) {
	f := New()
	old := f.FS.File("Documents", "old_notes.txt")
	row := f.rows[old]
	var opts *uia.Element
	for _, c := range row.Children() {
		if c.Type() == uia.SplitButtonControl {
			opts = c
		}
	}
	f.mustClick(t, opts) // opens the context menu bound to the file
	var del *uia.Element
	for _, w := range f.AllPopupWindows() {
		if el := w.FindByAutomationID("ctxDelete"); el != nil {
			del = el
		}
	}
	f.mustClick(t, del)
	var ok *uia.Element
	for _, w := range f.AllPopupWindows() {
		if el := w.FindByAutomationID("dlgDeleteFOK"); el != nil {
			ok = el
		}
	}
	f.mustClick(t, ok)
	if f.FS.Has("Documents", "old_notes.txt") || !f.FS.Trashed("old_notes.txt") {
		t.Fatal("context-menu delete did not trash the bound file")
	}
	if f.Item(old).OnScreen() {
		t.Fatal("deleted row still visible")
	}
	// Soft reset restores the deletion — the ripper's replay contract.
	f.SoftReset()
	if !f.FS.Has("Documents", "old_notes.txt") || f.FS.Trashed("old_notes.txt") {
		t.Fatal("soft reset did not restore the deletion")
	}
	if !f.Item(old).OnScreen() {
		t.Fatal("restored row not visible")
	}
}

func TestRenameDriftsLiveIdentifier(t *testing.T) {
	f := New()
	draft := f.FS.File("Documents", "report_draft.txt")
	it := f.Item(draft)
	oldGID := it.ControlID()
	si := it.Pattern(uia.SelectionItemPattern).(uia.SelectionItem)
	if err := si.Select(it); err != nil {
		t.Fatal(err)
	}
	f.mustClick(t, f.Win.FindByAutomationID("btnRenameF"))
	var ed, ok *uia.Element
	for _, w := range f.AllPopupWindows() {
		if el := w.FindByAutomationID("edRenameTo"); el != nil {
			ed = el
		}
		if el := w.FindByAutomationID("dlgRenameFOK"); el != nil {
			ok = el
		}
	}
	f.Desk.SetFocus(ed)
	if err := f.Desk.TypeText("report_final.txt"); err != nil {
		t.Fatal(err)
	}
	f.mustClick(t, ok)
	if !f.FS.Has("Documents", "report_final.txt") || f.FS.Has("Documents", "report_draft.txt") {
		t.Fatal("rename not applied to the model")
	}
	if it.ControlID() == oldGID {
		t.Fatal("rename did not drift the synthesized identifier")
	}
}

// TestCancelledRenameDoesNotLeak: a name typed into a cancelled Rename
// dialog must not be applied by a later dialog session's OK.
func TestCancelledRenameDoesNotLeak(t *testing.T) {
	f := New()
	draft := f.FS.File("Documents", "report_draft.txt")
	si := f.Item(draft).Pattern(uia.SelectionItemPattern).(uia.SelectionItem)
	if err := si.Select(f.Item(draft)); err != nil {
		t.Fatal(err)
	}
	find := func(autoID string) *uia.Element {
		for _, w := range f.AllPopupWindows() {
			if el := w.FindByAutomationID(autoID); el != nil {
				return el
			}
		}
		t.Fatalf("%s not found", autoID)
		return nil
	}
	// Session 1: type a name, then cancel.
	f.mustClick(t, f.Win.FindByAutomationID("btnRenameF"))
	f.Desk.SetFocus(find("edRenameTo"))
	if err := f.Desk.TypeText("evil.txt"); err != nil {
		t.Fatal(err)
	}
	f.mustClick(t, find("dlgRenameFCancel"))
	if !f.FS.Has("Documents", "report_draft.txt") {
		t.Fatal("cancel applied the rename")
	}
	// Session 2: select another file and confirm without typing.
	notes := f.FS.File("Documents", "notes.txt")
	si2 := f.Item(notes).Pattern(uia.SelectionItemPattern).(uia.SelectionItem)
	if err := si2.Select(f.Item(notes)); err != nil {
		t.Fatal(err)
	}
	f.mustClick(t, f.Win.FindByAutomationID("btnRenameF"))
	f.mustClick(t, find("dlgRenameFOK"))
	if f.FS.Has("Documents", "evil.txt") || !f.FS.Has("Documents", "notes.txt") {
		t.Fatal("stale pending rename leaked into a later dialog session")
	}
}

func TestPreviewSelectLinesAndCopyText(t *testing.T) {
	f := New()
	notes := f.FS.File("Documents", "notes.txt")
	f.mustClick(t, f.Item(notes))
	if f.PreviewOf() != notes {
		t.Fatal("click did not open the preview")
	}
	tx := f.PreviewPattern()
	if err := tx.SelectLines(f.preview, 2, 3); err != nil {
		t.Fatal(err)
	}
	f.mustClick(t, f.Win.FindByAutomationID("btnCopyText"))
	want := "Ship the quarterly report by Friday.\nReview the budget draft with finance."
	if f.FS.TextClipboard != want {
		t.Fatalf("text clipboard = %q", f.FS.TextClipboard)
	}
}

// TestRipParallelByteIdentical: the catalog-growth contract for the second
// new app (run under -race in CI).
func TestRipParallelByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	seq, _, err := ung.Rip(New().App, ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	seqBytes, err := ung.Encode(seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4} {
		par, _, err := ung.RipParallel(factory, ung.Config{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		parBytes, err := ung.Encode(par)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(seqBytes, parBytes) {
			t.Fatalf("workers=%d: parallel rip not byte-identical to sequential", workers)
		}
	}
}

func TestModelstoreSnapshotRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	dir := t.TempDir()
	cold := modelstore.NewPersistent(dir)
	b1, err := cold.Build("Files", factory, modelstore.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	warm := modelstore.NewPersistent(dir)
	b2, err := warm.Build("Files", factory, modelstore.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !b2.FromSnapshot || b2.RipStats.Clicks != 0 {
		t.Fatalf("warm build: fromSnapshot=%v clicks=%d", b2.FromSnapshot, b2.RipStats.Clicks)
	}
	g1, _ := ung.Encode(b1.Graph)
	g2, _ := ung.Encode(b2.Graph)
	if !bytes.Equal(g1, g2) {
		t.Fatal("snapshot-restored graph differs from the ripped one")
	}
}

// TestFuzzyMatchSurvivesRename: after a live rename, a declarative access to
// the stale offline node still lands on the renamed control through the
// fuzzy matcher — the drift scenario this application exists to stress.
func TestFuzzyMatchSurvivesRename(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	g, _, err := ung.Rip(New().App, ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fr, _, err := forest.Transform(g, forest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := describe.NewModel(fr)
	node := m.FindLeafByName("report_draft.txt")
	if node == nil {
		t.Fatal("file item not modeled")
	}

	f := New()
	s := core.NewSession(f.App, m, core.Options{})
	draft := f.FS.File("Documents", "report_draft.txt")
	f.Item(draft).SetName("report_final.txt")
	draft.Name = "report_final.txt"

	res := s.Visit([]core.Command{core.Access(m.ID(node))})
	if !res.OK() {
		t.Fatalf("access after rename failed: %v", res.Err)
	}
	if len(f.Selected()) != 1 || f.Selected()[0] != draft {
		t.Fatal("fuzzy match clicked the wrong control")
	}

	// The ablation without fuzzy matching must fail on the same drift.
	f2 := New()
	s2 := core.NewSession(f2.App, m, core.Options{DisableFuzzy: true, Retries: 1})
	d2 := f2.FS.File("Documents", "report_draft.txt")
	f2.Item(d2).SetName("report_final.txt")
	res2 := s2.Visit([]core.Command{core.Access(m.ID(node))})
	if res2.OK() {
		t.Fatal("exact-match ablation unexpectedly found the renamed control")
	}
}

func TestCoreTopologyHasFilesAndMergeDialogs(t *testing.T) {
	if testing.Short() {
		t.Skip("app-scale rip")
	}
	g, _, err := ung.Rip(New().App, ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fr, _, err := forest.Transform(g, forest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := describe.NewModel(fr)
	core := m.Serialize(describe.CoreOptions())
	for _, want := range []string{"notes.txt", "Files Vertical Scroll Bar", "Rename"} {
		if !strings.Contains(core, want) {
			t.Errorf("core topology missing %q", want)
		}
	}
	if describe.Tokens(core) < 5000 {
		t.Errorf("core topology only %d tokens; catalog apps should be office-scale", describe.Tokens(core))
	}
}
