package filemgr

import (
	"fmt"
	"strings"

	"repro/internal/appkit"
	"repro/internal/uia"
)

// VisibleRows is the number of file rows the list viewport shows at once;
// the scrollbar pans over the rest (the select-and-scroll analog of the
// paper's Table 1 Task 2).
const VisibleRows = 8

// App is the simulated file manager.
type App struct {
	*appkit.App
	FS *FS

	// Current is the folder shown in the file area.
	Current string
	// ShowHidden and ShowExtensions mirror the View-tab checkboxes.
	ShowHidden     bool
	ShowExtensions bool
	// SortBy and SortDesc mirror the sort menu (display metadata only; the
	// row order stays stable so the rip is deterministic).
	SortBy   string
	SortDesc bool

	fileList    *uia.Element
	preview     *uia.Element
	previewText *uia.SimpleText
	previewOf   *File
	sel         *uia.SimpleSelectionList
	selected    []*File
	viewTop     int

	rows    map[*File]*uia.Element // row pane per file
	items   map[*File]*uia.Element // list item per file
	byItem  map[*uia.Element]*File
	rowSeq  map[string]int
	folders *uia.Element
	ctxMenu *appkit.Popup

	pendingRename string
	pendingFolder string
}

// New assembles the Files simulator around the default file tree.
func New() *App {
	f := &App{
		App: appkit.New("Files"), FS: NewFS(),
		Current: "Documents", SortBy: "Name",
		rows:   make(map[*File]*uia.Element),
		items:  make(map[*File]*uia.Element),
		byItem: make(map[*uia.Element]*File),
		rowSeq: make(map[string]int),
	}

	f.buildHome()
	f.buildView()
	f.buildBody()

	// The ripper's expansion determinism requires soft reset to restore
	// every piece of state that affects element visibility or future click
	// effects: deletions are undone, clipboards emptied, the viewport and
	// the folder selection return to their defaults.
	f.OnSoftReset(func(*appkit.App) {
		for _, folder := range f.FS.Folders {
			for _, file := range folder.Files {
				file.Deleted = false
			}
		}
		f.FS.Trash = nil
		f.FS.Clipboard = nil
		f.FS.ClipCut = false
		f.FS.TextClipboard = ""
		f.selected = nil
		f.Current = "Documents"
		f.ShowHidden = false
		f.ShowExtensions = false
		f.SortBy, f.SortDesc = "Name", false
		f.viewTop = 0
		f.loadPreview(nil)
		f.applyViewport()
	})
	f.Layout()
	return f
}

// Targets returns the files an action applies to: the context-menu binding
// if one is set (a single file or a captured selection), else the live
// selection. This is what makes the toolbar and the per-file context menu
// two paths into the same dialogs with different semantics (merge nodes).
func (f *App) Targets() []*File {
	switch b := f.Binding().(type) {
	case *File:
		return []*File{b}
	case []*File:
		return b
	}
	return f.selected
}

func (f *App) buildHome() {
	home := f.Tab("tabHome", "Home")

	clip := home.Group("grpClipboard", "Clipboard")
	cut := clip.Button("btnCutF", "Cut", func(*appkit.App) { f.toClipboard(true) })
	cut.SetDescription("Move the selected files on next paste")
	cp := clip.Button("btnCopyF", "Copy", func(*appkit.App) { f.toClipboard(false) })
	cp.SetDescription("Copy the selected files on next paste")
	paste := clip.Button("btnPasteF", "Paste", func(*appkit.App) { f.paste() })
	paste.SetDescription("Paste the clipboard files into the current folder")

	newMenu := f.NewMenu("mnuNew", "New")
	nm := newMenu.Panel()
	nm.MenuItem("newTextDoc", "Text document", nil)
	nm.MenuItem("newSpreadsheet", "Spreadsheet", nil)
	nm.MenuItem("newPresentation", "Presentation", nil)
	nm.MenuItem("newShortcut", "Shortcut", nil)
	nm.MenuItem("newArchive", "Compressed archive", nil)
	clip.MenuButton("btnNewMenu", "New", newMenu, nil)

	org := home.Group("grpOrganize", "Organize")
	renameDlg := f.NewDialog("dlgRenameF", "Rename")
	rp := renameDlg.Panel()
	rn := rp.Edit("edRenameTo", "New name", "", func(_ *appkit.App, v string) {
		f.pendingRename = v
	})
	rn.SetDescription("The new file name")
	// A fresh dialog session must not inherit a name typed (and possibly
	// cancelled) in an earlier one.
	renameDlg.OnOpen = func(*appkit.App, any) {
		f.pendingRename = ""
		_ = rn.Pattern(uia.ValuePattern).(uia.Valuer).SetValue(rn, "")
	}
	renameDlg.AddOKCancel(func(*appkit.App) { f.applyRename() })
	rb := org.DialogButton("btnRenameF", "Rename", renameDlg, func(*appkit.App) any {
		return append([]*File(nil), f.selected...)
	})
	rb.SetDescription("Rename the selected file")

	deleteDlg := f.NewDialog("dlgDeleteF", "Delete")
	deleteDlg.Panel().Label("Move the selected items to the trash?")
	deleteDlg.AddOKCancel(func(*appkit.App) { f.applyDelete() })
	db := org.DialogButton("btnDeleteF", "Delete", deleteDlg, func(*appkit.App) any {
		return append([]*File(nil), f.selected...)
	})
	db.SetDescription("Move the selected files to the trash")

	newFolderDlg := f.NewDialog("dlgNewFolderF", "New folder")
	nf := newFolderDlg.Panel()
	fn := nf.Edit("edFolderName", "Folder name", "", func(_ *appkit.App, v string) {
		f.pendingFolder = v
	})
	newFolderDlg.OnOpen = func(*appkit.App, any) {
		f.pendingFolder = ""
		_ = fn.Pattern(uia.ValuePattern).(uia.Valuer).SetValue(fn, "")
	}
	newFolderDlg.AddOKCancel(func(*appkit.App) { f.applyNewFolder() })
	org.DialogButton("btnNewFolderF", "New folder", newFolderDlg, nil)

	propDlg := f.NewDialog("dlgPropertiesF", "Properties")
	pd := propDlg.Panel()
	general := pd.Pane("pnlPropGeneral", "General")
	general.Label("Kind, size, and location of the selection")
	general.CheckBox("chkReadOnly", "Read-only",
		func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	general.CheckBox("chkHiddenAttr", "Hidden",
		func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	sharing := pd.Pane("pnlPropSharing", "Sharing")
	sharing.ComboBox("cbShareWith", "Share with",
		[]string{"Nobody", "Homegroup (Read)", "Homegroup (Read/Write)", "Specific people"}, nil)
	security := pd.Pane("pnlPropSecurity", "Security")
	for _, perm := range []string{"Full control", "Modify", "Read & execute", "Read", "Write"} {
		security.CheckBox("", "Allow "+perm,
			func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})
	}
	propDlg.AddOKCancel(nil)
	org.DialogButton("btnPropertiesF", "Properties", propDlg, nil)

	open := home.Group("grpOpen", "Open")
	ob := open.Button("btnOpenF", "Open", func(*appkit.App) {
		if t := f.Targets(); len(t) > 0 {
			f.loadPreview(t[0])
		}
	})
	ob.SetDescription("Open the selected file in the preview pane")
	openWith := f.NewMenu("mnuOpenWith", "Open with")
	ow := openWith.Panel()
	for _, app := range []string{"Notepad", "Word Processor", "Spreadsheet App",
		"Photo Viewer", "Media Player", "Code Editor", "PDF Reader",
		"Archive Manager", "Hex Viewer", "Browser"} {
		ow.MenuItem("", app, nil)
	}
	open.MenuButton("btnOpenWith", "Open with", openWith, nil)
	ct := open.Button("btnCopyText", "Copy Text", func(*appkit.App) { f.copyPreviewText() })
	ct.SetDescription("Copy the selected preview lines to the clipboard")
	term := open.Button("btnOpenTerminal", "Open in Terminal", nil)
	term.SetDescription("Open a terminal at this folder (leaves the application)")
	share := open.Button("btnShareF", "Share", nil)
	share.SetDescription("Send the selection to another device (external)")
	// Both controls leave the application; the modeling operator blocklists
	// them (paper §4.1).
	f.Block(term.ControlID(), share.ControlID())

	// The shared per-file context menu: one popup, opened from every row's
	// options button with that row's file as the binding — and from nowhere
	// else. Its Rename…/Delete… entries open the same dialogs as the
	// toolbar, which makes the dialogs' controls canonical merge nodes.
	ctx := f.NewMenu("mnuFileContext", "File options")
	cb := ctx.Panel()
	cb.MenuItem("ctxOpen", "Open", func(*appkit.App) {
		if t := f.Targets(); len(t) > 0 {
			f.loadPreview(t[0])
		}
	})
	cb.MenuItem("ctxCut", "Cut", func(*appkit.App) { f.toClipboard(true) })
	cb.MenuItem("ctxCopy", "Copy", func(*appkit.App) { f.toClipboard(false) })
	cb.DialogButton("ctxRename", "Rename…", renameDlg, func(a *appkit.App) any {
		return a.Binding()
	})
	cb.DialogButton("ctxDelete", "Delete…", deleteDlg, func(a *appkit.App) any {
		return a.Binding()
	})
	cb.DialogButton("ctxProperties", "Properties", propDlg, func(a *appkit.App) any {
		return a.Binding()
	})
	f.ctxMenu = ctx

	sel := home.Group("grpSelect", "Select")
	sel.Button("btnSelectAll", "Select all", func(*appkit.App) {
		for i, file := range f.eligible() {
			it := f.items[file]
			si, _ := it.Pattern(uia.SelectionItemPattern).(uia.SelectionItem)
			if si == nil {
				continue
			}
			if i == 0 {
				_ = si.Select(it)
			} else {
				_ = si.AddToSelection(it)
			}
		}
	})
	sel.Button("btnSelectNone", "Select none", func(*appkit.App) {
		for _, file := range f.Selected() {
			it := f.items[file]
			if si, ok := it.Pattern(uia.SelectionItemPattern).(uia.SelectionItem); ok {
				_ = si.RemoveFromSelection(it)
			}
		}
	})
}

func (f *App) buildView() {
	view := f.Tab("tabView", "View")

	layout := view.Group("grpLayout", "Layout")
	for _, v := range []string{"List", "Details", "Large icons"} {
		layout.Button("btnLayout"+strings.ReplaceAll(v, " ", ""), v, nil)
	}

	show := view.Group("grpShow", "Show")
	hid := show.CheckBox("chkHiddenF", "Hidden items",
		func(*appkit.App) bool { return f.ShowHidden },
		func(_ *appkit.App, on bool) { f.ShowHidden = on; f.applyViewport() })
	hid.SetDescription("Show files whose names start with a dot")
	ext := show.CheckBox("chkExtensionsF", "File name extensions",
		func(*appkit.App) bool { return f.ShowExtensions },
		func(_ *appkit.App, on bool) { f.ShowExtensions = on })
	ext.SetDescription("Show file name extensions in the list")

	show.CheckBox("chkItemCheckboxes", "Item check boxes",
		func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	show.CheckBox("chkPreviewPane", "Preview pane",
		func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})

	sort := view.Group("grpSort", "Sort")
	sm := f.NewMenu("mnuSortBy", "Sort by")
	sp := sm.Panel()
	for _, k := range []string{"Name", "Size", "Kind", "Date modified"} {
		k := k
		sp.MenuItem("", k, func(*appkit.App) { f.SortBy = k })
	}
	sp.Separator()
	sp.MenuItem("srtAsc", "Ascending", func(*appkit.App) { f.SortDesc = false })
	sp.MenuItem("srtDesc", "Descending", func(*appkit.App) { f.SortDesc = true })
	sort.MenuButton("btnSortBy", "Sort by", sm, nil)
	group := f.NewMenu("mnuGroupBy", "Group by")
	for _, k := range []string{"(None)", "Name", "Size", "Kind", "Date modified"} {
		group.Panel().MenuItem("", k, nil)
	}
	sort.MenuButton("btnGroupBy", "Group by", group, nil)

	cols := view.Group("grpColumns", "Columns")
	colDlg := f.NewDialog("dlgChooseColumns", "Choose details")
	for _, col := range []string{"Name", "Size", "Kind", "Date modified",
		"Date created", "Owner", "Tags", "Rating"} {
		colDlg.Panel().CheckBox("", "Show "+col,
			func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})
	}
	colDlg.AddOKCancel(nil)
	cols.DialogButton("btnChooseColumns", "Choose details", colDlg, nil)
}

// buildBody attaches the sidebar, the scrollable file list, the preview
// pane, and the status bar.
func (f *App) buildBody() {
	addr := f.Window().Pane("pnlAddressBar", "Address Bar")
	addr.Button("btnNavBack", "Back", nil)
	addr.Button("btnNavForward", "Forward", nil)
	addr.Button("btnNavUp", "Up", nil)
	crumb := addr.Toolbar("tbBreadcrumb", "Breadcrumb")
	crumb.Button("crumbHome", "This PC", nil)
	crumb.Button("crumbCurrent", "Current folder", func(*appkit.App) { f.SetFolder(f.Current) })
	addr.Edit("edSearchFiles", "Search", "", nil)

	side := f.Window().Pane("pnlSidebar", "Navigation Pane")
	folders := uia.NewElement("lstFolders", "Folders", uia.ListControl)
	folders.SetDescription("Places; click a folder to show its files")
	side.Custom(folders)
	f.folders = folders
	for _, folder := range f.FS.Folders {
		f.addFolderItem(folder)
	}

	area := f.Window().Pane("pnlFileArea", "File Area")
	lst := uia.NewElement("lstFiles", "Files", uia.ListControl)
	lst.SetDescription("Files in the current folder; the scrollbar pans the list")
	area.Custom(lst)
	f.fileList = lst
	f.sel = uia.NewSelectionList(true, func(items []*uia.Element) {
		f.selected = f.selected[:0]
		for _, it := range items {
			if file, ok := f.byItem[it]; ok {
				f.selected = append(f.selected, file)
			}
		}
		if len(f.selected) == 1 {
			f.loadPreview(f.selected[0])
		}
	})
	lst.SetPattern(uia.SelectionPattern, f.sel)
	for _, folder := range f.FS.Folders {
		for _, file := range folder.Files {
			f.addRow(folder, file)
		}
	}
	area.VScrollBar("sbFiles", "Files Vertical Scroll Bar", func(_ *appkit.App, v float64) {
		f.ScrollTo(v)
	})

	prev := f.Window().Pane("pnlPreview", "Preview Pane")
	f.previewText = &uia.SimpleText{}
	doc := prev.Document("docPreview", "Preview", f.previewText)
	doc.SetDescription("Text preview of the opened file")
	f.preview = doc

	status := f.Window().Pane("pnlStatusBarF", "Status Bar")
	status.Label("7 folders")

	f.applyViewport()
}

// addFolderItem appends a sidebar entry for the folder.
func (f *App) addFolderItem(folder *Folder) {
	it := uia.NewElement("fld"+strings.ReplaceAll(folder.Name, " ", ""),
		folder.Name, uia.ListItemControl)
	it.SetDescription("Show the files in " + folder.Name)
	name := folder.Name
	it.OnClick(func(*uia.Element) { f.SetFolder(name) })
	f.folders.AddChild(it)
}

// addRow appends one file row: the name-identified list item plus the
// options button that opens the shared context menu bound to this file.
func (f *App) addRow(folder *Folder, file *File) {
	seq := f.rowSeq[folder.Name]
	f.rowSeq[folder.Name] = seq + 1
	row := uia.NewElement(fmt.Sprintf("row%s%d", strings.ReplaceAll(folder.Name, " ", ""), seq),
		"", uia.PaneControl)
	f.fileList.AddChild(row)

	// Deliberately no automation id: the synthesized identifier is the file
	// name, so a rename drifts the live id away from the offline model and
	// exercises the fuzzy matcher (§3.4, §6).
	it := uia.NewElement("", file.Name, uia.ListItemControl)
	it.SetDescription(file.Kind + " file, " + fmt.Sprintf("%d KB", file.Size))
	it.SetPattern(uia.SelectionItemPattern, f.sel.Item())
	row.AddChild(it)

	opts := uia.NewElement("", "More options", uia.SplitButtonControl)
	opts.SetDescription("Actions for this file")
	fi := file
	opts.OnClick(func(*uia.Element) { f.ctxMenu.Open(fi) })
	row.AddChild(opts)

	f.rows[file] = row
	f.items[file] = it
	f.byItem[it] = file
}

// SetFolder switches the file area to the named folder.
func (f *App) SetFolder(name string) {
	if f.FS.Folder(name) == nil {
		return
	}
	f.Current = name
	f.viewTop = 0
	f.applyViewport()
}

// eligible returns the current folder's files in row order, honouring the
// deletion marks and the hidden filter.
func (f *App) eligible() []*File {
	folder := f.FS.Folder(f.Current)
	if folder == nil {
		return nil
	}
	var out []*File
	for _, file := range folder.Files {
		if file.Deleted {
			continue
		}
		if file.Hidden && !f.ShowHidden {
			continue
		}
		out = append(out, file)
	}
	return out
}

// applyViewport shows the viewport window of the current folder's rows and
// hides everything else.
func (f *App) applyViewport() {
	visible := make(map[*File]bool)
	for i, file := range f.eligible() {
		if i >= f.viewTop && i < f.viewTop+VisibleRows {
			visible[file] = true
		}
	}
	for file, row := range f.rows {
		row.SetVisible(visible[file])
	}
}

// ScrollTo pans the file list viewport to v% of its scroll range.
func (f *App) ScrollTo(v float64) {
	maxTop := len(f.eligible()) - VisibleRows
	if maxTop < 0 {
		maxTop = 0
	}
	top := int(v/100*float64(maxTop) + 0.5)
	if top < 0 {
		top = 0
	}
	if top > maxTop {
		top = maxTop
	}
	f.viewTop = top
	f.applyViewport()
}

// ViewTop returns the index of the first visible row.
func (f *App) ViewTop() int { return f.viewTop }

// Selected returns the files currently selected in the list.
func (f *App) Selected() []*File { return append([]*File(nil), f.selected...) }

// PreviewOf returns the file shown in the preview pane, or nil.
func (f *App) PreviewOf() *File { return f.previewOf }

// PreviewPattern exposes the preview pane's text pattern (for tests).
func (f *App) PreviewPattern() *uia.SimpleText { return f.previewText }

// Item returns the live list item element for a file (for tests).
func (f *App) Item(file *File) *uia.Element { return f.items[file] }

// loadPreview shows the file's text content in the preview pane.
func (f *App) loadPreview(file *File) {
	f.previewOf = file
	f.previewText.ClearSelection()
	if file == nil {
		f.previewText.Lines = nil
		return
	}
	f.previewText.Lines = append([]string(nil), file.PreviewText()...)
}

// copyPreviewText copies the preview selection (or, with no selection, the
// whole preview) into the text clipboard.
func (f *App) copyPreviewText() {
	if sel := f.previewText.SelectedText(); sel != "" {
		f.FS.TextClipboard = sel
		return
	}
	f.FS.TextClipboard = strings.Join(f.previewText.Lines, "\n")
}

// toClipboard loads the target files into the file clipboard.
func (f *App) toClipboard(cut bool) {
	targets := f.Targets()
	if len(targets) == 0 {
		return
	}
	f.FS.Clipboard = append([]*File(nil), targets...)
	f.FS.ClipCut = cut
}

// folderOf returns the folder name containing the file ("" if unknown).
func (f *App) folderOf(file *File) string {
	for _, folder := range f.FS.Folders {
		for _, x := range folder.Files {
			if x == file {
				return folder.Name
			}
		}
	}
	return ""
}

// paste materializes the clipboard into the current folder: a cut moves the
// files (and their rows), a copy duplicates them.
func (f *App) paste() {
	if len(f.FS.Clipboard) == 0 {
		return
	}
	dst := f.FS.Folder(f.Current)
	if dst == nil {
		return
	}
	for _, file := range f.FS.Clipboard {
		if f.FS.ClipCut {
			if src := f.FS.Folder(f.folderOf(file)); src != nil && src != dst {
				f.FS.Remove(src, file)
				dst.Files = append(dst.Files, file)
				// Physically re-home the row so viewport bookkeeping stays
				// folder-local.
				if row := f.rows[file]; row != nil {
					f.fileList.RemoveChild(row)
					delete(f.rows, file)
					delete(f.byItem, f.items[file])
					delete(f.items, file)
				}
				f.addRow(dst, file)
			}
		} else {
			dup := *file
			dst.Files = append(dst.Files, &dup)
			f.addRow(dst, &dup)
		}
	}
	f.FS.Clipboard = nil
	f.FS.ClipCut = false
	f.applyViewport()
}

// applyRename renames the single target file and drifts the live list item's
// identity with it.
func (f *App) applyRename() {
	name := strings.TrimSpace(f.pendingRename)
	targets := f.Targets()
	if name == "" || len(targets) != 1 {
		return
	}
	file := targets[0]
	file.Name = name
	if it := f.items[file]; it != nil {
		it.SetName(name)
	}
}

// applyDelete marks the target files deleted (restorable by soft reset, so
// the ripper's exploration stays a pure function of the click path).
func (f *App) applyDelete() {
	for _, file := range f.Targets() {
		if !file.Deleted {
			file.Deleted = true
			f.FS.Trash = append(f.FS.Trash, file.Name)
		}
	}
	f.applyViewport()
}

// applyNewFolder creates an empty folder and its sidebar entry.
func (f *App) applyNewFolder() {
	name := strings.TrimSpace(f.pendingFolder)
	if name == "" || f.FS.Folder(name) != nil {
		return
	}
	folder := &Folder{Name: name}
	f.FS.Folders = append(f.FS.Folders, folder)
	f.addFolderItem(folder)
}
