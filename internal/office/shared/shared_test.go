package shared

import (
	"testing"

	"repro/internal/appkit"
)

func host() (*appkit.App, appkit.Panel) {
	a := appkit.New("Host")
	tab := a.Tab("tabMain", "Main")
	return a, tab
}

func TestAddIllustrationsWiresInserts(t *testing.T) {
	a, tab := host()
	var got []string
	AddIllustrations(a, tab, "t", func(_ *appkit.App, what string) {
		got = append(got, what)
	})
	if err := a.Desk.Click(a.Win.FindByAutomationID("tPictures")); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "picture" {
		t.Fatalf("inserts = %v", got)
	}
	// Shapes gallery items report shape:NAME.
	if err := a.Desk.Click(a.Win.FindByAutomationID("tShapes")); err != nil {
		t.Fatal(err)
	}
	gal := a.Desk.TopWindow()
	item := gal.FindByName("Heart (Basic Shape)")
	if item == nil {
		t.Fatal("shapes gallery incomplete")
	}
	if err := a.Desk.Click(item); err != nil {
		t.Fatal(err)
	}
	if got[len(got)-1] != "shape:Heart (Basic Shape)" {
		t.Fatalf("last insert = %q", got[len(got)-1])
	}
}

func TestAddSymbolsNilCallbackSafe(t *testing.T) {
	a, tab := host()
	AddSymbols(a, tab, "t", nil)
	if err := a.Desk.Click(a.Win.FindByAutomationID("tSymbol")); err != nil {
		t.Fatal(err)
	}
	gal := a.Desk.TopWindow()
	first := gal.FindByAutomationID("tSymbolGalItems").Children()[0]
	if err := a.Desk.Click(first); err != nil {
		t.Fatal(err) // must not panic with a nil onInsert
	}
}

func TestBackstageBlocklistsAccount(t *testing.T) {
	a, _ := host()
	saved := ""
	AddBackstage(a, func(_ *appkit.App, name string) { saved = name })
	acct := a.Win.FindByAutomationID("btnAccount")
	if acct == nil || !a.Blocked(acct) {
		t.Fatal("Account must exist and be blocklisted")
	}
	// Save As round trip.
	a.ActivateTabByName("File")
	if err := a.Desk.Click(a.Win.FindByAutomationID("btnSaveAs")); err != nil {
		t.Fatal(err)
	}
	dlg := a.Desk.TopWindow()
	ed := dlg.FindByAutomationID("saveAsName")
	if err := a.Desk.Click(ed); err != nil {
		t.Fatal(err)
	}
	if err := a.Desk.TypeText("draft"); err != nil {
		t.Fatal(err)
	}
	if err := a.Desk.Click(dlg.FindByAutomationID("dlgSaveAsOK")); err != nil {
		t.Fatal(err)
	}
	if saved != "draft" {
		t.Fatalf("saved = %q", saved)
	}
}

func TestFontControlsMarkedLargeEnum(t *testing.T) {
	a, tab := host()
	font, size := AddFontControls(tab, "t", nil, nil)
	list := font.FindByAutomationID("tFontNameList")
	if list == nil || !list.LargeEnum() {
		t.Fatal("font list must be a large enumeration")
	}
	szList := size.FindByAutomationID("tFontSizeList")
	if szList == nil || szList.LargeEnum() {
		t.Fatal("size list must not be a large enumeration")
	}
	_ = a
}

func TestBordersMenuPicks(t *testing.T) {
	a, tab := host()
	var picked string
	AddBordersMenu(a, tab, "t", func(_ *appkit.App, s string) { picked = s })
	if err := a.Desk.Click(a.Win.FindByAutomationID("tBorders")); err != nil {
		t.Fatal(err)
	}
	menu := a.Desk.TopWindow()
	if err := a.Desk.Click(menu.FindByName("All Borders")); err != nil {
		t.Fatal(err)
	}
	if picked != "All Borders" {
		t.Fatalf("picked = %q", picked)
	}
}
