// Package shared provides ribbon assemblies used by more than one Office
// simulator: the large insert galleries (shapes, icons, symbols), the theme
// gallery, and the font controls. Keeping them identical across applications
// mirrors real Office, where these galleries are shared component libraries.
package shared

import (
	"repro/internal/appkit"
	"repro/internal/office/catalog"
	"repro/internal/uia"
)

// SymbolCount and IconCount size the two biggest insert galleries.
const (
	SymbolCount = 560
	IconCount   = 900
)

// AddIllustrations builds the Illustrations ribbon group: Pictures, the
// shapes gallery, the icons gallery, and a chart dialog. onInsert receives
// ("picture"|"shape:NAME"|"icon:NAME"|"chart:NAME").
func AddIllustrations(a *appkit.App, tab appkit.Panel, idPrefix string, onInsert func(a *appkit.App, what string)) appkit.Panel {
	g := tab.Group(idPrefix+"Illustrations", "Illustrations")
	g.Button(idPrefix+"Pictures", "Pictures", func(app *appkit.App) { onInsert(app, "picture") })

	shapes := a.Gallery(idPrefix+"ShapesGal", "Shapes", catalog.ShapeNames(), 48,
		func(app *appkit.App, s string) { onInsert(app, "shape:"+s) })
	shapes.Body.MarkLargeEnum()
	g.MenuButton(idPrefix+"Shapes", "Shapes", shapes, nil)

	icons := a.Gallery(idPrefix+"IconsGal", "Icons", catalog.Icons(IconCount), 60,
		func(app *appkit.App, s string) { onInsert(app, "icon:"+s) })
	icons.Body.MarkLargeEnum()
	g.MenuButton(idPrefix+"Icons", "Icons", icons, nil)

	chart := a.NewDialog(idPrefix+"ChartDlg", "Insert Chart")
	cp := chart.Panel()
	list := cp.List(idPrefix+"ChartList", "All Charts")
	chosen := ""
	// A fresh dialog starts with no chart type selected. Without this reset
	// the selection would survive SoftReset inside the closure, and whether
	// OK inserts a chart (revealing the contextual design tab) would depend
	// on the instance's click history — breaking rip determinism across
	// instances.
	chart.OnOpen = func(*appkit.App, any) { chosen = "" }
	for _, ct := range catalog.ChartTypes {
		ct := ct
		list.ListItem("", ct, func(*appkit.App) { chosen = ct })
	}
	chart.AddOKCancel(func(app *appkit.App) {
		if chosen != "" {
			onInsert(app, "chart:"+chosen)
		}
	})
	g.DialogButton(idPrefix+"Chart", "Chart", chart, nil)
	g.Button(idPrefix+"SmartArt", "SmartArt", nil)
	g.Button(idPrefix+"Screenshot", "Screenshot", nil)
	return g
}

// AddSymbols builds the Symbols ribbon group with the large symbol gallery
// and a More Symbols dialog.
func AddSymbols(a *appkit.App, tab appkit.Panel, idPrefix string, onInsert func(a *appkit.App, symbol string)) {
	g := tab.Group(idPrefix+"Symbols", "Symbols")
	eq := a.Gallery(idPrefix+"EquationGal", "Equation",
		[]string{"Area of Circle", "Binomial Theorem", "Expansion of a Sum",
			"Fourier Series", "Pythagorean Theorem", "Quadratic Formula",
			"Taylor Expansion", "Trig Identity 1", "Trig Identity 2"}, 9, nil)
	g.MenuButton(idPrefix+"Equation", "Equation", eq, nil)

	sym := a.Gallery(idPrefix+"SymbolGal", "Symbol", catalog.Symbols(SymbolCount), 64,
		func(app *appkit.App, s string) {
			if onInsert != nil {
				onInsert(app, s)
			}
		})
	sym.Body.MarkLargeEnum()
	g.MenuButton(idPrefix+"Symbol", "Symbol", sym, nil)
}

// AddThemes builds the theme gallery button. onPick receives the theme name.
func AddThemes(a *appkit.App, panel appkit.Panel, idPrefix string, onPick func(a *appkit.App, theme string)) *appkit.Popup {
	gal := a.Gallery(idPrefix+"ThemesGal", "Themes", catalog.ThemeNames, 16, onPick)
	panel.MenuButton(idPrefix+"Themes", "Themes", gal, nil)
	return gal
}

// AddFontControls builds the font name and font size combo boxes.
func AddFontControls(p appkit.Panel, idPrefix string,
	onFont func(a *appkit.App, font string), onSize func(a *appkit.App, size string)) (font, size *uia.Element) {
	font = p.ComboBox(idPrefix+"FontName", "Font", catalog.Fonts(), onFont)
	font.SetDescription("Font family; pick a name to apply it to the selection")
	size = p.ComboBox(idPrefix+"FontSize", "Font Size", catalog.FontSizes, onSize)
	size.SetDescription("Font size in points")
	return font, size
}

// AddBordersMenu builds the border-style dropdown shared by Word tables and
// Excel cells.
func AddBordersMenu(a *appkit.App, p appkit.Panel, idPrefix string, onPick func(a *appkit.App, style string)) *appkit.Popup {
	m := a.NewMenu(idPrefix+"BordersMenu", "Borders")
	body := m.Panel()
	for _, b := range catalog.BorderStyles {
		b := b
		body.MenuItem("", b, func(app *appkit.App) { onPick(app, b) })
	}
	p.MenuButton(idPrefix+"Borders", "Borders", m, nil)
	return m
}

// AddBackstage builds a minimal File backstage: Save, Save As dialog, Print,
// Options dialog, and the blocked Account entry (a control that would jump
// to an external application; paper §4.1, access blocklist).
func AddBackstage(a *appkit.App, onSaveAs func(a *appkit.App, name string)) {
	file := a.Tab("tabFile", "File")

	saveAs := a.NewDialog("dlgSaveAs", "Save As")
	sp := saveAs.Panel()
	nameEd := sp.Edit("saveAsName", "File name", "", nil)
	sp.ComboBox("saveAsType", "Save as type",
		[]string{"Document (*.docx)", "PDF (*.pdf)", "Plain Text (*.txt)",
			"Web Page (*.html)", "OpenDocument (*.odt)"}, nil)
	saveAs.AddOKCancel(func(app *appkit.App) {
		if onSaveAs != nil {
			v := nameEd.Pattern(uia.ValuePattern).(uia.Valuer).Value(nameEd)
			onSaveAs(app, v)
		}
	})

	options := a.NewDialog("dlgOptions", "Options")
	op := options.Panel()
	for _, cat := range []string{"General", "Display", "Proofing", "Save",
		"Language", "Accessibility", "Advanced", "Customize Ribbon",
		"Quick Access Toolbar", "Add-ins", "Trust Center"} {
		op.ListItem("", cat, nil)
	}
	op.CheckBox("optAutoSave", "AutoSave files", func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})
	op.CheckBox("optMiniToolbar", "Show Mini Toolbar on selection", func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})
	options.AddOKCancel(nil)

	file.Button("btnSave", "Save", nil)
	file.DialogButton("btnSaveAs", "Save As", saveAs, nil)
	file.Button("btnPrint", "Print", nil)
	file.DialogButton("btnOptions", "Options", options, nil)
	account := file.Button("btnAccount", "Account", nil)
	account.SetDescription("Manage your account (opens a web browser)")
	a.Block(account.ControlID())
}
