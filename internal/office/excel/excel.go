package excel

import (
	"fmt"
	"strings"

	"repro/internal/appkit"
	"repro/internal/office/catalog"
	"repro/internal/office/shared"
	"repro/internal/uia"
)

// Color-picker bindings.
const (
	BindFontColor = "font-color"
	BindFillColor = "fill-color"
	BindTabColor  = "tab-color"
)

// ContextChartSelected is the chart-selection context (reveals the Chart
// Design contextual tab).
const ContextChartSelected = "chart-selected"

// App is the simulated Excel application.
type App struct {
	*appkit.App
	Sheet *Sheet

	gridEl    *uia.Element
	nameBox   *uia.Element
	dataItems map[string]*uia.Element // ref → DataItem
	viewTop   int                     // first visible data row (1-based)
	sortDlg   *appkit.Popup
}

// New assembles the Excel simulator. seed rows are written into the sheet
// before the UI is built (row-major, starting at A1).
func New(rows ...[]string) *App {
	x := &App{App: appkit.New("Excel"), Sheet: NewSheet(), dataItems: make(map[string]*uia.Element), viewTop: 1}
	if len(rows) == 0 {
		rows = [][]string{
			{"Region", "Sales", "Cost"},
			{"North", "120", "80"},
			{"South", "95", "60"},
			{"East", "143", "97"},
			{"West", "88", "71"},
			{"Central", "131", "90"},
		}
	}
	for r, row := range rows {
		for c, v := range row {
			x.Sheet.SetValue(Ref(r+1, c+1), v)
		}
	}

	picker := x.ColorPicker("clrPicker", "Colors", x.applyColor)
	x.buildHome(picker)
	x.buildInsert()
	x.buildPageLayout()
	x.buildFormulas()
	x.buildData()
	x.buildReview()
	x.buildView()
	shared.AddBackstage(x.App, func(_ *appkit.App, name string) { x.Sheet.Saved = name })
	// See word.New: ribbon collapse is operator-blocklisted for modeling.
	collapse, _ := x.AddRibbonCollapse()
	x.Block(collapse.ControlID())
	x.buildGrid()

	x.RegisterContext(appkit.Context{Name: ContextChartSelected})
	x.buildChartDesign()

	x.OnSoftReset(func(*appkit.App) {
		x.Sheet.SelectRange("A1")
		x.ScrollTo(0)
	})
	x.Layout()
	return x
}

func (x *App) applyColor(a *appkit.App, color string) {
	switch a.Binding() {
	case BindFontColor:
		x.Sheet.EachSelected(func(_ string, c *Cell) { c.FontColor = color })
	case BindFillColor:
		x.Sheet.EachSelected(func(_ string, c *Cell) { c.Fill = color })
	case BindTabColor:
		// sheet tab color; cosmetic
	}
}

func (x *App) buildHome(picker *appkit.Popup) {
	home := x.Tab("tabHome", "Home")

	clip := home.Group("grpClipboard", "Clipboard")
	clip.Button("btnPaste", "Paste", nil)
	clip.Button("btnCut", "Cut", nil)
	clip.Button("btnCopy", "Copy", nil)
	clip.Button("btnFormatPainter", "Format Painter", nil)

	font := home.Group("grpFont", "Font")
	shared.AddFontControls(font, "x", nil, nil)
	font.ToggleButton("btnBold", "Bold",
		func(*appkit.App) bool { return false },
		func(_ *appkit.App, on bool) { x.Sheet.EachSelected(func(_ string, c *Cell) { c.Bold = on }) })
	font.ToggleButton("btnItalic", "Italic", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	font.ToggleButton("btnUnderline", "Underline", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	shared.AddBordersMenu(x.App, font, "x", func(*appkit.App, string) {})
	fill := font.MenuButton("btnFillColor", "Fill Color", picker,
		func(*appkit.App) any { return BindFillColor })
	fill.SetDescription("Color the background of the selected cells")
	font.MenuButton("btnFontColor", "Font Color", picker,
		func(*appkit.App) any { return BindFontColor })

	align := home.Group("grpAlignment", "Alignment")
	for _, a := range []string{"Top Align", "Middle Align", "Bottom Align",
		"Align Left", "Center", "Align Right"} {
		align.Button("btnAlign"+strings.ReplaceAll(a, " ", ""), a, nil)
	}
	align.ToggleButton("btnWrapText", "Wrap Text",
		func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	mergeMenu := x.NewMenu("mnuMerge", "Merge & Center")
	for _, m := range []string{"Merge & Center", "Merge Across", "Merge Cells",
		"Unmerge Cells"} {
		mergeMenu.Panel().MenuItem("", m, nil)
	}
	align.MenuButton("btnMergeCenter", "Merge & Center", mergeMenu, nil)

	num := home.Group("grpNumber", "Number")
	nf := num.ComboBox("cbNumberFormat", "Number Format", catalog.NumberFormats,
		func(_ *appkit.App, v string) {
			x.Sheet.EachSelected(func(_ string, c *Cell) { c.Format = v })
		})
	nf.SetDescription("Number format applied to the selected cells")
	num.Button("btnPercentStyle", "Percent Style", func(*appkit.App) {
		x.Sheet.EachSelected(func(_ string, c *Cell) { c.Format = "Percentage" })
	})
	num.Button("btnCommaStyle", "Comma Style", func(*appkit.App) {
		x.Sheet.EachSelected(func(_ string, c *Cell) { c.Format = "Comma" })
	})
	num.Button("btnIncreaseDecimal", "Increase Decimal", nil)
	num.Button("btnDecreaseDecimal", "Decrease Decimal", nil)
	num.DialogButton("btnFormatCells", "Format Cells", x.buildFormatCells(picker), nil)

	styles := home.Group("grpStyles", "Styles")
	styles.MenuButton("btnCondFormatting", "Conditional Formatting",
		x.buildCondFormattingMenu(), nil)
	fat := x.Gallery("galFormatAsTable", "Format as Table",
		tableStyleNames(), 21, nil)
	styles.MenuButton("btnFormatAsTable", "Format as Table", fat, nil)
	cs := x.Gallery("galCellStyles", "Cell Styles", catalog.CellStyles, 24, nil)
	styles.MenuButton("btnCellStyles", "Cell Styles", cs, nil)

	cells := home.Group("grpCells", "Cells")
	insMenu := x.NewMenu("mnuInsertCells", "Insert")
	for _, m := range []string{"Insert Cells", "Insert Sheet Rows",
		"Insert Sheet Columns", "Insert Sheet"} {
		insMenu.Panel().MenuItem("", m, nil)
	}
	cells.MenuButton("btnInsertCells", "Insert", insMenu, nil)
	delMenu := x.NewMenu("mnuDeleteCells", "Delete")
	for _, m := range []string{"Delete Cells", "Delete Sheet Rows",
		"Delete Sheet Columns", "Delete Sheet"} {
		delMenu.Panel().MenuItem("", m, nil)
	}
	cells.MenuButton("btnDeleteCells", "Delete", delMenu, nil)

	fmtMenu := x.NewMenu("mnuFormatCells", "Format")
	fm := fmtMenu.Panel()
	colWidthDlg := x.NewDialog("dlgColumnWidth", "Column Width")
	var width float64 = 8.43
	colWidthDlg.Panel().Spinner("spnColWidth", "Column width", 0, 255, 8.43,
		func(_ *appkit.App, v float64) { width = v })
	colWidthDlg.AddOKCancel(func(*appkit.App) {
		_, c1, _, c2, ok := ParseRange(x.Sheet.SelectionRange())
		if !ok {
			return
		}
		for c := c1; c <= c2; c++ {
			x.Sheet.ColWidth[ColName(c)] = width
		}
	})
	fm.MenuItem("", "Row Height", nil)
	fm.MenuItem("", "AutoFit Row Height", nil)
	fm.DialogButton("btnColumnWidth", "Column Width", colWidthDlg, nil)
	fm.MenuItem("btnAutoFitColumn", "AutoFit Column Width", func(*appkit.App) {
		_, c1, _, c2, ok := ParseRange(x.Sheet.SelectionRange())
		if !ok {
			return
		}
		for c := c1; c <= c2; c++ {
			x.Sheet.ColWidth[ColName(c)] = -1 // -1 = autofit
		}
	})
	fm.MenuItem("", "Hide Rows", nil)
	fm.MenuItem("", "Hide Columns", nil)
	fm.MenuItem("", "Unhide Rows", nil)
	fm.MenuItem("", "Unhide Columns", nil)
	fm.MenuItem("", "Rename Sheet", nil)
	fm.MenuButton("btnTabColor", "Tab Color", x.sharedPicker(), func(*appkit.App) any { return BindTabColor })
	cells.MenuButton("btnFormatMenu", "Format", fmtMenu, nil)

	edit := home.Group("grpEditing", "Editing")
	sumMenu := x.NewMenu("mnuAutoSum", "AutoSum")
	for _, m := range []string{"Sum", "Average", "Count Numbers", "Max", "Min"} {
		sumMenu.Panel().MenuItem("", m, nil)
	}
	edit.MenuButton("btnAutoSum", "AutoSum", sumMenu, nil)
	fillMenu := x.NewMenu("mnuFill", "Fill")
	for _, m := range []string{"Down", "Right", "Up", "Left", "Across Worksheets",
		"Series", "Justify", "Flash Fill"} {
		fillMenu.Panel().MenuItem("", m, nil)
	}
	edit.MenuButton("btnFill", "Fill", fillMenu, nil)
	clearMenu := x.NewMenu("mnuClear", "Clear")
	for _, m := range []string{"Clear All", "Clear Formats", "Clear Contents",
		"Clear Comments", "Clear Hyperlinks"} {
		clearMenu.Panel().MenuItem("", m, nil)
	}
	edit.MenuButton("btnClear", "Clear", clearMenu, nil)
	edit.MenuButton("btnSortFilter", "Sort & Filter", x.buildSortFilterMenu(), nil)
	fsMenu := x.NewMenu("mnuFindSelect", "Find & Select")
	for _, m := range []string{"Find", "Replace", "Go To", "Go To Special",
		"Formulas", "Comments", "Conditional Formatting Cells", "Constants"} {
		fsMenu.Panel().MenuItem("", m, nil)
	}
	edit.MenuButton("btnFindSelect", "Find & Select", fsMenu, nil)
}

// sharedPicker returns the app's color picker popup (created first in New).
func (x *App) sharedPicker() *appkit.Popup {
	return x.popupByWindowID("clrPicker")
}

func (x *App) popupByWindowID(autoID string) *appkit.Popup {
	for _, p := range x.PopupTemplates() {
		if p.Win.AutomationID() == autoID {
			return p
		}
	}
	return nil
}

func (x *App) buildCondFormattingMenu() *appkit.Popup {
	menu := x.NewMenu("mnuCondFmt", "Conditional Formatting")
	body := menu.Panel()

	hcr := body.Pane("pnlHighlightRules", "Highlight Cells Rules")
	gtDlg := x.NewDialog("dlgGreaterThan", "Greater Than")
	gp := gtDlg.Panel()
	var threshold float64
	thEd := gp.Edit("edGTValue", "Format cells that are GREATER THAN", "", nil)
	fills := []string{"Light Red Fill with Dark Red Text", "Yellow Fill with Dark Yellow Text",
		"Green Fill with Dark Green Text", "Light Red Fill", "Red Text", "Red Border"}
	chosenFill := fills[0]
	gp.ComboBox("cbGTFill", "with", fills, func(_ *appkit.App, v string) { chosenFill = v })
	gtDlg.AddOKCancel(func(*appkit.App) {
		v := thEd.Pattern(uia.ValuePattern).(uia.Valuer).Value(thEd)
		if f, ok := Numeric(v); ok {
			threshold = f
		}
		x.Sheet.AddCondRule(CondRule{
			Kind: "GreaterThan", Threshold: threshold,
			Fill: chosenFill, Range: x.Sheet.SelectionRange(),
		})
	})
	gt := hcr.DialogButton("btnGreaterThan", "Greater Than", gtDlg, nil)
	gt.SetDescription("Highlight cells greater than a value; applies to the selected range")
	for _, m := range []string{"Less Than", "Between", "Equal To",
		"Text that Contains", "A Date Occurring", "Duplicate Values"} {
		hcr.MenuItem("", m, nil)
	}

	tb := body.Pane("pnlTopBottom", "Top/Bottom Rules")
	for _, m := range []string{"Top 10 Items", "Top 10%", "Bottom 10 Items",
		"Bottom 10%", "Above Average", "Below Average"} {
		tb.MenuItem("", m, nil)
	}
	db := body.Pane("pnlDataBars", "Data Bars")
	for _, m := range []string{"Blue Data Bar (Gradient)", "Green Data Bar (Gradient)",
		"Red Data Bar (Gradient)", "Orange Data Bar (Gradient)",
		"Light Blue Data Bar (Gradient)", "Purple Data Bar (Gradient)",
		"Blue Data Bar (Solid)", "Green Data Bar (Solid)", "Red Data Bar (Solid)",
		"Orange Data Bar (Solid)", "Light Blue Data Bar (Solid)",
		"Purple Data Bar (Solid)"} {
		db.MenuItem("", m, nil)
	}
	csc := body.Pane("pnlColorScales", "Color Scales")
	for i := 1; i <= 12; i++ {
		csc.MenuItem("", fmt.Sprintf("Color Scale %d", i), nil)
	}
	is := body.Pane("pnlIconSets", "Icon Sets")
	for _, m := range []string{"3 Arrows (Colored)", "3 Arrows (Gray)",
		"3 Triangles", "3 Stars", "3 Flags", "3 Traffic Lights",
		"3 Traffic Lights Rimmed", "3 Signs", "3 Symbols Circled",
		"3 Symbols", "4 Arrows (Colored)", "4 Arrows (Gray)",
		"4 Red To Black", "4 Ratings", "4 Traffic Lights",
		"5 Arrows (Colored)", "5 Arrows (Gray)", "5 Ratings",
		"5 Quarters", "5 Boxes"} {
		is.MenuItem("", m, nil)
	}
	body.MenuItem("", "New Rule", nil)
	body.MenuItem("", "Clear Rules from Selected Cells", nil)
	body.MenuItem("", "Clear Rules from Entire Sheet", func(*appkit.App) { x.Sheet.CondRules = nil })
	body.MenuItem("", "Manage Rules", nil)
	return menu
}

func (x *App) buildSortFilterMenu() *appkit.Popup {
	menu := x.NewMenu("mnuSortFilter", "Sort & Filter")
	body := menu.Panel()
	body.MenuItem("btnSortAZ", "Sort A to Z", func(*appkit.App) {
		x.Sheet.SortByColumn(colOfSelection(x.Sheet), false, true)
	})
	body.MenuItem("btnSortZA", "Sort Z to A", func(*appkit.App) {
		x.Sheet.SortByColumn(colOfSelection(x.Sheet), true, true)
	})

	sortDlg := x.NewDialog("dlgSort", "Sort")
	sp := sortDlg.Panel()
	cols := make([]string, GridCols)
	for i := range cols {
		cols[i] = "Column " + ColName(i+1)
	}
	sortCol, sortOrder := "A", "Ascending"
	sp.ComboBox("cbSortBy", "Sort by", cols, func(_ *appkit.App, v string) {
		sortCol = strings.TrimPrefix(v, "Column ")
	})
	sp.ComboBox("cbSortOrder", "Order",
		[]string{"Ascending", "Descending"}, func(_ *appkit.App, v string) { sortOrder = v })
	sp.CheckBox("chkHasHeaders", "My data has headers",
		func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})
	sortOptions := sp.Pane("pnlSortOptions", "Sort Options")
	sortOptions.CheckBox("chkCaseSensitive", "Case sensitive",
		func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	sortOptions.RadioGroup("rbSortOrient", []string{"Sort top to bottom", "Sort left to right"}, nil)
	appkit.AddDetailToggle(sp, "btnSort", "Options", "Hide Options", sortOptions.El)
	sortDlg.AddOKCancel(func(*appkit.App) {
		x.Sheet.SortByColumn(sortCol, sortOrder == "Descending", true)
	})
	x.sortDlg = sortDlg
	body.DialogButton("btnCustomSort", "Custom Sort", sortDlg, nil)

	body.MenuItem("btnFilterToggle", "Filter", func(*appkit.App) {
		x.Sheet.FilterOn = !x.Sheet.FilterOn
	})
	body.MenuItem("", "Clear Filter", func(*appkit.App) { x.Sheet.FilterOn = false })
	body.MenuItem("", "Reapply Filter", nil)
	return menu
}

func (x *App) buildFormatCells(picker *appkit.Popup) *appkit.Popup {
	dlg := x.NewDialog("dlgFormatCellsFull", "Format Cells")
	p := dlg.Panel()
	cats := p.List("lstNumberCategory", "Category")
	chosen := ""
	for _, c := range []string{"General", "Number", "Currency", "Accounting",
		"Date", "Time", "Percentage", "Fraction", "Scientific", "Text",
		"Special", "Custom"} {
		c := c
		cats.ListItem("", c, func(*appkit.App) { chosen = c })
	}
	codes := p.List("lstCustomFormats", "Type")
	for _, code := range []string{"0", "0.00", "#,##0", "#,##0.00",
		"#,##0_);(#,##0)", "#,##0_);[Red](#,##0)", "#,##0.00_);(#,##0.00)",
		"#,##0.00_);[Red](#,##0.00)", "$#,##0_);($#,##0)",
		"$#,##0_);[Red]($#,##0)", "$#,##0.00_);($#,##0.00)",
		"$#,##0.00_);[Red]($#,##0.00)", "0%", "0.00%", "0.00E+00",
		"##0.0E+0", "# ?/?", "# ??/??", "m/d/yyyy", "d-mmm-yy", "d-mmm",
		"mmm-yy", "h:mm AM/PM", "h:mm:ss AM/PM", "h:mm", "h:mm:ss",
		"m/d/yyyy h:mm", "mm:ss", "mm:ss.0", "@", "[h]:mm:ss",
		"_($* #,##0_);_($* (#,##0);_($* \"-\"_);_(@_)",
		"_(* #,##0_);_(* (#,##0);_(* \"-\"_);_(@_)",
		"_($* #,##0.00_);_($* (#,##0.00);_($* \"-\"??_);_(@_)",
		"_(* #,##0.00_);_(* (#,##0.00);_(* \"-\"??_);_(@_)",
		"yyyy-mm-dd", "dddd, mmmm dd, yyyy", "General;General;\"-\"",
		"[Blue]0.00;[Red]-0.00", "0.0\"k\""} {
		codes.ListItem("", code, nil)
	}
	p.Spinner("spnDecimalPlaces", "Decimal places", 0, 30, 2, nil)
	p.CheckBox("chkThousands", "Use 1000 Separator",
		func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	p.MenuButton("btnCellFillColor", "Cell Fill Color", picker,
		func(*appkit.App) any { return BindFillColor })
	dlg.AddOKCancel(func(*appkit.App) {
		if chosen != "" {
			x.Sheet.EachSelected(func(_ string, c *Cell) { c.Format = chosen })
		}
	})
	return dlg
}

func (x *App) buildInsert() {
	ins := x.Tab("tabInsert", "Insert")
	tables := ins.Group("grpTables", "Tables")
	pivotDlg := x.NewDialog("dlgPivot", "Create PivotTable")
	pivotDlg.Panel().Edit("edPivotRange", "Table/Range", "", nil)
	pivotDlg.AddOKCancel(nil)
	tables.DialogButton("btnPivotTable", "PivotTable", pivotDlg, nil)
	tables.Button("btnTable", "Table", nil)

	shared.AddIllustrations(x.App, ins, "x", func(_ *appkit.App, what string) {
		if strings.HasPrefix(what, "chart:") {
			x.Sheet.Charts = append(x.Sheet.Charts, strings.TrimPrefix(what, "chart:"))
			_ = x.EnterContext(ContextChartSelected)
		}
	})

	charts := ins.Group("grpCharts", "Charts")
	quick := x.Gallery("galQuickCharts", "Recommended Charts",
		[]string{"Clustered Column", "Line", "Pie", "Bar", "Area", "Scatter",
			"Waterfall", "Histogram", "Treemap", "Combo", "Map", "Stock"}, 12,
		func(_ *appkit.App, ct string) {
			x.Sheet.Charts = append(x.Sheet.Charts, ct)
			_ = x.EnterContext(ContextChartSelected)
		})
	charts.MenuButton("btnRecommendedCharts", "Recommended Charts", quick, nil)

	spark := ins.Group("grpSparklines", "Sparklines")
	spark.Button("btnSparkLine", "Line Sparkline", nil)
	spark.Button("btnSparkColumn", "Column Sparkline", nil)
	spark.Button("btnSparkWinLoss", "Win/Loss Sparkline", nil)

	filters := ins.Group("grpFilters", "Filters")
	filters.Button("btnSlicer", "Slicer", nil)
	filters.Button("btnTimeline", "Timeline", nil)

	text := ins.Group("grpText", "Text")
	text.Button("btnTextBox", "Text Box", nil)
	text.Button("btnHeaderFooter", "Header & Footer", nil)
	wa := x.Gallery("galWordArt", "WordArt", catalog.WordArtStyles(), 10, nil)
	text.MenuButton("btnWordArt", "WordArt", wa, nil)

	shared.AddSymbols(x.App, ins, "x", nil)
}

func (x *App) buildPageLayout() {
	pl := x.Tab("tabPageLayout", "Page Layout")
	shared.AddThemes(x.App, pl.Group("grpThemes", "Themes"), "x",
		func(_ *appkit.App, th string) { x.Sheet.Theme = th })

	ps := pl.Group("grpPageSetup", "Page Setup")
	margins := x.Gallery("galMargins", "Margins",
		[]string{"Normal", "Wide", "Narrow"}, 3, nil)
	ps.MenuButton("btnMargins", "Margins", margins, nil)
	orient := x.NewMenu("mnuOrientation", "Orientation")
	for _, o := range []string{"Portrait", "Landscape"} {
		orient.Panel().MenuItem("", o, nil)
	}
	ps.MenuButton("btnOrientation", "Orientation", orient, nil)
	size := x.Gallery("galPaperSize", "Size",
		[]string{"Letter", "Legal", "A3", "A4", "A5", "Executive", "Tabloid"}, 7, nil)
	ps.MenuButton("btnSize", "Size", size, nil)
	ps.Button("btnPrintArea", "Print Area", nil)
	ps.Button("btnBreaks", "Breaks", nil)
	ps.Button("btnBackground", "Background", nil)
	ps.Button("btnPrintTitles", "Print Titles", nil)

	stf := pl.Group("grpScaleToFit", "Scale to Fit")
	stf.Spinner("spnScaleWidth", "Width", 0, 10, 0, nil)
	stf.Spinner("spnScaleHeight", "Height", 0, 10, 0, nil)
	stf.Spinner("spnScale", "Scale", 10, 400, 100, nil)

	so := pl.Group("grpSheetOptions", "Sheet Options")
	so.CheckBox("chkViewGridlines", "View Gridlines",
		func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})
	so.CheckBox("chkPrintGridlines", "Print Gridlines",
		func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	so.CheckBox("chkViewHeadings", "View Headings",
		func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})
	so.CheckBox("chkPrintHeadings", "Print Headings",
		func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
}

func (x *App) buildFormulas() {
	f := x.Tab("tabFormulas", "Formulas")
	lib := f.Group("grpFunctionLibrary", "Function Library")
	insFn := x.NewDialog("dlgInsertFunction", "Insert Function")
	ifp := insFn.Panel()
	ifp.Edit("edSearchFunction", "Search for a function", "", nil)
	ifp.ComboBox("cbFnCategory", "Or select a category",
		[]string{"Most Recently Used", "All", "Financial", "Date & Time",
			"Math & Trig", "Statistical", "Lookup & Reference", "Database",
			"Text", "Logical", "Information", "Engineering", "Cube",
			"Compatibility", "Web"}, nil)
	fnList := ifp.List("lstAllFunctions", "Select a function")
	fnList.El.MarkLargeEnum()
	allFns := catalog.ExcelFunctions()
	for _, cat := range catalog.ExcelFunctionCategories() {
		for _, fn := range allFns[cat] {
			fn := fn
			fnList.ListItem("", fn, func(*appkit.App) {
				x.Sheet.SetValue(x.Sheet.ActiveCell, "="+fn+"()")
			})
		}
	}
	insFn.AddOKCancel(nil)
	lib.DialogButton("btnInsertFunction", "Insert Function", insFn, nil)

	for _, cat := range catalog.ExcelFunctionCategories() {
		fns := allFns[cat]
		catID := "mnuFn" + strings.ReplaceAll(strings.ReplaceAll(cat, " ", ""), "&", "")
		m := x.NewMenu(catID, cat)
		mb := m.Panel()
		if len(fns) > appkit.LargeEnumThreshold {
			m.Body.MarkLargeEnum()
		}
		for _, fn := range fns {
			fn := fn
			mb.MenuItem("", fn, func(*appkit.App) {
				x.Sheet.SetValue(x.Sheet.ActiveCell, "="+fn+"()")
			})
		}
		lib.MenuButton("btn"+catID, cat, m, nil)
	}

	names := f.Group("grpDefinedNames", "Defined Names")
	names.Button("btnNameManager", "Name Manager", nil)
	names.Button("btnDefineName", "Define Name", nil)
	names.Button("btnUseInFormula", "Use in Formula", nil)
	names.Button("btnCreateFromSelection", "Create from Selection", nil)

	audit := f.Group("grpFormulaAuditing", "Formula Auditing")
	for _, b := range []string{"Trace Precedents", "Trace Dependents",
		"Remove Arrows", "Show Formulas", "Error Checking", "Evaluate Formula"} {
		audit.Button("btn"+strings.ReplaceAll(b, " ", ""), b, nil)
	}
	calc := f.Group("grpCalculation", "Calculation")
	calc.Button("btnCalculateNow", "Calculate Now", nil)
	calc.Button("btnCalculateSheet", "Calculate Sheet", nil)
	calc.Button("btnCalcOptions", "Calculation Options", nil)
}

func (x *App) buildData() {
	d := x.Tab("tabData", "Data")
	get := d.Group("grpGetData", "Get & Transform Data")
	getMenu := x.NewMenu("mnuGetData", "Get Data")
	for _, m := range []string{"From Text/CSV", "From Web", "From Table/Range",
		"From Workbook", "From Database", "From Azure", "From Other Sources"} {
		getMenu.Panel().MenuItem("", m, nil)
	}
	get.MenuButton("btnGetData", "Get Data", getMenu, nil)
	get.Button("btnRefreshAll", "Refresh All", nil)

	sf := d.Group("grpSortFilterData", "Sort & Filter")
	sf.Button("btnSortAZData", "Sort A to Z", func(*appkit.App) {
		x.Sheet.SortByColumn(colOfSelection(x.Sheet), false, true)
	})
	sf.Button("btnSortZAData", "Sort Z to A", func(*appkit.App) {
		x.Sheet.SortByColumn(colOfSelection(x.Sheet), true, true)
	})
	sf.ToggleButton("btnFilterData", "Filter",
		func(*appkit.App) bool { return x.Sheet.FilterOn },
		func(_ *appkit.App, on bool) { x.Sheet.FilterOn = on })
	// The Sort dialog is reachable from Home → Sort & Filter and from
	// here: a second path into the same dialog (merge node).
	sf.DialogButton("btnSortDialogData", "Sort", x.sortDlg, nil)

	tools := d.Group("grpDataTools", "Data Tools")
	wiz := x.Wizard("wizTextToColumns", "Convert Text to Columns Wizard",
		[]appkit.WizardStep{
			{Name: "Choose the file type", Build: func(p appkit.Panel) {
				p.RadioGroup("rbTTCType", []string{"Delimited", "Fixed width"}, nil)
			}},
			{Name: "Set the delimiters", Build: func(p appkit.Panel) {
				p.CheckBox("chkTab", "Tab", func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})
				p.CheckBox("chkSemicolon", "Semicolon", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
				p.CheckBox("chkComma", "Comma", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
				p.CheckBox("chkSpace", "Space", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
			}},
			{Name: "Set the data format", Build: func(p appkit.Panel) {
				p.RadioGroup("rbTTCFormat", []string{"General", "Text", "Date"}, nil)
			}},
		}, nil)
	tools.DialogButton("btnTextToColumns", "Text to Columns", wiz, nil)
	tools.Button("btnFlashFill", "Flash Fill", nil)
	tools.Button("btnRemoveDuplicates", "Remove Duplicates", nil)
	dv := x.NewDialog("dlgDataValidation", "Data Validation")
	dv.Panel().ComboBox("cbDVAllow", "Allow",
		[]string{"Any value", "Whole number", "Decimal", "List", "Date",
			"Time", "Text length", "Custom"}, nil)
	dv.AddOKCancel(nil)
	tools.DialogButton("btnDataValidation", "Data Validation", dv, nil)
	tools.Button("btnConsolidate", "Consolidate", nil)

	wi := d.Group("grpForecast", "Forecast")
	whatIf := x.NewMenu("mnuWhatIf", "What-If Analysis")
	for _, m := range []string{"Scenario Manager", "Goal Seek", "Data Table"} {
		whatIf.Panel().MenuItem("", m, nil)
	}
	wi.MenuButton("btnWhatIf", "What-If Analysis", whatIf, nil)
	wi.Button("btnForecastSheet", "Forecast Sheet", nil)

	outline := d.Group("grpOutline", "Outline")
	outline.Button("btnGroup", "Group", nil)
	outline.Button("btnUngroup", "Ungroup", nil)
	outline.Button("btnSubtotal", "Subtotal", nil)
}

func (x *App) buildReview() {
	r := x.Tab("tabReview", "Review")
	proof := r.Group("grpProofing", "Proofing")
	proof.Button("btnSpelling", "Spelling", nil)
	proof.Button("btnThesaurus", "Thesaurus", nil)
	comments := r.Group("grpComments", "Comments")
	comments.Button("btnNewComment", "New Comment", nil)
	comments.Button("btnDeleteComment", "Delete Comment", nil)
	protect := r.Group("grpProtect", "Protect")
	protect.Button("btnProtectSheet", "Protect Sheet", nil)
	protect.Button("btnProtectWorkbook", "Protect Workbook", nil)
}

func (x *App) buildView() {
	v := x.Tab("tabView", "View")
	views := v.Group("grpWorkbookViews", "Workbook Views")
	for _, b := range []string{"Normal", "Page Break Preview", "Page Layout",
		"Custom Views"} {
		views.Button("btnView"+strings.ReplaceAll(b, " ", ""), b, nil)
	}
	show := v.Group("grpShow", "Show")
	show.CheckBox("chkFormulaBar", "Formula Bar",
		func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})
	show.CheckBox("chkGridlinesView", "Gridlines",
		func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})
	show.CheckBox("chkHeadings", "Headings",
		func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})

	zoom := v.Group("grpZoom", "Zoom")
	zoomDlg := x.NewDialog("dlgZoom", "Zoom")
	zoomDlg.Panel().RadioGroup("rbZoom",
		[]string{"200%", "100%", "75%", "50%", "25%", "Fit selection", "Custom"},
		func(_ *appkit.App, i int) {
			vals := []int{200, 100, 75, 50, 25, 100, 100}
			x.Sheet.Zoom = vals[i]
		})
	zoomDlg.AddOKCancel(nil)
	zoom.DialogButton("btnZoom", "Zoom", zoomDlg, nil)
	zoom.Button("btnZoom100", "100%", func(*appkit.App) { x.Sheet.Zoom = 100 })
	zoom.Button("btnZoomToSelection", "Zoom to Selection", nil)

	win := v.Group("grpWindow", "Window")
	freeze := x.NewMenu("mnuFreezePanes", "Freeze Panes")
	fp := freeze.Panel()
	ftr := fp.MenuItem("btnFreezeTopRow", "Freeze Top Row", func(*appkit.App) {
		x.Sheet.FrozenTopRow = true
	})
	ftr.SetDescription("Keep the top row visible while scrolling")
	fp.MenuItem("btnFreezeFirstColumn", "Freeze First Column", func(*appkit.App) {
		x.Sheet.FrozenFirstCol = true
	})
	fp.MenuItem("btnFreezePanesItem", "Freeze Panes", func(*appkit.App) {
		x.Sheet.FrozenTopRow, x.Sheet.FrozenFirstCol = true, true
	})
	fp.MenuItem("btnUnfreeze", "Unfreeze Panes", func(*appkit.App) {
		x.Sheet.FrozenTopRow, x.Sheet.FrozenFirstCol = false, false
	})
	win.MenuButton("btnFreezePanes", "Freeze Panes", freeze, nil)
	win.Button("btnNewWindow", "New Window", nil)
	win.Button("btnSplit", "Split", nil)
}

func (x *App) buildChartDesign() {
	cd := x.ContextTab("tabChartDesign", "Chart Design", ContextChartSelected)
	layouts := cd.Group("grpChartLayouts", "Chart Layouts")
	ql := x.Gallery("galQuickLayout", "Quick Layout",
		[]string{"Layout 1", "Layout 2", "Layout 3", "Layout 4", "Layout 5",
			"Layout 6", "Layout 7", "Layout 8", "Layout 9", "Layout 10",
			"Layout 11"}, 11, nil)
	layouts.MenuButton("btnQuickLayout", "Quick Layout", ql, nil)
	styles := cd.Group("grpChartStyles", "Chart Styles")
	csGal := x.Gallery("galChartStyles", "Chart Styles",
		[]string{"Style 1", "Style 2", "Style 3", "Style 4", "Style 5",
			"Style 6", "Style 7", "Style 8", "Style 9", "Style 10",
			"Style 11", "Style 12", "Style 13", "Style 14"}, 14, nil)
	styles.MenuButton("btnChartStylesGal", "Chart Styles", csGal, nil)
	data := cd.Group("grpChartData", "Data")
	data.Button("btnSwitchRowColumn", "Switch Row/Column", nil)
	data.Button("btnSelectData", "Select Data", nil)
}

// buildGrid attaches the Name Box, formula bar, the cell grid, and the
// vertical scrollbar.
func (x *App) buildGrid() {
	bar := x.Window().Pane("pnlFormulaBar", "Formula Bar Area")
	x.nameBox = bar.CommitEdit("edNameBox", "Name Box", "A1", func(_ *appkit.App, v string) {
		if x.Sheet.SelectRange(v) {
			x.ScrollToRow(rowOf(x.Sheet.ActiveCell))
		}
	})
	bar.CommitEdit("edFormulaBar", "Formula Bar", "", func(_ *appkit.App, v string) {
		x.Sheet.SetValue(x.Sheet.ActiveCell, v)
		x.refreshCell(x.Sheet.ActiveCell)
	})

	gridPanel := x.Window().Pane("pnlGridArea", "Sheet Area")
	grid := uia.NewElement("grdSheet1", "Sheet1", uia.DataGridControl)
	grid.SetDescription("Worksheet cell grid; cells are DataItem controls named by reference")
	gridPanel.Custom(grid)
	x.gridEl = grid

	hdr := uia.NewElement("hdrCols", "Column Headers", uia.HeaderControl)
	grid.AddChild(hdr)
	for c := 1; c <= GridCols; c++ {
		h := uia.NewElement("", "Column "+ColName(c), uia.HeaderItemControl)
		hdr.AddChild(h)
	}
	sel := uia.NewSelectionList(true, nil)
	grid.SetPattern(uia.SelectionPattern, sel)

	for r := 1; r <= GridRows; r++ {
		for c := 1; c <= GridCols; c++ {
			ref := Ref(r, c)
			item := uia.NewElement("cell"+ref, ref, uia.DataItemControl)
			item.SetPattern(uia.ValuePattern, &cellValue{x: x, ref: ref})
			item.SetPattern(uia.SelectionItemPattern, sel.Item())
			item.OnClick(func(*uia.Element) { x.Sheet.Select(ref, ref) })
			grid.AddChild(item)
			x.dataItems[ref] = item
		}
	}
	x.applyViewport()

	x.Window().VScrollBar("sbSheet", "Vertical Scroll Bar", func(_ *appkit.App, v float64) {
		x.ScrollTo(v)
	})
	status := x.Window().Pane("pnlStatusBar", "Status Bar")
	status.Label("Ready")
}

// cellValue adapts a sheet cell to the uia Value pattern.
type cellValue struct {
	x   *App
	ref string
}

func (cv *cellValue) Value(*uia.Element) string { return cv.x.Sheet.Value(cv.ref) }
func (cv *cellValue) SetValue(_ *uia.Element, v string) error {
	cv.x.Sheet.SetValue(cv.ref, v)
	return nil
}
func (cv *cellValue) IsReadOnly(*uia.Element) bool { return false }

// ScrollTo pans the viewport to v% of the scroll range.
func (x *App) ScrollTo(v float64) {
	maxTop := GridRows - VisibleRows + 1
	top := 1 + int(v/100*float64(maxTop-1)+0.5)
	if top < 1 {
		top = 1
	}
	if top > maxTop {
		top = maxTop
	}
	x.viewTop = top
	x.applyViewport()
}

// ScrollToRow pans the viewport so the given row is visible.
func (x *App) ScrollToRow(row int) {
	if row >= x.viewTop && row < x.viewTop+VisibleRows {
		return
	}
	top := row - VisibleRows/2
	maxTop := GridRows - VisibleRows + 1
	if top < 1 {
		top = 1
	}
	if top > maxTop {
		top = maxTop
	}
	x.viewTop = top
	x.applyViewport()
}

// ViewTop returns the first visible data row.
func (x *App) ViewTop() int { return x.viewTop }

func (x *App) applyViewport() {
	for ref, item := range x.dataItems {
		r, _, _ := ParseRef(ref)
		visible := r >= x.viewTop && r < x.viewTop+VisibleRows
		if x.Sheet.FrozenTopRow && r == 1 {
			visible = true
		}
		item.SetVisible(visible)
	}
}

func (x *App) refreshCell(string) { /* values are read through the pattern; nothing cached */ }

// GridElement returns the worksheet DataGrid control.
func (x *App) GridElement() *uia.Element { return x.gridEl }

// NameBox returns the Name Box edit control.
func (x *App) NameBox() *uia.Element { return x.nameBox }

// DataItem returns the DataItem element for a cell reference.
func (x *App) DataItem(ref string) *uia.Element { return x.dataItems[strings.ToUpper(ref)] }

func colOfSelection(s *Sheet) string {
	_, c, ok := ParseRef(s.ActiveCell)
	if !ok {
		return "A"
	}
	return ColName(c)
}

func rowOf(ref string) int {
	r, _, ok := ParseRef(ref)
	if !ok {
		return 1
	}
	return r
}

func tableStyleNames() []string {
	var out []string
	for _, shade := range []string{"Light", "Medium", "Dark"} {
		n := 21
		if shade == "Dark" {
			n = 11
		}
		for i := 1; i <= n; i++ {
			out = append(out, fmt.Sprintf("Table Style %s %d", shade, i))
		}
	}
	return out
}
