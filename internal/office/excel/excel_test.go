package excel

import (
	"testing"
	"testing/quick"

	"repro/internal/uia"
)

func click(t *testing.T, x *App, el *uia.Element) {
	t.Helper()
	if el == nil {
		t.Fatal("click target is nil")
	}
	if err := x.Desk.Click(el); err != nil {
		t.Fatalf("click %v: %v", el, err)
	}
}

func findIn(t *testing.T, root *uia.Element, autoID string) *uia.Element {
	t.Helper()
	e := root.FindByAutomationID(autoID)
	if e == nil {
		t.Fatalf("control %q not found", autoID)
	}
	return e
}

func TestRefParsing(t *testing.T) {
	cases := []struct {
		ref      string
		row, col int
		ok       bool
	}{
		{"A1", 1, 1, true},
		{"J30", 30, 10, true},
		{"b12", 12, 2, true},
		{" C3 ", 3, 3, true},
		{"K1", 0, 0, false},  // beyond GridCols
		{"A31", 0, 0, false}, // beyond GridRows
		{"1A", 0, 0, false},
		{"", 0, 0, false},
		{"A", 0, 0, false},
	}
	for _, c := range cases {
		r, col, ok := ParseRef(c.ref)
		if r != c.row || col != c.col || ok != c.ok {
			t.Errorf("ParseRef(%q) = %d,%d,%v want %d,%d,%v", c.ref, r, col, ok, c.row, c.col, c.ok)
		}
	}
}

func TestRefRoundTripProperty(t *testing.T) {
	f := func(r, c uint8) bool {
		row := int(r)%GridRows + 1
		col := int(c)%GridCols + 1
		rr, cc, ok := ParseRef(Ref(row, col))
		return ok && rr == row && cc == col
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestParseRangeNormalizes(t *testing.T) {
	r1, c1, r2, c2, ok := ParseRange("C10:A1")
	if !ok || r1 != 1 || c1 != 1 || r2 != 10 || c2 != 3 {
		t.Errorf("ParseRange normalized = %d,%d,%d,%d,%v", r1, c1, r2, c2, ok)
	}
}

func TestScale(t *testing.T) {
	x := New()
	n := x.Win.Count()
	for _, p := range x.AllPopupWindows() {
		n += p.Count()
	}
	if n < 3800 {
		t.Errorf("excel exposes %d controls, want > 3800", n)
	}
	t.Logf("excel controls: %d", n)
}

func TestNameBoxCommitSelectsAndScrolls(t *testing.T) {
	x := New()
	click(t, x, x.NameBox())
	if err := x.Desk.TypeText("B25"); err != nil {
		t.Fatal(err)
	}
	if x.Sheet.ActiveCell != "A1" {
		t.Fatal("selection moved before ENTER commit")
	}
	if err := x.Desk.PressKey("ENTER"); err != nil {
		t.Fatal(err)
	}
	if x.Sheet.ActiveCell != "B25" {
		t.Fatalf("active cell = %q, want B25", x.Sheet.ActiveCell)
	}
	if !x.DataItem("B25").OnScreen() {
		t.Fatal("committed cell not scrolled into view")
	}
}

func TestFormulaBarWritesActiveCell(t *testing.T) {
	x := New()
	x.Sheet.SelectRange("D4")
	fb := findIn(t, x.Win, "edFormulaBar")
	click(t, x, fb)
	if err := x.Desk.TypeText("=SUM(B2:B6)"); err != nil {
		t.Fatal(err)
	}
	if err := x.Desk.PressKey("ENTER"); err != nil {
		t.Fatal(err)
	}
	if got := x.Sheet.Value("D4"); got != "=SUM(B2:B6)" {
		t.Errorf("D4 = %q", got)
	}
}

func TestViewportScrolling(t *testing.T) {
	x := New()
	if !x.DataItem("A1").OnScreen() || x.DataItem("A30").OnScreen() {
		t.Fatal("initial viewport wrong")
	}
	x.ScrollTo(100)
	if x.DataItem("A1").OnScreen() {
		t.Fatal("A1 still visible at bottom scroll")
	}
	if !x.DataItem("A30").OnScreen() {
		t.Fatal("A30 not visible at bottom scroll")
	}
	// Freezing the top row keeps row 1 visible regardless of scroll.
	x.Sheet.FrozenTopRow = true
	x.ScrollTo(100)
	if !x.DataItem("A1").OnScreen() {
		t.Fatal("frozen top row not visible after scroll")
	}
}

func TestFreezeTopRowViaMenu(t *testing.T) {
	x := New()
	x.ActivateTabByName("View")
	click(t, x, findIn(t, x.Win, "btnFreezePanes"))
	menu := x.Desk.TopWindow()
	click(t, x, findIn(t, menu, "btnFreezeTopRow"))
	if !x.Sheet.FrozenTopRow {
		t.Fatal("freeze top row not applied")
	}
	if x.Sheet.FrozenFirstCol {
		t.Fatal("freeze leaked to first column")
	}
}

func TestNumberFormatViaRibbon(t *testing.T) {
	x := New()
	x.Sheet.SelectRange("B2:B6")
	cb := findIn(t, x.Win, "cbNumberFormat")
	click(t, x, cb) // expand
	item := cb.FindByName("Percentage")
	click(t, x, item)
	if got := x.Sheet.Cell("B3").Format; got != "Percentage" {
		t.Errorf("B3 format = %q", got)
	}
	if got := x.Sheet.Cell("C3").Format; got == "Percentage" {
		t.Error("format leaked outside selection")
	}
}

func TestConditionalFormattingGreaterThan(t *testing.T) {
	x := New()
	x.Sheet.SelectRange("B2:B6")
	click(t, x, findIn(t, x.Win, "btnCondFormatting"))
	menu := x.Desk.TopWindow()
	click(t, x, findIn(t, menu, "btnGreaterThan"))
	dlg := x.Desk.TopWindow()
	ed := findIn(t, dlg, "edGTValue")
	click(t, x, ed)
	if err := x.Desk.TypeText("100"); err != nil {
		t.Fatal(err)
	}
	click(t, x, findIn(t, dlg, "dlgGreaterThanOK"))

	if len(x.Sheet.CondRules) != 1 {
		t.Fatalf("cond rules = %d", len(x.Sheet.CondRules))
	}
	// 120, 143, 131 are > 100; 95 and 88 are not.
	want := map[string]bool{"B2": true, "B3": false, "B4": true, "B5": false, "B6": true}
	for ref, hl := range want {
		got := x.Sheet.Cell(ref).Fill != ""
		if got != hl {
			t.Errorf("%s highlighted=%v want %v", ref, got, hl)
		}
	}
}

func TestSortDescendingViaDialog(t *testing.T) {
	x := New()
	x.Sheet.SelectRange("A1:C6")
	click(t, x, findIn(t, x.Win, "btnSortFilter"))
	menu := x.Desk.TopWindow()
	click(t, x, findIn(t, menu, "btnCustomSort"))
	dlg := x.Desk.TopWindow()

	by := findIn(t, dlg, "cbSortBy")
	click(t, x, by)
	click(t, x, by.FindByName("Column B"))
	ord := findIn(t, dlg, "cbSortOrder")
	click(t, x, ord)
	click(t, x, ord.FindByName("Descending"))
	click(t, x, findIn(t, dlg, "dlgSortOK"))

	got := x.Sheet.Column("B")
	want := []string{"Sales", "143", "131", "120", "95", "88"}
	for i, v := range want {
		if got[i] != v {
			t.Fatalf("column B after sort = %v, want %v", got, want)
		}
	}
	if x.Sheet.SortedBy != "B" || !x.Sheet.SortDesc {
		t.Error("sort metadata not recorded")
	}
	// Row integrity: the row with Sales=143 must still be East.
	if x.Sheet.Value("A2") != "East" {
		t.Errorf("A2 = %q, rows were torn apart by sort", x.Sheet.Value("A2"))
	}
}

func TestFillColorPathSemantics(t *testing.T) {
	x := New()
	x.Sheet.SelectRange("A1:A2")
	click(t, x, findIn(t, x.Win, "btnFillColor"))
	picker := x.Desk.TopWindow()
	click(t, x, picker.FindByName("Gold"))
	if x.Sheet.Cell("A1").Fill != "Gold" || x.Sheet.Cell("A2").Fill != "Gold" {
		t.Error("fill color not applied")
	}
	if x.Sheet.Cell("A1").FontColor == "Gold" {
		t.Error("fill path changed font color")
	}

	x.Sheet.SelectRange("A1")
	click(t, x, findIn(t, x.Win, "btnFontColor"))
	picker = x.Desk.TopWindow()
	click(t, x, picker.FindByName("Red"))
	if x.Sheet.Cell("A1").FontColor != "Red" {
		t.Error("font color not applied via second path")
	}
}

func TestTextToColumnsWizardCycle(t *testing.T) {
	x := New()
	x.ActivateTabByName("Data")
	click(t, x, findIn(t, x.Win, "btnTextToColumns"))
	wiz := x.Desk.TopWindow()
	step1 := findIn(t, wiz, "wizTextToColumnsStep1")
	step2 := findIn(t, wiz, "wizTextToColumnsStep2")
	next := findIn(t, wiz, "wizTextToColumnsNextStep")
	back := findIn(t, wiz, "wizTextToColumnsBack")

	if !step1.OnScreen() {
		t.Fatal("wizard not at step 1")
	}
	click(t, x, next)
	if !step2.OnScreen() || step1.OnScreen() {
		t.Fatal("Next did not advance")
	}
	click(t, x, back)
	if !step1.OnScreen() {
		t.Fatal("Back did not return (wizard cycle)")
	}
	click(t, x, findIn(t, wiz, "wizTextToColumnsFinish"))
	if x.OpenPopups() != 0 {
		t.Fatal("Finish did not close wizard")
	}
}

func TestCellValuePatternExposesFullContent(t *testing.T) {
	x := New()
	long := "This value is far too long to display in the cell"
	x.Sheet.SetValue("C2", long)
	item := x.DataItem("C2")
	v := item.Pattern(uia.ValuePattern).(uia.Valuer)
	if got := v.Value(item); got != long {
		t.Errorf("DataItem value = %q", got)
	}
}

func TestChartInsertEntersContext(t *testing.T) {
	x := New()
	tab := findIn(t, x.Win, "tabChartDesign")
	if tab.OnScreen() {
		t.Fatal("Chart Design visible without chart")
	}
	x.ActivateTabByName("Insert")
	click(t, x, findIn(t, x.Win, "btnRecommendedCharts"))
	gal := x.Desk.TopWindow()
	click(t, x, gal.FindByName("Pie"))
	if len(x.Sheet.Charts) != 1 || x.Sheet.Charts[0] != "Pie" {
		t.Fatalf("charts = %v", x.Sheet.Charts)
	}
	if !tab.OnScreen() {
		t.Fatal("Chart Design tab not revealed")
	}
}

func TestColumnWidthDialog(t *testing.T) {
	x := New()
	x.Sheet.SelectRange("B1:C1")
	click(t, x, findIn(t, x.Win, "btnFormatMenu"))
	menu := x.Desk.TopWindow()
	click(t, x, findIn(t, menu, "btnColumnWidth"))
	dlg := x.Desk.TopWindow()
	spn := findIn(t, dlg, "spnColWidth")
	spn.Pattern(uia.RangeValuePattern).(uia.RangeValuer).SetRangeValue(spn, 20)
	click(t, x, findIn(t, dlg, "dlgColumnWidthOK"))
	if x.Sheet.ColWidth["B"] != 20 || x.Sheet.ColWidth["C"] != 20 {
		t.Errorf("col widths = %v", x.Sheet.ColWidth)
	}
}

func TestSortStableOnTies(t *testing.T) {
	x := New(
		[]string{"Name", "Score"},
		[]string{"a", "5"},
		[]string{"b", "5"},
		[]string{"c", "3"},
	)
	x.Sheet.SortByColumn("B", true, true)
	if x.Sheet.Value("A2") != "a" || x.Sheet.Value("A3") != "b" {
		t.Errorf("tie order not stable: %v", x.Sheet.Column("A"))
	}
	if x.Sheet.Value("B4") != "3" {
		t.Errorf("sort wrong: %v", x.Sheet.Column("B"))
	}
}
