// Package excel implements the simulated spreadsheet: a cell-grid model
// beneath a full ribbon UI built with appkit. It is the largest of the three
// case-study applications (paper §5.2: core topology ≈ 2K controls).
package excel

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// GridRows and GridCols define the modeled sheet size. The UI exposes every
// cell as a DataItem control; a viewport of VisibleRows rows is shown at a
// time and the vertical scrollbar pans it.
const (
	GridRows    = 30
	GridCols    = 10
	VisibleRows = 15
)

// Cell is one spreadsheet cell.
type Cell struct {
	Value     string
	Format    string // number format ("General", "Percentage", ...)
	Fill      string
	FontColor string
	Bold      bool
}

// CondRule is a conditional-formatting rule.
type CondRule struct {
	Kind      string // "GreaterThan", "LessThan", "Between", ...
	Threshold float64
	Fill      string
	Range     string // "A1:C10"
}

// Sheet is the spreadsheet model.
type Sheet struct {
	cells map[string]*Cell

	// Selection is a rectangular range; both ends inclusive ("A1", "C10").
	SelFrom, SelTo string
	ActiveCell     string

	FrozenTopRow   bool
	FrozenFirstCol bool
	FilterOn       bool
	SortedBy       string // column letter of the last sort
	SortDesc       bool
	Theme          string
	Zoom           int

	CondRules []CondRule
	Charts    []string
	ColWidth  map[string]float64
	Saved     string
}

// NewSheet creates an empty sheet with A1 active.
func NewSheet() *Sheet {
	return &Sheet{
		cells:      make(map[string]*Cell),
		ActiveCell: "A1",
		SelFrom:    "A1",
		SelTo:      "A1",
		Theme:      "Office",
		Zoom:       100,
		ColWidth:   make(map[string]float64),
	}
}

// ColName returns the letter name of a 1-based column index (1 → "A").
func ColName(i int) string {
	name := ""
	for i > 0 {
		i--
		name = string(rune('A'+i%26)) + name
		i /= 26
	}
	return name
}

// Ref builds an "A1"-style reference from 1-based row and column.
func Ref(row, col int) string { return fmt.Sprintf("%s%d", ColName(col), row) }

// ParseRef splits an "A1"-style reference. ok is false for malformed refs or
// refs outside the grid.
func ParseRef(ref string) (row, col int, ok bool) {
	ref = strings.ToUpper(strings.TrimSpace(ref))
	i := 0
	for i < len(ref) && ref[i] >= 'A' && ref[i] <= 'Z' {
		col = col*26 + int(ref[i]-'A') + 1
		i++
	}
	if i == 0 || i == len(ref) {
		return 0, 0, false
	}
	n, err := strconv.Atoi(ref[i:])
	if err != nil || n < 1 || n > GridRows || col < 1 || col > GridCols {
		return 0, 0, false
	}
	return n, col, true
}

// ParseRange splits "A1:C10" (or a single ref) into corners.
func ParseRange(r string) (r1, c1, r2, c2 int, ok bool) {
	parts := strings.SplitN(r, ":", 2)
	r1, c1, ok = ParseRef(parts[0])
	if !ok {
		return
	}
	if len(parts) == 1 {
		return r1, c1, r1, c1, true
	}
	r2, c2, ok = ParseRef(parts[1])
	if !ok {
		return
	}
	if r2 < r1 {
		r1, r2 = r2, r1
	}
	if c2 < c1 {
		c1, c2 = c2, c1
	}
	return r1, c1, r2, c2, true
}

// Cell returns the cell at ref, creating it on first touch. Nil for invalid
// refs.
func (s *Sheet) Cell(ref string) *Cell {
	row, col, ok := ParseRef(ref)
	if !ok {
		return nil
	}
	key := Ref(row, col)
	c := s.cells[key]
	if c == nil {
		c = &Cell{Format: "General"}
		s.cells[key] = c
	}
	return c
}

// Value returns the cell's value ("" for untouched cells).
func (s *Sheet) Value(ref string) string {
	row, col, ok := ParseRef(ref)
	if !ok {
		return ""
	}
	if c := s.cells[Ref(row, col)]; c != nil {
		return c.Value
	}
	return ""
}

// SetValue writes a cell value.
func (s *Sheet) SetValue(ref, v string) {
	if c := s.Cell(ref); c != nil {
		c.Value = v
	}
}

// Select sets the selection range (and the active cell to its top-left).
func (s *Sheet) Select(from, to string) bool {
	r1, c1, r2, c2, ok := ParseRange(from + ":" + to)
	if !ok {
		return false
	}
	s.SelFrom, s.SelTo = Ref(r1, c1), Ref(r2, c2)
	s.ActiveCell = s.SelFrom
	return true
}

// SelectRange accepts "A1:C10" or "B4".
func (s *Sheet) SelectRange(rng string) bool {
	r1, c1, r2, c2, ok := ParseRange(rng)
	if !ok {
		return false
	}
	s.SelFrom, s.SelTo = Ref(r1, c1), Ref(r2, c2)
	s.ActiveCell = s.SelFrom
	return true
}

// SelectionRange returns the selection as "A1:C10" (or a single ref).
func (s *Sheet) SelectionRange() string {
	if s.SelFrom == s.SelTo {
		return s.SelFrom
	}
	return s.SelFrom + ":" + s.SelTo
}

// EachSelected runs fn over every cell in the selection.
func (s *Sheet) EachSelected(fn func(ref string, c *Cell)) int {
	r1, c1, r2, c2, ok := ParseRange(s.SelectionRange())
	if !ok {
		return 0
	}
	n := 0
	for r := r1; r <= r2; r++ {
		for c := c1; c <= c2; c++ {
			ref := Ref(r, c)
			fn(ref, s.Cell(ref))
			n++
		}
	}
	return n
}

// Numeric parses a cell value as a float, reporting success.
func Numeric(v string) (float64, bool) {
	f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
	return f, err == nil
}

// AddCondRule records a conditional-formatting rule over the given range and
// applies it: matching cells (and only matching cells) receive the fill.
// Like real Excel, the rule is evaluated over every cell of the range —
// including blank ones, whose non-numeric value simply never matches
// GreaterThan (the subtlety behind one of the paper's policy failures).
func (s *Sheet) AddCondRule(rule CondRule) {
	s.CondRules = append(s.CondRules, rule)
	r1, c1, r2, c2, ok := ParseRange(rule.Range)
	if !ok {
		return
	}
	for r := r1; r <= r2; r++ {
		for c := c1; c <= c2; c++ {
			cell := s.Cell(Ref(r, c))
			v, isNum := Numeric(cell.Value)
			match := false
			switch rule.Kind {
			case "GreaterThan":
				match = isNum && v > rule.Threshold
			case "LessThan":
				match = isNum && v < rule.Threshold
			case "EqualTo":
				match = isNum && v == rule.Threshold
			}
			if match {
				cell.Fill = rule.Fill
			}
		}
	}
}

// SortByColumn reorders the data rows of the used range by the given column
// letter. Rows are compared numerically when both values parse, otherwise
// lexically; the first row is treated as a header and left in place when
// hasHeader is true.
func (s *Sheet) SortByColumn(col string, desc, hasHeader bool) {
	_, cIdx, ok := ParseRef(col + "1")
	if !ok {
		return
	}
	lastRow := s.UsedRows()
	first := 1
	if hasHeader {
		first = 2
	}
	if lastRow < first {
		return
	}
	rows := make([]int, 0, lastRow-first+1)
	for r := first; r <= lastRow; r++ {
		rows = append(rows, r)
	}
	key := func(r int) string { return s.Value(Ref(r, cIdx)) }
	sort.SliceStable(rows, func(i, j int) bool {
		a, b := key(rows[i]), key(rows[j])
		fa, oka := Numeric(a)
		fb, okb := Numeric(b)
		var cmp int
		switch {
		case oka && okb && fa < fb:
			cmp = -1
		case oka && okb && fa > fb:
			cmp = 1
		case !(oka && okb) && a < b:
			cmp = -1
		case !(oka && okb) && a > b:
			cmp = 1
		}
		if desc {
			return cmp > 0
		}
		return cmp < 0
	})
	// Materialize the permutation.
	snapshot := make(map[int][]*Cell, len(rows))
	for _, r := range rows {
		rowCells := make([]*Cell, GridCols)
		for c := 1; c <= GridCols; c++ {
			if cc := s.cells[Ref(r, c)]; cc != nil {
				cp := *cc
				rowCells[c-1] = &cp
			}
		}
		snapshot[r] = rowCells
	}
	for i, src := range rows {
		dst := first + i
		for c := 1; c <= GridCols; c++ {
			key := Ref(dst, c)
			if cc := snapshot[src][c-1]; cc != nil {
				cp := *cc
				s.cells[key] = &cp
			} else {
				delete(s.cells, key)
			}
		}
	}
	s.SortedBy, s.SortDesc = col, desc
}

// UsedRows returns the last row containing any value.
func (s *Sheet) UsedRows() int {
	last := 0
	for ref, c := range s.cells {
		if c.Value == "" {
			continue
		}
		r, _, ok := ParseRef(ref)
		if ok && r > last {
			last = r
		}
	}
	return last
}

// Column returns the values of a column's used rows, in order.
func (s *Sheet) Column(col string) []string {
	_, cIdx, ok := ParseRef(col + "1")
	if !ok {
		return nil
	}
	var out []string
	for r := 1; r <= s.UsedRows(); r++ {
		out = append(out, s.Value(Ref(r, cIdx)))
	}
	return out
}
