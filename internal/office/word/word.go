package word

import (
	"fmt"
	"strings"

	"repro/internal/appkit"
	"repro/internal/office/catalog"
	"repro/internal/office/shared"
	"repro/internal/uia"
)

// Color-picker bindings: the semantic target a shared color picker modifies.
// The same picker cells perform different functions depending on the opener
// path — the paper's canonical path-ambiguity example.
const (
	BindFontColor      = "font-color"
	BindUnderlineColor = "underline-color"
	BindHighlight      = "highlight"
	BindPageColor      = "page-color"
	BindShading        = "shading"
	BindTextOutline    = "text-outline"
	BindPictureBorder  = "picture-border"
)

// App is the simulated Word application.
type App struct {
	*appkit.App
	Doc *Document

	// PictureSelected mirrors the "image-selected" context; the Picture
	// Format tab is visible only while it is true.
	PictureSelected bool
	PictureBorder   string

	docEl   *uia.Element
	findBtn *uia.Element // the Find Next button that renames to "Go To"
	fontDlg *appkit.Popup
}

// ContextImageSelected is the name of the image-selection context.
const ContextImageSelected = "image-selected"

// New assembles the Word simulator around the given initial paragraphs.
func New(paras ...string) *App {
	if len(paras) == 0 {
		paras = []string{
			"Annual report overview for the fiscal year.",
			"Revenue grew moderately across all regions.",
			"Costs were dominated by infrastructure investment.",
			"Outlook remains cautiously optimistic.",
			"Appendix: methodology and data sources.",
		}
	}
	w := &App{App: appkit.New("Word"), Doc: NewDocument(paras...)}

	picker := w.ColorPicker("clrPicker", "Colors", w.applyColor)

	w.buildHome(picker)
	w.buildInsert()
	w.buildDesign(picker)
	w.buildLayout()
	w.buildReferences()
	w.buildReview()
	w.buildView()
	w.buildPictureFormat(picker)
	shared.AddBackstage(w.App, func(_ *appkit.App, name string) { w.Doc.Saved = name })
	// Collapsing the ribbon reshapes the whole UI; the modeling operator
	// blocklists it (paper §4.1) so the ripper never folds the ribbon
	// into a shared subtree behind the Pin button.
	collapse, _ := w.AddRibbonCollapse()
	w.Block(collapse.ControlID())
	w.buildBody()

	w.RegisterContext(appkit.Context{
		Name:  ContextImageSelected,
		Enter: func(*appkit.App) { w.PictureSelected = true },
		Exit:  func(*appkit.App) { w.PictureSelected = false },
	})
	w.OnSoftReset(func(*appkit.App) { w.Doc.ClearSelection() })
	w.Layout()
	return w
}

// applyColor routes a color pick to the bound property.
func (w *App) applyColor(a *appkit.App, color string) {
	switch a.Binding() {
	case BindFontColor:
		w.Doc.ApplyToSelection(func(p *Para) { p.FontColor = color })
	case BindUnderlineColor:
		w.Doc.ApplyToSelection(func(p *Para) { p.UnderlineColor = color; p.Underline = true })
	case BindHighlight:
		w.Doc.ApplyToSelection(func(p *Para) { p.Highlight = color })
	case BindShading:
		w.Doc.ApplyToSelection(func(p *Para) { p.Highlight = color })
	case BindPageColor:
		w.Doc.PageColor = color
	case BindTextOutline:
		w.Doc.ApplyToSelection(func(p *Para) { p.FontColor = "Outline " + color })
	case BindPictureBorder:
		w.PictureBorder = color
	}
}

func (w *App) buildHome(picker *appkit.Popup) {
	home := w.Tab("tabHome", "Home")

	clip := home.Group("grpClipboard", "Clipboard")
	clip.Button("btnPaste", "Paste", nil)
	clip.Button("btnCut", "Cut", nil)
	clip.Button("btnCopy", "Copy", nil)
	clip.Button("btnFormatPainter", "Format Painter", nil)

	font := home.Group("grpFont", "Font")
	shared.AddFontControls(font, "w",
		func(*appkit.App, string) {}, func(*appkit.App, string) {})
	fontCombo := font.El.FindByAutomationID("wFontName")
	fontCombo.OnClick(func(*uia.Element) {}) // combo behaviour already wired
	// Re-wire the pick handlers onto the document selection.
	wireComboToSelection(w, "wFontName", func(p *Para, v string) { p.Font = v })
	wireComboToSelection(w, "wFontSize", func(p *Para, v string) { p.Size = parseSize(v, p.Size) })

	font.ToggleButton("btnBold", "Bold",
		func(*appkit.App) bool { return w.Doc.AllSelectedSatisfy(func(p *Para) bool { return p.Bold }) },
		func(_ *appkit.App, on bool) { w.Doc.ApplyToSelection(func(p *Para) { p.Bold = on }) })
	font.ToggleButton("btnItalic", "Italic",
		func(*appkit.App) bool { return w.Doc.AllSelectedSatisfy(func(p *Para) bool { return p.Italic }) },
		func(_ *appkit.App, on bool) { w.Doc.ApplyToSelection(func(p *Para) { p.Italic = on }) })

	// Underline is a split button: direct toggle plus a style menu with an
	// Underline Color submenu — one of the three paths to the color picker.
	underMenu := w.NewMenu("mnuUnderline", "Underline Style")
	ub := underMenu.Panel()
	for _, s := range []string{"Single Underline", "Double Underline",
		"Thick Underline", "Dotted Underline", "Dashed Underline",
		"Wavy Underline", "No Underline"} {
		s := s
		ub.MenuItem("", s, func(*appkit.App) {
			w.Doc.ApplyToSelection(func(p *Para) { p.Underline = s != "No Underline" })
		})
	}
	ub.MenuButton("btnUnderlineColor", "Underline Color", picker,
		func(*appkit.App) any { return BindUnderlineColor })
	font.MenuButton("btnUnderline", "Underline", underMenu, nil)

	font.ToggleButton("btnStrikethrough", "Strikethrough",
		func(*appkit.App) bool { return w.Doc.AllSelectedSatisfy(func(p *Para) bool { return p.Strikethrough }) },
		func(_ *appkit.App, on bool) { w.Doc.ApplyToSelection(func(p *Para) { p.Strikethrough = on }) })
	font.ToggleButton("btnSubscript", "Subscript",
		func(*appkit.App) bool { return w.Doc.AllSelectedSatisfy(func(p *Para) bool { return p.Subscript }) },
		func(_ *appkit.App, on bool) { w.Doc.ApplyToSelection(func(p *Para) { p.Subscript = on }) })
	font.ToggleButton("btnSuperscript", "Superscript",
		func(*appkit.App) bool { return w.Doc.AllSelectedSatisfy(func(p *Para) bool { return p.Superscript }) },
		func(_ *appkit.App, on bool) { w.Doc.ApplyToSelection(func(p *Para) { p.Superscript = on }) })

	caseMenu := w.NewMenu("mnuCase", "Change Case")
	cb := caseMenu.Panel()
	for _, c := range []string{"Sentence case", "lowercase", "UPPERCASE",
		"Capitalize Each Word", "tOGGLE cASE"} {
		c := c
		cb.MenuItem("", c, func(*appkit.App) {
			w.Doc.ApplyToSelection(func(p *Para) { p.Text = changeCase(p.Text, c) })
			w.Doc.rebuildText()
		})
	}
	font.MenuButton("btnChangeCase", "Change Case", caseMenu, nil)
	font.Button("btnClearFormatting", "Clear All Formatting", func(*appkit.App) {
		w.Doc.ApplyToSelection(func(p *Para) {
			*p = Para{Text: p.Text, Font: "Calibri", Size: 11, Alignment: "Left",
				LineSpacing: 1.08, Style: "Normal", FontColor: "Automatic",
				UnderlineColor: "Automatic"}
		})
	})

	// Text Effects menu carries the Text Outline path to the picker.
	fx := w.NewMenu("mnuTextEffects", "Text Effects and Typography")
	fxp := fx.Panel()
	for _, e := range []string{"Shadow", "Reflection", "Glow", "Number Styles",
		"Ligatures", "Stylistic Sets"} {
		fxp.MenuItem("", e, nil)
	}
	fxp.MenuButton("btnTextOutline", "Text Outline", picker,
		func(*appkit.App) any { return BindTextOutline })
	font.MenuButton("btnTextEffects", "Text Effects", fx, nil)

	font.MenuButton("btnHighlight", "Text Highlight Color", picker,
		func(*appkit.App) any { return BindHighlight })
	fc := font.MenuButton("btnFontColor", "Font Color", picker,
		func(*appkit.App) any { return BindFontColor })
	fc.SetDescription("Change the color of the selected text")
	w.fontDlg = w.buildFontDialog(picker)
	font.DialogButton("btnFontDialog", "Font Settings", w.fontDlg, nil)

	par := home.Group("grpParagraph", "Paragraph")
	bullets := w.Gallery("galBullets", "Bullets",
		[]string{"Round Bullet", "Hollow Bullet", "Square Bullet",
			"Diamond Bullet", "Arrow Bullet", "Check Bullet", "None"}, 7,
		func(*appkit.App, string) {
			w.Doc.ApplyToSelection(func(p *Para) { p.ListKind = "Bullets" })
		})
	par.MenuButton("btnBullets", "Bullets", bullets, nil)
	numbering := w.Gallery("galNumbering", "Numbering",
		[]string{"1. 2. 3.", "1) 2) 3)", "I. II. III.", "A. B. C.",
			"a) b) c)", "i. ii. iii.", "None"}, 7,
		func(*appkit.App, string) {
			w.Doc.ApplyToSelection(func(p *Para) { p.ListKind = "Numbering" })
		})
	par.MenuButton("btnNumbering", "Numbering", numbering, nil)
	par.Button("btnDecreaseIndent", "Decrease Indent", nil)
	par.Button("btnIncreaseIndent", "Increase Indent", nil)

	for _, al := range []string{"Left", "Center", "Right", "Justify"} {
		al := al
		b := par.Button("btnAlign"+al, "Align "+al, func(*appkit.App) {
			w.Doc.ApplyToSelection(func(p *Para) { p.Alignment = al })
		})
		b.SetDescription("Align the selected paragraphs: " + al)
	}

	spacing := w.NewMenu("mnuLineSpacing", "Line and Paragraph Spacing")
	sp := spacing.Panel()
	for _, v := range []float64{1.0, 1.15, 1.5, 2.0, 2.5, 3.0} {
		v := v
		sp.MenuItem("", fmt.Sprintf("%.2f", v), func(*appkit.App) {
			w.Doc.ApplyToSelection(func(p *Para) { p.LineSpacing = v })
		})
	}
	sp.DialogButton("btnLineSpacingOptions", "Line Spacing Options",
		w.buildParagraphDialog(), nil)
	par.MenuButton("btnLineSpacing", "Line and Paragraph Spacing", spacing, nil)
	par.MenuButton("btnShading", "Shading", picker,
		func(*appkit.App) any { return BindShading })
	shared.AddBordersMenu(w.App, par, "w", func(*appkit.App, string) {})

	styles := home.Group("grpStyles", "Styles")
	styleGal := w.Gallery("galStyles", "Styles", catalog.WordStyles, 16,
		func(_ *appkit.App, s string) {
			w.Doc.ApplyToSelection(func(p *Para) { p.Style = s })
		})
	styles.MenuButton("btnStyles", "Styles", styleGal, nil)

	edit := home.Group("grpEditing", "Editing")
	edit.Button("btnFind", "Find", nil)
	edit.DialogButton("btnReplace", "Replace", w.buildFindReplace(), nil)
	selMenu := w.NewMenu("mnuSelect", "Select")
	sm := selMenu.Panel()
	sm.MenuItem("", "Select All", func(*appkit.App) {
		w.Doc.SelectParas(1, len(w.Doc.Paras))
	})
	sm.MenuItem("", "Select Objects", nil)
	sm.MenuItem("", "Selection Pane", nil)
	edit.MenuButton("btnSelect", "Select", selMenu, nil)
}

// buildFindReplace assembles the Find and Replace dialog, including the
// dynamic rename the paper's §6 uses to illustrate topology inaccuracy:
// typing text that starts with "+" into "Find what" renames the "Find Next"
// button to "Go To", which the offline model cannot capture.
func (w *App) buildFindReplace() *appkit.Popup {
	dlg := w.NewDialog("dlgFindReplace", "Find and Replace")
	p := dlg.Panel()
	var findWhat, replaceWith string
	fw := p.Edit("edFindWhat", "Find what", "", func(_ *appkit.App, v string) {
		findWhat = v
		if strings.HasPrefix(v, "+") {
			w.findBtn.SetName("Go To")
		} else {
			w.findBtn.SetName("Find Next")
		}
	})
	fw.SetDescription("Text to search for")
	p.Edit("edReplaceWith", "Replace with", "", func(_ *appkit.App, v string) {
		replaceWith = v
	})

	p.Button("btnReplaceAll", "Replace All", func(*appkit.App) {
		w.Doc.ReplaceAll(findWhat, replaceWith)
	})
	p.Button("btnReplaceOne", "Replace", func(*appkit.App) {
		for _, para := range w.Doc.Paras {
			if strings.Contains(para.Text, findWhat) && findWhat != "" {
				para.Text = strings.Replace(para.Text, findWhat, replaceWith, 1)
				w.Doc.rebuildText()
				return
			}
		}
	})
	w.findBtn = p.NavButton("btnFindNext", "Find Next", nil)

	more := p.Pane("pnlMoreOptions", "Search Options")
	more.El.SetVisible(false)
	more.CheckBox("chkMatchCase", "Match case", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	more.CheckBox("chkWholeWords", "Find whole words only", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	more.CheckBox("chkWildcards", "Use wildcards", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	// The paper's §5.6 failure example: Format > Subscript inside Find and
	// Replace applies to the whole Edit field, not the selected text range.
	fmtMenu := w.NewMenu("mnuFRFormat", "Format")
	fmtMenu.Panel().MenuItem("frSubscript", "Subscript", nil)
	fmtMenu.Panel().MenuItem("frSuperscript", "Superscript", nil)
	// The Font dialog is reachable both from the ribbon's Font group and
	// from here: a second path into the same dialog (merge node).
	fmtMenu.Panel().DialogButton("btnFRFontDialog", "Font", w.fontDlg, nil)
	more.MenuButton("btnFRFormat", "Format", fmtMenu, nil)
	// More/Less reveal each other: a contained navigation cycle.
	appkit.AddDetailToggle(p, "btnFR", "More", "Less", more.El)
	dlg.AddOKCancel(nil)
	return dlg
}

func (w *App) buildFontDialog(picker *appkit.Popup) *appkit.Popup {
	dlg := w.NewDialog("dlgFont", "Font")
	p := dlg.Panel()
	p.ComboBox("dlgFontName", "Font", catalog.Fonts(), nil)
	p.ComboBox("dlgFontStyle", "Font style",
		[]string{"Regular", "Italic", "Bold", "Bold Italic"}, nil)
	p.ComboBox("dlgFontSize", "Size", catalog.FontSizes, nil)
	p.MenuButton("dlgFontColor", "Font color", picker,
		func(*appkit.App) any { return BindFontColor })
	p.ComboBox("dlgUnderlineStyle", "Underline style",
		[]string{"(none)", "Single", "Double", "Thick", "Dotted"}, nil)
	for _, fx := range []string{"Strikethrough", "Double strikethrough",
		"Superscript", "Subscript", "Small caps", "All caps", "Hidden"} {
		p.CheckBox("", fx, func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	}
	dlg.AddOKCancel(nil)
	return dlg
}

func (w *App) buildParagraphDialog() *appkit.Popup {
	dlg := w.NewDialog("dlgParagraph", "Paragraph")
	p := dlg.Panel()
	p.ComboBox("dlgParaAlignment", "Alignment",
		[]string{"Left", "Centered", "Right", "Justified"}, nil)
	p.ComboBox("dlgParaOutline", "Outline level",
		[]string{"Body Text", "Level 1", "Level 2", "Level 3"}, nil)
	p.Spinner("dlgIndentLeft", "Indentation Left", 0, 10, 0, nil)
	p.Spinner("dlgIndentRight", "Indentation Right", 0, 10, 0, nil)
	p.Spinner("dlgSpaceBefore", "Spacing Before", 0, 100, 0, nil)
	p.Spinner("dlgSpaceAfter", "Spacing After", 0, 100, 8, nil)
	var lineVal float64 = 1.08
	p.ComboBox("dlgLineSpacing", "Line spacing",
		[]string{"Single", "1.5 lines", "Double", "At least", "Exactly", "Multiple"},
		func(_ *appkit.App, v string) {
			switch v {
			case "Single":
				lineVal = 1.0
			case "1.5 lines":
				lineVal = 1.5
			case "Double":
				lineVal = 2.0
			}
		})
	dlg.AddOKCancel(func(*appkit.App) {
		w.Doc.ApplyToSelection(func(pp *Para) { pp.LineSpacing = lineVal })
	})
	return dlg
}

func (w *App) buildInsert() {
	ins := w.Tab("tabInsert", "Insert")

	pages := ins.Group("grpPages", "Pages")
	cover := w.Gallery("galCoverPage", "Cover Page",
		[]string{"Austin", "Banded", "Facet", "Filigree", "Grid", "Integral",
			"Ion (Dark)", "Ion (Light)", "Motion", "Retrospect", "Semaphore",
			"Sideline"}, 12, nil)
	pages.MenuButton("btnCoverPage", "Cover Page", cover, nil)
	pages.Button("btnBlankPage", "Blank Page", nil)
	pages.Button("btnPageBreak", "Page Break", nil)

	tables := ins.Group("grpTables", "Tables")
	tblMenu := w.NewMenu("mnuTable", "Table")
	tb := tblMenu.Panel()
	grid := tb.Pane("pnlTableGrid", "Insert Table Grid")
	for r := 1; r <= 8; r++ {
		for c := 1; c <= 10; c++ {
			r, c := r, c
			cell := grid.MenuItem("", fmt.Sprintf("%dx%d Table", c, r), func(*appkit.App) {
				w.Doc.InsertTable(r, c)
			})
			cell.SetDescription(fmt.Sprintf("Insert a table with %d columns and %d rows", c, r))
		}
	}
	insTblDlg := w.NewDialog("dlgInsertTable", "Insert Table")
	ip := insTblDlg.Panel()
	var rows, cols float64 = 2, 5
	ip.Spinner("spnTableCols", "Number of columns", 1, 63, 5, func(_ *appkit.App, v float64) { cols = v })
	ip.Spinner("spnTableRows", "Number of rows", 1, 200, 2, func(_ *appkit.App, v float64) { rows = v })
	insTblDlg.AddOKCancel(func(*appkit.App) { w.Doc.InsertTable(int(rows), int(cols)) })
	tb.DialogButton("btnInsertTableDlg", "Insert Table", insTblDlg, nil)
	tb.MenuItem("btnDrawTable", "Draw Table", nil)
	tables.MenuButton("btnTable", "Table", tblMenu, nil)

	shared.AddIllustrations(w.App, ins, "w", func(_ *appkit.App, what string) {
		w.Doc.Inserted = append(w.Doc.Inserted, what)
		if what == "picture" {
			_ = w.EnterContext(ContextImageSelected)
		}
	})

	hf := ins.Group("grpHeaderFooter", "Header & Footer")
	hdr := w.Gallery("galHeader", "Header",
		[]string{"Blank Header", "Blank (Three Columns)", "Austin Header",
			"Banded Header", "Facet (Even)", "Facet (Odd)", "Filigree Header",
			"Grid Header", "Integral Header", "Ion (Dark) Header",
			"Ion (Light) Header", "Motion Header"}, 12,
		func(_ *appkit.App, h string) { w.Doc.Header = h })
	hf.MenuButton("btnHeader", "Header", hdr, nil)
	ftr := w.Gallery("galFooter", "Footer",
		[]string{"Blank Footer", "Blank (Three Columns) Footer",
			"Austin Footer", "Banded Footer", "Facet (Even) Footer",
			"Facet (Odd) Footer", "Filigree Footer", "Grid Footer",
			"Integral Footer", "Ion (Dark) Footer", "Ion (Light) Footer",
			"Motion Footer"}, 12,
		func(_ *appkit.App, f string) { w.Doc.Footer = f })
	hf.MenuButton("btnFooter", "Footer", ftr, nil)
	pn := w.Gallery("galPageNumber", "Page Number", catalog.PageNumberFormats(), 15,
		func(_ *appkit.App, f string) { w.Doc.PageNumbers = f })
	pnMenu := pn // gallery already paginates positions
	hf.MenuButton("btnPageNumber", "Page Number", pnMenu, nil)

	text := ins.Group("grpText", "Text")
	tbx := w.Gallery("galTextBox", "Text Box",
		[]string{"Simple Text Box", "Austin Quote", "Austin Sidebar",
			"Banded Quote", "Banded Sidebar", "Facet Quote", "Facet Sidebar",
			"Filigree Quote", "Filigree Sidebar", "Grid Quote"}, 10,
		func(_ *appkit.App, s string) { w.Doc.Inserted = append(w.Doc.Inserted, "textbox:"+s) })
	text.MenuButton("btnTextBox", "Text Box", tbx, nil)

	qp := w.NewMenu("mnuQuickParts", "Quick Parts")
	qpp := qp.Panel()
	for _, at := range []string{"Author Name Block", "Confidential Notice",
		"Created Date Stamp", "Disclaimer", "Draft Stamp", "File Path Block",
		"Greeting Line", "Last Saved Stamp", "Page X of Y", "Reviewed Stamp",
		"Signature Block", "Urgent Notice"} {
		qpp.MenuItem("", "AutoText: "+at, nil)
	}
	for _, dp := range []string{"Abstract", "Author", "Category", "Comments",
		"Company", "Company Address", "Company E-mail", "Company Fax",
		"Company Phone", "Keywords", "Manager", "Publish Date", "Status",
		"Subject", "Title"} {
		qpp.MenuItem("", "Document Property: "+dp, nil)
	}
	fieldDlg := w.NewDialog("dlgField", "Field")
	fp := fieldDlg.Panel()
	fieldList := fp.List("lstFieldNames", "Field names")
	fieldList.El.MarkLargeEnum()
	for _, f := range []string{"AddressBlock", "Advance", "Ask", "Author",
		"AutoNum", "AutoNumLgl", "AutoNumOut", "AutoText", "AutoTextList",
		"BarCode", "Bibliography", "BidiOutline", "Citation", "Comments",
		"Compare", "CreateDate", "Database", "Date", "DocProperty",
		"DocVariable", "EditTime", "Embed", "Eq", "FileName", "FileSize",
		"Fill-in", "GoToButton", "GreetingLine", "Hyperlink", "If",
		"IncludePicture", "IncludeText", "Index", "Info", "Keywords",
		"LastSavedBy", "Link", "ListNum", "MacroButton", "MergeField",
		"MergeRec", "MergeSeq", "Next", "NextIf", "NoteRef", "NumChars",
		"NumPages", "NumWords", "Page", "PageRef", "Print", "PrintDate",
		"Private", "Quote", "RD", "Ref", "RevNum", "SaveDate", "Section",
		"SectionPages", "Seq", "Set", "SkipIf", "StyleRef", "Subject",
		"Symbol", "TA", "TC", "Template", "Time", "Title", "TOA", "TOC",
		"UserAddress", "UserInitials", "UserName", "XE"} {
		fieldList.ListItem("", f, nil)
	}
	fieldDlg.AddOKCancel(nil)
	qpp.DialogButton("btnFieldDialog", "Field", fieldDlg, nil)
	text.MenuButton("btnQuickParts", "Quick Parts", qp, nil)
	wa := w.Gallery("galWordArt", "WordArt", catalog.WordArtStyles(), 10,
		func(_ *appkit.App, s string) { w.Doc.Inserted = append(w.Doc.Inserted, "wordart:"+s) })
	text.MenuButton("btnWordArt", "WordArt", wa, nil)
	text.Button("btnDropCap", "Drop Cap", nil)
	text.Button("btnDateTime", "Date & Time", nil)
	text.Button("btnObject", "Object", nil)

	shared.AddSymbols(w.App, ins, "w", func(_ *appkit.App, s string) {
		w.Doc.Inserted = append(w.Doc.Inserted, "symbol:"+s)
	})
}

func (w *App) buildDesign(picker *appkit.Popup) {
	design := w.Tab("tabDesign", "Design")
	df := design.Group("grpDocFormatting", "Document Formatting")
	shared.AddThemes(w.App, df, "w", func(_ *appkit.App, th string) { w.Doc.Theme = th })
	styleSet := w.Gallery("galStyleSets", "Style Sets",
		[]string{"Default", "Basic (Elegant)", "Basic (Simple)",
			"Basic (Stylish)", "Casual", "Centered", "Lines (Distinctive)",
			"Lines (Simple)", "Lines (Stylish)", "Minimalist", "Shaded",
			"Word 2013"}, 12, nil)
	df.MenuButton("btnStyleSet", "Style Set", styleSet, nil)
	colorsMenu := w.NewMenu("mnuThemeColors", "Theme Colors")
	for _, c := range []string{"Office", "Grayscale", "Blue Warm", "Blue",
		"Blue II", "Blue Green", "Green", "Green Yellow", "Yellow",
		"Yellow Orange", "Orange", "Orange Red", "Red Orange", "Red",
		"Red Violet", "Violet", "Violet II", "Median", "Paper", "Marquee"} {
		colorsMenu.Panel().MenuItem("", c, nil)
	}
	df.MenuButton("btnThemeColorSet", "Colors", colorsMenu, nil)
	fontsMenu := w.NewMenu("mnuThemeFonts", "Theme Fonts")
	for _, f := range []string{"Office", "Calibri", "Arial", "Corbel",
		"Candara", "Franklin Gothic", "Century Gothic", "Garamond",
		"Georgia", "Cambria", "Consolas", "Constantia", "Trebuchet MS",
		"TW Cen MT", "Verdana"} {
		fontsMenu.Panel().MenuItem("", f, nil)
	}
	df.MenuButton("btnThemeFontSet", "Fonts", fontsMenu, nil)

	bg := design.Group("grpPageBackground", "Page Background")
	wm := w.Gallery("galWatermark", "Watermark",
		[]string{"Confidential 1", "Confidential 2", "Do Not Copy 1",
			"Do Not Copy 2", "Draft 1", "Draft 2", "Sample 1", "Sample 2",
			"ASAP 1", "ASAP 2", "Urgent 1", "Urgent 2"}, 12,
		func(_ *appkit.App, s string) { w.Doc.Watermark = s })
	bg.MenuButton("btnWatermark", "Watermark", wm, nil)
	pc := bg.MenuButton("btnPageColor", "Page Color", picker,
		func(*appkit.App) any { return BindPageColor })
	pc.SetDescription("Choose a color for the background of the page")
	borders := w.NewDialog("dlgPageBorders", "Borders and Shading")
	bp := borders.Panel()
	bp.ComboBox("dlgBorderSetting", "Setting",
		[]string{"None", "Box", "Shadow", "3-D", "Custom"},
		func(_ *appkit.App, v string) { w.Doc.PageBorder = v })
	bp.ComboBox("dlgBorderStyle", "Style",
		[]string{"Solid", "Dotted", "Dashed", "Double", "Wavy"}, nil)
	borders.AddOKCancel(nil)
	bg.DialogButton("btnPageBorders", "Page Borders", borders, nil)
}

func (w *App) buildLayout() {
	layout := w.Tab("tabLayout", "Layout")
	ps := layout.Group("grpPageSetup", "Page Setup")
	margins := w.Gallery("galMargins", "Margins",
		[]string{"Normal", "Narrow", "Moderate", "Wide", "Mirrored",
			"Office 2003 Default"}, 6,
		func(_ *appkit.App, m string) { w.Doc.Margins = m })
	ps.MenuButton("btnMargins", "Margins", margins, nil)

	orient := w.NewMenu("mnuOrientation", "Orientation")
	for _, o := range []string{"Portrait", "Landscape"} {
		o := o
		it := orient.Panel().MenuItem("", o, func(*appkit.App) { w.Doc.Orientation = o })
		it.SetDescription("Set the page orientation to " + o)
	}
	ps.MenuButton("btnOrientation", "Orientation", orient, nil)

	size := w.Gallery("galPaperSize", "Size",
		[]string{"Letter", "Legal", "Statement", "Executive", "A3", "A4",
			"A5", "B4", "B5", "Tabloid"}, 10,
		func(_ *appkit.App, s string) { w.Doc.PaperSize = s })
	ps.MenuButton("btnSize", "Size", size, nil)

	colMenu := w.NewMenu("mnuColumns", "Columns")
	for i, c := range []string{"One", "Two", "Three", "Left", "Right"} {
		n := i + 1
		if n > 3 {
			n = 2
		}
		nn := n
		colMenu.Panel().MenuItem("", c, func(*appkit.App) { w.Doc.Columns = nn })
	}
	ps.MenuButton("btnColumns", "Columns", colMenu, nil)

	breaks := w.NewMenu("mnuBreaks", "Breaks")
	for _, b := range []string{"Page", "Column", "Text Wrapping",
		"Next Page Section", "Continuous Section", "Even Page Section",
		"Odd Page Section"} {
		breaks.Panel().MenuItem("", b+" Break", nil)
	}
	ps.MenuButton("btnBreaks", "Breaks", breaks, nil)

	pageSetup := w.NewDialog("dlgPageSetup", "Page Setup")
	pp := pageSetup.Panel()
	pp.Spinner("spnMarginTop", "Top margin", 0, 5, 1, nil)
	pp.Spinner("spnMarginBottom", "Bottom margin", 0, 5, 1, nil)
	pp.Spinner("spnMarginLeft", "Left margin", 0, 5, 1, nil)
	pp.Spinner("spnMarginRight", "Right margin", 0, 5, 1, nil)
	pp.RadioGroup("rbOrient", []string{"Portrait", "Landscape"},
		func(_ *appkit.App, i int) {
			w.Doc.Orientation = []string{"Portrait", "Landscape"}[i]
		})
	pageSetup.AddOKCancel(nil)
	ps.DialogButton("btnPageSetupDialog", "Page Setup Settings", pageSetup, nil)

	arr := layout.Group("grpArrange", "Arrange")
	pos := w.Gallery("galPosition", "Position",
		[]string{"In Line with Text", "Top Left", "Top Center", "Top Right",
			"Middle Left", "Middle Center", "Middle Right", "Bottom Left",
			"Bottom Center", "Bottom Right"}, 10, nil)
	arr.MenuButton("btnPosition", "Position", pos, nil)
	wrap := w.NewMenu("mnuWrapText", "Wrap Text")
	for _, wt := range []string{"In Line with Text", "Square", "Tight",
		"Through", "Top and Bottom", "Behind Text", "In Front of Text"} {
		wrap.Panel().MenuItem("", wt, nil)
	}
	arr.MenuButton("btnWrapText", "Wrap Text", wrap, nil)
	arr.Button("btnBringForward", "Bring Forward", nil)
	arr.Button("btnSendBackward", "Send Backward", nil)
	alignMenu := w.NewMenu("mnuAlignObjects", "Align Objects")
	for _, al := range []string{"Align Left", "Align Center", "Align Right",
		"Align Top", "Align Middle", "Align Bottom",
		"Distribute Horizontally", "Distribute Vertically",
		"Use Alignment Guides", "Grid Settings"} {
		alignMenu.Panel().MenuItem("", al, nil)
	}
	arr.MenuButton("btnAlignObjects", "Align", alignMenu, nil)
	arr.Button("btnGroupObjects", "Group", nil)
	rot := w.NewMenu("mnuRotate", "Rotate")
	for _, r := range []string{"Rotate Right 90°", "Rotate Left 90°",
		"Flip Vertical", "Flip Horizontal"} {
		rot.Panel().MenuItem("", r, nil)
	}
	arr.MenuButton("btnRotate", "Rotate", rot, nil)
}

func (w *App) buildReferences() {
	ref := w.Tab("tabReferences", "References")
	toc := ref.Group("grpTOC", "Table of Contents")
	tocGal := w.Gallery("galTOC", "Table of Contents",
		[]string{"Automatic Table 1", "Automatic Table 2", "Manual Table"}, 3, nil)
	toc.MenuButton("btnTOC", "Table of Contents", tocGal, nil)
	toc.Button("btnUpdateTOC", "Update Table", nil)

	fn := ref.Group("grpFootnotes", "Footnotes")
	fn.Button("btnInsertFootnote", "Insert Footnote", nil)
	fn.Button("btnInsertEndnote", "Insert Endnote", nil)
	fn.Button("btnNextFootnote", "Next Footnote", nil)
	fn.Button("btnShowNotes", "Show Notes", nil)

	cit := ref.Group("grpCitations", "Citations & Bibliography")
	cit.Button("btnInsertCitation", "Insert Citation", nil)
	cit.ComboBox("cbCitationStyle", "Style",
		[]string{"APA", "Chicago", "GB7714", "GOST - Name Sort", "Harvard",
			"IEEE", "ISO 690", "MLA", "SIST02", "Turabian"}, nil)
	cit.Button("btnBibliography", "Bibliography", nil)

	cap := ref.Group("grpCaptions", "Captions")
	cap.Button("btnInsertCaption", "Insert Caption", nil)
	cap.Button("btnInsertTableOfFigures", "Insert Table of Figures", nil)
	cap.Button("btnCrossReference", "Cross-reference", nil)

	idx := ref.Group("grpIndex", "Index")
	idx.Button("btnMarkEntry", "Mark Entry", nil)
	idx.Button("btnInsertIndex", "Insert Index", nil)
}

func (w *App) buildReview() {
	rev := w.Tab("tabReview", "Review")
	proof := rev.Group("grpProofing", "Proofing")
	proof.Button("btnSpelling", "Spelling & Grammar", nil)
	proof.Button("btnThesaurus", "Thesaurus", nil)
	wc := w.NewDialog("dlgWordCount", "Word Count")
	wc.Panel().Label("Statistics")
	wc.AddOKCancel(nil)
	proof.DialogButton("btnWordCount", "Word Count", wc, nil)

	lang := rev.Group("grpLanguage", "Language")
	langDlg := w.NewDialog("dlgLanguage", "Language")
	lp := langDlg.Panel()
	langList := lp.List("lstLanguages", "Mark selected text as")
	langList.El.MarkLargeEnum()
	for _, l := range catalog.Languages() {
		l := l
		langList.ListItem("", l, func(*appkit.App) { w.Doc.Language = l })
	}
	langDlg.AddOKCancel(nil)
	lang.DialogButton("btnSetLanguage", "Set Proofing Language", langDlg, nil)
	lang.Button("btnTranslate", "Translate", nil)

	comments := rev.Group("grpComments", "Comments")
	comments.Button("btnNewComment", "New Comment", nil)
	comments.Button("btnDeleteComment", "Delete Comment", nil)
	comments.Button("btnPreviousComment", "Previous Comment", nil)
	comments.Button("btnNextComment", "Next Comment", nil)

	track := rev.Group("grpTracking", "Tracking")
	track.ToggleButton("btnTrackChanges", "Track Changes",
		func(*appkit.App) bool { return w.Doc.TrackChanges },
		func(_ *appkit.App, on bool) { w.Doc.TrackChanges = on })
	track.ComboBox("cbMarkup", "Display for Review",
		[]string{"Simple Markup", "All Markup", "No Markup", "Original"}, nil)

	changes := rev.Group("grpChanges", "Changes")
	changes.Button("btnAcceptChange", "Accept", nil)
	changes.Button("btnRejectChange", "Reject", nil)
	changes.Button("btnPreviousChange", "Previous", nil)
	changes.Button("btnNextChange", "Next Change", nil)
}

func (w *App) buildView() {
	view := w.Tab("tabView", "View")
	views := view.Group("grpViews", "Views")
	for _, v := range []string{"Read Mode", "Print Layout", "Web Layout",
		"Outline", "Draft"} {
		views.Button("btnView"+strings.ReplaceAll(v, " ", ""), v, nil)
	}
	show := view.Group("grpShow", "Show")
	show.CheckBox("chkRuler", "Ruler", func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})
	show.CheckBox("chkGridlines", "Gridlines", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	show.CheckBox("chkNavPane", "Navigation Pane", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})

	zoom := view.Group("grpZoom", "Zoom")
	zoomDlg := w.NewDialog("dlgZoom", "Zoom")
	zoomDlg.Panel().RadioGroup("rbZoom",
		[]string{"200%", "100%", "75%", "Page width", "Text width",
			"Whole page", "Many pages"}, nil)
	zoomDlg.AddOKCancel(nil)
	zoom.DialogButton("btnZoom", "Zoom", zoomDlg, nil)
	zoom.Button("btnZoom100", "100%", nil)
	zoom.Button("btnOnePage", "One Page", nil)
	zoom.Button("btnMultiplePages", "Multiple Pages", nil)
	zoom.Button("btnPageWidth", "Page Width", nil)

	win := view.Group("grpWindow", "Window")
	win.Button("btnNewWindow", "New Window", nil)
	win.Button("btnArrangeAll", "Arrange All", nil)
	win.Button("btnSplitWindow", "Split", nil)
	macros := view.Group("grpMacros", "Macros")
	macros.Button("btnViewMacros", "View Macros", nil)
}

// buildPictureFormat assembles the contextual Picture Format tab, visible
// only while an image is selected (paper §4.1, context-aware exploration).
func (w *App) buildPictureFormat(picker *appkit.Popup) {
	pf := w.ContextTab("tabPictureFormat", "Picture Format", ContextImageSelected)
	adjust := pf.Group("grpPicAdjust", "Adjust")
	adjust.Button("btnRemoveBackground", "Remove Background", nil)
	adjust.Button("btnCorrections", "Corrections", nil)
	adjust.Button("btnPicColor", "Color", nil)
	adjust.Button("btnArtisticEffects", "Artistic Effects", nil)

	styles := pf.Group("grpPicStyles", "Picture Styles")
	gal := w.Gallery("galPicStyles", "Picture Styles",
		[]string{"Simple Frame, White", "Beveled Matte, White",
			"Metal Frame", "Drop Shadow Rectangle", "Reflected Rounded",
			"Soft Edge Rectangle", "Double Frame, Black", "Thick Matte, Black",
			"Simple Frame, Black", "Beveled Oval, Black", "Compound Frame",
			"Moderate Frame, White", "Center Shadow Rectangle",
			"Rounded Diagonal Corner", "Snip Diagonal Corner",
			"Moderate Frame, Black", "Rotated, White", "Perspective Shadow",
			"Relaxed Perspective", "Soft Edge Oval", "Bevel Rectangle",
			"Bevel Perspective", "Reflected Bevel, Black",
			"Reflected Bevel, White", "Metal Rounded Rectangle", "Metal Oval",
			"Bevel Perspective Left", "Reflected Perspective Right"}, 14,
		func(*appkit.App, string) {})
	styles.MenuButton("btnPicStylesGallery", "Picture Styles Gallery", gal, nil)
	pb := styles.MenuButton("btnPictureBorder", "Picture Border", picker,
		func(*appkit.App) any { return BindPictureBorder })
	pb.SetDescription("Choose the outline color for the selected picture")
	fx := w.NewMenu("mnuPicEffects", "Picture Effects")
	for _, e := range []string{"Preset", "Shadow", "Reflection", "Glow",
		"Soft Edges", "Bevel", "3-D Rotation"} {
		fx.Panel().MenuItem("", e, nil)
	}
	styles.MenuButton("btnPictureEffects", "Picture Effects", fx, nil)

	size := pf.Group("grpPicSize", "Size")
	size.Button("btnCrop", "Crop", nil)
	size.Spinner("spnPicHeight", "Shape Height", 0.1, 30, 3, nil)
	size.Spinner("spnPicWidth", "Shape Width", 0.1, 30, 4, nil)
}

// buildBody attaches the document surface, its scrollbar, and the status
// bar to the main window.
func (w *App) buildBody() {
	body := w.Window().Pane("pnlDocArea", "Document Area")
	doc := body.Document("docBody", "Document", w.Doc.TextPattern())
	doc.SetDescription("The document body text")
	w.docEl = doc
	body.VScrollBar("sbDoc", "Vertical Scroll Bar", nil)
	status := w.Window().Pane("pnlStatusBar", "Status Bar")
	status.Label("Page 1 of 1")
	status.Label("Words: 120")
}

// DocElement returns the Document control exposing the body text pattern.
func (w *App) DocElement() *uia.Element { return w.docEl }

// FindNextButton returns the dynamically renamed Find Next / Go To button.
func (w *App) FindNextButton() *uia.Element { return w.findBtn }

func wireComboToSelection(w *App, autoID string, apply func(p *Para, v string)) {
	cb := w.Win.FindByAutomationID(autoID)
	if cb == nil {
		return
	}
	list := cb.FindByAutomationID(autoID + "List")
	if list == nil {
		return
	}
	for _, item := range list.Children() {
		item := item
		item.OnClick(func(*uia.Element) {
			w.Doc.ApplyToSelection(func(p *Para) { apply(p, item.Name()) })
		})
	}
}

func parseSize(v string, def float64) float64 {
	var f float64
	if _, err := fmt.Sscanf(v, "%f", &f); err != nil {
		return def
	}
	return f
}

func changeCase(s, mode string) string {
	switch mode {
	case "lowercase":
		return strings.ToLower(s)
	case "UPPERCASE":
		return strings.ToUpper(s)
	case "Capitalize Each Word":
		return strings.Title(s) //nolint:staticcheck // adequate for the simulator
	case "Sentence case":
		if s == "" {
			return s
		}
		return strings.ToUpper(s[:1]) + strings.ToLower(s[1:])
	default:
		return s
	}
}
