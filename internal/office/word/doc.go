// Package word implements the simulated word processor: a paragraph-based
// document model beneath a full ribbon UI built with appkit. It is one of
// the three case-study applications of the evaluation (paper §5.1).
package word

import (
	"strings"

	"repro/internal/uia"
)

// Para is one paragraph with its character- and paragraph-level formatting.
type Para struct {
	Text string

	Bold, Italic, Underline   bool
	Strikethrough             bool
	Subscript, Superscript    bool
	FontColor, UnderlineColor string
	Highlight                 string
	Font                      string
	Size                      float64
	Alignment                 string // "Left", "Center", "Right", "Justify"
	LineSpacing               float64
	Style                     string
	ListKind                  string // "", "Bullets", "Numbering"
}

// TableSpec records an inserted table.
type TableSpec struct {
	Rows, Cols int
}

// Document is the Word document model. All ribbon interaction ultimately
// mutates it, and task verification reads it back.
type Document struct {
	Paras []*Para

	// Selection is a 1-based inclusive paragraph range; 0,0 means none.
	SelStart, SelEnd int

	PageColor   string
	Orientation string // "Portrait" or "Landscape"
	Theme       string
	Margins     string
	PaperSize   string
	Columns     int

	Header, Footer string
	PageNumbers    string // "" = none, otherwise the gallery entry
	Watermark      string
	PageBorder     string

	TrackChanges bool
	Saved        string // last Save As target
	Language     string

	Inserted []string // pictures, shapes, icons, charts, symbols
	tables   []TableSpec

	text *uia.SimpleText // UI view; kept in sync by rebuildText
}

// NewDocument creates a document from paragraph texts with default
// formatting.
func NewDocument(paras ...string) *Document {
	d := &Document{
		Orientation: "Portrait",
		Theme:       "Office",
		Margins:     "Normal",
		PaperSize:   "Letter",
		Columns:     1,
		Language:    "English (United States)",
	}
	for _, t := range paras {
		d.Paras = append(d.Paras, &Para{
			Text: t, Font: "Calibri", Size: 11,
			Alignment: "Left", LineSpacing: 1.08, Style: "Normal",
			FontColor: "Automatic", UnderlineColor: "Automatic",
		})
	}
	d.text = &uia.SimpleText{}
	d.rebuildText()
	d.text.OnSelect = func(_ *uia.Element, startLine, endLine int) {
		// Paragraph i occupies line 2i-1 (paragraphs are separated by
		// blank lines so that line- and paragraph-selection both work).
		d.SelStart = (startLine + 1) / 2
		d.SelEnd = (endLine + 1) / 2
	}
	return d
}

// TextPattern exposes the document body as a uia Text pattern.
func (d *Document) TextPattern() *uia.SimpleText { return d.text }

// rebuildText regenerates the UI text view from the paragraph model.
func (d *Document) rebuildText() {
	lines := make([]string, 0, len(d.Paras)*2)
	for i, p := range d.Paras {
		if i > 0 {
			lines = append(lines, "")
		}
		lines = append(lines, p.Text)
	}
	d.text.Lines = lines
}

// Body returns the paragraph texts joined with blank lines.
func (d *Document) Body() string {
	var parts []string
	for _, p := range d.Paras {
		parts = append(parts, p.Text)
	}
	return strings.Join(parts, "\n\n")
}

// SelectParas sets the selected paragraph range directly (used by tests and
// by the document's Text pattern hook).
func (d *Document) SelectParas(start, end int) {
	d.SelStart, d.SelEnd = start, end
}

// ClearSelection drops the paragraph selection.
func (d *Document) ClearSelection() {
	d.SelStart, d.SelEnd = 0, 0
	d.text.ClearSelection()
}

// Selected returns the selected paragraphs (empty if none).
func (d *Document) Selected() []*Para {
	if d.SelStart < 1 || d.SelEnd > len(d.Paras) || d.SelStart > d.SelEnd {
		return nil
	}
	return d.Paras[d.SelStart-1 : d.SelEnd]
}

// ApplyToSelection runs fn on every selected paragraph and reports how many
// paragraphs were touched. With no selection it is a no-op returning 0 —
// formatting at a bare cursor changes nothing, which is exactly the failure
// a planner that forgets to select first will hit.
func (d *Document) ApplyToSelection(fn func(p *Para)) int {
	sel := d.Selected()
	for _, p := range sel {
		fn(p)
	}
	return len(sel)
}

// AllSelectedSatisfy reports whether the selection is non-empty and fn holds
// for every selected paragraph.
func (d *Document) AllSelectedSatisfy(fn func(p *Para) bool) bool {
	sel := d.Selected()
	if len(sel) == 0 {
		return false
	}
	for _, p := range sel {
		if !fn(p) {
			return false
		}
	}
	return true
}

// ReplaceAll replaces every occurrence of find with repl across the
// document, returning the number of replacements.
func (d *Document) ReplaceAll(find, repl string) int {
	if find == "" {
		return 0
	}
	n := 0
	for _, p := range d.Paras {
		c := strings.Count(p.Text, find)
		if c > 0 {
			p.Text = strings.ReplaceAll(p.Text, find, repl)
			n += c
		}
	}
	if n > 0 {
		d.rebuildText()
	}
	return n
}

// CountOccurrences counts occurrences of s across all paragraphs.
func (d *Document) CountOccurrences(s string) int {
	n := 0
	for _, p := range d.Paras {
		n += strings.Count(p.Text, s)
	}
	return n
}

// Tables inserted into the document.
func (d *Document) InsertTable(rows, cols int) { d.tables = append(d.tables, TableSpec{rows, cols}) }

// LastTable returns the most recently inserted table and true, or false.
func (d *Document) LastTable() (TableSpec, bool) {
	if len(d.tables) == 0 {
		return TableSpec{}, false
	}
	return d.tables[len(d.tables)-1], true
}

// TableCount returns the number of inserted tables.
func (d *Document) TableCount() int { return len(d.tables) }
