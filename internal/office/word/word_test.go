package word

import (
	"testing"

	"repro/internal/uia"
)

func click(t *testing.T, w *App, el *uia.Element) {
	t.Helper()
	if el == nil {
		t.Fatal("click target is nil")
	}
	if err := w.Desk.Click(el); err != nil {
		t.Fatalf("click %v: %v", el, err)
	}
}

func findIn(t *testing.T, root *uia.Element, autoID string) *uia.Element {
	t.Helper()
	e := root.FindByAutomationID(autoID)
	if e == nil {
		t.Fatalf("control %q not found", autoID)
	}
	return e
}

func TestScale(t *testing.T) {
	w := New()
	total := w.Win.Count()
	for _, p := range w.Desk.Windows() {
		if p != w.Win {
			total += p.Count()
		}
	}
	// Count popup templates too (they are off-desktop until opened).
	// A realistic Word exposes >4K controls (paper §5.2).
	all := countAllControls(w)
	if all < 3800 {
		t.Errorf("word exposes %d controls, want > 3800", all)
	}
	t.Logf("word controls: main window %d, total incl. popups %d", total, all)
}

func countAllControls(w *App) int {
	n := w.Win.Count()
	seen := map[*uia.Element]bool{w.Win: true}
	for _, p := range w.AllPopupWindows() {
		if !seen[p] {
			n += p.Count()
			seen[p] = true
		}
	}
	return n
}

func TestFontColorViaSelection(t *testing.T) {
	w := New()
	w.Doc.SelectParas(2, 3)
	click(t, w, findIn(t, w.Win, "btnFontColor"))
	picker := w.Desk.TopWindow()
	blue := picker.FindByName("Blue")
	click(t, w, blue)
	if w.Doc.Paras[1].FontColor != "Blue" || w.Doc.Paras[2].FontColor != "Blue" {
		t.Errorf("font color not applied: %+v", w.Doc.Paras[1])
	}
	if w.Doc.Paras[0].FontColor == "Blue" {
		t.Error("color leaked outside selection")
	}
	if w.Doc.Paras[1].UnderlineColor == "Blue" {
		t.Error("font-color path changed underline color (path semantics broken)")
	}
}

func TestUnderlineColorPathSemantics(t *testing.T) {
	w := New()
	w.Doc.SelectParas(1, 1)
	// Navigate Underline → Underline Color → Blue: same picker, different
	// binding than Font Color.
	click(t, w, findIn(t, w.Win, "btnUnderline"))
	menu := w.Desk.TopWindow()
	click(t, w, findIn(t, menu, "btnUnderlineColor"))
	picker := w.Desk.TopWindow()
	click(t, w, picker.FindByName("Blue"))
	p := w.Doc.Paras[0]
	if p.UnderlineColor != "Blue" || !p.Underline {
		t.Errorf("underline color not applied: %+v", p)
	}
	if p.FontColor == "Blue" {
		t.Error("underline path changed font color")
	}
}

func TestNoSelectionIsNoOp(t *testing.T) {
	w := New()
	click(t, w, findIn(t, w.Win, "btnBold"))
	for _, p := range w.Doc.Paras {
		if p.Bold {
			t.Fatal("bold applied without selection")
		}
	}
}

func TestReplaceAllAndDynamicRename(t *testing.T) {
	w := New("alpha beta alpha", "gamma alpha")
	click(t, w, findIn(t, w.Win, "btnReplace"))
	dlg := w.Desk.TopWindow()

	fw := findIn(t, dlg, "edFindWhat")
	click(t, w, fw)
	if err := w.Desk.TypeText("alpha"); err != nil {
		t.Fatal(err)
	}
	rw := findIn(t, dlg, "edReplaceWith")
	click(t, w, rw)
	if err := w.Desk.TypeText("omega"); err != nil {
		t.Fatal(err)
	}
	click(t, w, findIn(t, dlg, "btnReplaceAll"))
	if w.Doc.CountOccurrences("alpha") != 0 || w.Doc.CountOccurrences("omega") != 3 {
		t.Errorf("replace all failed: %q", w.Doc.Body())
	}

	// Typing "+1" into Find what renames Find Next to Go To (paper §6).
	if w.FindNextButton().Name() != "Find Next" {
		t.Fatalf("initial name = %q", w.FindNextButton().Name())
	}
	click(t, w, fw)
	if err := w.Desk.TypeText("+1"); err != nil {
		t.Fatal(err)
	}
	if w.FindNextButton().Name() != "Go To" {
		t.Errorf("dynamic rename missing: %q", w.FindNextButton().Name())
	}
	click(t, w, fw)
	if err := w.Desk.TypeText("plain"); err != nil {
		t.Fatal(err)
	}
	if w.FindNextButton().Name() != "Find Next" {
		t.Errorf("rename did not revert: %q", w.FindNextButton().Name())
	}
}

func TestPictureContext(t *testing.T) {
	w := New()
	tab := findIn(t, w.Win, "tabPictureFormat")
	if tab.OnScreen() {
		t.Fatal("Picture Format visible without image")
	}
	// Insert a picture via Insert → Pictures.
	w.ActivateTabByName("Insert")
	click(t, w, findIn(t, w.Win, "wPictures"))
	if !w.PictureSelected || !tab.OnScreen() {
		t.Fatal("inserting a picture should select it and reveal the tab")
	}
	click(t, w, tab)
	click(t, w, findIn(t, w.Win, "btnPictureBorder"))
	picker := w.Desk.TopWindow()
	click(t, w, picker.FindByName("Red"))
	if w.PictureBorder != "Red" {
		t.Errorf("picture border = %q", w.PictureBorder)
	}
}

func TestOrientationAndTable(t *testing.T) {
	w := New()
	w.ActivateTabByName("Layout")
	click(t, w, findIn(t, w.Win, "btnOrientation"))
	menu := w.Desk.TopWindow()
	click(t, w, menu.FindByName("Landscape"))
	if w.Doc.Orientation != "Landscape" {
		t.Errorf("orientation = %q", w.Doc.Orientation)
	}

	w.ActivateTabByName("Insert")
	click(t, w, findIn(t, w.Win, "btnTable"))
	grid := w.Desk.TopWindow()
	click(t, w, grid.FindByName("3x2 Table"))
	tbl, ok := w.Doc.LastTable()
	if !ok || tbl.Rows != 2 || tbl.Cols != 3 {
		t.Errorf("table = %+v ok=%v", tbl, ok)
	}
}

func TestLineSpacingMenu(t *testing.T) {
	w := New()
	w.Doc.SelectParas(1, 2)
	click(t, w, findIn(t, w.Win, "btnLineSpacing"))
	menu := w.Desk.TopWindow()
	click(t, w, menu.FindByName("1.50"))
	if w.Doc.Paras[0].LineSpacing != 1.5 || w.Doc.Paras[1].LineSpacing != 1.5 {
		t.Errorf("line spacing not applied: %v", w.Doc.Paras[0].LineSpacing)
	}
}

func TestSelectionViaTextPattern(t *testing.T) {
	w := New("one", "two", "three")
	tp := w.Doc.TextPattern()
	// Paragraph 2 occupies line 3 (blank separators between paragraphs).
	if err := tp.SelectParagraphs(w.DocElement(), 2, 3); err != nil {
		t.Fatal(err)
	}
	if w.Doc.SelStart != 2 || w.Doc.SelEnd != 3 {
		t.Errorf("selection = [%d,%d], want [2,3]", w.Doc.SelStart, w.Doc.SelEnd)
	}
	sel := w.Doc.Selected()
	if len(sel) != 2 || sel[0].Text != "two" {
		t.Errorf("selected paras wrong: %v", sel)
	}
}

func TestSaveAsThroughBackstage(t *testing.T) {
	w := New()
	w.ActivateTabByName("File")
	click(t, w, findIn(t, w.Win, "btnSaveAs"))
	dlg := w.Desk.TopWindow()
	ed := findIn(t, dlg, "saveAsName")
	click(t, w, ed)
	if err := w.Desk.TypeText("report_final"); err != nil {
		t.Fatal(err)
	}
	click(t, w, findIn(t, dlg, "dlgSaveAsOK"))
	if w.Doc.Saved != "report_final" {
		t.Errorf("saved = %q", w.Doc.Saved)
	}
}

func TestBlocklistContainsAccount(t *testing.T) {
	w := New()
	if w.BlocklistSize() == 0 {
		t.Fatal("word should blocklist at least the Account control")
	}
}
