package catalog

import "testing"

func TestFontsScale(t *testing.T) {
	fonts := Fonts()
	if len(fonts) != len(FontFamilies)*len(FontVariants) {
		t.Fatalf("fonts = %d", len(fonts))
	}
	if len(fonts) < 300 {
		t.Errorf("font list too small for a large enumeration: %d", len(fonts))
	}
	seen := map[string]bool{}
	for _, f := range fonts {
		if seen[f] {
			t.Fatalf("duplicate font %q", f)
		}
		seen[f] = true
	}
}

func TestGeneratedListsSized(t *testing.T) {
	if got := len(Symbols(100)); got != 100 {
		t.Errorf("Symbols(100) = %d", got)
	}
	if got := len(Icons(250)); got != 250 {
		t.Errorf("Icons(250) = %d", got)
	}
	if got := len(PageNumberFormats()); got != 60 {
		t.Errorf("PageNumberFormats = %d, want 4 positions × 15 styles", got)
	}
}

func TestExcelFunctionsGrouped(t *testing.T) {
	fns := ExcelFunctions()
	for _, cat := range []string{"Financial", "Logical", "Text", "Date & Time",
		"Lookup & Reference", "Math & Trig", "Statistical"} {
		if len(fns[cat]) == 0 {
			t.Errorf("category %q empty", cat)
		}
	}
	if len(fns["Financial"]) < 48 {
		t.Error("Financial should be a large enumeration")
	}
	if len(fns["Logical"]) > 48 {
		t.Error("Logical should stay below the large-enumeration threshold")
	}
}

func TestNoEmptyNames(t *testing.T) {
	lists := [][]string{
		Fonts(), FontSizes, WordStyles, ThemeNames, ShapeNames(),
		NumberFormats, CellStyles, ChartTypes, Transitions, Animations(),
		SlideLayouts, BorderStyles, Languages(), WordArtStyles(),
	}
	for i, list := range lists {
		for _, s := range list {
			if s == "" {
				t.Fatalf("list %d contains an empty name", i)
			}
		}
	}
}
