// Package catalog provides the bulk content of the simulated Office
// applications: font families, symbol sets, worksheet functions, style and
// theme names, shape and icon inventories. These drive the large
// enumerations that give the modeled applications their realistic scale
// (each exposes >4K controls, paper §5.1) and that core-topology extraction
// must prune (paper §3.3).
package catalog

import (
	"fmt"
	"sort"
)

// FontFamilies is the base list of font family names.
var FontFamilies = []string{
	"Arial", "Arial Black", "Bahnschrift", "Baskerville", "Bodoni MT",
	"Book Antiqua", "Bookman Old Style", "Calibri", "Cambria", "Candara",
	"Cascadia Code", "Castellar", "Centaur", "Century", "Century Gothic",
	"Comic Sans MS", "Consolas", "Constantia", "Corbel", "Courier New",
	"Didot", "Dubai", "Ebrima", "Elephant", "Eras ITC", "Fira Sans",
	"Franklin Gothic", "Futura", "Gabriola", "Gadugi", "Garamond",
	"Georgia", "Gill Sans MT", "Goudy Old Style", "Haettenschweiler",
	"Harlow Solid", "Helvetica", "High Tower Text", "Impact", "Ink Free",
	"Javanese Text", "Jokerman", "Kristen ITC", "Lato", "Leelawadee UI",
	"Lucida Console", "Lucida Sans", "Magneto", "Maiandra GD", "Merriweather",
	"Microsoft Sans Serif", "Mistral", "Modern No. 20", "Mongolian Baiti",
	"Monotype Corsiva", "Montserrat", "MV Boli", "Myanmar Text", "Niagara",
	"Nirmala UI", "Noto Sans", "Onyx", "Open Sans", "Palatino Linotype",
	"Papyrus", "Perpetua", "Playbill", "PMingLiU", "Poppins", "Pristina",
	"Raleway", "Ravie", "Roboto", "Rockwell", "Segoe Print", "Segoe Script",
	"Segoe UI", "Showcard Gothic", "SimSun", "Sitka", "Snap ITC",
	"Source Sans Pro", "Stencil", "Sylfaen", "Tahoma", "Tempus Sans ITC",
	"Times New Roman", "Trebuchet MS", "Tw Cen MT", "Ubuntu", "Verdana",
	"Viner Hand ITC", "Vivaldi", "Vladimir Script", "Wide Latin",
	"Yu Gothic", "Zapfino",
}

// FontVariants multiply the family list into the full font list.
var FontVariants = []string{"", " Light", " Semibold", " Condensed"}

// Fonts returns the full font list (families × variants).
func Fonts() []string {
	out := make([]string, 0, len(FontFamilies)*len(FontVariants))
	for _, f := range FontFamilies {
		for _, v := range FontVariants {
			out = append(out, f+v)
		}
	}
	return out
}

// FontSizes is the standard font size dropdown.
var FontSizes = []string{"8", "9", "10", "10.5", "11", "12", "14", "16", "18",
	"20", "22", "24", "26", "28", "36", "48", "72"}

// Symbols returns n symbol names ("Symbol U+00A1 (Set k)"), the Insert →
// Symbol grid.
func Symbols(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("Symbol U+%04X (Set %d)", 0xA1+i, i/64+1)
	}
	return out
}

// Icons returns n stock icon names, the Insert → Icons gallery (one of the
// genuinely huge enumerations in modern Office).
func Icons(n int) []string {
	themes := []string{"Accessibility", "Analytics", "Animals", "Arrows",
		"Body parts", "Buildings", "Business", "Celebration", "Commerce",
		"Communication", "Education", "Faces", "Food", "Holidays", "Home",
		"Interface", "Location", "Medical", "Nature", "People", "Process",
		"Security", "Signs", "Sports", "Technology", "Tools", "Travel",
		"Vehicles", "Weather", "Work"}
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s icon %d", themes[i%len(themes)], i/len(themes)+1)
	}
	return out
}

// WordStyles is the Word style gallery.
var WordStyles = []string{
	"Normal", "No Spacing", "Heading 1", "Heading 2", "Heading 3", "Heading 4",
	"Heading 5", "Heading 6", "Heading 7", "Heading 8", "Heading 9", "Title",
	"Subtitle", "Subtle Emphasis", "Emphasis", "Intense Emphasis", "Strong",
	"Quote", "Intense Quote", "Subtle Reference", "Intense Reference",
	"Book Title", "List Paragraph", "Caption", "TOC Heading", "Bibliography",
	"Footnote Text", "Header", "Footer", "Plain Text", "Body Text",
	"Body Text Indent", "List Bullet", "List Number", "List Continue",
	"Signature", "Salutation", "Date", "Envelope Address", "Envelope Return",
	"Hyperlink", "Macro Text", "Balloon Text", "Comment Text", "Title Dark",
	"Block Text", "Closing", "Default Paragraph Font", "Document Map",
	"E-mail Signature", "Endnote Text", "HTML Acronym", "HTML Address",
	"HTML Cite", "HTML Code", "HTML Keyboard", "HTML Sample",
	"HTML Typewriter", "HTML Variable", "Index 1", "Index 2", "Index 3",
	"Line Number", "Message Header", "Normal Indent", "Note Heading",
	"Page Number", "Table of Authorities", "TOA Heading",
}

// ThemeNames is the document theme gallery shared by all three apps.
var ThemeNames = []string{
	"Office", "Facet", "Integral", "Ion", "Ion Boardroom", "Organic",
	"Retrospect", "Slice", "Wisp", "Banded", "Basis", "Berlin", "Celestial",
	"Circuit", "Damask", "Depth", "Dividend", "Droplet", "Frame", "Gallery",
	"Headlines", "Main Event", "Mesh", "Metropolitan", "Parallax", "Parcel",
	"Quotable", "Savon", "Slate", "Vapor Trail", "View", "Wood Type",
	"Badge", "Crop", "Feathered", "Madison", "Atlas", "Dividers", "Oriel",
	"Origin", "Paper", "Solstice", "Technic", "Trek",
}

// ShapeNames returns the Insert → Shapes gallery.
func ShapeNames() []string {
	groups := map[string][]string{
		"Line": {"Line", "Arrow", "Double Arrow", "Elbow Connector",
			"Curved Connector", "Curve", "Freeform", "Scribble"},
		"Rectangle": {"Rectangle", "Rounded Rectangle", "Snip Single Corner",
			"Snip Same Side", "Snip Diagonal", "Round Single Corner",
			"Round Same Side", "Round Diagonal"},
		"Basic Shape": {"Oval", "Triangle", "Right Triangle", "Parallelogram",
			"Trapezoid", "Diamond", "Pentagon", "Hexagon", "Heptagon",
			"Octagon", "Decagon", "Dodecagon", "Pie", "Chord", "Teardrop",
			"Frame", "Half Frame", "L-Shape", "Diagonal Stripe", "Cross",
			"Plaque", "Can", "Cube", "Bevel", "Donut", "No Symbol",
			"Block Arc", "Folded Corner", "Smiley Face", "Heart",
			"Lightning Bolt", "Sun", "Moon", "Cloud", "Arc", "Bracket Pair",
			"Brace Pair", "Left Bracket", "Right Bracket", "Left Brace",
			"Right Brace"},
		"Block Arrow": {"Right Arrow", "Left Arrow", "Up Arrow", "Down Arrow",
			"Left-Right Arrow", "Up-Down Arrow", "Quad Arrow",
			"Left-Right-Up Arrow", "Bent Arrow", "U-Turn Arrow",
			"Left-Up Arrow", "Bent-Up Arrow", "Curved Right Arrow",
			"Curved Left Arrow", "Curved Up Arrow", "Curved Down Arrow",
			"Striped Right Arrow", "Notched Right Arrow", "Pentagon Arrow",
			"Chevron Arrow", "Right Arrow Callout", "Down Arrow Callout",
			"Left Arrow Callout", "Up Arrow Callout", "Left-Right Callout",
			"Quad Arrow Callout", "Circular Arrow"},
		"Equation Shape": {"Plus", "Minus", "Multiply", "Division", "Equal",
			"Not Equal"},
		"Flowchart": {"Process", "Alternate Process", "Decision",
			"Data", "Predefined Process", "Internal Storage",
			"Flowchart Document", "Multidocument", "Terminator", "Preparation",
			"Manual Input", "Manual Operation", "Connector", "Off-page Connector",
			"Card", "Punched Tape", "Summing Junction", "Or", "Collate",
			"Sort", "Extract", "Merge", "Stored Data", "Delay",
			"Sequential Access Storage", "Magnetic Disk", "Direct Access Storage",
			"Display"},
		"Star and Banner": {"Explosion 8pt", "Explosion 14pt", "Star 4pt",
			"Star 5pt", "Star 6pt", "Star 7pt", "Star 8pt", "Star 10pt",
			"Star 12pt", "Star 16pt", "Star 24pt", "Star 32pt",
			"Up Ribbon", "Down Ribbon", "Curved Up Ribbon", "Curved Down Ribbon",
			"Vertical Scroll", "Horizontal Scroll", "Wave", "Double Wave"},
		"Callout": {"Speech Bubble: Rectangle", "Speech Bubble: Rounded",
			"Speech Bubble: Oval", "Thought Bubble: Cloud",
			"Line Callout 1", "Line Callout 2", "Line Callout 3",
			"Line Callout 1 (Accent Bar)", "Line Callout 2 (Accent Bar)",
			"Line Callout 1 (No Border)", "Line Callout 2 (No Border)"},
	}
	order := []string{"Line", "Rectangle", "Basic Shape", "Block Arrow",
		"Equation Shape", "Flowchart", "Star and Banner", "Callout"}
	var out []string
	for _, g := range order {
		for _, s := range groups[g] {
			out = append(out, s+" ("+g+")")
		}
	}
	return out
}

// ExcelFunctions returns the Formulas-tab function library, grouped.
func ExcelFunctions() map[string][]string {
	return map[string][]string{
		"Financial": {"ACCRINT", "ACCRINTM", "AMORDEGRC", "AMORLINC",
			"COUPDAYBS", "COUPDAYS", "COUPDAYSNC", "COUPNCD", "COUPNUM",
			"COUPPCD", "CUMIPMT", "CUMPRINC", "DB", "DDB", "DISC", "DOLLARDE",
			"DOLLARFR", "DURATION", "EFFECT", "FV", "FVSCHEDULE", "INTRATE",
			"IPMT", "IRR", "ISPMT", "MDURATION", "MIRR", "NOMINAL", "NPER",
			"NPV", "ODDFPRICE", "ODDFYIELD", "ODDLPRICE", "ODDLYIELD", "PMT",
			"PPMT", "PRICE", "PRICEDISC", "PRICEMAT", "PV", "RATE", "RECEIVED",
			"SLN", "SYD", "TBILLEQ", "TBILLPRICE", "TBILLYIELD", "VDB",
			"XIRR", "XNPV", "YIELD", "YIELDDISC", "YIELDMAT"},
		"Logical": {"AND", "FALSE", "IF", "IFERROR", "IFNA", "IFS", "NOT",
			"OR", "SWITCH", "TRUE", "XOR"},
		"Text": {"ASC", "BAHTTEXT", "CHAR", "CLEAN", "CODE", "CONCAT",
			"CONCATENATE", "DOLLAR", "EXACT", "FIND", "FIXED", "LEFT", "LEN",
			"LOWER", "MID", "NUMBERVALUE", "PROPER", "REPLACE", "REPT",
			"RIGHT", "SEARCH", "SUBSTITUTE", "T", "TEXT", "TEXTJOIN", "TRIM",
			"UNICHAR", "UNICODE", "UPPER", "VALUE"},
		"Date & Time": {"DATE", "DATEDIF", "DATEVALUE", "DAY", "DAYS",
			"DAYS360", "EDATE", "EOMONTH", "HOUR", "ISOWEEKNUM", "MINUTE",
			"MONTH", "NETWORKDAYS", "NOW", "SECOND", "TIME", "TIMEVALUE",
			"TODAY", "WEEKDAY", "WEEKNUM", "WORKDAY", "YEAR", "YEARFRAC"},
		"Lookup & Reference": {"ADDRESS", "AREAS", "CHOOSE", "COLUMN",
			"COLUMNS", "FILTER", "FORMULATEXT", "GETPIVOTDATA", "HLOOKUP",
			"HYPERLINK", "INDEX", "INDIRECT", "LOOKUP", "MATCH", "OFFSET",
			"ROW", "ROWS", "SORT", "SORTBY", "TRANSPOSE", "UNIQUE", "VLOOKUP",
			"XLOOKUP", "XMATCH"},
		"Statistical": {"AVEDEV", "AVERAGE", "AVERAGEA", "AVERAGEIF",
			"AVERAGEIFS", "BETA.DIST", "BINOM.DIST", "CHISQ.TEST", "CONFIDENCE.NORM",
			"CORREL", "COUNT", "COUNTA", "COUNTBLANK", "COUNTIF", "COUNTIFS",
			"COVARIANCE.P", "DEVSQ", "EXPON.DIST", "F.TEST", "FORECAST.LINEAR",
			"FREQUENCY", "GEOMEAN", "HARMEAN", "KURT", "LARGE", "LINEST",
			"MAX", "MAXIFS", "MEDIAN", "MIN", "MINIFS", "MODE.SNGL",
			"NORM.DIST", "PERCENTILE.INC", "QUARTILE.INC", "RANK.EQ", "SKEW",
			"SLOPE", "SMALL", "STDEV.P", "STDEV.S", "T.TEST", "TREND",
			"TRIMMEAN", "VAR.P", "VAR.S", "Z.TEST"},
		"Math & Trig": {"ABS", "ACOS", "ACOSH", "ASIN", "ASINH", "ATAN",
			"ATAN2", "ATANH", "CEILING", "COMBIN", "COS", "COSH", "DEGREES",
			"EVEN", "EXP", "FACT", "FLOOR", "GCD", "INT", "LCM", "LN", "LOG",
			"LOG10", "MOD", "MROUND", "ODD", "PI", "POWER", "PRODUCT",
			"QUOTIENT", "RADIANS", "RAND", "RANDBETWEEN", "ROMAN", "ROUND",
			"ROUNDDOWN", "ROUNDUP", "SIGN", "SIN", "SINH", "SQRT", "SUBTOTAL",
			"SUM", "SUMIF", "SUMIFS", "SUMPRODUCT", "TAN", "TANH", "TRUNC"},
	}
}

// ExcelFunctionCategories returns the function-library category names in
// sorted order. UI builders must iterate categories through this list, never
// by ranging the ExcelFunctions map directly: map iteration order varies per
// instance, and two App instances whose ribbons disagree on child order can
// never rip to byte-identical graphs.
func ExcelFunctionCategories() []string {
	fns := ExcelFunctions()
	cats := make([]string, 0, len(fns))
	for cat := range fns {
		cats = append(cats, cat)
	}
	sort.Strings(cats)
	return cats
}

// NumberFormats is the Excel number-format dropdown.
var NumberFormats = []string{
	"General", "Number", "Currency", "Accounting", "Short Date", "Long Date",
	"Time", "Percentage", "Fraction", "Scientific", "Text",
}

// CellStyles is the Excel cell styles gallery.
var CellStyles = []string{
	"Normal", "Bad", "Good", "Neutral", "Calculation", "Check Cell",
	"Explanatory Text", "Input", "Linked Cell", "Note", "Output",
	"Warning Text", "Heading 1", "Heading 2", "Heading 3", "Heading 4",
	"Title", "Total", "20% - Accent1", "20% - Accent2", "20% - Accent3",
	"20% - Accent4", "20% - Accent5", "20% - Accent6", "40% - Accent1",
	"40% - Accent2", "40% - Accent3", "40% - Accent4", "40% - Accent5",
	"40% - Accent6", "60% - Accent1", "60% - Accent2", "60% - Accent3",
	"60% - Accent4", "60% - Accent5", "60% - Accent6", "Accent1", "Accent2",
	"Accent3", "Accent4", "Accent5", "Accent6", "Comma", "Comma [0]",
	"Currency", "Currency [0]", "Percent",
}

// ChartTypes is the Insert → Charts dialog inventory.
var ChartTypes = []string{
	"Clustered Column", "Stacked Column", "100% Stacked Column",
	"3-D Clustered Column", "3-D Stacked Column", "3-D Column",
	"Line", "Stacked Line", "100% Stacked Line", "Line with Markers",
	"Stacked Line with Markers", "3-D Line",
	"Pie", "3-D Pie", "Pie of Pie", "Bar of Pie", "Doughnut",
	"Clustered Bar", "Stacked Bar", "100% Stacked Bar",
	"3-D Clustered Bar", "3-D Stacked Bar",
	"Area", "Stacked Area", "100% Stacked Area", "3-D Area",
	"Scatter", "Scatter with Smooth Lines", "Scatter with Straight Lines",
	"Bubble", "3-D Bubble", "Stock High-Low-Close", "Stock Open-High-Low-Close",
	"Surface", "Wireframe Surface", "Contour", "Wireframe Contour",
	"Radar", "Radar with Markers", "Filled Radar", "Treemap", "Sunburst",
	"Histogram", "Pareto", "Box and Whisker", "Waterfall", "Funnel",
	"Map", "Combo",
}

// Transitions is the PowerPoint transition gallery.
var Transitions = []string{
	"None", "Morph", "Fade", "Push", "Wipe", "Split", "Reveal", "Cut",
	"Random Bars", "Shape", "Uncover", "Cover", "Flash", "Fall Over",
	"Drape", "Curtains", "Wind", "Prestige", "Fracture", "Crush",
	"Peel Off", "Page Curl", "Airplane", "Origami", "Dissolve",
	"Checkerboard", "Blinds", "Clock", "Ripple", "Honeycomb", "Glitter",
	"Vortex", "Shred", "Switch", "Flip", "Gallery", "Cube", "Doors", "Box",
	"Comb", "Zoom", "Random", "Ferris Wheel", "Conveyor", "Rotate",
	"Orbit", "Fly Through", "Pan",
}

// Animations is the PowerPoint animation gallery.
func Animations() []string {
	entrance := []string{"Appear", "Fade", "Fly In", "Float In", "Split",
		"Wipe", "Shape", "Wheel", "Random Bars", "Grow & Turn", "Zoom",
		"Swivel", "Bounce"}
	emphasis := []string{"Pulse", "Color Pulse", "Teeter", "Spin",
		"Grow/Shrink", "Desaturate", "Darken", "Lighten", "Transparency",
		"Object Color", "Complementary Color", "Line Color", "Fill Color",
		"Brush Color", "Font Color", "Underline", "Bold Flash", "Bold Reveal",
		"Wave"}
	exit := []string{"Disappear", "Fade Out", "Fly Out", "Float Out",
		"Split Out", "Wipe Out", "Shape Out", "Wheel Out", "Random Bars Out",
		"Shrink & Turn", "Zoom Out", "Swivel Out", "Bounce Out"}
	paths := []string{"Lines", "Arcs", "Turns", "Shapes", "Loops",
		"Custom Path"}
	var out []string
	for _, s := range entrance {
		out = append(out, s+" (Entrance)")
	}
	for _, s := range emphasis {
		out = append(out, s+" (Emphasis)")
	}
	for _, s := range exit {
		out = append(out, s+" (Exit)")
	}
	for _, s := range paths {
		out = append(out, s+" (Motion Path)")
	}
	return out
}

// SlideLayouts is the New Slide layout gallery.
var SlideLayouts = []string{
	"Title Slide", "Title and Content", "Section Header", "Two Content",
	"Comparison", "Title Only", "Blank", "Content with Caption",
	"Picture with Caption", "Title and Vertical Text",
	"Vertical Title and Text",
}

// BorderStyles is the Borders dropdown (Word tables / Excel cells).
var BorderStyles = []string{
	"Bottom Border", "Top Border", "Left Border", "Right Border",
	"No Border", "All Borders", "Outside Borders", "Inside Borders",
	"Inside Horizontal Border", "Inside Vertical Border",
	"Diagonal Down Border", "Diagonal Up Border", "Horizontal Line",
	"Draw Table", "View Gridlines", "Borders and Shading",
}

// PageNumberFormats is Word's Insert → Page Number gallery.
func PageNumberFormats() []string {
	positions := []string{"Top of Page", "Bottom of Page", "Page Margins",
		"Current Position"}
	styles := []string{"Plain Number 1", "Plain Number 2", "Plain Number 3",
		"Accent Bar 1", "Accent Bar 2", "Banded", "Bold Numbers 1",
		"Bold Numbers 2", "Brackets 1", "Brackets 2", "Circle", "Large Color",
		"Roman", "Tildes", "Triangle"}
	var out []string
	for _, p := range positions {
		for _, s := range styles {
			out = append(out, p+": "+s)
		}
	}
	return out
}

// Languages is the proofing-language list.
func Languages() []string {
	base := []string{"Afrikaans", "Albanian", "Arabic", "Armenian", "Basque",
		"Belarusian", "Bengali", "Bosnian", "Bulgarian", "Catalan", "Chinese",
		"Croatian", "Czech", "Danish", "Dutch", "English", "Estonian",
		"Filipino", "Finnish", "French", "Galician", "Georgian", "German",
		"Greek", "Gujarati", "Hebrew", "Hindi", "Hungarian", "Icelandic",
		"Indonesian", "Irish", "Italian", "Japanese", "Kannada", "Kazakh",
		"Khmer", "Korean", "Lao", "Latvian", "Lithuanian", "Macedonian",
		"Malay", "Malayalam", "Maltese", "Marathi", "Mongolian", "Nepali",
		"Norwegian", "Pashto", "Persian", "Polish", "Portuguese", "Punjabi",
		"Romanian", "Russian", "Serbian", "Sinhala", "Slovak", "Slovenian",
		"Spanish", "Swahili", "Swedish", "Tamil", "Telugu", "Thai", "Turkish",
		"Ukrainian", "Urdu", "Uzbek", "Vietnamese", "Welsh", "Zulu"}
	regions := map[string][]string{
		"English": {"(United States)", "(United Kingdom)", "(Australia)",
			"(Canada)", "(India)", "(Ireland)", "(New Zealand)", "(South Africa)"},
		"French":     {"(France)", "(Canada)", "(Belgium)", "(Switzerland)"},
		"German":     {"(Germany)", "(Austria)", "(Switzerland)"},
		"Spanish":    {"(Spain)", "(Mexico)", "(Argentina)", "(Colombia)"},
		"Portuguese": {"(Brazil)", "(Portugal)"},
		"Chinese":    {"(Simplified)", "(Traditional)"},
	}
	var out []string
	for _, l := range base {
		if rs, ok := regions[l]; ok {
			for _, r := range rs {
				out = append(out, l+" "+r)
			}
			continue
		}
		out = append(out, l)
	}
	return out
}

// WordArtStyles is the Insert → WordArt gallery.
func WordArtStyles() []string {
	fills := []string{"Black", "Blue", "Orange", "Gray", "Gold", "Green",
		"Purple", "Red"}
	effects := []string{"Fill", "Outline", "Fill with Shadow",
		"Fill with Reflection", "Fill with Glow"}
	var out []string
	for _, f := range fills {
		for _, e := range effects {
			out = append(out, e+", "+f)
		}
	}
	return out
}
