package slides

import (
	"fmt"
	"strings"

	"repro/internal/appkit"
	"repro/internal/office/catalog"
	"repro/internal/office/shared"
	"repro/internal/uia"
)

// Color-picker bindings.
const (
	BindFontColor     = "font-color"
	BindBackground    = "slide-background"
	BindShapeFill     = "shape-fill"
	BindShapeOutline  = "shape-outline"
	BindPictureBorder = "picture-border"
)

// ContextImageSelected reveals the Picture Format tab.
const ContextImageSelected = "image-selected"

// VisibleThumbs is the number of slide thumbnails visible at once; the panel
// scrollbar pans over the rest (the paper's Task 2).
const VisibleThumbs = 6

// App is the simulated PowerPoint application.
type App struct {
	*appkit.App
	Deck *Deck

	PictureBorder string

	thumbList *uia.Element
	thumbs    []*uia.Element
	thumbTop  int // first visible thumbnail (0-based)
	titleEl   *uia.Element
	bodyEl    *uia.Element
}

// New assembles the PowerPoint simulator with n slides (default 12).
func New(n int) *App {
	if n <= 0 {
		n = 12
	}
	p := &App{App: appkit.New("PowerPoint"), Deck: NewDeck(n)}

	picker := p.ColorPicker("clrPicker", "Colors", p.applyColor)
	p.buildHome(picker)
	p.buildInsert()
	p.buildDesign(picker)
	p.buildTransitions()
	p.buildAnimations()
	p.buildSlideShow()
	p.buildReviewView()
	p.buildPictureFormat(picker)
	shared.AddBackstage(p.App, func(_ *appkit.App, name string) { p.Deck.Saved = name })
	// See word.New: ribbon collapse is operator-blocklisted for modeling.
	collapse, _ := p.AddRibbonCollapse()
	p.Block(collapse.ControlID())
	p.buildBody()

	p.RegisterContext(appkit.Context{Name: ContextImageSelected})
	p.OnSoftReset(func(*appkit.App) {
		p.Deck.SelectOnly(0)
		p.ScrollThumbsTo(0)
	})
	p.Layout()
	return p
}

func (p *App) applyColor(a *appkit.App, color string) {
	switch a.Binding() {
	case BindFontColor:
		if t := p.Deck.CurrentSlide().Title(); t != nil {
			_ = t
		}
	case BindBackground:
		// Format Background: a pick colors the current slide and stays
		// pending so Apply to All can copy it to the rest (Task 1).
		p.Deck.PendingBackground = color
		if s := p.Deck.CurrentSlide(); s != nil {
			s.Background = color
		}
	case BindShapeFill:
		if s := p.Deck.CurrentSlide(); s != nil && len(s.Shapes) > 0 {
			s.Shapes[len(s.Shapes)-1].Fill = color
		}
	case BindShapeOutline:
		if s := p.Deck.CurrentSlide(); s != nil && len(s.Shapes) > 0 {
			s.Shapes[len(s.Shapes)-1].Border = color
		}
	case BindPictureBorder:
		p.PictureBorder = color
	}
}

func (p *App) layoutGallery() *appkit.Popup {
	if g := p.popupByWindowID("galLayouts"); g != nil {
		return g
	}
	return p.Gallery("galLayouts", "Slide Layouts", catalog.SlideLayouts, 11,
		func(_ *appkit.App, layout string) { p.Deck.InsertSlide(layout); p.refreshThumbs() })
}

func (p *App) popupByWindowID(autoID string) *appkit.Popup {
	for _, t := range p.PopupTemplates() {
		if t.Win.AutomationID() == autoID {
			return t
		}
	}
	return nil
}

func (p *App) buildHome(picker *appkit.Popup) {
	home := p.Tab("tabHome", "Home")

	clip := home.Group("grpClipboard", "Clipboard")
	clip.Button("btnPaste", "Paste", nil)
	clip.Button("btnCut", "Cut", nil)
	clip.Button("btnCopy", "Copy", nil)
	clip.Button("btnFormatPainter", "Format Painter", nil)

	sl := home.Group("grpSlides", "Slides")
	layoutGal := p.layoutGallery()
	ns := sl.MenuButton("btnNewSlide", "New Slide", layoutGal, nil)
	ns.SetDescription("Insert a new slide; pick a layout from the gallery")
	// The Layout button reuses the same gallery popup: a second path to the
	// same controls (merge nodes).
	sl.MenuButton("btnLayout", "Layout", layoutGal, nil)
	sl.Button("btnResetSlide", "Reset", nil)
	sectionMenu := p.NewMenu("mnuSection", "Section")
	for _, m := range []string{"Add Section", "Rename Section",
		"Remove Section", "Remove All Sections", "Collapse All", "Expand All"} {
		sectionMenu.Panel().MenuItem("", m, nil)
	}
	sl.MenuButton("btnSection", "Section", sectionMenu, nil)

	font := home.Group("grpFont", "Font")
	shared.AddFontControls(font, "p",
		func(*appkit.App, string) {},
		func(_ *appkit.App, v string) {
			if t := p.selectedTitle(); t != nil {
				var f float64
				fmt.Sscanf(v, "%f", &f)
				if f > 0 {
					t.FontSize = f
				}
			}
		})
	font.ToggleButton("btnBold", "Bold", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	font.ToggleButton("btnItalic", "Italic", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	font.ToggleButton("btnUnderlineP", "Underline", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	font.Button("btnIncreaseFont", "Increase Font Size", func(*appkit.App) {
		if t := p.selectedTitle(); t != nil {
			t.FontSize += 2
		}
	})
	font.Button("btnDecreaseFont", "Decrease Font Size", func(*appkit.App) {
		if t := p.selectedTitle(); t != nil && t.FontSize > 2 {
			t.FontSize -= 2
		}
	})
	font.MenuButton("btnFontColorP", "Font Color", picker,
		func(*appkit.App) any { return BindFontColor })

	par := home.Group("grpParagraph", "Paragraph")
	for _, al := range []string{"Align Left", "Center", "Align Right", "Justify"} {
		par.Button("btnAlign"+strings.ReplaceAll(al, " ", ""), al, nil)
	}
	par.Button("btnBulletsP", "Bullets", nil)
	par.Button("btnNumberingP", "Numbering", nil)
	dirMenu := p.NewMenu("mnuTextDirection", "Text Direction")
	for _, m := range []string{"Horizontal", "Rotate 90°", "Rotate 270°", "Stacked"} {
		dirMenu.Panel().MenuItem("", m, nil)
	}
	par.MenuButton("btnTextDirection", "Text Direction", dirMenu, nil)

	draw := home.Group("grpDrawing", "Drawing")
	shapesGal := p.Gallery("galDrawShapes", "Shapes", catalog.ShapeNames(), 48,
		func(_ *appkit.App, s string) {
			cur := p.Deck.CurrentSlide()
			cur.Shapes = append(cur.Shapes, &Shape{Kind: "shape:" + s, FontSize: 18})
		})
	shapesGal.Body.MarkLargeEnum()
	draw.MenuButton("btnDrawShapes", "Shapes", shapesGal, nil)
	arrangeMenu := p.NewMenu("mnuArrange", "Arrange")
	for _, m := range []string{"Bring to Front", "Send to Back",
		"Bring Forward", "Send Backward", "Group", "Ungroup", "Rotate",
		"Align", "Selection Pane"} {
		arrangeMenu.Panel().MenuItem("", m, nil)
	}
	draw.MenuButton("btnArrange", "Arrange", arrangeMenu, nil)
	qs := p.Gallery("galQuickStyles", "Quick Styles",
		quickStyleNames(), 14, nil)
	draw.MenuButton("btnQuickStyles", "Quick Styles", qs, nil)
	draw.MenuButton("btnShapeFill", "Shape Fill", picker,
		func(*appkit.App) any { return BindShapeFill })
	draw.MenuButton("btnShapeOutline", "Shape Outline", picker,
		func(*appkit.App) any { return BindShapeOutline })

	edit := home.Group("grpEditing", "Editing")
	edit.Button("btnFindP", "Find", nil)
	edit.Button("btnReplaceP", "Replace", nil)
	selMenu := p.NewMenu("mnuSelectP", "Select")
	for _, m := range []string{"Select All", "Select Objects", "Selection Pane"} {
		selMenu.Panel().MenuItem("", m, nil)
	}
	edit.MenuButton("btnSelectP", "Select", selMenu, nil)
}

func (p *App) buildInsert() {
	ins := p.Tab("tabInsert", "Insert")
	sl := ins.Group("grpSlidesIns", "Slides")
	sl.MenuButton("btnNewSlideIns", "New Slide", p.layoutGallery(), nil)
	reuse := p.NewMenu("mnuReuseSlides", "Reuse Slides")
	for i := 1; i <= 12; i++ {
		reuse.Panel().MenuItem("", fmt.Sprintf("Recent Deck %d", i), nil)
	}
	sl.MenuButton("btnReuseSlides", "Reuse Slides", reuse, nil)

	tbl := ins.Group("grpTablesIns", "Tables")
	tblMenu := p.NewMenu("mnuTableP", "Table")
	tg := tblMenu.Panel().Pane("pnlTableGridP", "Insert Table Grid")
	for r := 1; r <= 8; r++ {
		for c := 1; c <= 10; c++ {
			tg.MenuItem("", fmt.Sprintf("%dx%d Table", c, r), nil)
		}
	}
	tbl.MenuButton("btnTableP", "Table", tblMenu, nil)

	shared.AddIllustrations(p.App, ins, "p", func(_ *appkit.App, what string) {
		cur := p.Deck.CurrentSlide()
		cur.Shapes = append(cur.Shapes, &Shape{Kind: what, FontSize: 18})
		if what == "picture" {
			_ = p.EnterContext(ContextImageSelected)
		}
	})

	smartArt := p.Gallery("galSmartArt", "SmartArt", smartArtNames(), 40, nil)
	smartArt.Body.MarkLargeEnum()
	ins.Group("grpSmartArt", "SmartArt").MenuButton("btnSmartArt", "SmartArt", smartArt, nil)

	media := ins.Group("grpMedia", "Media")
	vidMenu := p.NewMenu("mnuVideo", "Video")
	for _, m := range []string{"This Device", "Stock Videos", "Online Videos"} {
		vidMenu.Panel().MenuItem("", m, nil)
	}
	media.MenuButton("btnVideo", "Video", vidMenu, nil)
	audMenu := p.NewMenu("mnuAudio", "Audio")
	for _, m := range []string{"Audio on My PC", "Record Audio"} {
		audMenu.Panel().MenuItem("", m, nil)
	}
	media.MenuButton("btnAudio", "Audio", audMenu, nil)
	media.Button("btnScreenRecording", "Screen Recording", nil)

	links := ins.Group("grpLinks", "Links")
	zoomMenu := p.NewMenu("mnuZoomIns", "Zoom")
	for _, m := range []string{"Summary Zoom", "Section Zoom", "Slide Zoom"} {
		zoomMenu.Panel().MenuItem("", m, nil)
	}
	links.MenuButton("btnZoomIns", "Zoom", zoomMenu, nil)
	linkDlg := p.NewDialog("dlgInsertLink", "Insert Hyperlink")
	lp := linkDlg.Panel()
	lp.Edit("edLinkText", "Text to display", "", nil)
	lp.Edit("edLinkAddress", "Address", "", nil)
	lp.RadioGroup("rbLinkTo", []string{"Existing File or Web Page",
		"Place in This Document", "Create New Document", "E-mail Address"}, nil)
	linkDlg.AddOKCancel(nil)
	links.DialogButton("btnLink", "Link", linkDlg, nil)
	actionDlg := p.NewDialog("dlgAction", "Action Settings")
	ap := actionDlg.Panel()
	ap.RadioGroup("rbAction", []string{"None", "Hyperlink to", "Run program",
		"Run macro", "Object action"}, nil)
	ap.CheckBox("chkPlaySound", "Play sound",
		func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	actionDlg.AddOKCancel(nil)
	links.DialogButton("btnAction", "Action", actionDlg, nil)

	text := ins.Group("grpTextIns", "Text")
	text.Button("btnTextBoxP", "Text Box", func(*appkit.App) {
		cur := p.Deck.CurrentSlide()
		cur.Shapes = append(cur.Shapes, &Shape{Kind: "textbox", FontSize: 18})
	})
	hfDlg := p.NewDialog("dlgHeaderFooter", "Header and Footer")
	hp := hfDlg.Panel()
	hp.CheckBox("chkDateTime", "Date and time", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	hp.CheckBox("chkSlideNumber", "Slide number", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	hp.CheckBox("chkFooter", "Footer", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	hfDlg.AddOKCancel(nil)
	text.DialogButton("btnHeaderFooterP", "Header & Footer", hfDlg, nil)
	wa := p.Gallery("galWordArtP", "WordArt", catalog.WordArtStyles(), 10, nil)
	text.MenuButton("btnWordArtP", "WordArt", wa, nil)

	shared.AddSymbols(p.App, ins, "p", nil)
}

func (p *App) buildDesign(picker *appkit.Popup) {
	design := p.Tab("tabDesign", "Design")
	shared.AddThemes(p.App, design.Group("grpThemesP", "Themes"), "p",
		func(_ *appkit.App, th string) { p.Deck.Theme = th })

	variants := design.Group("grpVariants", "Variants")
	vg := p.Gallery("galVariants", "Variants",
		[]string{"Variant 1", "Variant 2", "Variant 3", "Variant 4"}, 4, nil)
	variants.MenuButton("btnVariants", "Variants", vg, nil)

	cust := design.Group("grpCustomize", "Customize")
	sizeMenu := p.NewMenu("mnuSlideSize", "Slide Size")
	sm := sizeMenu.Panel()
	for _, s := range []string{"Standard (4:3)", "Widescreen (16:9)"} {
		s := s
		sm.MenuItem("", s, func(*appkit.App) { p.Deck.SlideSize = s })
	}
	szDlg := p.NewDialog("dlgSlideSize", "Slide Size")
	szDlg.Panel().ComboBox("cbSlideSizeFor", "Slides sized for",
		[]string{"On-screen Show (4:3)", "On-screen Show (16:9)",
			"Letter Paper", "A4 Paper", "35mm Slides", "Banner", "Custom"}, nil)
	szDlg.AddOKCancel(nil)
	sm.DialogButton("btnCustomSlideSize", "Custom Slide Size", szDlg, nil)
	cust.MenuButton("btnSlideSize", "Slide Size", sizeMenu, nil)

	// Format Background pane: the paper's Table 1 Task 1 path.
	fb := p.NewDialog("dlgFormatBackground", "Format Background")
	fbp := fb.Panel()
	fills := fbp.Pane("pnlFillKind", "Fill")
	fills.RadioGroup("rbFill", []string{"Solid fill", "Gradient fill",
		"Picture or texture fill", "Pattern fill"}, nil)
	fc := fbp.MenuButton("btnFillColor", "Fill Color", picker,
		func(*appkit.App) any { return BindBackground })
	fc.SetDescription("Color for the slide background fill")
	fbp.Spinner("spnTransparency", "Transparency", 0, 100, 0, nil)
	applyAll := fbp.NavButton("btnApplyToAll", "Apply to All", func(*appkit.App) {
		if p.Deck.PendingBackground != "" {
			p.Deck.SetBackgroundAll(p.Deck.PendingBackground)
		}
	})
	applyAll.SetDescription("Apply the current background to every slide in the presentation")
	fbp.NavButton("btnResetBackground", "Reset Background", func(*appkit.App) {
		if s := p.Deck.CurrentSlide(); s != nil {
			s.Background = "White"
		}
		p.Deck.PendingBackground = ""
	})
	fbd := design.DialogButton("btnFormatBackground", "Format Background", fb, nil)
	fbd.SetDescription("Open the Format Background pane")

	ideas := p.Gallery("galDesignIdeas", "Design Ideas", designIdeaNames(), 16, nil)
	design.Group("grpDesigner", "Designer").MenuButton("btnDesignIdeas", "Design Ideas", ideas, nil)
}

func (p *App) buildTransitions() {
	tr := p.Tab("tabTransitions", "Transitions")
	gal := p.Gallery("galTransitions", "Transition Effects", catalog.Transitions, 16,
		func(_ *appkit.App, t string) {
			if s := p.Deck.CurrentSlide(); s != nil {
				s.Transition = t
			}
		})
	g := tr.Group("grpTransition", "Transition to This Slide")
	tb := g.MenuButton("btnTransitionGallery", "Transition Effects", gal, nil)
	tb.SetDescription("Choose the transition for the current slide")
	eo := p.NewMenu("mnuEffectOptions", "Effect Options")
	for _, m := range []string{"From Right", "From Left", "From Top",
		"From Bottom", "From Top-Right", "From Top-Left", "From Bottom-Right",
		"From Bottom-Left", "Horizontal", "Vertical", "In", "Out",
		"Through Black", "Smoothly"} {
		eo.Panel().MenuItem("", m, nil)
	}
	g.MenuButton("btnEffectOptions", "Effect Options", eo, nil)

	timing := tr.Group("grpTiming", "Timing")
	timing.Spinner("spnDuration", "Duration", 0.01, 59, 1, nil)
	ata := timing.Button("btnApplyToAllTransitions", "Apply To All", func(*appkit.App) {
		if s := p.Deck.CurrentSlide(); s != nil {
			p.Deck.SetTransitionAll(s.Transition)
		}
	})
	ata.SetDescription("Apply this slide's transition to all slides")
	timing.CheckBox("chkOnMouseClick", "On Mouse Click",
		func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})
	timing.CheckBox("chkAfterTime", "After",
		func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
}

func (p *App) buildAnimations() {
	an := p.Tab("tabAnimations", "Animations")
	gal := p.Gallery("galAnimations", "Animation Effects", catalog.Animations(), 16, nil)
	gal.Body.MarkLargeEnum()
	g := an.Group("grpAnimation", "Animation")
	g.MenuButton("btnAnimationGallery", "Animation Styles", gal, nil)
	addGal := p.Gallery("galAddAnimation", "Add Animation", catalog.Animations(), 16, nil)
	addGal.Body.MarkLargeEnum()

	adv := an.Group("grpAdvancedAnimation", "Advanced Animation")
	adv.MenuButton("btnAddAnimation", "Add Animation", addGal, nil)
	for _, kind := range []struct {
		id, name string
		count    int
	}{
		{"dlgMoreEntrance", "More Entrance Effects", 52},
		{"dlgMoreEmphasis", "More Emphasis Effects", 40},
		{"dlgMoreExit", "More Exit Effects", 52},
	} {
		dlg := p.NewDialog(kind.id, kind.name)
		dp := dlg.Panel()
		lst := dp.List(kind.id+"List", "Effects")
		lst.El.MarkLargeEnum()
		for i := 1; i <= kind.count; i++ {
			lst.ListItem("", fmt.Sprintf("%s %d", strings.TrimPrefix(kind.name, "More "), i), nil)
		}
		dlg.AddOKCancel(nil)
		addGal.Panel().DialogButton("btn"+kind.id, kind.name, dlg, nil)
	}
	adv.Button("btnAnimationPane", "Animation Pane", nil)
	trig := p.NewMenu("mnuTrigger", "Trigger")
	for _, m := range []string{"On Click of", "On Bookmark"} {
		trig.Panel().MenuItem("", m, nil)
	}
	adv.MenuButton("btnTrigger", "Trigger", trig, nil)
	adv.Button("btnAnimationPainter", "Animation Painter", nil)

	timing := an.Group("grpAnimTiming", "Timing")
	timing.ComboBox("cbAnimStart", "Start",
		[]string{"On Click", "With Previous", "After Previous"}, nil)
	timing.Spinner("spnAnimDuration", "Duration", 0.01, 59, 0.5, nil)
	timing.Spinner("spnAnimDelay", "Delay", 0, 59, 0, nil)
	timing.Button("btnMoveEarlier", "Move Earlier", nil)
	timing.Button("btnMoveLater", "Move Later", nil)
}

func (p *App) buildSlideShow() {
	ss := p.Tab("tabSlideShow", "Slide Show")
	start := ss.Group("grpStartSlideShow", "Start Slide Show")
	fromBeginning := start.Button("btnFromBeginning", "From Beginning", nil)
	fromBeginning.SetDescription("Start the slide show from the first slide (full screen)")
	fromCurrent := start.Button("btnFromCurrent", "From Current Slide", nil)
	// Full-screen slide show cannot be exited with Esc in the modeled app:
	// the ripper must blocklist these controls (paper §4.1).
	p.Block(fromBeginning.ControlID(), fromCurrent.ControlID())
	start.Button("btnPresentOnline", "Present Online", nil)
	customShow := p.NewDialog("dlgCustomShow", "Define Custom Show")
	cp := customShow.Panel()
	showList := cp.List("lstShowSlides", "Slides in presentation")
	for i := range p.Deck.Slides {
		showList.ListItem("", fmt.Sprintf("Slide %d", i+1), nil)
	}
	cp.Edit("edShowName", "Slide show name", "Custom Show 1", nil)
	customShow.AddOKCancel(nil)
	start.DialogButton("btnCustomSlideShow", "Custom Slide Show", customShow, nil)

	monitors := ss.Group("grpMonitors", "Monitors")
	monitors.ComboBox("cbMonitor", "Monitor", []string{"Automatic", "Primary Monitor"}, nil)
	monitors.CheckBox("chkPresenterView", "Use Presenter View",
		func(*appkit.App) bool { return true }, func(*appkit.App, bool) {})

	setup := ss.Group("grpSetUp", "Set Up")
	setupDlg := p.NewDialog("dlgSetUpShow", "Set Up Show")
	sp := setupDlg.Panel()
	sp.RadioGroup("rbShowType", []string{"Presented by a speaker (full screen)",
		"Browsed by an individual (window)", "Browsed at a kiosk (full screen)"}, nil)
	sp.CheckBox("chkLoopContinuously", "Loop continuously until 'Esc'",
		func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	sp.CheckBox("chkWithoutNarration", "Show without narration",
		func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	showDetails := sp.Pane("pnlShowDetails", "Advanced Show Settings")
	showDetails.ComboBox("cbPenColor", "Pen color", []string{"Red", "Blue", "Black"}, nil)
	showDetails.CheckBox("chkDisableHardware", "Disable hardware graphics acceleration",
		func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	appkit.AddDetailToggle(sp, "btnShow", "Show Details", "Hide Details", showDetails.El)
	setupDlg.AddOKCancel(nil)
	setup.DialogButton("btnSetUpSlideShow", "Set Up Slide Show", setupDlg, nil)
	setup.Button("btnHideSlide", "Hide Slide", func(*appkit.App) {
		if s := p.Deck.CurrentSlide(); s != nil {
			s.Hidden = true
		}
	})
	setup.Button("btnRehearseTimings", "Rehearse Timings", nil)
}

func (p *App) buildReviewView() {
	rev := p.Tab("tabReview", "Review")
	rev.Group("grpProofingP", "Proofing").Button("btnSpellingP", "Spelling", nil)
	rev.Group("grpCommentsP", "Comments").Button("btnNewCommentP", "New Comment", nil)

	view := p.Tab("tabView", "View")
	pv := view.Group("grpPresentationViews", "Presentation Views")
	for _, v := range []string{"Normal", "Outline View", "Slide Sorter",
		"Notes Page", "Reading View"} {
		pv.Button("btnView"+strings.ReplaceAll(v, " ", ""), v, nil)
	}
	master := view.Group("grpMasterViews", "Master Views")
	master.Button("btnSlideMaster", "Slide Master", nil)
	master.Button("btnHandoutMaster", "Handout Master", nil)
	master.Button("btnNotesMaster", "Notes Master", nil)
	zoom := view.Group("grpZoomP", "Zoom")
	zoom.Button("btnZoomP", "Zoom", nil)
	zoom.Button("btnFitToWindow", "Fit to Window", nil)
	color := view.Group("grpColorGray", "Color/Grayscale")
	color.Button("btnColorView", "Color", nil)
	color.Button("btnGrayscale", "Grayscale", nil)
	color.Button("btnBlackWhite", "Black and White", nil)
}

func (p *App) buildPictureFormat(picker *appkit.Popup) {
	pf := p.ContextTab("tabPictureFormatP", "Picture Format", ContextImageSelected)
	styles := pf.Group("grpPicStylesP", "Picture Styles")
	pb := styles.MenuButton("btnPictureBorderP", "Picture Border", picker,
		func(*appkit.App) any { return BindPictureBorder })
	pb.SetDescription("Outline color for the selected picture")
	fx := p.NewMenu("mnuPicEffectsP", "Picture Effects")
	for _, e := range []string{"Shadow", "Reflection", "Glow", "Soft Edges",
		"Bevel", "3-D Rotation"} {
		fx.Panel().MenuItem("", e, nil)
	}
	styles.MenuButton("btnPictureEffectsP", "Picture Effects", fx, nil)
	size := pf.Group("grpPicSizeP", "Size")
	size.Button("btnCropP", "Crop", nil)
	size.Spinner("spnPicHeightP", "Height", 0.1, 30, 3, nil)
	size.Spinner("spnPicWidthP", "Width", 0.1, 30, 4, nil)
}

// buildBody attaches the slide thumbnail panel (with its scrollbar) and the
// editing pane.
func (p *App) buildBody() {
	panel := p.Window().Pane("pnlSlidePanel", "Slide Thumbnail Panel")
	lst := uia.NewElement("lstSlides", "Slides", uia.ListControl)
	lst.SetDescription("Slide thumbnails; the scrollbar pans through the deck")
	panel.Custom(lst)
	p.thumbList = lst
	sel := uia.NewSelectionList(true, func(items []*uia.Element) {
		p.Deck.Selected = map[int]bool{}
		for _, it := range items {
			for i, th := range p.thumbs {
				if th == it {
					p.Deck.Selected[i] = true
					p.Deck.Current = i
				}
			}
		}
	})
	lst.SetPattern(uia.SelectionPattern, sel)
	for i := range p.Deck.Slides {
		th := uia.NewElement(fmt.Sprintf("thumbSlide%d", i+1),
			fmt.Sprintf("Slide %d", i+1), uia.ListItemControl)
		th.SetPattern(uia.SelectionItemPattern, sel.Item())
		lst.AddChild(th)
		p.thumbs = append(p.thumbs, th)
	}
	p.applyThumbViewport()
	panel.VScrollBar("sbSlides", "Slides Vertical Scroll Bar", func(_ *appkit.App, v float64) {
		p.ScrollThumbsTo(v)
	})

	edit := p.Window().Pane("pnlSlideEdit", "Slide Editing Pane")
	title := uia.NewElement("shpTitle", "Title Placeholder", uia.EditControl)
	title.SetPattern(uia.ValuePattern, &titleValue{p: p})
	edit.Custom(title)
	p.titleEl = title
	body := uia.NewElement("shpBody", "Content Placeholder", uia.EditControl)
	body.SetPattern(uia.ValuePattern, &bodyValue{p: p})
	edit.Custom(body)
	p.bodyEl = body

	status := p.Window().Pane("pnlStatusBarP", "Status Bar")
	status.Label("Slide 1 of 12")
}

// titleValue/bodyValue adapt the current slide's shapes to Value patterns.
type titleValue struct{ p *App }

func (tv *titleValue) Value(*uia.Element) string {
	if t := tv.p.Deck.CurrentSlide().Title(); t != nil {
		return t.Text
	}
	return ""
}
func (tv *titleValue) SetValue(_ *uia.Element, v string) error {
	if t := tv.p.Deck.CurrentSlide().Title(); t != nil {
		t.Text = v
	}
	return nil
}
func (tv *titleValue) IsReadOnly(*uia.Element) bool { return false }

type bodyValue struct{ p *App }

func (bv *bodyValue) Value(*uia.Element) string {
	for _, sh := range bv.p.Deck.CurrentSlide().Shapes {
		if sh.Kind == "body" {
			return sh.Text
		}
	}
	return ""
}
func (bv *bodyValue) SetValue(_ *uia.Element, v string) error {
	for _, sh := range bv.p.Deck.CurrentSlide().Shapes {
		if sh.Kind == "body" {
			sh.Text = v
			return nil
		}
	}
	return nil
}
func (bv *bodyValue) IsReadOnly(*uia.Element) bool { return false }

// ScrollThumbsTo pans the thumbnail viewport to v% of the scroll range.
func (p *App) ScrollThumbsTo(v float64) {
	maxTop := len(p.thumbs) - VisibleThumbs
	if maxTop < 0 {
		maxTop = 0
	}
	top := int(v/100*float64(maxTop) + 0.5)
	if top < 0 {
		top = 0
	}
	if top > maxTop {
		top = maxTop
	}
	p.thumbTop = top
	p.applyThumbViewport()
}

// ThumbTop returns the index of the first visible thumbnail.
func (p *App) ThumbTop() int { return p.thumbTop }

func (p *App) applyThumbViewport() {
	for i, th := range p.thumbs {
		th.SetVisible(i >= p.thumbTop && i < p.thumbTop+VisibleThumbs)
	}
}

func (p *App) refreshThumbs() {
	// Recreate thumbnails to match the deck (slides may have been added).
	sel := p.thumbList.Pattern(uia.SelectionPattern)
	for _, th := range p.thumbs {
		p.thumbList.RemoveChild(th)
	}
	p.thumbs = nil
	list, _ := sel.(*uia.SimpleSelectionList)
	for i := range p.Deck.Slides {
		th := uia.NewElement(fmt.Sprintf("thumbSlide%d", i+1),
			fmt.Sprintf("Slide %d", i+1), uia.ListItemControl)
		if list != nil {
			th.SetPattern(uia.SelectionItemPattern, list.Item())
		}
		p.thumbList.AddChild(th)
		p.thumbs = append(p.thumbs, th)
	}
	p.applyThumbViewport()
}

// Thumb returns the thumbnail element for a 0-based slide index.
func (p *App) Thumb(i int) *uia.Element {
	if i < 0 || i >= len(p.thumbs) {
		return nil
	}
	return p.thumbs[i]
}

// ThumbList returns the thumbnail list element.
func (p *App) ThumbList() *uia.Element { return p.thumbList }

// TitleElement returns the title placeholder of the editing pane.
func (p *App) TitleElement() *uia.Element { return p.titleEl }

func (p *App) selectedTitle() *Shape {
	if s := p.Deck.CurrentSlide(); s != nil {
		return s.Title()
	}
	return nil
}

func quickStyleNames() []string {
	var out []string
	for _, kind := range []string{"Colored Fill", "Colored Outline",
		"Subtle Effect", "Moderate Effect", "Intense Effect"} {
		for _, c := range []string{"Blue", "Orange", "Gray", "Gold", "Green",
			"Purple", "Dark Red"} {
			out = append(out, kind+" - "+c)
		}
	}
	return out
}

func smartArtNames() []string {
	kinds := map[string][]string{
		"List": {"Basic Block List", "Alternating Hexagons", "Picture Caption",
			"Lined List", "Vertical Bullet List", "Vertical Box List",
			"Horizontal Bullet List", "Square Accent List", "Picture Accent List",
			"Bending Picture Accent List", "Stacked List", "Increasing Circle Process",
			"Pie Process", "Detailed Process", "Grouped List", "Horizontal Picture List",
			"Continuous Picture List", "Picture Strips", "Vertical Picture List",
			"Trapezoid List", "Table List", "Segmented Process", "Vertical Curved List"},
		"Process": {"Basic Process", "Step Up Process", "Step Down Process",
			"Accent Process", "Alternating Flow", "Continuous Block Process",
			"Increasing Arrows Process", "Continuous Arrow Process",
			"Process Arrows", "Circle Accent Timeline", "Basic Timeline",
			"Basic Chevron Process", "Closed Chevron Process", "Chevron List",
			"Sub-Step Process", "Phased Process", "Random to Result Process",
			"Staggered Process", "Process List", "Circle Arrow Process",
			"Basic Bending Process", "Vertical Bending Process",
			"Ascending Picture Accent Process", "Upward Arrow",
			"Descending Process", "Circular Bending Process", "Equation",
			"Vertical Equation", "Funnel", "Gear"},
		"Cycle": {"Basic Cycle", "Text Cycle", "Block Cycle", "Nondirectional Cycle",
			"Continuous Cycle", "Multidirectional Cycle", "Segmented Cycle",
			"Basic Pie", "Radial Cycle", "Basic Radial", "Diverging Radial",
			"Radial Venn", "Radial Cluster"},
		"Hierarchy": {"Organization Chart", "Name and Title Organization Chart",
			"Half Circle Organization Chart", "Circle Picture Hierarchy",
			"Hierarchy", "Labeled Hierarchy", "Table Hierarchy",
			"Horizontal Organization Chart", "Horizontal Multi-Level Hierarchy",
			"Horizontal Hierarchy", "Horizontal Labeled Hierarchy"},
		"Relationship": {"Balance", "Funnel Relationship", "Gear Relationship",
			"Arrow Ribbon", "Opposing Arrows", "Converging Arrows",
			"Diverging Arrows", "Plus and Minus", "Counterbalance Arrows",
			"Segmented Pyramid", "Nested Target", "Converging Radial",
			"Basic Target", "Basic Venn", "Linear Venn", "Stacked Venn"},
		"Matrix":  {"Basic Matrix", "Titled Matrix", "Grid Matrix", "Cycle Matrix"},
		"Pyramid": {"Basic Pyramid", "Inverted Pyramid", "Pyramid List", "Segmented Pyramid Pic"},
	}
	order := []string{"List", "Process", "Cycle", "Hierarchy", "Relationship", "Matrix", "Pyramid"}
	var out []string
	for _, k := range order {
		for _, n := range kinds[k] {
			out = append(out, n+" ("+k+")")
		}
	}
	return out
}

func designIdeaNames() []string {
	out := make([]string, 72)
	for i := range out {
		out[i] = fmt.Sprintf("Design Idea %d", i+1)
	}
	return out
}
