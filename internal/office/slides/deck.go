// Package slides implements the simulated presentation editor: a slide-deck
// model beneath a full ribbon UI built with appkit, including the Format
// Background pane used by the paper's running example (Table 1, Task 1) and
// the slide-thumbnail scrollbar of Task 2.
package slides

import "fmt"

// Shape is an object on a slide.
type Shape struct {
	Kind     string // "title", "body", "textbox", "picture", "shape:NAME", ...
	Text     string
	Border   string
	FontSize float64
	Fill     string
}

// Slide is one slide of the deck.
type Slide struct {
	Layout     string
	Background string
	Transition string
	Hidden     bool
	Shapes     []*Shape
}

// Title returns the slide's title shape, or nil.
func (s *Slide) Title() *Shape {
	for _, sh := range s.Shapes {
		if sh.Kind == "title" {
			return sh
		}
	}
	return nil
}

// Deck is the presentation model.
type Deck struct {
	Slides  []*Slide
	Current int // 0-based index of the slide open in the editing pane

	// Selected marks the thumbnails selected in the slide panel.
	Selected map[int]bool

	Theme     string
	SlideSize string // "Widescreen (16:9)" or "Standard (4:3)"
	Saved     string

	// PendingBackground is the color chosen in the Format Background pane
	// before it is applied (to the current slide immediately, to every
	// slide via Apply to All).
	PendingBackground string
}

// NewDeck creates a deck with n content slides.
func NewDeck(n int) *Deck {
	d := &Deck{
		Theme:     "Office",
		SlideSize: "Widescreen (16:9)",
		Selected:  map[int]bool{0: true},
	}
	for i := 0; i < n; i++ {
		layout := "Title and Content"
		if i == 0 {
			layout = "Title Slide"
		}
		d.Slides = append(d.Slides, &Slide{
			Layout:     layout,
			Background: "White",
			Transition: "None",
			Shapes: []*Shape{
				{Kind: "title", Text: fmt.Sprintf("Slide %d Title", i+1), FontSize: 28},
				{Kind: "body", Text: fmt.Sprintf("Content for slide %d.", i+1), FontSize: 18},
			},
		})
	}
	return d
}

// CurrentSlide returns the slide open in the editing pane.
func (d *Deck) CurrentSlide() *Slide {
	if d.Current < 0 || d.Current >= len(d.Slides) {
		return nil
	}
	return d.Slides[d.Current]
}

// InsertSlide appends a new slide with the given layout after the current
// one and makes it current.
func (d *Deck) InsertSlide(layout string) *Slide {
	s := &Slide{
		Layout:     layout,
		Background: "White",
		Transition: "None",
		Shapes:     []*Shape{{Kind: "title", Text: "", FontSize: 28}},
	}
	at := d.Current + 1
	d.Slides = append(d.Slides[:at], append([]*Slide{s}, d.Slides[at:]...)...)
	d.Current = at
	return s
}

// SetBackgroundAll applies color to every slide's background.
func (d *Deck) SetBackgroundAll(color string) {
	for _, s := range d.Slides {
		s.Background = color
	}
}

// SetTransitionAll applies the transition to every slide.
func (d *Deck) SetTransitionAll(tr string) {
	for _, s := range d.Slides {
		s.Transition = tr
	}
}

// AllBackgrounds reports whether every slide's background equals color.
func (d *Deck) AllBackgrounds(color string) bool {
	for _, s := range d.Slides {
		if s.Background != color {
			return false
		}
	}
	return len(d.Slides) > 0
}

// AllTransitions reports whether every slide's transition equals tr.
func (d *Deck) AllTransitions(tr string) bool {
	for _, s := range d.Slides {
		if s.Transition != tr {
			return false
		}
	}
	return len(d.Slides) > 0
}

// SelectOnly selects exactly the given 0-based slide index and makes it
// current.
func (d *Deck) SelectOnly(i int) {
	if i < 0 || i >= len(d.Slides) {
		return
	}
	d.Selected = map[int]bool{i: true}
	d.Current = i
}
