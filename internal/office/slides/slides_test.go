package slides

import (
	"testing"

	"repro/internal/uia"
)

func click(t *testing.T, p *App, el *uia.Element) {
	t.Helper()
	if el == nil {
		t.Fatal("click target is nil")
	}
	if err := p.Desk.Click(el); err != nil {
		t.Fatalf("click %v: %v", el, err)
	}
}

func findIn(t *testing.T, root *uia.Element, autoID string) *uia.Element {
	t.Helper()
	e := root.FindByAutomationID(autoID)
	if e == nil {
		t.Fatalf("control %q not found", autoID)
	}
	return e
}

func TestScale(t *testing.T) {
	p := New(12)
	n := p.Win.Count()
	for _, w := range p.AllPopupWindows() {
		n += w.Count()
	}
	if n < 3500 {
		t.Errorf("powerpoint exposes %d controls, want > 3500", n)
	}
	t.Logf("powerpoint controls: %d", n)
}

// TestBackgroundApplyToAll walks the paper's Table 1 Task 1 path:
// Design → Format Background → Solid fill → Fill Color → Blue → Apply to All.
func TestBackgroundApplyToAll(t *testing.T) {
	p := New(12)
	p.ActivateTabByName("Design")
	click(t, p, findIn(t, p.Win, "btnFormatBackground"))
	pane := p.Desk.TopWindow()
	click(t, p, pane.FindByName("Solid fill"))
	click(t, p, findIn(t, pane, "btnFillColor"))
	picker := p.Desk.TopWindow()
	click(t, p, picker.FindByName("Blue"))

	if p.Deck.Slides[0].Background != "Blue" {
		t.Fatalf("current slide background = %q", p.Deck.Slides[0].Background)
	}
	if p.Deck.Slides[5].Background == "Blue" {
		t.Fatal("Apply to All not yet clicked, but other slides changed")
	}
	// The picker (menu popup) closed itself; the Format Background pane
	// must still be open for Apply to All.
	if !p.Desk.IsOpen(pane) {
		t.Fatal("Format Background pane closed prematurely")
	}
	click(t, p, findIn(t, pane, "btnApplyToAll"))
	if !p.Deck.AllBackgrounds("Blue") {
		t.Fatal("Apply to All did not color every slide")
	}
}

func TestThumbnailScrolling(t *testing.T) {
	p := New(12)
	if !p.Thumb(0).OnScreen() || p.Thumb(11).OnScreen() {
		t.Fatal("initial thumbnail viewport wrong")
	}
	p.ScrollThumbsTo(80)
	if p.Thumb(0).OnScreen() {
		t.Fatal("slide 1 visible after scrolling to 80%")
	}
	if !p.Thumb(10).OnScreen() {
		t.Fatal("slide 11 not visible after scrolling to 80%")
	}
	// Scrollbar pattern drives the same path.
	sb := findIn(t, p.Win, "sbSlides")
	sc := sb.Pattern(uia.ScrollPattern).(uia.Scroller)
	if err := sc.SetScrollPercent(sb, uia.NoScroll, 0); err != nil {
		t.Fatal(err)
	}
	if !p.Thumb(0).OnScreen() {
		t.Fatal("scrollbar did not pan back to top")
	}
}

func TestNewSlideWithLayout(t *testing.T) {
	p := New(5)
	click(t, p, findIn(t, p.Win, "btnNewSlide"))
	gal := p.Desk.TopWindow()
	click(t, p, gal.FindByName("Title Only"))
	if len(p.Deck.Slides) != 6 {
		t.Fatalf("slides = %d, want 6", len(p.Deck.Slides))
	}
	if p.Deck.CurrentSlide().Layout != "Title Only" {
		t.Errorf("layout = %q", p.Deck.CurrentSlide().Layout)
	}
	// Thumbnails refreshed.
	if p.Thumb(5) == nil {
		t.Fatal("thumbnail for new slide missing")
	}
}

func TestLayoutButtonSharesGallery(t *testing.T) {
	p := New(3)
	ns := findIn(t, p.Win, "btnNewSlide")
	lay := findIn(t, p.Win, "btnLayout")
	click(t, p, ns)
	first := p.Desk.TopWindow()
	p.CloseAllPopups()
	click(t, p, lay)
	second := p.Desk.TopWindow()
	if first != second {
		t.Fatal("New Slide and Layout must open the same gallery popup (merge node)")
	}
}

func TestTransitionApplyToAll(t *testing.T) {
	p := New(8)
	p.Deck.SelectOnly(2)
	p.ActivateTabByName("Transitions")
	click(t, p, findIn(t, p.Win, "btnTransitionGallery"))
	gal := p.Desk.TopWindow()
	click(t, p, gal.FindByName("Fade"))
	if p.Deck.Slides[2].Transition != "Fade" {
		t.Fatalf("current transition = %q", p.Deck.Slides[2].Transition)
	}
	if p.Deck.Slides[0].Transition == "Fade" {
		t.Fatal("transition leaked before Apply To All")
	}
	click(t, p, findIn(t, p.Win, "btnApplyToAllTransitions"))
	if !p.Deck.AllTransitions("Fade") {
		t.Fatal("Apply To All did not set every slide")
	}
}

func TestSlideSizeMenu(t *testing.T) {
	p := New(3)
	p.ActivateTabByName("Design")
	click(t, p, findIn(t, p.Win, "btnSlideSize"))
	menu := p.Desk.TopWindow()
	click(t, p, menu.FindByName("Standard (4:3)"))
	if p.Deck.SlideSize != "Standard (4:3)" {
		t.Errorf("slide size = %q", p.Deck.SlideSize)
	}
}

func TestThumbnailSelectionSyncs(t *testing.T) {
	p := New(6)
	click(t, p, p.Thumb(3))
	if p.Deck.Current != 3 || !p.Deck.Selected[3] {
		t.Fatalf("current=%d selected=%v", p.Deck.Current, p.Deck.Selected)
	}
}

func TestTitleEditThroughValuePattern(t *testing.T) {
	p := New(4)
	p.Deck.SelectOnly(1)
	title := p.TitleElement()
	v := title.Pattern(uia.ValuePattern).(uia.Valuer)
	if err := v.SetValue(title, "Quarterly Review"); err != nil {
		t.Fatal(err)
	}
	if p.Deck.Slides[1].Title().Text != "Quarterly Review" {
		t.Error("title edit did not reach the model")
	}
	if p.Deck.Slides[0].Title().Text == "Quarterly Review" {
		t.Error("title edit leaked to another slide")
	}
}

func TestFontSizeAppliesToCurrentTitle(t *testing.T) {
	p := New(4)
	p.Deck.SelectOnly(1)
	cb := findIn(t, p.Win, "pFontSize")
	click(t, p, cb)
	click(t, p, cb.FindByName("48"))
	if got := p.Deck.Slides[1].Title().FontSize; got != 48 {
		t.Errorf("font size = %v", got)
	}
}

func TestSlideShowBlocklisted(t *testing.T) {
	p := New(3)
	fb := findIn(t, p.Win, "btnFromBeginning")
	if !p.Blocked(fb) {
		t.Fatal("From Beginning must be blocklisted for the ripper")
	}
}

func TestPictureContextTab(t *testing.T) {
	p := New(3)
	tab := findIn(t, p.Win, "tabPictureFormatP")
	if tab.OnScreen() {
		t.Fatal("Picture Format visible without picture")
	}
	p.ActivateTabByName("Insert")
	click(t, p, findIn(t, p.Win, "pPictures"))
	if !tab.OnScreen() {
		t.Fatal("Picture Format not revealed after insert")
	}
	click(t, p, tab)
	click(t, p, findIn(t, p.Win, "btnPictureBorderP"))
	picker := p.Desk.TopWindow()
	click(t, p, picker.FindByName("Green"))
	if p.PictureBorder != "Green" {
		t.Errorf("picture border = %q", p.PictureBorder)
	}
}

func TestHideSlide(t *testing.T) {
	p := New(4)
	p.Deck.SelectOnly(2)
	p.ActivateTabByName("Slide Show")
	click(t, p, findIn(t, p.Win, "btnHideSlide"))
	if !p.Deck.Slides[2].Hidden {
		t.Error("hide slide failed")
	}
}
