// Package llm models the LLM side of the evaluation: model profiles with
// per-channel error rates, a latency/token cost model, and deterministic
// seeded randomness.
//
// The paper evaluates real GPT-5 variants; this reproduction has no model
// access, so the planner is simulated as a stochastic process whose error
// channels mirror the paper's failure taxonomy (§5.6): semantic
// misunderstanding, control-semantics confusion, visual grounding error,
// composite-interaction error, navigation-planning error, and imperfect
// instruction-following. The interface under test (GUI-only, GUI+forest,
// GUI+DMI) determines which channels a task exercises — the same
// manipulation the paper performs — while task success is still verified
// against real application state.
package llm

import (
	"hash/fnv"
	"math/rand"
	"time"
)

// Profile characterizes one model configuration.
type Profile struct {
	Name      string
	Reasoning string // "medium" or "minimal"

	// Error channels (probabilities per decision/action).
	Semantic    float64 // semantic misreading per semantic decision
	ControlSem  float64 // misinterpreting a control's function (given a trap)
	Grounding   float64 // visual grounding error per imperative UI action
	Composite   float64 // error per composite-interaction round (drag, select)
	NavPlanning float64 // planning a wrong navigation step without app knowledge
	InstrNoise  float64 // emitting navigation nodes in declarative output

	// Detection and recovery.
	Detect  float64 // probability an executed mistake is noticed on observation
	Recover float64 // probability a noticed mistake is fixed on replan

	// KnowsApps is the prior application knowledge in [0,1]; it discounts
	// NavPlanning (strong models already know Office menus — the ablation
	// insight of §5.5).
	KnowsApps float64

	// Latency model: call latency = Base + PerKTok × (prompt tokens/1000),
	// all simulated time.
	LatencyBase    time.Duration
	LatencyPerKTok time.Duration

	// CompletionTokens is the typical completion size per call.
	CompletionTokens int
}

// The three evaluated configurations (paper §5.1: GPT-5 medium, GPT-5
// minimal reasoning, GPT-5-mini medium).
var (
	GPT5Medium = Profile{
		Name: "GPT-5", Reasoning: "Medium",
		Semantic: 0.085, ControlSem: 0.50, Grounding: 0.22, Composite: 0.45,
		NavPlanning: 0.28, InstrNoise: 0.12,
		Detect: 0.60, Recover: 0.75, KnowsApps: 0.93,
		LatencyBase: 45 * time.Second, LatencyPerKTok: 500 * time.Millisecond,
		CompletionTokens: 350,
	}
	GPT5Minimal = Profile{
		Name: "GPT-5", Reasoning: "Minimal",
		Semantic: 0.40, ControlSem: 0.62, Grounding: 0.20, Composite: 0.40,
		NavPlanning: 0.45, InstrNoise: 0.22,
		Detect: 0.45, Recover: 0.50, KnowsApps: 0.88,
		LatencyBase: 26 * time.Second, LatencyPerKTok: 400 * time.Millisecond,
		CompletionTokens: 120,
	}
	GPT5Mini = Profile{
		Name: "GPT-5-mini", Reasoning: "Medium",
		Semantic: 0.34, ControlSem: 0.62, Grounding: 0.24, Composite: 0.42,
		NavPlanning: 0.60, InstrNoise: 0.25,
		Detect: 0.50, Recover: 0.45, KnowsApps: 0.55,
		LatencyBase: 16 * time.Second, LatencyPerKTok: 1600 * time.Millisecond,
		CompletionTokens: 160,
	}
)

// CallLatency returns the simulated latency of one LLM call with the given
// prompt size.
func (p Profile) CallLatency(promptTokens int) time.Duration {
	return p.LatencyBase + time.Duration(promptTokens)*p.LatencyPerKTok/1000
}

// EffectiveNavError returns the navigation-planning error probability given
// optional external topology knowledge (the navigation forest in the
// prompt). Knowledge partially substitutes for memorized app layouts:
// strong models gain little, weak models gain noticeably (§5.5) — but a
// static map in the prompt is no replacement for executing navigation, so
// substitution is partial.
func (p Profile) EffectiveNavError(hasForestKnowledge bool) float64 {
	know := p.KnowsApps
	if hasForestKnowledge {
		know += (1 - know) * 0.55
	}
	return p.NavPlanning * (1 - know)
}

// Rand builds a deterministic RNG for one (experiment, task, run) cell.
func Rand(experiment, task string, run int) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(experiment))
	h.Write([]byte{0})
	h.Write([]byte(task))
	h.Write([]byte{byte(run), byte(run >> 8)})
	return rand.New(rand.NewSource(int64(h.Sum64())))
}
