package llm

import (
	"testing"
	"testing/quick"
	"time"
)

func TestProfilesWellFormed(t *testing.T) {
	for _, p := range []Profile{GPT5Medium, GPT5Minimal, GPT5Mini} {
		probs := []float64{p.Semantic, p.ControlSem, p.Grounding, p.Composite,
			p.NavPlanning, p.InstrNoise, p.Detect, p.Recover, p.KnowsApps}
		for i, v := range probs {
			if v < 0 || v > 1 {
				t.Errorf("%s channel %d = %v out of [0,1]", p.Name, i, v)
			}
		}
		if p.LatencyBase <= 0 || p.LatencyPerKTok <= 0 || p.CompletionTokens <= 0 {
			t.Errorf("%s latency/token model incomplete", p.Name)
		}
	}
}

func TestProfileOrdering(t *testing.T) {
	// Reasoning effort: medium must be more reliable than minimal on the
	// semantic channel and detection.
	if GPT5Medium.Semantic >= GPT5Minimal.Semantic {
		t.Error("medium reasoning should have lower semantic error than minimal")
	}
	if GPT5Medium.Detect <= GPT5Minimal.Detect {
		t.Error("medium reasoning should detect mistakes more reliably")
	}
	// Model strength: the small model knows apps less and grounds worse.
	if GPT5Mini.KnowsApps >= GPT5Medium.KnowsApps {
		t.Error("mini should have less app knowledge")
	}
	if GPT5Mini.Grounding <= GPT5Medium.Grounding {
		t.Error("mini should ground worse")
	}
}

func TestCallLatencyModel(t *testing.T) {
	p := GPT5Medium
	small := p.CallLatency(1000)
	large := p.CallLatency(31000)
	if small <= p.LatencyBase {
		t.Error("latency must include per-token cost")
	}
	if large-small != 30*p.LatencyPerKTok {
		t.Errorf("per-token scaling wrong: %v vs %v", large-small, 30*p.LatencyPerKTok)
	}
	if p.CallLatency(0) != p.LatencyBase {
		t.Error("zero-token call should cost the base latency")
	}
}

func TestEffectiveNavError(t *testing.T) {
	for _, p := range []Profile{GPT5Medium, GPT5Minimal, GPT5Mini} {
		without := p.EffectiveNavError(false)
		with := p.EffectiveNavError(true)
		if with > without {
			t.Errorf("%s: forest knowledge must not raise nav error", p.Name)
		}
		if without < 0 || without > 1 {
			t.Errorf("%s: nav error %v out of range", p.Name, without)
		}
	}
	// The weak model gains much more, in absolute terms, than the strong
	// one — the §5.5 insight.
	gainStrong := GPT5Medium.EffectiveNavError(false) - GPT5Medium.EffectiveNavError(true)
	gainWeak := GPT5Mini.EffectiveNavError(false) - GPT5Mini.EffectiveNavError(true)
	if gainWeak <= gainStrong {
		t.Errorf("forest gain: weak %v should exceed strong %v", gainWeak, gainStrong)
	}
}

func TestRandDeterministicAndDistinct(t *testing.T) {
	a := Rand("exp", "task", 1)
	b := Rand("exp", "task", 1)
	for i := 0; i < 16; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same cell must give the same stream")
		}
	}
	c := Rand("exp", "task", 2)
	d := Rand("exp", "other", 1)
	e := Rand("exp2", "task", 1)
	base := Rand("exp", "task", 1)
	same := 0
	for i := 0; i < 16; i++ {
		v := base.Float64()
		if c.Float64() == v {
			same++
		}
		_ = d.Float64()
		_ = e.Float64()
	}
	if same == 16 {
		t.Error("different runs produced identical streams")
	}
}

func TestLatencyMonotoneProperty(t *testing.T) {
	f := func(a, b uint16) bool {
		lo, hi := int(a), int(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return GPT5Mini.CallLatency(lo) <= GPT5Mini.CallLatency(hi)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPerCallLatencyRegime(t *testing.T) {
	// Paper §2.1: LLM round trips take 10–120+ seconds. Every profile's
	// realistic call (≈6K-token prompt) must land in that band.
	for _, p := range []Profile{GPT5Medium, GPT5Minimal, GPT5Mini} {
		l := p.CallLatency(6000)
		if l < 10*time.Second || l > 120*time.Second {
			t.Errorf("%s/%s call latency %v outside the paper's 10–120s regime",
				p.Name, p.Reasoning, l)
		}
	}
}
