// Package agent implements the evaluated computer-use agents: a UFO-2-like
// GUI-only baseline (multi-agent HostAgent/AppAgent workflow with action
// sequences over visible controls), its ablation with the navigation forest
// as prompt knowledge, and the DMI-integrated agent that plans globally
// over the declarative interface (paper §5.1).
//
// The LLM is simulated (see internal/llm): the ground-truth plan is
// stochastically corrupted through the profile's error channels, and all
// resulting actions are executed for real against the simulated
// application; success is verified from application state.
package agent

import (
	"fmt"
	"math/rand"
	"runtime"
	"time"

	"repro/internal/appkit"
	"repro/internal/core"
	"repro/internal/describe"
	"repro/internal/llm"
	"repro/internal/modelstore"
	"repro/internal/osworld"
	"repro/internal/strutil"

	"repro/internal/apps/filemgr"
	"repro/internal/apps/settings"
	"repro/internal/office/excel"
	"repro/internal/office/slides"
	"repro/internal/office/word"
)

// Interface selects the evaluated configuration.
type Interface int

// Evaluated interfaces (Table 3 rows).
const (
	GUIOnly   Interface = iota // UFO2-as baseline
	GUIForest                  // ablation: baseline + navigation forest as knowledge
	GUIDMI                     // baseline + DMI declarative interface
)

// String names the configuration as in Table 3.
func (i Interface) String() string {
	switch i {
	case GUIOnly:
		return "GUI-only"
	case GUIForest:
		return "GUI-only+Nav.forest"
	default:
		return "GUI+DMI"
	}
}

// Config is one evaluated agent configuration.
type Config struct {
	Interface Interface
	Profile   llm.Profile
	// StepCap bounds LLM calls per task (paper: 30).
	StepCap int
	// CoreOpt configures the DMI executor (robustness ablations).
	CoreOpt core.Options
	// TopologyMissRate injects offline-model staleness (paper §6,
	// (In)accurate navigation topology). Default 0.02.
	TopologyMissRate float64
}

func (c *Config) fill() {
	if c.StepCap == 0 {
		c.StepCap = 30
	}
	if c.TopologyMissRate == 0 {
		c.TopologyMissRate = 0.06
	}
}

// Outcome is the result of one task run.
type Outcome struct {
	Task    string
	Success bool
	// Steps counts LLM calls including the fixed 3-call framework
	// overhead; CoreSteps excludes it (Figure 5b).
	Steps     int
	CoreSteps int
	OneShot   bool // task intent completed in a single core call
	Time      time.Duration
	Prompt    int    // prompt tokens, summed over calls
	Completed int    // completion tokens
	Failure   string // failure channel tag ("" on success)
}

// Models carries the offline artifacts shared by every run: one modeled
// forest per application (built from throwaway instances, as the paper's
// offline phase) plus their serialized token costs.
//
// Models is read-only after BuildModels returns. This is the contract the
// concurrent online-serving layer (bench.RunParallel) relies on: any number
// of sessions may plan over the same warm describe.Model simultaneously, so
// neither the maps nor the models they hold may be mutated. describe.Model
// exposes no mutating methods after construction, and the bench equivalence
// test exercises concurrent runs under the race detector.
type Models struct {
	ByApp      map[string]*describe.Model
	CoreTokens map[string]int
	FullTokens map[string]int
}

// sharedStore caches the offline builds process-wide: repeated BuildModels
// calls (every benchmark, every matrix cell) reuse one build per app.
var sharedStore = modelstore.New()

// Factories returns the throwaway-instance builders for the evaluated
// application catalog: the paper's three Office case studies plus the
// Settings and Files applications of the extended catalog. Adding an app
// here is all the online stack needs — the store, the benchmark grid, and
// the CLIs enumerate this map.
func Factories() map[string]func() *appkit.App {
	return map[string]func() *appkit.App{
		"Word":       func() *appkit.App { return word.New().App },
		"Excel":      func() *appkit.App { return excel.New().App },
		"PowerPoint": func() *appkit.App { return slides.New(12).App },
		"Settings":   func() *appkit.App { return settings.New().App },
		"Files":      func() *appkit.App { return filemgr.New().App },
	}
}

// AppNames returns the catalog's application names in stable order. It must
// list exactly the keys of Factories (asserted by TestAppNamesMatchFactories)
// — every catalog consumer that needs deterministic ordering (CLIs, report
// tables) iterates this slice instead of the map.
func AppNames() []string {
	return []string{"Word", "Excel", "PowerPoint", "Settings", "Files"}
}

// BuildModels runs the offline phase for the application catalog through
// the shared model store, ripping each app with a worker pool.
func BuildModels() (*Models, error) {
	return BuildModelsParallel(0)
}

// BuildModelsParallel is BuildModels with an explicit rip worker-pool size
// per application (0 = min(4, GOMAXPROCS)). The parallel rip is
// byte-identical to the sequential one, so the evaluation is unaffected.
func BuildModelsParallel(workers int) (*Models, error) {
	return BuildModelsIn(sharedStore, workers)
}

// BuildModelsIn is BuildModelsParallel through an explicit store — the seam
// the warm-model serving tier uses, so a budgeted store's eviction policy
// governs which catalog models stay resident. Apps are built in AppNames
// order, which makes prewarm eviction order deterministic.
func BuildModelsIn(store *modelstore.Store, workers int) (*Models, error) {
	m := &Models{
		ByApp:      make(map[string]*describe.Model),
		CoreTokens: make(map[string]int),
		FullTokens: make(map[string]int),
	}
	for _, app := range AppNames() {
		one, err := ModelsFor(store, app, workers)
		if err != nil {
			return nil, err
		}
		m.ByApp[app] = one.ByApp[app]
		m.CoreTokens[app] = one.CoreTokens[app]
		m.FullTokens[app] = one.FullTokens[app]
	}
	return m, nil
}

// ModelsFor returns a single-application Models view fetched through store:
// the app's model plus the token accounting BuildModels would compute for
// it, so a Run over this view is byte-identical to one over the full
// catalog view. The serving daemon calls this per session, which is what
// lets the store's budget and LRU state decide whether the session start is
// a warm hit, a zero-rip snapshot reload, or a fresh build.
func ModelsFor(store *modelstore.Store, app string, workers int) (*Models, error) {
	factory, ok := Factories()[app]
	if !ok {
		return nil, fmt.Errorf("agent: unknown application %q", app)
	}
	b, err := store.Build(app, factory, modelstore.Options{Workers: normalizeWorkers(workers)})
	if err != nil {
		return nil, err
	}
	// The token accounting is cached with the store entry, so a warm
	// session start costs a map lookup — no re-serialization.
	return &Models{
		ByApp:      map[string]*describe.Model{app: b.Model},
		CoreTokens: map[string]int{app: b.CoreTokens},
		FullTokens: map[string]int{app: b.FullTokens},
	}, nil
}

// SharedStore returns the process-wide store behind BuildModels, so
// serving-shaped callers (the benchmark baseline) can route per-session
// model fetches through it and have them show up in StoreStats.
func SharedStore() *modelstore.Store { return sharedStore }

// StoreStats reports the shared process-wide store's traffic counters
// (warm-hit ratio, snapshot loads, resident bytes).
func StoreStats() modelstore.Stats { return sharedStore.Stats() }

// normalizeWorkers applies the default rip pool size: min(4, GOMAXPROCS).
func normalizeWorkers(workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > 4 {
			workers = 4
		}
	}
	return workers
}

// Run executes one task under one configuration with a deterministic RNG.
//
// Run is safe for concurrent use with distinct rng values: every call
// builds its own environment (application instance, desktop, simulated
// clock) from task.Build(), and the shared models are read-only (see
// Models). Task plans and the offline forest are only ever read; the only
// state a run mutates lives in its own env.
func Run(models *Models, task osworld.Task, cfg Config, rng *rand.Rand) Outcome {
	cfg.fill()
	env := task.Build()
	model := models.ByApp[task.App]
	d := &driver{
		cfg:    cfg,
		p:      cfg.Profile,
		rng:    rng,
		env:    env,
		task:   task,
		model:  model,
		models: models,
		sess:   core.NewSession(env.App, model, cfg.CoreOpt),
	}
	return d.run()
}

// driver executes one task run.
type driver struct {
	cfg    Config
	p      llm.Profile
	rng    *rand.Rand
	env    *osworld.Env
	task   osworld.Task
	model  *describe.Model
	models *Models
	sess   *core.Session

	steps      int
	coreSteps  int
	prompt     int
	completion int
	latency    time.Duration

	gui guiCall

	events []event
	capped bool
}

// event records an error occurrence and whether the agent recovered.
type event struct {
	channel   string
	recovered bool
}

func (d *driver) fail(channel string) { d.events = append(d.events, event{channel: channel}) }
func (d *driver) recovered(channel string) {
	d.events = append(d.events, event{channel: channel, recovered: true})
}

// call accounts one LLM round trip.
func (d *driver) call(promptTokens int, core bool) {
	d.steps++
	if core {
		d.coreSteps++
	}
	d.prompt += promptTokens
	d.completion += d.p.CompletionTokens
	d.latency += d.p.CallLatency(promptTokens)
}

func (d *driver) overCap() bool {
	if d.steps >= d.cfg.StepCap {
		d.capped = true
		return true
	}
	return false
}

// chance draws a Bernoulli with probability p (clamped).
func (d *driver) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return d.rng.Float64() < p
}

func (d *driver) run() Outcome {
	start := d.env.App.Desk.Clock().Now()

	// UFO-2 workflow overhead (§5.3): (1) HostAgent decomposes the task
	// and activates the application.
	d.call(d.framePrompt(), false)

	// (2..k) AppAgent executes the delegated subtask.
	aborted := false
	switch d.cfg.Interface {
	case GUIDMI:
		aborted = d.runDMI()
	default:
		aborted = d.runGUI()
	}

	// (k+1) AppAgent verifies and hands off; (k+2) HostAgent verifies.
	if !d.capped {
		d.call(d.framePrompt(), false)
		d.call(d.framePrompt(), false)
	}

	success := !aborted && !d.capped && d.env.Verify()
	out := Outcome{
		Task:      d.task.ID,
		Success:   success,
		Steps:     d.steps,
		CoreSteps: d.coreSteps,
		OneShot:   d.coreSteps <= 1,
		Time:      d.latency + (d.env.App.Desk.Clock().Now() - start),
		Prompt:    d.prompt,
		Completed: d.completion,
	}
	if !success {
		out.Failure = d.classify()
	}
	return out
}

// classify picks the failure channel: the first unrecovered error event,
// the step cap, or a residual execution tag.
func (d *driver) classify() string {
	for _, ev := range d.events {
		if !ev.recovered {
			return ev.channel
		}
	}
	if d.capped {
		return osworld.FailStepCap
	}
	return osworld.FailExecution
}

// framePrompt is the token cost of a framework call (task description,
// workflow state, screen labels). GUI-mode framework calls also carry a
// screenshot; with DMI the framework plans over structured observations.
func (d *driver) framePrompt() int {
	screen := d.sess.CaptureLabels()
	tokens := 900 + screen.Len()*8 + strutil.EstimateTokens(d.task.Description)
	if d.cfg.Interface != GUIDMI {
		tokens += 2500
	}
	return tokens
}

// intent is what the planner actually decided for one plan step after the
// semantic error channels have spoken.
type intent struct {
	target  osworld.Target
	skip    bool   // step silently dropped (e.g. forgetting Apply to All)
	sibling bool   // divert to a sibling distractor after resolution
	tag     string // failure channel if the decision was wrong
}

// intend applies the semantic error channels to one plan step.
//
// Semantic channels operate identically across interfaces, except that
// imperative execution splits attention between policy and mechanism,
// raising semantic slips (§5.6) — guiAttn carries that multiplier.
func (d *driver) intend(step osworld.PlanStep, guiAttn float64) intent {
	// Specific trap (control semantics, subtle semantics, ...).
	if step.TrapKind != "" && d.chance(d.p.ControlSem*step.TrapWeight*guiAttn) {
		if step.TrapAlt == nil {
			return intent{skip: true, tag: step.TrapKind}
		}
		return intent{target: *step.TrapAlt, tag: step.TrapKind}
	}
	// Generic semantic misreading scaled by task and step ambiguity.
	pSem := d.p.Semantic * (0.6 + d.task.Ambiguity + step.Ambiguity) * guiAttn
	if d.chance(pSem) {
		if step.TrapAlt != nil {
			return intent{target: *step.TrapAlt, tag: osworld.FailAmbiguousTask}
		}
		return intent{target: step.Target, sibling: true, tag: osworld.FailAmbiguousTask}
	}
	return intent{target: step.Target}
}
