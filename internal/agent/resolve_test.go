package agent

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/osworld"
)

func wordModel(t *testing.T) *describe.Model {
	t.Helper()
	return sharedModels(t).ByApp["Word"]
}

func TestResolveByPrimaryAndContainer(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale")
	}
	m := wordModel(t)
	r, err := resolveTarget(m, osworld.Target{Primary: "Landscape", GIDContains: "mnuOrientation"})
	if err != nil {
		t.Fatal(err)
	}
	if r.node.Name != "Landscape" || r.nonLeaf {
		t.Fatalf("resolved %+v", r.node)
	}
	if len(r.refs) != 0 {
		t.Error("main-tree target should need no entry refs")
	}
}

func TestResolveViaPicksSemanticPath(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale")
	}
	m := wordModel(t)
	font, err := resolveTarget(m, osworld.Target{
		Primary: "Blue", GIDContains: "clrPickerStd", Via: "btnFontColor"})
	if err != nil {
		t.Fatal(err)
	}
	und, err := resolveTarget(m, osworld.Target{
		Primary: "Blue", GIDContains: "clrPickerStd", Via: "btnUnderlineColor"})
	if err != nil {
		t.Fatal(err)
	}
	if font.node != und.node {
		t.Fatal("both paths should resolve to the same shared-subtree cell")
	}
	if len(font.refs) == 0 || len(und.refs) == 0 {
		t.Fatal("shared-subtree targets need entry refs")
	}
	if font.refs[0] == und.refs[0] {
		t.Fatal("different Via openers must yield different entry refs")
	}
	// The refs route through the named openers.
	fr := m.Node(font.refs[0])
	if !pathContainsPrimary(fr.PathFromRoot(), "btnFontColor") {
		t.Error("font ref does not pass through Font Color")
	}
}

func TestResolveUnknownTarget(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale")
	}
	m := wordModel(t)
	if _, err := resolveTarget(m, osworld.Target{Primary: "No Such Control Anywhere"}); err == nil {
		t.Fatal("unknown target resolved")
	}
}

func TestResolveNonLeafFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale")
	}
	// "Pie" in Excel's recommended-charts gallery reveals the contextual
	// Chart Design tab during ripping, so it is a non-leaf functional
	// control: resolution must flag the imperative slow path.
	m := sharedModels(t).ByApp["Excel"]
	r, err := resolveTarget(m, osworld.Target{Primary: "Pie", GIDContains: "galQuickCharts"})
	if err != nil {
		t.Fatal(err)
	}
	if !r.nonLeaf {
		t.Fatal("context-revealing control should be flagged non-leaf")
	}
}

func TestSiblingDistractor(t *testing.T) {
	parent := &forest.Node{Name: "menu"}
	mk := func(n string) *forest.Node {
		c := &forest.Node{Name: n, Parent: parent}
		parent.Children = append(parent.Children, c)
		return c
	}
	a := mk("A")
	mk("B")
	mk("C")
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		d := siblingDistractor(a, rng.Intn)
		if d == nil || d == a {
			t.Fatal("distractor must be a different sibling")
		}
	}
	lonely := &forest.Node{Name: "only"}
	root := &forest.Node{Children: []*forest.Node{lonely}}
	lonely.Parent = root
	if siblingDistractor(lonely, rng.Intn) != nil {
		t.Error("no sibling available: distractor must be nil")
	}
	if siblingDistractor(root, rng.Intn) != nil {
		t.Error("root has no parent: distractor must be nil")
	}
}

func TestInCoreTopology(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale")
	}
	m := wordModel(t)
	// A ribbon-level control is in the core; a font-list item (large
	// enumeration) is not.
	landscape, _ := resolveTarget(m, osworld.Target{Primary: "Landscape", GIDContains: "mnuOrientation"})
	if !inCoreTopology(m, landscape.node) {
		t.Error("ribbon control should be inside the core topology")
	}
	var fontItem *forest.Node
	m.Forest.Main.Walk(func(n *forest.Node) bool {
		if fontItem == nil && n.IsLeaf() && n.LargeEnum &&
			strings.Contains(n.GID, "wFontName") {
			fontItem = n
		}
		return true
	})
	if fontItem == nil {
		t.Fatal("no font list item found")
	}
	if inCoreTopology(m, fontItem) {
		t.Error("large-enumeration item should be outside the core topology")
	}
}

func TestGidPrimary(t *testing.T) {
	cases := map[string]string{
		"btnBold|Button|a/b": "btnBold",
		"plain":              "plain",
		"|Button|x":          "",
	}
	for in, want := range cases {
		if got := gidPrimary(in); got != want {
			t.Errorf("gidPrimary(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestFailureChannelsReachVerifier: forcing one channel to certainty makes
// the matching failure appear — the taxonomy is wired end to end.
func TestFailureChannelsReachVerifier(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale")
	}
	m := sharedModels(t)
	task, _ := osworld.ByID("excel-freeze") // ControlSem trap, weight 0.5
	p := oracle()
	p.ControlSem = 1 // the trap fires with its weight (0.5) per run
	cfg := Config{Interface: GUIDMI, Profile: p, TopologyMissRate: -1}
	sawTrap := false
	for seed := int64(0); seed < 20; seed++ {
		out := Run(m, task, cfg, rand.New(rand.NewSource(seed)))
		if !out.Success && out.Failure == osworld.FailControlSem {
			sawTrap = true
			break
		}
	}
	if !sawTrap {
		t.Fatal("control-semantics trap never surfaced as a classified failure")
	}
}

// TestStepCapEnforced: an agent that can never finish hits the 30-step cap.
func TestStepCapEnforced(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale")
	}
	m := sharedModels(t)
	task, _ := osworld.ByID("word-bold")
	p := oracle()
	p.Composite = 1 // every composite round misses
	p.Detect = 1    // always detected → endless retry rounds
	cfg := Config{Interface: GUIOnly, Profile: p, TopologyMissRate: -1, StepCap: 4}
	out := Run(m, task, cfg, rand.New(rand.NewSource(1)))
	if out.Success {
		t.Fatal("capped run must not count as success")
	}
	if out.Steps > 4 {
		t.Fatalf("steps %d exceeded the cap", out.Steps)
	}
	if out.Failure != osworld.FailStepCap && out.Failure != osworld.FailComposite {
		t.Fatalf("failure = %q, want step-cap or composite", out.Failure)
	}
}
