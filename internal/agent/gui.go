package agent

import (
	"repro/internal/forest"
	"repro/internal/osworld"
	"repro/internal/strutil"
	"repro/internal/uia"
)

// runGUI executes the task imperatively (the UFO2-as baseline, optionally
// with the navigation forest as prompt knowledge). Each LLM call plans an
// action sequence over controls visible at the start of that call; clicks
// that reveal new UI force the next round trip. Composite interactions run
// as observe–act loops. Returns true if the run aborted unrecoverably.
func (d *driver) runGUI() bool {
	hasForest := d.cfg.Interface == GUIForest
	navErr := d.p.EffectiveNavError(hasForest)

	for _, step := range d.task.Plan {
		switch step.Kind {
		case osworld.StepAccess, osworld.StepInput:
			it := d.intend(step, 1.35)
			if it.skip {
				d.fail(it.tag)
				continue
			}
			r, err := resolveTarget(d.model, it.target)
			if err != nil {
				d.fail(osworld.FailAmbiguousTask)
				continue
			}
			node := r.node
			if it.sibling {
				if sib := siblingDistractor(node, d.rng.Intn); sib != nil {
					node = sib
				}
			}
			if it.tag != "" {
				d.fail(it.tag)
			}
			if aborted := d.guiNavigateAndAct(node, r.refs, step, navErr); aborted {
				return true
			}

		case osworld.StepShortcut:
			it := d.intend(step, 1.35)
			if it.skip {
				d.fail(it.tag)
				continue
			}
			d.guiEnsureCall()
			_ = d.env.App.Desk.PressKey(step.Key)

		case osworld.StepState:
			if aborted := d.guiComposite(step); aborted {
				return true
			}

		case osworld.StepObserve:
			if d.overCap() {
				return true
			}
			d.call(d.guiPrompt(), true)
			d.guiObserve(step)
		}
	}
	d.flushGUICall()
	return false
}

// Call batching: actions execute inside an open call as long as their
// targets were visible when the call was planned; anything else opens a new
// call.
type guiCall struct {
	open    bool
	visible map[string]bool // control ids visible at plan time
}

func (d *driver) guiEnsureCall() {
	if d.gui.open {
		return
	}
	d.call(d.guiPrompt(), true)
	d.gui.open = true
	d.gui.visible = make(map[string]bool)
	for _, e := range d.env.App.Desk.Snapshot() {
		if e.Parent() != nil {
			d.gui.visible[e.ControlID()] = true
		}
	}
}

func (d *driver) flushGUICall() { d.gui.open = false }

// guiNavigateAndAct walks the root-to-target chain imperatively: one wrong
// turn per navigation click with probability navErr, a grounding slip per
// click, detection and Esc-recovery on observation, cascade on undetected
// errors.
func (d *driver) guiNavigateAndAct(node *forest.Node, refs []int, step osworld.PlanStep, navErr float64) bool {
	chain := pathSteps(d, node, refs)
	if len(chain) == 0 {
		d.fail(osworld.FailTopology)
		return false
	}
	guard := 0
	for {
		if guard++; guard > len(chain)+14 {
			d.fail(osworld.FailGroundingNav)
			return true
		}
		if d.overCap() {
			return true
		}
		d.guiEnsureCall()
		idx, el := d.deepestVisibleLive(chain)
		if idx < 0 {
			// Nothing on the path visible (wrong window, lost state):
			// dismiss and retry once per guard round.
			d.flushGUICall()
			_ = d.env.App.Desk.PressKey("ESC")
			idx, el = d.deepestVisibleLive(chain)
			if idx < 0 {
				d.fail(osworld.FailGroundingNav)
				return true
			}
			continue
		}
		final := idx == len(chain)-1
		if !d.gui.visible[el.ControlID()] {
			// Target appeared after this call was planned: next round.
			d.flushGUICall()
			continue
		}

		// Error channels for this click.
		pErr := d.p.Grounding
		if final {
			pErr = d.p.Grounding * (1 + step.VisualDiff)
		} else {
			pErr += navErr
		}
		if d.chance(pErr) {
			// Wrong control activated: a navigation/localization slip.
			wrong := d.liveSibling(el)
			if wrong != nil {
				_ = d.env.App.Desk.Click(wrong)
			}
			if d.chance(d.p.Detect) {
				// Observed the mistake: recover with an extra round.
				d.recovered(osworld.FailGroundingNav)
				d.flushGUICall()
				if d.overCap() {
					return true
				}
				d.call(d.guiPrompt(), true)
				_ = d.env.App.Desk.PressKey("ESC")
				d.flushGUICall()
				continue
			}
			d.fail(osworld.FailGroundingNav)
			if final {
				// Believes the interaction happened; moves on.
				return false
			}
			return true // lost in navigation: cascade
		}

		if err := d.env.App.Desk.Click(el); err != nil {
			d.fail(osworld.FailGroundingNav)
			return true
		}
		if final {
			if step.Kind == osworld.StepInput {
				d.env.App.Desk.SetFocus(el)
				if err := d.env.App.Desk.TypeText(step.Text); err != nil {
					d.fail(osworld.FailExecution)
				}
			}
			return false
		}
	}
}

// guiComposite performs a state change as an iterative observe–act loop
// (drag rounds, selection adjustment): each round is one LLM call; each
// round can misjudge; undetected misses leave the state wrong.
func (d *driver) guiComposite(step osworld.PlanStep) bool {
	so := *step.State
	d.flushGUICall()
	pRound := d.p.Composite * (1 + step.VisualDiff)
	const maxRounds = 4
	for round := 1; ; round++ {
		if d.overCap() {
			return true
		}
		d.call(d.guiPrompt(), true)
		miss := d.chance(pRound)
		d.applyComposite(so, miss)
		if !miss {
			return false // reached the declared state
		}
		if round >= maxRounds || !d.chance(d.p.Detect) {
			d.fail(osworld.FailComposite)
			return false
		}
		d.recovered(osworld.FailComposite)
	}
}

// applyComposite mutates the UI toward the target state; a miss leaves it
// measurably off (an imprecise drag or selection).
func (d *driver) applyComposite(so osworld.StateOp, miss bool) {
	lm := d.sess.CaptureLabels()
	label := lm.Find(so.ControlName, so.ControlType)
	if label == "" {
		return
	}
	el := lm.Element(label)
	switch so.Op {
	case "scrollbar":
		v := so.V
		if miss {
			v = clamp(v + float64(d.rng.Intn(56)-28))
		}
		if sc, ok := el.Pattern(uia.ScrollPattern).(uia.Scroller); ok {
			_ = sc.SetScrollPercent(el, so.H, v)
		}
	case "select_lines", "select_paragraphs":
		start, end := so.Start, so.End
		if miss {
			start += d.rng.Intn(3) - 1
			end += d.rng.Intn(3) - 1
			if start < 1 {
				start = 1
			}
			if end < start {
				end = start
			}
		}
		if tx, ok := el.Pattern(uia.TextPattern).(uia.Texter); ok {
			if so.Op == "select_lines" {
				_ = tx.SelectLines(el, start, end)
			} else {
				_ = tx.SelectParagraphs(el, start, end)
			}
		}
	case "select_controls":
		for i, n := range so.Names {
			l := lm.Find(n, so.ControlType)
			if l == "" {
				continue
			}
			tgt := lm.Element(l)
			if si, ok := tgt.Pattern(uia.SelectionItemPattern).(uia.SelectionItem); ok {
				if i == 0 {
					_ = si.Select(tgt)
				} else {
					_ = si.AddToSelection(tgt)
				}
			}
		}
	case "set_range_value":
		v := so.Value
		if miss {
			v *= 0.6 + 0.8*d.rng.Float64()
		}
		if rv, ok := el.Pattern(uia.RangeValuePattern).(uia.RangeValuer); ok {
			min, max := rv.Range(el)
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			_ = rv.SetRangeValue(el, v)
		}
	}
}

// guiObserve answers an observation step by reading pixels: limited visual
// acuity corrupts the answer with probability scaled by the step's visual
// difficulty (§2.1, Mismatch #2).
func (d *driver) guiObserve(step osworld.PlanStep) {
	lm := d.sess.CaptureLabels()
	name := trimCellPrefix(step.Target.Primary)
	label := lm.Find(name, uia.DataItemControl)
	if label == "" {
		d.fail(osworld.FailVisualSem)
		return
	}
	el := lm.Element(label)
	v, _ := el.Pattern(uia.ValuePattern).(uia.Valuer)
	if v == nil {
		d.fail(osworld.FailVisualSem)
		return
	}
	answer := v.Value(el)
	if d.chance(d.p.Grounding * (0.5 + step.VisualDiff)) {
		answer = corruptDigits(answer, d.rng.Intn)
		d.fail(osworld.FailVisualSem)
	}
	d.env.Answer = answer
}

// corruptDigits flips one digit — a typical visual misread of a numeric
// cell.
func corruptDigits(s string, pick func(int) int) string {
	b := []byte(s)
	var digits []int
	for i, c := range b {
		if c >= '0' && c <= '9' {
			digits = append(digits, i)
		}
	}
	if len(digits) == 0 {
		return s + "?"
	}
	i := digits[pick(len(digits))]
	b[i] = '0' + byte((int(b[i]-'0')+1+pick(8)))%10
	return string(b)
}

// deepestVisibleLive finds the deepest chain element currently on screen by
// exact synthesized-id match across the desktop.
func (d *driver) deepestVisibleLive(chain []*forest.Node) (int, *uia.Element) {
	byID := make(map[string]*uia.Element)
	for _, e := range d.env.App.Desk.Snapshot() {
		if e.Parent() == nil {
			continue
		}
		id := e.ControlID()
		if _, dup := byID[id]; !dup {
			byID[id] = e
		}
	}
	for i := len(chain) - 1; i >= 0; i-- {
		if el, ok := byID[chain[i].GID]; ok && el.Enabled() {
			return i, el
		}
	}
	return -1, nil
}

// liveSibling returns a visually adjacent control — where a misgrounded
// click lands.
func (d *driver) liveSibling(el *uia.Element) *uia.Element {
	parent := el.Parent()
	if parent == nil {
		return nil
	}
	sibs := parent.Children()
	if len(sibs) < 2 {
		return el
	}
	for tries := 0; tries < 4; tries++ {
		s := sibs[d.rng.Intn(len(sibs))]
		if s != el && s.OnScreen() && s.Enabled() && s.Type().IsInteractive() {
			return s
		}
	}
	return el
}

// pathSteps expands a target (plus entry references) into the full click
// chain, mirroring the executor's path resolution.
func pathSteps(d *driver, node *forest.Node, refs []int) []*forest.Node {
	var steps []*forest.Node
	for _, refID := range refs {
		ref := d.model.Node(refID)
		if ref == nil {
			return nil
		}
		steps = append(steps, ref.PathFromRoot()[1:]...)
	}
	return append(steps, node.PathFromRoot()[1:]...)
}

// guiPrompt is the token cost of a GUI-mode call: instructions, the
// screenshot (the baseline perceives pixels; DMI does not need to), the
// labeled accessibility tree, and — in the ablation — the navigation forest
// as static knowledge.
func (d *driver) guiPrompt() int {
	const screenshotTokens = 2500
	lm := d.sess.CaptureLabels()
	tokens := 900 + screenshotTokens + lm.Len()*12 +
		strutil.EstimateTokens(d.task.Description)
	if d.cfg.Interface == GUIForest {
		tokens += d.models.CoreTokens[d.task.App]
	}
	return tokens
}
