package agent

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/forest"
	"repro/internal/osworld"
	"repro/internal/strutil"
	"repro/internal/uia"
)

// runDMI executes the task through the declarative interface. Access,
// input, and shortcut steps batch into visit calls planned globally over
// the navigation forest; state and observation declarations run in their
// own turns (the stop-and-observe rule of §3.4). Returns true if the run
// aborted unrecoverably.
func (d *driver) runDMI() bool {
	var batch []core.Command

	flush := func() bool {
		if len(batch) == 0 {
			return false
		}
		cmds := batch
		batch = nil
		if d.overCap() {
			return true
		}
		d.call(d.dmiPrompt(), true)
		res := d.sess.Visit(cmds)
		if res.OK() {
			return false
		}
		// Structured error feedback → one replanning round (§3.4).
		if d.overCap() {
			return true
		}
		d.call(d.dmiPrompt(), true)
		tag := osworld.FailExecution
		if res.Err.Code == core.ErrNotFound {
			tag = osworld.FailTopology
		}
		if d.chance(d.p.Recover) {
			// GUI fallback: the agent locates the control on the live
			// screen and clicks it imperatively (§6, fast/slow path).
			if d.guiFallback(res.Err) {
				d.recovered(tag)
				// Re-run whatever followed the failing command.
				rest := remainingAfter(cmds, res)
				if len(rest) > 0 {
					res2 := d.sess.Visit(rest)
					if !res2.OK() {
						d.fail(tag)
						return false
					}
				}
				return false
			}
		}
		d.fail(tag)
		return false
	}

	// Phase 1 — global planning over the navigation forest: apply the
	// semantic channels to every step and resolve targets up front. This
	// is the declarative advantage (§5.3): the LLM can plan over controls
	// that are not yet visible.
	type plannedStep struct {
		step osworld.PlanStep
		it   intent
		res  resolved
		node *forest.Node
		drop bool
	}
	var plan []plannedStep
	var missing []int // node ids outside the core topology
	for _, step := range d.task.Plan {
		pl := plannedStep{step: step}
		switch step.Kind {
		case osworld.StepAccess, osworld.StepInput, osworld.StepShortcut:
			pl.it = d.intend(step, 1.0)
			if pl.it.skip {
				d.fail(pl.it.tag)
				pl.drop = true
				break
			}
			if step.Kind == osworld.StepShortcut {
				break
			}
			r, err := resolveTarget(d.model, pl.it.target)
			if err != nil {
				d.fail(osworld.FailAmbiguousTask)
				pl.drop = true
				break
			}
			pl.res = r
			pl.node = r.node
			if pl.it.sibling {
				if sib := siblingDistractor(pl.node, d.rng.Intn); sib != nil {
					pl.node = sib
				}
			}
			if pl.it.tag != "" {
				d.fail(pl.it.tag)
			}
			if !r.nonLeaf && !inCoreTopology(d.model, pl.node) {
				missing = append(missing, d.model.ID(pl.node))
			}
		}
		plan = append(plan, pl)
	}

	// One further_query round fetches every missing branch (§3.3, query
	// on demand — targeted branch queries batch into a single call).
	if len(missing) > 0 {
		if d.overCap() {
			return true
		}
		d.call(d.dmiPrompt(), true)
		res := d.sess.Visit([]core.Command{core.FurtherQuery(missing...)})
		if res.OK() {
			d.prompt += strutil.EstimateTokens(res.QueryText)
		}
	}

	// Phase 2 — execute: batch access/input/shortcut into visit calls;
	// state and observation declarations run in their own turns.
	for _, pl := range plan {
		if pl.drop {
			continue
		}
		step := pl.step
		switch step.Kind {
		case osworld.StepAccess, osworld.StepInput:
			// Functional controls the ripper saw revealing further UI are
			// non-leaves; the visit filter would drop them, so the agent
			// takes the imperative slow path (§5.7).
			if pl.res.nonLeaf {
				if flush() || d.overCap() {
					return true
				}
				// guiNavigateAndAct accounts its own calls.
				navErr := d.p.EffectiveNavError(true)
				if aborted := d.guiNavigateAndAct(pl.node, pl.res.refs, step, navErr); aborted {
					return true
				}
				d.flushGUICall()
				continue
			}
			// Offline-model staleness injection: the live control drifted
			// since modeling (§6).
			if d.chance(d.cfg.TopologyMissRate) {
				d.renameLive(pl.node)
			}
			// Imperfect instruction-following: the LLM sometimes emits
			// navigation nodes too; the executor filters them (§3.4).
			if d.chance(d.p.InstrNoise) && pl.node.Parent != nil {
				batch = append(batch, core.AccessRef(d.model.ID(pl.node.Parent), pl.res.refs...))
			}
			if step.Kind == osworld.StepInput {
				cmd := core.Input(d.model.ID(pl.node), step.Text)
				cmd.EntryRefIDs = pl.res.refs
				batch = append(batch, cmd)
			} else {
				batch = append(batch, core.AccessRef(d.model.ID(pl.node), pl.res.refs...))
			}

		case osworld.StepShortcut:
			batch = append(batch, core.Shortcut(step.Key))

		case osworld.StepState:
			if flush() || d.overCap() {
				return true
			}
			d.call(d.dmiPrompt(), true)
			d.execStateDMI(step)

		case osworld.StepObserve:
			if flush() || d.overCap() {
				return true
			}
			d.call(d.dmiPrompt(), true)
			d.observeDMI(step)
		}
	}
	return flush()
}

// remainingAfter returns the commands after the one that failed.
func remainingAfter(cmds []core.Command, res *core.VisitResult) []core.Command {
	done := len(res.Executed) // last executed entry is the failed one
	if done >= len(cmds) {
		return nil
	}
	return cmds[done:]
}

// guiFallback imperatively clicks the live control the declarative path
// could not resolve (slow-path recovery). It succeeds when the control is
// reachable on screen after opening its parent chain with best effort.
func (d *driver) guiFallback(serr *core.StepError) bool {
	node := d.model.Node(serr.NodeID)
	if node == nil {
		return false
	}
	el := d.findLive(node)
	if el == nil {
		return false
	}
	// Visual grounding still applies on the slow path.
	if d.chance(d.p.Grounding) {
		return false
	}
	if !el.OnScreen() {
		// Approximate re-navigation: click the on-screen ancestor chain.
		for _, anc := range node.PathFromRoot() {
			if ael := d.findLive(anc); ael != nil && ael.OnScreen() {
				_ = d.env.App.Desk.Click(ael)
			}
		}
	}
	return d.env.App.Desk.Click(el) == nil
}

// renameLive renames the live element for a node beyond fuzzy-match reach,
// simulating model staleness.
func (d *driver) renameLive(node *forest.Node) {
	if el := d.findLive(node); el != nil {
		el.SetName(fmt.Sprintf("Untitled %d", d.rng.Intn(900)+100))
	}
}

// findLive locates the live element whose synthesized id matches the node,
// searching the main window and every popup template.
func (d *driver) findLive(node *forest.Node) *uia.Element {
	match := func(root *uia.Element) *uia.Element {
		return root.Find(func(e *uia.Element) bool { return e.ControlID() == node.GID })
	}
	if el := match(d.env.App.Win); el != nil {
		return el
	}
	for _, w := range d.env.App.AllPopupWindows() {
		if el := match(w); el != nil {
			return el
		}
	}
	return nil
}

// execStateDMI performs a state declaration with possible semantic argument
// errors (the interface executes reliably; what can go wrong is the
// declared target state itself).
func (d *driver) execStateDMI(step osworld.PlanStep) {
	so := *step.State
	tag := step.TrapKind
	if tag == "" {
		tag = osworld.FailAmbiguousTask
	}
	wrong := d.chance(d.p.Semantic * (0.5 + step.Ambiguity + d.task.Ambiguity))
	if wrong {
		switch so.Op {
		case "scrollbar":
			so.V += float64(d.rng.Intn(50) - 25)
		case "select_lines", "select_paragraphs":
			so.Start += d.rng.Intn(3) - 1
			so.End += d.rng.Intn(3) - 1
		case "set_range_value":
			so.Value *= 0.5 + d.rng.Float64()
		}
		d.fail(tag)
	}
	lm := d.sess.CaptureLabels()
	label := lm.Find(so.ControlName, so.ControlType)
	if label == "" {
		d.fail(osworld.FailTopology)
		return
	}
	var serr *core.StepError
	switch so.Op {
	case "scrollbar":
		_, serr = d.sess.SetScrollbarPos(lm, label, so.H, clamp(so.V))
	case "select_lines":
		serr = d.sess.SelectLines(lm, label, so.Start, so.End)
	case "select_paragraphs":
		serr = d.sess.SelectParagraphs(lm, label, so.Start, so.End)
	case "select_controls":
		labels := make([]string, 0, len(so.Names))
		for _, n := range so.Names {
			if l := lm.Find(n, so.ControlType); l != "" {
				labels = append(labels, l)
			}
		}
		serr = d.sess.SelectControls(lm, labels)
	case "set_range_value":
		serr = d.setRangeValue(lm, label, so.Value)
	}
	if serr != nil && !wrong {
		d.fail(osworld.FailExecution)
	}
}

// setRangeValue drives a RangeValue control declaratively (Table 2's
// interfaces are extensible; this one builds on RangeValuePattern).
func (d *driver) setRangeValue(lm *core.LabelMap, label string, v float64) *core.StepError {
	el := lm.Element(label)
	if el == nil {
		return &core.StepError{Code: core.ErrUnknownLabel, Control: label}
	}
	rv, ok := el.Pattern(uia.RangeValuePattern).(uia.RangeValuer)
	if !ok {
		return &core.StepError{Code: core.ErrNoPattern, Control: el.Name()}
	}
	if err := rv.SetRangeValue(el, v); err != nil {
		return &core.StepError{Code: core.ErrBadRange, Control: el.Name(), Hint: err.Error()}
	}
	return nil
}

// observeDMI answers an observation step through get_texts: structured
// retrieval, no pixel parsing (§3.5).
func (d *driver) observeDMI(step osworld.PlanStep) {
	lm := d.sess.CaptureLabels()
	// Structured observation reads the full value; the only residual
	// error is semantic (answering with the wrong cell), kept tiny.
	el := lm.Find(step.Target.Primary, uia.DataItemControl)
	if el == "" {
		// Try by automation-id style primary ("cellC22" → name "C22").
		el = lm.Find(trimCellPrefix(step.Target.Primary), uia.DataItemControl)
	}
	if el == "" {
		d.fail(osworld.FailTopology)
		return
	}
	texts, serr := d.sess.GetTexts(lm, []string{el})
	if serr != nil {
		d.fail(osworld.FailExecution)
		return
	}
	d.env.Answer = texts[el]
}

func trimCellPrefix(s string) string {
	if len(s) > 4 && s[:4] == "cell" {
		return s[4:]
	}
	return s
}

// dmiPrompt is the token cost of a DMI-mode call: usage prompt, the core
// navigation forest (>80% of the overhead, §5.4), screen labels, and the
// passive DataItem payload. It runs before every LLM call, so it costs the
// screen through the one-pass PromptStats instead of a full label capture.
func (d *driver) dmiPrompt() int {
	controls, passive := d.sess.PromptStats(24)
	return 700 + d.models.CoreTokens[d.task.App] +
		controls*2 + strutil.EstimateTokens(passive) +
		strutil.EstimateTokens(d.task.Description)
}

func clamp(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 100 {
		return 100
	}
	return v
}
