package agent

import (
	"fmt"
	"strings"

	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/osworld"
)

// resolved is a Target bound to the offline model: the forest node plus the
// entry references needed to reach it when it lives in a shared subtree.
type resolved struct {
	node *forest.Node
	refs []int // entry reference ids, outermost first
	// nonLeaf marks a functional control that the ripper observed
	// revealing further UI (e.g. a gallery item that activates a
	// contextual tab). The visit filter would drop it, so the agent must
	// take the imperative slow path (§5.7, explicit navigation-node
	// access).
	nonLeaf bool
}

// resolveTarget binds an interface-agnostic Target to the topology. When
// the target sits in a shared subtree (or was cloned along several paths),
// the Via opener picks the semantically correct instance — font color vs
// underline color.
func resolveTarget(m *describe.Model, t osworld.Target) (resolved, error) {
	var candidates []*forest.Node
	var nonLeaf []*forest.Node
	collect := func(tree *forest.Node) {
		tree.Walk(func(n *forest.Node) bool {
			if gidPrimary(n.GID) != t.Primary && n.Name != t.Primary {
				return true
			}
			if t.GIDContains != "" && !strings.Contains(n.GID, t.GIDContains) {
				// The container constraint may also be satisfied by the
				// node's ancestors within its tree.
				ok := false
				for _, anc := range n.PathFromRoot() {
					if strings.Contains(anc.GID, t.GIDContains) {
						ok = true
						break
					}
				}
				if !ok {
					return true
				}
			}
			if n.IsLeaf() {
				candidates = append(candidates, n)
			} else if !n.IsRef() {
				nonLeaf = append(nonLeaf, n)
			}
			return true
		})
	}
	collect(m.Forest.Main)
	for _, id := range m.Forest.SharedOrder {
		collect(m.Forest.Shared[id])
	}
	if len(candidates) == 0 && len(nonLeaf) == 0 {
		return resolved{}, fmt.Errorf("agent: target %q not in topology", t.Primary)
	}

	pick := func(list []*forest.Node, markNonLeaf bool) (resolved, bool) {
		for _, n := range list {
			tree := m.TreeOf(n)
			if tree == "" {
				// Main-tree instance: its path must honour Via if given.
				if t.Via == "" || pathContainsPrimary(n.PathFromRoot(), t.Via) {
					return resolved{node: n, nonLeaf: markNonLeaf}, true
				}
				continue
			}
			refs, ok := refChain(m, tree, t.Via)
			if !ok {
				continue
			}
			return resolved{node: n, refs: refs, nonLeaf: markNonLeaf}, true
		}
		return resolved{}, false
	}
	if r, ok := pick(candidates, false); ok {
		return r, nil
	}
	if r, ok := pick(nonLeaf, true); ok {
		return r, nil
	}
	return resolved{}, fmt.Errorf("agent: no instance of %q reachable via %q", t.Primary, t.Via)
}

// refChain finds entry references from the main tree into the shared
// subtree, preferring a reference whose path passes through the Via opener.
// Nested references (subtree → subtree) are followed one level.
func refChain(m *describe.Model, tree string, via string) ([]int, bool) {
	var fallback []int
	for _, r := range m.RefsTo(tree) {
		holder := m.TreeOf(r)
		if holder == "" {
			if via == "" || pathContainsPrimary(r.PathFromRoot(), via) {
				return []int{m.ID(r)}, true
			}
			if fallback == nil {
				fallback = []int{m.ID(r)}
			}
			continue
		}
		// The reference itself sits in another shared subtree: chain
		// through one of that subtree's own main-tree references.
		for _, outer := range m.RefsTo(holder) {
			if m.TreeOf(outer) != "" {
				continue
			}
			chain := []int{m.ID(outer), m.ID(r)}
			if via == "" || pathContainsPrimary(outer.PathFromRoot(), via) ||
				pathContainsPrimary(r.PathFromRoot(), via) {
				return chain, true
			}
			if fallback == nil {
				fallback = chain
			}
		}
	}
	return fallback, fallback != nil
}

func gidPrimary(gid string) string {
	if i := strings.IndexByte(gid, '|'); i >= 0 {
		return gid[:i]
	}
	return gid
}

func pathContainsPrimary(path []*forest.Node, primary string) bool {
	for _, n := range path {
		if gidPrimary(n.GID) == primary {
			return true
		}
	}
	return false
}

// siblingDistractor returns a plausible wrong pick: another leaf under the
// same parent (the adjacent gallery cell, the neighbouring menu item).
func siblingDistractor(n *forest.Node, pick func(n int) int) *forest.Node {
	if n.Parent == nil {
		return nil
	}
	var sibs []*forest.Node
	for _, c := range n.Parent.Children {
		if c != n && c.IsLeaf() {
			sibs = append(sibs, c)
		}
	}
	if len(sibs) == 0 {
		return nil
	}
	return sibs[pick(len(sibs))]
}

// inCoreTopology reports whether the node appears in the default core
// topology payload (depth-limited, large enumerations pruned); targets
// outside it require a further_query round first (§3.3).
func inCoreTopology(m *describe.Model, n *forest.Node) bool {
	if n.LargeEnum {
		return false
	}
	depth := len(n.PathFromRoot()) - 1
	opt := describe.CoreOptions()
	return opt.MaxDepth <= 0 || depth < opt.MaxDepth
}
