package agent

import (
	"sync"
	"testing"

	"repro/internal/llm"
	"repro/internal/osworld"
)

var (
	modelsOnce sync.Once
	models     *Models
	modelsErr  error
)

func sharedModels(t *testing.T) *Models {
	t.Helper()
	modelsOnce.Do(func() { models, modelsErr = BuildModels() })
	if modelsErr != nil {
		t.Fatal(modelsErr)
	}
	return models
}

// TestAppNamesMatchFactories pins the one-source-of-truth contract: the
// ordered name list and the factory map must enumerate the same catalog,
// and every benchmark task must target a cataloged app.
func TestAppNamesMatchFactories(t *testing.T) {
	factories := Factories()
	names := AppNames()
	if len(names) != len(factories) {
		t.Fatalf("AppNames lists %d apps, Factories has %d", len(names), len(factories))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Errorf("AppNames lists %q twice", n)
		}
		seen[n] = true
		if _, ok := factories[n]; !ok {
			t.Errorf("AppNames lists %q but Factories has no builder for it", n)
		}
	}
	for _, task := range osworld.All() {
		if !seen[task.App] {
			t.Errorf("task %q targets uncataloged app %q", task.ID, task.App)
		}
	}
}

// oracle returns a profile with every error channel silenced: the planner
// reproduces the ground-truth plan perfectly.
func oracle() llm.Profile {
	p := llm.GPT5Medium
	p.Semantic, p.ControlSem, p.Grounding, p.Composite = 0, 0, 0, 0
	p.NavPlanning, p.InstrNoise = 0, 0
	p.Detect, p.Recover, p.KnowsApps = 1, 1, 1
	return p
}

// TestOracleSolvesEverythingViaDMI is the central integration check: the
// ground-truth plans, executed through the real DMI runtime against the
// real application simulators, must satisfy every task verifier.
func TestOracleSolvesEverythingViaDMI(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale integration")
	}
	m := sharedModels(t)
	cfg := Config{Interface: GUIDMI, Profile: oracle(), TopologyMissRate: -1}
	for _, task := range osworld.All() {
		task := task
		t.Run(task.ID, func(t *testing.T) {
			out := Run(m, task, cfg, llm.Rand("oracle-dmi", task.ID, 0))
			if !out.Success {
				t.Fatalf("oracle DMI failed: %+v", out)
			}
			if out.Steps < 4 {
				t.Errorf("steps = %d, below the fixed framework overhead", out.Steps)
			}
		})
	}
}

// TestOracleSolvesEverythingViaGUI checks the imperative path end to end.
func TestOracleSolvesEverythingViaGUI(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale integration")
	}
	m := sharedModels(t)
	cfg := Config{Interface: GUIOnly, Profile: oracle(), TopologyMissRate: -1}
	for _, task := range osworld.All() {
		task := task
		t.Run(task.ID, func(t *testing.T) {
			out := Run(m, task, cfg, llm.Rand("oracle-gui", task.ID, 0))
			// files-rename renames a live control mid-task. The DMI executor
			// absorbs the drift with its fuzzy matcher; the imperative
			// baseline grounds by exact appearance and loses the control
			// even with every error channel silent — the paper's §6
			// staleness story in miniature.
			if task.ID == "files-rename" {
				if out.Success {
					t.Fatal("exact grounding unexpectedly survived the live rename")
				}
				if out.Failure != osworld.FailGroundingNav {
					t.Fatalf("expected grounding failure, got %+v", out)
				}
				return
			}
			if !out.Success {
				t.Fatalf("oracle GUI failed: %+v", out)
			}
		})
	}
}

// TestDMIUsesFewerSteps: even for the oracle, the imperative interface
// needs more LLM calls than the declarative one (Insight: global planning).
func TestDMIUsesFewerSteps(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale integration")
	}
	m := sharedModels(t)
	dmiCfg := Config{Interface: GUIDMI, Profile: oracle(), TopologyMissRate: -1}
	guiCfg := Config{Interface: GUIOnly, Profile: oracle(), TopologyMissRate: -1}
	var dmiSteps, guiSteps int
	for _, task := range osworld.All() {
		dmi := Run(m, task, dmiCfg, llm.Rand("steps-dmi", task.ID, 0))
		gui := Run(m, task, guiCfg, llm.Rand("steps-gui", task.ID, 0))
		dmiSteps += dmi.Steps
		guiSteps += gui.Steps
	}
	if dmiSteps >= guiSteps {
		t.Fatalf("DMI %d steps vs GUI %d steps: declarative should cut calls", dmiSteps, guiSteps)
	}
	t.Logf("oracle totals: DMI %d calls, GUI %d calls over %d tasks",
		dmiSteps, guiSteps, len(osworld.All()))
}

// TestRunDeterminism: same seed → identical outcome.
func TestRunDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale integration")
	}
	m := sharedModels(t)
	cfg := Config{Interface: GUIDMI, Profile: llm.GPT5Medium}
	task, _ := osworld.ByID("ppt-background")
	a := Run(m, task, cfg, llm.Rand("det", task.ID, 1))
	b := Run(m, task, cfg, llm.Rand("det", task.ID, 1))
	if a != b {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

// TestRunConcurrentSharedModels: Run is documented as safe for concurrent
// use over shared read-only Models — many sessions, one warm model. Under
// -race this enforces the read-only contract; functionally each concurrent
// run must still equal its sequential twin (same seed → same outcome).
func TestRunConcurrentSharedModels(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale integration")
	}
	m := sharedModels(t)
	tasks := osworld.All()
	cfgs := []Config{
		{Interface: GUIDMI, Profile: llm.GPT5Medium},
		{Interface: GUIOnly, Profile: llm.GPT5Medium},
		{Interface: GUIForest, Profile: llm.GPT5Mini},
	}
	type cell struct{ cfg, task, run int }
	var cells []cell
	for c := range cfgs {
		for ti := range tasks {
			for r := 0; r < 2; r++ {
				cells = append(cells, cell{c, ti, r})
			}
		}
	}
	seq := make([]Outcome, len(cells))
	for i, c := range cells {
		seq[i] = Run(m, tasks[c.task], cfgs[c.cfg], llm.Rand("conc", tasks[c.task].ID, c.run+10*c.cfg))
	}
	par := make([]Outcome, len(cells))
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			par[i] = Run(m, tasks[c.task], cfgs[c.cfg], llm.Rand("conc", tasks[c.task].ID, c.run+10*c.cfg))
		}(i, c)
	}
	wg.Wait()
	for i := range cells {
		if par[i] != seq[i] {
			t.Fatalf("cell %d: concurrent outcome %+v != sequential %+v", i, par[i], seq[i])
		}
	}
}

// TestModelsForMatchesBuildModels: the single-app view the serving daemon
// assembles per session must carry exactly the model and token accounting
// the full catalog build computes, so sessions served through it are
// byte-identical to in-process ones.
func TestModelsForMatchesBuildModels(t *testing.T) {
	full := sharedModels(t)
	for _, app := range AppNames() {
		one, err := ModelsFor(sharedStore, app, 2)
		if err != nil {
			t.Fatal(err)
		}
		if one.CoreTokens[app] != full.CoreTokens[app] || one.FullTokens[app] != full.FullTokens[app] {
			t.Fatalf("%s: token accounting diverged: one=%d/%d full=%d/%d", app,
				one.CoreTokens[app], one.FullTokens[app], full.CoreTokens[app], full.FullTokens[app])
		}
		if one.ByApp[app] == nil {
			t.Fatalf("%s: no model in single-app view", app)
		}
	}
	if _, err := ModelsFor(sharedStore, "NoSuchApp", 2); err == nil {
		t.Fatal("unknown application did not error")
	}
}
