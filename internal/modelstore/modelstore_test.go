package modelstore

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/appkit"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/ung"
)

// storeApp builds a small ribbon application (a trimmed variant of the ung
// package's demo app) for store tests.
func storeApp() *appkit.App {
	a := appkit.New("StoreDemo")
	picker := a.ColorPicker("clr", "Colors", func(*appkit.App, string) {})
	home := a.Tab("tabHome", "Home")
	font := home.Group("grpFont", "Font")
	font.ToggleButton("btnBold", "Bold", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	font.MenuButton("btnFontColor", "Font Color", picker, func(*appkit.App) any { return "font" })
	ins := a.Tab("tabInsert", "Insert")
	dlg := a.NewDialog("dlgTable", "Insert Table")
	dlg.Panel().Spinner("spnRows", "Rows", 1, 10, 2, nil)
	dlg.AddOKCancel(nil)
	ins.Group("grpTables", "Tables").DialogButton("btnTable", "Table", dlg, nil)
	a.AddRibbonCollapse()
	a.Layout()
	return a
}

func TestCacheMissThenHit(t *testing.T) {
	s := New()
	var calls atomic.Int32
	factory := func() *appkit.App {
		calls.Add(1)
		return storeApp()
	}

	b1, err := s.Build("StoreDemo", factory, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b1.CacheHit || b1.FromSnapshot {
		t.Fatalf("first build flagged as cached: %+v", b1)
	}
	if b1.RipStats.Clicks == 0 {
		t.Fatal("first build did not rip")
	}
	after := calls.Load()

	b2, err := s.Build("StoreDemo", factory, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !b2.CacheHit {
		t.Fatal("second build missed the cache")
	}
	if b2.Model != b1.Model {
		t.Fatal("cache returned a different model")
	}
	if calls.Load() != after {
		t.Fatalf("cache hit invoked the factory (%d → %d calls)", after, calls.Load())
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d entries, want 1", s.Len())
	}
}

func TestDifferentFingerprintsMiss(t *testing.T) {
	s := New()
	m1, err := s.Model("StoreDemo", storeApp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Model("StoreDemo", storeApp, Options{Rip: ung.Config{MaxDepth: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("different rip configs shared a cache slot")
	}
	// Zero config and explicit defaults normalize to the same fingerprint.
	if Fingerprint("A", Options{}) != Fingerprint("A", Options{Rip: ung.Config{MaxDepth: 10, MaxNodes: 100000}}) {
		t.Fatal("default normalization broken")
	}
	// Workers never changes the result, so it must not split the cache.
	if Fingerprint("A", Options{}) != Fingerprint("A", Options{Workers: 8}) {
		t.Fatal("workers leaked into the fingerprint")
	}
}

// TestSingleflight: N concurrent Model calls for one key trigger exactly one
// offline build, and everyone gets the same model. Run under -race.
func TestSingleflight(t *testing.T) {
	s := New()
	var builds atomic.Int32
	factory := func() *appkit.App {
		builds.Add(1)
		return storeApp()
	}

	const n = 16
	results := make([]*describe.Model, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := s.Model("StoreDemo", factory, Options{Workers: 2})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = m
		}(i)
	}
	wg.Wait()

	// One build = probe + per-worker instances; a second build would at
	// least double the count. With Workers=2 a single build makes exactly
	// 3 factory calls (probe + 2 workers).
	if got := builds.Load(); got != 3 {
		t.Fatalf("factory called %d times, want 3 (one singleflighted parallel build)", got)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different model", i)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()

	cold := NewPersistent(dir)
	b1, err := cold.Build("StoreDemo", storeApp, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b1.FromSnapshot {
		t.Fatal("cold build claims a snapshot")
	}
	files, err := os.ReadDir(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("snapshot not written: %v %d", err, len(files))
	}

	// A new store over the same directory rebuilds from the snapshot:
	// zero rip clicks, identical serialized topology.
	warm := NewPersistent(dir)
	var calls atomic.Int32
	b2, err := warm.Build("StoreDemo", func() *appkit.App {
		calls.Add(1)
		return storeApp()
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !b2.FromSnapshot {
		t.Fatal("warm build did not use the snapshot")
	}
	if b2.RipStats.Clicks != 0 {
		t.Fatalf("warm build spent %d rip clicks, want 0", b2.RipStats.Clicks)
	}
	if calls.Load() != 0 {
		t.Fatalf("warm build invoked the factory %d times", calls.Load())
	}
	want := b1.Model.Serialize(describe.FullOptions())
	got := b2.Model.Serialize(describe.FullOptions())
	if want != got {
		t.Fatal("snapshot build serializes differently from the fresh build")
	}
	if b1.Model.NodeCount() != b2.Model.NodeCount() {
		t.Fatal("identifier assignment differs")
	}
}

// TestSnapshotSurvivesThresholdChange: the snapshot is keyed by the rip
// fingerprint, so a different externalization threshold (a different model)
// still reuses the ripped graph from disk.
func TestSnapshotSurvivesThresholdChange(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewPersistent(dir).Build("StoreDemo", storeApp, Options{}); err != nil {
		t.Fatal(err)
	}
	b, err := NewPersistent(dir).Build("StoreDemo", storeApp,
		Options{Transform: forest.Options{CloneThreshold: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if !b.FromSnapshot {
		t.Fatal("threshold change discarded the ripped-graph snapshot")
	}
}

func TestCorruptSnapshotRebuilds(t *testing.T) {
	dir := t.TempDir()
	s := NewPersistent(dir)
	if _, err := s.Build("StoreDemo", storeApp, Options{}); err != nil {
		t.Fatal(err)
	}
	files, _ := os.ReadDir(dir)
	for _, f := range files {
		if err := os.WriteFile(dir+"/"+f.Name(), []byte("corrupt"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fresh := NewPersistent(dir)
	b, err := fresh.Build("StoreDemo", storeApp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.FromSnapshot {
		t.Fatal("corrupt snapshot was trusted")
	}
	if b.RipStats.Clicks == 0 {
		t.Fatal("corrupt snapshot did not trigger a re-rip")
	}
}

// TestSnapshotSaveFailureKeepsBuild: persistence failing must not discard a
// completed build — the model is returned and cached, with the save error
// recorded for callers that asked for persistence.
func TestSnapshotSaveFailureKeepsBuild(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// dir nests under a regular file, so MkdirAll fails at save time.
	s := NewPersistent(filepath.Join(blocker, "snapshots"))
	b, err := s.Build("StoreDemo", storeApp, Options{})
	if err != nil {
		t.Fatalf("save failure propagated as build failure: %v", err)
	}
	if b.Model == nil || b.RipStats.Clicks == 0 {
		t.Fatal("build incomplete despite successful pipeline")
	}
	if b.SnapshotErr == nil {
		t.Fatal("save failure not recorded")
	}
	b2, err := s.Build("StoreDemo", storeApp, Options{})
	if err != nil || !b2.CacheHit {
		t.Fatalf("build with failed save was not cached: %v %+v", err, b2)
	}
}

func TestFailedBuildsRetry(t *testing.T) {
	s := New()
	// MaxNodes=2 forces the rip to abort.
	bad := Options{Rip: ung.Config{MaxNodes: 2}}
	if _, err := s.Build("StoreDemo", storeApp, bad); err == nil {
		t.Fatal("expected rip failure")
	}
	if s.Len() != 0 {
		t.Fatalf("failed build was cached (%d entries)", s.Len())
	}
	// The slot was dropped, so a workable configuration succeeds on retry.
	if _, err := s.Build("StoreDemo", storeApp, Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidate(t *testing.T) {
	s := New()
	m1, err := s.Model("StoreDemo", storeApp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Invalidate("StoreDemo", Options{})
	m2, err := s.Model("StoreDemo", storeApp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("invalidate did not drop the cached model")
	}
}
