package modelstore

import (
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/appkit"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/ung"
)

// storeApp builds a small ribbon application (a trimmed variant of the ung
// package's demo app) for store tests.
func storeApp() *appkit.App {
	a := appkit.New("StoreDemo")
	picker := a.ColorPicker("clr", "Colors", func(*appkit.App, string) {})
	home := a.Tab("tabHome", "Home")
	font := home.Group("grpFont", "Font")
	font.ToggleButton("btnBold", "Bold", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	font.MenuButton("btnFontColor", "Font Color", picker, func(*appkit.App) any { return "font" })
	ins := a.Tab("tabInsert", "Insert")
	dlg := a.NewDialog("dlgTable", "Insert Table")
	dlg.Panel().Spinner("spnRows", "Rows", 1, 10, 2, nil)
	dlg.AddOKCancel(nil)
	ins.Group("grpTables", "Tables").DialogButton("btnTable", "Table", dlg, nil)
	a.AddRibbonCollapse()
	a.Layout()
	return a
}

func TestCacheMissThenHit(t *testing.T) {
	s := New()
	var calls atomic.Int32
	factory := func() *appkit.App {
		calls.Add(1)
		return storeApp()
	}

	b1, err := s.Build("StoreDemo", factory, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b1.CacheHit || b1.FromSnapshot {
		t.Fatalf("first build flagged as cached: %+v", b1)
	}
	if b1.RipStats.Clicks == 0 {
		t.Fatal("first build did not rip")
	}
	after := calls.Load()

	b2, err := s.Build("StoreDemo", factory, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !b2.CacheHit {
		t.Fatal("second build missed the cache")
	}
	if b2.Model != b1.Model {
		t.Fatal("cache returned a different model")
	}
	if calls.Load() != after {
		t.Fatalf("cache hit invoked the factory (%d → %d calls)", after, calls.Load())
	}
	if s.Len() != 1 {
		t.Fatalf("store holds %d entries, want 1", s.Len())
	}
	// Token accounting is an offline artifact too: computed at build time,
	// carried unchanged by warm hits so sessions never re-serialize.
	if b1.CoreTokens <= 0 || b1.FullTokens < b1.CoreTokens {
		t.Fatalf("implausible token accounting: core=%d full=%d", b1.CoreTokens, b1.FullTokens)
	}
	if b2.CoreTokens != b1.CoreTokens || b2.FullTokens != b1.FullTokens {
		t.Fatalf("warm hit changed token accounting: %+v vs %+v", b2, b1)
	}
}

func TestDifferentFingerprintsMiss(t *testing.T) {
	s := New()
	m1, err := s.Model("StoreDemo", storeApp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := s.Model("StoreDemo", storeApp, Options{Rip: ung.Config{MaxDepth: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("different rip configs shared a cache slot")
	}
	// Zero config and explicit defaults normalize to the same fingerprint.
	if Fingerprint("A", Options{}) != Fingerprint("A", Options{Rip: ung.Config{MaxDepth: 10, MaxNodes: 100000}}) {
		t.Fatal("default normalization broken")
	}
	// Workers never changes the result, so it must not split the cache.
	if Fingerprint("A", Options{}) != Fingerprint("A", Options{Workers: 8}) {
		t.Fatal("workers leaked into the fingerprint")
	}
}

// TestSingleflight: N concurrent Model calls for one key trigger exactly one
// offline build, and everyone gets the same model. Run under -race.
func TestSingleflight(t *testing.T) {
	s := New()
	var builds atomic.Int32
	factory := func() *appkit.App {
		builds.Add(1)
		return storeApp()
	}

	const n = 16
	results := make([]*describe.Model, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m, err := s.Model("StoreDemo", factory, Options{Workers: 2})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = m
		}(i)
	}
	wg.Wait()

	// One build = probe + per-worker instances; a second build would at
	// least double the count. With Workers=2 a single build makes exactly
	// 3 factory calls (probe + 2 workers).
	if got := builds.Load(); got != 3 {
		t.Fatalf("factory called %d times, want 3 (one singleflighted parallel build)", got)
	}
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatalf("caller %d got a different model", i)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	dir := t.TempDir()

	cold := NewPersistent(dir)
	b1, err := cold.Build("StoreDemo", storeApp, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if b1.FromSnapshot {
		t.Fatal("cold build claims a snapshot")
	}
	files, err := os.ReadDir(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("snapshot not written: %v %d", err, len(files))
	}

	// A new store over the same directory rebuilds from the snapshot:
	// zero rip clicks, identical serialized topology.
	warm := NewPersistent(dir)
	var calls atomic.Int32
	b2, err := warm.Build("StoreDemo", func() *appkit.App {
		calls.Add(1)
		return storeApp()
	}, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !b2.FromSnapshot {
		t.Fatal("warm build did not use the snapshot")
	}
	if b2.RipStats.Clicks != 0 {
		t.Fatalf("warm build spent %d rip clicks, want 0", b2.RipStats.Clicks)
	}
	if calls.Load() != 0 {
		t.Fatalf("warm build invoked the factory %d times", calls.Load())
	}
	want := b1.Model.Serialize(describe.FullOptions())
	got := b2.Model.Serialize(describe.FullOptions())
	if want != got {
		t.Fatal("snapshot build serializes differently from the fresh build")
	}
	if b1.Model.NodeCount() != b2.Model.NodeCount() {
		t.Fatal("identifier assignment differs")
	}
}

// TestSnapshotSurvivesThresholdChange: the snapshot is keyed by the rip
// fingerprint, so a different externalization threshold (a different model)
// still reuses the ripped graph from disk.
func TestSnapshotSurvivesThresholdChange(t *testing.T) {
	dir := t.TempDir()
	if _, err := NewPersistent(dir).Build("StoreDemo", storeApp, Options{}); err != nil {
		t.Fatal(err)
	}
	b, err := NewPersistent(dir).Build("StoreDemo", storeApp,
		Options{Transform: forest.Options{CloneThreshold: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if !b.FromSnapshot {
		t.Fatal("threshold change discarded the ripped-graph snapshot")
	}
}

func TestCorruptSnapshotRebuilds(t *testing.T) {
	dir := t.TempDir()
	s := NewPersistent(dir)
	if _, err := s.Build("StoreDemo", storeApp, Options{}); err != nil {
		t.Fatal(err)
	}
	files, _ := os.ReadDir(dir)
	for _, f := range files {
		if err := os.WriteFile(dir+"/"+f.Name(), []byte("corrupt"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	fresh := NewPersistent(dir)
	b, err := fresh.Build("StoreDemo", storeApp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.FromSnapshot {
		t.Fatal("corrupt snapshot was trusted")
	}
	if b.RipStats.Clicks == 0 {
		t.Fatal("corrupt snapshot did not trigger a re-rip")
	}
}

// TestSnapshotBinaryDefault pins the format switch's payoff: a persistent
// store writes compact binary snapshots (.ungb) by default, and the build's
// budget cost is the binary size — strictly smaller than the JSON form, so
// the same byte budget holds more warm models.
func TestSnapshotBinaryDefault(t *testing.T) {
	dir := t.TempDir()
	s := NewPersistent(dir)
	b, err := s.Build("StoreDemo", storeApp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("snapshot not written: %v %d", err, len(files))
	}
	if filepath.Ext(files[0].Name()) != ".ungb" {
		t.Errorf("default snapshot %q is not binary", files[0].Name())
	}
	jsonData, err := ung.Encode(b.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if b.SnapshotBytes >= int64(len(jsonData)) {
		t.Errorf("binary cost %d not smaller than JSON %d", b.SnapshotBytes, len(jsonData))
	}
	data, err := os.ReadFile(filepath.Join(dir, files[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(data)) != b.SnapshotBytes {
		t.Errorf("budget cost %d does not match the snapshot payload %d", b.SnapshotBytes, len(data))
	}
}

// TestSnapshotFormatJSON: the debug format writes greppable .json files and
// accounts cost at the JSON size.
func TestSnapshotFormatJSON(t *testing.T) {
	dir := t.TempDir()
	s := NewPersistent(dir)
	s.SetSnapshotFormat(FormatJSON)
	b, err := s.Build("StoreDemo", storeApp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	files, err := os.ReadDir(dir)
	if err != nil || len(files) != 1 {
		t.Fatalf("snapshot not written: %v %d", err, len(files))
	}
	if filepath.Ext(files[0].Name()) != ".json" {
		t.Errorf("JSON-format snapshot %q is not .json", files[0].Name())
	}
	jsonData, err := ung.Encode(b.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if b.SnapshotBytes != int64(len(jsonData)) {
		t.Errorf("JSON-format cost %d, want the JSON size %d", b.SnapshotBytes, len(jsonData))
	}
}

// TestLegacyJSONSnapshotLoads: a directory written before the binary default
// switched (JSON files only) still gives zero-rip-click reloads — the loader
// falls back to the other format's file and sniffs the payload.
func TestLegacyJSONSnapshotLoads(t *testing.T) {
	dir := t.TempDir()
	legacy := NewPersistent(dir)
	legacy.SetSnapshotFormat(FormatJSON)
	if _, err := legacy.Build("StoreDemo", storeApp, Options{}); err != nil {
		t.Fatal(err)
	}

	s := NewPersistent(dir) // binary default
	var calls atomic.Int32
	b, err := s.Build("StoreDemo", func() *appkit.App {
		calls.Add(1)
		return storeApp()
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !b.FromSnapshot || b.RipStats.Clicks != 0 || calls.Load() != 0 {
		t.Fatalf("legacy JSON snapshot not reused: %+v (%d factory calls)", b, calls.Load())
	}
}

func TestParseSnapshotFormat(t *testing.T) {
	for in, want := range map[string]SnapshotFormat{"binary": FormatBinary, "json": FormatJSON} {
		got, err := ParseSnapshotFormat(in)
		if err != nil || got != want {
			t.Errorf("ParseSnapshotFormat(%q) = %v, %v", in, got, err)
		}
		if got.String() != in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), in)
		}
	}
	if _, err := ParseSnapshotFormat("yaml"); err == nil {
		t.Error("unknown format accepted")
	}
}

// TestSnapshotSaveFailureKeepsBuild: persistence failing must not discard a
// completed build — the model is returned and cached, with the save error
// recorded for callers that asked for persistence.
func TestSnapshotSaveFailureKeepsBuild(t *testing.T) {
	blocker := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(blocker, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	// dir nests under a regular file, so MkdirAll fails at save time.
	s := NewPersistent(filepath.Join(blocker, "snapshots"))
	b, err := s.Build("StoreDemo", storeApp, Options{})
	if err != nil {
		t.Fatalf("save failure propagated as build failure: %v", err)
	}
	if b.Model == nil || b.RipStats.Clicks == 0 {
		t.Fatal("build incomplete despite successful pipeline")
	}
	if b.SnapshotErr == nil {
		t.Fatal("save failure not recorded")
	}
	b2, err := s.Build("StoreDemo", storeApp, Options{})
	if err != nil || !b2.CacheHit {
		t.Fatalf("build with failed save was not cached: %v %+v", err, b2)
	}
}

func TestFailedBuildsRetry(t *testing.T) {
	s := New()
	// MaxNodes=2 forces the rip to abort.
	bad := Options{Rip: ung.Config{MaxNodes: 2}}
	if _, err := s.Build("StoreDemo", storeApp, bad); err == nil {
		t.Fatal("expected rip failure")
	}
	if s.Len() != 0 {
		t.Fatalf("failed build was cached (%d entries)", s.Len())
	}
	// The slot was dropped, so a workable configuration succeeds on retry.
	if _, err := s.Build("StoreDemo", storeApp, Options{}); err != nil {
		t.Fatal(err)
	}
}

// Budget / LRU / Stats ------------------------------------------------------

// modelCost builds once in a throwaway store and reports one model's
// encoded-snapshot cost, so budget tests can size budgets in model units.
func modelCost(t *testing.T) int64 {
	t.Helper()
	b, err := New().Build("CostProbe", storeApp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.SnapshotBytes <= 0 {
		t.Fatalf("build reported no snapshot cost: %+v", b)
	}
	return b.SnapshotBytes
}

func TestBudgetEvictsLRU(t *testing.T) {
	cost := modelCost(t)
	dir := t.TempDir()
	// Room for exactly two models (all test apps share one structure, so
	// one cost fits all).
	s := NewBudgeted(dir, 2*cost)

	for _, app := range []string{"A", "B"} {
		if _, err := s.Build(app, storeApp, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Evictions != 0 || st.ResidentModels != 2 || st.ResidentBytes != 2*cost {
		t.Fatalf("two models should fit the budget exactly: %+v", st)
	}

	// Third model: A is the least recently used and must go.
	if _, err := s.Build("C", storeApp, Options{}); err != nil {
		t.Fatal(err)
	}
	st = s.Stats()
	if st.Evictions != 1 || st.ResidentModels != 2 {
		t.Fatalf("third model should evict exactly one: %+v", st)
	}
	if st.ResidentBytes > s.Budget() {
		t.Fatalf("resident %d over budget %d", st.ResidentBytes, s.Budget())
	}
	b, err := s.Build("B", storeApp, Options{}) // B stayed warm
	if err != nil || !b.CacheHit {
		t.Fatalf("B should still be warm: %v %+v", err, b)
	}
	ba, err := s.Build("A", storeApp, Options{}) // A was evicted
	if err != nil || ba.CacheHit {
		t.Fatalf("A should have been evicted: %v %+v", err, ba)
	}
	// The eviction dropped only the memory entry: A's snapshot file is
	// still on disk, so the reload spends zero rip clicks.
	if !ba.FromSnapshot || ba.RipStats.Clicks != 0 {
		t.Fatalf("evicted model should reload from snapshot with zero rip clicks: %+v", ba)
	}
	if st := s.Stats(); st.SnapshotLoads == 0 {
		t.Fatalf("snapshot reload not counted: %+v", st)
	}
}

// TestBudgetRecencyOrder: a warm hit refreshes an entry's LRU position, so
// the next eviction picks the stale entry instead.
func TestBudgetRecencyOrder(t *testing.T) {
	cost := modelCost(t)
	s := NewBudgeted(t.TempDir(), 2*cost)
	for _, app := range []string{"A", "B"} {
		if _, err := s.Build(app, storeApp, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	// Touch A: B becomes the LRU entry.
	if b, err := s.Build("A", storeApp, Options{}); err != nil || !b.CacheHit {
		t.Fatalf("warm hit expected: %v %+v", err, b)
	}
	if _, err := s.Build("C", storeApp, Options{}); err != nil {
		t.Fatal(err)
	}
	if b, err := s.Build("A", storeApp, Options{}); err != nil || !b.CacheHit {
		t.Fatalf("recently touched A was evicted: %v %+v", err, b)
	}
	if b, err := s.Build("B", storeApp, Options{}); err != nil || b.CacheHit {
		t.Fatalf("LRU entry B should have been evicted: %v %+v", err, b)
	}
}

// TestBudgetSmallerThanOneModel: the build still succeeds and is served to
// the caller (and any singleflight waiters), but nothing stays resident.
func TestBudgetSmallerThanOneModel(t *testing.T) {
	s := NewBudgeted("", 1) // in-memory: re-access must re-rip
	b1, err := s.Build("A", storeApp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b1.Model == nil || b1.RipStats.Clicks == 0 {
		t.Fatalf("over-budget build incomplete: %+v", b1)
	}
	if st := s.Stats(); st.ResidentModels != 0 || st.ResidentBytes != 0 {
		t.Fatalf("over-budget model was cached: %+v", st)
	}
	if s.Len() != 0 {
		t.Fatalf("store holds %d entries, want 0", s.Len())
	}
	b2, err := s.Build("A", storeApp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b2.CacheHit || b2.RipStats.Clicks == 0 {
		t.Fatalf("re-access of an uncacheable model should rebuild: %+v", b2)
	}
}

// TestBudgetConcurrentTightBudget hammers a budget that holds only one of
// three models from many goroutines; run under -race. Every call must get a
// usable model and the store must end within budget.
func TestBudgetConcurrentTightBudget(t *testing.T) {
	cost := modelCost(t)
	s := NewBudgeted(t.TempDir(), cost+cost/2)
	apps := []string{"A", "B", "C"}
	var wg sync.WaitGroup
	for i := 0; i < 12; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				m, err := s.Model(apps[(i+j)%len(apps)], storeApp, Options{})
				if err != nil {
					t.Error(err)
					return
				}
				if m == nil {
					t.Error("nil model under tight budget")
					return
				}
			}
		}(i)
	}
	wg.Wait()
	st := s.Stats()
	if st.ResidentBytes > s.Budget() {
		t.Fatalf("resident %d over budget %d after quiescence: %+v", st.ResidentBytes, s.Budget(), st)
	}
	if st.Evictions == 0 {
		t.Fatalf("tight budget never evicted: %+v", st)
	}
	if st.Hits+st.Misses < 12*4 {
		t.Fatalf("lookup accounting lost calls: %+v", st)
	}
}

func TestStatsCounters(t *testing.T) {
	s := New()
	if _, err := s.Build("A", storeApp, Options{}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s.Build("A", storeApp, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 3 {
		t.Fatalf("want 1 miss / 3 hits, got %+v", st)
	}
	if st.SnapshotLoads != 0 || st.Evictions != 0 {
		t.Fatalf("in-memory unbudgeted store should neither load snapshots nor evict: %+v", st)
	}
	if st.ResidentModels != 1 || st.ResidentBytes <= 0 {
		t.Fatalf("resident accounting wrong: %+v", st)
	}
}

func TestInvalidateAdjustsResident(t *testing.T) {
	s := New()
	if _, err := s.Build("A", storeApp, Options{}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.ResidentBytes <= 0 {
		t.Fatalf("no resident bytes after build: %+v", st)
	}
	s.Invalidate("A", Options{})
	if st := s.Stats(); st.ResidentBytes != 0 || st.ResidentModels != 0 {
		t.Fatalf("invalidate left resident accounting behind: %+v", st)
	}
}

func TestSetBudgetEvictsImmediately(t *testing.T) {
	cost := modelCost(t)
	s := NewPersistent(t.TempDir())
	for _, app := range []string{"A", "B", "C"} {
		if _, err := s.Build(app, storeApp, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	s.SetBudget(cost)
	st := s.Stats()
	if st.ResidentModels != 1 || st.Evictions != 2 {
		t.Fatalf("SetBudget should shrink the working set to one model: %+v", st)
	}
	if st.ResidentBytes > cost {
		t.Fatalf("resident %d over new budget %d", st.ResidentBytes, cost)
	}
}

func TestInvalidate(t *testing.T) {
	s := New()
	m1, err := s.Model("StoreDemo", storeApp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Invalidate("StoreDemo", Options{})
	m2, err := s.Model("StoreDemo", storeApp, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if m1 == m2 {
		t.Fatal("invalidate did not drop the cached model")
	}
}
