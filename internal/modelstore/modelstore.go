// Package modelstore is the shared cache of offline artifacts (paper §3.2's
// offline phase). The rip→transform→identify pipeline is the dominant cost
// of the system — the paper budgets hours of automated modeling per
// application — while the resulting model is immutable and reusable across
// every session of that application. The store therefore memoizes the whole
// pipeline behind a key of application name + build-configuration
// fingerprint, with four properties:
//
//   - Concurrency-safe singleflight: N concurrent Model calls for the same
//     key trigger exactly one offline build; the rest block and share it.
//   - Versioned snapshots: a persistent store writes the ripped graph to
//     disk and later runs rebuild the model from the snapshot with zero
//     rip clicks (transform + identify are cheap; ripping is not). The
//     default encoding is the compact binary codec (ung.EncodeBinary);
//     FormatJSON keeps the greppable JSON form as a debug option. Loading
//     sniffs the format, so a directory of older JSON snapshots keeps
//     working after the default switched.
//   - Deterministic results: the build uses the parallel ripper, which is
//     byte-identical to the sequential one, so cached, snapshotted, and
//     fresh builds all yield the same identifier assignment.
//   - Bounded residency: a serving-tier store can cap the warm working set
//     with a byte budget (per-model cost = encoded snapshot size); the
//     least-recently-used warm entries are evicted beyond it, in-flight
//     builds are pinned, and Stats reports the traffic counters. Eviction
//     drops only the in-memory entry — snapshot files stay on disk, so a
//     persistent store reloads an evicted model with zero rip clicks.
package modelstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/appkit"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/ung"
)

// SnapshotVersion is bumped whenever the snapshot encoding or the pipeline
// semantics change; stale snapshots are ignored and rebuilt.
const SnapshotVersion = 1

// SnapshotFormat selects the on-disk snapshot encoding. The zero value is
// the compact binary codec — per-model budget cost is the encoded size, so
// the smaller codec multiplies the effective warm-cache budget. FormatJSON
// keeps the greppable form for debugging. The format governs what a store
// *writes* and what it accounts as cost; loading always sniffs, so either
// store reads either format's files.
type SnapshotFormat int

const (
	// FormatBinary writes ung.EncodeBinary snapshots (.ungb).
	FormatBinary SnapshotFormat = iota
	// FormatJSON writes ung.Encode snapshots (.json), the debug format.
	FormatJSON
)

// ParseSnapshotFormat maps the -snapshot-format flag values to a format.
func ParseSnapshotFormat(s string) (SnapshotFormat, error) {
	switch s {
	case "binary":
		return FormatBinary, nil
	case "json":
		return FormatJSON, nil
	}
	return 0, fmt.Errorf("modelstore: unknown snapshot format %q (want binary or json)", s)
}

// String returns the flag spelling of the format.
func (f SnapshotFormat) String() string {
	if f == FormatJSON {
		return "json"
	}
	return "binary"
}

// ext is the snapshot file extension for the format.
func (f SnapshotFormat) ext() string {
	if f == FormatJSON {
		return ".json"
	}
	return ".ungb"
}

// encode serializes a graph in the format.
func (f SnapshotFormat) encode(g *ung.Graph) ([]byte, error) {
	if f == FormatJSON {
		return ung.Encode(g)
	}
	return ung.EncodeBinary(g)
}

// Options configures one offline build. Workers selects the rip worker pool
// size and never affects the result, so it is excluded from the fingerprint.
type Options struct {
	Rip       ung.Config
	Transform forest.Options
	Workers   int
	// NewExpander, when set, supplies the expansion engine for a rip — e.g.
	// a bench.RemoteExpander sharding frame expansions across serving
	// replicas — and the build runs ung.RipDispatched with it instead of the
	// in-process pool (Workers is then ignored). The expander seam is
	// byte-identical to the sequential rip by contract, so, like Workers,
	// the hook never affects the result and is excluded from the
	// fingerprint. Called once per cache miss; the store closes the expander
	// via RipDispatched.
	NewExpander func(app string) (ung.Expander, error)
}

// Fingerprint canonically identifies a build configuration for an
// application. Two builds with equal fingerprints yield identical models.
// Zero-valued knobs are normalized to the pipeline defaults first, so an
// explicit default and a zero value share one cache slot.
func Fingerprint(app string, opt Options) string {
	tf := opt.Transform.Normalized()
	return fmt.Sprintf("%s|clone=%d", RipFingerprint(app, opt.Rip), tf.CloneThreshold)
}

// RipFingerprint identifies the ripped graph alone — the graph depends only
// on the rip configuration, so disk snapshots are keyed by it and survive
// transform-threshold changes (a threshold sweep re-rips nothing).
func RipFingerprint(app string, cfg ung.Config) string {
	rip := cfg.Normalized()
	return fmt.Sprintf("%s|v%d|depth=%d|nodes=%d",
		app, SnapshotVersion, rip.MaxDepth, rip.MaxNodes)
}

// Build is the complete outcome of one store lookup.
type Build struct {
	Model          *describe.Model
	Graph          *ung.Graph
	RipStats       ung.Stats
	TransformStats forest.Stats
	// CacheHit: served from the in-memory cache (or joined an in-flight
	// build); no pipeline work was performed by this call.
	CacheHit bool
	// FromSnapshot: the graph was loaded from a disk snapshot; transform
	// and identify ran, but zero rip clicks were spent.
	FromSnapshot bool
	// SnapshotErr records a failed snapshot save. The build itself
	// succeeded and is cached and returned — discarding a completed rip
	// because persistence failed would be strictly worse — but callers
	// that asked for persistence should surface this.
	SnapshotErr error
	// SnapshotBytes is the encoded size of the ripped graph — the build's
	// budget cost, computed when the graph is encoded at build time or
	// from the snapshot payload at load time. It is computed for
	// in-memory stores too, so Stats can always report resident bytes. -1
	// means the encoding failed and the cost is unknown; a budgeted store
	// serves such a build without caching it.
	SnapshotBytes int64
	// CoreTokens and FullTokens are the LLM token costs of the model's
	// core and full serializations — offline artifacts like the model
	// itself, computed once per build and cached with the entry so warm
	// session starts never re-serialize the topology.
	CoreTokens int
	FullTokens int
}

// Stats counts store traffic and the warm working set. All counters are
// cumulative since construction; ResidentBytes/ResidentModels describe the
// current cache contents.
type Stats struct {
	// Hits counts lookups served from memory, including callers that
	// joined an in-flight build.
	Hits int64 `json:"hits"`
	// Misses counts lookups that had to start a build.
	Misses int64 `json:"misses"`
	// SnapshotLoads counts builds whose graph came from a disk snapshot
	// (zero rip clicks spent).
	SnapshotLoads int64 `json:"snapshot_loads"`
	// Evictions counts warm entries dropped to fit the budget.
	Evictions int64 `json:"evictions"`
	// ResidentBytes is the total snapshot cost of the cached builds.
	ResidentBytes int64 `json:"resident_bytes"`
	// ResidentModels is the number of cached completed builds.
	ResidentModels int `json:"resident_models"`
}

// Store memoizes offline builds. The zero value is not usable; construct
// with New, NewPersistent, or NewBudgeted.
type Store struct {
	dir    string         // "" = in-memory only
	format SnapshotFormat // encoding for writes and cost accounting

	mu      sync.Mutex
	entries map[string]*entry
	budget  int64  // max ResidentBytes; 0 = unlimited
	clock   uint64 // LRU clock, bumped on every lookup
	stats   Stats
}

// entry is one singleflight slot: the first caller builds, everyone else
// waits on ready.
type entry struct {
	ready chan struct{}
	build Build
	err   error
	// building pins the entry: an in-flight build is never evicted (its
	// cost is unknown and a waiter queue hangs off ready). A burst of
	// concurrent builds can therefore transiently overshoot the budget;
	// the overshoot is reclaimed as the builds complete.
	building bool
	cost     int64
	used     uint64 // LRU stamp: clock value of the last touch
}

// New creates an in-memory store.
func New() *Store { return &Store{entries: make(map[string]*entry)} }

// NewPersistent creates a store that additionally saves and reuses graph
// snapshots under dir (created on first save), written in the store's
// snapshot format (binary unless SetSnapshotFormat says otherwise).
func NewPersistent(dir string) *Store {
	s := New()
	s.dir = dir
	return s
}

// SetSnapshotFormat selects the encoding for snapshot writes and budget
// cost accounting. Call before the first Build; existing files in the other
// format still load (the loader sniffs), they are just no longer written.
func (s *Store) SetSnapshotFormat(f SnapshotFormat) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.format = f
}

// SnapshotFormat reports the store's write/accounting format.
func (s *Store) SnapshotFormat() SnapshotFormat {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.format
}

// NewBudgeted creates a store whose warm entries hold at most budget bytes
// of encoded graph snapshots (0 = unlimited), LRU-evicting beyond that. A
// non-empty dir additionally persists snapshots, which makes eviction
// cheap to undo: a re-access rebuilds from disk with zero rip clicks.
func NewBudgeted(dir string, budget int64) *Store {
	s := New()
	s.dir = dir
	s.budget = budget
	return s
}

// SetBudget re-caps the resident bytes (0 = unlimited) and evicts
// immediately if the working set no longer fits.
func (s *Store) SetBudget(budget int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.budget = budget
	s.evictLocked()
}

// Budget reports the configured resident-byte cap (0 = unlimited).
func (s *Store) Budget() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.budget
}

// Stats returns a snapshot of the traffic counters and resident set.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	for _, e := range s.entries {
		if !e.building {
			st.ResidentModels++
		}
	}
	return st
}

// Model returns the memoized topology model for the application, building it
// on first use. The factory must return a fresh throwaway instance per call;
// it is invoked only on a cache miss (and once per rip worker).
func (s *Store) Model(app string, factory func() *appkit.App, opt Options) (*describe.Model, error) {
	b, err := s.Build(app, factory, opt)
	if err != nil {
		return nil, err
	}
	return b.Model, nil
}

// Build is Model with full build provenance.
func (s *Store) Build(app string, factory func() *appkit.App, opt Options) (Build, error) {
	key := Fingerprint(app, opt)

	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.stats.Hits++
		s.clock++
		e.used = s.clock
		s.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return Build{}, e.err
		}
		b := e.build
		b.CacheHit = true
		return b, nil
	}
	s.stats.Misses++
	s.clock++
	e := &entry{ready: make(chan struct{}), building: true, used: s.clock}
	s.entries[key] = e
	s.mu.Unlock()

	e.build, e.err = s.build(app, factory, opt)

	s.mu.Lock()
	// The slot may have been Invalidated (and possibly replaced) while the
	// build ran; only account for it if it is still ours.
	if s.entries[key] == e {
		e.building = false
		e.cost = e.build.SnapshotBytes
		switch {
		case e.err != nil:
			// Failed builds are not cached: drop the slot so a later
			// call can retry.
			delete(s.entries, key)
		case s.budget > 0 && (e.cost < 0 || e.cost > s.budget):
			// The model alone exceeds the budget — or its cost is
			// unknown because the encoding failed, which must not
			// become an invisible resident: serve it to this call and
			// its waiters, but keep nothing resident.
			delete(s.entries, key)
		default:
			if e.cost < 0 {
				e.cost = 0 // unknown cost in an unbudgeted store
			}
			s.stats.ResidentBytes += e.cost
			s.evictLocked()
		}
	}
	s.mu.Unlock()
	close(e.ready)
	return e.build, e.err
}

// evictLocked drops least-recently-used warm entries until the resident
// bytes fit the budget. In-flight builds are pinned and skipped; if only
// pinned entries remain the store stays transiently over budget.
func (s *Store) evictLocked() {
	if s.budget <= 0 {
		return
	}
	for s.stats.ResidentBytes > s.budget {
		victimKey := ""
		var victim *entry
		for k, e := range s.entries {
			if e.building {
				continue
			}
			if victim == nil || e.used < victim.used {
				victimKey, victim = k, e
			}
		}
		if victim == nil {
			return
		}
		delete(s.entries, victimKey)
		s.stats.ResidentBytes -= victim.cost
		s.stats.Evictions++
	}
}

// Len reports the number of completed or in-flight cached builds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Invalidate drops the cached build for one configuration (snapshots on
// disk are left alone; delete the file to force a full re-rip).
func (s *Store) Invalidate(app string, opt Options) {
	s.mu.Lock()
	defer s.mu.Unlock()
	key := Fingerprint(app, opt)
	if e, ok := s.entries[key]; ok {
		if !e.building {
			s.stats.ResidentBytes -= e.cost
		}
		delete(s.entries, key)
	}
}

// build runs the pipeline: snapshot load if available, else rip (dispatched
// to opt.NewExpander's engine when set, else parallel when opt.Workers > 1),
// then transform + identify, then snapshot save.
func (s *Store) build(app string, factory func() *appkit.App, opt Options) (Build, error) {
	var b Build

	ripKey := RipFingerprint(app, opt.Rip)
	if g, n, ok := s.loadSnapshot(ripKey); ok {
		b.Graph = g
		b.FromSnapshot = true
		b.SnapshotBytes = n
		s.mu.Lock()
		s.stats.SnapshotLoads++
		s.mu.Unlock()
	} else if opt.NewExpander != nil {
		ex, err := opt.NewExpander(app)
		if err != nil {
			return Build{}, fmt.Errorf("modelstore: rip %s: %w", app, err)
		}
		b.Graph, b.RipStats, err = ung.RipDispatched(factory(), opt.Rip, ex)
		if err != nil {
			return Build{}, fmt.Errorf("modelstore: rip %s: %w", app, err)
		}
	} else {
		var err error
		b.Graph, b.RipStats, err = ung.RipParallel(factory, opt.Rip, opt.Workers)
		if err != nil {
			return Build{}, fmt.Errorf("modelstore: rip %s: %w", app, err)
		}
	}

	f, ts, err := forest.Transform(b.Graph, opt.Transform)
	if err != nil {
		return Build{}, fmt.Errorf("modelstore: transform %s: %w", app, err)
	}
	b.TransformStats = ts
	b.Model = describe.NewModel(f)
	b.CoreTokens = describe.Tokens(b.Model.Core())
	b.FullTokens = describe.Tokens(b.Model.Full())

	if !b.FromSnapshot {
		// Encode once in the active format: the encoding is the entry's
		// budget cost, the resident-bytes accounting, and, for persistent
		// stores, the snapshot payload.
		data, err := s.SnapshotFormat().encode(b.Graph)
		switch {
		case err != nil:
			b.SnapshotBytes = -1 // cost unknown; a budget refuses to cache this
			if s.dir != "" {
				b.SnapshotErr = fmt.Errorf("modelstore: snapshot %s: %w", app, err)
			}
		default:
			b.SnapshotBytes = int64(len(data))
			if s.dir != "" {
				if err := s.writeSnapshot(ripKey, data); err != nil {
					b.SnapshotErr = fmt.Errorf("modelstore: snapshot %s: %w", app, err)
				}
			}
		}
	}
	return b, nil
}

// snapshotPath keeps one file per fingerprint and format; the fingerprint's
// separators are flattened into a safe file name and the extension is the
// format's (.ungb or .json).
func (s *Store) snapshotPath(key string, f SnapshotFormat) string {
	safe := make([]rune, 0, len(key))
	for _, r := range key {
		switch r {
		case '|', '=', '/', '\\', ' ':
			safe = append(safe, '-')
		default:
			safe = append(safe, r)
		}
	}
	return filepath.Join(s.dir, string(safe)+f.ext())
}

// loadSnapshot reads the snapshot for key, preferring the active format's
// file but falling back to the other format's — a directory written before
// the binary default switched keeps its zero-rip-click reloads. Decoding
// sniffs the payload (ung.DecodeAny), so even a misnamed file loads. The
// reported size is the loaded payload's, whichever format it was in.
func (s *Store) loadSnapshot(key string) (*ung.Graph, int64, bool) {
	if s.dir == "" {
		return nil, 0, false
	}
	active := s.SnapshotFormat()
	other := FormatJSON
	if active == FormatJSON {
		other = FormatBinary
	}
	for _, f := range [2]SnapshotFormat{active, other} {
		data, err := os.ReadFile(s.snapshotPath(key, f))
		if err != nil {
			continue
		}
		g, err := ung.DecodeAny(data)
		if err != nil {
			continue // corrupt or stale snapshot: try the other, else rebuild
		}
		return g, int64(len(data)), true
	}
	return nil, 0, false
}

func (s *Store) writeSnapshot(key string, data []byte) error {
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	path := s.snapshotPath(key, s.SnapshotFormat())
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
