// Package modelstore is the shared cache of offline artifacts (paper §3.2's
// offline phase). The rip→transform→identify pipeline is the dominant cost
// of the system — the paper budgets hours of automated modeling per
// application — while the resulting model is immutable and reusable across
// every session of that application. The store therefore memoizes the whole
// pipeline behind a key of application name + build-configuration
// fingerprint, with three properties:
//
//   - Concurrency-safe singleflight: N concurrent Model calls for the same
//     key trigger exactly one offline build; the rest block and share it.
//   - Versioned JSON snapshots: a persistent store writes the ripped graph
//     to disk and later runs rebuild the model from the snapshot with zero
//     rip clicks (transform + identify are cheap; ripping is not).
//   - Deterministic results: the build uses the parallel ripper, which is
//     byte-identical to the sequential one, so cached, snapshotted, and
//     fresh builds all yield the same identifier assignment.
package modelstore

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/appkit"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/ung"
)

// SnapshotVersion is bumped whenever the snapshot encoding or the pipeline
// semantics change; stale snapshots are ignored and rebuilt.
const SnapshotVersion = 1

// Options configures one offline build. Workers selects the rip worker pool
// size and never affects the result, so it is excluded from the fingerprint.
type Options struct {
	Rip       ung.Config
	Transform forest.Options
	Workers   int
}

// Fingerprint canonically identifies a build configuration for an
// application. Two builds with equal fingerprints yield identical models.
// Zero-valued knobs are normalized to the pipeline defaults first, so an
// explicit default and a zero value share one cache slot.
func Fingerprint(app string, opt Options) string {
	tf := opt.Transform.Normalized()
	return fmt.Sprintf("%s|clone=%d", RipFingerprint(app, opt.Rip), tf.CloneThreshold)
}

// RipFingerprint identifies the ripped graph alone — the graph depends only
// on the rip configuration, so disk snapshots are keyed by it and survive
// transform-threshold changes (a threshold sweep re-rips nothing).
func RipFingerprint(app string, cfg ung.Config) string {
	rip := cfg.Normalized()
	return fmt.Sprintf("%s|v%d|depth=%d|nodes=%d",
		app, SnapshotVersion, rip.MaxDepth, rip.MaxNodes)
}

// Build is the complete outcome of one store lookup.
type Build struct {
	Model          *describe.Model
	Graph          *ung.Graph
	RipStats       ung.Stats
	TransformStats forest.Stats
	// CacheHit: served from the in-memory cache (or joined an in-flight
	// build); no pipeline work was performed by this call.
	CacheHit bool
	// FromSnapshot: the graph was loaded from a disk snapshot; transform
	// and identify ran, but zero rip clicks were spent.
	FromSnapshot bool
	// SnapshotErr records a failed snapshot save. The build itself
	// succeeded and is cached and returned — discarding a completed rip
	// because persistence failed would be strictly worse — but callers
	// that asked for persistence should surface this.
	SnapshotErr error
}

// Store memoizes offline builds. The zero value is not usable; construct
// with New or NewPersistent.
type Store struct {
	dir string // "" = in-memory only

	mu      sync.Mutex
	entries map[string]*entry
}

// entry is one singleflight slot: the first caller builds, everyone else
// waits on ready.
type entry struct {
	ready chan struct{}
	build Build
	err   error
}

// New creates an in-memory store.
func New() *Store { return &Store{entries: make(map[string]*entry)} }

// NewPersistent creates a store that additionally saves and reuses JSON
// graph snapshots under dir (created on first save).
func NewPersistent(dir string) *Store {
	s := New()
	s.dir = dir
	return s
}

// Model returns the memoized topology model for the application, building it
// on first use. The factory must return a fresh throwaway instance per call;
// it is invoked only on a cache miss (and once per rip worker).
func (s *Store) Model(app string, factory func() *appkit.App, opt Options) (*describe.Model, error) {
	b, err := s.Build(app, factory, opt)
	if err != nil {
		return nil, err
	}
	return b.Model, nil
}

// Build is Model with full build provenance.
func (s *Store) Build(app string, factory func() *appkit.App, opt Options) (Build, error) {
	key := Fingerprint(app, opt)

	s.mu.Lock()
	if e, ok := s.entries[key]; ok {
		s.mu.Unlock()
		<-e.ready
		if e.err != nil {
			return Build{}, e.err
		}
		b := e.build
		b.CacheHit = true
		return b, nil
	}
	e := &entry{ready: make(chan struct{})}
	s.entries[key] = e
	s.mu.Unlock()

	e.build, e.err = s.build(app, factory, opt)
	if e.err != nil {
		// Failed builds are not cached: drop the slot so a later call can
		// retry, then release the waiters.
		s.mu.Lock()
		delete(s.entries, key)
		s.mu.Unlock()
	}
	close(e.ready)
	return e.build, e.err
}

// Len reports the number of completed or in-flight cached builds.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Invalidate drops the cached build for one configuration (snapshots on
// disk are left alone; delete the file to force a full re-rip).
func (s *Store) Invalidate(app string, opt Options) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.entries, Fingerprint(app, opt))
}

// build runs the pipeline: snapshot load if available, else rip (parallel
// when opt.Workers > 1), then transform + identify, then snapshot save.
func (s *Store) build(app string, factory func() *appkit.App, opt Options) (Build, error) {
	var b Build

	ripKey := RipFingerprint(app, opt.Rip)
	if g, ok := s.loadSnapshot(ripKey); ok {
		b.Graph = g
		b.FromSnapshot = true
	} else {
		var err error
		b.Graph, b.RipStats, err = ung.RipParallel(factory, opt.Rip, opt.Workers)
		if err != nil {
			return Build{}, fmt.Errorf("modelstore: rip %s: %w", app, err)
		}
	}

	f, ts, err := forest.Transform(b.Graph, opt.Transform)
	if err != nil {
		return Build{}, fmt.Errorf("modelstore: transform %s: %w", app, err)
	}
	b.TransformStats = ts
	b.Model = describe.NewModel(f)

	if s.dir != "" && !b.FromSnapshot {
		if err := s.saveSnapshot(ripKey, b.Graph); err != nil {
			b.SnapshotErr = fmt.Errorf("modelstore: snapshot %s: %w", app, err)
		}
	}
	return b, nil
}

// snapshotPath keeps one file per fingerprint; the fingerprint's separators
// are flattened into a safe file name.
func (s *Store) snapshotPath(key string) string {
	safe := make([]rune, 0, len(key))
	for _, r := range key {
		switch r {
		case '|', '=', '/', '\\', ' ':
			safe = append(safe, '-')
		default:
			safe = append(safe, r)
		}
	}
	return filepath.Join(s.dir, string(safe)+".json")
}

func (s *Store) loadSnapshot(key string) (*ung.Graph, bool) {
	if s.dir == "" {
		return nil, false
	}
	data, err := os.ReadFile(s.snapshotPath(key))
	if err != nil {
		return nil, false
	}
	g, err := ung.Decode(data)
	if err != nil {
		return nil, false // corrupt or stale snapshot: rebuild from scratch
	}
	return g, true
}

func (s *Store) saveSnapshot(key string, g *ung.Graph) error {
	data, err := ung.Encode(g)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(s.dir, 0o755); err != nil {
		return err
	}
	path := s.snapshotPath(key)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}
