// Package forest transforms the UI Navigation Graph into a
// path-unambiguous topology (paper §3.2): first cycles are removed
// (back-edge elimination yields a single-source DAG), then merge nodes are
// resolved by cost-based selective externalization, producing a forest of
// one main tree plus shared subtrees connected through reference nodes.
//
// The naive alternative — cloning every merge node's substructure along all
// incoming edges — guarantees unique paths but explodes exponentially
// (Figure 4); the package computes that size too, for comparison.
package forest

import (
	"fmt"
	"math"

	"repro/internal/uia"
	"repro/internal/ung"
)

// Node is one position in a tree of the forest. A node with a non-empty
// RefTarget is a reference node: it stands for an externalized shared
// subtree and has no children of its own.
type Node struct {
	GID  string // originating UNG node id ("" only for synthetic roots)
	Name string
	Type uia.ControlType
	Desc string

	LargeEnum bool
	Context   string

	RefTarget string // UNG id of the shared subtree this reference points to

	Parent   *Node
	Children []*Node
}

// IsRef reports whether the node is a reference into a shared subtree.
func (n *Node) IsRef() bool { return n.RefTarget != "" }

// IsLeaf reports whether the node has no children and is not a reference.
// Leaves are the functional controls; non-leaves are navigation controls
// that the visit interface filters out of LLM output (paper §3.4).
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 && !n.IsRef() }

// Walk visits n and every descendant in depth-first order.
func (n *Node) Walk(visit func(*Node) bool) {
	if !visit(n) {
		return
	}
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Count returns the number of nodes in the subtree.
func (n *Node) Count() int {
	c := 0
	n.Walk(func(*Node) bool { c++; return true })
	return c
}

// Depth returns the height of the subtree (leaf = 1).
func (n *Node) Depth() int {
	max := 0
	for _, c := range n.Children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// PathFromRoot returns the chain of nodes from the tree root down to n,
// inclusive. Within a tree this path is unique — the path-unambiguity
// property the transformation exists to establish.
func (n *Node) PathFromRoot() []*Node {
	var rev []*Node
	for cur := n; cur != nil; cur = cur.Parent {
		rev = append(rev, cur)
	}
	out := make([]*Node, len(rev))
	for i, x := range rev {
		out[len(rev)-1-i] = x
	}
	return out
}

// Forest is the path-unambiguous topology: a main tree rooted at the
// application plus shared subtrees reachable through reference nodes. The
// entry map (reference node → subtree root) is implicit in RefTarget.
type Forest struct {
	App    string
	Main   *Node
	Shared map[string]*Node // UNG id of subtree root → tree
	// SharedOrder lists shared-subtree roots in externalization order.
	SharedOrder []string
}

// Tree returns the tree containing shared subtree id, or the main tree for
// the empty string.
func (f *Forest) Tree(id string) *Node {
	if id == "" {
		return f.Main
	}
	return f.Shared[id]
}

// NodeCount returns the total node count across the main tree and all
// shared subtrees.
func (f *Forest) NodeCount() int {
	n := f.Main.Count()
	for _, s := range f.Shared {
		n += s.Count()
	}
	return n
}

// Options tunes the transformation.
type Options struct {
	// CloneThreshold is the cost (in additional cloned nodes) above which
	// a merge node is externalized as a shared subtree instead of being
	// cloned along each incoming edge. Default 64.
	CloneThreshold int
}

// Normalized returns the options with the defaults filled in — the exact
// values a transform would use. Cache fingerprints build on it.
func (o Options) Normalized() Options {
	if o.CloneThreshold <= 0 {
		o.CloneThreshold = 64
	}
	return o
}

// Stats reports what the transformation did.
type Stats struct {
	GraphNodes       int
	GraphEdges       int
	BackEdgesRemoved int
	MergeNodes       int
	Externalized     int
	Cloned           int // merge nodes resolved by cloning
	ForestNodes      int
	SharedSubtrees   int
	MainTreeNodes    int
	// NaiveTreeNodes is the size of the fully-cloned single tree (Figure
	// 4's exploding alternative), saturating at MaxInt64.
	NaiveTreeNodes int64
}

// Transform converts a UNG into a path-unambiguous forest.
func Transform(g *ung.Graph, opt Options) (*Forest, Stats, error) {
	opt = opt.Normalized()
	var st Stats
	st.GraphNodes = g.NodeCount()
	st.GraphEdges = g.EdgeCount()

	dag, removed := decycle(g)
	st.BackEdgesRemoved = removed

	order, err := topoOrder(g, dag)
	if err != nil {
		return nil, st, err
	}

	indeg := make(map[string]int, len(dag))
	for _, outs := range dag {
		for _, to := range outs {
			indeg[to]++
		}
	}
	for _, id := range g.Order {
		if len(dag[id]) >= 0 && indeg[id] > 1 {
			st.MergeNodes++
		}
	}

	st.NaiveTreeNodes = naiveSize(dag, order)

	// Cost-based selective externalization, bottom-up in reverse
	// topological order (paper §3.2): T(v) is the materialized subtree
	// size given prior decisions; externalizing replaces every occurrence
	// with a 1-node reference.
	size := make(map[string]int64, len(dag))
	external := make(map[string]bool)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		var t int64 = 1
		for _, c := range dag[v] {
			if external[c] {
				t++
			} else {
				t += size[c]
			}
		}
		size[v] = t
		if v == ung.RootID {
			continue
		}
		if d := indeg[v]; d > 1 {
			cost := int64(d-1) * t
			if cost > int64(opt.CloneThreshold) {
				external[v] = true
				st.Externalized++
			} else {
				st.Cloned++
			}
		}
	}

	f := &Forest{App: g.App, Shared: make(map[string]*Node)}
	f.Main = materialize(g, dag, ung.RootID, external, nil)
	for _, id := range order {
		if external[id] {
			f.Shared[id] = materialize(g, dag, id, external, nil)
			f.SharedOrder = append(f.SharedOrder, id)
		}
	}

	st.ForestNodes = f.NodeCount()
	st.MainTreeNodes = f.Main.Count()
	st.SharedSubtrees = len(f.Shared)
	return f, st, nil
}

// decycle removes back edges found by iterative DFS from the root, returning
// the remaining adjacency and the number of edges removed (paper §3.2,
// "decycle the graph to a DAG").
func decycle(g *ung.Graph) (map[string][]string, int) {
	adj := make(map[string][]string, len(g.Nodes))
	onStack := make(map[string]bool)
	visited := make(map[string]bool)
	removed := 0

	type frame struct {
		id string
		i  int
	}
	var stack []frame
	push := func(id string) {
		stack = append(stack, frame{id: id})
		onStack[id] = true
		visited[id] = true
		adj[id] = nil
	}
	push(ung.RootID)
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		node := g.Nodes[top.id]
		if top.i >= len(node.Out) {
			onStack[top.id] = false
			stack = stack[:len(stack)-1]
			continue
		}
		next := node.Out[top.i]
		top.i++
		if onStack[next] {
			removed++ // back edge: drop it
			continue
		}
		adj[top.id] = append(adj[top.id], next)
		if !visited[next] {
			push(next)
		}
	}
	return adj, removed
}

// topoOrder returns a topological order of the DAG (root first).
func topoOrder(g *ung.Graph, dag map[string][]string) ([]string, error) {
	indeg := make(map[string]int, len(dag))
	for id := range dag {
		indeg[id] += 0
	}
	for _, outs := range dag {
		for _, to := range outs {
			indeg[to]++
		}
	}
	var queue []string
	for _, id := range g.Order { // deterministic: discovery order
		if _, ok := dag[id]; ok && indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	var order []string
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		order = append(order, cur)
		for _, to := range dag[cur] {
			indeg[to]--
			if indeg[to] == 0 {
				queue = append(queue, to)
			}
		}
	}
	if len(order) != len(dag) {
		return nil, fmt.Errorf("forest: decycled graph still has a cycle (%d of %d ordered)",
			len(order), len(dag))
	}
	return order, nil
}

// naiveSize computes the node count of the fully-cloned tree: every merge
// node duplicated along each incoming edge (the Figure 4 blow-up). The
// value is computed bottom-up and saturates at MaxInt64.
func naiveSize(dag map[string][]string, order []string) int64 {
	size := make(map[string]int64, len(dag))
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		var t int64 = 1
		for _, c := range dag[v] {
			t = satAdd(t, size[c])
		}
		size[v] = t
	}
	return size[ung.RootID]
}

func satAdd(a, b int64) int64 {
	if a > math.MaxInt64-b {
		return math.MaxInt64
	}
	return a + b
}

// materialize builds the tree rooted at id, cloning non-externalized merge
// nodes per incoming edge and inserting reference nodes for externalized
// ones. Nested references (a shared subtree referencing another) arise
// naturally.
func materialize(g *ung.Graph, dag map[string][]string, id string, external map[string]bool, parent *Node) *Node {
	gn := g.Nodes[id]
	n := &Node{
		GID:       gn.ID,
		Name:      gn.Name,
		Type:      gn.Type,
		Desc:      gn.Desc,
		LargeEnum: gn.LargeEnum,
		Context:   gn.Context,
		Parent:    parent,
	}
	for _, c := range dag[id] {
		if external[c] {
			cn := g.Nodes[c]
			ref := &Node{
				GID:       cn.ID,
				Name:      cn.Name,
				Type:      cn.Type,
				Desc:      cn.Desc,
				LargeEnum: cn.LargeEnum,
				Context:   cn.Context,
				RefTarget: c,
				Parent:    n,
			}
			n.Children = append(n.Children, ref)
			continue
		}
		n.Children = append(n.Children, materialize(g, dag, c, external, n))
	}
	return n
}
