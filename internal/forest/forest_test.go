package forest

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/uia"
	"repro/internal/ung"
)

// buildGraph assembles a UNG from an adjacency list rooted at [ROOT].
func buildGraph(t *testing.T, adj map[string][]string) *ung.Graph {
	t.Helper()
	g := ung.NewGraph("test")
	ensure := func(id string) {
		if _, ok := g.Nodes[id]; !ok {
			e := uia.NewElement(id, id, uia.ButtonControl)
			g.Ensure(id, e, "")
		}
	}
	// Deterministic insertion: ROOT's own edges first, then by key of the
	// discovery order implied by the map walk over a fixed key list.
	var keys []string
	keys = append(keys, ung.RootID)
	seen := map[string]bool{ung.RootID: true}
	var walk func(id string)
	walk = func(id string) {
		for _, to := range adj[id] {
			if !seen[to] {
				seen[to] = true
				keys = append(keys, to)
				walk(to)
			}
		}
	}
	walk(ung.RootID)
	for _, from := range keys {
		for _, to := range adj[from] {
			ensure(to)
			g.AddEdge(from, to)
		}
	}
	return g
}

func TestTransformSimpleTree(t *testing.T) {
	g := buildGraph(t, map[string][]string{
		ung.RootID: {"a", "b"},
		"a":        {"a1", "a2"},
		"b":        {"b1"},
	})
	f, st, err := Transform(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.BackEdgesRemoved != 0 || st.MergeNodes != 0 || st.Externalized != 0 {
		t.Errorf("tree input should transform trivially: %+v", st)
	}
	if f.Main.Count() != 6 || len(f.Shared) != 0 {
		t.Errorf("main=%d shared=%d", f.Main.Count(), len(f.Shared))
	}
	if f.NodeCount() != st.ForestNodes {
		t.Error("stats disagree with forest")
	}
}

func TestTransformRemovesCycle(t *testing.T) {
	g := buildGraph(t, map[string][]string{
		ung.RootID: {"collapse"},
		"collapse": {"pin"},
		"pin":      {"collapse", "x"},
	})
	f, st, err := Transform(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.BackEdgesRemoved != 1 {
		t.Errorf("back edges removed = %d, want 1", st.BackEdgesRemoved)
	}
	// All nodes still present exactly once.
	names := map[string]int{}
	f.Main.Walk(func(n *Node) bool { names[n.GID]++; return true })
	for _, id := range []string{"collapse", "pin", "x"} {
		if names[id] != 1 {
			t.Errorf("node %q appears %d times", id, names[id])
		}
	}
}

func TestSmallMergeNodeCloned(t *testing.T) {
	// c has two parents and a tiny subtree: cloning is cheaper than a
	// shared subtree.
	g := buildGraph(t, map[string][]string{
		ung.RootID: {"a", "b"},
		"a":        {"c"},
		"b":        {"c"},
		"c":        {"leaf"},
	})
	f, st, err := Transform(g, Options{CloneThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	if st.Externalized != 0 || st.Cloned != 1 {
		t.Errorf("stats = %+v, want clone", st)
	}
	count := 0
	f.Main.Walk(func(n *Node) bool {
		if n.GID == "c" {
			count++
			if len(n.Children) != 1 || n.Children[0].GID != "leaf" {
				t.Error("cloned c lost its substructure")
			}
		}
		return true
	})
	if count != 2 {
		t.Errorf("c cloned %d times, want 2", count)
	}
}

func TestLargeMergeNodeExternalized(t *testing.T) {
	adj := map[string][]string{
		ung.RootID:  {"fontColor", "underlineColor", "outlineColor"},
		"fontColor": {"picker"}, "underlineColor": {"picker"}, "outlineColor": {"picker"},
	}
	// picker has a large substructure: 80 color cells.
	var cells []string
	for i := 0; i < 80; i++ {
		cells = append(cells, "cell"+string(rune('0'+i/10))+string(rune('0'+i%10)))
	}
	adj["picker"] = cells
	g := buildGraph(t, adj)

	f, st, err := Transform(g, Options{CloneThreshold: 64})
	if err != nil {
		t.Fatal(err)
	}
	if st.Externalized != 1 {
		t.Fatalf("externalized = %d, want 1 (stats %+v)", st.Externalized, st)
	}
	if len(f.Shared) != 1 || f.Shared["picker"] == nil {
		t.Fatal("picker not in shared subtrees")
	}
	if f.Shared["picker"].Count() != 81 {
		t.Errorf("picker subtree size = %d, want 81", f.Shared["picker"].Count())
	}
	// Each opener carries a 1-node reference instead of an 81-node clone.
	refs := 0
	f.Main.Walk(func(n *Node) bool {
		if n.IsRef() {
			refs++
			if n.RefTarget != "picker" {
				t.Errorf("ref target = %q", n.RefTarget)
			}
			if len(n.Children) != 0 {
				t.Error("reference node must have no children")
			}
		}
		return true
	})
	if refs != 3 {
		t.Errorf("reference nodes = %d, want 3", refs)
	}
	// Forest stays near-linear: 1 root + 3 openers + 3 refs + 81 shared.
	if f.NodeCount() != 88 {
		t.Errorf("forest nodes = %d, want 88", f.NodeCount())
	}
	// Naive cloning would instead triple the picker: 1+3+3*81 = 247.
	if st.NaiveTreeNodes != 247 {
		t.Errorf("naive size = %d, want 247", st.NaiveTreeNodes)
	}
}

func TestNaiveSizeExponentialBlowup(t *testing.T) {
	// A chain of diamond merges doubles the naive size at each level:
	// naive grows as 2^n while the forest stays linear (Figure 4).
	adj := map[string][]string{}
	prev := ung.RootID
	const levels = 40
	for i := 0; i < levels; i++ {
		l := fmtNode("l", i)
		r := fmtNode("r", i)
		m := fmtNode("m", i)
		adj[prev] = []string{l, r}
		adj[l] = []string{m}
		adj[r] = []string{m}
		prev = m
	}
	adj[prev] = []string{"end"}
	g := buildGraph(t, adj)
	f, st, err := Transform(g, Options{CloneThreshold: 4})
	if err != nil {
		t.Fatal(err)
	}
	if st.NaiveTreeNodes < 1<<levels {
		t.Errorf("naive size = %d, want ≥ 2^%d", st.NaiveTreeNodes, levels)
	}
	if f.NodeCount() > 10*levels {
		t.Errorf("forest size = %d, want linear in levels", f.NodeCount())
	}
}

func TestNaiveSizeSaturates(t *testing.T) {
	adj := map[string][]string{}
	prev := ung.RootID
	for i := 0; i < 200; i++ {
		l := fmtNode("l", i)
		r := fmtNode("r", i)
		m := fmtNode("m", i)
		adj[prev] = []string{l, r}
		adj[l] = []string{m}
		adj[r] = []string{m}
		prev = m
	}
	g := buildGraph(t, adj)
	_, st, err := Transform(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if st.NaiveTreeNodes != math.MaxInt64 {
		t.Errorf("naive size should saturate, got %d", st.NaiveTreeNodes)
	}
}

func TestNestedReferences(t *testing.T) {
	// inner is shared by two nodes of outer's subtree; outer is shared by
	// three openers: the outer shared subtree must contain references to
	// inner.
	adj := map[string][]string{
		ung.RootID: {"o1", "o2", "o3"},
		"o1":       {"outer"}, "o2": {"outer"}, "o3": {"outer"},
		"outer": {"x", "y"},
		"x":     {"inner"}, "y": {"inner"},
	}
	var leaves []string
	for i := 0; i < 40; i++ {
		leaves = append(leaves, fmtNode("leaf", i))
	}
	adj["inner"] = leaves
	g := buildGraph(t, adj)
	// With inner externalized, outer's materialized size is 5 (outer, x,
	// y, two refs), so its clone cost is (3-1)*5 = 10; threshold 8 forces
	// both subtrees out.
	f, st, err := Transform(g, Options{CloneThreshold: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.Externalized != 2 {
		t.Fatalf("externalized = %d, want outer and inner", st.Externalized)
	}
	outer := f.Shared["outer"]
	refs := 0
	outer.Walk(func(n *Node) bool {
		if n.IsRef() && n.RefTarget == "inner" {
			refs++
		}
		return true
	})
	if refs != 2 {
		t.Errorf("outer subtree has %d refs to inner, want 2", refs)
	}
}

// Path-unambiguity: in every tree of the forest, each node instance has
// exactly one path from its tree root.
func TestPathUnambiguityProperty(t *testing.T) {
	check := func(f *Forest) bool {
		ok := true
		for _, tree := range append([]*Node{f.Main}, sharedTrees(f)...) {
			tree.Walk(func(n *Node) bool {
				p := n.PathFromRoot()
				if p[0] != tree || p[len(p)-1] != n {
					ok = false
				}
				for i := 1; i < len(p); i++ {
					if p[i].Parent != p[i-1] {
						ok = false
					}
				}
				return true
			})
		}
		return ok
	}

	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 60, 90)
		f, _, err := Transform(g, Options{CloneThreshold: 1 + rng.Intn(100)})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !check(f) {
			t.Fatalf("trial %d: path ambiguity detected", trial)
		}
	}
}

// Every reachable UNG node appears somewhere in the forest (coverage), and
// reference targets always resolve.
func TestCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 50, 80)
		f, _, err := Transform(g, Options{CloneThreshold: 1 + rng.Intn(60)})
		if err != nil {
			t.Fatal(err)
		}
		present := map[string]bool{}
		for _, tree := range append([]*Node{f.Main}, sharedTrees(f)...) {
			tree.Walk(func(n *Node) bool {
				present[n.GID] = true
				if n.IsRef() && f.Shared[n.RefTarget] == nil {
					t.Fatalf("dangling reference to %q", n.RefTarget)
				}
				return true
			})
		}
		for id := range g.Reachable() {
			if !present[id] {
				t.Fatalf("trial %d: node %q missing from forest", trial, id)
			}
		}
	}
}

// The forest never exceeds the naive tree in size, and with threshold 1
// (externalize every merge node) it is at most graph nodes + references.
func TestForestSizeBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 25; trial++ {
		g := randomGraph(rng, 60, 100)
		f, st, err := Transform(g, Options{CloneThreshold: 1})
		if err != nil {
			t.Fatal(err)
		}
		if int64(f.NodeCount()) > st.NaiveTreeNodes {
			t.Fatalf("forest (%d) larger than naive tree (%d)", f.NodeCount(), st.NaiveTreeNodes)
		}
		// threshold 1: a merge node with in-degree d either clones (adds
		// ≤ threshold = 1 node) or externalizes (adds ≤ d reference
		// nodes), so growth is linear in total merge in-degree — the
		// paper's "linear node growth" guarantee.
		bound := st.GraphNodes
		for _, id := range g.Order {
			n := g.Nodes[id]
			if len(n.In) > 1 {
				bound += len(n.In)
			}
		}
		if f.NodeCount() > bound {
			t.Fatalf("forest %d exceeds linear bound %d", f.NodeCount(), bound)
		}
	}
}

func TestThresholdMonotonicity(t *testing.T) {
	// Higher thresholds externalize fewer subtrees.
	rng := rand.New(rand.NewSource(17))
	g := randomGraph(rng, 80, 140)
	prev := -1
	for _, th := range []int{1, 8, 32, 128, 1024} {
		_, st, err := Transform(g, Options{CloneThreshold: th})
		if err != nil {
			t.Fatal(err)
		}
		if prev >= 0 && st.Externalized > prev {
			t.Errorf("threshold %d externalized more (%d) than smaller threshold (%d)",
				th, st.Externalized, prev)
		}
		prev = st.Externalized
	}
}

func TestQuickDecycleAlwaysDAG(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 30, 70)
		_, _, err := Transform(g, Options{})
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// randomGraph builds a random connected digraph (possibly cyclic, with merge
// nodes) rooted at RootID.
func randomGraph(rng *rand.Rand, nodes, extraEdges int) *ung.Graph {
	g := ung.NewGraph("rand")
	ids := []string{ung.RootID}
	for i := 0; i < nodes; i++ {
		id := fmtNode("n", i)
		e := uia.NewElement(id, id, uia.ButtonControl)
		g.Ensure(id, e, "")
		// attach to a random earlier node to keep everything reachable
		g.AddEdge(ids[rng.Intn(len(ids))], id)
		ids = append(ids, id)
	}
	for i := 0; i < extraEdges; i++ {
		from := ids[rng.Intn(len(ids))]
		to := ids[1+rng.Intn(len(ids)-1)]
		if from == to {
			continue
		}
		g.AddEdge(from, to)
	}
	return g
}

func sharedTrees(f *Forest) []*Node {
	var out []*Node
	for _, id := range f.SharedOrder {
		out = append(out, f.Shared[id])
	}
	return out
}

func fmtNode(prefix string, i int) string {
	return prefix + string(rune('A'+i/26)) + string(rune('a'+i%26))
}
