// Package modelsafe implements the dmi-vet analyzer that mechanizes the two
// sharing contracts of the warm-serving tier (DESIGN.md §6, §8):
//
// Models are read-only. A describe.Model — and the forest.Forest,
// forest.Node, ung.Graph, and ung.Node values it is built from — is frozen
// once construction returns. Any number of concurrent sessions plan over
// the same warm model simultaneously (bench.RunParallel, the dmi-serve
// daemon), so a write to any reachable field or map of a model outside its
// defining package is a data race against every other session, whether or
// not -race happens to catch it on a given run. The analyzer flags
// assignments (including op-assigns, ++/--, and map element stores) whose
// target chain passes through one of the protected types from outside the
// type's own package, plus calls to the graph's construction-time mutators
// (Graph.Ensure, Graph.AddEdge) from outside internal/ung.
//
// Sessions are single-goroutine. A core.Session mutates its own window and
// observation state with no locking; its contract is that one goroutine
// owns it for its whole life. The analyzer flags go statements whose
// launched function captures or is passed a core.Session from the enclosing
// scope — handing a live session to another goroutine is the bug, however
// it is smuggled. A session created inside the launched function itself is
// fine: that goroutine is the owner.
//
// The check is syntactic per package: aliasing a protected map into a local
// variable and writing through the alias escapes it. That gap is accepted —
// the analyzer is a tripwire for the honest mistake, the -race equivalence
// suite remains the backstop for the devious one. _test.go files are exempt
// from the write and mutator rules (tests build their own graph/forest
// fixtures by construction) but not from the session-goroutine rule.
package modelsafe

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/analysis/vetkit"
)

// protected maps defining package path → type names frozen after
// construction. Writes through these types are allowed only inside the
// defining package.
var protected = map[string][]string{
	"repro/internal/describe": {"Model"},
	"repro/internal/forest":   {"Forest", "Node"},
	"repro/internal/ung":      {"Graph", "Node"},
}

// mutators lists construction-time methods of protected types that mutate
// the receiver; calling them outside the defining package re-opens a frozen
// value.
var mutators = map[string]map[string]bool{
	"repro/internal/ung": {"Ensure": true, "AddEdge": true},
}

// sessionPkg/sessionType name the single-goroutine session executor.
const (
	sessionPkg  = "repro/internal/core"
	sessionType = "Session"
)

var Analyzer = &analysis.Analyzer{
	Name: "modelsafe",
	Doc: "flag writes to frozen model structures outside their defining packages and sessions leaked across goroutines\n\n" +
		"describe.Model and the ung/forest structures under it are read-only once built\n" +
		"(concurrent sessions share them); core.Session is owned by one goroutine for life.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{
		(*ast.AssignStmt)(nil),
		(*ast.IncDecStmt)(nil),
		(*ast.CallExpr)(nil),
		(*ast.GoStmt)(nil),
	}, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if vetkit.IsTestFile(pass, n.Pos()) {
				return // tests build their own graph/forest fixtures
			}
			for _, l := range n.Lhs {
				checkWrite(pass, l)
			}
		case *ast.IncDecStmt:
			if vetkit.IsTestFile(pass, n.Pos()) {
				return
			}
			checkWrite(pass, n.X)
		case *ast.CallExpr:
			if vetkit.IsTestFile(pass, n.Pos()) {
				return
			}
			checkMutatorCall(pass, n)
		case *ast.GoStmt:
			// The single-goroutine session rule holds in tests too: a test
			// that leaks a session across goroutines races for real.
			checkGoCapture(pass, n)
		}
	})
	return nil, nil
}

// checkWrite flags a store whose target chain passes through a protected
// type defined in another package. The chain walk covers field stores
// (m.Forest = x), element stores (g.Nodes[id] = n), and stores through
// nested selections (model.Forest.Main.Children[0].Name = x).
func checkWrite(pass *analysis.Pass, lhs ast.Expr) {
	e := ast.Unparen(lhs)
	for {
		var inner ast.Expr
		switch x := e.(type) {
		case *ast.SelectorExpr:
			inner = x.X
		case *ast.IndexExpr:
			inner = x.X
		case *ast.StarExpr:
			inner = x.X
		default:
			return
		}
		inner = ast.Unparen(inner)
		if pkg, name, ok := protectedVia(pass, inner); ok {
			pass.Reportf(lhs.Pos(), "write to %s.%s outside %s: models are read-only once built (concurrent sessions share them)", name, exprSel(e), pkg)
			return
		}
		e = inner
	}
}

// protectedVia reports whether e's type resolves to a protected named type
// defined outside the current package, returning the defining package and
// type name.
func protectedVia(pass *analysis.Pass, e ast.Expr) (pkg, name string, ok bool) {
	t := pass.TypesInfo.TypeOf(e)
	if t == nil {
		return "", "", false
	}
	named := vetkit.NamedType(t)
	if named == nil || named.Obj() == nil || named.Obj().Pkg() == nil {
		return "", "", false
	}
	defPkg := named.Obj().Pkg().Path()
	for p, names := range protected {
		if !vetkit.SamePackage(named.Obj().Pkg(), p) {
			continue
		}
		for _, n := range names {
			if named.Obj().Name() == n && !vetkit.SamePackage(pass.Pkg, p) {
				return defPkg, n, true
			}
		}
	}
	return "", "", false
}

// exprSel names the field or element being written, for the diagnostic.
func exprSel(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.SelectorExpr:
		return x.Sel.Name
	case *ast.IndexExpr:
		return exprSel(ast.Unparen(x.X)) + "[...]"
	case *ast.StarExpr:
		return exprSel(ast.Unparen(x.X))
	}
	return "?"
}

// checkMutatorCall flags construction-time mutator methods invoked on
// protected types from outside their defining package.
func checkMutatorCall(pass *analysis.Pass, call *ast.CallExpr) {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	for pkg, names := range mutators {
		if names[fn.Name()] && vetkit.SamePackage(fn.Pkg(), pkg) && !vetkit.SamePackage(pass.Pkg, pkg) {
			pass.Reportf(call.Pos(), "%s mutates a frozen graph outside %s: models are read-only once built", fn.Name(), pkg)
		}
	}
}

// checkGoCapture flags go statements that hand a core.Session from the
// enclosing scope to the launched goroutine, whether captured by the
// closure, passed as an argument, or used as the method receiver.
func checkGoCapture(pass *analysis.Pass, g *ast.GoStmt) {
	ast.Inspect(g.Call, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || obj.Pos() == 0 {
			return true
		}
		if !vetkit.TypeIs(obj.Type(), sessionPkg, sessionType) {
			return true
		}
		// Declared inside the launched expression → that goroutine owns it.
		if obj.Pos() >= g.Pos() && obj.Pos() < g.End() {
			return true
		}
		pass.Reportf(id.Pos(), "session %s crosses a goroutine boundary: core.Session is single-goroutine for its whole life (create the session inside the goroutine that runs it)", id.Name)
		return true
	})
}
