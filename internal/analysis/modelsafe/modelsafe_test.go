package modelsafe_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/modelsafe"
)

func TestModelSafe(t *testing.T) {
	atest.Run(t, atest.TestData(t), modelsafe.Analyzer,
		"modelclient", "repro/internal/ung", "repro/internal/describe")
}
