package modelclient

import (
	"repro/internal/core"
	"repro/internal/ung"
)

// The write and mutator rules exempt test files (tests build their own
// fixtures by construction)...
func buildFixtureGraph() *ung.Graph {
	g := &ung.Graph{}
	g.AddEdge("a", "b")
	g.Order = nil
	return g
}

// ...but the session-goroutine rule holds in tests too: a test that leaks
// a session across goroutines races for real.
func leakInTest(s *core.Session) {
	go s.Step() // want `session s crosses a goroutine boundary`
}
