// Package modelclient is the modelsafe consumer fixture: it holds frozen
// model values built elsewhere, so every write below is a violation and
// every read is fine.
package modelclient

import (
	"repro/internal/core"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/ung"
)

func mutateModel(m *describe.Model, f *forest.Forest) {
	m.Forest = f // want `write to Model.Forest outside repro/internal/describe`
}

func mutateForestNode(n *forest.Node) {
	n.Name = "renamed"                   // want `write to Node.Name outside repro/internal/forest`
	n.Children = append(n.Children, nil) // want `write to Node.Children outside repro/internal/forest`
}

func mutateDeepChain(m *describe.Model) {
	m.Forest.Main = nil // want `write to Forest.Main outside repro/internal/forest`
}

func mutateGraph(g *ung.Graph) {
	g.Nodes["x"] = nil  // want `write to Graph.Nodes outside repro/internal/ung`
	g.Ensure("y")       // want `Ensure mutates a frozen graph outside repro/internal/ung`
	g.AddEdge("x", "y") // want `AddEdge mutates a frozen graph outside repro/internal/ung`
}

func readOnly(m *describe.Model) int {
	total := 0
	for _, n := range m.Forest.Shared {
		total += len(n.Children)
	}
	return total
}

func localStructsAreFree() {
	type scratch struct{ n int }
	s := &scratch{}
	s.n = 1
	s.n++
	_ = s
}

func leakSession(s *core.Session) {
	go func() { // launched closure captures s
		s.Step() // want `session s crosses a goroutine boundary`
	}()
	go s.Step() // want `session s crosses a goroutine boundary`
	go runIn(s) // want `session s crosses a goroutine boundary`
}

func ownedSession() {
	go func() {
		s := core.NewSession() // created inside the goroutine that runs it
		s.Step()
	}()
}

func runIn(s *core.Session) { s.Step() }
