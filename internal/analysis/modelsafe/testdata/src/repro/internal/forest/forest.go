// Package forest is a modelsafe fixture stub for repro/internal/forest:
// just enough shape for the protected-type checks.
package forest

type Node struct {
	Name     string
	Children []*Node
}

type Forest struct {
	Main   *Node
	Shared map[string]*Node
}
