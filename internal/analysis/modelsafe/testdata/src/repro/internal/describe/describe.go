// Package describe is a modelsafe fixture stub for repro/internal/describe.
// The in-package write below is construction code and allowed.
package describe

import "repro/internal/forest"

type Model struct {
	App    string
	Forest *forest.Forest
}

func New(app string, f *forest.Forest) *Model {
	m := &Model{App: app}
	m.Forest = f
	return m
}
