// Package core is a modelsafe fixture stub for repro/internal/core: the
// single-goroutine session type.
package core

type Session struct {
	steps int
}

func NewSession() *Session { return &Session{} }

func (s *Session) Step() { s.steps++ }
