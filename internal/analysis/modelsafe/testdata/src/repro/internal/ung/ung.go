// Package ung is a modelsafe fixture stub for repro/internal/ung: the
// protected graph types plus their construction-time mutators. Writes and
// mutator calls in this file are inside the defining package and allowed.
package ung

type Node struct {
	ID  string
	Out []string
}

type Graph struct {
	Nodes map[string]*Node
	Order []string
}

func (g *Graph) Ensure(id string) *Node {
	if n, ok := g.Nodes[id]; ok {
		return n
	}
	if g.Nodes == nil {
		g.Nodes = make(map[string]*Node)
	}
	n := &Node{ID: id}
	g.Nodes[id] = n
	g.Order = append(g.Order, id)
	return n
}

func (g *Graph) AddEdge(from, to string) {
	n := g.Ensure(from)
	g.Ensure(to)
	n.Out = append(n.Out, to)
}
