package purity_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/purity"
)

func TestPurity(t *testing.T) {
	atest.Run(t, atest.TestData(t), purity.Analyzer,
		"repro/internal/agent", "repro/cmd/dmi-coord")
}
