// Package main is a purity fixture standing in for a cmd/* package:
// daemon and coordinator timing code is real wall-clock work, out of the
// purity scope, so nothing here is flagged.
package main

import "time"

func pollDeadline(wait time.Duration) time.Time {
	return time.Now().Add(wait)
}
