package agent

import "os"

// Test files are exempt: golden-update gates legitimately read the
// environment, so nothing here is flagged.

func goldenUpdateRequested() bool {
	return os.Getenv("UPDATE_GOLDEN") != ""
}
