// Package agent is a purity fixture standing in for the pure session
// executor package repro/internal/agent (in Scope).
package agent

import (
	"math/rand"
	"os"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time.Now in the pure session/rip call graph`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since in the pure session/rip call graph`
}

func globalDraw() float64 {
	return rand.Float64() // want `global math/rand.Float64 in the pure session/rip call graph`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand.Shuffle in the pure session/rip call graph`
}

func seededSource(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func seededDraw(r *rand.Rand) float64 {
	return r.Float64()
}

func ambientEnv() string {
	return os.Getenv("HOME") // want `os.Getenv in the pure session/rip call graph`
}

func ambientRead(path string) ([]byte, error) {
	return os.ReadFile(path) // want `os.ReadFile in the pure session/rip call graph`
}

func pureTime(d time.Duration) time.Duration {
	return d.Round(time.Millisecond)
}
