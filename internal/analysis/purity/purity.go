// Package purity implements the dmi-vet analyzer that keeps the session/rip
// call graph a pure function of its inputs.
//
// The distributed serving tier depends on sessions being idempotent: a
// cell's outcomes are a pure function of (model, task, setting, run), which
// is what lets bench.RemoteDispatcher re-dispatch a failed cell to another
// replica with no deduplication or fencing (DESIGN.md §9), and what makes
// the offline rip byte-identical across worker counts and machines. That
// contract dies the moment the executor or the ripper reads ambient state:
// wall-clock time, the global math/rand stream, environment variables, or
// the filesystem.
//
// The analyzer forbids direct calls to those ambient sources inside the
// pure packages (the agent driver, the DMI executor, the ripper, the
// describer, and the simulated-LLM layer):
//
//   - time.Now, time.Since, time.Until — simulated time comes from the
//     app's Desk clock; wall time would make Outcome.Time host-dependent.
//   - package-level math/rand draws (rand.Int, rand.Float64, rand.Shuffle,
//     ...) — all randomness must flow from the seeded per-session source
//     built by llm.Rand. The source constructors (rand.New,
//     rand.NewSource, rand.NewZipf, and the v2 equivalents) are the
//     explicit allowlist: constructing a seeded stream is how purity is
//     achieved, drawing from the shared global stream is how it is lost.
//   - os.Getenv / os.LookupEnv / os.Environ and filesystem reads (os.Open,
//     os.ReadFile, os.Stat, ...) — configuration and artifacts reach the
//     pure layers as arguments, never ambiently.
//
// Scope notes: _test.go files are exempt (golden-update gates legitimately
// read the environment, and test timing is not part of any contract), and
// cmd/* packages are out of scope entirely — daemon and coordinator timing
// code (health polling, shutdown deadlines) is real wall-clock work, not
// session state. The check is syntactic per package, not a whole-program
// call-graph analysis: impurity smuggled in through an interface value or a
// function argument is out of reach, which is acceptable because the listed
// packages are the ones whose source the contract names.
package purity

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/analysis/vetkit"
)

// Scope lists the pure packages: the session executor layers and the rip
// pipeline whose outputs must be functions of their arguments alone, plus
// the task-pack codec — packs are decoded from caller-supplied bytes and
// hashed into run identity, so the package must never touch the filesystem,
// clock, or environment (cmd/* reads the pack file and passes bytes in).
var Scope = []string{
	"repro/internal/agent",
	"repro/internal/core",
	"repro/internal/describe",
	"repro/internal/llm",
	"repro/internal/taskpack",
	"repro/internal/ung",
}

var Analyzer = &analysis.Analyzer{
	Name: "purity",
	Doc: "forbid ambient state (wall clock, global rand, env, filesystem) in the pure session/rip call graph\n\n" +
		"Sessions and rips are idempotent functions of their coordinates — the property the\n" +
		"remote re-dispatch argument depends on. Seeded per-session rand sources are the\n" +
		"allowed randomness; everything ambient is forbidden in the pure packages.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// forbidden maps package path → function name → what to say about it.
// Only package-level functions appear here; methods on values (e.g. a
// seeded *rand.Rand) are pure with respect to ambient state.
var forbidden = map[string]map[string]string{
	"time": {
		"Now":   "wall-clock time; use the app's simulated Desk clock",
		"Since": "wall-clock time; use the app's simulated Desk clock",
		"Until": "wall-clock time; use the app's simulated Desk clock",
	},
	"os": {
		"Getenv":    "ambient environment; pass configuration as arguments",
		"LookupEnv": "ambient environment; pass configuration as arguments",
		"Environ":   "ambient environment; pass configuration as arguments",
		"Open":      "filesystem read; artifacts reach pure layers as arguments",
		"OpenFile":  "filesystem read; artifacts reach pure layers as arguments",
		"ReadFile":  "filesystem read; artifacts reach pure layers as arguments",
		"ReadDir":   "filesystem read; artifacts reach pure layers as arguments",
		"Stat":      "filesystem read; artifacts reach pure layers as arguments",
		"Lstat":     "filesystem read; artifacts reach pure layers as arguments",
		"Getwd":     "ambient process state; pass paths as arguments",
	},
}

// randAllowed lists the math/rand package-level functions that construct
// seeded sources — the explicit allowlist for the per-session RNG streams
// in internal/llm and internal/agent. Every other package-level function
// draws from the shared global stream.
var randAllowed = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true, // takes an explicit *Rand
	"NewPCG":     true, // math/rand/v2 seeded sources
	"NewChaCha8": true,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !vetkit.InScope(pass.Pkg.Path(), Scope) {
		return nil, nil
	}
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
		call := n.(*ast.CallExpr)
		if vetkit.IsTestFile(pass, call.Pos()) {
			return
		}
		fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
		if !ok || fn.Pkg() == nil {
			return
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			return // methods are out of scope; only package-level ambience
		}
		pkg, name := fn.Pkg().Path(), fn.Name()
		if why, ok := forbidden[pkg][name]; ok {
			pass.Reportf(call.Pos(), "%s.%s in the pure session/rip call graph: %s (sessions must stay idempotent functions of their coordinates)", pkg, name, why)
			return
		}
		if (pkg == "math/rand" || pkg == "math/rand/v2") && !randAllowed[name] {
			pass.Reportf(call.Pos(), "global %s.%s in the pure session/rip call graph: draw from the seeded per-session source (llm.Rand) instead", pkg, name)
		}
	})
	return nil, nil
}
