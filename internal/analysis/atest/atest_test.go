package atest

import (
	"go/ast"
	"go/token"
	"testing"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
)

// toy flags every integer literal. It exists to exercise the harness
// itself: the Requires chain (inspect), fixture-tree and stdlib import
// resolution, and both quoting forms of // want expectations.
var toy = &analysis.Analyzer{
	Name:     "toy",
	Doc:      "flag integer literals (harness self-test)",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run: func(pass *analysis.Pass) (interface{}, error) {
		insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
		insp.Preorder([]ast.Node{(*ast.BasicLit)(nil)}, func(n ast.Node) {
			lit := n.(*ast.BasicLit)
			if lit.Kind == token.INT {
				pass.Reportf(lit.Pos(), "int literal %s", lit.Value)
			}
		})
		return nil, nil
	},
}

func TestHarness(t *testing.T) {
	Run(t, TestData(t), toy, "toy")
}
