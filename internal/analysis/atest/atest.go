// Package atest is a self-contained analysistest: it loads fixture
// packages from a testdata/src GOPATH-style layout, runs an analyzer (and
// its Requires closure) over them, and checks the reported diagnostics
// against analysistest's `// want "regexp"` expectation comments.
//
// It exists because the full golang.org/x/tools/go/analysis/analysistest
// depends on go/packages, which is not part of the vendored x/tools subset
// this repo builds against (third_party/README.md). The fixture format is
// analysistest's, so fixtures port verbatim if the full module ever lands:
//
//	for k := range m { // want `range over map`
//
// Each `// want` comment carries one or more quoted or backquoted regular
// expressions; every regexp must match a diagnostic reported on that
// comment's line, every diagnostic must be matched by some expectation, and
// anything else fails the test.
//
// Fixture packages may import each other and the standard library; imports
// resolve first against the fixture tree (so stubs can stand in for real
// repo packages under their real import paths) and then via the go/types
// source importer.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestData returns the absolute path of the calling test's testdata
// directory (go test runs with the package directory as cwd).
func TestData(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatalf("atest: %v", err)
	}
	return dir
}

// Run loads each fixture package (an import path under testdata/src), runs
// the analyzer over it, and checks diagnostics against the fixture's
// // want expectations.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, paths ...string) {
	t.Helper()
	if err := analysis.Validate([]*analysis.Analyzer{a}); err != nil {
		t.Fatalf("atest: invalid analyzer: %v", err)
	}
	ld := newLoader(filepath.Join(testdata, "src"))
	for _, path := range paths {
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			pkg, err := ld.load(path)
			if err != nil {
				t.Fatalf("atest: loading %s: %v", path, err)
			}
			diags := runAnalyzer(t, a, ld, pkg)
			checkExpectations(t, ld.fset, pkg.files, diags)
		})
	}
}

// loadedPkg is one typechecked fixture package.
type loadedPkg struct {
	pkg   *types.Package
	info  *types.Info
	files []*ast.File
}

// loader typechecks fixture packages, resolving fixture-tree imports
// itself and delegating the rest to the source importer.
type loader struct {
	srcdir string
	fset   *token.FileSet
	std    types.Importer
	cache  map[string]*loadedPkg
}

func newLoader(srcdir string) *loader {
	fset := token.NewFileSet()
	return &loader{
		srcdir: srcdir,
		fset:   fset,
		std:    importer.ForCompiler(fset, "source", nil),
		cache:  make(map[string]*loadedPkg),
	}
}

// Import implements types.Importer over the fixture tree + stdlib chain.
func (ld *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(ld.srcdir, filepath.FromSlash(path)); dirExists(dir) {
		p, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	return ld.std.Import(path)
}

func dirExists(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// load parses and typechecks the fixture package at the import path.
func (ld *loader) load(path string) (*loadedPkg, error) {
	if p, ok := ld.cache[path]; ok {
		return p, nil
	}
	dir := filepath.Join(ld.srcdir, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	for _, name := range names {
		f, err := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Instances:  make(map[*ast.Ident]types.Instance),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loadedPkg{pkg: pkg, info: info, files: files}
	ld.cache[path] = p
	return p, nil
}

// runAnalyzer executes the analyzer's Requires closure in dependency order
// and returns the target analyzer's diagnostics.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, ld *loader, pkg *loadedPkg) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	results := make(map[*analysis.Analyzer]interface{})
	var exec func(an *analysis.Analyzer)
	exec = func(an *analysis.Analyzer) {
		if _, done := results[an]; done {
			return
		}
		for _, req := range an.Requires {
			exec(req)
		}
		pass := &analysis.Pass{
			Analyzer:   an,
			Fset:       ld.fset,
			Files:      pkg.files,
			Pkg:        pkg.pkg,
			TypesInfo:  pkg.info,
			TypesSizes: types.SizesFor("gc", runtime.GOARCH),
			ResultOf:   results,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if an == a {
					diags = append(diags, d)
				}
			},
		}
		res, err := an.Run(pass)
		if err != nil {
			t.Fatalf("atest: analyzer %s: %v", an.Name, err)
		}
		results[an] = res
	}
	exec(a)
	return diags
}

// wantRE extracts the quoted/backquoted regexps of a // want comment.
var wantRE = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// checkExpectations matches diagnostics against // want comments by
// (file, line), analysistest-style.
func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 || strings.TrimSpace(text[:idx]) != "" {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					expr := m[1]
					if m[2] != "" {
						expr = m[2]
					}
					re, err := regexp.Compile(expr)
					if err != nil {
						t.Fatalf("atest: %s: bad want regexp %q: %v", pos, expr, err)
					}
					wants[k] = append(wants[k], re)
				}
				if len(wants[k]) == 0 {
					t.Fatalf("atest: %s: want comment with no regexp", pos)
				}
			}
		}
	}
	got := make(map[key][]string)
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		got[k] = append(got[k], d.Message)
	}
	for k, res := range wants {
		msgs := got[k]
		for _, re := range res {
			matched := -1
			for i, m := range msgs {
				if re.MatchString(m) {
					matched = i
					break
				}
			}
			if matched < 0 {
				t.Errorf("%s:%d: no diagnostic matching %q (got %q)", k.file, k.line, re, msgs)
				continue
			}
			msgs = append(msgs[:matched], msgs[matched+1:]...)
		}
		if len(msgs) > 0 {
			t.Errorf("%s:%d: unexpected diagnostics beyond the want set: %q", k.file, k.line, msgs)
		}
		delete(got, k)
	}
	for k, msgs := range got {
		t.Errorf("%s:%d: unexpected diagnostics: %q", k.file, k.line, msgs)
	}
}
