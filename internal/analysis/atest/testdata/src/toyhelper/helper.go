// Package toyhelper exists to be imported by the toy fixture, proving the
// harness resolves fixture-tree imports before falling back to the
// standard library. Its own literals are not analyzed: the harness reports
// diagnostics only for the package under test.
package toyhelper

const Sep = "|"
