// Package toy is the harness self-test fixture: its diagnostics come from
// the toy analyzer in atest_test.go, which flags integer literals. It
// imports both the standard library and a sibling fixture package so the
// chain importer's two resolution paths are exercised.
package toy

import (
	"strings"

	"toyhelper"
)

const answer = 42 // want "int literal 42"

var (
	product = 7 * 6 // want `int literal 7` `int literal 6`
	upper   = strings.ToUpper(toyhelper.Sep)
	name    = "strings"
)
