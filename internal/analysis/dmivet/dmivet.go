// Package dmivet is the registry of the repo's custom go/analysis suite:
// the four analyzers that mechanize the determinism, purity, and
// wire-contract invariants every serving layer is accepted against
// (DESIGN.md §10). cmd/dmi-vet drives them through the go vet -vettool
// protocol; the analyzers themselves live in sibling packages so each can
// be tested in isolation against its own fixtures.
package dmivet

import (
	"golang.org/x/tools/go/analysis"

	"repro/internal/analysis/maporder"
	"repro/internal/analysis/modelsafe"
	"repro/internal/analysis/purity"
	"repro/internal/analysis/wiredrift"
)

// Analyzers returns the dmi-vet suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		purity.Analyzer,
		modelsafe.Analyzer,
		wiredrift.Analyzer,
	}
}
