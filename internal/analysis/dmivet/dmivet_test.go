package dmivet

import (
	"testing"

	"golang.org/x/tools/go/analysis"
)

// TestSuite pins the suite's composition: four analyzers, unique names,
// valid per the framework (dependency and fact-type checks).
func TestSuite(t *testing.T) {
	as := Analyzers()
	if len(as) != 4 {
		t.Fatalf("suite has %d analyzers, want 4", len(as))
	}
	want := map[string]bool{"maporder": true, "purity": true, "modelsafe": true, "wiredrift": true}
	for _, a := range as {
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q", a.Name)
		}
		delete(want, a.Name)
	}
	for name := range want {
		t.Errorf("missing analyzer %q", name)
	}
	if err := analysis.Validate(as); err != nil {
		t.Fatalf("suite does not validate: %v", err)
	}
}
