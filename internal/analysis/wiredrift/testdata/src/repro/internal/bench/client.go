// Package bench is a wiredrift fixture standing in for the wire-protocol
// client repro/internal/bench (in ClientScope).
package bench

import (
	"bytes"
	"encoding/json"

	"repro/internal/serveproto"
)

func namedDecode(raw []byte) (serveproto.Good, error) {
	var resp serveproto.Good
	err := json.Unmarshal(raw, &resp)
	return resp, err
}

func anonymousDecode(raw []byte) (string, error) {
	var resp struct {
		App string `json:"app"`
	}
	err := json.Unmarshal(raw, &resp) // want `wire body decoded into an anonymous struct`
	return resp.App, err
}

func decoderAnonymous(raw []byte) (string, error) {
	var resp struct {
		App string `json:"app"`
	}
	err := json.NewDecoder(bytes.NewReader(raw)).Decode(&resp) // want `wire body decoded into an anonymous struct`
	return resp.App, err
}

func decoderNamed(raw []byte) (serveproto.Good, error) {
	var resp serveproto.Good
	err := json.NewDecoder(bytes.NewReader(raw)).Decode(&resp)
	return resp, err
}
