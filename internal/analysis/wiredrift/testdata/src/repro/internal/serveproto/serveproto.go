// Package serveproto is a wiredrift fixture standing in for the wire
// contract package repro/internal/serveproto.
package serveproto

import "encoding/json"

type Good struct {
	App      string          `json:"app"`
	Runs     int             `json:"runs"`
	Outcomes json.RawMessage `json:"outcomes"`
	Internal string          `json:"-"`
	cursor   int
}

type Missing struct {
	App  string // want `exported wire field App has no explicit json tag`
	Runs int    `json:"runs"`
}

type Unnamed struct {
	App string `json:",omitempty"` // want `exported wire field App has a json tag without a name`
}

type Duplicate struct {
	App   string `json:"app"`
	Alias string `json:"app"` // want `wire field Alias reuses json name "app"`
}

type Wrapped struct {
	Good `json:"good"` // want `embedded field in a serveproto wire struct`
}
