// Package serveproto is a wiredrift fixture standing in for the wire
// contract package repro/internal/serveproto.
package serveproto

import "encoding/json"

type Good struct {
	App      string          `json:"app"`
	Runs     int             `json:"runs"`
	Outcomes json.RawMessage `json:"outcomes"`
	Internal string          `json:"-"`
	cursor   int
}

type Missing struct {
	App  string // want `exported wire field App has no explicit json tag`
	Runs int    `json:"runs"`
}

type Unnamed struct {
	App string `json:",omitempty"` // want `exported wire field App has a json tag without a name`
}

type Duplicate struct {
	App   string `json:"app"`
	Alias string `json:"app"` // want `wire field Alias reuses json name "app"`
}

type Wrapped struct {
	Good `json:"good"` // want `embedded field in a serveproto wire struct`
}

// Envelope/RawEnvelope: a compliant raw view — same names, same tags, with
// json.RawMessage standing in for the undecoded payload. No diagnostics.
type Envelope struct {
	App     string `json:"app"`
	Results []Good `json:"results"`
}

type RawEnvelope struct {
	App     string          `json:"app"`
	Results json.RawMessage `json:"results"`
}

type Skewed struct {
	App  string `json:"app"`
	Runs int    `json:"runs"`
}

type RawSkewed struct {
	App  string `json:"application"` // want `raw view RawSkewed field App has tag`
	Runs int    `json:"runs"`
}

type Grown struct {
	App   string `json:"app"`
	Extra int    `json:"extra"`
}

type RawGrown struct { // want `raw view RawGrown has 1 fields but Grown has 2`
	App string `json:"app"`
}

type Renamed struct {
	App string `json:"app"`
}

type RawRenamed struct {
	Application string `json:"app"` // want `raw view RawRenamed field 0 is Application but Renamed names it App`
}

type Typed struct {
	Runs int `json:"runs"`
}

type RawTyped struct {
	Runs string `json:"runs"` // want `raw view RawTyped field Runs has type string, want int or json.RawMessage`
}
