// Package anyclient is not a wire-protocol participant, so wiredrift
// ignores its decode targets.
package anyclient

import "encoding/json"

func anonymousDecode(raw []byte) (string, error) {
	var resp struct {
		App string `json:"app"`
	}
	err := json.Unmarshal(raw, &resp)
	return resp.App, err
}
