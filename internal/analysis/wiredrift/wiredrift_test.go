package wiredrift_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/wiredrift"
)

func TestWireDrift(t *testing.T) {
	atest.Run(t, atest.TestData(t), wiredrift.Analyzer,
		"repro/internal/serveproto", "repro/internal/bench", "anyclient")
}
