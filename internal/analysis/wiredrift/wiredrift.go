// Package wiredrift implements the dmi-vet analyzer that keeps the
// distributed-serving wire contract in one place.
//
// internal/serveproto exists so that the dmi-serve daemon and its clients
// (bench.RemoteDispatcher, dmi-coord) compile against the same structs: a
// field rename is a build break, not a silent protocol skew (DESIGN.md §8).
// Two things erode that guarantee over time, and the analyzer forbids both:
//
// Implicit field names. An exported field of a serveproto wire struct
// without an explicit `json` tag is serialized under its Go name — so a
// later Go-level rename silently renames the wire field, and nothing stops
// two fields from colliding after a refactor. Every exported field must
// carry an explicit `json` tag with a name (or an explicit "-"), unique
// within its struct.
//
// Ad-hoc decode structs. An anonymous struct literal handed to
// json.Unmarshal or (*json.Decoder).Decode in a wire-protocol participant
// (the bench dispatcher, the daemon, the coordinator — tests included) is a
// second, unchecked copy of the contract: it compiles no matter what
// serveproto says, which is exactly the drift the shared package exists to
// prevent. Views needed only for testing (raw-byte comparisons, partial
// decodes) belong in serveproto next to the structs they mirror.
//
// Those raw views are themselves a drift surface, so the analyzer pins them
// too: a serveproto struct named Raw<X> whose base <X> exists must mirror it
// field for field — same field names in the same order, identical struct
// tags — with json.RawMessage permitted wherever the view leaves a payload
// undecoded. A field added to BatchResponse but not RawBatchResponse is then
// a vet failure, not a silently-partial byte-equivalence test.
package wiredrift

import (
	"go/ast"
	"go/types"
	"reflect"
	"strconv"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"
	"golang.org/x/tools/go/types/typeutil"

	"repro/internal/analysis/vetkit"
)

// protoPkg is the wire-contract package whose structs are checked for
// explicit, unique json tags.
const protoPkg = "repro/internal/serveproto"

// ClientScope lists the wire-protocol participants in which ad-hoc
// anonymous decode structs are forbidden.
var ClientScope = []string{
	"repro/internal/bench",
	"repro/cmd/dmi-serve",
	"repro/cmd/dmi-coord",
}

var Analyzer = &analysis.Analyzer{
	Name: "wiredrift",
	Doc: "keep the serveproto wire contract explicit and in one place\n\n" +
		"Exported fields of serveproto structs need explicit unique json tags; protocol\n" +
		"participants must decode wire bodies into serveproto types, not anonymous structs.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	if vetkit.InScope(pass.Pkg.Path(), []string{protoPkg}) {
		insp.Preorder([]ast.Node{(*ast.StructType)(nil)}, func(n ast.Node) {
			checkWireStruct(pass, n.(*ast.StructType))
		})
		checkRawMirrors(pass)
		return nil, nil
	}
	if vetkit.InScope(pass.Pkg.Path(), ClientScope) {
		insp.Preorder([]ast.Node{(*ast.CallExpr)(nil)}, func(n ast.Node) {
			checkDecodeTarget(pass, n.(*ast.CallExpr))
		})
	}
	return nil, nil
}

// checkWireStruct enforces explicit, unique json tags on every exported
// field of a serveproto struct.
func checkWireStruct(pass *analysis.Pass, st *ast.StructType) {
	seen := make(map[string]*ast.Field)
	for _, f := range st.Fields.List {
		names := f.Names
		if len(names) == 0 {
			// Embedded field: its identity is a type name, which makes the
			// wire layout follow a Go-level detail — always explicit-tag it
			// by wrapping in a named field instead.
			pass.Reportf(f.Pos(), "embedded field in a serveproto wire struct: give it a named field with an explicit json tag")
			continue
		}
		for _, name := range names {
			if !name.IsExported() {
				continue
			}
			tagName, ok := jsonTagName(f)
			if !ok {
				pass.Reportf(f.Pos(), "exported wire field %s has no explicit json tag: the wire name must not follow Go-level renames", name.Name)
				continue
			}
			if tagName == "-" {
				continue
			}
			if tagName == "" {
				pass.Reportf(f.Pos(), "exported wire field %s has a json tag without a name: name it explicitly (or exclude it with \"-\")", name.Name)
				continue
			}
			if prev, dup := seen[tagName]; dup {
				pass.Reportf(f.Pos(), "wire field %s reuses json name %q (already used by %s): wire names must be unique within a struct", name.Name, tagName, prev.Names[0].Name)
				continue
			}
			seen[tagName] = f
		}
	}
}

// jsonTagName extracts the name part of a field's json tag; ok is false
// when there is no json tag at all.
func jsonTagName(f *ast.Field) (name string, ok bool) {
	if f.Tag == nil {
		return "", false
	}
	raw, err := strconv.Unquote(f.Tag.Value)
	if err != nil {
		return "", false
	}
	tag, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		return "", false
	}
	name, _, _ = strings.Cut(tag, ",")
	return name, true
}

// checkRawMirrors pins every Raw<X> view struct to its base <X>: same field
// names in the same order, identical struct tags, and identical field types
// except where the view substitutes json.RawMessage for an undecoded
// payload.
func checkRawMirrors(pass *analysis.Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		base, ok := strings.CutPrefix(name, "Raw")
		if !ok || base == "" {
			continue
		}
		baseObj := scope.Lookup(base)
		if baseObj == nil {
			continue
		}
		rawObj := scope.Lookup(name)
		rawSt, ok := rawObj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		baseSt, ok := baseObj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		if rawSt.NumFields() != baseSt.NumFields() {
			pass.Reportf(rawObj.Pos(), "raw view %s has %d fields but %s has %d: raw views must mirror their base struct field for field",
				name, rawSt.NumFields(), base, baseSt.NumFields())
			continue
		}
		for i := 0; i < rawSt.NumFields(); i++ {
			rf, bf := rawSt.Field(i), baseSt.Field(i)
			switch {
			case rf.Name() != bf.Name():
				pass.Reportf(rf.Pos(), "raw view %s field %d is %s but %s names it %s: raw views must mirror field order and names",
					name, i, rf.Name(), base, bf.Name())
			case rawSt.Tag(i) != baseSt.Tag(i):
				pass.Reportf(rf.Pos(), "raw view %s field %s has tag %q but %s tags it %q: a raw view must keep the same wire names",
					name, rf.Name(), rawSt.Tag(i), base, baseSt.Tag(i))
			case !types.Identical(rf.Type(), bf.Type()) && !isRawMessage(rf.Type()):
				pass.Reportf(rf.Pos(), "raw view %s field %s has type %s, want %s or json.RawMessage",
					name, rf.Name(), rf.Type(), bf.Type())
			}
		}
	}
}

// isRawMessage reports whether t is encoding/json.RawMessage.
func isRawMessage(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "encoding/json" && obj.Name() == "RawMessage"
}

// checkDecodeTarget flags json.Unmarshal / (*json.Decoder).Decode calls
// whose target is an anonymous struct.
func checkDecodeTarget(pass *analysis.Pass, call *ast.CallExpr) {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/json" {
		return
	}
	var target ast.Expr
	switch {
	case fn.Name() == "Unmarshal" && len(call.Args) == 2:
		target = call.Args[1]
	case fn.Name() == "Decode" && len(call.Args) == 1:
		target = call.Args[0]
	default:
		return
	}
	t := pass.TypesInfo.TypeOf(target)
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	if _, anon := t.(*types.Struct); anon {
		pass.Reportf(target.Pos(), "wire body decoded into an anonymous struct: declare the view in internal/serveproto so the contract stays in one package")
	}
}
