// Package vetkit carries the small helpers the dmi-vet analyzers share:
// package-scope matching, test-file detection, and the //dmi:... directive
// comment scanner. The analyzers (maporder, purity, modelsafe, wiredrift)
// each police one repo-wide invariant in a specific set of packages; vetkit
// is where "which packages" and "which lines are annotated" are decided, so
// the four analyzers stay single-purpose.
package vetkit

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// normalizePkgPath strips the suffixes drivers append to test variants of a
// package, so scope checks treat "repro/internal/bench_test",
// "repro/internal/bench.test", and "repro/internal/bench" as one package.
func normalizePkgPath(path string) string {
	path = strings.TrimSuffix(path, "_test")
	path = strings.TrimSuffix(path, ".test")
	return path
}

// InScope reports whether the package path is one of the listed package
// paths (exact match after test-variant normalization). Scopes are explicit
// package lists, not prefixes: an analyzer's contract names the packages it
// governs, and new packages opt in by being added to the list.
func InScope(pkgPath string, scope []string) bool {
	pkgPath = normalizePkgPath(pkgPath)
	for _, s := range scope {
		if pkgPath == s {
			return true
		}
	}
	return false
}

// SamePackage reports whether pkg (a types.Package, possibly a test
// variant) is the package named by path.
func SamePackage(pkg *types.Package, path string) bool {
	return pkg != nil && normalizePkgPath(pkg.Path()) == path
}

// IsTestFile reports whether the node's position lies in a _test.go file.
func IsTestFile(pass *analysis.Pass, pos token.Pos) bool {
	f := pass.Fset.File(pos)
	return f != nil && strings.HasSuffix(f.Name(), "_test.go")
}

// DirectiveLines collects, per filename, the set of lines carrying a
// //dmi:<name> directive comment. Like //go: directives, the marker must
// immediately follow the comment slashes; free text may follow after a
// space or colon (the justification the annotation grammar asks for).
func DirectiveLines(pass *analysis.Pass, name string) map[string]map[int]bool {
	out := make(map[string]map[int]bool)
	marker := "dmi:" + name
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				if text == marker || strings.HasPrefix(text, marker+" ") || strings.HasPrefix(text, marker+":") {
					p := pass.Fset.Position(c.Pos())
					if out[p.Filename] == nil {
						out[p.Filename] = make(map[int]bool)
					}
					out[p.Filename][p.Line] = true
				}
			}
		}
	}
	return out
}

// Marked reports whether the node's line, or the line directly above it, is
// annotated in the directive line set (the two placements the annotation
// grammar allows: trailing on the statement line, or a line comment
// immediately above).
func Marked(lines map[string]map[int]bool, pass *analysis.Pass, pos token.Pos) bool {
	p := pass.Fset.Position(pos)
	return lines[p.Filename][p.Line] || lines[p.Filename][p.Line-1]
}

// NamedType resolves t (through pointers and aliases) to its named type, or
// nil: the unit modelsafe's protected-type checks key on.
func NamedType(t types.Type) *types.Named {
	for {
		switch u := t.(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Alias:
			t = types.Unalias(t)
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}

// TypeIs reports whether t resolves to the named type pkgPath.name.
func TypeIs(t types.Type, pkgPath, name string) bool {
	n := NamedType(t)
	if n == nil {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil &&
		normalizePkgPath(obj.Pkg().Path()) == pkgPath
}

// IsBuiltinCall reports whether call invokes one of the named builtins
// (len, cap, delete, ...), resolved through the type info so shadowed
// identifiers don't fool it.
func IsBuiltinCall(info *types.Info, call *ast.CallExpr, names ...string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return false
	}
	for _, n := range names {
		if id.Name == n {
			return true
		}
	}
	return false
}
