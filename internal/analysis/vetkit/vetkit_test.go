package vetkit

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"golang.org/x/tools/go/analysis"
)

func TestInScope(t *testing.T) {
	scope := []string{"repro/internal/bench", "repro/cmd/dmi-bench"}
	for path, want := range map[string]bool{
		"repro/internal/bench":       true,
		"repro/internal/bench_test":  true, // external test package variant
		"repro/internal/bench.test":  true, // test binary variant
		"repro/cmd/dmi-bench":        true,
		"repro/internal/benchmark":   false, // exact match, not a prefix
		"repro/internal/bench/sub":   false,
		"repro/internal/modelstore":  false,
		"other/repro/internal/bench": false,
	} {
		if got := InScope(path, scope); got != want {
			t.Errorf("InScope(%q) = %v, want %v", path, got, want)
		}
	}
}

// TestDirectiveGrammar pins the //dmi:<name> annotation grammar: the marker
// must immediately follow the slashes, justification text follows after a
// space or colon, and the mark covers the directive's own line plus the
// line directly below (trailing-comment and line-above placements).
func TestDirectiveGrammar(t *testing.T) {
	src := `package p

func f(m map[string]int) {
	//dmi:orderinvariant keys sorted below
	for range m {
	}
	// dmi:orderinvariant leading space does not count
	for range m {
	}
	//dmi:orderinvariantsuffix is a different word
	for range m {
	}
	//dmi:orderinvariant: colon form
	for range m {
	}
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{Fset: fset, Files: []*ast.File{f}}
	lines := DirectiveLines(pass, "orderinvariant")
	marked := lines["p.go"]
	for line, want := range map[int]bool{
		4:  true,  // the directive line itself
		7:  false, // space after // breaks the directive form
		10: false, // longer word, not this directive
		13: true,  // colon-separated justification
	} {
		if marked[line] != want {
			t.Errorf("line %d marked = %v, want %v", line, marked[line], want)
		}
	}
	// Marked covers the statement line and the line directly above.
	for pos, want := range map[int]bool{5: true, 8: false, 11: false, 14: true} {
		p := linePos(fset, f, pos)
		if got := Marked(lines, pass, p); got != want {
			t.Errorf("Marked(line %d) = %v, want %v", pos, got, want)
		}
	}
}

// linePos returns a position on the given 1-based line of the file.
func linePos(fset *token.FileSet, f *ast.File, line int) token.Pos {
	tf := fset.File(f.Pos())
	return tf.LineStart(line)
}

// typecheckSrc parses and typechecks a single-file package.
func typecheckSrc(t *testing.T, filename, src string) (*token.FileSet, *ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Defs:  make(map[*ast.Ident]types.Object),
		Uses:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := (&types.Config{}).Check("q", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, pkg, info
}

func TestTypeHelpers(t *testing.T) {
	src := `package q

type T struct{ N int }
type A = T

var (
	v  T
	p  *T
	pa *A
	i  int
	m  map[string]*T
)
`
	_, _, pkg, _ := typecheckSrc(t, "q.go", src)
	typeOf := func(name string) types.Type {
		obj := pkg.Scope().Lookup(name)
		if obj == nil {
			t.Fatalf("no object %q", name)
		}
		return obj.Type()
	}
	// NamedType resolves through pointers and aliases to the named type.
	for _, name := range []string{"v", "p", "pa"} {
		n := NamedType(typeOf(name))
		if n == nil || n.Obj().Name() != "T" {
			t.Errorf("NamedType(%s) = %v, want q.T", name, n)
		}
	}
	if n := NamedType(typeOf("i")); n != nil {
		t.Errorf("NamedType(int) = %v, want nil", n)
	}
	if n := NamedType(typeOf("m")); n != nil {
		t.Errorf("NamedType(map) = %v, want nil (no resolution through maps)", n)
	}
	// TypeIs matches package path + name, through pointers and aliases.
	if !TypeIs(typeOf("pa"), "q", "T") {
		t.Error("TypeIs(*A) should match q.T through the alias")
	}
	if TypeIs(typeOf("v"), "q", "U") || TypeIs(typeOf("v"), "other", "T") || TypeIs(typeOf("i"), "q", "T") {
		t.Error("TypeIs matched a wrong name, package, or unnamed type")
	}
	// SamePackage normalizes test-variant package paths.
	if !SamePackage(pkg, "q") || SamePackage(pkg, "r") || SamePackage(nil, "q") {
		t.Error("SamePackage misjudged the package identity")
	}
	if !SamePackage(types.NewPackage("q_test", "q"), "q") {
		t.Error("SamePackage should normalize the _test package variant")
	}
}

func TestIsBuiltinCall(t *testing.T) {
	src := `package q

func f(m map[string]int, s []int) int {
	delete(m, "k")
	n := len(m) + cap(s)
	g := func(x map[string]int, k string) {}
	g(m, "k")
	return n
}

func delete2(m map[string]int, k string) {}

func shadowed(m map[string]int) {
	delete := func(map[string]int, string) {}
	delete(m, "k")
}
`
	_, f, _, info := typecheckSrc(t, "q.go", src)
	var calls []*ast.CallExpr
	ast.Inspect(f, func(n ast.Node) bool {
		if c, ok := n.(*ast.CallExpr); ok {
			calls = append(calls, c)
		}
		return true
	})
	// Calls appear in source order: delete, len, cap, g, shadowed delete.
	if len(calls) != 5 {
		t.Fatalf("found %d calls, want 5", len(calls))
	}
	if !IsBuiltinCall(info, calls[0], "delete") || IsBuiltinCall(info, calls[0], "len", "cap") {
		t.Error("real delete builtin misclassified")
	}
	if !IsBuiltinCall(info, calls[1], "len", "cap") || !IsBuiltinCall(info, calls[2], "len", "cap") {
		t.Error("len/cap builtins not recognized")
	}
	if IsBuiltinCall(info, calls[3], "delete", "len", "cap") {
		t.Error("ordinary function call misclassified as builtin")
	}
	if IsBuiltinCall(info, calls[4], "delete") {
		t.Error("shadowed delete must not count as the builtin")
	}
}

func TestIsTestFile(t *testing.T) {
	fset := token.NewFileSet()
	reg, err := parser.ParseFile(fset, "pkg.go", "package q", 0)
	if err != nil {
		t.Fatal(err)
	}
	tst, err := parser.ParseFile(fset, "pkg_test.go", "package q", 0)
	if err != nil {
		t.Fatal(err)
	}
	pass := &analysis.Pass{Fset: fset}
	if IsTestFile(pass, reg.Pos()) {
		t.Error("pkg.go classified as a test file")
	}
	if !IsTestFile(pass, tst.Pos()) {
		t.Error("pkg_test.go not classified as a test file")
	}
	if IsTestFile(pass, token.NoPos) {
		t.Error("NoPos cannot be in a test file")
	}
}
