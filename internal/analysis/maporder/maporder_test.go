package maporder_test

import (
	"testing"

	"repro/internal/analysis/atest"
	"repro/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	atest.Run(t, atest.TestData(t), maporder.Analyzer,
		"repro/internal/bench", "outofscope")
}
