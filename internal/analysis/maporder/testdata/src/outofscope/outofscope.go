// Package outofscope is not on the report path, so maporder ignores it
// entirely.
package outofscope

func collectKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
