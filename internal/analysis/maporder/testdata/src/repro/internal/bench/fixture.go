// Package bench is a maporder fixture standing in for the report-path
// package repro/internal/bench (in Scope).
package bench

func collectKeys(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map m has order-dependent effects`
		out = append(out, k)
	}
	return out
}

func setSink(m map[string]int) map[string]bool {
	set := make(map[string]bool)
	for k := range m {
		set[k] = true
	}
	return set
}

func sumSink(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func countSink(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func intersect(keep map[string]bool, other map[string]bool) {
	for k := range keep {
		if !other[k] {
			delete(keep, k)
		}
	}
}

func annotatedAbove(m map[string]int) []string {
	var out []string
	//dmi:orderinvariant collected keys are sorted by the caller
	for k := range m {
		out = append(out, k)
	}
	return out
}

func annotatedTrailing(m map[string]int) []string {
	var out []string
	for k := range m { //dmi:orderinvariant collected keys are sorted by the caller
		out = append(out, k)
	}
	return out
}

func impureAccumulator(m map[string]int) int {
	n := 0
	for _, v := range m { // want `range over map m has order-dependent effects`
		n += double(v)
	}
	return n
}

func double(v int) int { return v * 2 }

func firstMatch(m map[string]int) string {
	for k, v := range m { // want `range over map m has order-dependent effects`
		if v > 0 {
			return k
		}
	}
	return ""
}

func sliceRange(xs []int) []int {
	var out []int
	for _, v := range xs {
		out = append(out, v)
	}
	return out
}
