package bench

// Test files are exempt: an order-dependent assertion fails loudly under
// any iteration order, so nothing here is flagged.

func collectKeysForAssertion(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
