// Package maporder implements the dmi-vet analyzer that guards the
// byte-identical report path against Go's randomized map iteration order.
//
// Every layer of the serving stack is accepted by byte-comparing its report
// against the sequential reference (DESIGN.md §6, §9). A `for range` over a
// map inside that path is the classic way the comparison breaks only
// sometimes: iteration order is randomized per run, so any order-dependent
// effect — appending to a slice that is read in order, returning the first
// matching element, string concatenation — makes output bytes a function of
// the scheduler, not the inputs.
//
// The analyzer flags every map range statement in the report-path packages
// unless either
//
//   - the loop body is provably order-insensitive: every statement is a
//     commutative accumulation (x += v, x++, set insert m[k] = v, delete)
//     optionally wrapped in pure conditionals, so reordering iterations
//     cannot change the result (e.g. the solved-task intersection in
//     bench.Report.NormalizedCoreSteps); or
//   - the range is annotated with a //dmi:orderinvariant justification on
//     the statement's line or the line directly above (the collect-then-sort
//     idiom, which is order-insensitive for a reason the analyzer cannot
//     prove).
//
// The body heuristic is deliberately conservative and makes no claim of
// soundness in the other direction: keyed stores with colliding keys and
// floating-point accumulation (where + is not associative) pass the check
// but can still be order-dependent. The annotation requirement is the
// backstop: anything the heuristic cannot bless must carry a human-written
// justification that survives review. _test.go files are exempt: tests
// assert rather than render, and an order-dependent assertion fails loudly
// under any iteration order.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"repro/internal/analysis/vetkit"
)

// Scope lists the packages on the byte-identical report path: everything
// between outcome collection and the rendered report, plus the wire layer
// and the CLIs that print it.
var Scope = []string{
	"repro/internal/bench",
	"repro/internal/describe",
	"repro/internal/ung",
	"repro/internal/serveproto",
	"repro/cmd/dmi-bench",
	"repro/cmd/dmi-coord",
}

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map iteration with order-dependent effects in the byte-identical report path\n\n" +
		"Ranges over map-typed values inside the report-path packages must either have a\n" +
		"provably order-insensitive body (commutative accumulators, set insert/delete) or\n" +
		"carry a //dmi:orderinvariant justification comment.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func run(pass *analysis.Pass) (interface{}, error) {
	if !vetkit.InScope(pass.Pkg.Path(), Scope) {
		return nil, nil
	}
	marked := vetkit.DirectiveLines(pass, "orderinvariant")
	insp := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)
	insp.Preorder([]ast.Node{(*ast.RangeStmt)(nil)}, func(n ast.Node) {
		rs := n.(*ast.RangeStmt)
		if vetkit.IsTestFile(pass, rs.Pos()) {
			// Tests assert; an order-dependent assertion fails loudly under
			// any order. The byte-identity contract is about report output.
			return
		}
		t := pass.TypesInfo.TypeOf(rs.X)
		if t == nil {
			return
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return
		}
		if vetkit.Marked(marked, pass, rs.For) {
			return
		}
		if blockOrderInsensitive(pass.TypesInfo, rs.Body) {
			return
		}
		pass.Reportf(rs.For, "range over map %s has order-dependent effects in the byte-identical report path; iterate a deterministic order (e.g. a sorted key slice or an Order list), make every statement an order-insensitive sink, or justify with //dmi:orderinvariant", types.ExprString(rs.X))
	})
	return nil, nil
}

// blockOrderInsensitive reports whether every statement in the block is an
// order-insensitive sink.
func blockOrderInsensitive(info *types.Info, b *ast.BlockStmt) bool {
	for _, s := range b.List {
		if !stmtOrderInsensitive(info, s) {
			return false
		}
	}
	return true
}

// stmtOrderInsensitive recognizes the statement forms whose effect is the
// same under any iteration order: commutative accumulation into a variable,
// insertion into / deletion from another map, and pure conditionals around
// them. Everything else — appends, returns, breaks, calls, sends — is
// order-dependent until proven otherwise by annotation.
func stmtOrderInsensitive(info *types.Info, s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		switch s.Tok {
		case token.ASSIGN, token.DEFINE:
			// Plain stores are sinks only when every target is a map
			// element (set insert): writes to distinct keys commute, and
			// same-key overwrites are the annotated case, not this one.
			for _, l := range s.Lhs {
				if !isMapIndexStore(info, l) {
					return false
				}
			}
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN,
			token.AND_ASSIGN, token.XOR_ASSIGN:
			// Commutative-and-associative accumulation (for the integer
			// accumulators the report path uses).
		default:
			return false
		}
		for _, r := range s.Rhs {
			if !exprPure(info, r) {
				return false
			}
		}
		return true
	case *ast.IncDecStmt:
		return true
	case *ast.ExprStmt:
		call, ok := s.X.(*ast.CallExpr)
		return ok && vetkit.IsBuiltinCall(info, call, "delete")
	case *ast.IfStmt:
		if s.Init != nil && !stmtOrderInsensitive(info, s.Init) {
			return false
		}
		if !exprPure(info, s.Cond) || !blockOrderInsensitive(info, s.Body) {
			return false
		}
		if s.Else != nil {
			return stmtOrderInsensitive(info, s.Else)
		}
		return true
	case *ast.BlockStmt:
		return blockOrderInsensitive(info, s)
	case *ast.EmptyStmt:
		return true
	}
	return false
}

// isMapIndexStore reports whether e is an index expression into a map.
func isMapIndexStore(info *types.Info, e ast.Expr) bool {
	ix, ok := ast.Unparen(e).(*ast.IndexExpr)
	if !ok {
		return false
	}
	t := info.TypeOf(ix.X)
	if t == nil {
		return false
	}
	_, isMap := t.Underlying().(*types.Map)
	return isMap
}

// exprPure reports whether evaluating e has no side effects: no calls other
// than the pure builtins len and cap, no channel receives.
func exprPure(info *types.Info, e ast.Expr) bool {
	pure := true
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if !vetkit.IsBuiltinCall(info, n, "len", "cap") {
				pure = false
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				pure = false
			}
		case *ast.FuncLit:
			return false // a literal is a value; calling it would be a CallExpr
		}
		return pure
	})
	return pure
}
