package uia

import (
	"fmt"
	"strings"
)

// Rect is a bounding rectangle in virtual screen coordinates.
type Rect struct {
	X, Y, W, H int
}

// Contains reports whether the point (x, y) lies inside the rectangle.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X && x < r.X+r.W && y >= r.Y && y < r.Y+r.H
}

// Center returns the midpoint of the rectangle.
func (r Rect) Center() (x, y int) { return r.X + r.W/2, r.Y + r.H/2 }

// Empty reports whether the rectangle has zero area.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Element is a node in an accessibility tree: one UI control. Elements are
// mutable; applications wire behaviour in with pattern providers and click
// handlers, and mutate the tree as interaction proceeds (menus opening, tabs
// switching, dialogs appearing).
//
// The zero value is not useful; create elements with NewElement.
type Element struct {
	automationID string
	name         string
	ctype        ControlType
	desc         string

	enabled   bool
	visible   bool
	largeEnum bool // large enumeration (font list, symbol grid): pruned from core topologies
	rect      Rect

	parent   *Element
	children []*Element

	patterns map[PatternID]any
	onClick  []func(e *Element)

	// deferVisible implements lazy loading: while > 0, the element is
	// excluded from snapshots and each snapshot observation decrements it.
	deferVisible int

	idCache string // synthesized control ID; invalidated on renames
}

// NewElement creates a visible, enabled element.
func NewElement(automationID, name string, t ControlType) *Element {
	return &Element{
		automationID: automationID,
		name:         name,
		ctype:        t,
		enabled:      true,
		visible:      true,
		patterns:     make(map[PatternID]any),
	}
}

// AutomationID returns the (not necessarily unique) automation identifier.
func (e *Element) AutomationID() string { return e.automationID }

// Name returns the control name.
func (e *Element) Name() string { return e.name }

// SetName renames the control. Renames happen in real applications (the
// paper's example: Word's "Next" button becoming "Go To") and invalidate the
// synthesized identifiers of the whole subtree.
func (e *Element) SetName(name string) {
	if e.name == name {
		return
	}
	e.name = name
	e.invalidateIDs()
}

// Type returns the control type.
func (e *Element) Type() ControlType { return e.ctype }

// Description returns the full_description accessibility property.
func (e *Element) Description() string { return e.desc }

// SetDescription sets the full_description accessibility property.
func (e *Element) SetDescription(d string) { e.desc = d }

// Enabled reports whether the control accepts interaction.
func (e *Element) Enabled() bool { return e.enabled }

// SetEnabled enables or disables the control.
func (e *Element) SetEnabled(v bool) { e.enabled = v }

// Visible reports the element's own visibility flag. Use OnScreen to check
// whether the element is actually exposed (all ancestors visible too).
func (e *Element) Visible() bool { return e.visible }

// SetVisible sets the element's own visibility flag.
func (e *Element) SetVisible(v bool) { e.visible = v }

// LargeEnum reports whether this element roots a large enumeration (such as
// a font list) that core-topology extraction prunes (paper §3.3).
func (e *Element) LargeEnum() bool { return e.largeEnum }

// MarkLargeEnum flags the element as a large enumeration root.
func (e *Element) MarkLargeEnum() { e.largeEnum = true }

// Rect returns the element's bounding rectangle.
func (e *Element) Rect() Rect { return e.rect }

// SetRect sets the element's bounding rectangle.
func (e *Element) SetRect(r Rect) { e.rect = r }

// Parent returns the parent element, or nil at a tree root.
func (e *Element) Parent() *Element { return e.parent }

// Children returns the child slice. Callers must not mutate it.
func (e *Element) Children() []*Element { return e.children }

// AddChild appends child (and its subtree) under e.
func (e *Element) AddChild(child *Element) {
	if child.parent != nil {
		child.parent.RemoveChild(child)
	}
	child.parent = e
	child.invalidateIDs()
	e.children = append(e.children, child)
}

// RemoveChild detaches child from e. It is a no-op if child is not a child
// of e.
func (e *Element) RemoveChild(child *Element) {
	for i, c := range e.children {
		if c == child {
			e.children = append(e.children[:i], e.children[i+1:]...)
			child.parent = nil
			child.invalidateIDs()
			return
		}
	}
}

// Root walks to the top of the tree containing e (usually a Window element).
func (e *Element) Root() *Element {
	r := e
	for r.parent != nil {
		r = r.parent
	}
	return r
}

// Ancestors returns the chain from e's parent up to the root.
func (e *Element) Ancestors() []*Element {
	var out []*Element
	for p := e.parent; p != nil; p = p.parent {
		out = append(out, p)
	}
	return out
}

// IsDescendantOf reports whether e is anc or lies beneath it.
func (e *Element) IsDescendantOf(anc *Element) bool {
	for cur := e; cur != nil; cur = cur.parent {
		if cur == anc {
			return true
		}
	}
	return false
}

// OnScreen reports whether the element is currently exposed in the
// accessibility tree: it and all its ancestors are visible and it is not
// still lazily loading.
func (e *Element) OnScreen() bool {
	if e.deferVisible > 0 {
		return false
	}
	for cur := e; cur != nil; cur = cur.parent {
		if !cur.visible {
			return false
		}
	}
	return true
}

// DeferVisibility hides the element from the next n snapshots, simulating a
// control that the application populates asynchronously (paper §3.4,
// "failure retry mechanism for GUI controls that may load slowly").
func (e *Element) DeferVisibility(n int) { e.deferVisible = n }

// SetPattern attaches a control-pattern provider. The provider must satisfy
// the behaviour interface corresponding to the pattern (Toggler for
// TogglePattern, Scroller for ScrollPattern, ...), but the framework stores
// it untyped so applications can attach marker-only patterns too.
func (e *Element) SetPattern(id PatternID, provider any) {
	e.patterns[id] = provider
}

// Pattern returns the provider attached for id, or nil.
func (e *Element) Pattern(id PatternID) any { return e.patterns[id] }

// HasPattern reports whether the pattern is supported.
func (e *Element) HasPattern(id PatternID) bool {
	_, ok := e.patterns[id]
	return ok
}

// PatternIDs returns the identifiers of all supported patterns, unordered.
func (e *Element) PatternIDs() []PatternID {
	out := make([]PatternID, 0, len(e.patterns))
	for id := range e.patterns {
		out = append(out, id)
	}
	return out
}

// OnClick registers a handler run when the element is clicked. Handlers run
// in registration order after pattern-default behaviour (toggle flip,
// selection) has been applied.
func (e *Element) OnClick(fn func(e *Element)) {
	e.onClick = append(e.onClick, fn)
}

// Walk visits e and every descendant in depth-first, document order. The
// visit function returns false to prune the subtree below the visited node.
func (e *Element) Walk(visit func(*Element) bool) {
	if !visit(e) {
		return
	}
	for _, c := range e.children {
		c.Walk(visit)
	}
}

// Find returns the first descendant (including e) for which match returns
// true, or nil.
func (e *Element) Find(match func(*Element) bool) *Element {
	var found *Element
	e.Walk(func(n *Element) bool {
		if found != nil {
			return false
		}
		if match(n) {
			found = n
			return false
		}
		return true
	})
	return found
}

// FindByName returns the first on-screen descendant with the given name, or
// nil.
func (e *Element) FindByName(name string) *Element {
	return e.Find(func(n *Element) bool {
		return n.name == name && n.OnScreen()
	})
}

// FindByAutomationID returns the first descendant with the given automation
// id, or nil.
func (e *Element) FindByAutomationID(id string) *Element {
	return e.Find(func(n *Element) bool { return n.automationID == id })
}

// Count returns the number of elements in the subtree rooted at e.
func (e *Element) Count() int {
	n := 0
	e.Walk(func(*Element) bool { n++; return true })
	return n
}

// Depth returns the maximum depth of the subtree rooted at e (a leaf has
// depth 1).
func (e *Element) Depth() int {
	max := 0
	for _, c := range e.children {
		if d := c.Depth(); d > max {
			max = d
		}
	}
	return max + 1
}

// primaryID returns the leading component of the synthesized control ID:
// the automation id when present, otherwise the name, otherwise "[Unnamed]"
// (paper §4.1).
func (e *Element) primaryID() string {
	switch {
	case e.automationID != "":
		return e.automationID
	case e.name != "":
		return e.name
	default:
		return "[Unnamed]"
	}
}

// ControlID synthesizes the XPath-like identifier used to label the element
// as a UNG node (paper §4.1):
//
//	primary_id|control_type|ancestor_path
//
// where ancestor_path is the slash-delimited sequence of ancestor primary
// ids from the root down. Index-based addressing is deliberately avoided:
// dynamic menus shift indices unpredictably.
func (e *Element) ControlID() string {
	if e.idCache != "" {
		return e.idCache
	}
	anc := e.Ancestors()
	var b strings.Builder
	b.WriteString(e.primaryID())
	b.WriteByte('|')
	b.WriteString(e.ctype.String())
	b.WriteByte('|')
	for i := len(anc) - 1; i >= 0; i-- {
		b.WriteString(anc[i].primaryID())
		if i > 0 {
			b.WriteByte('/')
		}
	}
	e.idCache = b.String()
	return e.idCache
}

func (e *Element) invalidateIDs() {
	e.Walk(func(n *Element) bool {
		n.idCache = ""
		return true
	})
}

// String renders a short human-readable description for diagnostics.
func (e *Element) String() string {
	return fmt.Sprintf("%s(%s)", e.name, e.ctype)
}
