package uia

import (
	"strings"
	"testing"
	"testing/quick"
)

func newTree() (*Element, *Element, *Element, *Element) {
	root := NewElement("win", "Word", WindowControl)
	tab := NewElement("tabHome", "Home", TabItemControl)
	grp := NewElement("", "Font", GroupControl)
	btn := NewElement("btnBold", "Bold", ButtonControl)
	root.AddChild(tab)
	tab.AddChild(grp)
	grp.AddChild(btn)
	return root, tab, grp, btn
}

func TestControlTypeString(t *testing.T) {
	cases := []struct {
		ct   ControlType
		want string
	}{
		{ButtonControl, "Button"},
		{TabItemControl, "TabItem"},
		{DataItemControl, "DataItem"},
		{SplitButtonControl, "SplitButton"},
		{AppBarControl, "AppBar"},
	}
	for _, c := range cases {
		if got := c.ct.String(); got != c.want {
			t.Errorf("String(%d) = %q, want %q", int(c.ct), got, c.want)
		}
		back, ok := ParseControlType(c.want)
		if !ok || back != c.ct {
			t.Errorf("ParseControlType(%q) = %v, %v", c.want, back, ok)
		}
	}
	if _, ok := ParseControlType("Nonsense"); ok {
		t.Error("ParseControlType accepted unknown name")
	}
}

func TestNumControlTypesAndPatterns(t *testing.T) {
	if NumControlTypes != 41 {
		t.Errorf("NumControlTypes = %d, want 41 (UIA)", NumControlTypes)
	}
	if NumPatterns != 34 {
		t.Errorf("NumPatterns = %d, want 34 (UIA)", NumPatterns)
	}
}

func TestControlIDSynthesis(t *testing.T) {
	_, _, grp, btn := newTree()
	got := btn.ControlID()
	want := "btnBold|Button|win/tabHome/Font"
	if got != want {
		t.Errorf("ControlID = %q, want %q", got, want)
	}
	// Group has no automation id: primary falls back to name.
	if id := grp.ControlID(); !strings.HasPrefix(id, "Font|Group|") {
		t.Errorf("group ControlID = %q, want Font|Group| prefix", id)
	}
}

func TestControlIDUnnamedFallback(t *testing.T) {
	e := NewElement("", "", PaneControl)
	if id := e.ControlID(); !strings.HasPrefix(id, "[Unnamed]|Pane|") {
		t.Errorf("ControlID = %q, want [Unnamed] fallback", id)
	}
}

func TestRenameInvalidatesDescendantIDs(t *testing.T) {
	_, tab, grp, btn := newTree()
	before := btn.ControlID()
	// grp has no automation id, so its primary id is its name; renaming it
	// must invalidate and change descendant identifiers.
	grp.SetName("Typeface")
	after := btn.ControlID()
	if before == after {
		t.Fatal("rename of ancestor did not change descendant ControlID")
	}
	if !strings.Contains(after, "Typeface") {
		t.Errorf("ControlID %q does not reflect rename", after)
	}
	// An ancestor with an automation id keeps identifiers stable across
	// renames: the primary id is the automation id, not the name.
	stable := btn.ControlID()
	tab.SetName("Start")
	if btn.ControlID() != stable {
		t.Error("rename of automation-id ancestor changed descendant ControlID")
	}
}

func TestAddChildReparents(t *testing.T) {
	root, tab, grp, btn := newTree()
	other := NewElement("", "Clipboard", GroupControl)
	tab.AddChild(other)
	other.AddChild(btn) // moves btn from grp to other
	if btn.Parent() != other {
		t.Fatal("AddChild did not reparent")
	}
	if grp.Find(func(e *Element) bool { return e == btn }) != nil {
		t.Fatal("btn still reachable under old parent")
	}
	if root.Count() != 4+1 {
		t.Errorf("Count = %d, want 5", root.Count())
	}
}

func TestOnScreenRespectsAncestors(t *testing.T) {
	_, tab, _, btn := newTree()
	if !btn.OnScreen() {
		t.Fatal("btn should start on screen")
	}
	tab.SetVisible(false)
	if btn.OnScreen() {
		t.Fatal("btn visible although ancestor hidden")
	}
}

func TestDeferVisibility(t *testing.T) {
	d := NewDesktop()
	root, _, _, btn := newTree()
	d.OpenWindow(root)
	btn.DeferVisibility(2)
	if contains(d.Snapshot(), btn) {
		t.Fatal("deferred element visible in snapshot 1")
	}
	if contains(d.Snapshot(), btn) {
		t.Fatal("deferred element visible in snapshot 2")
	}
	if !contains(d.Snapshot(), btn) {
		t.Fatal("deferred element still hidden in snapshot 3")
	}
}

func TestWalkPrune(t *testing.T) {
	root, tab, _, _ := newTree()
	var seen []string
	root.Walk(func(e *Element) bool {
		seen = append(seen, e.Name())
		return e != tab // prune below the tab
	})
	if len(seen) != 2 {
		t.Errorf("Walk visited %v, want [Word Home]", seen)
	}
}

func TestFindHelpers(t *testing.T) {
	root, _, _, btn := newTree()
	if root.FindByName("Bold") != btn {
		t.Error("FindByName failed")
	}
	if root.FindByAutomationID("btnBold") != btn {
		t.Error("FindByAutomationID failed")
	}
	btn.SetVisible(false)
	if root.FindByName("Bold") != nil {
		t.Error("FindByName returned off-screen element")
	}
}

func TestDepth(t *testing.T) {
	root, _, _, _ := newTree()
	if d := root.Depth(); d != 4 {
		t.Errorf("Depth = %d, want 4", d)
	}
}

func TestAncestorsOrder(t *testing.T) {
	root, tab, grp, btn := newTree()
	anc := btn.Ancestors()
	if len(anc) != 3 || anc[0] != grp || anc[1] != tab || anc[2] != root {
		t.Errorf("Ancestors order wrong: %v", anc)
	}
	if !btn.IsDescendantOf(root) || root.IsDescendantOf(btn) {
		t.Error("IsDescendantOf wrong")
	}
}

func TestRectContainsProperty(t *testing.T) {
	f := func(x, y int8, w, h uint8) bool {
		r := Rect{int(x), int(y), int(w), int(h)}
		cx, cy := r.Center()
		if r.Empty() {
			return !r.Contains(cx, cy)
		}
		return r.Contains(cx, cy) &&
			!r.Contains(r.X-1, r.Y) && !r.Contains(r.X+r.W, r.Y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func contains(list []*Element, e *Element) bool {
	for _, x := range list {
		if x == e {
			return true
		}
	}
	return false
}
