package uia

import (
	"fmt"
	"strings"
)

// This file provides reusable state-backed pattern providers so that
// applications don't re-implement common control behaviour. Each provider
// stores its state internally and can notify the application of changes.

// ToggleState provider ------------------------------------------------------

// SimpleToggle is a Toggler backed by a stored state.
type SimpleToggle struct {
	State    ToggleState
	OnChange func(e *Element, s ToggleState)
}

// NewToggle creates a toggle provider starting at ToggleOff.
func NewToggle(onChange func(e *Element, s ToggleState)) *SimpleToggle {
	return &SimpleToggle{OnChange: onChange}
}

// ToggleState returns the stored state.
func (t *SimpleToggle) ToggleState(*Element) ToggleState { return t.State }

// SetToggleState stores the state and fires the change hook.
func (t *SimpleToggle) SetToggleState(e *Element, s ToggleState) error {
	if t.State == s {
		return nil
	}
	t.State = s
	if t.OnChange != nil {
		t.OnChange(e, s)
	}
	return nil
}

// Value provider -------------------------------------------------------------

// SimpleValue is a Valuer backed by a stored string.
type SimpleValue struct {
	Val      string
	ReadOnly bool
	OnChange func(e *Element, v string)
}

// NewValue creates a writable value provider.
func NewValue(initial string, onChange func(e *Element, v string)) *SimpleValue {
	return &SimpleValue{Val: initial, OnChange: onChange}
}

// Value returns the stored string.
func (v *SimpleValue) Value(*Element) string { return v.Val }

// SetValue stores the string and fires the change hook.
func (v *SimpleValue) SetValue(e *Element, s string) error {
	if v.ReadOnly {
		return fmt.Errorf("uia: value of %s is read-only", e)
	}
	v.Val = s
	if v.OnChange != nil {
		v.OnChange(e, s)
	}
	return nil
}

// IsReadOnly reports the read-only flag.
func (v *SimpleValue) IsReadOnly(*Element) bool { return v.ReadOnly }

// Scroll provider ------------------------------------------------------------

// SimpleScroll is a Scroller backed by stored percentages. Disable an axis
// with NoScroll.
type SimpleScroll struct {
	H, V     float64
	OnChange func(e *Element, h, v float64)
}

// NewVScroll creates a vertical-only scroll provider at 0%.
func NewVScroll(onChange func(e *Element, h, v float64)) *SimpleScroll {
	return &SimpleScroll{H: NoScroll, OnChange: onChange}
}

// ScrollPercent returns the stored axis positions.
func (s *SimpleScroll) ScrollPercent(*Element) (float64, float64) { return s.H, s.V }

// SetScrollPercent stores positions, clamping to [0,100]; NoScroll axes are
// preserved by passing NoScroll.
func (s *SimpleScroll) SetScrollPercent(e *Element, h, v float64) error {
	if s.H != NoScroll && h != NoScroll {
		s.H = clampPercent(h)
	}
	if s.V != NoScroll && v != NoScroll {
		s.V = clampPercent(v)
	}
	if s.OnChange != nil {
		s.OnChange(e, s.H, s.V)
	}
	return nil
}

// ScrollStep nudges each scrollable axis by the given delta.
func (s *SimpleScroll) ScrollStep(e *Element, dh, dv float64) error {
	h, v := s.H, s.V
	if h != NoScroll {
		h += dh
	}
	if v != NoScroll {
		v += dv
	}
	return s.SetScrollPercent(e, h, v)
}

// Text provider ---------------------------------------------------------------

// SimpleText is a Texter over a line-oriented body. Paragraphs are runs of
// non-empty lines separated by blank lines. Line and paragraph indices are
// 1-based, matching the select_lines / select_paragraphs interfaces.
type SimpleText struct {
	Lines    []string
	selStart int // 1-based inclusive; 0 = no selection
	selEnd   int
	OnSelect func(e *Element, start, end int)
}

// NewText creates a text provider from a body split on newlines.
func NewText(body string) *SimpleText {
	if body == "" {
		return &SimpleText{}
	}
	return &SimpleText{Lines: strings.Split(body, "\n")}
}

// Text returns the joined body.
func (t *SimpleText) Text(*Element) string { return strings.Join(t.Lines, "\n") }

// LineCount returns the number of lines.
func (t *SimpleText) LineCount(*Element) int { return len(t.Lines) }

// SelectLines selects the 1-based inclusive line range [start, end].
func (t *SimpleText) SelectLines(e *Element, start, end int) error {
	if start < 1 || end < start || end > len(t.Lines) {
		return fmt.Errorf("uia: line range [%d,%d] out of bounds (1..%d)", start, end, len(t.Lines))
	}
	t.selStart, t.selEnd = start, end
	if t.OnSelect != nil {
		t.OnSelect(e, start, end)
	}
	return nil
}

// paragraphRanges returns the 1-based [start,end] line range of each
// paragraph.
func (t *SimpleText) paragraphRanges() [][2]int {
	var out [][2]int
	start := 0
	for i, l := range t.Lines {
		if strings.TrimSpace(l) == "" {
			if start > 0 {
				out = append(out, [2]int{start, i})
				start = 0
			}
			continue
		}
		if start == 0 {
			start = i + 1
		}
	}
	if start > 0 {
		out = append(out, [2]int{start, len(t.Lines)})
	}
	return out
}

// ParagraphCount returns the number of paragraphs.
func (t *SimpleText) ParagraphCount(*Element) int { return len(t.paragraphRanges()) }

// SelectParagraphs selects the contiguous 1-based paragraph range
// [start, end], expressed as the underlying line selection.
func (t *SimpleText) SelectParagraphs(e *Element, start, end int) error {
	ranges := t.paragraphRanges()
	if start < 1 || end < start || end > len(ranges) {
		return fmt.Errorf("uia: paragraph range [%d,%d] out of bounds (1..%d)", start, end, len(ranges))
	}
	t.selStart, t.selEnd = ranges[start-1][0], ranges[end-1][1]
	if t.OnSelect != nil {
		t.OnSelect(e, t.selStart, t.selEnd)
	}
	return nil
}

// Selection returns the current 1-based line selection.
func (t *SimpleText) Selection(*Element) (int, int, bool) {
	return t.selStart, t.selEnd, t.selStart > 0
}

// SelectedText returns the text of the selected lines, or "".
func (t *SimpleText) SelectedText() string {
	if t.selStart == 0 {
		return ""
	}
	return strings.Join(t.Lines[t.selStart-1:t.selEnd], "\n")
}

// ClearSelection drops the selection.
func (t *SimpleText) ClearSelection() { t.selStart, t.selEnd = 0, 0 }

// Selection list provider -----------------------------------------------------

// SimpleSelectionList coordinates a Selection container and its
// SelectionItem children. Attach the container half to the list element with
// SelectionPattern and the item half (Item method) to each child with
// SelectionItemPattern.
type SimpleSelectionList struct {
	Multi    bool
	selected map[*Element]bool
	OnChange func(selected []*Element)
}

// NewSelectionList creates a selection coordinator.
func NewSelectionList(multi bool, onChange func([]*Element)) *SimpleSelectionList {
	return &SimpleSelectionList{Multi: multi, selected: make(map[*Element]bool), OnChange: onChange}
}

// SelectedItems returns the selected children of the container in tree
// order.
func (l *SimpleSelectionList) SelectedItems(container *Element) []*Element {
	var out []*Element
	container.Walk(func(e *Element) bool {
		if l.selected[e] {
			out = append(out, e)
		}
		return true
	})
	return out
}

// CanSelectMultiple reports multi-select support.
func (l *SimpleSelectionList) CanSelectMultiple(*Element) bool { return l.Multi }

// Item returns the SelectionItem half for a child element.
func (l *SimpleSelectionList) Item() SelectionItem { return (*selectionListItem)(l) }

type selectionListItem SimpleSelectionList

func (li *selectionListItem) IsSelected(e *Element) bool { return li.selected[e] }

func (li *selectionListItem) Select(e *Element) error {
	for k := range li.selected {
		delete(li.selected, k)
	}
	li.selected[e] = true
	li.fire(e)
	return nil
}

func (li *selectionListItem) AddToSelection(e *Element) error {
	if !li.Multi && len(li.selected) > 0 {
		return fmt.Errorf("uia: %s does not support multi-select", e)
	}
	li.selected[e] = true
	li.fire(e)
	return nil
}

func (li *selectionListItem) RemoveFromSelection(e *Element) error {
	delete(li.selected, e)
	li.fire(e)
	return nil
}

func (li *selectionListItem) fire(e *Element) {
	if li.OnChange == nil {
		return
	}
	root := e.Root()
	(*SimpleSelectionList)(li).notifyFrom(root)
}

func (l *SimpleSelectionList) notifyFrom(root *Element) {
	if l.OnChange != nil {
		l.OnChange(l.SelectedItems(root))
	}
}

// Range value provider --------------------------------------------------------

// SimpleRange is a RangeValuer backed by a stored float.
type SimpleRange struct {
	Val, Min, Max float64
	OnChange      func(e *Element, v float64)
}

// RangeValue returns the stored value.
func (r *SimpleRange) RangeValue(*Element) float64 { return r.Val }

// SetRangeValue stores the value, rejecting out-of-range targets.
func (r *SimpleRange) SetRangeValue(e *Element, v float64) error {
	if v < r.Min || v > r.Max {
		return fmt.Errorf("uia: range value %v outside [%v,%v]", v, r.Min, r.Max)
	}
	r.Val = v
	if r.OnChange != nil {
		r.OnChange(e, v)
	}
	return nil
}

// Range returns the bounds.
func (r *SimpleRange) Range(*Element) (float64, float64) { return r.Min, r.Max }

// Expand/collapse provider ----------------------------------------------------

// SimpleExpand is an ExpandCollapser that shows or hides a target element
// (typically the dropdown content pane) when expanded or collapsed.
type SimpleExpand struct {
	Target   *Element
	state    ExpandState
	OnChange func(e *Element, s ExpandState)
}

// NewExpand creates a collapsed expander controlling target's visibility.
func NewExpand(target *Element) *SimpleExpand {
	if target != nil {
		target.SetVisible(false)
	}
	return &SimpleExpand{Target: target, state: Collapsed}
}

// ExpandState returns the stored state.
func (x *SimpleExpand) ExpandState(*Element) ExpandState { return x.state }

// Expand shows the target.
func (x *SimpleExpand) Expand(e *Element) error {
	x.state = Expanded
	if x.Target != nil {
		x.Target.SetVisible(true)
	}
	if x.OnChange != nil {
		x.OnChange(e, x.state)
	}
	return nil
}

// Collapse hides the target.
func (x *SimpleExpand) Collapse(e *Element) error {
	x.state = Collapsed
	if x.Target != nil {
		x.Target.SetVisible(false)
	}
	if x.OnChange != nil {
		x.OnChange(e, x.state)
	}
	return nil
}
