package uia

import (
	"errors"
	"fmt"
	"time"
)

// Errors returned by interaction entry points.
var (
	ErrNotOnScreen  = errors.New("uia: element is not on screen")
	ErrDisabled     = errors.New("uia: element is disabled")
	ErrNoPattern    = errors.New("uia: element does not support the required pattern")
	ErrNoHit        = errors.New("uia: no element at coordinates")
	ErrNoFocus      = errors.New("uia: no element has keyboard focus")
	ErrUnknownKey   = errors.New("uia: unknown key combination")
	ErrWindowClosed = errors.New("uia: window is no longer open")
)

// WindowEvent describes a change in the top-level window set.
type WindowEvent struct {
	Opened bool // true = window opened, false = closed
	Window *Element
}

// Clock is the simulated wall clock shared by the desktop, the agents, and
// the benchmark harness. UI actions advance it by realistic small amounts;
// the LLM-latency model advances it by tens of seconds per call.
type Clock struct {
	now time.Duration
}

// Now returns the elapsed simulated time.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d (negative values are ignored).
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// Simulated costs of primitive UI operations.
const (
	CostSnapshot = 150 * time.Millisecond
	CostClick    = 80 * time.Millisecond
	CostDragStep = 250 * time.Millisecond
	CostKeyComb  = 60 * time.Millisecond
	CostPerChar  = 15 * time.Millisecond
)

// Desktop owns the top-level window stack of one simulated machine, the
// keyboard focus, the simulated clock, and window event listeners — the
// surface the GUI ripper's "process_id and window listeners" hook into.
type Desktop struct {
	clock     Clock
	windows   []*Element // bottom ... top (top = active)
	focus     *Element
	listeners []func(WindowEvent)

	// KeyHandlers maps key combinations ("ENTER", "ESC", "CTRL+S", ...)
	// to application-level behaviour. Applications register these.
	keyHandlers map[string]func(d *Desktop) error

	snapshots int // number of accessibility snapshots taken (drives lazy loading)
}

// NewDesktop creates an empty desktop.
func NewDesktop() *Desktop {
	return &Desktop{keyHandlers: make(map[string]func(*Desktop) error)}
}

// Clock returns the desktop's simulated clock.
func (d *Desktop) Clock() *Clock { return &d.clock }

// Windows returns the current top-level windows, bottom to top. Callers must
// not mutate the slice.
func (d *Desktop) Windows() []*Element { return d.windows }

// TopWindow returns the topmost (active) visible window, or nil.
func (d *Desktop) TopWindow() *Element {
	for i := len(d.windows) - 1; i >= 0; i-- {
		if d.windows[i].Visible() {
			return d.windows[i]
		}
	}
	return nil
}

// OpenWindow pushes w onto the window stack and notifies listeners. The
// element should have WindowControl type (or PaneControl for popups).
func (d *Desktop) OpenWindow(w *Element) {
	d.windows = append(d.windows, w)
	d.notify(WindowEvent{Opened: true, Window: w})
}

// CloseWindow removes w from the stack and notifies listeners. Keyboard
// focus is dropped if it lived inside w.
func (d *Desktop) CloseWindow(w *Element) {
	for i, win := range d.windows {
		if win == w {
			d.windows = append(d.windows[:i], d.windows[i+1:]...)
			if d.focus != nil && d.focus.IsDescendantOf(w) {
				d.focus = nil
			}
			d.notify(WindowEvent{Opened: false, Window: w})
			return
		}
	}
}

// IsOpen reports whether w is currently on the window stack.
func (d *Desktop) IsOpen(w *Element) bool {
	for _, win := range d.windows {
		if win == w {
			return true
		}
	}
	return false
}

// Listen registers a window-event listener. Listeners fire synchronously on
// open and close.
func (d *Desktop) Listen(fn func(WindowEvent)) { d.listeners = append(d.listeners, fn) }

func (d *Desktop) notify(ev WindowEvent) {
	for _, fn := range d.listeners {
		fn(ev)
	}
}

// Focus returns the element with keyboard focus, or nil.
func (d *Desktop) Focus() *Element { return d.focus }

// SetFocus moves keyboard focus. Passing nil clears focus.
func (d *Desktop) SetFocus(e *Element) { d.focus = e }

// RegisterKey installs application behaviour for a key combination. Key
// names are upper-cased internally.
func (d *Desktop) RegisterKey(combo string, fn func(*Desktop) error) {
	d.keyHandlers[normalizeKey(combo)] = fn
}

// Snapshot captures the accessibility tree of every visible window, in
// stacking order, advancing lazy-loading counters: an element whose
// visibility was deferred becomes visible only after enough snapshots have
// observed its window. The returned slice contains every on-screen element.
func (d *Desktop) Snapshot() []*Element {
	d.clock.Advance(CostSnapshot)
	d.snapshots++
	var out []*Element
	for _, w := range d.windows {
		if !w.Visible() {
			continue
		}
		w.Walk(func(e *Element) bool {
			if e.deferVisible > 0 {
				e.deferVisible--
				return false // hidden this round, children too
			}
			if !e.Visible() {
				return false
			}
			out = append(out, e)
			return true
		})
	}
	return out
}

// SnapshotWindow captures the on-screen elements of a single window.
func (d *Desktop) SnapshotWindow(w *Element) []*Element {
	d.clock.Advance(CostSnapshot)
	d.snapshots++
	var out []*Element
	if !w.Visible() || !d.IsOpen(w) {
		return out
	}
	w.Walk(func(e *Element) bool {
		if e.deferVisible > 0 {
			e.deferVisible--
			return false
		}
		if !e.Visible() {
			return false
		}
		out = append(out, e)
		return true
	})
	return out
}

// SnapshotCount reports how many snapshots have been taken, a proxy for the
// accessibility-API load of an exploration or an agent run.
func (d *Desktop) SnapshotCount() int { return d.snapshots }

// Click dispatches a primitive click on e: default pattern behaviour first
// (toggle flip, selection-item select), then the registered click handlers.
// This is the single edge type modeled by the UNG (paper §3.2: edges denote
// "click" interaction).
func (d *Desktop) Click(e *Element) error {
	if e == nil {
		return ErrNoHit
	}
	if !e.OnScreen() {
		return fmt.Errorf("%w: %s", ErrNotOnScreen, e)
	}
	if !e.Enabled() {
		return fmt.Errorf("%w: %s", ErrDisabled, e)
	}
	d.clock.Advance(CostClick)

	if t, ok := e.Pattern(TogglePattern).(Toggler); ok {
		next := ToggleOn
		if t.ToggleState(e) == ToggleOn {
			next = ToggleOff
		}
		if err := t.SetToggleState(e, next); err != nil {
			return err
		}
	}
	if si, ok := e.Pattern(SelectionItemPattern).(SelectionItem); ok {
		if err := si.Select(e); err != nil {
			return err
		}
	}
	if inv, ok := e.Pattern(InvokePattern).(Invoker); ok {
		if err := inv.Invoke(e); err != nil {
			return err
		}
	}
	for _, fn := range e.onClick {
		fn(e)
	}
	if e.ctype == EditControl || e.HasPattern(ValuePattern) || e.HasPattern(TextPattern) {
		d.focus = e
	}
	return nil
}

// ClickAt dispatches a click at virtual screen coordinates: the deepest
// on-screen, interactive element whose rectangle contains the point receives
// it. This is the grounding-sensitive primitive the GUI-only baseline uses.
func (d *Desktop) ClickAt(x, y int) error {
	e := d.HitTest(x, y)
	if e == nil {
		d.clock.Advance(CostClick)
		return fmt.Errorf("%w: (%d,%d)", ErrNoHit, x, y)
	}
	return d.Click(e)
}

// HitTest returns the deepest on-screen element containing (x, y), favouring
// interactive controls and later (higher) windows.
func (d *Desktop) HitTest(x, y int) *Element {
	var best *Element
	bestDepth := -1
	for _, w := range d.windows {
		if !w.Visible() {
			continue
		}
		depth := 0
		var walk func(e *Element, depth int)
		walk = func(e *Element, depth int) {
			if !e.Visible() || e.deferVisible > 0 {
				return
			}
			if e.Rect().Contains(x, y) && depth >= bestDepth {
				if e.Type().IsInteractive() || best == nil {
					best = e
					bestDepth = depth
				}
			}
			for _, c := range e.Children() {
				walk(c, depth+1)
			}
		}
		walk(w, depth)
	}
	return best
}

// TypeText sends text to the focused element through its Value pattern.
func (d *Desktop) TypeText(text string) error {
	if d.focus == nil {
		return ErrNoFocus
	}
	d.clock.Advance(time.Duration(len(text)) * CostPerChar)
	v, ok := d.focus.Pattern(ValuePattern).(Valuer)
	if !ok {
		return fmt.Errorf("%w: %s lacks Value", ErrNoPattern, d.focus)
	}
	if v.IsReadOnly(d.focus) {
		return fmt.Errorf("uia: %s is read-only", d.focus)
	}
	return v.SetValue(d.focus, text)
}

// PressKey dispatches a key combination ("ENTER", "ESC", "CTRL+B", ...). The
// application's registered handler runs; unregistered combinations are an
// error so that agents receive feedback rather than silent no-ops.
func (d *Desktop) PressKey(combo string) error {
	d.clock.Advance(CostKeyComb)
	fn, ok := d.keyHandlers[normalizeKey(combo)]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownKey, combo)
	}
	return fn(d)
}

// Drag simulates a press-move-release gesture from (x0,y0) to (x1,y1). If
// the press lands on a scrollbar thumb, the owning scrollbar's position is
// adjusted proportionally; otherwise the drag is a no-op that still costs
// time — exactly the fragile composite interaction the paper's Task 2
// illustrates.
func (d *Desktop) Drag(x0, y0, x1, y1 int) error {
	d.clock.Advance(CostDragStep)
	src := d.HitTest(x0, y0)
	if src == nil {
		return fmt.Errorf("%w: (%d,%d)", ErrNoHit, x0, y0)
	}
	// Find the nearest ancestor (or self) with a Scroll pattern.
	var sb *Element
	for cur := src; cur != nil; cur = cur.Parent() {
		if cur.HasPattern(ScrollPattern) {
			sb = cur
			break
		}
	}
	if sb == nil {
		return nil // dropped on nothing scrollable; gesture wasted
	}
	sc := sb.Pattern(ScrollPattern).(Scroller)
	r := sb.Rect()
	h, v := sc.ScrollPercent(sb)
	if r.H >= r.W { // vertical scrollbar
		if r.H > 0 {
			dv := float64(y1-y0) / float64(r.H) * 100
			v = clampPercent(v + dv)
		}
	} else if r.W > 0 {
		dh := float64(x1-x0) / float64(r.W) * 100
		h = clampPercent(h + dh)
	}
	return sc.SetScrollPercent(sb, h, v)
}

func clampPercent(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 100 {
		return 100
	}
	return p
}

func normalizeKey(s string) string {
	out := make([]byte, 0, len(s))
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c == ' ' {
			continue
		}
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		out = append(out, c)
	}
	return string(out)
}
