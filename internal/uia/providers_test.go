package uia

import (
	"testing"
	"testing/quick"
)

func TestSimpleValueChangeHook(t *testing.T) {
	var got string
	v := NewValue("a", func(_ *Element, s string) { got = s })
	e := NewElement("e", "Edit", EditControl)
	if err := v.SetValue(e, "b"); err != nil {
		t.Fatal(err)
	}
	if v.Value(e) != "b" || got != "b" {
		t.Errorf("value=%q hook=%q", v.Value(e), got)
	}
}

func TestSimpleScrollAxes(t *testing.T) {
	s := NewVScroll(nil)
	e := NewElement("sb", "Scroll", ScrollBarControl)
	if h, v := s.ScrollPercent(e); h != NoScroll || v != 0 {
		t.Fatalf("initial = %v,%v", h, v)
	}
	if err := s.SetScrollPercent(e, 50, 80); err != nil {
		t.Fatal(err)
	}
	if h, v := s.ScrollPercent(e); h != NoScroll || v != 80 {
		t.Errorf("after set = %v,%v; horizontal axis must stay NoScroll", h, v)
	}
	if err := s.ScrollStep(e, 0, -200); err != nil {
		t.Fatal(err)
	}
	if _, v := s.ScrollPercent(e); v != 0 {
		t.Errorf("step should clamp at 0, got %v", v)
	}
}

func TestSimpleTextLinesAndParagraphs(t *testing.T) {
	body := "Title line\n\nPara two line one\nPara two line two\n\nPara three"
	tx := NewText(body)
	e := NewElement("doc", "Document", DocumentControl)

	if n := tx.LineCount(e); n != 6 {
		t.Fatalf("LineCount = %d, want 6", n)
	}
	if n := tx.ParagraphCount(e); n != 3 {
		t.Fatalf("ParagraphCount = %d, want 3", n)
	}
	if err := tx.SelectParagraphs(e, 2, 2); err != nil {
		t.Fatal(err)
	}
	if got := tx.SelectedText(); got != "Para two line one\nPara two line two" {
		t.Errorf("SelectedText = %q", got)
	}
	if err := tx.SelectLines(e, 1, 1); err != nil {
		t.Fatal(err)
	}
	if got := tx.SelectedText(); got != "Title line" {
		t.Errorf("SelectedText = %q", got)
	}
	if err := tx.SelectLines(e, 0, 1); err == nil {
		t.Error("line 0 should be rejected (1-based)")
	}
	if err := tx.SelectParagraphs(e, 3, 4); err == nil {
		t.Error("paragraph range past end should be rejected")
	}
	tx.ClearSelection()
	if _, _, ok := tx.Selection(e); ok {
		t.Error("selection should be cleared")
	}
}

func TestSimpleTextEmpty(t *testing.T) {
	tx := NewText("")
	e := NewElement("doc", "Document", DocumentControl)
	if tx.LineCount(e) != 0 || tx.ParagraphCount(e) != 0 {
		t.Error("empty text should have no lines or paragraphs")
	}
	if err := tx.SelectLines(e, 1, 1); err == nil {
		t.Error("selecting in empty text should fail")
	}
}

// Property: for any non-empty selection made through SelectParagraphs, the
// selected line range must cover only non-blank boundary lines.
func TestParagraphSelectionProperty(t *testing.T) {
	f := func(raw []bool) bool {
		if len(raw) == 0 || len(raw) > 40 {
			return true
		}
		lines := make([]string, len(raw))
		for i, nonEmpty := range raw {
			if nonEmpty {
				lines[i] = "text"
			}
		}
		tx := &SimpleText{Lines: lines}
		e := NewElement("doc", "Doc", DocumentControl)
		n := tx.ParagraphCount(e)
		for p := 1; p <= n; p++ {
			if err := tx.SelectParagraphs(e, p, p); err != nil {
				return false
			}
			s, en, ok := tx.Selection(e)
			if !ok || s < 1 || en > len(lines) || s > en {
				return false
			}
			if lines[s-1] == "" || lines[en-1] == "" {
				return false // paragraph boundaries must be non-blank lines
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSelectionList(t *testing.T) {
	list := NewElement("lst", "Slides", ListControl)
	var items []*Element
	sel := NewSelectionList(true, nil)
	list.SetPattern(SelectionPattern, sel)
	for i := 0; i < 3; i++ {
		it := NewElement("", "Slide", ListItemControl)
		it.SetPattern(SelectionItemPattern, sel.Item())
		list.AddChild(it)
		items = append(items, it)
	}
	si := sel.Item()
	if err := si.Select(items[0]); err != nil {
		t.Fatal(err)
	}
	if err := si.AddToSelection(items[2]); err != nil {
		t.Fatal(err)
	}
	got := sel.SelectedItems(list)
	if len(got) != 2 || got[0] != items[0] || got[1] != items[2] {
		t.Fatalf("selected = %v", got)
	}
	// Select replaces the whole selection.
	if err := si.Select(items[1]); err != nil {
		t.Fatal(err)
	}
	if got := sel.SelectedItems(list); len(got) != 1 || got[0] != items[1] {
		t.Fatalf("after Select, selected = %v", got)
	}
	if err := si.RemoveFromSelection(items[1]); err != nil {
		t.Fatal(err)
	}
	if got := sel.SelectedItems(list); len(got) != 0 {
		t.Fatalf("after remove, selected = %v", got)
	}
}

func TestSelectionListSingleMode(t *testing.T) {
	sel := NewSelectionList(false, nil)
	a := NewElement("", "A", ListItemControl)
	b := NewElement("", "B", ListItemControl)
	si := sel.Item()
	if err := si.Select(a); err != nil {
		t.Fatal(err)
	}
	if err := si.AddToSelection(b); err == nil {
		t.Fatal("AddToSelection must fail in single-select mode with a selection")
	}
}

func TestSimpleRange(t *testing.T) {
	r := &SimpleRange{Min: 8, Max: 96, Val: 12}
	e := NewElement("sz", "Font Size", SpinnerControl)
	if err := r.SetRangeValue(e, 40); err != nil {
		t.Fatal(err)
	}
	if r.RangeValue(e) != 40 {
		t.Error("SetRangeValue did not store")
	}
	if err := r.SetRangeValue(e, 1000); err == nil {
		t.Error("out-of-range value accepted")
	}
	if min, max := r.Range(e); min != 8 || max != 96 {
		t.Error("Range wrong")
	}
}

func TestSimpleExpand(t *testing.T) {
	dd := NewElement("dd", "Dropdown", ComboBoxControl)
	content := NewElement("", "Options", ListControl)
	dd.AddChild(content)
	x := NewExpand(content)
	dd.SetPattern(ExpandCollapsePattern, x)

	if content.Visible() {
		t.Fatal("target should start hidden")
	}
	if err := x.Expand(dd); err != nil {
		t.Fatal(err)
	}
	if !content.Visible() || x.ExpandState(dd) != Expanded {
		t.Fatal("expand failed")
	}
	if err := x.Collapse(dd); err != nil {
		t.Fatal(err)
	}
	if content.Visible() || x.ExpandState(dd) != Collapsed {
		t.Fatal("collapse failed")
	}
}

func TestToggleProviderIdempotentSet(t *testing.T) {
	fires := 0
	tg := NewToggle(func(*Element, ToggleState) { fires++ })
	e := NewElement("b", "Bold", ButtonControl)
	if err := tg.SetToggleState(e, ToggleOn); err != nil {
		t.Fatal(err)
	}
	if err := tg.SetToggleState(e, ToggleOn); err != nil {
		t.Fatal(err)
	}
	if fires != 1 {
		t.Errorf("change hook fired %d times, want 1 (idempotent set)", fires)
	}
}
