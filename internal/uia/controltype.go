// Package uia implements an in-memory accessibility framework modeled on
// Windows UI Automation (UIA). It is the substrate the DMI reproduction is
// built on: applications expose trees of Elements with control types and
// control patterns, a Desktop manages the top-level window stack, and an
// input layer dispatches clicks, drags, and keystrokes.
//
// The framework intentionally reproduces the properties of real UIA that the
// paper's mechanisms exist to handle: control identifiers are not guaranteed
// unique, names can drift at runtime, controls may load lazily, and popup or
// modal windows appear and disappear as interaction proceeds.
package uia

import "fmt"

// ControlType identifies the kind of a UI control. The set mirrors the 41
// control types defined by Windows UI Automation.
type ControlType int

// The 41 UIA control types.
const (
	ButtonControl ControlType = iota
	CalendarControl
	CheckBoxControl
	ComboBoxControl
	EditControl
	HyperlinkControl
	ImageControl
	ListItemControl
	ListControl
	MenuControl
	MenuBarControl
	MenuItemControl
	ProgressBarControl
	RadioButtonControl
	ScrollBarControl
	SliderControl
	SpinnerControl
	StatusBarControl
	TabControl
	TabItemControl
	TextControl
	ToolBarControl
	ToolTipControl
	TreeControl
	TreeItemControl
	CustomControl
	GroupControl
	ThumbControl
	DataGridControl
	DataItemControl
	DocumentControl
	SplitButtonControl
	WindowControl
	PaneControl
	HeaderControl
	HeaderItemControl
	TableControl
	TitleBarControl
	SeparatorControl
	SemanticZoomControl
	AppBarControl

	numControlTypes // sentinel; keep last
)

// NumControlTypes is the number of distinct control types, matching UIA's 41.
const NumControlTypes = int(numControlTypes)

var controlTypeNames = [...]string{
	ButtonControl:       "Button",
	CalendarControl:     "Calendar",
	CheckBoxControl:     "CheckBox",
	ComboBoxControl:     "ComboBox",
	EditControl:         "Edit",
	HyperlinkControl:    "Hyperlink",
	ImageControl:        "Image",
	ListItemControl:     "ListItem",
	ListControl:         "List",
	MenuControl:         "Menu",
	MenuBarControl:      "MenuBar",
	MenuItemControl:     "MenuItem",
	ProgressBarControl:  "ProgressBar",
	RadioButtonControl:  "RadioButton",
	ScrollBarControl:    "ScrollBar",
	SliderControl:       "Slider",
	SpinnerControl:      "Spinner",
	StatusBarControl:    "StatusBar",
	TabControl:          "Tab",
	TabItemControl:      "TabItem",
	TextControl:         "Text",
	ToolBarControl:      "ToolBar",
	ToolTipControl:      "ToolTip",
	TreeControl:         "Tree",
	TreeItemControl:     "TreeItem",
	CustomControl:       "Custom",
	GroupControl:        "Group",
	ThumbControl:        "Thumb",
	DataGridControl:     "DataGrid",
	DataItemControl:     "DataItem",
	DocumentControl:     "Document",
	SplitButtonControl:  "SplitButton",
	WindowControl:       "Window",
	PaneControl:         "Pane",
	HeaderControl:       "Header",
	HeaderItemControl:   "HeaderItem",
	TableControl:        "Table",
	TitleBarControl:     "TitleBar",
	SeparatorControl:    "Separator",
	SemanticZoomControl: "SemanticZoom",
	AppBarControl:       "AppBar",
}

// String returns the UIA-style name of the control type (e.g. "TabItem").
func (t ControlType) String() string {
	if t < 0 || int(t) >= len(controlTypeNames) {
		return fmt.Sprintf("ControlType(%d)", int(t))
	}
	return controlTypeNames[t]
}

// ParseControlType maps a UIA-style name back to its ControlType. The second
// result reports whether the name was recognized.
func ParseControlType(s string) (ControlType, bool) {
	for i, n := range controlTypeNames {
		if n == s {
			return ControlType(i), true
		}
	}
	return CustomControl, false
}

// IsInteractive reports whether controls of this type respond to a primitive
// click. Purely informational types (Text, Separator, TitleBar, ...) do not.
func (t ControlType) IsInteractive() bool {
	switch t {
	case TextControl, SeparatorControl, TitleBarControl, ProgressBarControl,
		StatusBarControl, ToolTipControl, ImageControl, HeaderControl:
		return false
	}
	return true
}

// IsKeyType reports whether the type is one of the pivotal navigation types
// for which full descriptions are always attached during serialization
// (see paper §4.2: Menu, TabItem, ComboBox, Group, Button and kin).
func (t ControlType) IsKeyType() bool {
	switch t {
	case MenuControl, MenuBarControl, MenuItemControl, TabControl,
		TabItemControl, ComboBoxControl, GroupControl, ButtonControl,
		SplitButtonControl:
		return true
	}
	return false
}
