package uia

import (
	"errors"
	"testing"
	"testing/quick"
	"time"
)

func TestWindowStack(t *testing.T) {
	d := NewDesktop()
	var events []WindowEvent
	d.Listen(func(ev WindowEvent) { events = append(events, ev) })

	w1 := NewElement("w1", "Main", WindowControl)
	w2 := NewElement("w2", "Dialog", WindowControl)
	d.OpenWindow(w1)
	d.OpenWindow(w2)
	if d.TopWindow() != w2 {
		t.Fatal("TopWindow should be the dialog")
	}
	d.CloseWindow(w2)
	if d.TopWindow() != w1 {
		t.Fatal("TopWindow should fall back to main")
	}
	if len(events) != 3 || !events[0].Opened || !events[1].Opened || events[2].Opened {
		t.Errorf("events = %+v", events)
	}
	if d.IsOpen(w2) {
		t.Error("closed window still reported open")
	}
}

func TestTopWindowSkipsInvisible(t *testing.T) {
	d := NewDesktop()
	w1 := NewElement("w1", "Main", WindowControl)
	w2 := NewElement("w2", "Hidden", WindowControl)
	d.OpenWindow(w1)
	d.OpenWindow(w2)
	w2.SetVisible(false)
	if d.TopWindow() != w1 {
		t.Fatal("TopWindow should skip invisible windows")
	}
}

func TestClickDispatch(t *testing.T) {
	d := NewDesktop()
	w := NewElement("w", "Main", WindowControl)
	d.OpenWindow(w)

	btn := NewElement("b", "Bold", ButtonControl)
	w.AddChild(btn)
	tg := NewToggle(nil)
	btn.SetPattern(TogglePattern, tg)
	clicked := 0
	btn.OnClick(func(*Element) { clicked++ })

	if err := d.Click(btn); err != nil {
		t.Fatal(err)
	}
	if tg.State != ToggleOn || clicked != 1 {
		t.Fatalf("toggle=%v clicks=%d", tg.State, clicked)
	}
	if err := d.Click(btn); err != nil {
		t.Fatal(err)
	}
	if tg.State != ToggleOff {
		t.Fatal("second click should toggle off")
	}

	btn.SetEnabled(false)
	if err := d.Click(btn); !errors.Is(err, ErrDisabled) {
		t.Fatalf("click on disabled: %v", err)
	}
	btn.SetEnabled(true)
	btn.SetVisible(false)
	if err := d.Click(btn); !errors.Is(err, ErrNotOnScreen) {
		t.Fatalf("click on hidden: %v", err)
	}
}

func TestClickFocusesEdit(t *testing.T) {
	d := NewDesktop()
	w := NewElement("w", "Main", WindowControl)
	d.OpenWindow(w)
	ed := NewElement("e", "Search", EditControl)
	ed.SetPattern(ValuePattern, NewValue("", nil))
	w.AddChild(ed)
	if err := d.Click(ed); err != nil {
		t.Fatal(err)
	}
	if d.Focus() != ed {
		t.Fatal("click on edit should focus it")
	}
	if err := d.TypeText("hello"); err != nil {
		t.Fatal(err)
	}
	v := ed.Pattern(ValuePattern).(Valuer)
	if got := v.Value(ed); got != "hello" {
		t.Errorf("typed value = %q", got)
	}
}

func TestTypeTextErrors(t *testing.T) {
	d := NewDesktop()
	if err := d.TypeText("x"); !errors.Is(err, ErrNoFocus) {
		t.Fatalf("want ErrNoFocus, got %v", err)
	}
	ro := NewElement("ro", "Status", EditControl)
	ro.SetPattern(ValuePattern, &SimpleValue{Val: "v", ReadOnly: true})
	d.SetFocus(ro)
	if err := d.TypeText("x"); err == nil {
		t.Fatal("typing into read-only value should fail")
	}
}

func TestPressKey(t *testing.T) {
	d := NewDesktop()
	fired := ""
	d.RegisterKey("Ctrl+S", func(*Desktop) error { fired = "save"; return nil })
	if err := d.PressKey("ctrl + s"); err != nil {
		t.Fatal(err)
	}
	if fired != "save" {
		t.Fatal("handler did not run")
	}
	if err := d.PressKey("F42"); !errors.Is(err, ErrUnknownKey) {
		t.Fatalf("want ErrUnknownKey, got %v", err)
	}
}

func TestHitTestPicksDeepestInteractive(t *testing.T) {
	d := NewDesktop()
	w := NewElement("w", "Main", WindowControl)
	w.SetRect(Rect{0, 0, 100, 100})
	pane := NewElement("p", "Body", PaneControl)
	pane.SetRect(Rect{0, 0, 100, 100})
	btn := NewElement("b", "OK", ButtonControl)
	btn.SetRect(Rect{10, 10, 20, 10})
	w.AddChild(pane)
	pane.AddChild(btn)
	d.OpenWindow(w)

	if got := d.HitTest(15, 15); got != btn {
		t.Fatalf("HitTest = %v, want OK button", got)
	}
	if got := d.HitTest(90, 90); got != pane {
		t.Fatalf("HitTest = %v, want body pane", got)
	}
	if got := d.HitTest(500, 500); got != nil {
		t.Fatalf("HitTest outside = %v, want nil", got)
	}
	if err := d.ClickAt(500, 500); !errors.Is(err, ErrNoHit) {
		t.Fatalf("ClickAt outside: %v", err)
	}
}

func TestDragMovesScrollbar(t *testing.T) {
	d := NewDesktop()
	w := NewElement("w", "Main", WindowControl)
	w.SetRect(Rect{0, 0, 200, 200})
	sb := NewElement("vsb", "Vertical Scroll Bar", ScrollBarControl)
	sb.SetRect(Rect{190, 0, 10, 200})
	sc := NewVScroll(nil)
	sc.V = 0
	sb.SetPattern(ScrollPattern, sc)
	w.AddChild(sb)
	d.OpenWindow(w)

	if err := d.Drag(195, 10, 195, 110); err != nil {
		t.Fatal(err)
	}
	_, v := sc.ScrollPercent(sb)
	if v < 45 || v > 55 {
		t.Errorf("drag of half the bar moved to %v%%, want ~50%%", v)
	}
	// Dragging past the end clamps.
	if err := d.Drag(195, 10, 195, 10000); err != nil {
		t.Fatal(err)
	}
	_, v = sc.ScrollPercent(sb)
	if v != 100 {
		t.Errorf("clamp failed: %v", v)
	}
}

func TestClockAdvances(t *testing.T) {
	d := NewDesktop()
	w := NewElement("w", "Main", WindowControl)
	d.OpenWindow(w)
	before := d.Clock().Now()
	d.Snapshot()
	if d.Clock().Now() != before+CostSnapshot {
		t.Error("snapshot did not advance clock")
	}
	d.Clock().Advance(-time.Hour)
	if d.Clock().Now() < 0 {
		t.Error("negative advance should be ignored")
	}
}

func TestSnapshotOrderAndVisibility(t *testing.T) {
	d := NewDesktop()
	w := NewElement("w", "Main", WindowControl)
	a := NewElement("a", "A", ButtonControl)
	b := NewElement("b", "B", ButtonControl)
	hidden := NewElement("h", "H", ButtonControl)
	hidden.SetVisible(false)
	under := NewElement("u", "Under", ButtonControl)
	hidden.AddChild(under)
	w.AddChild(a)
	w.AddChild(b)
	w.AddChild(hidden)
	d.OpenWindow(w)

	snap := d.Snapshot()
	if len(snap) != 3 { // w, a, b
		t.Fatalf("snapshot = %d elements, want 3", len(snap))
	}
	if snap[0] != w || snap[1] != a || snap[2] != b {
		t.Error("snapshot not in document order")
	}
}

func TestClampPercentProperty(t *testing.T) {
	f := func(p float64) bool {
		c := clampPercent(p)
		return c >= 0 && c <= 100 && (p < 0 || p > 100 || c == p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestNormalizeKey(t *testing.T) {
	cases := map[string]string{
		"ctrl+s": "CTRL+S", "Ctrl + S": "CTRL+S", "ENTER": "ENTER", "esc": "ESC",
	}
	for in, want := range cases {
		if got := normalizeKey(in); got != want {
			t.Errorf("normalizeKey(%q) = %q, want %q", in, got, want)
		}
	}
}
