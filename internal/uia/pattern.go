package uia

import "fmt"

// PatternID identifies a control pattern. The set mirrors the 34 control
// patterns defined by Windows UI Automation (paper §2.2, Insight #3).
type PatternID int

// The 34 UIA control patterns.
const (
	InvokePattern PatternID = iota
	SelectionPattern
	ValuePattern
	RangeValuePattern
	ScrollPattern
	ScrollItemPattern
	ExpandCollapsePattern
	GridPattern
	GridItemPattern
	MultipleViewPattern
	WindowPattern
	SelectionItemPattern
	DockPattern
	TablePattern
	TableItemPattern
	TextPattern
	TogglePattern
	TransformPattern
	ItemContainerPattern
	LegacyIAccessiblePattern
	SynchronizedInputPattern
	VirtualizedItemPattern
	AnnotationPattern
	DragPattern
	DropTargetPattern
	ObjectModelPattern
	SpreadsheetPattern
	SpreadsheetItemPattern
	StylesPattern
	TextChildPattern
	TextEditPattern
	TextPattern2
	TransformPattern2
	CustomNavigationPattern

	numPatterns // sentinel; keep last
)

// NumPatterns is the number of distinct control patterns, matching UIA's 34.
const NumPatterns = int(numPatterns)

var patternNames = [...]string{
	InvokePattern:            "Invoke",
	SelectionPattern:         "Selection",
	ValuePattern:             "Value",
	RangeValuePattern:        "RangeValue",
	ScrollPattern:            "Scroll",
	ScrollItemPattern:        "ScrollItem",
	ExpandCollapsePattern:    "ExpandCollapse",
	GridPattern:              "Grid",
	GridItemPattern:          "GridItem",
	MultipleViewPattern:      "MultipleView",
	WindowPattern:            "Window",
	SelectionItemPattern:     "SelectionItem",
	DockPattern:              "Dock",
	TablePattern:             "Table",
	TableItemPattern:         "TableItem",
	TextPattern:              "Text",
	TogglePattern:            "Toggle",
	TransformPattern:         "Transform",
	ItemContainerPattern:     "ItemContainer",
	LegacyIAccessiblePattern: "LegacyIAccessible",
	SynchronizedInputPattern: "SynchronizedInput",
	VirtualizedItemPattern:   "VirtualizedItem",
	AnnotationPattern:        "Annotation",
	DragPattern:              "Drag",
	DropTargetPattern:        "DropTarget",
	ObjectModelPattern:       "ObjectModel",
	SpreadsheetPattern:       "Spreadsheet",
	SpreadsheetItemPattern:   "SpreadsheetItem",
	StylesPattern:            "Styles",
	TextChildPattern:         "TextChild",
	TextEditPattern:          "TextEdit",
	TextPattern2:             "Text2",
	TransformPattern2:        "Transform2",
	CustomNavigationPattern:  "CustomNavigation",
}

// String returns the UIA-style pattern name (e.g. "ExpandCollapse").
func (p PatternID) String() string {
	if p < 0 || int(p) >= len(patternNames) {
		return fmt.Sprintf("Pattern(%d)", int(p))
	}
	return patternNames[p]
}

// ToggleState is the tri-state of a Toggle pattern.
type ToggleState int

// Toggle states, matching UIA's ToggleState enumeration.
const (
	ToggleOff ToggleState = iota
	ToggleOn
	ToggleIndeterminate
)

// String returns "off", "on", or "indeterminate".
func (s ToggleState) String() string {
	switch s {
	case ToggleOff:
		return "off"
	case ToggleOn:
		return "on"
	default:
		return "indeterminate"
	}
}

// ExpandState is the state of an ExpandCollapse pattern.
type ExpandState int

// Expand/collapse states.
const (
	Collapsed ExpandState = iota
	Expanded
	PartiallyExpanded
	LeafNode
)

// String returns a lower-case state name.
func (s ExpandState) String() string {
	switch s {
	case Collapsed:
		return "collapsed"
	case Expanded:
		return "expanded"
	case PartiallyExpanded:
		return "partially-expanded"
	default:
		return "leaf"
	}
}

// Invoker is the behaviour behind the Invoke pattern: a single primitive
// activation, the effect of a click.
type Invoker interface {
	Invoke(e *Element) error
}

// InvokeFunc adapts a function to the Invoker interface.
type InvokeFunc func(e *Element) error

// Invoke calls f(e).
func (f InvokeFunc) Invoke(e *Element) error { return f(e) }

// Toggler is the behaviour behind the Toggle pattern.
type Toggler interface {
	ToggleState(e *Element) ToggleState
	SetToggleState(e *Element, s ToggleState) error
}

// ExpandCollapser is the behaviour behind the ExpandCollapse pattern.
type ExpandCollapser interface {
	ExpandState(e *Element) ExpandState
	Expand(e *Element) error
	Collapse(e *Element) error
}

// Scroller is the behaviour behind the Scroll pattern. Percentages are in
// [0,100]; a NoScroll (-1) axis is not scrollable.
type Scroller interface {
	ScrollPercent(e *Element) (h, v float64)
	SetScrollPercent(e *Element, h, v float64) error
	// ScrollStep nudges the viewport by one increment in the given
	// direction; it is the primitive the imperative drag loop is built on.
	ScrollStep(e *Element, dh, dv float64) error
}

// NoScroll marks an axis that cannot scroll.
const NoScroll = -1.0

// Texter is the behaviour behind the Text pattern: structured access to a
// control's textual content and line/paragraph selection.
type Texter interface {
	Text(e *Element) string
	LineCount(e *Element) int
	SelectLines(e *Element, start, end int) error
	ParagraphCount(e *Element) int
	SelectParagraphs(e *Element, start, end int) error
	Selection(e *Element) (start, end int, ok bool)
}

// Valuer is the behaviour behind the Value pattern.
type Valuer interface {
	Value(e *Element) string
	SetValue(e *Element, v string) error
	IsReadOnly(e *Element) bool
}

// RangeValuer is the behaviour behind the RangeValue pattern.
type RangeValuer interface {
	RangeValue(e *Element) float64
	SetRangeValue(e *Element, v float64) error
	Range(e *Element) (min, max float64)
}

// SelectionItem is the behaviour behind the SelectionItem pattern.
type SelectionItem interface {
	IsSelected(e *Element) bool
	Select(e *Element) error
	AddToSelection(e *Element) error
	RemoveFromSelection(e *Element) error
}

// SelectionContainer is the behaviour behind the Selection pattern.
type SelectionContainer interface {
	SelectedItems(e *Element) []*Element
	CanSelectMultiple(e *Element) bool
}

// WindowControlPattern is the behaviour behind the Window pattern.
type WindowControlPattern interface {
	CloseWindow(e *Element) error
}

// GridProvider is the behaviour behind the Grid pattern.
type GridProvider interface {
	RowCount(e *Element) int
	ColumnCount(e *Element) int
	GetItem(e *Element, row, col int) *Element
}
