package taskpack

import (
	"fmt"
	"sync"

	"repro/internal/osworld"
)

// BuiltinName is the pack name of the compiled-in grid. dmi-tasks -export
// writes the grid under this name, so the exported file's identity hash
// equals Builtin().Hash() and a replica started from the file interoperates
// with a coordinator running the compiled-in tasks.
const BuiltinName = "osworld-w"

// builtinDescription must match between Builtin and -export for the hashes
// to agree.
const builtinDescription = "The 39-task OSWorld-W benchmark grid: 9 Word, 9 Excel, 9 PowerPoint, 6 Settings, 6 Files scenarios."

// Registry is a resolved task set: what bench, serve, and coord run against.
// The zero of every lookup is the compiled-in grid (Builtin); loading a pack
// file yields a registry with that pack's name and hash instead.
type Registry struct {
	name  string
	hash  string
	tasks []osworld.Task
	byID  map[string]osworld.Task
}

// NewRegistry builds a registry over tasks under a pack identity. Callers
// outside this package normally use Builtin or Load instead.
func NewRegistry(name, hash string, tasks []osworld.Task) *Registry {
	r := &Registry{name: name, hash: hash, tasks: tasks, byID: make(map[string]osworld.Task, len(tasks))}
	for _, t := range tasks {
		r.byID[t.ID] = t
	}
	return r
}

// Name returns the pack name ("osworld-w" for the compiled-in grid).
func (r *Registry) Name() string { return r.name }

// Hash returns the pack identity hash (see Pack.Hash).
func (r *Registry) Hash() string { return r.hash }

// Tasks returns the task list in pack order. Callers must not mutate it.
func (r *Registry) Tasks() []osworld.Task { return r.tasks }

// ByID resolves a task by id.
func (r *Registry) ByID(id string) (osworld.Task, bool) {
	t, ok := r.byID[id]
	return t, ok
}

// Len returns the number of tasks.
func (r *Registry) Len() int { return len(r.tasks) }

var (
	builtinOnce sync.Once
	builtinReg  *Registry
)

// Builtin returns the registry over the compiled-in grid, with the identity
// hash of its pack rendering — so the same grid loaded from an exported file
// carries the same hash. The compiled-in grid always renders and hashes
// (covered by tests), so failures panic rather than propagate.
func Builtin() *Registry {
	builtinOnce.Do(func() {
		tasks := osworld.All()
		p, err := BuiltinPack()
		if err != nil {
			panic(fmt.Sprintf("taskpack: render builtin pack: %v", err))
		}
		hash, err := p.Hash()
		if err != nil {
			panic(fmt.Sprintf("taskpack: hash builtin pack: %v", err))
		}
		builtinReg = NewRegistry(BuiltinName, hash, tasks)
	})
	return builtinReg
}

// BuiltinPack renders the compiled-in grid in wire form — the content that
// dmi-tasks -export writes and that CI diffs against packs/osworld-w.json.
func BuiltinPack() (*Pack, error) {
	return FromTasks(BuiltinName, builtinDescription, osworld.All())
}

// Load decodes, validates, and converts pack bytes into a registry. The
// returned registry's hash is the identity of the pack content (canonical
// re-encoding), not of the raw input bytes, so reformatting a pack file does
// not fork its identity.
func Load(data []byte) (*Registry, error) {
	p, err := Decode(data)
	if err != nil {
		return nil, err
	}
	if issues := ValidatePack(data, p); len(issues) > 0 {
		if len(issues) == 1 {
			return nil, fmt.Errorf("invalid pack: %s", issues[0])
		}
		return nil, fmt.Errorf("invalid pack: %s (and %d more issues)", issues[0], len(issues)-1)
	}
	tasks, err := p.ToTasks()
	if err != nil {
		return nil, err
	}
	hash, err := p.Hash()
	if err != nil {
		return nil, err
	}
	return NewRegistry(p.Name, hash, tasks), nil
}
