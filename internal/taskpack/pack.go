// Package taskpack defines the versioned on-disk format for benchmark task
// packs: the 39-task grid (and any custom scenario set) as pure JSON data —
// instruction, target application, ground-truth plan, ambiguity and trap
// metadata, declarative setup ops, and a declarative verify condition. A pack
// decodes strictly (unknown fields rejected, schema version gated), converts
// losslessly to and from []osworld.Task, and is identified across process
// boundaries by the SHA-256 of its canonical encoding, which is how replicas
// and coordinators detect that they are running different grids.
//
// The package takes bytes, never file paths: reading a pack off disk is the
// caller's business (cmd/*), which keeps this package inside the purity
// analyzer's scope.
package taskpack

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// SchemaVersion is the pack format revision this build reads and writes.
// Decode rejects any other value so a task silently gaining semantics in a
// future revision cannot be misread by an old binary.
const SchemaVersion = 1

// Pack is the wire form of a task set.
type Pack struct {
	Schema      int        `json:"schema"`
	Name        string     `json:"name"`
	Description string     `json:"description,omitempty"`
	Tasks       []PackTask `json:"tasks"`
}

// PackTask is the wire form of one osworld.Task.
type PackTask struct {
	ID          string      `json:"id"`
	App         string      `json:"app"`
	Description string      `json:"description"`
	Ambiguity   float64     `json:"ambiguity,omitempty"`
	Expected    string      `json:"expected,omitempty"`
	Setup       []PackSetup `json:"setup,omitempty"`
	Verify      PackCond    `json:"verify"`
	Plan        []PackStep  `json:"plan"`
}

// PackSetup is the wire form of one osworld.SetupOp.
type PackSetup struct {
	Op    string   `json:"op"`
	Texts []string `json:"texts,omitempty"`
	Ref   string   `json:"ref,omitempty"`
	Path  string   `json:"path,omitempty"`
	Value any      `json:"value,omitempty"`
	Count int      `json:"count,omitempty"`
}

// PackCond is the wire form of one osworld.Cond node. Value carries JSON
// scalars only (string, bool, number), matching the condition language.
type PackCond struct {
	Op    string     `json:"op"`
	Path  string     `json:"path,omitempty"`
	Value any        `json:"value,omitempty"`
	Subs  []PackCond `json:"subs,omitempty"`
}

// PackStep is the wire form of one osworld.PlanStep.
type PackStep struct {
	Kind       string      `json:"kind"`
	Target     *PackTarget `json:"target,omitempty"`
	Text       string      `json:"text,omitempty"`
	Key        string      `json:"key,omitempty"`
	State      *PackState  `json:"state,omitempty"`
	Ambiguity  float64     `json:"ambiguity,omitempty"`
	VisualDiff float64     `json:"visual_diff,omitempty"`
	Trap       *PackTrap   `json:"trap,omitempty"`
}

// PackTarget is the wire form of osworld.Target.
type PackTarget struct {
	Primary     string `json:"primary"`
	GIDContains string `json:"gid_contains,omitempty"`
	Via         string `json:"via,omitempty"`
}

// PackState is the wire form of osworld.StateOp. ControlType travels as the
// UIA-style name ("Document", "ScrollBar", ...); scroll axes keep the
// uia.NoScroll sentinel (-1).
type PackState struct {
	Op          string   `json:"op"`
	Control     string   `json:"control"`
	ControlType string   `json:"control_type"`
	H           float64  `json:"h,omitempty"`
	V           float64  `json:"v,omitempty"`
	Start       int      `json:"start,omitempty"`
	End         int      `json:"end,omitempty"`
	Names       []string `json:"names,omitempty"`
	Value       float64  `json:"value,omitempty"`
}

// PackTrap is the wire form of a plan step's failure trap (TrapKind,
// TrapWeight, TrapAlt). It is present whenever any of the three is set —
// a weightless trap that only redirects the target still encodes its Alt.
type PackTrap struct {
	Kind   string      `json:"kind,omitempty"`
	Weight float64     `json:"weight,omitempty"`
	Alt    *PackTarget `json:"alt,omitempty"`
}

// Decode parses pack bytes strictly: unknown fields anywhere in the document
// are rejected (so a typoed field name cannot silently become a no-op), and
// the schema version must match SchemaVersion exactly. Errors carry 1-based
// line:column positions into data where the decoder can provide them.
func Decode(data []byte) (*Pack, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var p Pack
	if err := dec.Decode(&p); err != nil {
		return nil, decodeError(data, dec, err)
	}
	// A second value after the pack object means the file is not one JSON
	// document (e.g. two packs concatenated).
	if dec.More() {
		line, col := lineCol(data, dec.InputOffset())
		return nil, fmt.Errorf("%d:%d: trailing data after pack object", line, col)
	}
	if p.Schema != SchemaVersion {
		return nil, fmt.Errorf("unsupported pack schema %d (this build reads schema %d)", p.Schema, SchemaVersion)
	}
	return &p, nil
}

// Encode renders the canonical encoding of the pack: two-space indented JSON
// with a trailing newline, fields in wire-struct order. Hash is defined over
// these bytes, and dmi-tasks -export writes exactly these bytes, so a pack
// re-exported from the same tasks is byte-identical.
func (p *Pack) Encode() ([]byte, error) {
	out, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Hash returns the pack identity: the hex SHA-256 of the canonical encoding.
// Because the input is the re-encoding, not the bytes a pack was loaded from,
// reformatting a pack file on disk does not change its identity — only a
// change to its content does.
func (p *Pack) Hash() (string, error) {
	canon, err := p.Encode()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// decodeError attaches a line:column position to a decoder error when the
// error exposes an offset; unknown-field errors (which do not) get the
// decoder's current position, which lands on or just after the bad field.
func decodeError(data []byte, dec *json.Decoder, err error) error {
	var syn *json.SyntaxError
	if errors.As(err, &syn) {
		line, col := lineCol(data, syn.Offset)
		return fmt.Errorf("%d:%d: %v", line, col, err)
	}
	var typ *json.UnmarshalTypeError
	if errors.As(err, &typ) {
		line, col := lineCol(data, typ.Offset)
		return fmt.Errorf("%d:%d: %v", line, col, err)
	}
	line, col := lineCol(data, dec.InputOffset())
	return fmt.Errorf("%d:%d: %v", line, col, err)
}

// lineCol converts a byte offset into 1-based line and column numbers.
func lineCol(data []byte, offset int64) (line, col int) {
	if offset > int64(len(data)) {
		offset = int64(len(data))
	}
	head := data[:offset]
	line = 1 + bytes.Count(head, []byte("\n"))
	if i := bytes.LastIndexByte(head, '\n'); i >= 0 {
		col = int(offset) - i
	} else {
		col = int(offset) + 1
	}
	return line, col
}
