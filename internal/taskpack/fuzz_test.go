package taskpack

import (
	"bytes"
	"testing"
)

// FuzzTaskPackDecode drives arbitrary bytes through the strict decoder and,
// for anything that decodes, asserts the canonical-encoding fixed point:
// decode→encode→decode→encode is byte-stable (the property Hash identity
// rests on), conversion to tasks never panics, and validation of the decoded
// pack never panics. The committed corpus under testdata/fuzz seeds the
// interesting shapes: the full builtin grid, a minimal pack, and packs
// exercising every optional wire field.
func FuzzTaskPackDecode(f *testing.F) {
	if p, err := BuiltinPack(); err == nil {
		if data, err := p.Encode(); err == nil {
			f.Add(data)
		}
	}
	f.Add([]byte(`{"schema":1,"name":"tiny","tasks":[]}`))
	f.Add([]byte(`{"schema": 1, "name": "one", "tasks": [{"id": "t", "app": "Word",
		"description": "d", "verify": {"op": "answer"},
		"plan": [{"kind": "shortcut", "key": "ENTER"}]}]}`))
	f.Add([]byte(`{"schema": 1, "name": "cond", "tasks": [{"id": "t", "app": "Settings",
		"description": "d", "ambiguity": 0.5, "expected": "42",
		"setup": [{"op": "settings-set", "path": "wifi", "value": false}],
		"verify": {"op": "all", "subs": [
			{"op": "not", "subs": [{"op": "equals", "path": "state.theme", "value": "Dark"}]},
			{"op": "at-least", "path": "state.brightness", "value": 10},
			{"op": "contains", "path": "state.time-zone", "value": "UTC"}]},
		"plan": [{"kind": "state", "state": {"op": "scrollbar", "control": "S",
			"control_type": "ScrollBar", "h": -1, "v": 80}, "visual_diff": 0.7,
			"trap": {"kind": "subtle-semantics", "weight": 0.4}},
			{"kind": "access", "target": {"primary": "p", "gid_contains": "g", "via": "v"},
			"trap": {"alt": {"primary": "q"}}}]}]}`))
	f.Add([]byte(`{"schema":2,"name":"future","tasks":[]}`))
	f.Add([]byte(`{"schema":1,"nmae":"typo","tasks":[]}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Decode(data)
		if err != nil {
			return // rejection is fine; panicking is not
		}
		enc1, err := p.Encode()
		if err != nil {
			t.Fatalf("decoded pack does not encode: %v", err)
		}
		p2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("canonical encoding does not re-decode: %v\n%s", err, enc1)
		}
		enc2, err := p2.Encode()
		if err != nil {
			t.Fatalf("re-decoded pack does not encode: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("encoding is not a fixed point:\nfirst:  %s\nsecond: %s", enc1, enc2)
		}
		h1, err := p.Hash()
		if err != nil || len(h1) != 64 {
			t.Fatalf("hash: %q, %v", h1, err)
		}
		_, _ = p.ToTasks()        // conversion must not panic
		_ = ValidatePack(data, p) // validation must not panic
	})
}
