package taskpack

import (
	"fmt"

	"repro/internal/osworld"
	"repro/internal/uia"
)

// Step-kind wire names. The int values of osworld.StepKind are an internal
// iota; packs carry stable strings.
var stepKindNames = map[osworld.StepKind]string{
	osworld.StepAccess:   "access",
	osworld.StepInput:    "input",
	osworld.StepShortcut: "shortcut",
	osworld.StepState:    "state",
	osworld.StepObserve:  "observe",
}

func stepKindFromName(name string) (osworld.StepKind, bool) {
	for k, n := range stepKindNames {
		if n == name {
			return k, true
		}
	}
	return 0, false
}

// FromTasks renders tasks into wire form. It fails only on content the wire
// format cannot carry (an unnamed step kind or control type), which the
// compiled-in grid never produces.
func FromTasks(name, description string, tasks []osworld.Task) (*Pack, error) {
	p := &Pack{Schema: SchemaVersion, Name: name, Description: description}
	for _, t := range tasks {
		pt, err := fromTask(t)
		if err != nil {
			return nil, fmt.Errorf("task %s: %w", t.ID, err)
		}
		p.Tasks = append(p.Tasks, pt)
	}
	return p, nil
}

// ToTasks converts the pack back into runnable tasks. It inverts FromTasks
// exactly: export → load → export is byte-identical, and load(export(ts))
// is structurally equal to ts.
func (p *Pack) ToTasks() ([]osworld.Task, error) {
	var ts []osworld.Task
	for i, pt := range p.Tasks {
		t, err := toTask(pt)
		if err != nil {
			return nil, fmt.Errorf("task %s (#%d): %w", pt.ID, i+1, err)
		}
		ts = append(ts, t)
	}
	return ts, nil
}

func fromTask(t osworld.Task) (PackTask, error) {
	pt := PackTask{
		ID:          t.ID,
		App:         t.App,
		Description: t.Description,
		Ambiguity:   t.Ambiguity,
		Expected:    t.Expected,
		Verify:      fromCond(t.Verify),
	}
	for _, op := range t.Setup {
		pt.Setup = append(pt.Setup, PackSetup{
			Op: op.Op, Texts: op.Texts, Ref: op.Ref,
			Path: op.Path, Value: op.Value, Count: op.Count,
		})
	}
	for i, s := range t.Plan {
		ps, err := fromStep(s)
		if err != nil {
			return PackTask{}, fmt.Errorf("plan step %d: %w", i+1, err)
		}
		pt.Plan = append(pt.Plan, ps)
	}
	return pt, nil
}

func toTask(pt PackTask) (osworld.Task, error) {
	t := osworld.Task{
		ID:          pt.ID,
		App:         pt.App,
		Description: pt.Description,
		Ambiguity:   pt.Ambiguity,
		Expected:    pt.Expected,
		Verify:      toCond(pt.Verify),
	}
	for _, op := range pt.Setup {
		t.Setup = append(t.Setup, osworld.SetupOp{
			Op: op.Op, Texts: op.Texts, Ref: op.Ref,
			Path: op.Path, Value: op.Value, Count: op.Count,
		})
	}
	for i, ps := range pt.Plan {
		s, err := toStep(ps)
		if err != nil {
			return osworld.Task{}, fmt.Errorf("plan step %d: %w", i+1, err)
		}
		t.Plan = append(t.Plan, s)
	}
	return t, nil
}

func fromCond(c osworld.Cond) PackCond {
	pc := PackCond{Op: c.Op, Path: c.Path, Value: c.Value}
	for _, s := range c.Subs {
		pc.Subs = append(pc.Subs, fromCond(s))
	}
	return pc
}

func toCond(pc PackCond) osworld.Cond {
	c := osworld.Cond{Op: pc.Op, Path: pc.Path, Value: pc.Value}
	for _, s := range pc.Subs {
		c.Subs = append(c.Subs, toCond(s))
	}
	return c
}

func fromStep(s osworld.PlanStep) (PackStep, error) {
	kind, ok := stepKindNames[s.Kind]
	if !ok {
		return PackStep{}, fmt.Errorf("step kind %d has no wire name", s.Kind)
	}
	ps := PackStep{
		Kind:       kind,
		Text:       s.Text,
		Key:        s.Key,
		Ambiguity:  s.Ambiguity,
		VisualDiff: s.VisualDiff,
	}
	if s.Target != (osworld.Target{}) {
		ps.Target = fromTarget(s.Target)
	}
	if s.State != nil {
		st, err := fromState(*s.State)
		if err != nil {
			return PackStep{}, err
		}
		ps.State = st
	}
	if s.TrapKind != "" || s.TrapWeight != 0 || s.TrapAlt != nil {
		trap := &PackTrap{Kind: s.TrapKind, Weight: s.TrapWeight}
		if s.TrapAlt != nil {
			trap.Alt = fromTarget(*s.TrapAlt)
		}
		ps.Trap = trap
	}
	return ps, nil
}

func toStep(ps PackStep) (osworld.PlanStep, error) {
	kind, ok := stepKindFromName(ps.Kind)
	if !ok {
		return osworld.PlanStep{}, fmt.Errorf("unknown step kind %q", ps.Kind)
	}
	s := osworld.PlanStep{
		Kind:       kind,
		Text:       ps.Text,
		Key:        ps.Key,
		Ambiguity:  ps.Ambiguity,
		VisualDiff: ps.VisualDiff,
	}
	if ps.Target != nil {
		s.Target = toTarget(*ps.Target)
	}
	if ps.State != nil {
		st, err := toState(*ps.State)
		if err != nil {
			return osworld.PlanStep{}, err
		}
		s.State = &st
	}
	if ps.Trap != nil {
		s.TrapKind = ps.Trap.Kind
		s.TrapWeight = ps.Trap.Weight
		if ps.Trap.Alt != nil {
			alt := toTarget(*ps.Trap.Alt)
			s.TrapAlt = &alt
		}
	}
	return s, nil
}

func fromTarget(t osworld.Target) *PackTarget {
	return &PackTarget{Primary: t.Primary, GIDContains: t.GIDContains, Via: t.Via}
}

func toTarget(pt PackTarget) osworld.Target {
	return osworld.Target{Primary: pt.Primary, GIDContains: pt.GIDContains, Via: pt.Via}
}

func fromState(st osworld.StateOp) (*PackState, error) {
	name := st.ControlType.String()
	if _, ok := uia.ParseControlType(name); !ok {
		return nil, fmt.Errorf("control type %d has no wire name", st.ControlType)
	}
	return &PackState{
		Op: st.Op, Control: st.ControlName, ControlType: name,
		H: st.H, V: st.V, Start: st.Start, End: st.End,
		Names: st.Names, Value: st.Value,
	}, nil
}

func toState(ps PackState) (osworld.StateOp, error) {
	ct, ok := uia.ParseControlType(ps.ControlType)
	if !ok {
		return osworld.StateOp{}, fmt.Errorf("unknown control type %q", ps.ControlType)
	}
	return osworld.StateOp{
		Op: ps.Op, ControlName: ps.Control, ControlType: ct,
		H: ps.H, V: ps.V, Start: ps.Start, End: ps.End,
		Names: ps.Names, Value: ps.Value,
	}, nil
}
