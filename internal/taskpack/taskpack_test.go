package taskpack

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/osworld"
)

// The tentpole invariant: the compiled-in grid exports to a pack, the pack
// loads back, and the loaded tasks are structurally identical to the grid.
// Task is pure data, so DeepEqual is exact — any field the wire format
// dropped or coerced would fail here.
func TestRoundTripIsLossless(t *testing.T) {
	grid := osworld.All()
	p, err := BuiltinPack()
	if err != nil {
		t.Fatalf("BuiltinPack: %v", err)
	}
	data, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	p2, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	loaded, err := p2.ToTasks()
	if err != nil {
		t.Fatalf("ToTasks: %v", err)
	}
	if len(loaded) != len(grid) {
		t.Fatalf("loaded %d tasks, grid has %d", len(loaded), len(grid))
	}
	for i := range grid {
		if !reflect.DeepEqual(loaded[i], grid[i]) {
			t.Errorf("task %s not preserved by round trip:\n grid: %+v\n pack: %+v",
				grid[i].ID, grid[i], loaded[i])
		}
	}
}

// Encoding is canonical: decode→encode reproduces the exact bytes, so the
// identity hash is stable and CI can diff an export against the committed
// pack file.
func TestEncodeIsCanonical(t *testing.T) {
	p, err := BuiltinPack()
	if err != nil {
		t.Fatalf("BuiltinPack: %v", err)
	}
	first, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	p2, err := Decode(first)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	second, err := p2.Encode()
	if err != nil {
		t.Fatalf("re-Encode: %v", err)
	}
	if !bytes.Equal(first, second) {
		t.Fatal("decode→encode is not byte-stable")
	}
	if !bytes.HasSuffix(first, []byte("}\n")) {
		t.Fatal("canonical encoding must end with a trailing newline")
	}
}

// A pack's identity survives reformatting: loading the canonical bytes and
// loading a reindented copy yield the same hash, and both match Builtin.
func TestHashIgnoresFormatting(t *testing.T) {
	p, err := BuiltinPack()
	if err != nil {
		t.Fatalf("BuiltinPack: %v", err)
	}
	canon, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	reg, err := Load(canon)
	if err != nil {
		t.Fatalf("Load canonical: %v", err)
	}
	// Reformat: collapse the two-space indents.
	ugly := bytes.ReplaceAll(canon, []byte("\n  "), []byte("\n"))
	reg2, err := Load(ugly)
	if err != nil {
		t.Fatalf("Load reformatted: %v", err)
	}
	if reg.Hash() != reg2.Hash() {
		t.Errorf("reformatting forked the identity: %s vs %s", reg.Hash(), reg2.Hash())
	}
	if reg.Hash() != Builtin().Hash() {
		t.Errorf("loaded hash %s != builtin hash %s", reg.Hash(), Builtin().Hash())
	}
	if reg.Name() != BuiltinName {
		t.Errorf("loaded name %q, want %q", reg.Name(), BuiltinName)
	}
}

func TestBuiltinRegistry(t *testing.T) {
	reg := Builtin()
	if reg.Len() != len(osworld.All()) {
		t.Fatalf("builtin has %d tasks, grid has %d", reg.Len(), len(osworld.All()))
	}
	if len(reg.Hash()) != 64 {
		t.Errorf("hash %q is not a hex sha256", reg.Hash())
	}
	if _, ok := reg.ByID("word-replace"); !ok {
		t.Error("ByID(word-replace) not found")
	}
	if _, ok := reg.ByID("no-such-task"); ok {
		t.Error("ByID(no-such-task) resolved")
	}
	if Builtin() != reg {
		t.Error("Builtin is not a singleton")
	}
}

func TestDecodeRejectsUnknownFields(t *testing.T) {
	p, _ := BuiltinPack()
	data, _ := p.Encode()
	bad := bytes.Replace(data, []byte(`"name"`), []byte(`"nmae"`), 1)
	if _, err := Decode(bad); err == nil {
		t.Fatal("unknown top-level field accepted")
	} else if !strings.Contains(err.Error(), "nmae") {
		t.Errorf("error does not name the unknown field: %v", err)
	}
	bad = bytes.Replace(data, []byte(`"ambiguity"`), []byte(`"ambiquity"`), 1)
	if _, err := Decode(bad); err == nil {
		t.Fatal("unknown nested field accepted")
	}
}

func TestDecodeRejectsWrongSchema(t *testing.T) {
	if _, err := Decode([]byte(`{"schema": 2, "name": "x", "tasks": []}`)); err == nil {
		t.Fatal("future schema accepted")
	} else if !strings.Contains(err.Error(), "schema 2") {
		t.Errorf("error does not name the schema: %v", err)
	}
	if _, err := Decode([]byte(`{"name": "x", "tasks": []}`)); err == nil {
		t.Fatal("missing schema accepted")
	}
}

func TestDecodeErrorsCarryPosition(t *testing.T) {
	src := "{\n  \"schema\": 1,\n  \"name\": \"x\",\n  \"tasks\": [,]\n}\n"
	_, err := Decode([]byte(src))
	if err == nil {
		t.Fatal("syntax error accepted")
	}
	if !strings.HasPrefix(err.Error(), "4:") {
		t.Errorf("error not located to line 4: %v", err)
	}
}

func TestDecodeRejectsTrailingData(t *testing.T) {
	if _, err := Decode([]byte(`{"schema":1,"name":"x","tasks":[]} {"extra":1}`)); err == nil {
		t.Fatal("trailing data accepted")
	}
}

func TestValidateFindsSemanticIssues(t *testing.T) {
	mut := func(f func(*Pack)) []byte {
		p, err := BuiltinPack()
		if err != nil {
			t.Fatalf("BuiltinPack: %v", err)
		}
		f(p)
		data, err := p.Encode()
		if err != nil {
			t.Fatalf("Encode: %v", err)
		}
		return data
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"clean", mut(func(p *Pack) {}), ""},
		{"duplicate id", mut(func(p *Pack) { p.Tasks[1].ID = p.Tasks[0].ID }), "duplicate task id"},
		{"unknown app", mut(func(p *Pack) { p.Tasks[0].App = "Outlook" }), `unknown application "Outlook"`},
		{"empty id", mut(func(p *Pack) { p.Tasks[0].ID = "" }), "has no id"},
		{"no name", mut(func(p *Pack) { p.Name = "" }), "pack has no name"},
		{"no tasks", mut(func(p *Pack) { p.Tasks = nil }), "pack has no tasks"},
		{"no description", mut(func(p *Pack) { p.Tasks[0].Description = "" }), "no description"},
		{"no plan", mut(func(p *Pack) { p.Tasks[0].Plan = nil }), "no plan steps"},
		{"unknown step kind", mut(func(p *Pack) { p.Tasks[0].Plan[0].Kind = "teleport" }), `unknown step kind "teleport"`},
		{"empty target", mut(func(p *Pack) { p.Tasks[0].Plan[0].Target = nil }), "needs a target"},
		{"empty key", mut(func(p *Pack) {
			p.Tasks[0].Plan[0] = PackStep{Kind: "shortcut"}
		}), "needs a key"},
		{"unknown state op", mut(func(p *Pack) {
			p.Tasks[0].Plan[0] = PackStep{Kind: "state", State: &PackState{Op: "warp", Control: "X", ControlType: "Document"}}
		}), `unknown state op "warp"`},
		{"unknown trap kind", mut(func(p *Pack) {
			p.Tasks[0].Plan[0].Trap = &PackTrap{Kind: "gremlins", Weight: 0.5}
		}), `unknown trap kind "gremlins"`},
		{"unknown control type", mut(func(p *Pack) {
			for i := range p.Tasks[0].Plan {
				if p.Tasks[0].Plan[i].State != nil {
					p.Tasks[0].Plan[i].State.ControlType = "Wormhole"
				}
			}
			// word-replace has no state step; put one in.
			p.Tasks[0].Plan = append(p.Tasks[0].Plan, PackStep{Kind: "state",
				State: &PackState{Op: "scrollbar", Control: "X", ControlType: "Wormhole"}})
		}), `unknown control type "Wormhole"`},
		{"unknown setup op", mut(func(p *Pack) {
			p.Tasks[0].Setup = []PackSetup{{Op: "summon"}}
		}), `setup op "summon" not supported`},
		{"unknown condition op", mut(func(p *Pack) {
			p.Tasks[0].Verify = PackCond{Op: "maybe"}
		}), `unknown condition op "maybe"`},
		{"unknown state path", mut(func(p *Pack) {
			p.Tasks[0].Verify = PackCond{Op: "equals", Path: "sideways", Value: true}
		}), `unknown Word state path "sideways"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			issues := Validate(tc.data)
			if tc.want == "" {
				if len(issues) != 0 {
					t.Fatalf("clean pack has issues: %v", issues)
				}
				return
			}
			if len(issues) == 0 {
				t.Fatalf("no issues found, want %q", tc.want)
			}
			found := false
			for _, i := range issues {
				if strings.Contains(i.String(), tc.want) {
					found = true
				}
			}
			if !found {
				t.Errorf("issues %v do not mention %q", issues, tc.want)
			}
		})
	}
}

// Issues point at the line the offending task's id appears on.
func TestValidateLocatesIssuesByLine(t *testing.T) {
	p, err := BuiltinPack()
	if err != nil {
		t.Fatalf("BuiltinPack: %v", err)
	}
	p.Tasks[1].App = "Outlook"
	data, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	issues := Validate(data)
	if len(issues) == 0 {
		t.Fatal("no issues found")
	}
	badID := p.Tasks[1].ID
	wantLine := 1 + bytes.Count(data[:bytes.Index(data, []byte(`"`+badID+`"`))], []byte("\n"))
	if issues[0].Line != wantLine {
		t.Errorf("issue at line %d, want %d (%s)", issues[0].Line, wantLine, issues[0])
	}
	if issues[0].Task != badID {
		t.Errorf("issue names task %q, want %q", issues[0].Task, badID)
	}
}

func TestLoadRejectsInvalidPack(t *testing.T) {
	p, err := BuiltinPack()
	if err != nil {
		t.Fatalf("BuiltinPack: %v", err)
	}
	p.Tasks[0].App = "Outlook"
	p.Tasks[1].App = "Notepad"
	data, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	_, err = Load(data)
	if err == nil {
		t.Fatal("invalid pack loaded")
	}
	if !strings.Contains(err.Error(), "more issue") {
		t.Errorf("multi-issue load error does not count the rest: %v", err)
	}
}

// Every loaded task must build a working environment: a pack passing Load is
// runnable end to end.
func TestLoadedTasksBuildAndVerify(t *testing.T) {
	p, err := BuiltinPack()
	if err != nil {
		t.Fatalf("BuiltinPack: %v", err)
	}
	data, err := p.Encode()
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	reg, err := Load(data)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, task := range reg.Tasks() {
		env, err := task.BuildEnv()
		if err != nil {
			t.Errorf("task %s: BuildEnv: %v", task.ID, err)
			continue
		}
		if env.Verify() {
			t.Errorf("task %s verifies on a fresh environment", task.ID)
		}
	}
}
