package taskpack

import (
	"bytes"
	"fmt"

	"repro/internal/osworld"
)

// Issue is one validation finding, located to a 1-based line in the pack
// bytes when the offending task can be found in them.
type Issue struct {
	Line int    // 0 when no position is known
	Task string // task id, "" for pack-level issues
	Msg  string
}

func (i Issue) String() string {
	s := ""
	if i.Line > 0 {
		s = fmt.Sprintf("line %d: ", i.Line)
	}
	if i.Task != "" {
		s += fmt.Sprintf("task %s: ", i.Task)
	}
	return s + i.Msg
}

// knownStateOps is the StateOp vocabulary the agent executes.
var knownStateOps = map[string]bool{
	"scrollbar":         true,
	"select_lines":      true,
	"select_paragraphs": true,
	"select_controls":   true,
	"set_range_value":   true,
}

// knownTrapKinds are the policy-level failure channels a plan step may tag;
// "" is a weightless trap that only redirects the target.
var knownTrapKinds = map[string]bool{
	"":                        true,
	osworld.FailAmbiguousTask: true,
	osworld.FailControlSem:    true,
	osworld.FailSubtleSem:     true,
}

// Validate decodes and fully validates pack bytes, returning every finding
// rather than stopping at the first. An empty result means the pack is
// loadable and every task builds and verifies against a real environment.
func Validate(data []byte) []Issue {
	p, err := Decode(data)
	if err != nil {
		// Decode errors already carry line:column in their message.
		return []Issue{{Msg: err.Error()}}
	}
	return ValidatePack(data, p)
}

// ValidatePack runs the semantic checks on an already-decoded pack: pack
// header sanity, unique non-empty ids, known applications, well-formed plan
// steps and traps, and — by building each task's environment once — setup
// ops the application interprets and verify conditions whose ops and state
// paths resolve. data is used only to locate findings by line; pass nil when
// the source bytes are unavailable.
func ValidatePack(data []byte, p *Pack) []Issue {
	var issues []Issue
	packIssue := func(msg string, args ...any) {
		issues = append(issues, Issue{Msg: fmt.Sprintf(msg, args...)})
	}
	if p.Name == "" {
		packIssue("pack has no name")
	}
	if len(p.Tasks) == 0 {
		packIssue("pack has no tasks")
	}

	apps := make(map[string]bool)
	for _, a := range osworld.Apps() {
		apps[a] = true
	}

	seen := make(map[string]bool)
	for i, pt := range p.Tasks {
		id := pt.ID
		taskIssue := func(msg string, args ...any) {
			issues = append(issues, Issue{Line: taskLine(data, id), Task: id, Msg: fmt.Sprintf(msg, args...)})
		}
		if id == "" {
			packIssue("task #%d has no id", i+1)
			continue
		}
		if seen[id] {
			taskIssue("duplicate task id")
			continue
		}
		seen[id] = true

		if !apps[pt.App] {
			taskIssue("unknown application %q (have %v)", pt.App, osworld.Apps())
			continue
		}
		if pt.Description == "" {
			taskIssue("task has no description")
		}
		if len(pt.Plan) == 0 {
			taskIssue("task has no plan steps")
		}
		for si, ps := range pt.Plan {
			for _, msg := range stepIssues(ps) {
				taskIssue("plan step %d: %s", si+1, msg)
			}
		}

		t, err := toTask(pt)
		if err != nil {
			taskIssue("%v", err)
			continue
		}
		// Check builds a fresh environment and evaluates the verify
		// condition once: it rejects setup ops the application does not
		// interpret, unknown condition ops, and state paths outside the
		// application's probe vocabulary.
		if err := t.Check(); err != nil {
			taskIssue("%v", err)
		}
	}
	return issues
}

// stepIssues reports the structural problems of one wire-form plan step.
func stepIssues(ps PackStep) []string {
	var msgs []string
	kind, ok := stepKindFromName(ps.Kind)
	if !ok {
		return []string{fmt.Sprintf("unknown step kind %q", ps.Kind)}
	}
	switch kind {
	case osworld.StepAccess, osworld.StepInput, osworld.StepObserve:
		if ps.Target == nil || ps.Target.Primary == "" {
			msgs = append(msgs, fmt.Sprintf("%s step needs a target with a primary id", ps.Kind))
		}
	case osworld.StepShortcut:
		if ps.Key == "" {
			msgs = append(msgs, "shortcut step needs a key")
		}
	case osworld.StepState:
		if ps.State == nil {
			msgs = append(msgs, "state step needs a state op")
		} else if !knownStateOps[ps.State.Op] {
			msgs = append(msgs, fmt.Sprintf("unknown state op %q", ps.State.Op))
		}
	}
	if ps.Trap != nil && !knownTrapKinds[ps.Trap.Kind] {
		msgs = append(msgs, fmt.Sprintf("unknown trap kind %q", ps.Trap.Kind))
	}
	return msgs
}

// taskLine locates a task in the pack bytes by its quoted id and returns the
// 1-based line it appears on, or 0 when the bytes are unavailable or the id
// cannot be found (e.g. it contains escapes).
func taskLine(data []byte, id string) int {
	if len(data) == 0 || id == "" {
		return 0
	}
	i := bytes.Index(data, []byte(`"`+id+`"`))
	if i < 0 {
		return 0
	}
	line, _ := lineCol(data, int64(i))
	return line
}
