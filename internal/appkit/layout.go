package appkit

import "repro/internal/uia"

// Layout assigns deterministic bounding rectangles to every element of the
// application: the main window and all popup templates. The GUI-only
// baseline grounds its clicks and drags in these coordinates, so layout must
// be stable across runs; visual fidelity is irrelevant.
//
// The scheme is a simple recursive flow layout: containers receive their
// parent's rectangle inset by a margin, and leaf controls flow left-to-right
// in fixed-size cells, wrapping at the container edge.
func (a *App) Layout() {
	layoutTree(a.Win)
	for _, p := range a.allPopups() {
		layoutTree(p.Win)
	}
}

// AllPopupWindows returns the root window element of every popup template
// the application has created, whether or not it is currently open. Tooling
// (control counting, offline modeling statistics) uses this to enumerate the
// complete UI surface.
func (a *App) AllPopupWindows() []*uia.Element {
	ps := a.allPopups()
	out := make([]*uia.Element, 0, len(ps))
	for _, p := range ps {
		out = append(out, p.Win)
	}
	return out
}

func (a *App) allPopups() []*Popup {
	seen := make(map[*Popup]bool)
	var out []*Popup
	var add func(p *Popup)
	add = func(p *Popup) {
		if p == nil || seen[p] {
			return
		}
		seen[p] = true
		out = append(out, p)
	}
	for _, p := range a.popups {
		add(p)
	}
	for _, p := range a.popupTemplates {
		add(p)
	}
	return out
}

const (
	cellW   = 110
	cellH   = 22
	inset   = 4
	rowGap  = 2
	colGap  = 4
	minSide = 12
)

func layoutTree(root *uia.Element) {
	r := root.Rect()
	if r.Empty() {
		r = uia.Rect{X: 400, Y: 200, W: 480, H: 560}
		root.SetRect(r)
	}
	layoutChildren(root, inner(r))
}

func inner(r uia.Rect) uia.Rect {
	return uia.Rect{X: r.X + inset, Y: r.Y + inset, W: max(r.W-2*inset, minSide), H: max(r.H-2*inset, minSide)}
}

// layoutChildren flows children into region. Containers get a full-width
// band whose height is proportional to their subtree size; leaves get fixed
// cells.
func layoutChildren(e *uia.Element, region uia.Rect) {
	children := e.Children()
	if len(children) == 0 {
		return
	}
	x, y := region.X, region.Y
	rowH := 0
	for _, c := range children {
		if len(c.Children()) > 0 {
			// Container: allocate a band and recurse.
			if x > region.X { // start a fresh row
				x = region.X
				y += rowH + rowGap
				rowH = 0
			}
			rows := (leafCount(c) + 7) / 8
			h := rows*(cellH+rowGap) + 2*inset
			band := uia.Rect{X: region.X, Y: y, W: region.W, H: h}
			c.SetRect(band)
			layoutChildren(c, inner(band))
			y += h + rowGap
			continue
		}
		// Leaf: place in the current row, wrapping at the edge.
		if x+cellW > region.X+region.W && x > region.X {
			x = region.X
			y += cellH + rowGap
		}
		c.SetRect(uia.Rect{X: x, Y: y, W: cellW, H: cellH})
		x += cellW + colGap
		if cellH > rowH {
			rowH = cellH
		}
	}
}

func leafCount(e *uia.Element) int {
	n := 0
	e.Walk(func(x *uia.Element) bool {
		if len(x.Children()) == 0 {
			n++
		}
		return true
	})
	return n
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
