package appkit

import (
	"testing"

	"repro/internal/uia"
)

func demoApp() *App {
	a := New("Demo")
	home := a.Tab("tabHome", "Home")
	font := home.Group("grpFont", "Font")
	font.ToggleButton("btnBold", "Bold",
		func(a *App) bool { return false },
		func(a *App, on bool) {})
	ins := a.Tab("tabInsert", "Insert")
	ins.Group("grpTables", "Tables").Button("btnTable", "Table", nil)
	return a
}

func TestTabSwitching(t *testing.T) {
	a := demoApp()
	if a.ActiveTab() != "Home" {
		t.Fatalf("default tab = %q, want Home", a.ActiveTab())
	}
	tabInsert := a.Win.FindByAutomationID("tabInsert")
	if err := a.Desk.Click(tabInsert); err != nil {
		t.Fatal(err)
	}
	if a.ActiveTab() != "Insert" {
		t.Fatalf("active = %q, want Insert", a.ActiveTab())
	}
	// Home panel content must now be off screen.
	bold := a.Win.FindByAutomationID("btnBold")
	if bold.OnScreen() {
		t.Fatal("Home content visible while Insert active")
	}
}

func TestPopupOpenCloseEsc(t *testing.T) {
	a := demoApp()
	menu := a.NewMenu("mnuTest", "Test Menu")
	picked := ""
	menu.Panel().MenuItem("itA", "Option A", func(*App) { picked = "A" })
	a.Body().MenuButton("btnMenu", "Open Test", menu, nil)

	opener := a.Win.FindByAutomationID("btnMenu")
	if err := a.Desk.Click(opener); err != nil {
		t.Fatal(err)
	}
	if !menu.IsOpen() || a.OpenPopups() != 1 {
		t.Fatal("menu did not open")
	}
	// Esc dismisses.
	if err := a.Desk.PressKey("ESC"); err != nil {
		t.Fatal(err)
	}
	if menu.IsOpen() {
		t.Fatal("Esc did not close the menu")
	}
	// Leaf activation auto-closes.
	if err := a.Desk.Click(opener); err != nil {
		t.Fatal(err)
	}
	item := menu.Win.FindByAutomationID("itA")
	if err := a.Desk.Click(item); err != nil {
		t.Fatal(err)
	}
	if picked != "A" || menu.IsOpen() {
		t.Fatalf("picked=%q open=%v", picked, menu.IsOpen())
	}
}

func TestDialogOKCancel(t *testing.T) {
	a := demoApp()
	dlg := a.NewDialog("dlgTest", "Test Dialog")
	applied := 0
	okBtn, cancelBtn := dlg.AddOKCancel(func(*App) { applied++ })
	a.Body().DialogButton("btnDlg", "Open Dialog", dlg, nil)
	opener := a.Win.FindByAutomationID("btnDlg")

	if err := a.Desk.Click(opener); err != nil {
		t.Fatal(err)
	}
	if err := a.Desk.Click(okBtn); err != nil {
		t.Fatal(err)
	}
	if applied != 1 || dlg.IsOpen() {
		t.Fatal("OK did not apply and close")
	}

	if err := a.Desk.Click(opener); err != nil {
		t.Fatal(err)
	}
	if err := a.Desk.Click(cancelBtn); err != nil {
		t.Fatal(err)
	}
	if applied != 1 || dlg.IsOpen() {
		t.Fatal("Cancel applied or failed to close")
	}

	// Title bar close button also closes.
	if err := a.Desk.Click(opener); err != nil {
		t.Fatal(err)
	}
	closeBtn := dlg.Win.FindByAutomationID("dlgTestClose")
	if err := a.Desk.Click(closeBtn); err != nil {
		t.Fatal(err)
	}
	if dlg.IsOpen() {
		t.Fatal("Close button did not close dialog")
	}
}

func TestNestedPopupChainCloses(t *testing.T) {
	a := demoApp()
	outer := a.NewMenu("mnuOuter", "Outer")
	inner := a.NewDialog("dlgInner", "Inner")
	inner.AddOKCancel(nil)
	outer.Panel().DialogButton("btnInner", "Open Inner", inner, nil)
	a.Body().MenuButton("btnOuter", "Open Outer", outer, nil)

	a.Desk.Click(a.Win.FindByAutomationID("btnOuter"))
	a.Desk.Click(outer.Win.FindByAutomationID("btnInner"))
	if a.OpenPopups() != 2 {
		t.Fatalf("open popups = %d, want 2", a.OpenPopups())
	}
	// Closing the outer one kills the chain.
	a.CloseTopPopup(false) // inner
	a.CloseTopPopup(false) // outer
	if a.OpenPopups() != 0 {
		t.Fatal("chain not fully closed")
	}

	a.Desk.Click(a.Win.FindByAutomationID("btnOuter"))
	a.Desk.Click(outer.Win.FindByAutomationID("btnInner"))
	a.closePopup(outer, false) // close outer directly: inner must die too
	if a.OpenPopups() != 0 || inner.IsOpen() {
		t.Fatal("closing outer popup should close inner chain")
	}
}

func TestBindingFlowsToSharedPicker(t *testing.T) {
	a := demoApp()
	var got []string
	picker := a.ColorPicker("clr", "Colors", func(app *App, color string) {
		got = append(got, app.Binding().(string)+"="+color)
	})
	home := Panel{App: a, El: a.Win.FindByAutomationID("tabHomePanel")}
	home.MenuButton("btnFontColor", "Font Color", picker, func(*App) any { return "font" })
	home.MenuButton("btnUnderlineColor", "Underline Color", picker, func(*App) any { return "underline" })

	a.Desk.Click(a.Win.FindByAutomationID("btnFontColor"))
	blue := picker.Win.FindByName("Blue")
	if blue == nil {
		t.Fatal("picker has no Blue cell")
	}
	if err := a.Desk.Click(blue); err != nil {
		t.Fatal(err)
	}

	a.Desk.Click(a.Win.FindByAutomationID("btnUnderlineColor"))
	blue = picker.Win.FindByName("Blue")
	if err := a.Desk.Click(blue); err != nil {
		t.Fatal(err)
	}

	if len(got) != 2 || got[0] != "font=Blue" || got[1] != "underline=Blue" {
		t.Fatalf("path-dependent semantics broken: %v", got)
	}
	if picker.IsOpen() {
		t.Fatal("picking a color should close the flyout")
	}
}

func TestMoreColorsDialogKeepsBinding(t *testing.T) {
	a := demoApp()
	var got string
	picker := a.ColorPicker("clr", "Colors", func(app *App, color string) {
		got = app.Binding().(string) + "=" + color
	})
	a.Body().MenuButton("btnFill", "Fill Color", picker, func(*App) any { return "fill" })

	a.Desk.Click(a.Win.FindByAutomationID("btnFill"))
	a.Desk.Click(picker.Win.FindByAutomationID("clrMore"))
	if a.OpenPopups() != 2 {
		t.Fatalf("open popups = %d, want picker+dialog", a.OpenPopups())
	}
	dlg := a.popups[1]
	r := dlg.Win.FindByAutomationID("clrR")
	r.Pattern(uia.RangeValuePattern).(uia.RangeValuer).SetRangeValue(r, 12)
	okBtn := dlg.Win.FindByAutomationID("clrMoreDlgOK")
	if err := a.Desk.Click(okBtn); err != nil {
		t.Fatal(err)
	}
	if got != "fill=RGB(12,0,0)" {
		t.Fatalf("got %q", got)
	}
	if a.OpenPopups() != 0 {
		t.Fatal("OK in More Colors should close the whole chain")
	}
}

func TestGalleryExposesAllItems(t *testing.T) {
	a := demoApp()
	items := make([]string, 25)
	for i := range items {
		items[i] = "Style " + string(rune('A'+i))
	}
	var picked string
	g := a.Gallery("gal", "Styles", items, 10, func(_ *App, it string) { picked = it })
	a.Body().MenuButton("btnGal", "Styles", g, nil)
	a.Desk.Click(a.Win.FindByAutomationID("btnGal"))

	// Every item is in the accessibility tree, even past the viewport —
	// the property the offline ripper depends on.
	first := g.Win.FindByName("Style A")
	last := g.Win.FindByName("Style " + string(rune('A'+24)))
	if first == nil || !first.OnScreen() || last == nil || !last.OnScreen() {
		t.Fatal("gallery items not all exposed")
	}
	// The scroll affordance pans the viewport without changing exposure.
	list := g.Win.FindByAutomationID("galItems")
	sc, ok := list.Pattern(uia.ScrollPattern).(uia.Scroller)
	if !ok {
		t.Fatal("long gallery lacks Scroll pattern")
	}
	a.Desk.Click(g.Win.FindByAutomationID("galNext"))
	if _, v := sc.ScrollPercent(list); v <= 0 {
		t.Fatal("Next Row did not scroll")
	}
	a.Desk.Click(first)
	if picked != "Style A" || g.IsOpen() {
		t.Fatalf("picked=%q open=%v", picked, g.IsOpen())
	}
	// Short galleries are not large enumerations; long ones are.
	if list.LargeEnum() {
		t.Error("25-item gallery should not be a large enumeration")
	}
	big := a.Gallery("galBig", "Big", make([]string, 60), 10, nil)
	if !big.Win.FindByAutomationID("galBigItems").LargeEnum() {
		t.Error("60-item gallery should be a large enumeration")
	}
}

func TestWizardBackNextCycle(t *testing.T) {
	a := demoApp()
	finished := false
	wiz := a.Wizard("wiz", "Convert Wizard", []WizardStep{
		{Name: "Choose type", Build: func(p Panel) { p.Label("Type") }},
		{Name: "Set delimiters", Build: func(p Panel) { p.Label("Delims") }},
		{Name: "Finish up", Build: func(p Panel) { p.Label("Done") }},
	}, func(*App) { finished = true })
	a.Body().DialogButton("btnWiz", "Open Wizard", wiz, nil)
	a.Desk.Click(a.Win.FindByAutomationID("btnWiz"))

	step1 := wiz.Win.FindByAutomationID("wizStep1")
	step2 := wiz.Win.FindByAutomationID("wizStep2")
	next := wiz.Win.FindByAutomationID("wizNextStep")
	back := wiz.Win.FindByAutomationID("wizBack")

	if !step1.OnScreen() || step2.OnScreen() {
		t.Fatal("wizard should open at step 1")
	}
	a.Desk.Click(next)
	if step1.OnScreen() || !step2.OnScreen() {
		t.Fatal("Next did not advance")
	}
	a.Desk.Click(back)
	if !step1.OnScreen() {
		t.Fatal("Back did not return to step 1 (cycle source)")
	}
	a.Desk.Click(next)
	a.Desk.Click(next)
	a.Desk.Click(wiz.Win.FindByAutomationID("wizFinish"))
	if !finished || wiz.IsOpen() {
		t.Fatal("Finish did not apply and close")
	}
}

func TestContextTabs(t *testing.T) {
	a := demoApp()
	a.RegisterContext(Context{Name: "image-selected"})
	pf := a.ContextTab("tabPicFormat", "Picture Format", "image-selected")
	pf.Group("grpPicStyles", "Picture Styles").Button("btnBorder", "Picture Border", nil)

	item := a.Win.FindByAutomationID("tabPicFormat")
	if item.OnScreen() {
		t.Fatal("contextual tab visible without context")
	}
	if err := a.EnterContext("image-selected"); err != nil {
		t.Fatal(err)
	}
	if !item.OnScreen() {
		t.Fatal("contextual tab hidden while context active")
	}
	a.Desk.Click(item)
	if a.ActiveTab() != "Picture Format" {
		t.Fatal("contextual tab did not activate")
	}
	a.ExitContext("image-selected")
	if item.OnScreen() {
		t.Fatal("contextual tab visible after context exit")
	}
	if a.ActiveTab() != "Home" {
		t.Fatalf("active tab = %q, want fallback to Home", a.ActiveTab())
	}
	if err := a.EnterContext("nope"); err == nil {
		t.Fatal("unknown context accepted")
	}
}

func TestSoftReset(t *testing.T) {
	a := demoApp()
	a.RegisterContext(Context{Name: "ctx"})
	menu := a.NewMenu("m", "M")
	menu.Panel().MenuItem("mi", "Item", nil)
	a.Body().MenuButton("bm", "Open", menu, nil)
	collapse, pin := a.AddRibbonCollapse()

	a.Desk.Click(a.Win.FindByAutomationID("bm"))
	a.EnterContext("ctx")
	a.ActivateTabByName("Insert")
	a.Desk.Click(collapse)

	a.SoftReset()
	if a.OpenPopups() != 0 || a.ContextActive("ctx") || a.ActiveTab() != "Home" {
		t.Fatal("SoftReset incomplete")
	}
	if pin.OnScreen() || !collapse.OnScreen() {
		t.Fatal("SoftReset did not restore the ribbon")
	}
}

func TestRibbonCollapseCycle(t *testing.T) {
	a := demoApp()
	collapse, pin := a.AddRibbonCollapse()
	bold := a.Win.FindByAutomationID("btnBold")
	a.Desk.Click(collapse)
	if bold.OnScreen() || !pin.OnScreen() {
		t.Fatal("collapse did not hide ribbon body")
	}
	a.Desk.Click(pin)
	if !bold.OnScreen() || !collapse.OnScreen() {
		t.Fatal("pin did not restore ribbon body")
	}
}

func TestCommitEdit(t *testing.T) {
	a := demoApp()
	var committed string
	ed := a.Body().CommitEdit("edName", "Name Box", "", func(_ *App, v string) { committed = v })
	if err := a.Desk.Click(ed); err != nil {
		t.Fatal(err)
	}
	if err := a.Desk.TypeText("B12"); err != nil {
		t.Fatal(err)
	}
	if committed != "" {
		t.Fatal("commit ran before ENTER")
	}
	if err := a.Desk.PressKey("ENTER"); err != nil {
		t.Fatal(err)
	}
	if committed != "B12" {
		t.Fatalf("committed = %q", committed)
	}
}

func TestComboBoxPicksAndLargeEnum(t *testing.T) {
	a := demoApp()
	small := []string{"8", "9", "10", "11", "12"}
	var picked string
	cb := a.Body().ComboBox("cbSize", "Font Size", small, func(_ *App, v string) { picked = v })
	a.Desk.Click(cb) // expand
	it := cb.FindByName("11")
	if it == nil || !it.OnScreen() {
		t.Fatal("combo options not visible after expand")
	}
	a.Desk.Click(it)
	if picked != "11" {
		t.Fatalf("picked = %q", picked)
	}
	if it.OnScreen() {
		t.Fatal("options should collapse after pick")
	}
	if v := cb.Pattern(uia.ValuePattern).(uia.Valuer).Value(cb); v != "11" {
		t.Fatalf("combo value = %q", v)
	}

	big := make([]string, 100)
	for i := range big {
		big[i] = "Font " + string(rune('A'+i%26)) + string(rune('0'+i%10))
	}
	cb2 := a.Body().ComboBox("cbFont", "Font", big, nil)
	list := cb2.FindByAutomationID("cbFontList")
	if !list.LargeEnum() {
		t.Fatal("long option list not marked as large enumeration")
	}
}

func TestRadioGroup(t *testing.T) {
	a := demoApp()
	var idx int = -1
	p := a.Body().Pane("pOrient", "Orientation")
	btns := p.RadioGroup("rbO", []string{"Portrait", "Landscape"}, func(_ *App, i int) { idx = i })
	a.Desk.Click(btns[1])
	if idx != 1 {
		t.Fatalf("picked index = %d", idx)
	}
	si := btns[1].Pattern(uia.SelectionItemPattern).(uia.SelectionItem)
	if !si.IsSelected(btns[1]) || si.IsSelected(btns[0]) {
		t.Fatal("radio selection state wrong")
	}
}

func TestLayoutAssignsRects(t *testing.T) {
	a := demoApp()
	menu := a.NewMenu("m", "M")
	menu.Panel().MenuItem("mi", "Item", nil)
	a.Layout()
	bold := a.Win.FindByAutomationID("btnBold")
	if bold.Rect().Empty() {
		t.Fatal("leaf control has empty rect after layout")
	}
	// The control must be clickable at its center when visible.
	cx, cy := bold.Rect().Center()
	if got := a.Desk.HitTest(cx, cy); got != bold {
		t.Fatalf("HitTest at bold center = %v", got)
	}
	item := menu.Win.FindByAutomationID("mi")
	if item.Rect().Empty() {
		t.Fatal("popup item has empty rect after layout")
	}
}

func TestBlocklist(t *testing.T) {
	a := demoApp()
	acct := a.Body().Button("btnAccount", "Account", nil)
	a.Block(acct.ControlID())
	if !a.Blocked(acct) {
		t.Fatal("blocklist miss")
	}
	if a.BlocklistSize() != 1 {
		t.Fatal("blocklist size wrong")
	}
}
