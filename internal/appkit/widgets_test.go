package appkit

import (
	"testing"

	"repro/internal/uia"
)

func TestDetailTogglePair(t *testing.T) {
	a := New("Demo")
	dlg := a.NewDialog("dlgX", "Settings")
	p := dlg.Panel()
	pane := p.Pane("pnlDetails", "Details")
	pane.CheckBox("chkOpt", "Option", func(*App) bool { return false }, func(*App, bool) {})
	more, less := AddDetailToggle(p, "btnX", "More", "Less", pane.El)

	a.Body().DialogButton("btnOpen", "Open", dlg, nil)
	a.Desk.Click(a.Win.FindByAutomationID("btnOpen"))

	if pane.El.OnScreen() || less.OnScreen() || !more.OnScreen() {
		t.Fatal("dialog should open collapsed with More visible")
	}
	a.Desk.Click(more)
	if !pane.El.OnScreen() || !less.OnScreen() || more.OnScreen() {
		t.Fatal("More should reveal the pane and the Less button")
	}
	a.Desk.Click(less)
	if pane.El.OnScreen() || less.OnScreen() || !more.OnScreen() {
		t.Fatal("Less should re-reveal More (the cycle edge)")
	}

	// Dialog-internal state must reset with the application soft reset so
	// the ripper's replay assumptions hold.
	a.Desk.Click(more)
	a.SoftReset()
	if pane.El.Visible() || less.Visible() || !more.Visible() {
		t.Fatal("SoftReset did not restore the collapsed default")
	}
}

func TestColorPickerStructure(t *testing.T) {
	a := New("Demo")
	picker := a.ColorPicker("clr", "Colors", func(*App, string) {})
	// Theme grid: 10 columns × 6 variants; standard row: 10; plus
	// Automatic and No Color.
	theme := picker.Win.FindByAutomationID("clrTheme")
	if got := len(theme.Children()); got != 60 {
		t.Errorf("theme grid has %d cells, want 60", got)
	}
	std := picker.Win.FindByAutomationID("clrStd")
	if got := len(std.Children()); got != 10 {
		t.Errorf("standard row has %d cells, want 10", got)
	}
	if picker.Win.FindByName("Automatic") == nil || picker.Win.FindByName("No Color") == nil {
		t.Error("Automatic / No Color entries missing")
	}
	if picker.Win.FindByAutomationID("clrMore") == nil {
		t.Error("More Colors… entry missing")
	}
}

func TestRibbonCollapsePairTypes(t *testing.T) {
	a := New("Demo")
	a.Tab("tabHome", "Home")
	collapse, pin := a.AddRibbonCollapse()
	if collapse.Type() != uia.ButtonControl || pin.Type() != uia.ButtonControl {
		t.Error("collapse pair should be buttons")
	}
	if pin.Visible() {
		t.Error("pin should start hidden")
	}
}

func TestWizardFinishFromAnyStep(t *testing.T) {
	a := New("Demo")
	done := 0
	wiz := a.Wizard("wz", "W", []WizardStep{
		{Name: "one"}, {Name: "two"},
	}, func(*App) { done++ })
	a.Body().DialogButton("btnW", "Open", wiz, nil)
	a.Desk.Click(a.Win.FindByAutomationID("btnW"))
	// Finish directly from step 1.
	a.Desk.Click(wiz.Win.FindByAutomationID("wzFinish"))
	if done != 1 || wiz.IsOpen() {
		t.Fatal("finish from step 1 failed")
	}
	// Reopen: wizard must reset to step 1 (OnOpen hook).
	a.Desk.Click(a.Win.FindByAutomationID("btnW"))
	if !wiz.Win.FindByAutomationID("wzStep1").OnScreen() {
		t.Fatal("wizard did not reset to step 1 on reopen")
	}
}
