package appkit

import (
	"fmt"

	"repro/internal/uia"
)

// Panel wraps a container element and provides the control builders. The
// zero value is not useful; panels are produced by App and Popup methods and
// by the container builders below.
type Panel struct {
	App   *App
	El    *uia.Element
	popup *Popup // non-nil inside a popup; leaf items auto-close menus
}

func (p Panel) child(autoID, name string, t uia.ControlType) *uia.Element {
	e := uia.NewElement(autoID, name, t)
	p.El.AddChild(e)
	return e
}

func (p Panel) sub(el *uia.Element) Panel {
	return Panel{App: p.App, El: el, popup: p.popup}
}

// Group adds a named Group container (a ribbon group) and returns its panel.
func (p Panel) Group(autoID, name string) Panel {
	g := p.child(autoID, name, uia.GroupControl)
	g.SetDescription(name + " group")
	return p.sub(g)
}

// Pane adds a generic Pane container.
func (p Panel) Pane(autoID, name string) Panel {
	return p.sub(p.child(autoID, name, uia.PaneControl))
}

// List adds a List container.
func (p Panel) List(autoID, name string) Panel {
	l := p.child(autoID, name, uia.ListControl)
	return p.sub(l)
}

// Toolbar adds a ToolBar container.
func (p Panel) Toolbar(autoID, name string) Panel {
	return p.sub(p.child(autoID, name, uia.ToolBarControl))
}

// Label adds a static Text element.
func (p Panel) Label(name string) *uia.Element {
	return p.child("", name, uia.TextControl)
}

// Separator adds a separator element.
func (p Panel) Separator() *uia.Element {
	return p.child("", "", uia.SeparatorControl)
}

// Button adds a push button. onClick receives the owning App and may be nil.
func (p Panel) Button(autoID, name string, onClick func(a *App)) *uia.Element {
	b := p.child(autoID, name, uia.ButtonControl)
	pop := p.popup
	b.OnClick(func(*uia.Element) {
		if onClick != nil {
			onClick(p.App)
		}
		p.App.leafActivated(pop)
	})
	return b
}

// NavButton adds a button that does NOT auto-close its popup: use it for
// controls that navigate within a popup (wizard Back/Next, gallery paging).
func (p Panel) NavButton(autoID, name string, onClick func(a *App)) *uia.Element {
	b := p.child(autoID, name, uia.ButtonControl)
	if onClick != nil {
		b.OnClick(func(*uia.Element) { onClick(p.App) })
	}
	return b
}

// ToggleButton adds a button with a Toggle pattern whose state lives in the
// application model via get/set.
func (p Panel) ToggleButton(autoID, name string, get func(a *App) bool, set func(a *App, on bool)) *uia.Element {
	b := p.child(autoID, name, uia.ButtonControl)
	b.SetPattern(uia.TogglePattern, &modelToggle{app: p.App, get: get, set: set})
	return b
}

// CheckBox adds a check box bound to the application model.
func (p Panel) CheckBox(autoID, name string, get func(a *App) bool, set func(a *App, on bool)) *uia.Element {
	b := p.child(autoID, name, uia.CheckBoxControl)
	b.SetPattern(uia.TogglePattern, &modelToggle{app: p.App, get: get, set: set})
	return b
}

// modelToggle adapts app-model state to the Toggler interface.
type modelToggle struct {
	app *App
	get func(a *App) bool
	set func(a *App, on bool)
}

func (m *modelToggle) ToggleState(*uia.Element) uia.ToggleState {
	if m.get(m.app) {
		return uia.ToggleOn
	}
	return uia.ToggleOff
}

func (m *modelToggle) SetToggleState(_ *uia.Element, s uia.ToggleState) error {
	m.set(m.app, s == uia.ToggleOn)
	return nil
}

// MenuButton adds a SplitButton that opens the given popup when clicked.
// bind computes the semantic binding passed to the popup (nil for none);
// this is how one shared color picker serves Font Color, Outline Color, and
// Underline Color with different semantics.
func (p Panel) MenuButton(autoID, name string, popup *Popup, bind func(a *App) any) *uia.Element {
	b := p.child(autoID, name, uia.SplitButtonControl)
	b.SetDescription("Opens the " + popup.Win.Name() + " menu")
	b.OnClick(func(*uia.Element) {
		var binding any
		if bind != nil {
			binding = bind(p.App)
		}
		popup.Open(binding)
	})
	return b
}

// DialogButton adds a Button that opens the given dialog popup when clicked.
func (p Panel) DialogButton(autoID, name string, popup *Popup, bind func(a *App) any) *uia.Element {
	b := p.child(autoID, name, uia.ButtonControl)
	b.SetDescription("Opens the " + popup.Win.Name() + " dialog")
	b.OnClick(func(*uia.Element) {
		var binding any
		if bind != nil {
			binding = bind(p.App)
		}
		popup.Open(binding)
	})
	return b
}

// MenuItem adds a leaf menu item; activating it runs onPick and auto-closes
// menu popups.
func (p Panel) MenuItem(autoID, name string, onPick func(a *App)) *uia.Element {
	it := p.child(autoID, name, uia.MenuItemControl)
	pop := p.popup
	it.OnClick(func(*uia.Element) {
		if onPick != nil {
			onPick(p.App)
		}
		p.App.leafActivated(pop)
	})
	return it
}

// ListItem adds a leaf list item; activating it runs onPick and auto-closes
// menu popups.
func (p Panel) ListItem(autoID, name string, onPick func(a *App)) *uia.Element {
	it := p.child(autoID, name, uia.ListItemControl)
	pop := p.popup
	it.OnClick(func(*uia.Element) {
		if onPick != nil {
			onPick(p.App)
		}
		p.App.leafActivated(pop)
	})
	return it
}

// RadioGroup adds a set of radio buttons with single selection. onPick runs
// with the index of the chosen option.
func (p Panel) RadioGroup(autoIDPrefix string, options []string, onPick func(a *App, i int)) []*uia.Element {
	sel := uia.NewSelectionList(false, nil)
	p.El.SetPattern(uia.SelectionPattern, sel)
	out := make([]*uia.Element, len(options))
	for i, name := range options {
		i := i
		rb := p.child(fmt.Sprintf("%s%d", autoIDPrefix, i), name, uia.RadioButtonControl)
		rb.SetPattern(uia.SelectionItemPattern, sel.Item())
		rb.OnClick(func(*uia.Element) {
			if onPick != nil {
				onPick(p.App, i)
			}
		})
		out[i] = rb
	}
	return out
}

// Edit adds an editable text field backed by a Value pattern.
func (p Panel) Edit(autoID, name, initial string, onChange func(a *App, v string)) *uia.Element {
	e := p.child(autoID, name, uia.EditControl)
	e.SetPattern(uia.ValuePattern, uia.NewValue(initial, func(_ *uia.Element, v string) {
		if onChange != nil {
			onChange(p.App, v)
		}
	}))
	return e
}

// CommitEdit adds an Edit whose value is applied only when ENTER is pressed
// while it has focus — the Excel Name Box behaviour the paper's §5.7 lesson
// discusses.
func (p Panel) CommitEdit(autoID, name, initial string, onCommit func(a *App, v string)) *uia.Element {
	e := p.Edit(autoID, name, initial, nil)
	e.SetDescription(name + "; press Enter to commit the input")
	p.App.registerCommit(e, onCommit)
	return e
}

// ComboBox adds a combo box with a collapsed option list. Lists longer than
// LargeEnumThreshold are flagged as large enumerations, which core-topology
// extraction prunes (paper §3.3). onPick runs with the chosen option.
func (p Panel) ComboBox(autoID, name string, options []string, onPick func(a *App, v string)) *uia.Element {
	cb := p.child(autoID, name, uia.ComboBoxControl)
	listEl := uia.NewElement(autoID+"List", name+" Options", uia.ListControl)
	cb.AddChild(listEl)
	if len(options) > LargeEnumThreshold {
		listEl.MarkLargeEnum()
	}
	x := uia.NewExpand(listEl)
	cb.SetPattern(uia.ExpandCollapsePattern, x)
	cb.SetPattern(uia.ValuePattern, uia.NewValue("", nil))
	cb.OnClick(func(e *uia.Element) {
		if x.ExpandState(e) == uia.Expanded {
			_ = x.Collapse(e)
		} else {
			_ = x.Expand(e)
		}
	})
	for _, opt := range options {
		opt := opt
		it := uia.NewElement("", opt, uia.ListItemControl)
		listEl.AddChild(it)
		it.OnClick(func(*uia.Element) {
			v := cb.Pattern(uia.ValuePattern).(uia.Valuer)
			_ = v.SetValue(cb, opt)
			_ = x.Collapse(cb)
			if onPick != nil {
				onPick(p.App, opt)
			}
		})
	}
	return cb
}

// LargeEnumThreshold is the option count beyond which an enumeration is
// considered "large" and excluded from core topologies.
const LargeEnumThreshold = 48

// Spinner adds a numeric spinner backed by a RangeValue pattern.
func (p Panel) Spinner(autoID, name string, min, max, initial float64, onChange func(a *App, v float64)) *uia.Element {
	s := p.child(autoID, name, uia.SpinnerControl)
	s.SetPattern(uia.RangeValuePattern, &uia.SimpleRange{
		Min: min, Max: max, Val: initial,
		OnChange: func(_ *uia.Element, v float64) {
			if onChange != nil {
				onChange(p.App, v)
			}
		},
	})
	return s
}

// VScrollBar adds a vertical scroll bar bound to the application model.
func (p Panel) VScrollBar(autoID, name string, onChange func(a *App, v float64)) *uia.Element {
	sb := p.child(autoID, name, uia.ScrollBarControl)
	sc := uia.NewVScroll(func(_ *uia.Element, _, v float64) {
		if onChange != nil {
			onChange(p.App, v)
		}
	})
	sb.SetPattern(uia.ScrollPattern, sc)
	thumb := uia.NewElement(autoID+"Thumb", "Thumb", uia.ThumbControl)
	sb.AddChild(thumb)
	return sb
}

// Document adds a Document control carrying a Text pattern over body.
func (p Panel) Document(autoID, name string, text *uia.SimpleText) *uia.Element {
	d := p.child(autoID, name, uia.DocumentControl)
	d.SetPattern(uia.TextPattern, text)
	return d
}

// Custom attaches a prebuilt element.
func (p Panel) Custom(e *uia.Element) *uia.Element {
	p.El.AddChild(e)
	return e
}
