// Package appkit is a construction kit for simulated GUI applications on top
// of the uia accessibility substrate. It provides the structural vocabulary
// of ribbon applications — tab bars, groups, dropdown popups, modal dialogs,
// galleries, color pickers, wizards — together with the window management
// conventions (Esc closes popups, menus auto-close on leaf activation, OK
// applies and closes) that both the GUI ripper and the DMI executor rely on.
//
// The three Office simulators (internal/office/...) and the catalog
// applications (internal/apps/...) are built entirely from this kit; the
// "ribbon" vocabulary generalizes to any tabbed, dialog-heavy desktop
// application.
package appkit

import (
	"fmt"

	"repro/internal/uia"
)

// Context is an application state under which additional, otherwise hidden
// controls become visible — e.g. PowerPoint's "Picture Format" tab appearing
// only while an image is selected (paper §4.1, context-aware exploration).
type Context struct {
	Name  string
	Enter func(a *App)
	Exit  func(a *App)
}

// App is a simulated ribbon application: one main window on a desktop, a tab
// bar, a popup stack, and application-defined contexts and blocklists.
type App struct {
	Name string
	Desk *uia.Desktop
	Win  *uia.Element

	tabBar     *uia.Element
	body       *uia.Element // container for tab panels and document area
	tabs       []*tab
	defaultTab string

	popups         []*Popup // currently open, outermost first
	popupTemplates []*Popup // every popup ever created (for layout and tooling)

	// binding carries the semantic target of the currently open shared
	// popup chain (e.g. which property a color picker modifies). This is
	// what makes control function path-dependent (paper Challenge #1).
	binding any

	contexts  []Context
	active    map[string]bool // active context names
	blocklist map[string]bool // synthesized control IDs the ripper must not click

	commits     []commitHandler
	onSoftReset []func(a *App)
}

type tab struct {
	item       *uia.Element
	panel      *uia.Element
	contextual string // non-empty: visible only while this context is active
}

// New creates an application with an empty main window attached to a fresh
// desktop.
func New(name string) *App {
	d := uia.NewDesktop()
	win := uia.NewElement("win"+name, name, uia.WindowControl)
	win.SetRect(uia.Rect{X: 0, Y: 0, W: 1600, H: 900})
	d.OpenWindow(win)

	a := &App{
		Name:      name,
		Desk:      d,
		Win:       win,
		active:    make(map[string]bool),
		blocklist: make(map[string]bool),
	}

	a.tabBar = uia.NewElement("ribbonTabs", "Ribbon Tabs", uia.TabControl)
	a.body = uia.NewElement("ribbonBody", "Ribbon", uia.PaneControl)
	win.AddChild(a.tabBar)
	win.AddChild(a.body)

	d.RegisterKey("ESC", func(*uia.Desktop) error {
		a.CloseTopPopup(false)
		return nil
	})
	d.RegisterKey("ENTER", func(dd *uia.Desktop) error {
		return a.commitFocused()
	})
	return a
}

// Body returns the main window's content container as a buildable panel.
func (a *App) Body() Panel { return Panel{App: a, El: a.body} }

// Window returns the main window as a buildable panel (for status bars,
// scrollbars and other chrome outside the ribbon body).
func (a *App) Window() Panel { return Panel{App: a, El: a.Win} }

// Tab adds a ribbon tab and returns its content panel. The first tab added
// becomes the default active tab.
func (a *App) Tab(autoID, name string) Panel {
	return a.addTab(autoID, name, "")
}

// ContextTab adds a contextual ribbon tab visible only while the named
// context is active.
func (a *App) ContextTab(autoID, name, context string) Panel {
	return a.addTab(autoID, name, context)
}

func (a *App) addTab(autoID, name, context string) Panel {
	item := uia.NewElement(autoID, name, uia.TabItemControl)
	item.SetDescription(name + " ribbon tab")
	panel := uia.NewElement(autoID+"Panel", name+" Tab Content", uia.PaneControl)
	panel.SetVisible(false)
	t := &tab{item: item, panel: panel, contextual: context}
	a.tabs = append(a.tabs, t)
	a.tabBar.AddChild(item)
	a.body.AddChild(panel)

	item.OnClick(func(*uia.Element) { a.activateTab(t) })
	if context != "" {
		item.SetVisible(false)
	} else if a.defaultTab == "" {
		a.defaultTab = name
		a.activateTab(t)
	}
	return Panel{App: a, El: panel}
}

func (a *App) activateTab(t *tab) {
	for _, other := range a.tabs {
		other.panel.SetVisible(other == t)
	}
}

// ActiveTabInfo returns the active ribbon tab's item and content panel, or
// nil, nil when no tab is active. The GUI ripper uses this for root-node
// initialization: otherwise unscoped controls on the initial screen are
// associated with the active tab (paper §4.1).
func (a *App) ActiveTabInfo() (item, panel *uia.Element) {
	for _, t := range a.tabs {
		if t.panel.Visible() {
			return t.item, t.panel
		}
	}
	return nil, nil
}

// ActiveTab returns the name of the currently active ribbon tab, or "".
func (a *App) ActiveTab() string {
	for _, t := range a.tabs {
		if t.panel.Visible() {
			return t.item.Name()
		}
	}
	return ""
}

// ActivateTabByName switches the ribbon to the named tab; it is a no-op for
// unknown names.
func (a *App) ActivateTabByName(name string) {
	for _, t := range a.tabs {
		if t.item.Name() == name {
			a.activateTab(t)
			return
		}
	}
}

// Binding returns the semantic target bound to the innermost open popup.
func (a *App) Binding() any { return a.binding }

// Contexts -------------------------------------------------------------------

// RegisterContext declares an application context (see Context).
func (a *App) RegisterContext(c Context) { a.contexts = append(a.contexts, c) }

// Contexts returns the registered contexts.
func (a *App) Contexts() []Context { return a.contexts }

// EnterContext activates the named context: its Enter hook runs and
// contextual tabs bound to it become visible.
func (a *App) EnterContext(name string) error {
	for _, c := range a.contexts {
		if c.Name != name {
			continue
		}
		if c.Enter != nil {
			c.Enter(a)
		}
		a.active[name] = true
		for _, t := range a.tabs {
			if t.contextual == name {
				t.item.SetVisible(true)
			}
		}
		return nil
	}
	return fmt.Errorf("appkit: unknown context %q", name)
}

// ExitContext deactivates the named context and hides its contextual tabs.
func (a *App) ExitContext(name string) {
	for _, c := range a.contexts {
		if c.Name != name {
			continue
		}
		if c.Exit != nil {
			c.Exit(a)
		}
		delete(a.active, name)
		for _, t := range a.tabs {
			if t.contextual == name {
				t.item.SetVisible(false)
				if t.panel.Visible() {
					a.ActivateTabByName(a.defaultTab)
				}
			}
		}
	}
}

// ContextActive reports whether the named context is active.
func (a *App) ContextActive(name string) bool { return a.active[name] }

// Blocklist ------------------------------------------------------------------

// Block adds synthesized control IDs to the access blocklist consulted by
// the GUI ripper (paper §4.1): controls that would leave the application or
// enter states that Esc/Close cannot exit.
func (a *App) Block(controlIDs ...string) {
	for _, id := range controlIDs {
		a.blocklist[id] = true
	}
}

// Blocked reports whether the element is on the access blocklist.
func (a *App) Blocked(e *uia.Element) bool { return a.blocklist[e.ControlID()] }

// BlocklistSize returns the number of blocklisted controls, a measure of the
// manual effort in the offline phase.
func (a *App) BlocklistSize() int { return len(a.blocklist) }

// Reset ----------------------------------------------------------------------

// OnSoftReset registers an application hook run by SoftReset (e.g. clearing
// a transient document selection).
func (a *App) OnSoftReset(fn func(a *App)) { a.onSoftReset = append(a.onSoftReset, fn) }

// SoftReset returns the UI to its base state without restarting the
// application: all popups close, every context exits, and the default tab
// activates. The ripper uses this between explorations instead of the
// prohibitively expensive full restart (paper §4.1, access blocklist).
func (a *App) SoftReset() {
	a.CloseAllPopups()
	for name := range a.active {
		a.ExitContext(name)
	}
	a.ActivateTabByName(a.defaultTab)
	a.collapseExpandables()
	for _, fn := range a.onSoftReset {
		fn(a)
	}
}

// collapseExpandables returns every ExpandCollapse control (combo dropdowns
// and kin) to the collapsed state. Dropdown panes are not popups, so
// CloseAllPopups leaves their toggles alone; if that state survived
// SoftReset, an expansion's differential capture would depend on the
// instance's click-parity history, breaking the Expander contract that any
// instance anywhere yields the same result for (context, path, control) —
// and with it, distributed rip byte-identity and safe re-dispatch.
func (a *App) collapseExpandables() {
	collapse := func(root *uia.Element) {
		root.Walk(func(e *uia.Element) bool {
			if x, ok := e.Pattern(uia.ExpandCollapsePattern).(uia.ExpandCollapser); ok {
				if x.ExpandState(e) == uia.Expanded {
					_ = x.Collapse(e)
				}
			}
			return true
		})
	}
	collapse(a.Win)
	for _, p := range a.popupTemplates {
		collapse(p.Win)
	}
}

// Edit commit ----------------------------------------------------------------

// commit handlers are attached via Panel.CommitEdit; pressing ENTER with the
// edit focused runs the handler with the edit's current value. This models
// Office controls like Excel's Name Box where ENTER commits the input (the
// paper's "Rich control descriptions" lesson, §5.7).
type commitHandler struct {
	el *uia.Element
	fn func(a *App, value string)
}

func (a *App) registerCommit(el *uia.Element, fn func(a *App, value string)) {
	a.commits = append(a.commits, commitHandler{el, fn})
}

func (a *App) commitFocused() error {
	f := a.Desk.Focus()
	if f == nil {
		return nil
	}
	for _, h := range a.commits {
		if h.el == f {
			v, ok := f.Pattern(uia.ValuePattern).(uia.Valuer)
			if !ok {
				return nil
			}
			h.fn(a, v.Value(f))
			return nil
		}
	}
	return nil
}
