package appkit

import "repro/internal/uia"

// PopupKind distinguishes transient menus (auto-close when a leaf item is
// activated) from modal dialogs (closed explicitly via OK/Cancel/Close).
type PopupKind int

// Popup kinds.
const (
	MenuPopup PopupKind = iota
	DialogPopup
)

// Popup is a reusable popup window: a dropdown menu, a gallery flyout, or a
// modal dialog. A single Popup value can be opened from many different
// controls; because its internal structure is identical regardless of the
// opener, its controls become merge nodes in the UI Navigation Graph — the
// path-ambiguity phenomenon at the heart of the paper's Challenge #1.
type Popup struct {
	App  *App
	Kind PopupKind
	Win  *uia.Element // root of the popup tree (a window on the desktop)
	Body *uia.Element

	// OnOpen runs after the popup is pushed, with the opener's binding.
	OnOpen func(a *App, binding any)
	// OnClose runs when the popup is popped; accepted reports whether it
	// was closed by an accepting control (OK) rather than dismissed.
	OnClose func(a *App, accepted bool)
}

// NewMenu creates a reusable menu/flyout popup. Its body is a Menu control;
// items added to it auto-close the whole popup chain when activated.
func (a *App) NewMenu(autoID, name string) *Popup {
	win := uia.NewElement(autoID, name, uia.PaneControl)
	win.SetRect(uia.Rect{X: 500, Y: 200, W: 360, H: 480})
	body := uia.NewElement(autoID+"Body", name, uia.MenuControl)
	win.AddChild(body)
	p := &Popup{App: a, Kind: MenuPopup, Win: win, Body: body}
	a.popupTemplates = append(a.popupTemplates, p)
	return p
}

// NewDialog creates a reusable modal dialog popup with a title bar and a
// Close button. Use AddOKCancel to attach the accept/dismiss pair.
func (a *App) NewDialog(autoID, name string) *Popup {
	win := uia.NewElement(autoID, name, uia.WindowControl)
	win.SetRect(uia.Rect{X: 450, Y: 150, W: 560, H: 560})
	title := uia.NewElement(autoID+"Title", name, uia.TitleBarControl)
	closeBtn := uia.NewElement(autoID+"Close", "Close", uia.ButtonControl)
	closeBtn.SetDescription("Close the " + name + " dialog")
	win.AddChild(title)
	title.AddChild(closeBtn)
	body := uia.NewElement(autoID+"Body", name, uia.PaneControl)
	win.AddChild(body)

	p := &Popup{App: a, Kind: DialogPopup, Win: win, Body: body}
	closeBtn.OnClick(func(*uia.Element) { a.closePopup(p, false) })
	a.popupTemplates = append(a.popupTemplates, p)
	return p
}

// Panel returns the popup body as a buildable panel.
func (p *Popup) Panel() Panel { return Panel{App: p.App, El: p.Body, popup: p} }

// AddOKCancel appends an OK and a Cancel button to a dialog. OK runs apply
// (which may be nil) and closes with accepted=true; Cancel dismisses.
func (p *Popup) AddOKCancel(apply func(a *App)) (ok, cancel *uia.Element) {
	ok = uia.NewElement(p.Win.AutomationID()+"OK", "OK", uia.ButtonControl)
	ok.SetDescription("Apply and close")
	cancel = uia.NewElement(p.Win.AutomationID()+"Cancel", "Cancel", uia.ButtonControl)
	cancel.SetDescription("Close without applying")
	p.Body.AddChild(ok)
	p.Body.AddChild(cancel)
	ok.OnClick(func(*uia.Element) {
		if apply != nil {
			apply(p.App)
		}
		p.App.closePopup(p, true)
	})
	cancel.OnClick(func(*uia.Element) { p.App.closePopup(p, false) })
	return ok, cancel
}

// Open pushes the popup onto the desktop with the given semantic binding.
// Opening a popup that is already open is a no-op (re-binding still occurs).
func (p *Popup) Open(binding any) {
	a := p.App
	a.binding = binding
	if !a.Desk.IsOpen(p.Win) {
		a.Desk.OpenWindow(p.Win)
		a.popups = append(a.popups, p)
	}
	if p.OnOpen != nil {
		p.OnOpen(a, binding)
	}
}

// IsOpen reports whether the popup is currently on the desktop.
func (p *Popup) IsOpen() bool { return p.App.Desk.IsOpen(p.Win) }

// CloseTopPopup closes the innermost popup. accepted marks an accepting
// close (OK) as opposed to a dismissal (Esc/Cancel).
func (a *App) CloseTopPopup(accepted bool) {
	if len(a.popups) == 0 {
		return
	}
	a.closePopup(a.popups[len(a.popups)-1], accepted)
}

// CloseAllPopups dismisses the entire popup chain, innermost first.
func (a *App) CloseAllPopups() {
	for len(a.popups) > 0 {
		a.CloseTopPopup(false)
	}
}

// OpenPopups returns the number of popups currently open.
func (a *App) OpenPopups() int { return len(a.popups) }

// PopupTemplates returns every popup the application has created, open or
// not, in creation order.
func (a *App) PopupTemplates() []*Popup { return a.popupTemplates }

func (a *App) closePopup(p *Popup, accepted bool) {
	for i := len(a.popups) - 1; i >= 0; i-- {
		if a.popups[i] != p {
			continue
		}
		// Close this popup and everything above it (inner chains die with
		// their parent). The stack is popped before OnClose hooks fire so
		// hooks observe a consistent stack and may close further popups.
		closed := append([]*Popup(nil), a.popups[i:]...)
		a.popups = a.popups[:i]
		for j := len(closed) - 1; j >= 0; j-- {
			inner := closed[j]
			a.Desk.CloseWindow(inner.Win)
			if inner.OnClose != nil {
				inner.OnClose(a, accepted && j == 0)
			}
		}
		if len(a.popups) == 0 {
			a.binding = nil
		}
		return
	}
}

// CloseMenuChain closes the consecutive run of menu popups at the top of the
// popup stack, leaving any dialog beneath them (e.g. the Format Background
// pane under its color flyout) open.
func (a *App) CloseMenuChain() {
	for len(a.popups) > 0 && a.popups[len(a.popups)-1].Kind == MenuPopup {
		a.CloseTopPopup(false)
	}
}

// leafActivated is called by item builders when a menu leaf is clicked; it
// closes the menu chain, mirroring real menu behaviour.
func (a *App) leafActivated(p *Popup) {
	if p != nil && p.Kind == MenuPopup {
		a.CloseMenuChain()
	}
}
