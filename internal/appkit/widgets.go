package appkit

import (
	"fmt"

	"repro/internal/uia"
)

// Color picker ----------------------------------------------------------------

// ThemeColorNames are the base columns of the Office-style theme color grid.
var ThemeColorNames = []string{
	"White", "Black", "Gray", "Dark Blue", "Blue",
	"Light Blue", "Orange", "Gold", "Green", "Purple",
}

// ThemeColorVariants are the tint/shade rows of the theme color grid.
var ThemeColorVariants = []string{
	"", "Lighter 80%", "Lighter 60%", "Lighter 40%", "Darker 25%", "Darker 50%",
}

// StandardColorNames are the single standard-colors row.
var StandardColorNames = []string{
	"Dark Red", "Red", "Orange", "Yellow", "Light Green",
	"Green", "Light Blue", "Blue", "Dark Blue", "Purple",
}

// ColorPicker builds the shared Office-style color flyout: a theme color
// grid, a standard colors row, Automatic/No Color entries, and a "More
// Colors…" dialog with RGB spinners. One picker instance is reused by every
// color-bearing control (font color, underline color, outline, fill, ...);
// the opener's binding decides which property a pick modifies, making the
// picker's cells the canonical merge nodes of the navigation graph.
//
// onPick receives the chosen color name; it should consult a.Binding() for
// the semantic target.
func (a *App) ColorPicker(autoID, name string, onPick func(a *App, color string)) *Popup {
	p := a.NewMenu(autoID, name)
	body := p.Panel()

	body.MenuItem(autoID+"Auto", "Automatic", func(app *App) { onPick(app, "Automatic") })

	theme := body.Pane(autoID+"Theme", "Theme Colors")
	theme.El.SetDescription("Theme color grid")
	for _, variant := range ThemeColorVariants {
		for _, base := range ThemeColorNames {
			cname := base
			if variant != "" {
				cname = base + ", " + variant
			}
			cn := cname
			cell := theme.MenuItem("", cn, func(app *App) { onPick(app, cn) })
			cell.SetDescription(cn + " theme color")
		}
	}

	std := body.Pane(autoID+"Std", "Standard Colors")
	for _, base := range StandardColorNames {
		cn := base
		std.MenuItem("", cn, func(app *App) { onPick(app, cn) })
	}

	body.MenuItem(autoID+"None", "No Color", func(app *App) { onPick(app, "No Color") })

	more := a.NewDialog(autoID+"MoreDlg", "Colors")
	mb := more.Panel()
	var r, g, b float64
	mb.Label("Custom color (RGB)")
	mb.Spinner(autoID+"R", "Red", 0, 255, 0, func(_ *App, v float64) { r = v })
	mb.Spinner(autoID+"G", "Green", 0, 255, 0, func(_ *App, v float64) { g = v })
	mb.Spinner(autoID+"B", "Blue", 0, 255, 0, func(_ *App, v float64) { b = v })
	more.AddOKCancel(func(app *App) {
		onPick(app, fmt.Sprintf("RGB(%d,%d,%d)", int(r), int(g), int(b)))
	})
	// Accepting a custom color dismisses the flyout beneath the dialog too.
	more.OnClose = func(app *App, accepted bool) {
		if accepted {
			app.CloseMenuChain()
		}
	}
	// Opening "More Colors…" keeps the picker's binding: the dialog opens
	// with the same semantic target.
	body.DialogButton(autoID+"More", "More Colors…", more, func(app *App) any { return app.Binding() })

	return p
}

// Paged gallery ----------------------------------------------------------------

// Gallery builds a flyout gallery (styles, themes, transitions, ...). Like
// real UIA galleries, every item is exposed in the accessibility tree even
// though only perPage items fit the viewport visually; Previous/Next row
// buttons scroll the viewport (a Scroll pattern on the item list) without
// changing accessibility visibility. Galleries longer than
// LargeEnumThreshold are marked as large enumerations for core-topology
// pruning. onPick may be nil.
func (a *App) Gallery(autoID, name string, items []string, perPage int, onPick func(a *App, item string)) *Popup {
	p := a.NewMenu(autoID, name)
	body := p.Panel()

	list := body.List(autoID+"Items", name+" Gallery")
	if len(items) > LargeEnumThreshold {
		list.El.MarkLargeEnum()
	}
	for _, item := range items {
		it := item
		list.MenuItem("", it, func(app *App) {
			if onPick != nil {
				onPick(app, it)
			}
		})
	}
	if len(items) > perPage {
		sc := uia.NewVScroll(nil)
		list.El.SetPattern(uia.ScrollPattern, sc)
		step := 100 / float64((len(items)+perPage-1)/perPage)
		nav := body.Pane(autoID+"Nav", "Pager")
		nav.NavButton(autoID+"Prev", "Previous Row", func(*App) {
			_ = sc.ScrollStep(list.El, 0, -step)
		})
		nav.NavButton(autoID+"Next", "Next Row", func(*App) {
			_ = sc.ScrollStep(list.El, 0, step)
		})
	}
	return p
}

// Wizard -------------------------------------------------------------------------

// WizardStep is one page of a Wizard.
type WizardStep struct {
	Name  string
	Build func(p Panel)
}

// Wizard builds a multi-step modal dialog with Back/Next/Finish navigation
// (Excel's "Text to Columns" is the model). Back from step 2 re-reveals the
// step-1 controls and Next re-reveals step 2: the Back/Next pair forms a
// genuine cycle in the navigation graph (paper §3.2, "Cycles").
func (a *App) Wizard(autoID, name string, steps []WizardStep, onFinish func(a *App)) *Popup {
	dlg := a.NewDialog(autoID, name)
	body := dlg.Panel()

	var panels []*uia.Element
	for i, st := range steps {
		pg := body.Pane(fmt.Sprintf("%sStep%d", autoID, i+1),
			fmt.Sprintf("Step %d of %d: %s", i+1, len(steps), st.Name))
		pg.El.SetVisible(i == 0)
		if st.Build != nil {
			st.Build(pg)
		}
		panels = append(panels, pg.El)
	}

	cur := 0
	show := func(n int) {
		if n < 0 || n >= len(panels) {
			return
		}
		cur = n
		for i, pg := range panels {
			pg.SetVisible(i == cur)
		}
	}
	nav := body.Pane(autoID+"Nav", "Wizard Navigation")
	nav.NavButton(autoID+"Back", "Back", func(*App) { show(cur - 1) })
	nav.NavButton(autoID+"NextStep", "Next", func(*App) { show(cur + 1) })
	nav.Button(autoID+"Finish", "Finish", func(app *App) {
		if onFinish != nil {
			onFinish(app)
		}
		app.closePopup(dlg, true)
	})
	dlg.OnOpen = func(*App, any) { show(0) }
	return dlg
}

// Detail toggle -------------------------------------------------------------------

// AddDetailToggle wires a More/Less pair inside a dialog: More reveals the
// detail pane (and the Less button, hiding itself); Less hides the pane and
// re-reveals More. Because each button re-reveals the other, the pair forms
// a small, contained cycle in the navigation graph — Word's Find and
// Replace "More >>"/"<< Less" is the model.
func AddDetailToggle(p Panel, idPrefix, moreName, lessName string, pane *uia.Element) (more, less *uia.Element) {
	pane.SetVisible(false)
	more = p.NavButton(idPrefix+"More", moreName, nil)
	less = p.NavButton(idPrefix+"Less", lessName, nil)
	less.SetVisible(false)
	more.OnClick(func(*uia.Element) {
		pane.SetVisible(true)
		more.SetVisible(false)
		less.SetVisible(true)
	})
	less.OnClick(func(*uia.Element) {
		pane.SetVisible(false)
		less.SetVisible(false)
		more.SetVisible(true)
	})
	// Dialog-internal state persists across opens; restore the collapsed
	// default on soft reset so the ripper's DFS replay assumptions hold.
	p.App.OnSoftReset(func(*App) {
		pane.SetVisible(false)
		less.SetVisible(false)
		more.SetVisible(true)
	})
	return more, less
}

// Ribbon collapse ----------------------------------------------------------------

// AddRibbonCollapse wires the Collapse-the-Ribbon / Pin-the-Ribbon pair:
// collapsing hides the ribbon body and reveals the pin button; pinning
// restores it and re-reveals the collapse button. The pair forms the
// archetypal A→B→A cycle of the navigation graph.
func (a *App) AddRibbonCollapse() (collapse, pin *uia.Element) {
	w := a.Window()
	collapse = w.NavButton("ribbonCollapse", "Collapse the Ribbon", nil)
	pin = w.NavButton("ribbonPin", "Pin the Ribbon", nil)
	pin.SetVisible(false)
	collapse.OnClick(func(*uia.Element) {
		a.body.SetVisible(false)
		collapse.SetVisible(false)
		pin.SetVisible(true)
	})
	pin.OnClick(func(*uia.Element) {
		a.body.SetVisible(true)
		pin.SetVisible(false)
		collapse.SetVisible(true)
	})
	a.OnSoftReset(func(*App) {
		a.body.SetVisible(true)
		pin.SetVisible(false)
		collapse.SetVisible(true)
	})
	return collapse, pin
}
