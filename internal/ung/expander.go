package ung

import (
	"sync"
	"time"

	"repro/internal/appkit"
)

// ExpandResult is one expansion delivered back to the coordinator. Err is
// nil for every local expansion; a remote expander reports transport and
// protocol failures here (a frame that could not be expanded anywhere).
type ExpandResult struct {
	Expansion Expansion
	Err       error
}

// ExpanderStats is the instance-side work an expander performed over its
// lifetime, folded into the coordinator's Stats after Close.
type ExpanderStats struct {
	// Clicks and Snapshots total the instance work across all expansions,
	// including restores and click-path replays.
	Clicks    int
	Snapshots int
	// Workers is the pool width (goroutines for a local pool, total remote
	// in-flight capacity for a sharded one).
	Workers int
	// Longest is the busiest single worker's simulated clock — the
	// wall-clock analog when each worker drives its own machine.
	Longest time.Duration
}

// Expander runs frame expansions on behalf of a rip coordinator. Expand is
// asynchronous: it returns immediately with a buffered channel that will
// receive exactly one result, so the coordinator can dispatch every stacked
// frame speculatively and consume results in LIFO order. Implementations
// must never block the sender on the coordinator (the channel is buffered by
// the implementation) and must tolerate results that are never read.
//
// Close stops the expander and reports its lifetime stats. In-flight
// expansions run to completion before Close returns (their work is counted);
// undispatched ones are dropped — their buffered result channels are simply
// garbage collected, so an aborted rip leaks neither goroutines nor
// channels. Close is idempotent.
type Expander interface {
	Expand(ctx string, f Frame) <-chan ExpandResult
	Close() ExpanderStats
}

// LocalExpander is the in-process expander: a pool of worker goroutines,
// each driving its own throwaway application instance built by factory.
// This is the PR-1 rip pool behind the Expander seam.
type LocalExpander struct {
	q        *jobQueue
	wg       sync.WaitGroup
	wstats   []Stats
	welapsed []time.Duration

	closeOnce sync.Once
	stats     ExpanderStats
}

// NewLocalExpander starts workers goroutines, each on a fresh instance.
func NewLocalExpander(factory func() *appkit.App, workers int) *LocalExpander {
	if workers < 1 {
		workers = 1
	}
	le := &LocalExpander{
		q:        newJobQueue(),
		wstats:   make([]Stats, workers),
		welapsed: make([]time.Duration, workers),
	}
	for i := 0; i < workers; i++ {
		le.wg.Add(1)
		go func(i int) {
			defer le.wg.Done()
			app := factory()
			t0 := app.Desk.Clock().Now()
			for {
				j, ok := le.q.pop()
				if !ok {
					break
				}
				j.done <- ExpandResult{Expansion: expand(app, j.ctx, j.f, &le.wstats[i])}
			}
			le.welapsed[i] = app.Desk.Clock().Now() - t0
		}(i)
	}
	return le
}

// Expand queues the frame for the pool and returns its result channel.
func (le *LocalExpander) Expand(ctx string, f Frame) <-chan ExpandResult {
	j := &ripJob{ctx: ctx, f: f, done: make(chan ExpandResult, 1)}
	le.q.push(j)
	return j.done
}

// Close drains the pool: undispatched jobs are dropped, in-flight ones run
// to completion, and the workers' accumulated instance work is totaled.
func (le *LocalExpander) Close() ExpanderStats {
	le.closeOnce.Do(func() {
		le.q.close()
		le.wg.Wait()
		es := ExpanderStats{Workers: len(le.wstats)}
		for i := range le.wstats {
			es.Clicks += le.wstats[i].Clicks
			es.Snapshots += le.wstats[i].Snapshots
			if le.welapsed[i] > es.Longest {
				es.Longest = le.welapsed[i]
			}
		}
		le.stats = es
	})
	return le.stats
}

// ripJob is one frame expansion dispatched to the worker pool.
type ripJob struct {
	ctx  string
	f    Frame
	done chan ExpandResult // buffered: workers never block on the coordinator
}

// jobQueue is a LIFO work queue. LIFO matters: the coordinator consumes
// results in stack order, so the most recently pushed job is the one it will
// wait on soonest.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*ripJob
	closed bool
}

func newJobQueue() *jobQueue {
	q := &jobQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *jobQueue) push(j *ripJob) {
	q.mu.Lock()
	q.jobs = append(q.jobs, j)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until a job is available or the queue is closed.
func (q *jobQueue) pop() (*ripJob, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.jobs) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.jobs) == 0 {
		return nil, false
	}
	j := q.jobs[len(q.jobs)-1]
	q.jobs = q.jobs[:len(q.jobs)-1]
	return j, true
}

// close wakes every worker and drops undispatched jobs (relevant only when
// the coordinator aborts on the node limit).
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.jobs = nil
	q.mu.Unlock()
	q.cond.Broadcast()
}
