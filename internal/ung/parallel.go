package ung

import (
	"fmt"

	"repro/internal/appkit"
)

// RipDispatched builds the UNG with expansions delegated to an Expander —
// an in-process pool (LocalExpander), a fleet of serving replicas
// (bench.RemoteExpander), or anything else satisfying the seam. It produces
// a graph byte-identical to Rip(probe, cfg) — same nodes, same discovery
// order, same edge insertion order — regardless of where or in what order
// expansions actually execute.
//
// The design separates the two halves of the sequential algorithm:
//
//   - Expansion (restore, replay the click path, click, differential
//     capture) touches only an application instance. It is a deterministic
//     function of (context, path, control), so any instance anywhere yields
//     the same result the coordinator's own would — including after a
//     retry, which is what makes remote re-dispatch safe.
//   - Application (ensure nodes, add edges, push newly discovered frames)
//     touches the shared graph. The coordinator performs it alone, popping
//     frames in exactly the sequential DFS order, so the merged graph is
//     deterministic regardless of expansion timing.
//
// Every frame pushed on the coordinator's stack is dispatched to the
// expander immediately; the coordinator consumes results in LIFO stack
// order. All speculative work is useful work — each stacked frame is
// consumed exactly once — so on success the total click count matches the
// sequential rip. On the node-limit abort path, expansions already in
// flight run to completion and their clicks are still counted: error-path
// Stats report the work actually performed, which can exceed a sequential
// abort's.
//
// The probe instance serves the coordinator alone: application metadata and
// the per-context initial-screen captures. The expander never touches it.
// RipDispatched always closes the expander before returning.
func RipDispatched(probe *appkit.App, cfg Config, ex Expander) (*Graph, Stats, error) {
	cfg.fill()
	g := NewGraph(probe.Name)
	var st Stats
	start := probe.Desk.Clock().Now()

	fold := func() {
		es := ex.Close()
		st.Clicks += es.Clicks
		st.Snapshots += es.Snapshots
		st.Workers = es.Workers
		longest := probe.Desk.Clock().Now() - start
		if es.Longest > longest {
			longest = es.Longest
		}
		st.SimulatedTime = longest
		st.Nodes = g.NodeCount()
		st.Edges = g.EdgeCount()
	}

	// pending mirrors the sequential DFS stack. Clickable frames carry the
	// expander's result channel; the rest resolve on the coordinator.
	type pending struct {
		f   Frame
		res <-chan ExpandResult
	}

	queued := make(map[string]bool)
	var stack []pending
	ctx := ""

	push := func(id string, path []string) {
		if queued[id] {
			return
		}
		queued[id] = true
		p := pending{f: Frame{ID: id, Path: path}}
		// Non-clickable frames need no instance work; dispatching them
		// would only burn expander capacity on a guaranteed skip.
		if n := g.Nodes[id]; n != nil && clickable(n.Type) {
			p.res = ex.Expand(ctx, p.f)
		}
		stack = append(stack, p)
	}

	contexts := ripContexts(probe)
	st.Contexts = len(contexts)

	for _, c := range contexts {
		ctx = c
		seedContext(g, probe, ctx, &st, push)

		for len(stack) > 0 {
			if g.NodeCount() > cfg.MaxNodes {
				fold()
				return g, st, fmt.Errorf("ung: node limit %d exceeded", cfg.MaxNodes)
			}
			p := stack[len(stack)-1]
			stack = stack[:len(stack)-1]

			node := g.Nodes[p.f.ID]
			if node == nil {
				continue
			}
			if !clickable(node.Type) {
				st.Skipped++
				continue
			}
			r := <-p.res
			if r.Err != nil {
				fold()
				return g, st, fmt.Errorf("ung: expand %q: %w", p.f.ID, r.Err)
			}
			applyExpansion(g, cfg, ctx, p.f, r.Expansion, &st, push)
		}
	}

	restore(probe, "")
	fold()
	return g, st, nil
}

// RipParallel builds the UNG with a pool of worker goroutines, each driving
// its own throwaway application instance built by factory. It produces a
// graph byte-identical to Rip(factory(), cfg) at a fraction of the
// wall-clock cost; see RipDispatched for the coordinator/worker contract.
//
// workers <= 1 degrades to the sequential Rip on a single fresh instance.
func RipParallel(factory func() *appkit.App, cfg Config, workers int) (*Graph, Stats, error) {
	if workers <= 1 {
		return Rip(factory(), cfg)
	}
	return RipDispatched(factory(), cfg, NewLocalExpander(factory, workers))
}
