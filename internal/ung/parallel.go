package ung

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/appkit"
)

// RipParallel builds the UNG with a pool of worker goroutines, each driving
// its own throwaway application instance built by factory. It produces a
// graph byte-identical to Rip(factory(), cfg) — same nodes, same discovery
// order, same edge insertion order — at a fraction of the wall-clock cost.
//
// The design separates the two halves of the sequential algorithm:
//
//   - Expansion (restore, replay the click path, click, differential
//     capture) touches only an application instance. It is a deterministic
//     function of (context, path, control), so any worker instance yields
//     the same result as the coordinator would.
//   - Application (ensure nodes, add edges, push newly discovered frames)
//     touches the shared graph. The coordinator performs it alone, popping
//     frames in exactly the sequential DFS order, so the merged graph is
//     deterministic regardless of worker timing.
//
// Every frame pushed on the coordinator's stack is dispatched to the pool
// immediately; the coordinator consumes results in LIFO stack order. All
// speculative work is useful work — each stacked frame is consumed exactly
// once — so on success the total click count matches the sequential rip.
// On the node-limit abort path, expansions already in flight on workers run
// to completion and their clicks are still counted: error-path Stats report
// the work actually performed, which can exceed a sequential abort's.
//
// workers <= 1 degrades to the sequential Rip on a single fresh instance.
func RipParallel(factory func() *appkit.App, cfg Config, workers int) (*Graph, Stats, error) {
	if workers <= 1 {
		return Rip(factory(), cfg)
	}
	cfg.fill()

	// The probe instance serves the coordinator: application metadata and
	// the per-context initial-screen captures. Workers never touch it.
	probe := factory()
	g := NewGraph(probe.Name)
	var st Stats
	st.Workers = workers
	start := probe.Desk.Clock().Now()

	q := newJobQueue()
	wstats := make([]Stats, workers)
	welapsed := make([]time.Duration, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			app := factory()
			t0 := app.Desk.Clock().Now()
			for {
				j, ok := q.pop()
				if !ok {
					break
				}
				j.done <- expand(app, j.ctx, j.f, &wstats[i])
			}
			welapsed[i] = app.Desk.Clock().Now() - t0
		}(i)
	}
	fold := func() {
		q.close()
		wg.Wait()
		longest := probe.Desk.Clock().Now() - start
		for i := range wstats {
			st.Clicks += wstats[i].Clicks
			st.Snapshots += wstats[i].Snapshots
			if welapsed[i] > longest {
				longest = welapsed[i]
			}
		}
		st.SimulatedTime = longest
		st.Nodes = g.NodeCount()
		st.Edges = g.EdgeCount()
	}

	queued := make(map[string]bool)
	var stack []*ripJob
	ctx := ""

	push := func(id string, path []string) {
		if queued[id] {
			return
		}
		queued[id] = true
		j := &ripJob{ctx: ctx, f: frame{id: id, path: path}, done: make(chan expansion, 1)}
		stack = append(stack, j)
		// Non-clickable frames need no instance work; dispatching them
		// would only burn a worker on a guaranteed skip.
		if n := g.Nodes[id]; n != nil && clickable(n.Type) {
			q.push(j)
		}
	}

	contexts := ripContexts(probe)
	st.Contexts = len(contexts)

	for _, c := range contexts {
		ctx = c
		seedContext(g, probe, ctx, &st, push)

		for len(stack) > 0 {
			if g.NodeCount() > cfg.MaxNodes {
				fold()
				return g, st, fmt.Errorf("ung: node limit %d exceeded", cfg.MaxNodes)
			}
			j := stack[len(stack)-1]
			stack = stack[:len(stack)-1]

			node := g.Nodes[j.f.id]
			if node == nil {
				continue
			}
			if !clickable(node.Type) {
				st.Skipped++
				continue
			}
			exp := <-j.done
			applyExpansion(g, cfg, ctx, j.f, exp, &st, push)
		}
	}

	restore(probe, "")
	fold()
	return g, st, nil
}

// ripJob is one frame expansion dispatched to the worker pool.
type ripJob struct {
	ctx  string
	f    frame
	done chan expansion // buffered: workers never block on the coordinator
}

// jobQueue is a LIFO work queue. LIFO matters: the coordinator consumes
// results in stack order, so the most recently pushed job is the one it will
// wait on soonest.
type jobQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	jobs   []*ripJob
	closed bool
}

func newJobQueue() *jobQueue {
	q := &jobQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *jobQueue) push(j *ripJob) {
	q.mu.Lock()
	q.jobs = append(q.jobs, j)
	q.mu.Unlock()
	q.cond.Signal()
}

// pop blocks until a job is available or the queue is closed.
func (q *jobQueue) pop() (*ripJob, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.jobs) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.jobs) == 0 {
		return nil, false
	}
	j := q.jobs[len(q.jobs)-1]
	q.jobs = q.jobs[:len(q.jobs)-1]
	return j, true
}

// close wakes every worker and drops undispatched jobs (relevant only when
// the coordinator aborts on the node limit).
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.jobs = nil
	q.mu.Unlock()
	q.cond.Broadcast()
}
