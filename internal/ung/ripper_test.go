package ung

import (
	"strings"
	"testing"

	"repro/internal/appkit"
	"repro/internal/office/excel"
	"repro/internal/office/slides"
	"repro/internal/office/word"
)

// demoApp builds a small application with every structural feature the
// ripper must handle: tabs, nested menus, a shared popup (merge nodes), a
// dialog, a ribbon-collapse cycle, a blocklisted control, and a context tab.
func demoApp() *appkit.App {
	a := appkit.New("Demo")
	picker := a.ColorPicker("clr", "Colors", func(*appkit.App, string) {})

	home := a.Tab("tabHome", "Home")
	font := home.Group("grpFont", "Font")
	font.ToggleButton("btnBold", "Bold", func(*appkit.App) bool { return false }, func(*appkit.App, bool) {})
	font.MenuButton("btnFontColor", "Font Color", picker, func(*appkit.App) any { return "font" })
	font.MenuButton("btnHighlight", "Highlight", picker, func(*appkit.App) any { return "hl" })

	ins := a.Tab("tabInsert", "Insert")
	dlg := a.NewDialog("dlgTable", "Insert Table")
	dlg.Panel().Spinner("spnRows", "Rows", 1, 10, 2, nil)
	dlg.AddOKCancel(nil)
	ins.Group("grpTables", "Tables").DialogButton("btnTable", "Table", dlg, nil)

	ext := ins.Group("grpExt", "External").Button("btnAccount", "Account", nil)
	a.Block(ext.ControlID())

	a.RegisterContext(appkit.Context{Name: "thing-selected"})
	ct := a.ContextTab("tabThing", "Thing Format", "thing-selected")
	ct.Group("grpThing", "Thing").Button("btnThingBorder", "Thing Border", nil)

	a.AddRibbonCollapse()
	a.Layout()
	return a
}

func ripDemo(t *testing.T) (*Graph, Stats) {
	t.Helper()
	g, st, err := Rip(demoApp(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	return g, st
}

func TestRipDiscoversTabContent(t *testing.T) {
	g, _ := ripDemo(t)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Home content hangs beneath the active tab item (root init rule),
	// through its UI containers: tabHome → panel → group → Bold.
	var bold *Node
	for _, n := range g.Nodes {
		if strings.HasPrefix(n.ID, "btnBold|") {
			bold = n
		}
	}
	if bold == nil {
		t.Fatal("Bold not discovered")
	}
	cur := bold
	foundTab := false
	for i := 0; i < 10 && cur != nil && len(cur.In) > 0; i++ {
		cur = g.Nodes[cur.In[0]]
		if cur != nil && strings.HasPrefix(cur.ID, "tabHome|") {
			foundTab = true
			break
		}
	}
	if !foundTab {
		t.Errorf("Bold does not hang beneath the Home tab item")
	}
	// Insert content is revealed by clicking the Insert tab.
	var spn *Node
	for _, n := range g.Nodes {
		if strings.HasPrefix(n.ID, "spnRows|") {
			spn = n
		}
	}
	if spn == nil {
		t.Fatal("dialog content not discovered (nested reveal)")
	}
}

func TestRipMergeNodes(t *testing.T) {
	g, _ := ripDemo(t)
	// The shared picker's body is revealed by both openers: it is the
	// merge node, and its internal hierarchy (panes → cells) is preserved
	// beneath it rather than flattened under each opener.
	var body, blue *Node
	for _, n := range g.Nodes {
		if strings.HasPrefix(n.ID, "clrBody|") {
			body = n
		}
		if n.Name == "Blue" && strings.Contains(n.ID, "clrStd") {
			blue = n
		}
	}
	if body == nil || blue == nil {
		t.Fatal("picker body or Blue cell not discovered")
	}
	if len(body.In) < 2 {
		t.Fatalf("picker body in-degree = %d, want ≥ 2 (merge node)", len(body.In))
	}
	if len(blue.In) != 1 || !strings.Contains(blue.In[0], "clrStd") {
		t.Fatalf("Blue should hang beneath the Standard Colors pane, in = %v", blue.In)
	}
	if len(g.MergeNodes()) == 0 {
		t.Fatal("no merge nodes found")
	}
}

func TestRipCycle(t *testing.T) {
	g, _ := ripDemo(t)
	// Collapse → Pin → Collapse is a 2-cycle.
	var collapse, pin *Node
	for _, n := range g.Nodes {
		if strings.HasPrefix(n.ID, "ribbonCollapse|") {
			collapse = n
		}
		if strings.HasPrefix(n.ID, "ribbonPin|") {
			pin = n
		}
	}
	if collapse == nil || pin == nil {
		t.Fatal("ribbon collapse pair not discovered")
	}
	if !hasEdge(collapse, pin.ID) || !hasEdge(pin, collapse.ID) {
		t.Fatal("collapse/pin cycle not captured")
	}
}

func TestRipBlocklist(t *testing.T) {
	g, st := ripDemo(t)
	if st.Blocked == 0 {
		t.Error("blocklisted control was not skipped")
	}
	for _, n := range g.Nodes {
		if strings.HasPrefix(n.ID, "btnAccount|") && len(n.Out) > 0 {
			t.Error("blocklisted control has out-edges (it was clicked)")
		}
	}
}

func TestRipContexts(t *testing.T) {
	g, st := ripDemo(t)
	if st.Contexts != 2 {
		t.Fatalf("contexts = %d, want 2", st.Contexts)
	}
	var thing *Node
	for _, n := range g.Nodes {
		if strings.HasPrefix(n.ID, "btnThingBorder|") {
			thing = n
		}
	}
	if thing == nil {
		t.Fatal("context-tab content not discovered")
	}
	if thing.Context != "thing-selected" {
		t.Errorf("context = %q", thing.Context)
	}
}

func TestRipLeavesAndNavigation(t *testing.T) {
	g, _ := ripDemo(t)
	leaves := map[string]bool{}
	for _, l := range g.Leaves() {
		leaves[l] = true
	}
	for _, n := range g.Nodes {
		if strings.HasPrefix(n.ID, "btnBold|") && !leaves[n.ID] {
			t.Error("Bold (functional) should be a leaf")
		}
		if strings.HasPrefix(n.ID, "btnFontColor|") && leaves[n.ID] {
			t.Error("Font Color (navigation) should not be a leaf")
		}
	}
}

func TestRipDeterministic(t *testing.T) {
	g1, _ := ripDemo(t)
	g2, _ := ripDemo(t)
	if g1.NodeCount() != g2.NodeCount() || g1.EdgeCount() != g2.EdgeCount() {
		t.Fatalf("rip not deterministic: %d/%d vs %d/%d nodes/edges",
			g1.NodeCount(), g1.EdgeCount(), g2.NodeCount(), g2.EdgeCount())
	}
	for i, id := range g1.Order {
		if g2.Order[i] != id {
			t.Fatalf("discovery order diverges at %d: %q vs %q", i, id, g2.Order[i])
		}
	}
}

func TestRipNodeLimit(t *testing.T) {
	_, _, err := Rip(demoApp(), Config{MaxNodes: 10})
	if err == nil {
		t.Fatal("node limit not enforced")
	}
}

// Office-scale integration rips; skipped in -short mode.

func TestRipWord(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale rip")
	}
	g, st, err := Rip(word.New().App, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() < 3000 {
		t.Errorf("word UNG has %d nodes, want > 3000", g.NodeCount())
	}
	if len(g.MergeNodes()) < 2 {
		t.Errorf("word UNG has %d merge nodes, want ≥ 2 (shared picker + font dialog)", len(g.MergeNodes()))
	}
	if d := g.MaxDepth(); d < 8 {
		t.Errorf("word UNG depth = %d, want ≥ 8 (paper: >10)", d)
	}
	t.Logf("word UNG: %d nodes, %d edges, depth %d, %d merge nodes, %d leaves, simulated %s",
		g.NodeCount(), g.EdgeCount(), g.MaxDepth(), len(g.MergeNodes()),
		len(g.Leaves()), st.SimulatedTime)
}

func TestRipExcel(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale rip")
	}
	g, st, err := Rip(excel.New().App, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() < 3000 {
		t.Errorf("excel UNG has %d nodes, want > 3000", g.NodeCount())
	}
	t.Logf("excel UNG: %d nodes, %d edges, depth %d, %d merge nodes, simulated %s",
		g.NodeCount(), g.EdgeCount(), g.MaxDepth(), len(g.MergeNodes()), st.SimulatedTime)
}

func TestRipSlides(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale rip")
	}
	g, st, err := Rip(slides.New(12).App, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.NodeCount() < 2800 {
		t.Errorf("slides UNG has %d nodes, want > 2800", g.NodeCount())
	}
	t.Logf("slides UNG: %d nodes, %d edges, depth %d, %d merge nodes, simulated %s",
		g.NodeCount(), g.EdgeCount(), g.MaxDepth(), len(g.MergeNodes()), st.SimulatedTime)
}

func hasEdge(n *Node, to string) bool {
	for _, o := range n.Out {
		if o == to {
			return true
		}
	}
	return false
}
