package ung

import "testing"

func TestSnapshotRoundTrip(t *testing.T) {
	g, _ := ripDemo(t)
	data, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, g, back)
}

func TestSnapshotDecodeRejectsGarbage(t *testing.T) {
	if _, err := Decode([]byte("not json")); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := Decode([]byte(`{"app":"x","nodes":[]}`)); err == nil {
		t.Error("rootless snapshot accepted")
	}
	if _, err := Decode([]byte(`{"app":"x","nodes":[{"id":"[ROOT]","type":32},{"id":"a","type":0,"out":["missing"]}]}`)); err == nil {
		t.Error("dangling edge accepted")
	}
}
