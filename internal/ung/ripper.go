package ung

import (
	"fmt"
	"time"

	"repro/internal/appkit"
	"repro/internal/uia"
)

// Config controls GUI ripping.
type Config struct {
	// MaxDepth caps the click-path length explored (default 10).
	MaxDepth int
	// MaxNodes aborts exploration when the graph grows beyond this size
	// (default 100000), a safety valve against modeling runaways.
	MaxNodes int
}

func (c *Config) fill() {
	if c.MaxDepth == 0 {
		c.MaxDepth = 10
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 100000
	}
}

// Normalized returns the config with the defaults filled in — the exact
// values a rip would use. Cache fingerprints build on it so a zero config
// and an explicit default share one slot.
func (c Config) Normalized() Config {
	c.fill()
	return c
}

// Stats reports the cost of the offline modeling phase (paper §5.2).
type Stats struct {
	Nodes     int
	Edges     int
	Explored  int // nodes actually clicked
	Skipped   int // nodes skipped (non-interactive, disabled, or missing on replay)
	Blocked   int // nodes on the access blocklist
	Clicks    int
	Snapshots int
	Contexts  int
	// Workers is the size of the worker pool (1 for the sequential ripper).
	Workers int
	// SimulatedTime is the wall-clock cost on the simulated desktop; the
	// paper reports < 3 hours of automated modeling per application. For a
	// parallel rip this is the longest single worker's clock — the
	// wall-clock analog when each worker drives its own machine.
	SimulatedTime time.Duration
}

// frame is one pending exploration: activate the control after replaying the
// click path that made it visible.
type frame struct {
	id   string
	path []string
}

// expandOutcome classifies one frame activation.
type expandOutcome int

const (
	expandOK expandOutcome = iota
	expandSkipped
	expandBlocked
)

// reveal is one control newly revealed by an activation together with the id
// of the node it attaches beneath (its nearest newly-revealed UI ancestor,
// or the clicked control for top-level reveals).
type reveal struct {
	el     *uia.Element
	parent string
}

// expansion is the result of activating one frame's control on an
// application instance: the newly revealed controls in snapshot order.
type expansion struct {
	outcome expandOutcome
	reveals []reveal
}

// expand re-establishes the frame's discovery state on the given application
// instance (soft reset + click-path replay), activates the control, and
// differences the before/after snapshots. It touches only the instance and
// the local stats, never the shared graph, so it is safe to run on a pool of
// throwaway instances concurrently.
func expand(app *appkit.App, ctx string, f frame, st *Stats) expansion {
	restore(app, ctx)
	if !replay(app, f.path, st) {
		return expansion{outcome: expandSkipped}
	}
	before := capture(app, st)
	el := before.byID[f.id]
	if el == nil || !el.OnScreen() || !el.Enabled() {
		return expansion{outcome: expandSkipped}
	}
	if app.Blocked(el) {
		return expansion{outcome: expandBlocked}
	}
	if err := app.Desk.Click(el); err != nil {
		return expansion{outcome: expandSkipped}
	}
	st.Clicks++
	after := capture(app, st)

	// Newly revealed controls attach beneath their nearest newly-revealed
	// UI ancestor; top-level reveals attach to the clicked control. This
	// preserves structure inside popups (a shared flyout stays one subtree)
	// while edges still denote click-induced reachability.
	fresh := make(map[*uia.Element]bool)
	for _, e := range after.order {
		id := e.ControlID()
		if id == f.id {
			continue
		}
		if _, present := before.byID[id]; present {
			continue
		}
		fresh[e] = true
	}
	var reveals []reveal
	for _, e := range after.order {
		if !fresh[e] {
			continue
		}
		parent := f.id
		if anc := nearestIn(e, fresh); anc != nil {
			parent = anc.ControlID()
		}
		reveals = append(reveals, reveal{el: e, parent: parent})
	}
	return expansion{outcome: expandOK, reveals: reveals}
}

// applyExpansion folds one expansion into the shared graph, pushing frames
// for controls seen for the first time. Both the sequential and the parallel
// ripper apply expansions in exactly the same order, which is what keeps the
// two byte-identical.
func applyExpansion(g *Graph, cfg Config, ctx string, f frame, exp expansion, st *Stats, push func(id string, path []string)) {
	switch exp.outcome {
	case expandSkipped:
		st.Skipped++
		return
	case expandBlocked:
		st.Blocked++
		return
	}
	st.Explored++
	for _, r := range exp.reveals {
		id := r.el.ControlID()
		_, existed := g.Nodes[id]
		g.Ensure(id, r.el, ctx)
		g.AddEdge(r.parent, id)
		if !existed && len(f.path)+1 < cfg.MaxDepth {
			next := make([]string, len(f.path)+1)
			copy(next, f.path)
			next[len(f.path)] = f.id
			push(id, next)
		}
	}
}

// seedContext performs root-node initialization for one application context
// (paper §4.1): initial-screen controls attach beneath their visible UI
// ancestors, anchored at the virtual root; the active tab's content panel is
// re-anchored under the active TabItem so otherwise unscoped controls are
// indexable beneath it.
func seedContext(g *Graph, app *appkit.App, ctx string, st *Stats, push func(id string, path []string)) {
	restore(app, ctx)
	snap := capture(app, st)
	tabItem, tabPanel := app.ActiveTabInfo()
	inSnap := make(map[*uia.Element]bool, len(snap.order))
	for _, e := range snap.order {
		inSnap[e] = true
	}
	for _, e := range snap.order {
		id := e.ControlID()
		_, existed := g.Nodes[id]
		g.Ensure(id, e, ctx)
		parent := RootID
		if e == tabPanel && tabItem != nil {
			parent = tabItem.ControlID()
		} else if anc := nearestIn(e, inSnap); anc != nil {
			parent = anc.ControlID()
		}
		g.AddEdge(parent, id)
		if !existed {
			push(id, nil)
		}
	}
}

// ripContexts returns the exploration order: the base context first, then
// every registered context.
func ripContexts(app *appkit.App) []string {
	contexts := []string{""}
	for _, c := range app.Contexts() {
		contexts = append(contexts, c.Name)
	}
	return contexts
}

// Rip builds the UNG of an application by DFS differential capture (paper
// §4.1): capture the accessibility tree, activate a candidate control,
// capture again; newly revealed controls define navigation edges. New
// windows are detected by desktop window listeners, the access blocklist is
// honored, and every registered application context is explored and merged
// into one topology.
//
// Rip is single-threaded on one instance; RipParallel distributes the same
// exploration over a pool of worker instances and produces a byte-identical
// graph.
func Rip(app *appkit.App, cfg Config) (*Graph, Stats, error) {
	cfg.fill()
	g := NewGraph(app.Name)
	var st Stats
	st.Workers = 1
	start := app.Desk.Clock().Now()

	queued := make(map[string]bool)
	var stack []frame

	push := func(id string, path []string) {
		if queued[id] {
			return
		}
		queued[id] = true
		stack = append(stack, frame{id: id, path: path})
	}

	contexts := ripContexts(app)
	st.Contexts = len(contexts)

	for _, ctx := range contexts {
		seedContext(g, app, ctx, &st, push)

		for len(stack) > 0 {
			if g.NodeCount() > cfg.MaxNodes {
				return g, st, fmt.Errorf("ung: node limit %d exceeded", cfg.MaxNodes)
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]

			node := g.Nodes[f.id]
			if node == nil {
				continue
			}
			if !clickable(node.Type) {
				st.Skipped++
				continue
			}
			exp := expand(app, ctx, f, &st)
			applyExpansion(g, cfg, ctx, f, exp, &st, push)
		}
	}

	restore(app, "")
	st.Nodes = g.NodeCount()
	st.Edges = g.EdgeCount()
	st.SimulatedTime = app.Desk.Clock().Now() - start
	return g, st, nil
}

// nearestIn walks up e's UI ancestors and returns the first one present in
// the set (window roots excluded), or nil.
func nearestIn(e *uia.Element, set map[*uia.Element]bool) *uia.Element {
	for cur := e.Parent(); cur != nil; cur = cur.Parent() {
		if cur.Parent() == nil {
			return nil // window root: not a modeled control
		}
		if set[cur] {
			return cur
		}
	}
	return nil
}

// snapshotIndex is one differential-capture frame.
type snapshotIndex struct {
	order []*uia.Element
	byID  map[string]*uia.Element
}

func capture(app *appkit.App, st *Stats) snapshotIndex {
	st.Snapshots++
	els := app.Desk.Snapshot()
	idx := snapshotIndex{byID: make(map[string]*uia.Element, len(els))}
	for _, e := range els {
		// The desktop's window roots are containers, not controls to model.
		if e.Parent() == nil {
			continue
		}
		id := e.ControlID()
		if _, dup := idx.byID[id]; dup {
			continue // duplicate synthesized ID: first occurrence wins
		}
		idx.byID[id] = e
		idx.order = append(idx.order, e)
	}
	return idx
}

func restore(app *appkit.App, ctx string) {
	app.SoftReset()
	if ctx != "" {
		_ = app.EnterContext(ctx)
	}
}

// replay re-executes the click path; it reports false if any step's control
// cannot be resolved in the current state.
func replay(app *appkit.App, path []string, st *Stats) bool {
	for _, id := range path {
		snap := capture(app, st)
		el := snap.byID[id]
		if el == nil || !el.OnScreen() || !el.Enabled() {
			return false
		}
		if err := app.Desk.Click(el); err != nil {
			return false
		}
		st.Clicks++
	}
	return true
}

// clickable reports whether the ripper should attempt to activate controls
// of this type. Containers and purely informational controls are modeled as
// nodes but never clicked; scroll machinery is excluded because dragging is
// not a click edge (paper §3.2 models click-induced reachability only).
func clickable(t uia.ControlType) bool {
	if !t.IsInteractive() {
		return false
	}
	switch t {
	case uia.WindowControl, uia.PaneControl, uia.GroupControl,
		uia.ListControl, uia.MenuControl, uia.MenuBarControl,
		uia.ToolBarControl, uia.TreeControl, uia.TabControl,
		uia.DataGridControl, uia.TableControl, uia.HeaderItemControl,
		uia.ScrollBarControl, uia.ThumbControl, uia.SliderControl,
		uia.SpinnerControl, uia.DocumentControl, uia.CalendarControl,
		uia.SemanticZoomControl, uia.AppBarControl:
		return false
	}
	return true
}
