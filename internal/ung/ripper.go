package ung

import (
	"fmt"
	"time"

	"repro/internal/appkit"
	"repro/internal/uia"
)

// Config controls GUI ripping.
type Config struct {
	// MaxDepth caps the click-path length explored (default 10).
	MaxDepth int
	// MaxNodes aborts exploration when the graph grows beyond this size
	// (default 100000), a safety valve against modeling runaways.
	MaxNodes int
}

func (c *Config) fill() {
	if c.MaxDepth == 0 {
		c.MaxDepth = 10
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 100000
	}
}

// Normalized returns the config with the defaults filled in — the exact
// values a rip would use. Cache fingerprints build on it so a zero config
// and an explicit default share one slot.
func (c Config) Normalized() Config {
	c.fill()
	return c
}

// Stats reports the cost of the offline modeling phase (paper §5.2).
type Stats struct {
	Nodes     int
	Edges     int
	Explored  int // nodes actually clicked
	Skipped   int // nodes skipped (non-interactive, disabled, or missing on replay)
	Blocked   int // nodes on the access blocklist
	Clicks    int
	Snapshots int
	Contexts  int
	// Workers is the size of the worker pool (1 for the sequential ripper).
	Workers int
	// SimulatedTime is the wall-clock cost on the simulated desktop; the
	// paper reports < 3 hours of automated modeling per application. For a
	// parallel rip this is the longest single worker's clock — the
	// wall-clock analog when each worker drives its own machine.
	SimulatedTime time.Duration
}

// Frame is one pending exploration: activate the control after replaying the
// click path that made it visible. Everything in it is a string, so a frame
// crosses process boundaries as-is — it is the job unit the Expander seam
// dispatches, and the body of the serving daemon's POST /v1/rip.
type Frame struct {
	ID   string
	Path []string
}

// ExpandOutcome classifies one frame activation.
type ExpandOutcome int

const (
	ExpandOK ExpandOutcome = iota
	ExpandSkipped
	ExpandBlocked
)

// Reveal is one control newly revealed by an activation, captured in full:
// the node metadata the graph needs plus the id of the node it attaches
// beneath (its nearest newly-revealed UI ancestor, or the clicked control
// for top-level reveals). A reveal carries no element pointer, so an
// expansion computed on another instance — or another machine — folds into
// the coordinator's graph exactly as a local one would.
type Reveal struct {
	ID        string
	Name      string
	Type      uia.ControlType
	Desc      string
	LargeEnum bool
	Parent    string
}

// Expansion is the result of activating one frame's control on an
// application instance: the newly revealed controls in snapshot order, plus
// the instance work the activation cost (for Stats accounting — the clicks
// and snapshots spent restoring, replaying, and differencing). Elapsed is
// the instance's simulated-clock cost, the per-machine wall-clock analog.
type Expansion struct {
	Outcome   ExpandOutcome
	Reveals   []Reveal
	Clicks    int
	Snapshots int
	Elapsed   time.Duration
}

// ExpandFrame re-establishes the frame's discovery state on the given
// application instance (soft reset + click-path replay), activates the
// control, and differences the before/after snapshots. It touches only the
// instance, never a shared graph, and its result is a pure function of
// (application, context, frame) — the property that makes expansions safe to
// run on a pool of throwaway instances, ship to a serving replica, or
// re-dispatch after a replica dies mid-rip. Exported for the dmi-serve
// daemon's POST /v1/rip executor.
func ExpandFrame(app *appkit.App, ctx string, f Frame) Expansion {
	var st Stats
	t0 := app.Desk.Clock().Now()
	exp := expand(app, ctx, f, &st)
	exp.Clicks = st.Clicks
	exp.Snapshots = st.Snapshots
	exp.Elapsed = app.Desk.Clock().Now() - t0
	return exp
}

// expand is ExpandFrame's body, counting instance work into st.
func expand(app *appkit.App, ctx string, f Frame, st *Stats) Expansion {
	restore(app, ctx)
	if !replay(app, f.Path, st) {
		return Expansion{Outcome: ExpandSkipped}
	}
	before := capture(app, st)
	el := before.byID[f.ID]
	if el == nil || !el.OnScreen() || !el.Enabled() {
		return Expansion{Outcome: ExpandSkipped}
	}
	if app.Blocked(el) {
		return Expansion{Outcome: ExpandBlocked}
	}
	if err := app.Desk.Click(el); err != nil {
		return Expansion{Outcome: ExpandSkipped}
	}
	st.Clicks++
	after := capture(app, st)

	// Newly revealed controls attach beneath their nearest newly-revealed
	// UI ancestor; top-level reveals attach to the clicked control. This
	// preserves structure inside popups (a shared flyout stays one subtree)
	// while edges still denote click-induced reachability.
	fresh := make(map[*uia.Element]bool)
	for _, e := range after.order {
		id := e.ControlID()
		if id == f.ID {
			continue
		}
		if _, present := before.byID[id]; present {
			continue
		}
		fresh[e] = true
	}
	var reveals []Reveal
	for _, e := range after.order {
		if !fresh[e] {
			continue
		}
		parent := f.ID
		if anc := nearestIn(e, fresh); anc != nil {
			parent = anc.ControlID()
		}
		reveals = append(reveals, captureReveal(e, parent))
	}
	return Expansion{Outcome: ExpandOK, Reveals: reveals}
}

// captureReveal snapshots the element fields a graph node is built from —
// the same fields Graph.Ensure reads off a live element, including the
// ancestor walk behind LargeEnum, so a node created from a reveal is
// byte-identical to one created from the element itself.
func captureReveal(e *uia.Element, parent string) Reveal {
	r := Reveal{
		ID:     e.ControlID(),
		Name:   e.Name(),
		Type:   e.Type(),
		Desc:   e.Description(),
		Parent: parent,
	}
	for cur := e; cur != nil; cur = cur.Parent() {
		if cur.LargeEnum() {
			r.LargeEnum = true
			break
		}
	}
	return r
}

// applyExpansion folds one expansion into the shared graph, pushing frames
// for controls seen for the first time. Every ripper — sequential, pooled,
// distributed — applies expansions in exactly the same order, which is what
// keeps all of them byte-identical.
func applyExpansion(g *Graph, cfg Config, ctx string, f Frame, exp Expansion, st *Stats, push func(id string, path []string)) {
	switch exp.Outcome {
	case ExpandSkipped:
		st.Skipped++
		return
	case ExpandBlocked:
		st.Blocked++
		return
	}
	st.Explored++
	for _, r := range exp.Reveals {
		_, existed := g.Nodes[r.ID]
		g.ensureReveal(r, ctx)
		g.AddEdge(r.Parent, r.ID)
		if !existed && len(f.Path)+1 < cfg.MaxDepth {
			next := make([]string, len(f.Path)+1)
			copy(next, f.Path)
			next[len(f.Path)] = f.ID
			push(r.ID, next)
		}
	}
}

// seedContext performs root-node initialization for one application context
// (paper §4.1): initial-screen controls attach beneath their visible UI
// ancestors, anchored at the virtual root; the active tab's content panel is
// re-anchored under the active TabItem so otherwise unscoped controls are
// indexable beneath it.
func seedContext(g *Graph, app *appkit.App, ctx string, st *Stats, push func(id string, path []string)) {
	restore(app, ctx)
	snap := capture(app, st)
	tabItem, tabPanel := app.ActiveTabInfo()
	inSnap := make(map[*uia.Element]bool, len(snap.order))
	for _, e := range snap.order {
		inSnap[e] = true
	}
	for _, e := range snap.order {
		id := e.ControlID()
		_, existed := g.Nodes[id]
		g.Ensure(id, e, ctx)
		parent := RootID
		if e == tabPanel && tabItem != nil {
			parent = tabItem.ControlID()
		} else if anc := nearestIn(e, inSnap); anc != nil {
			parent = anc.ControlID()
		}
		g.AddEdge(parent, id)
		if !existed {
			push(id, nil)
		}
	}
}

// ripContexts returns the exploration order: the base context first, then
// every registered context.
func ripContexts(app *appkit.App) []string {
	contexts := []string{""}
	for _, c := range app.Contexts() {
		contexts = append(contexts, c.Name)
	}
	return contexts
}

// Rip builds the UNG of an application by DFS differential capture (paper
// §4.1): capture the accessibility tree, activate a candidate control,
// capture again; newly revealed controls define navigation edges. New
// windows are detected by desktop window listeners, the access blocklist is
// honored, and every registered application context is explored and merged
// into one topology.
//
// Rip is single-threaded on one instance; RipParallel distributes the same
// exploration over a pool of worker instances and produces a byte-identical
// graph.
func Rip(app *appkit.App, cfg Config) (*Graph, Stats, error) {
	cfg.fill()
	g := NewGraph(app.Name)
	var st Stats
	st.Workers = 1
	start := app.Desk.Clock().Now()

	queued := make(map[string]bool)
	var stack []Frame

	push := func(id string, path []string) {
		if queued[id] {
			return
		}
		queued[id] = true
		stack = append(stack, Frame{ID: id, Path: path})
	}

	contexts := ripContexts(app)
	st.Contexts = len(contexts)

	for _, ctx := range contexts {
		seedContext(g, app, ctx, &st, push)

		for len(stack) > 0 {
			if g.NodeCount() > cfg.MaxNodes {
				return g, st, fmt.Errorf("ung: node limit %d exceeded", cfg.MaxNodes)
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]

			node := g.Nodes[f.ID]
			if node == nil {
				continue
			}
			if !clickable(node.Type) {
				st.Skipped++
				continue
			}
			exp := expand(app, ctx, f, &st)
			applyExpansion(g, cfg, ctx, f, exp, &st, push)
		}
	}

	restore(app, "")
	st.Nodes = g.NodeCount()
	st.Edges = g.EdgeCount()
	st.SimulatedTime = app.Desk.Clock().Now() - start
	return g, st, nil
}

// nearestIn walks up e's UI ancestors and returns the first one present in
// the set (window roots excluded), or nil.
func nearestIn(e *uia.Element, set map[*uia.Element]bool) *uia.Element {
	for cur := e.Parent(); cur != nil; cur = cur.Parent() {
		if cur.Parent() == nil {
			return nil // window root: not a modeled control
		}
		if set[cur] {
			return cur
		}
	}
	return nil
}

// snapshotIndex is one differential-capture frame.
type snapshotIndex struct {
	order []*uia.Element
	byID  map[string]*uia.Element
}

func capture(app *appkit.App, st *Stats) snapshotIndex {
	st.Snapshots++
	els := app.Desk.Snapshot()
	idx := snapshotIndex{byID: make(map[string]*uia.Element, len(els))}
	for _, e := range els {
		// The desktop's window roots are containers, not controls to model.
		if e.Parent() == nil {
			continue
		}
		id := e.ControlID()
		if _, dup := idx.byID[id]; dup {
			continue // duplicate synthesized ID: first occurrence wins
		}
		idx.byID[id] = e
		idx.order = append(idx.order, e)
	}
	return idx
}

func restore(app *appkit.App, ctx string) {
	app.SoftReset()
	if ctx != "" {
		_ = app.EnterContext(ctx)
	}
}

// replay re-executes the click path; it reports false if any step's control
// cannot be resolved in the current state.
func replay(app *appkit.App, path []string, st *Stats) bool {
	for _, id := range path {
		snap := capture(app, st)
		el := snap.byID[id]
		if el == nil || !el.OnScreen() || !el.Enabled() {
			return false
		}
		if err := app.Desk.Click(el); err != nil {
			return false
		}
		st.Clicks++
	}
	return true
}

// clickable reports whether the ripper should attempt to activate controls
// of this type. Containers and purely informational controls are modeled as
// nodes but never clicked; scroll machinery is excluded because dragging is
// not a click edge (paper §3.2 models click-induced reachability only).
func clickable(t uia.ControlType) bool {
	if !t.IsInteractive() {
		return false
	}
	switch t {
	case uia.WindowControl, uia.PaneControl, uia.GroupControl,
		uia.ListControl, uia.MenuControl, uia.MenuBarControl,
		uia.ToolBarControl, uia.TreeControl, uia.TabControl,
		uia.DataGridControl, uia.TableControl, uia.HeaderItemControl,
		uia.ScrollBarControl, uia.ThumbControl, uia.SliderControl,
		uia.SpinnerControl, uia.DocumentControl, uia.CalendarControl,
		uia.SemanticZoomControl, uia.AppBarControl:
		return false
	}
	return true
}
