package ung

import (
	"fmt"
	"time"

	"repro/internal/appkit"
	"repro/internal/uia"
)

// Config controls GUI ripping.
type Config struct {
	// MaxDepth caps the click-path length explored (default 10).
	MaxDepth int
	// MaxNodes aborts exploration when the graph grows beyond this size
	// (default 100000), a safety valve against modeling runaways.
	MaxNodes int
}

func (c *Config) fill() {
	if c.MaxDepth == 0 {
		c.MaxDepth = 10
	}
	if c.MaxNodes == 0 {
		c.MaxNodes = 100000
	}
}

// Stats reports the cost of the offline modeling phase (paper §5.2).
type Stats struct {
	Nodes     int
	Edges     int
	Explored  int // nodes actually clicked
	Skipped   int // nodes skipped (non-interactive, disabled, or missing on replay)
	Blocked   int // nodes on the access blocklist
	Clicks    int
	Snapshots int
	Contexts  int
	// SimulatedTime is the wall-clock cost on the simulated desktop; the
	// paper reports < 3 hours of automated modeling per application.
	SimulatedTime time.Duration
}

// Rip builds the UNG of an application by DFS differential capture (paper
// §4.1): capture the accessibility tree, activate a candidate control,
// capture again; newly revealed controls define navigation edges. New
// windows are detected by desktop window listeners, the access blocklist is
// honored, and every registered application context is explored and merged
// into one topology.
func Rip(app *appkit.App, cfg Config) (*Graph, Stats, error) {
	cfg.fill()
	g := NewGraph(app.Name)
	var st Stats
	start := app.Desk.Clock().Now()

	// Window listeners confirm popup windows appear; differential capture
	// picks their content up from full-desktop snapshots.
	opened := 0
	app.Desk.Listen(func(ev uia.WindowEvent) {
		if ev.Opened {
			opened++
		}
	})

	type frame struct {
		id   string
		path []string
	}
	expanded := make(map[string]bool)
	queued := make(map[string]bool)
	var stack []frame

	push := func(id string, path []string) {
		if queued[id] || expanded[id] {
			return
		}
		queued[id] = true
		stack = append(stack, frame{id: id, path: path})
	}

	contexts := []string{""}
	for _, c := range app.Contexts() {
		contexts = append(contexts, c.Name)
	}
	st.Contexts = len(contexts)

	for _, ctx := range contexts {
		restore(app, ctx)
		snap := capture(app, &st)

		// Root-node initialization (paper §4.1): initial-screen controls
		// attach beneath their visible UI ancestors, anchored at the
		// virtual root; the active tab's content panel is re-anchored
		// under the active TabItem so otherwise unscoped controls are
		// indexable beneath it.
		tabItem, tabPanel := app.ActiveTabInfo()
		inSnap := make(map[*uia.Element]bool, len(snap.order))
		for _, e := range snap.order {
			inSnap[e] = true
		}
		for _, e := range snap.order {
			id := e.ControlID()
			_, existed := g.Nodes[id]
			g.Ensure(id, e, ctx)
			parent := RootID
			if e == tabPanel && tabItem != nil {
				parent = tabItem.ControlID()
			} else if anc := nearestIn(e, inSnap); anc != nil {
				parent = anc.ControlID()
			}
			g.AddEdge(parent, id)
			if !existed {
				push(id, nil)
			}
		}

		for len(stack) > 0 {
			if g.NodeCount() > cfg.MaxNodes {
				return g, st, fmt.Errorf("ung: node limit %d exceeded", cfg.MaxNodes)
			}
			f := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if expanded[f.id] {
				continue
			}
			expanded[f.id] = true

			node := g.Nodes[f.id]
			if node == nil {
				continue
			}
			if !clickable(node.Type) {
				st.Skipped++
				continue
			}

			// Re-establish the discovery state: soft reset, then replay
			// the click path.
			restore(app, ctx)
			if !replay(app, f.path, &st) {
				st.Skipped++
				continue
			}
			before := capture(app, &st)
			el := before.byID[f.id]
			if el == nil || !el.OnScreen() || !el.Enabled() {
				st.Skipped++
				continue
			}
			if app.Blocked(el) {
				st.Blocked++
				continue
			}
			if err := app.Desk.Click(el); err != nil {
				st.Skipped++
				continue
			}
			st.Clicks++
			st.Explored++
			after := capture(app, &st)

			// Newly revealed controls attach beneath their nearest
			// newly-revealed UI ancestor; top-level reveals attach to
			// the clicked control. This preserves structure inside
			// popups (a shared flyout stays one subtree) while edges
			// still denote click-induced reachability.
			fresh := make(map[*uia.Element]bool)
			for _, e := range after.order {
				id := e.ControlID()
				if id == f.id {
					continue
				}
				if _, present := before.byID[id]; present {
					continue
				}
				fresh[e] = true
			}
			for _, e := range after.order {
				if !fresh[e] {
					continue
				}
				id := e.ControlID()
				_, existed := g.Nodes[id]
				g.Ensure(id, e, ctx)
				parent := f.id
				if anc := nearestIn(e, fresh); anc != nil {
					parent = anc.ControlID()
				}
				g.AddEdge(parent, id)
				if !existed && len(f.path)+1 < cfg.MaxDepth {
					next := make([]string, len(f.path)+1)
					copy(next, f.path)
					next[len(f.path)] = f.id
					push(id, next)
				}
			}
		}
	}

	restore(app, "")
	st.Nodes = g.NodeCount()
	st.Edges = g.EdgeCount()
	st.SimulatedTime = app.Desk.Clock().Now() - start
	return g, st, nil
}

// nearestIn walks up e's UI ancestors and returns the first one present in
// the set (window roots excluded), or nil.
func nearestIn(e *uia.Element, set map[*uia.Element]bool) *uia.Element {
	for cur := e.Parent(); cur != nil; cur = cur.Parent() {
		if cur.Parent() == nil {
			return nil // window root: not a modeled control
		}
		if set[cur] {
			return cur
		}
	}
	return nil
}

// snapshotIndex is one differential-capture frame.
type snapshotIndex struct {
	order []*uia.Element
	byID  map[string]*uia.Element
}

func capture(app *appkit.App, st *Stats) snapshotIndex {
	st.Snapshots++
	els := app.Desk.Snapshot()
	idx := snapshotIndex{byID: make(map[string]*uia.Element, len(els))}
	for _, e := range els {
		// The desktop's window roots are containers, not controls to model.
		if e.Parent() == nil {
			continue
		}
		id := e.ControlID()
		if _, dup := idx.byID[id]; dup {
			continue // duplicate synthesized ID: first occurrence wins
		}
		idx.byID[id] = e
		idx.order = append(idx.order, e)
	}
	return idx
}

func restore(app *appkit.App, ctx string) {
	app.SoftReset()
	if ctx != "" {
		_ = app.EnterContext(ctx)
	}
}

// replay re-executes the click path; it reports false if any step's control
// cannot be resolved in the current state.
func replay(app *appkit.App, path []string, st *Stats) bool {
	for _, id := range path {
		snap := capture(app, st)
		el := snap.byID[id]
		if el == nil || !el.OnScreen() || !el.Enabled() {
			return false
		}
		if err := app.Desk.Click(el); err != nil {
			return false
		}
		st.Clicks++
	}
	return true
}

// clickable reports whether the ripper should attempt to activate controls
// of this type. Containers and purely informational controls are modeled as
// nodes but never clicked; scroll machinery is excluded because dragging is
// not a click edge (paper §3.2 models click-induced reachability only).
func clickable(t uia.ControlType) bool {
	if !t.IsInteractive() {
		return false
	}
	switch t {
	case uia.WindowControl, uia.PaneControl, uia.GroupControl,
		uia.ListControl, uia.MenuControl, uia.MenuBarControl,
		uia.ToolBarControl, uia.TreeControl, uia.TabControl,
		uia.DataGridControl, uia.TableControl, uia.HeaderItemControl,
		uia.ScrollBarControl, uia.ThumbControl, uia.SliderControl,
		uia.SpinnerControl, uia.DocumentControl, uia.CalendarControl,
		uia.SemanticZoomControl, uia.AppBarControl:
		return false
	}
	return true
}
