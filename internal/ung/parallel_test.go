package ung

import (
	"reflect"
	"testing"

	"repro/internal/appkit"
	"repro/internal/office/word"
)

// assertGraphsIdentical compares two graphs byte-for-byte: discovery order,
// node metadata, and the insertion order of both edge lists.
func assertGraphsIdentical(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.App != got.App {
		t.Fatalf("app %q vs %q", want.App, got.App)
	}
	if len(want.Order) != len(got.Order) {
		t.Fatalf("node count %d vs %d", len(want.Order), len(got.Order))
	}
	for i, id := range want.Order {
		if got.Order[i] != id {
			t.Fatalf("discovery order diverges at %d: %q vs %q", i, id, got.Order[i])
		}
		a, b := want.Nodes[id], got.Nodes[id]
		if a.Name != b.Name || a.Type != b.Type || a.Desc != b.Desc ||
			a.LargeEnum != b.LargeEnum || a.Context != b.Context {
			t.Fatalf("node %q metadata differs: %+v vs %+v", id, a, b)
		}
		if !reflect.DeepEqual(a.Out, b.Out) {
			t.Fatalf("node %q out-edges differ:\n  %v\nvs\n  %v", id, a.Out, b.Out)
		}
		if !reflect.DeepEqual(a.In, b.In) {
			t.Fatalf("node %q in-edges differ:\n  %v\nvs\n  %v", id, a.In, b.In)
		}
	}
}

// TestRipParallelMatchesSequential is the core merge-determinism contract:
// run under -race, N workers must produce a graph byte-identical to the
// sequential rip, including both edge lists' insertion order.
func TestRipParallelMatchesSequential(t *testing.T) {
	seq, seqStats, err := Rip(demoApp(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		par, parStats, err := RipParallel(demoApp, Config{}, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := par.Validate(); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		assertGraphsIdentical(t, seq, par)
		// Every dispatched frame is consumed exactly once, so the parallel
		// rip performs the same exploration — not just reaches the same
		// result by different work.
		if parStats.Explored != seqStats.Explored || parStats.Clicks != seqStats.Clicks {
			t.Errorf("workers=%d: explored/clicks %d/%d, want %d/%d",
				workers, parStats.Explored, parStats.Clicks, seqStats.Explored, seqStats.Clicks)
		}
		if parStats.Workers != workers {
			t.Errorf("workers stat = %d, want %d", parStats.Workers, workers)
		}
	}
}

// TestRipParallelDeterministic: repeated parallel rips are identical to each
// other (the property TestRipDeterministic asserts for the sequential path).
func TestRipParallelDeterministic(t *testing.T) {
	g1, _, err := RipParallel(demoApp, Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	g2, _, err := RipParallel(demoApp, Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, g1, g2)
}

func TestRipParallelSingleWorkerDegradesToSequential(t *testing.T) {
	seq, _, err := Rip(demoApp(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	par, st, err := RipParallel(demoApp, Config{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, seq, par)
	if st.Workers != 1 {
		t.Errorf("workers stat = %d, want 1", st.Workers)
	}
}

func TestRipParallelNodeLimit(t *testing.T) {
	_, _, err := RipParallel(demoApp, Config{MaxNodes: 10}, 4)
	if err == nil {
		t.Fatal("node limit not enforced")
	}
}

// TestRipParallelWord compares the full Word rip across the sequential and
// parallel paths; skipped in -short mode.
func TestRipParallelWord(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale rip")
	}
	seq, _, err := Rip(word.New().App, Config{})
	if err != nil {
		t.Fatal(err)
	}
	par, st, err := RipParallel(func() *appkit.App { return word.New().App }, Config{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, seq, par)
	t.Logf("word parallel rip: %d nodes, %d clicks, %d workers, longest worker %s",
		st.Nodes, st.Clicks, st.Workers, st.SimulatedTime)
}
