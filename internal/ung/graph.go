// Package ung builds and represents the UI Navigation Graph (UNG): the
// directed graph whose nodes are UI controls and whose edges capture
// click-induced reachability (paper §3.2). The graph is produced offline by
// a DFS GUI ripper with differential capture (paper §4.1) and consumed by
// the forest transformation (internal/forest).
package ung

import (
	"fmt"
	"sort"

	"repro/internal/uia"
)

// RootID is the identifier of the virtual root node that anchors controls
// visible on the initial screen.
const RootID = "[ROOT]"

// Node is one control in the UNG.
type Node struct {
	ID   string // synthesized control identifier (paper §4.1)
	Name string
	Type uia.ControlType
	Desc string

	// LargeEnum marks controls inside large enumerations (font lists,
	// symbol grids); core-topology extraction prunes them.
	LargeEnum bool
	// Context is the application context under which the control was
	// discovered ("" for the base context).
	Context string

	Out []string // click targets revealed by this control, in discovery order
	In  []string // reverse edges, in insertion order
}

// Graph is the UI Navigation Graph.
type Graph struct {
	App   string
	Nodes map[string]*Node
	Order []string // node IDs in discovery order (Root first)
}

// NewGraph creates a graph containing only the virtual root.
func NewGraph(app string) *Graph {
	g := &Graph{App: app, Nodes: make(map[string]*Node)}
	g.Order = append(g.Order, RootID)
	g.Nodes[RootID] = &Node{ID: RootID, Name: app, Type: uia.WindowControl}
	return g
}

// Root returns the virtual root node.
func (g *Graph) Root() *Node { return g.Nodes[RootID] }

// Ensure returns the node for id, creating it from the element on first use.
func (g *Graph) Ensure(id string, e *uia.Element, context string) *Node {
	if n, ok := g.Nodes[id]; ok {
		return n
	}
	n := &Node{
		ID:      id,
		Name:    e.Name(),
		Type:    e.Type(),
		Desc:    e.Description(),
		Context: context,
	}
	for cur := e; cur != nil; cur = cur.Parent() {
		if cur.LargeEnum() {
			n.LargeEnum = true
			break
		}
	}
	g.Nodes[id] = n
	g.Order = append(g.Order, id)
	return n
}

// ensureReveal is Ensure for a serialized reveal: the node fields were
// captured on the instance that computed the expansion (possibly another
// process), so no element pointer is needed and the resulting node is
// byte-identical to one Ensure would build from the live element.
func (g *Graph) ensureReveal(r Reveal, context string) *Node {
	if n, ok := g.Nodes[r.ID]; ok {
		return n
	}
	n := &Node{
		ID:        r.ID,
		Name:      r.Name,
		Type:      r.Type,
		Desc:      r.Desc,
		LargeEnum: r.LargeEnum,
		Context:   context,
	}
	g.Nodes[r.ID] = n
	g.Order = append(g.Order, r.ID)
	return n
}

// AddEdge inserts the edge from → to once; duplicates are ignored.
func (g *Graph) AddEdge(from, to string) {
	f, ok := g.Nodes[from]
	if !ok {
		return
	}
	t, ok := g.Nodes[to]
	if !ok {
		return
	}
	for _, o := range f.Out {
		if o == to {
			return
		}
	}
	f.Out = append(f.Out, to)
	t.In = append(t.In, from)
}

// NodeCount returns the number of nodes including the virtual root.
func (g *Graph) NodeCount() int { return len(g.Nodes) }

// EdgeCount returns the number of directed edges.
func (g *Graph) EdgeCount() int {
	n := 0
	for _, node := range g.Nodes {
		n += len(node.Out)
	}
	return n
}

// Leaves returns the IDs of functional nodes: nodes with no outgoing edges.
// Navigation (non-leaf) nodes reveal other controls when clicked.
func (g *Graph) Leaves() []string {
	var out []string
	for _, id := range g.Order {
		if len(g.Nodes[id].Out) == 0 {
			out = append(out, id)
		}
	}
	return out
}

// MergeNodes returns the IDs of nodes with more than one incoming edge.
func (g *Graph) MergeNodes() []string {
	var out []string
	for _, id := range g.Order {
		if len(g.Nodes[id].In) > 1 {
			out = append(out, id)
		}
	}
	return out
}

// MaxDepth returns the length of the longest simple path from the root
// following BFS layering (a lower bound on true navigation depth, adequate
// for reporting).
func (g *Graph) MaxDepth() int {
	depth := map[string]int{RootID: 0}
	queue := []string{RootID}
	max := 0
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range g.Nodes[cur].Out {
			if _, seen := depth[next]; seen {
				continue
			}
			depth[next] = depth[cur] + 1
			if depth[next] > max {
				max = depth[next]
			}
			queue = append(queue, next)
		}
	}
	return max
}

// Reachable returns the set of node IDs reachable from the root.
func (g *Graph) Reachable() map[string]bool {
	seen := map[string]bool{RootID: true}
	stack := []string{RootID}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range g.Nodes[cur].Out {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return seen
}

// Validate checks structural invariants: edge endpoints exist, In/Out are
// consistent, and every node is reachable from the root. It walks nodes in
// discovery order, so the same broken graph always yields the same error —
// ranging over the Nodes map here made the reported violation a function of
// map iteration order (caught by the maporder analyzer).
func (g *Graph) Validate() error {
	if len(g.Order) != len(g.Nodes) {
		return fmt.Errorf("ung: %d nodes in discovery order, %d in the node map", len(g.Order), len(g.Nodes))
	}
	for _, id := range g.Order {
		n, ok := g.Nodes[id]
		if !ok {
			return fmt.Errorf("ung: order references missing node %q", id)
		}
		if n.ID != id {
			return fmt.Errorf("ung: node key %q != node id %q", id, n.ID)
		}
		for _, o := range n.Out {
			t, ok := g.Nodes[o]
			if !ok {
				return fmt.Errorf("ung: edge %q → missing node %q", id, o)
			}
			found := false
			for _, in := range t.In {
				if in == id {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("ung: edge %q → %q missing reverse entry", id, o)
			}
		}
	}
	reach := g.Reachable()
	if len(reach) != len(g.Nodes) {
		var missing []string
		//dmi:orderinvariant collected ids are sorted before use
		for id := range g.Nodes {
			if !reach[id] {
				missing = append(missing, id)
			}
		}
		sort.Strings(missing)
		return fmt.Errorf("ung: %d nodes unreachable from root (first: %.3q)", len(missing), missing)
	}
	return nil
}
