package ung

import (
	"encoding/binary"
	"fmt"

	"repro/internal/uia"
)

// Binary snapshot codec. The JSON codec in snapshot.go is self-describing
// and greppable, but a graph snapshot is also the modelstore's unit of
// budget accounting (per-model cost = encoded bytes), so codec bloat
// directly shrinks the effective warm-cache budget. The binary form cuts
// the field-name and quoting overhead: a length-prefixed, versioned layout
// that preserves exactly what the JSON form preserves — node metadata,
// discovery order, and the insertion order of both edge lists — so the two
// encodings decode to identical graphs.
//
// Layout (all integers are unsigned varints, strings are varint-length-
// prefixed UTF-8):
//
//	magic "UNGB" | version | app | nodeCount |
//	  nodeCount × ( id | name | type | desc | flags | context |
//	                outCount × nodeIndex | inCount × nodeIndex )
//
// Edges are varint indexes into the node array (discovery order), not
// repeated id strings — synthesized control ids embed whole ancestor paths,
// so spelling each edge out again is most of the JSON form's weight. flags
// is a single byte; bit 0 is LargeEnum, the remaining bits must be zero (a
// decoder from the future rejecting unknown flags beats one silently
// dropping them). Decode is strict: a short buffer, a version skew, an
// out-of-range edge index, or trailing bytes after the last node are all
// distinct errors, and the decoded graph passes the same structural
// validation as the JSON path.

// binaryMagic distinguishes a binary snapshot from a JSON one (which always
// starts with '{'); DecodeAny sniffs it.
const binaryMagic = "UNGB"

// BinaryVersion is the binary layout version. Bumped on any layout change;
// Decode rejects other versions as skew instead of misparsing them.
const BinaryVersion = 1

// largeEnumFlag is bit 0 of the per-node flags byte.
const largeEnumFlag = 0x01

// EncodeBinary serializes the graph to the compact binary snapshot form.
// Like Encode, nodes are written in discovery order.
func EncodeBinary(g *Graph) ([]byte, error) {
	// Pre-size: magic+version+count headers plus per-node strings; the
	// estimate only has to be in the right ballpark to avoid regrowth.
	size := len(binaryMagic) + 2*binary.MaxVarintLen64 + len(g.App)
	for _, id := range g.Order {
		if n, ok := g.Nodes[id]; ok {
			size += len(n.ID) + len(n.Name) + len(n.Desc) + len(n.Context) + 16
		}
	}
	index := make(map[string]uint64, len(g.Order))
	for i, id := range g.Order {
		index[id] = uint64(i)
	}
	var err error
	buf := make([]byte, 0, size)
	buf = append(buf, binaryMagic...)
	buf = binary.AppendUvarint(buf, BinaryVersion)
	buf = appendString(buf, g.App)
	buf = binary.AppendUvarint(buf, uint64(len(g.Order)))
	for _, id := range g.Order {
		n, ok := g.Nodes[id]
		if !ok {
			return nil, fmt.Errorf("ung: order references missing node %q", id)
		}
		if n.Type < 0 {
			return nil, fmt.Errorf("ung: node %q has negative control type %d", id, n.Type)
		}
		buf = appendString(buf, n.ID)
		buf = appendString(buf, n.Name)
		buf = binary.AppendUvarint(buf, uint64(n.Type))
		buf = appendString(buf, n.Desc)
		var flags byte
		if n.LargeEnum {
			flags |= largeEnumFlag
		}
		buf = append(buf, flags)
		buf = appendString(buf, n.Context)
		if buf, err = appendEdges(buf, n.Out, index); err != nil {
			return nil, fmt.Errorf("ung: node %q: %w", id, err)
		}
		if buf, err = appendEdges(buf, n.In, index); err != nil {
			return nil, fmt.Errorf("ung: node %q: %w", id, err)
		}
	}
	return buf, nil
}

func appendString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

func appendEdges(buf []byte, edges []string, index map[string]uint64) ([]byte, error) {
	buf = binary.AppendUvarint(buf, uint64(len(edges)))
	for _, e := range edges {
		i, ok := index[e]
		if !ok {
			return nil, fmt.Errorf("edge references unknown node %q", e)
		}
		buf = binary.AppendUvarint(buf, i)
	}
	return buf, nil
}

// DecodeBinary reconstructs a graph from its EncodeBinary form, enforcing
// the same structural invariants as the JSON Decode. Failure modes are
// distinct and strict: wrong magic, version skew, truncation, non-zero
// unknown flags, and trailing garbage each fail with a named error rather
// than a best-effort graph.
func DecodeBinary(data []byte) (*Graph, error) {
	r := binReader{data: data}
	if len(data) < len(binaryMagic) || string(data[:len(binaryMagic)]) != binaryMagic {
		return nil, fmt.Errorf("ung: decode binary: missing %q magic", binaryMagic)
	}
	r.off = len(binaryMagic)
	version, err := r.uvarint("version")
	if err != nil {
		return nil, err
	}
	if version != BinaryVersion {
		return nil, fmt.Errorf("ung: decode binary: snapshot version %d, this build reads version %d", version, BinaryVersion)
	}
	app, err := r.str("app")
	if err != nil {
		return nil, err
	}
	count, err := r.uvarint("node count")
	if err != nil {
		return nil, err
	}
	// Every node carries at least a handful of bytes; a count claiming more
	// nodes than remaining bytes is corruption, refused before allocation.
	if count > uint64(len(data)-r.off) {
		return nil, fmt.Errorf("ung: decode binary: node count %d exceeds payload", count)
	}
	g := &Graph{App: app, Nodes: make(map[string]*Node, count)}
	// Edge indexes may point forward to nodes not yet read, so they are
	// collected raw and resolved to ids after the node array is complete.
	outIdx := make([][]uint64, count)
	inIdx := make([][]uint64, count)
	for i := uint64(0); i < count; i++ {
		n := &Node{}
		if n.ID, err = r.str("node id"); err != nil {
			return nil, err
		}
		if n.Name, err = r.str("node name"); err != nil {
			return nil, err
		}
		ctype, err := r.uvarint("control type")
		if err != nil {
			return nil, err
		}
		if ctype > uint64(int(^uint(0)>>1)) {
			return nil, fmt.Errorf("ung: decode binary: control type %d out of range", ctype)
		}
		n.Type = uia.ControlType(ctype)
		if n.Desc, err = r.str("node desc"); err != nil {
			return nil, err
		}
		flags, err := r.byte("node flags")
		if err != nil {
			return nil, err
		}
		if flags&^byte(largeEnumFlag) != 0 {
			return nil, fmt.Errorf("ung: decode binary: unknown node flags %#x", flags)
		}
		n.LargeEnum = flags&largeEnumFlag != 0
		if n.Context, err = r.str("node context"); err != nil {
			return nil, err
		}
		if outIdx[i], err = r.edgeIndexes("out edges", count); err != nil {
			return nil, err
		}
		if inIdx[i], err = r.edgeIndexes("in edges", count); err != nil {
			return nil, err
		}
		if i == 0 && n.ID != RootID {
			return nil, fmt.Errorf("ung: decode binary: snapshot does not start at the virtual root")
		}
		if _, dup := g.Nodes[n.ID]; dup {
			return nil, fmt.Errorf("ung: decode binary: duplicate node %q", n.ID)
		}
		g.Nodes[n.ID] = n
		g.Order = append(g.Order, n.ID)
	}
	if count == 0 {
		return nil, fmt.Errorf("ung: decode binary: snapshot does not start at the virtual root")
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("ung: decode binary: %d trailing bytes after the last node", len(data)-r.off)
	}
	for i, id := range g.Order {
		n := g.Nodes[id]
		n.Out = resolveEdges(outIdx[i], g.Order)
		n.In = resolveEdges(inIdx[i], g.Order)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("ung: decode binary: %w", err)
	}
	return g, nil
}

// resolveEdges maps edge indexes back to node ids; indexes were already
// bounds-checked against the node count at read time.
func resolveEdges(idxs []uint64, order []string) []string {
	if len(idxs) == 0 {
		return nil // empty edge lists stay nil, the canonical form
	}
	edges := make([]string, len(idxs))
	for i, idx := range idxs {
		edges[i] = order[idx]
	}
	return edges
}

// DecodeAny decodes either snapshot encoding, sniffing the binary magic —
// the loader path for snapshot directories that may hold files written by
// either format (older JSON snapshots keep working after the default
// switched to binary).
func DecodeAny(data []byte) (*Graph, error) {
	if len(data) >= len(binaryMagic) && string(data[:len(binaryMagic)]) == binaryMagic {
		return DecodeBinary(data)
	}
	return Decode(data)
}

// binReader walks the binary layout with bounds checking; every read
// failure names the field that was being read when the payload ran out.
type binReader struct {
	data []byte
	off  int
}

func (r *binReader) uvarint(field string) (uint64, error) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, fmt.Errorf("ung: decode binary: truncated %s", field)
	}
	r.off += n
	return v, nil
}

func (r *binReader) byte(field string) (byte, error) {
	if r.off >= len(r.data) {
		return 0, fmt.Errorf("ung: decode binary: truncated %s", field)
	}
	b := r.data[r.off]
	r.off++
	return b, nil
}

func (r *binReader) str(field string) (string, error) {
	n, err := r.uvarint(field)
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.data)-r.off) {
		return "", fmt.Errorf("ung: decode binary: truncated %s", field)
	}
	s := string(r.data[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

func (r *binReader) edgeIndexes(field string, nodeCount uint64) ([]uint64, error) {
	n, err := r.uvarint(field)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	if n > uint64(len(r.data)-r.off) {
		return nil, fmt.Errorf("ung: decode binary: truncated %s", field)
	}
	idxs := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		idx, err := r.uvarint(field)
		if err != nil {
			return nil, err
		}
		if idx >= nodeCount {
			return nil, fmt.Errorf("ung: decode binary: %s index %d out of range (%d nodes)", field, idx, nodeCount)
		}
		idxs = append(idxs, idx)
	}
	return idxs, nil
}
