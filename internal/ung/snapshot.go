package ung

import (
	"encoding/json"
	"fmt"

	"repro/internal/uia"
)

// The graph snapshot codec lets the offline artifact be persisted and
// reloaded without re-ripping the application (internal/modelstore builds
// on it). The encoding preserves everything downstream consumers depend on:
// node metadata, discovery order, and the insertion order of both edge
// lists, so a decoded graph transforms into the identical forest and
// identifier assignment.

// nodeJSON is the wire form of one UNG node.
type nodeJSON struct {
	ID        string          `json:"id"`
	Name      string          `json:"name,omitempty"`
	Type      uia.ControlType `json:"type"`
	Desc      string          `json:"desc,omitempty"`
	LargeEnum bool            `json:"large_enum,omitempty"`
	Context   string          `json:"context,omitempty"`
	Out       []string        `json:"out,omitempty"`
	In        []string        `json:"in,omitempty"`
}

// graphJSON is the wire form of a graph; nodes are listed in discovery
// order, which doubles as the Order field.
type graphJSON struct {
	App   string     `json:"app"`
	Nodes []nodeJSON `json:"nodes"`
}

// Encode serializes the graph to JSON.
func Encode(g *Graph) ([]byte, error) {
	w := graphJSON{App: g.App, Nodes: make([]nodeJSON, 0, len(g.Order))}
	for _, id := range g.Order {
		n, ok := g.Nodes[id]
		if !ok {
			return nil, fmt.Errorf("ung: order references missing node %q", id)
		}
		w.Nodes = append(w.Nodes, nodeJSON{
			ID:        n.ID,
			Name:      n.Name,
			Type:      n.Type,
			Desc:      n.Desc,
			LargeEnum: n.LargeEnum,
			Context:   n.Context,
			Out:       n.Out,
			In:        n.In,
		})
	}
	return json.Marshal(w)
}

// Decode reconstructs a graph from its Encode form and validates the
// structural invariants before returning it.
func Decode(data []byte) (*Graph, error) {
	var w graphJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return nil, fmt.Errorf("ung: decode: %w", err)
	}
	if len(w.Nodes) == 0 || w.Nodes[0].ID != RootID {
		return nil, fmt.Errorf("ung: decode: snapshot does not start at the virtual root")
	}
	g := &Graph{App: w.App, Nodes: make(map[string]*Node, len(w.Nodes))}
	for _, n := range w.Nodes {
		if _, dup := g.Nodes[n.ID]; dup {
			return nil, fmt.Errorf("ung: decode: duplicate node %q", n.ID)
		}
		g.Nodes[n.ID] = &Node{
			ID:        n.ID,
			Name:      n.Name,
			Type:      n.Type,
			Desc:      n.Desc,
			LargeEnum: n.LargeEnum,
			Context:   n.Context,
			// Canonicalize empty edge lists to nil: `omitempty` cannot
			// represent empty-but-present on re-encode, so accepting the
			// distinction would break decode(encode(g)) == g (found by
			// FuzzDecode).
			Out: canonEdges(n.Out),
			In:  canonEdges(n.In),
		}
		g.Order = append(g.Order, n.ID)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("ung: decode: %w", err)
	}
	return g, nil
}

// canonEdges maps empty edge lists to nil, the in-memory canonical form.
func canonEdges(edges []string) []string {
	if len(edges) == 0 {
		return nil
	}
	return edges
}
