package ung

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// goldenPath holds the checked-in Encode output of the demo application's
// graph. It pins the wire format: an unintentional encoding change breaks
// every snapshot already on disk (modelstore would silently re-rip), so a
// deliberate format change must bump modelstore.SnapshotVersion and
// regenerate this file (UPDATE_GOLDEN=1 go test ./internal/ung -run
// TestSnapshotGolden).
const goldenPath = "testdata/demo_snapshot.golden.json"

var updateGolden = os.Getenv("UPDATE_GOLDEN") != ""

func TestSnapshotGolden(t *testing.T) {
	g, _ := ripDemo(t)
	data, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	if updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("golden file missing (set UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(data, want) {
		t.Fatal("snapshot encoding drifted from the golden file; if intentional, " +
			"bump modelstore.SnapshotVersion and regenerate with UPDATE_GOLDEN=1")
	}
	// The golden bytes must also decode back to the identical graph.
	back, err := Decode(want)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, g, back)
}

// FuzzDecode hardens the snapshot codec against corrupt on-disk snapshots
// (the modelstore path that falls back to a fresh rip): Decode must never
// panic, and any input it accepts must survive an Encode→Decode round trip
// structurally unchanged.
func FuzzDecode(f *testing.F) {
	// Seed with a real encoding plus the known tricky shapes; the committed
	// corpus under testdata/fuzz/FuzzDecode extends these and is replayed by
	// plain `go test`.
	app := demoApp()
	g, _, err := Rip(app, Config{})
	if err != nil {
		f.Fatal(err)
	}
	if valid, err := Encode(g); err == nil {
		f.Add(valid)
	}
	f.Add([]byte("not json"))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"app":"x","nodes":[]}`))
	f.Add([]byte(`{"app":"x","nodes":[{"id":"[ROOT]","type":32},{"id":"a","type":0,"out":["missing"]}]}`))
	f.Add([]byte(`{"app":"x","nodes":[{"id":"[ROOT]","type":32},{"id":"[ROOT]","type":32}]}`))
	f.Add([]byte(`{"app":"x","nodes":[{"id":"[ROOT]","type":-5,"out":["a"],"in":["a"]},{"id":"a","type":9999,"in":["[ROOT]"],"out":["[ROOT]"]}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := Decode(data)
		if err != nil {
			return // rejected: exactly what corrupt snapshots should get
		}
		// Accepted inputs must satisfy the structural invariants…
		if err := decoded.Validate(); err != nil {
			t.Fatalf("Decode accepted an invalid graph: %v", err)
		}
		// …and round-trip losslessly.
		again, err := Encode(decoded)
		if err != nil {
			t.Fatalf("re-encode of accepted graph failed: %v", err)
		}
		back, err := Decode(again)
		if err != nil {
			t.Fatalf("decode of re-encoded graph failed: %v", err)
		}
		assertGraphsIdentical(t, decoded, back)
	})
}
