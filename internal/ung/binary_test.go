package ung

import (
	"bytes"
	"encoding/binary"
	"testing"
)

func TestBinaryRoundTrip(t *testing.T) {
	g, _ := ripDemo(t)
	data, err := EncodeBinary(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, g, back)
}

// TestBinaryJSONEquivalence proves binary⇄JSON⇄graph identity: the two
// codecs decode to identical graphs, and converting either way reproduces
// the other encoding byte for byte. This is the contract that lets the
// modelstore switch its default format while older JSON snapshots keep
// loading.
func TestBinaryJSONEquivalence(t *testing.T) {
	g, _ := ripDemo(t)
	jsonData, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	binData, err := EncodeBinary(g)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := Decode(jsonData)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeBinary(binData)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, fromJSON, fromBin)

	// JSON → graph → binary reproduces the binary bytes, and vice versa.
	binAgain, err := EncodeBinary(fromJSON)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(binAgain, binData) {
		t.Error("JSON→graph→binary did not reproduce the binary encoding")
	}
	jsonAgain, err := Encode(fromBin)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(jsonAgain, jsonData) {
		t.Error("binary→graph→JSON did not reproduce the JSON encoding")
	}
}

// TestBinarySmallerThanJSON pins the codec's reason to exist: the binary
// snapshot must be at least 30% smaller than the JSON one (the modelstore
// budget multiplier the switch buys). The demo graph is representative —
// short ids, sparse descriptions — so if this ratio regresses, real
// catalogs regress too.
func TestBinarySmallerThanJSON(t *testing.T) {
	g, _ := ripDemo(t)
	jsonData, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	binData, err := EncodeBinary(g)
	if err != nil {
		t.Fatal(err)
	}
	if limit := len(jsonData) * 7 / 10; len(binData) > limit {
		t.Errorf("binary snapshot is %d bytes, want ≤ 70%% of the %d-byte JSON form (%d)",
			len(binData), len(jsonData), limit)
	}
}

func TestBinaryDecodeFailureModes(t *testing.T) {
	g, _ := ripDemo(t)
	valid, err := EncodeBinary(g)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("wrong magic", func(t *testing.T) {
		bad := append([]byte("NOPE"), valid[4:]...)
		if _, err := DecodeBinary(bad); err == nil {
			t.Error("wrong magic accepted")
		}
	})
	t.Run("version skew", func(t *testing.T) {
		skewed := append([]byte(binaryMagic), binary.AppendUvarint(nil, BinaryVersion+1)...)
		skewed = append(skewed, valid[len(binaryMagic)+1:]...)
		_, err := DecodeBinary(skewed)
		if err == nil {
			t.Fatal("version skew accepted")
		}
		if want := "snapshot version"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Errorf("version-skew error %q does not name the version", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		// Every proper prefix must be rejected: the length-prefixed layout
		// leaves no valid graph hiding inside a shorter buffer.
		for n := 0; n < len(valid); n++ {
			if _, err := DecodeBinary(valid[:n]); err == nil {
				t.Fatalf("truncation to %d of %d bytes accepted", n, len(valid))
			}
		}
	})
	t.Run("trailing garbage", func(t *testing.T) {
		noisy := append(append([]byte{}, valid...), 0x00)
		_, err := DecodeBinary(noisy)
		if err == nil {
			t.Fatal("trailing garbage accepted")
		}
		if want := "trailing"; !bytes.Contains([]byte(err.Error()), []byte(want)) {
			t.Errorf("trailing-garbage error %q does not say so", err)
		}
	})
	t.Run("unknown flags", func(t *testing.T) {
		// Flip an unknown flag bit in the root node's flags byte. The root
		// is the first node: magic, version, app, count, id, name, type,
		// desc, then flags.
		r := binReader{data: valid, off: len(binaryMagic)}
		for _, field := range []string{"version", "app", "count", "id", "name", "type", "desc"} {
			switch field {
			case "app", "id", "name", "desc":
				if _, err := r.str(field); err != nil {
					t.Fatal(err)
				}
			default:
				if _, err := r.uvarint(field); err != nil {
					t.Fatal(err)
				}
			}
		}
		bad := append([]byte{}, valid...)
		bad[r.off] |= 0x80
		if _, err := DecodeBinary(bad); err == nil {
			t.Error("unknown flag bit accepted")
		}
	})
	t.Run("empty", func(t *testing.T) {
		if _, err := DecodeBinary(nil); err == nil {
			t.Error("empty payload accepted")
		}
	})
}

func TestDecodeAnySniffsBothFormats(t *testing.T) {
	g, _ := ripDemo(t)
	jsonData, err := Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	binData, err := EncodeBinary(g)
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := DecodeAny(jsonData)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeAny(binData)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsIdentical(t, fromJSON, fromBin)
}

// FuzzSnapshotBinaryDecode hardens the binary codec the same way FuzzDecode
// hardens the JSON one: DecodeBinary must never panic on corrupt input, and
// anything it accepts must be structurally valid and survive a binary round
// trip unchanged. The committed corpus under
// testdata/fuzz/FuzzSnapshotBinaryDecode is replayed by plain `go test`.
func FuzzSnapshotBinaryDecode(f *testing.F) {
	app := demoApp()
	g, _, err := Rip(app, Config{})
	if err != nil {
		f.Fatal(err)
	}
	valid, err := EncodeBinary(g)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                                                       // truncated mid-node
	f.Add(append(append([]byte{}, valid...), 0xff))                                                   // trailing garbage
	f.Add([]byte(binaryMagic))                                                                        // magic only
	f.Add([]byte("UNGB\x02"))                                                                         // version skew
	f.Add(append([]byte("UNGB\x01\x00"), 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01)) // absurd node count
	f.Add([]byte(`{"app":"x","nodes":[]}`))                                                           // JSON fed to the binary decoder

	f.Fuzz(func(t *testing.T, data []byte) {
		decoded, err := DecodeBinary(data)
		if err != nil {
			return // rejected: exactly what corrupt snapshots should get
		}
		if err := decoded.Validate(); err != nil {
			t.Fatalf("DecodeBinary accepted an invalid graph: %v", err)
		}
		again, err := EncodeBinary(decoded)
		if err != nil {
			t.Fatalf("re-encode of accepted graph failed: %v", err)
		}
		back, err := DecodeBinary(again)
		if err != nil {
			t.Fatalf("decode of re-encoded graph failed: %v", err)
		}
		assertGraphsIdentical(t, decoded, back)
	})
}
