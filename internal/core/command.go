package core

import (
	"encoding/json"
	"fmt"
)

// Command is one structured visit command (paper §3.4). Exactly one of the
// four forms is used per command:
//
//	{"id": 42}                               control access
//	{"id": 42, "entry_ref_id": [7]}          control access in a shared subtree
//	{"id": 42, "text": "hello"}              access-and-input-text
//	{"shortcut_key": "ENTER"}                auxiliary shortcut
//	{"further_query": [42, ...]}             topology expansion (exclusive)
type Command struct {
	ID          *int   `json:"id,omitempty"`
	EntryRefIDs []int  `json:"entry_ref_id,omitempty"`
	Text        string `json:"text,omitempty"`
	ShortcutKey string `json:"shortcut_key,omitempty"`
	// FurtherQuery lists node ids to expand; the single value -1 requests
	// the entire forest. A further_query command is exclusive: it cannot
	// be mixed with other commands in the same call.
	FurtherQuery []int `json:"further_query,omitempty"`
}

// Access builds a control-access command.
func Access(id int) Command { return Command{ID: &id} }

// AccessRef builds a control-access command for a shared-subtree target.
func AccessRef(id int, entryRefs ...int) Command {
	return Command{ID: &id, EntryRefIDs: entryRefs}
}

// Input builds an access-and-input-text command.
func Input(id int, text string) Command { return Command{ID: &id, Text: text} }

// Shortcut builds a shortcut-key command.
func Shortcut(key string) Command { return Command{ShortcutKey: key} }

// FurtherQuery builds a topology-expansion command; -1 requests the full
// forest.
func FurtherQuery(ids ...int) Command { return Command{FurtherQuery: ids} }

// Kind classifies a command.
type Kind int

// Command kinds.
const (
	KindAccess Kind = iota
	KindInput
	KindShortcut
	KindFurtherQuery
	KindInvalid
)

// Kind returns the command's classification, validating mutual exclusion.
func (c Command) Kind() Kind {
	switch {
	case len(c.FurtherQuery) > 0:
		if c.ID != nil || c.Text != "" || c.ShortcutKey != "" {
			return KindInvalid
		}
		return KindFurtherQuery
	case c.ShortcutKey != "":
		if c.ID != nil || c.Text != "" {
			return KindInvalid
		}
		return KindShortcut
	case c.ID != nil && c.Text != "":
		return KindInput
	case c.ID != nil:
		return KindAccess
	default:
		return KindInvalid
	}
}

// String renders the command in its JSON form for logs and prompts.
func (c Command) String() string {
	b, err := json.Marshal(c)
	if err != nil {
		return fmt.Sprintf("Command<%v>", err)
	}
	return string(b)
}

// ParseCommands decodes a JSON array of visit commands — the raw LLM
// output.
func ParseCommands(raw []byte) ([]Command, error) {
	var cmds []Command
	if err := json.Unmarshal(raw, &cmds); err != nil {
		return nil, fmt.Errorf("core: malformed visit payload: %w", err)
	}
	return cmds, nil
}
