package core

import (
	"strings"
	"testing"

	"repro/internal/appkit"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/uia"
	"repro/internal/ung"
)

// testApp is a compact application with observable state for exercising
// every executor mechanism.
type testApp struct {
	*appkit.App
	bold    bool
	picks   []string // "<binding>=<color>"
	rows    int
	saved   string
	applied bool // dialog OK pressed
	scroll  float64
}

func newTestApp() *testApp {
	ta := &testApp{}
	a := appkit.New("TestApp")
	ta.App = a

	picker := a.ColorPicker("clr", "Colors", func(app *appkit.App, color string) {
		ta.picks = append(ta.picks, app.Binding().(string)+"="+color)
	})

	home := a.Tab("tabHome", "Home")
	font := home.Group("grpFont", "Font")
	font.ToggleButton("btnBold", "Bold",
		func(*appkit.App) bool { return ta.bold },
		func(_ *appkit.App, on bool) { ta.bold = on })
	font.MenuButton("btnFontColor", "Font Color", picker, func(*appkit.App) any { return "font" })
	font.MenuButton("btnHighlight", "Highlight", picker, func(*appkit.App) any { return "hl" })
	disabled := font.Button("btnLocked", "Locked", nil)
	disabled.SetEnabled(false)

	ins := a.Tab("tabInsert", "Insert")
	dlg := a.NewDialog("dlgTable", "Insert Table")
	var rows float64 = 2
	dlg.Panel().Spinner("spnRows", "Rows", 1, 10, 2, func(_ *appkit.App, v float64) { rows = v })
	dlg.AddOKCancel(func(*appkit.App) { ta.rows = int(rows); ta.applied = true })
	ins.Group("grpTables", "Tables").DialogButton("btnTable", "Table", dlg, nil)

	ed := home.Group("grpName", "Naming").CommitEdit("edName", "Name Box", "",
		func(_ *appkit.App, v string) { ta.saved = v })
	_ = ed

	// A tiny data grid for passive observation.
	grid := uia.NewElement("grdMini", "MiniGrid", uia.DataGridControl)
	a.Window().Custom(grid)
	for i, v := range []string{"alpha", "", "a very long cell value that overflows", ""} {
		it := uia.NewElement("", "R"+string(rune('1'+i)), uia.DataItemControl)
		it.SetPattern(uia.ValuePattern, uia.NewValue(v, nil))
		grid.AddChild(it)
	}

	// Scrollable document.
	body := a.Window().Pane("pnlBody", "Body")
	body.VScrollBar("sbMain", "Vertical Scroll Bar", func(_ *appkit.App, v float64) { ta.scroll = v })
	doc := body.Document("docMain", "Document", uia.NewText("l1\n\nl2 first\nl2 second\n\nl3"))
	_ = doc

	lst := body.List("lstItems", "Items")
	sel := uia.NewSelectionList(true, nil)
	lst.El.SetPattern(uia.SelectionPattern, sel)
	for _, n := range []string{"Item One", "Item Two", "Item Three"} {
		it := uia.NewElement("", n, uia.ListItemControl)
		it.SetPattern(uia.SelectionItemPattern, sel.Item())
		lst.El.AddChild(it)
	}

	a.Layout()
	return ta
}

// sessionFor builds the offline model by ripping a THROWAWAY instance of
// the application (ripping clicks everything, mutating state), then binds a
// session to the given fresh instance — exactly the paper's deployment: the
// model is version-specific but reusable across machines (§5.2).
func sessionFor(t *testing.T, fresh *appkit.App, build func() *appkit.App, opt Options) (*Session, *describe.Model) {
	t.Helper()
	g, _, err := ung.Rip(build(), ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := forest.Transform(g, forest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := describe.NewModel(f)
	return NewSession(fresh, m, opt), m
}

func buildTestApp() *appkit.App { return newTestApp().App }

// modelOf rips a throwaway twin of the test app and binds the session to
// the live one.
func modelOf(t *testing.T, a *appkit.App, opt Options) (*Session, *describe.Model) {
	t.Helper()
	return sessionFor(t, a, buildTestApp, opt)
}

func leafID(t *testing.T, m *describe.Model, name string) int {
	t.Helper()
	n := m.FindLeafByName(name)
	if n == nil {
		t.Fatalf("leaf %q not in model", name)
	}
	return m.ID(n)
}

func refIDTo(t *testing.T, m *describe.Model, subtreeOfLeaf *forest.Node, openerName string) int {
	t.Helper()
	tree := m.TreeOf(subtreeOfLeaf)
	if tree == "" {
		t.Fatalf("leaf %q not in a shared subtree", subtreeOfLeaf.Name)
	}
	for _, r := range m.RefsTo(tree) {
		// the ref whose path passes through the named opener
		for _, anc := range r.PathFromRoot() {
			if anc.Name == openerName {
				return m.ID(r)
			}
		}
	}
	t.Fatalf("no ref to %q via %q", tree, openerName)
	return -1
}

func TestVisitSimpleAccess(t *testing.T) {
	ta := newTestApp()
	s, m := modelOf(t, ta.App, Options{})
	res := s.Visit([]Command{Access(leafID(t, m, "Bold"))})
	if !res.OK() {
		t.Fatalf("visit failed: %v", res.Err)
	}
	if !ta.bold {
		t.Fatal("Bold not toggled")
	}
	if res.Executed[0].Target != "Bold" {
		t.Errorf("target = %q", res.Executed[0].Target)
	}
}

func TestVisitNavigatesAcrossTabs(t *testing.T) {
	ta := newTestApp()
	s, m := modelOf(t, ta.App, Options{})
	// Target lives in the Insert Table dialog: executor must click the
	// Insert tab, the Table button, then OK — from the Home base state.
	okID := -1
	var find func(n *forest.Node)
	find = func(n *forest.Node) {
		if strings.HasPrefix(n.GID, "dlgTableOK|") {
			okID = m.ID(n)
		}
		for _, c := range n.Children {
			find(c)
		}
	}
	find(m.Forest.Main)
	for _, sh := range m.Forest.Shared {
		find(sh)
	}
	if okID < 0 {
		t.Fatal("dialog OK not modeled")
	}
	res := s.Visit([]Command{Access(okID)})
	if !res.OK() {
		t.Fatalf("visit failed: %v", res.Err)
	}
	if !ta.applied {
		t.Fatal("dialog OK handler did not run")
	}
}

func TestSharedSubtreeNeedsEntryRef(t *testing.T) {
	ta := newTestApp()
	s, m := modelOf(t, ta.App, Options{})
	blue := m.FindLeafByName("Blue")
	if blue == nil || m.TreeOf(blue) == "" {
		t.Fatal("Blue should live in the externalized picker subtree")
	}
	res := s.Visit([]Command{Access(m.ID(blue))})
	if res.OK() || res.Err.Code != ErrNeedsEntryRef {
		t.Fatalf("expected needs-entry-ref, got %+v", res.Err)
	}
	if !strings.Contains(res.Err.Hint, "entry_ref_id") {
		t.Errorf("hint not actionable: %q", res.Err.Hint)
	}
}

func TestSharedSubtreePathSemantics(t *testing.T) {
	ta := newTestApp()
	s, m := modelOf(t, ta.App, Options{})
	blue := m.FindLeafByName("Blue")
	viaFont := refIDTo(t, m, blue, "Font Color")
	viaHL := refIDTo(t, m, blue, "Highlight")

	res := s.Visit([]Command{AccessRef(m.ID(blue), viaFont)})
	if !res.OK() {
		t.Fatalf("font path failed: %v", res.Err)
	}
	res = s.Visit([]Command{AccessRef(m.ID(blue), viaHL)})
	if !res.OK() {
		t.Fatalf("highlight path failed: %v", res.Err)
	}
	if len(ta.picks) != 2 || ta.picks[0] != "font=Blue" || ta.picks[1] != "hl=Blue" {
		t.Fatalf("path-dependent semantics broken: %v", ta.picks)
	}
}

func TestBadEntryRef(t *testing.T) {
	ta := newTestApp()
	s, m := modelOf(t, ta.App, Options{})
	blue := m.FindLeafByName("Blue")
	res := s.Visit([]Command{AccessRef(m.ID(blue), leafID(t, m, "Bold"))})
	if res.OK() || res.Err.Code != ErrBadEntryRef {
		t.Fatalf("expected bad-entry-ref, got %+v", res.Err)
	}
}

func TestNonLeafFiltering(t *testing.T) {
	ta := newTestApp()
	s, m := modelOf(t, ta.App, Options{})
	// Find the Font Color opener (navigation node) in the main tree.
	var opener *forest.Node
	m.Forest.Main.Walk(func(n *forest.Node) bool {
		if strings.HasPrefix(n.GID, "btnFontColor|") {
			opener = n
		}
		return true
	})
	if opener == nil || opener.IsLeaf() {
		t.Fatal("opener should be a navigation node")
	}
	cmds := []Command{
		Access(m.ID(opener)),         // navigation: filtered
		Shortcut("ENTER"),            // trailing shortcut: filtered with it
		Access(leafID(t, m, "Bold")), // functional: executed
	}
	res := s.Visit(cmds)
	if !res.OK() {
		t.Fatalf("visit failed: %v", res.Err)
	}
	if len(res.Filtered) != 2 || len(res.Executed) != 1 {
		t.Fatalf("filtered=%d executed=%d", len(res.Filtered), len(res.Executed))
	}
	if !ta.bold {
		t.Fatal("retained command did not run")
	}

	// Ablation: with filtering disabled the navigation command executes
	// (opening the picker) and the shortcut fires.
	ta2 := newTestApp()
	s2, m2 := modelOf(t, ta2.App, Options{DisableLeafFilter: true})
	var opener2 *forest.Node
	m2.Forest.Main.Walk(func(n *forest.Node) bool {
		if strings.HasPrefix(n.GID, "btnFontColor|") {
			opener2 = n
		}
		return true
	})
	res2 := s2.Visit([]Command{Access(m2.ID(opener2))})
	if !res2.OK() {
		t.Fatalf("unfiltered navigation visit failed: %v", res2.Err)
	}
	if ta2.OpenPopups() != 1 {
		t.Fatal("navigation click should have opened the picker")
	}
}

func TestAccessAndInputWithShortcut(t *testing.T) {
	ta := newTestApp()
	s, m := modelOf(t, ta.App, Options{})
	res := s.Visit([]Command{
		Input(leafID(t, m, "Name Box"), "Quarterly"),
		Shortcut("ENTER"),
	})
	if !res.OK() {
		t.Fatalf("visit failed: %v", res.Err)
	}
	if ta.saved != "Quarterly" {
		t.Fatalf("commit-on-enter broken: %q", ta.saved)
	}
}

func TestFurtherQueryExclusive(t *testing.T) {
	ta := newTestApp()
	s, m := modelOf(t, ta.App, Options{})
	res := s.Visit([]Command{FurtherQuery(-1), Access(leafID(t, m, "Bold"))})
	if res.OK() || res.Err.Code != ErrMixedQuery {
		t.Fatalf("mixed further_query accepted: %+v", res.Err)
	}
	res = s.Visit([]Command{FurtherQuery(-1)})
	if !res.OK() || !strings.Contains(res.QueryText, "main-tree:") {
		t.Fatal("full-forest query failed")
	}
	res = s.Visit([]Command{FurtherQuery(999999)})
	if res.OK() || res.Err.Code != ErrUnknownID {
		t.Fatal("bad further_query id accepted")
	}
}

func TestWindowClosePriority(t *testing.T) {
	ta := newTestApp()
	s, m := modelOf(t, ta.App, Options{})
	// Open the table dialog manually, then visit a main-window target:
	// the executor must close the dialog (OK preferred — saving
	// modifications) before reaching Bold.
	ta.ActivateTabByName("Insert")
	if err := ta.Desk.Click(ta.Win.FindByAutomationID("btnTable")); err != nil {
		t.Fatal(err)
	}
	if ta.OpenPopups() != 1 {
		t.Fatal("dialog not open")
	}
	res := s.Visit([]Command{Access(leafID(t, m, "Bold"))})
	if !res.OK() {
		t.Fatalf("visit failed: %v", res.Err)
	}
	if ta.OpenPopups() != 0 {
		t.Fatal("dialog not closed by navigation")
	}
	if !ta.applied {
		t.Fatal("close priority should pick OK first (saving modifications)")
	}
	if !ta.bold {
		t.Fatal("target not reached after closing window")
	}
}

func TestSlowLoadRetry(t *testing.T) {
	ta := newTestApp()
	s, m := modelOf(t, ta.App, Options{})
	blue := m.FindLeafByName("Blue")
	viaFont := refIDTo(t, m, blue, "Font Color")
	// Make the picker contents load lazily on every open.
	picker := ta.PopupTemplates()[0]
	picker.OnOpen = func(*appkit.App, any) {
		picker.Body.Walk(func(e *uia.Element) bool {
			if e != picker.Body {
				e.DeferVisibility(2)
			}
			return e == picker.Body
		})
	}
	res := s.Visit([]Command{AccessRef(m.ID(blue), viaFont)})
	if !res.OK() {
		t.Fatalf("retry did not absorb slow load: %v", res.Err)
	}
	if len(ta.picks) != 1 || ta.picks[0] != "font=Blue" {
		t.Fatalf("picks = %v", ta.picks)
	}

	// Ablation: without retries the same visit fails.
	ta2 := newTestApp()
	s2, m2 := modelOf(t, ta2.App, Options{DisableRetry: true})
	blue2 := m2.FindLeafByName("Blue")
	via2 := refIDTo(t, m2, blue2, "Font Color")
	picker2 := ta2.PopupTemplates()[0]
	picker2.OnOpen = func(*appkit.App, any) {
		picker2.Body.Walk(func(e *uia.Element) bool {
			if e != picker2.Body {
				e.DeferVisibility(3)
			}
			return e == picker2.Body
		})
	}
	res2 := s2.Visit([]Command{AccessRef(m2.ID(blue2), via2)})
	if res2.OK() {
		t.Fatal("visit should fail with retries disabled under slow load")
	}
}

func TestFuzzyMatchAbsorbsRename(t *testing.T) {
	ta := newTestApp()
	s, m := modelOf(t, ta.App, Options{})
	blue := m.FindLeafByName("Blue")
	viaFont := refIDTo(t, m, blue, "Font Color")
	// Rename the live control after modeling: exact ids no longer match.
	cell := ta.PopupTemplates()[0].Win.FindByName("Blue")
	cell.SetName("Blue.")
	res := s.Visit([]Command{AccessRef(m.ID(blue), viaFont)})
	if !res.OK() {
		t.Fatalf("fuzzy match failed: %v", res.Err)
	}
	// The renamed control still runs its original handler: the rename only
	// changed the accessible name.
	if len(ta.picks) != 1 || ta.picks[0] != "font=Blue" {
		t.Fatalf("picks = %v", ta.picks)
	}

	// Ablation: exact-only matching cannot find the renamed control.
	ta2 := newTestApp()
	s2, m2 := modelOf(t, ta2.App, Options{DisableFuzzy: true, Retries: 1})
	blue2 := m2.FindLeafByName("Blue")
	via2 := refIDTo(t, m2, blue2, "Font Color")
	ta2.PopupTemplates()[0].Win.FindByName("Blue").SetName("Blue.")
	res2 := s2.Visit([]Command{AccessRef(m2.ID(blue2), via2)})
	if res2.OK() {
		t.Fatal("exact matching should fail after rename")
	}
	if res2.Err.Code != ErrNotFound {
		t.Fatalf("err = %+v", res2.Err)
	}
}

func TestDisabledControlStructuredError(t *testing.T) {
	ta := newTestApp()
	s, m := modelOf(t, ta.App, Options{})
	res := s.Visit([]Command{Access(leafID(t, m, "Locked"))})
	if res.OK() || res.Err.Code != ErrDisabled {
		t.Fatalf("expected disabled error, got %+v", res.Err)
	}
	if res.Err.State != "disabled" {
		t.Errorf("state = %q", res.Err.State)
	}
}

func TestExecutionStopsAtFirstError(t *testing.T) {
	ta := newTestApp()
	s, m := modelOf(t, ta.App, Options{})
	res := s.Visit([]Command{
		Access(leafID(t, m, "Locked")), // fails
		Access(leafID(t, m, "Bold")),   // must not run
	})
	if res.OK() {
		t.Fatal("expected failure")
	}
	if ta.bold {
		t.Fatal("command after failure was executed")
	}
	if len(res.Executed) != 1 {
		t.Fatalf("executed = %d", len(res.Executed))
	}
}

func TestUnknownIDError(t *testing.T) {
	ta := newTestApp()
	s, _ := modelOf(t, ta.App, Options{})
	res := s.Visit([]Command{Access(424242)})
	if res.OK() || res.Err.Code != ErrUnknownID {
		t.Fatalf("unknown id accepted: %+v", res.Err)
	}
}

func TestParseCommands(t *testing.T) {
	raw := []byte(`[{"id": 4}, {"id": 7, "entry_ref_id": [2]}, {"id": 9, "text": "x"},
		{"shortcut_key": "ENTER"}, {"further_query": [-1]}]`)
	cmds, err := ParseCommands(raw)
	if err != nil {
		t.Fatal(err)
	}
	kinds := []Kind{KindAccess, KindAccess, KindInput, KindShortcut, KindFurtherQuery}
	for i, k := range kinds {
		if cmds[i].Kind() != k {
			t.Errorf("cmd %d kind = %v, want %v", i, cmds[i].Kind(), k)
		}
	}
	if _, err := ParseCommands([]byte("{not json")); err == nil {
		t.Error("malformed payload accepted")
	}
	bad := Command{ID: new(int), ShortcutKey: "ENTER"}
	if bad.Kind() != KindInvalid {
		t.Error("conflicting command fields not rejected")
	}
}

// State and observation interfaces ------------------------------------------

func TestSetScrollbarPos(t *testing.T) {
	ta := newTestApp()
	s, _ := modelOf(t, ta.App, Options{})
	lm := s.CaptureLabels()
	label := lm.Find("Vertical Scroll Bar", uia.ScrollBarControl)
	if label == "" {
		t.Fatal("scrollbar not labeled")
	}
	st, serr := s.SetScrollbarPos(lm, label, uia.NoScroll, 80)
	if serr != nil {
		t.Fatal(serr)
	}
	if st.V != 80 || ta.scroll != 80 {
		t.Fatalf("scroll = %v / %v", st.V, ta.scroll)
	}
	// Declarative: target state reached from any prior state.
	if _, serr = s.SetScrollbarPos(lm, label, uia.NoScroll, 10); serr != nil {
		t.Fatal(serr)
	}
	if ta.scroll != 10 {
		t.Fatal("second declaration not applied")
	}
	// Pattern validation.
	boldLabel := lm.Find("Bold", uia.ButtonControl)
	if _, serr = s.SetScrollbarPos(lm, boldLabel, 0, 0); serr == nil || serr.Code != ErrNoPattern {
		t.Fatalf("expected pattern error, got %+v", serr)
	}
}

func TestSelectLinesAndParagraphs(t *testing.T) {
	ta := newTestApp()
	s, _ := modelOf(t, ta.App, Options{})
	lm := s.CaptureLabels()
	doc := lm.Find("Document", uia.DocumentControl)
	if serr := s.SelectLines(lm, doc, 3, 4); serr != nil {
		t.Fatal(serr)
	}
	el := lm.Element(doc)
	tx := el.Pattern(uia.TextPattern).(*uia.SimpleText)
	if got := tx.SelectedText(); got != "l2 first\nl2 second" {
		t.Fatalf("selected %q", got)
	}
	if serr := s.SelectParagraphs(lm, doc, 3, 3); serr != nil {
		t.Fatal(serr)
	}
	if got := tx.SelectedText(); got != "l3" {
		t.Fatalf("selected %q", got)
	}
	serr := s.SelectLines(lm, doc, 90, 95)
	if serr == nil || serr.Code != ErrBadRange {
		t.Fatalf("bad range accepted: %+v", serr)
	}
	if !strings.Contains(serr.Hint, "lines") {
		t.Errorf("hint lacks structured status: %q", serr.Hint)
	}
}

func TestSelectControlsConservative(t *testing.T) {
	ta := newTestApp()
	s, _ := modelOf(t, ta.App, Options{})
	lm := s.CaptureLabels()
	one := lm.Find("Item One", uia.ListItemControl)
	three := lm.Find("Item Three", uia.ListItemControl)
	bold := lm.Find("Bold", uia.ButtonControl)

	if serr := s.SelectControls(lm, []string{one, three}); serr != nil {
		t.Fatal(serr)
	}
	lst := ta.Win.FindByAutomationID("lstItems")
	sel := lst.Pattern(uia.SelectionPattern).(uia.SelectionContainer)
	if got := sel.SelectedItems(lst); len(got) != 2 {
		t.Fatalf("selected %d items", len(got))
	}

	// One invalid target: nothing may execute (conservative).
	serr := s.SelectControls(lm, []string{one, bold})
	if serr == nil || serr.Code != ErrNoPattern {
		t.Fatalf("expected pattern error, got %+v", serr)
	}
	if got := sel.SelectedItems(lst); len(got) != 2 {
		t.Fatal("failed select_controls partially executed")
	}
	if serr := s.SelectControls(lm, nil); serr == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestToggleAndExpandedDeclarations(t *testing.T) {
	ta := newTestApp()
	s, _ := modelOf(t, ta.App, Options{})
	lm := s.CaptureLabels()
	bold := lm.Find("Bold", uia.ButtonControl)
	if serr := s.SetToggleState(lm, bold, true); serr != nil {
		t.Fatal(serr)
	}
	if !ta.bold {
		t.Fatal("toggle on failed")
	}
	// Idempotent: declaring "on" again must not flip it off.
	if serr := s.SetToggleState(lm, bold, true); serr != nil {
		t.Fatal(serr)
	}
	if !ta.bold {
		t.Fatal("idempotent set broke")
	}
	if serr := s.SetToggleState(lm, bold, false); serr != nil {
		t.Fatal(serr)
	}
	if ta.bold {
		t.Fatal("toggle off failed")
	}
}

func TestGetTextsActiveAndPassive(t *testing.T) {
	ta := newTestApp()
	s, _ := modelOf(t, ta.App, Options{})
	lm := s.CaptureLabels()

	long := lm.Find("R3", uia.DataItemControl)
	texts, serr := s.GetTexts(lm, []string{long})
	if serr != nil {
		t.Fatal(serr)
	}
	if texts[long] != "a very long cell value that overflows" {
		t.Fatalf("active get_texts truncated: %q", texts[long])
	}

	passive := s.PassiveTexts(lm, 10)
	if !strings.Contains(passive, "R1=alpha") {
		t.Errorf("passive texts missing value: %q", passive)
	}
	if strings.Contains(passive, "overflows") {
		t.Error("passive texts not truncated")
	}
	if !strings.Contains(passive, "2 empty data items omitted") {
		t.Errorf("empty items not coalesced: %q", passive)
	}

	if _, serr = s.GetTexts(lm, []string{"ZZZ"}); serr == nil || serr.Code != ErrUnknownLabel {
		t.Fatal("unknown label accepted")
	}
}

func TestLabelMap(t *testing.T) {
	ta := newTestApp()
	s, _ := modelOf(t, ta.App, Options{})
	lm := s.CaptureLabels()
	if lm.Len() == 0 {
		t.Fatal("no labels")
	}
	if lm.Element("a") == nil {
		t.Error("labels should be case-insensitive")
	}
	rendered := lm.Render(5)
	if !strings.Contains(rendered, "more controls") {
		t.Error("render limit not applied")
	}
	if got := alphaLabel(26); got != "AA" {
		t.Errorf("alphaLabel(26) = %q", got)
	}
	if got := alphaLabel(27); got != "AB" {
		t.Errorf("alphaLabel(27) = %q", got)
	}
	if !strings.Contains(lm.Render(0), "[disabled]") {
		t.Error("disabled state not rendered")
	}
}
