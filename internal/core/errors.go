package core

import "fmt"

// ErrorCode classifies structured execution errors fed back to the LLM for
// replanning (paper §3.4, "structured error feedback").
type ErrorCode string

// Error codes.
const (
	ErrInvalidCommand ErrorCode = "invalid-command"
	ErrUnknownID      ErrorCode = "unknown-id"
	ErrNeedsEntryRef  ErrorCode = "needs-entry-ref"
	ErrBadEntryRef    ErrorCode = "bad-entry-ref"
	ErrNotFound       ErrorCode = "control-not-found"
	ErrDisabled       ErrorCode = "control-disabled"
	ErrNoPattern      ErrorCode = "pattern-unsupported"
	ErrInputFailed    ErrorCode = "input-failed"
	ErrShortcutFailed ErrorCode = "shortcut-failed"
	ErrMixedQuery     ErrorCode = "further-query-not-exclusive"
	ErrUnknownLabel   ErrorCode = "unknown-label"
	ErrBadRange       ErrorCode = "bad-range"
)

// StepError is the structured error describing why a command failed,
// including control state and context so the caller can plan around it.
type StepError struct {
	Code    ErrorCode
	NodeID  int    // topology id involved (-1 when not applicable)
	Control string // control name or label
	State   string // observed control state ("disabled", "offscreen", ...)
	Hint    string // guidance for the planner
}

// Error implements the error interface.
func (e *StepError) Error() string {
	msg := fmt.Sprintf("dmi: %s", e.Code)
	if e.Control != "" {
		msg += fmt.Sprintf(" (%s)", e.Control)
	}
	if e.State != "" {
		msg += " state=" + e.State
	}
	if e.Hint != "" {
		msg += ": " + e.Hint
	}
	return msg
}

func stepErr(code ErrorCode, nodeID int, control, state, hint string) *StepError {
	return &StepError{Code: code, NodeID: nodeID, Control: control, State: state, Hint: hint}
}
