package core

import (
	"strings"
	"time"

	"repro/internal/appkit"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/strutil"
)

// Options tunes the DMI executor. The Disable* switches exist for the
// ablation benchmarks of the robustness mechanisms.
type Options struct {
	// Retries is how many extra observation rounds the navigator spends
	// waiting for slowly-loading controls before reporting failure
	// (default 3). Shortcut-key commands are never retried (§3.4).
	Retries int
	// FuzzyThreshold is the minimum similarity for the fuzzy control
	// matcher (default 0.62).
	FuzzyThreshold float64
	// MaxWindowCloses bounds how many windows navigation may close while
	// searching for the target's window (default 8).
	MaxWindowCloses int

	DisableLeafFilter bool // ablation: trust LLM navigation output verbatim
	DisableFuzzy      bool // ablation: exact identifier matching only
	DisableRetry      bool // ablation: fail on first missing control
}

func (o *Options) fill() {
	if o.Retries == 0 {
		o.Retries = 3
	}
	if o.FuzzyThreshold == 0 {
		o.FuzzyThreshold = 0.62
	}
	if o.MaxWindowCloses == 0 {
		o.MaxWindowCloses = 8
	}
}

// Session binds the DMI runtime to one application and its offline model.
//
// A Session is single-goroutine: it mutates its application and its Actions
// counter freely. The Model, however, is routinely shared between many
// concurrent sessions of the same application (the warm-model serving
// tier), so the session treats it as strictly read-only — every Model
// access below is a lookup on structures frozen at describe.NewModel time.
type Session struct {
	App   *appkit.App
	Model *describe.Model
	Opt   Options

	// Actions counts primitive UI operations performed through the
	// session (clicks, keystrokes, pattern calls) for the evaluation.
	Actions int
}

// NewSession creates a DMI session.
func NewSession(app *appkit.App, model *describe.Model, opt Options) *Session {
	opt.fill()
	return &Session{App: app, Model: model, Opt: opt}
}

// CoreTopology renders the default context payload: the depth-limited,
// large-enumeration-pruned core topology (paper §3.3).
func (s *Session) CoreTopology() string {
	return s.Model.Serialize(describe.CoreOptions())
}

// FullTopology renders the complete forest.
func (s *Session) FullTopology() string {
	return s.Model.Serialize(describe.FullOptions())
}

// gidParts splits a synthesized control identifier into its primary id,
// control type name, and ancestor path components.
func gidParts(gid string) (primary, ctype string, ancestors []string) {
	parts := strings.SplitN(gid, "|", 3)
	primary = parts[0]
	if len(parts) > 1 {
		ctype = parts[1]
	}
	if len(parts) > 2 && parts[2] != "" {
		ancestors = strings.Split(parts[2], "/")
	}
	return
}

// matchScore rates how well a live element matches a topology step,
// combining control type, name similarity, and ancestor overlap — the fuzzy
// matcher of §3.4.
func matchScore(step *forest.Node, elPrimary, elName string, elAncestors []string) float64 {
	primary, _, anc := gidParts(step.GID)
	nameSim := strutil.Similarity(primary, elPrimary)
	// The name channel only speaks when both sides have a name: two
	// unnamed controls are not thereby similar, and letting
	// Similarity("", "") = 1 override a low identifier similarity would
	// fuzzy-match any unnamed control to any unnamed step.
	if strutil.Normalize(step.Name) != "" && strutil.Normalize(elName) != "" {
		if s := strutil.Similarity(step.Name, elName); s > nameSim {
			nameSim = s
		}
	}
	overlap := ancestorOverlap(anc, elAncestors)
	return 0.7*nameSim + 0.3*overlap
}

func ancestorOverlap(a, b []string) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[string]bool, len(a))
	for _, x := range a {
		set[x] = true
	}
	hit := 0
	for _, y := range b {
		if set[y] {
			hit++
		}
	}
	max := len(a)
	if len(b) > max {
		max = len(b)
	}
	if max == 0 {
		return 1
	}
	return float64(hit) / float64(max)
}

// uiCost advances the simulated clock for bookkeeping of non-click
// operations performed by state/observation interfaces.
const uiCost = 50 * time.Millisecond
