package core

import (
	"strings"
	"time"

	"repro/internal/appkit"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/strutil"
	"repro/internal/uia"
)

// Options tunes the DMI executor. The Disable* switches exist for the
// ablation benchmarks of the robustness mechanisms.
type Options struct {
	// Retries is how many extra observation rounds the navigator spends
	// waiting for slowly-loading controls before reporting failure
	// (default 3). Shortcut-key commands are never retried (§3.4).
	Retries int
	// FuzzyThreshold is the minimum similarity for the fuzzy control
	// matcher (default 0.62).
	FuzzyThreshold float64
	// MaxWindowCloses bounds how many windows navigation may close while
	// searching for the target's window (default 8).
	MaxWindowCloses int

	DisableLeafFilter bool // ablation: trust LLM navigation output verbatim
	DisableFuzzy      bool // ablation: exact identifier matching only
	DisableRetry      bool // ablation: fail on first missing control
}

func (o *Options) fill() {
	if o.Retries == 0 {
		o.Retries = 3
	}
	if o.FuzzyThreshold == 0 {
		o.FuzzyThreshold = 0.62
	}
	if o.MaxWindowCloses == 0 {
		o.MaxWindowCloses = 8
	}
}

// Session binds the DMI runtime to one application and its offline model.
//
// A Session is single-goroutine: it mutates its application and its Actions
// counter freely. The Model, however, is routinely shared between many
// concurrent sessions of the same application (the warm-model serving
// tier), so the session treats it as strictly read-only — every Model
// access below is a lookup on structures frozen at describe.NewModel time.
type Session struct {
	App   *appkit.App
	Model *describe.Model
	Opt   Options

	// Actions counts primitive UI operations performed through the
	// session (clicks, keystrokes, pattern calls) for the evaluation.
	Actions int

	// Navigation scratch, reused across observation rounds. Safe as plain
	// fields because a Session is single-goroutine (see above); only the
	// Model is shared.
	scratchByGID map[string]*uia.Element
	scratchAnc   []string
}

// NewSession creates a DMI session.
func NewSession(app *appkit.App, model *describe.Model, opt Options) *Session {
	opt.fill()
	return &Session{App: app, Model: model, Opt: opt}
}

// CoreTopology returns the default context payload: the depth-limited,
// large-enumeration-pruned core topology (paper §3.3). The rendering is
// memoized on the shared model, so this is a field read, not a forest walk.
func (s *Session) CoreTopology() string {
	return s.Model.Core()
}

// FullTopology returns the complete forest rendering (memoized likewise).
func (s *Session) FullTopology() string {
	return s.Model.Full()
}

// gidCut splits a synthesized control identifier into its primary id,
// control type name, and the raw "a/b/c" ancestor path. Unlike a
// strings.Split it allocates nothing — it runs once per candidate element
// inside the fuzzy matcher's scoring loop.
func gidCut(gid string) (primary, ctype, ancPath string) {
	i := strings.IndexByte(gid, '|')
	if i < 0 {
		return gid, "", ""
	}
	primary, gid = gid[:i], gid[i+1:]
	j := strings.IndexByte(gid, '|')
	if j < 0 {
		return primary, gid, ""
	}
	return primary, gid[:j], gid[j+1:]
}

// gidParts splits a synthesized control identifier into its primary id,
// control type name, and ancestor path components.
func gidParts(gid string) (primary, ctype string, ancestors []string) {
	var ancPath string
	primary, ctype, ancPath = gidCut(gid)
	if ancPath != "" {
		ancestors = strings.Split(ancPath, "/")
	}
	return
}

// matchScore rates how well a live element matches a topology step,
// combining control type, name similarity, and ancestor overlap — the fuzzy
// matcher of §3.4.
func matchScore(step *forest.Node, elPrimary, elName string, elAncestors []string) float64 {
	primary, _, ancPath := gidCut(step.GID)
	nameSim := strutil.Similarity(primary, elPrimary)
	// The name channel only speaks when both sides have a name: two
	// unnamed controls are not thereby similar, and letting
	// Similarity("", "") = 1 override a low identifier similarity would
	// fuzzy-match any unnamed control to any unnamed step.
	if strutil.Normalize(step.Name) != "" && strutil.Normalize(elName) != "" {
		if s := strutil.Similarity(step.Name, elName); s > nameSim {
			nameSim = s
		}
	}
	overlap := ancestorOverlap(ancPath, elAncestors)
	return 0.7*nameSim + 0.3*overlap
}

// ancestorOverlap scores ancestor agreement between a step's raw "a/b/c"
// ancestor path and a live element's ancestor names:
// |path ∩ b| / max(|path|, |b|). It works on the undivided path so the
// scoring loop never materializes the step's components.
func ancestorOverlap(path string, b []string) float64 {
	segs := 0
	if path != "" {
		segs = 1 + strings.Count(path, "/")
	}
	hit := 0
	for _, y := range b {
		if pathHasSegment(path, y) {
			hit++
		}
	}
	max := segs
	if len(b) > max {
		max = len(b)
	}
	if max == 0 {
		return 1
	}
	return float64(hit) / float64(max)
}

// pathHasSegment reports whether y equals one "/"-separated segment of path.
func pathHasSegment(path, y string) bool {
	for path != "" {
		seg := path
		if i := strings.IndexByte(path, '/'); i >= 0 {
			seg, path = path[:i], path[i+1:]
		} else {
			path = ""
		}
		if seg == y {
			return true
		}
	}
	return false
}

// uiCost advances the simulated clock for bookkeeping of non-click
// operations performed by state/observation interfaces.
const uiCost = 50 * time.Millisecond
