package core

import (
	"fmt"
	"strings"

	"repro/internal/strutil"
	"repro/internal/uia"
)

// LabelMap assigns alphabetic labels ("A", "B", ..., "AA", ...) to the
// controls of the current screen's accessibility tree. State and
// observation interfaces operate on these labels only — static topology ids
// are explicitly prohibited there to keep visit and interaction interfaces
// separated (paper §3.5).
type LabelMap struct {
	order   []*uia.Element
	byLabel map[string]*uia.Element
	labels  map[*uia.Element]string
}

// CaptureLabels snapshots the desktop and labels every on-screen control in
// stacking/document order — the same labeling the GUI baseline puts in its
// prompt (§5.1: alphabetic labels, distinct from numeric topology ids).
func (s *Session) CaptureLabels() *LabelMap {
	lm := &LabelMap{
		byLabel: make(map[string]*uia.Element),
		labels:  make(map[*uia.Element]string),
	}
	for _, e := range s.App.Desk.Snapshot() {
		if e.Parent() == nil {
			continue // window roots are not controls
		}
		l := alphaLabel(len(lm.order))
		lm.order = append(lm.order, e)
		lm.byLabel[l] = e
		lm.labels[e] = l
	}
	return lm
}

// alphaLabel converts an index to an alphabetic label: 0→A, 25→Z, 26→AA.
func alphaLabel(i int) string {
	label := ""
	for {
		label = string(rune('A'+i%26)) + label
		i = i/26 - 1
		if i < 0 {
			break
		}
	}
	return label
}

// Element resolves a label, or nil.
func (m *LabelMap) Element(label string) *uia.Element {
	return m.byLabel[strings.ToUpper(strings.TrimSpace(label))]
}

// Label returns the label assigned to an element ("" if unlabeled).
func (m *LabelMap) Label(e *uia.Element) string { return m.labels[e] }

// Len returns the number of labeled controls.
func (m *LabelMap) Len() int { return len(m.order) }

// Find returns the label of the first control matching name and type, or
// "". Tests and task oracles use it; the planner reads labels from the
// rendered screen text.
func (m *LabelMap) Find(name string, t uia.ControlType) string {
	want := strutil.Normalize(name)
	for _, e := range m.order {
		if e.Type() == t && strutil.Normalize(e.Name()) == want {
			return m.labels[e]
		}
	}
	return ""
}

// Render produces the prompt text describing the labeled screen: one
// control per line, "label name(type)[state]". Long screens are the
// baseline's whole context; DMI uses this only for interaction-related
// interfaces.
func (m *LabelMap) Render(limit int) string {
	var b strings.Builder
	for i, e := range m.order {
		if limit > 0 && i >= limit {
			fmt.Fprintf(&b, "… %d more controls\n", len(m.order)-i)
			break
		}
		name := e.Name()
		if name == "" {
			name = "[Unnamed]"
		}
		fmt.Fprintf(&b, "%s %s(%s)", m.labels[e], name, e.Type())
		if !e.Enabled() {
			b.WriteString("[disabled]")
		}
		b.WriteByte('\n')
	}
	return b.String()
}
