package core

// Allocation-audit guards for the per-session hot path: the fast-path
// rewrites (memoized topologies, one-pass prompt costing, scratch reuse in
// the matcher) must stay behavior-identical to the straightforward
// implementations they replaced, and the benchmark pins what one executed
// command costs in allocations.

import (
	"fmt"
	"testing"

	"repro/internal/appkit"
	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/uia"
	"repro/internal/ung"
)

// TestPromptStatsMatchesCapture: the one-pass PromptStats must agree with
// the LabelMap it bypasses — same control count, byte-identical passive
// payload — including on screens past 26 controls where labels go
// multi-character.
func TestPromptStatsMatchesCapture(t *testing.T) {
	bigGrid := func() *Session {
		a := appkit.New("GridApp")
		grid := uia.NewElement("grdBig", "BigGrid", uia.DataGridControl)
		a.Window().Custom(grid)
		for i := 0; i < 30; i++ {
			it := uia.NewElement("", fmt.Sprintf("C%02d", i), uia.DataItemControl)
			it.SetPattern(uia.ValuePattern, uia.NewValue(fmt.Sprintf("v%d", i), nil))
			grid.AddChild(it)
		}
		a.Layout()
		return NewSession(a, nil, Options{})
	}
	for name, app := range map[string]func() *Session{
		"test-app": func() *Session { return NewSession(newTestApp().App, nil, Options{}) },
		"big-grid": bigGrid,
	} {
		t.Run(name, func(t *testing.T) {
			s := app()
			lm := s.CaptureLabels()
			wantPassive := s.PassiveTexts(lm, 24)
			n, passive := s.PromptStats(24)
			if n != lm.Len() {
				t.Errorf("PromptStats counted %d controls, CaptureLabels %d", n, lm.Len())
			}
			if passive != wantPassive {
				t.Errorf("passive payload diverged:\nPromptStats:\n%s\nPassiveTexts:\n%s", passive, wantPassive)
			}
		})
	}
}

// TestTopologySerializationsMemoized: the session accessors must return
// exactly what a live Serialize produces — memoization is a cache, not a
// variant rendering.
func TestTopologySerializationsMemoized(t *testing.T) {
	s, m := modelOf(t, newTestApp().App, Options{})
	if s.CoreTopology() != m.Serialize(describe.CoreOptions()) {
		t.Error("memoized core topology differs from a live Serialize")
	}
	if s.FullTopology() != m.Serialize(describe.FullOptions()) {
		t.Error("memoized full topology differs from a live Serialize")
	}
}

// TestAncestorOverlapPath pins the split-free overlap scoring against the
// set-based definition it replaced: |path ∩ b| / max(|path segments|, |b|).
func TestAncestorOverlapPath(t *testing.T) {
	cases := []struct {
		path string
		b    []string
		want float64
	}{
		{"", nil, 1},
		{"", []string{"Home"}, 0},
		{"Home", nil, 0},
		{"Home/Font", []string{"Home", "Font"}, 1},
		{"Home/Font", []string{"Font", "Home"}, 1},
		{"Home/Font", []string{"Home"}, 0.5},
		{"Home", []string{"Home", "Font", "Extra"}, 1.0 / 3},
		{"Home/Font", []string{"Insert", "Tables"}, 0},
		// Duplicates in the element chain each count (as the set version did).
		{"Home/Font", []string{"Home", "Home"}, 1},
		// Empty segments are real segments, matching the Split semantics.
		{"Home//Font", []string{"Home", "Font"}, 2.0 / 3},
	}
	for _, tc := range cases {
		if got := ancestorOverlap(tc.path, tc.b); got != tc.want {
			t.Errorf("ancestorOverlap(%q, %v) = %v, want %v", tc.path, tc.b, got, tc.want)
		}
	}
}

// TestGIDCutMatchesSplit: gidCut must agree with the SplitN/Split parsing
// gidParts wraps around it.
func TestGIDCutMatchesSplit(t *testing.T) {
	for _, gid := range []string{
		"btnSave|Button|Home/Font",
		"btnSave|Button|",
		"btnSave|Button",
		"btnSave",
		"",
		"a|b|c|d", // extra separators stay in the ancestor path
	} {
		primary, ctype, ancestors := gidParts(gid)
		p2, c2, path := gidCut(gid)
		if p2 != primary || c2 != ctype {
			t.Errorf("gidCut(%q) = (%q, %q), gidParts says (%q, %q)", gid, p2, c2, primary, ctype)
		}
		joined := ""
		for i, a := range ancestors {
			if i > 0 {
				joined += "/"
			}
			joined += a
		}
		if path != joined {
			t.Errorf("gidCut(%q) ancestor path %q, gidParts components join to %q", gid, path, joined)
		}
	}
}

// TestVisitAllocsBounded pins the steady-state allocation budget of one
// executed access command plus one prompt costing. The bound is deliberately
// loose (~2× measured) — it exists to catch a reintroduced per-round map or
// per-call serialization, not to fight the compiler over single allocations.
func TestVisitAllocsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation measurement")
	}
	app := newTestApp().App
	s, m := modelOf(t, app, Options{})
	id := leafID(t, m, "Bold")
	cmds := []Command{Access(id)}
	// Warm the scratch buffers before measuring.
	if res := s.Visit(cmds); !res.OK() {
		t.Fatal(res.Err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if res := s.Visit(cmds); !res.OK() {
			t.Fatal(res.Err)
		}
		if n, _ := s.PromptStats(24); n == 0 {
			t.Fatal("empty screen")
		}
	})
	const budget = 120
	if allocs > budget {
		t.Errorf("visit + prompt costing allocates %.0f objects/op, budget %d — a hot-path allocation crept back in", allocs, budget)
	}
}

// BenchmarkSession_PromptCosting measures the audited per-call costing path
// (one-pass PromptStats + memoized core topology). Its pre-audit
// counterpart below uses the general-purpose APIs the fast path bypasses;
// CI's bench-delta job runs both and reports the allocation ratio.
func BenchmarkSession_PromptCosting(b *testing.B) {
	s, _ := benchSession(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, passive := s.PromptStats(24)
		if n == 0 {
			b.Fatal("empty screen")
		}
		_ = passive
		_ = s.CoreTopology()
	}
}

// BenchmarkSession_PromptCostingNaive is the pre-audit equivalent: a full
// label capture, the passive payload off it, and a live topology
// serialization per call.
func BenchmarkSession_PromptCostingNaive(b *testing.B) {
	s, m := benchSession(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lm := s.CaptureLabels()
		if lm.Len() == 0 {
			b.Fatal("empty screen")
		}
		_ = s.PassiveTexts(lm, 24)
		_ = m.Serialize(describe.CoreOptions())
	}
}

func benchSession(b *testing.B) (*Session, *describe.Model) {
	b.Helper()
	g, _, err := ung.Rip(buildTestApp(), ung.Config{})
	if err != nil {
		b.Fatal(err)
	}
	f, _, err := forest.Transform(g, forest.Options{})
	if err != nil {
		b.Fatal(err)
	}
	m := describe.NewModel(f)
	return NewSession(newTestApp().App, m, Options{}), m
}

// BenchmarkSession_AllocsPerOp is the CI-tracked figure (BENCH_delta.json):
// one declarative access command executed end to end — path resolution,
// navigation, the deepest-visible match — plus the prompt costing that
// precedes every LLM call.
func BenchmarkSession_AllocsPerOp(b *testing.B) {
	s, m := benchSession(b)
	node := m.FindLeafByName("Bold")
	if node == nil {
		b.Fatal("Bold not in model")
	}
	cmds := []Command{Access(m.ID(node))}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := s.Visit(cmds); !res.OK() {
			b.Fatal(res.Err)
		}
		if n, _ := s.PromptStats(24); n == 0 {
			b.Fatal("empty screen")
		}
	}
}
