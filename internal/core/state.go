package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/strutil"
	"repro/internal/uia"
)

// This file implements the state and observation declarations (paper §3.5,
// Table 2). Each interface is built on a UIA control pattern, validates
// conservatively (no partial execution), and returns a structured status.

// ScrollStatus reports a scrollbar's position after a state declaration.
type ScrollStatus struct {
	H, V float64 // percentages; NoScroll (-1) for disabled axes
}

// SetScrollbarPos drives a Scroll-pattern control to the target percentages
// regardless of its current position — the declarative replacement for the
// iterative drag loop of Table 1, Task 2. Pass uia.NoScroll to leave an
// axis unchanged.
func (s *Session) SetScrollbarPos(lm *LabelMap, label string, h, v float64) (ScrollStatus, *StepError) {
	el, serr := s.resolveLabel(lm, label)
	if serr != nil {
		return ScrollStatus{}, serr
	}
	sc, ok := el.Pattern(uia.ScrollPattern).(uia.Scroller)
	if !ok {
		return ScrollStatus{}, s.noPattern(lm, el, "Scroll")
	}
	s.act()
	if err := sc.SetScrollPercent(el, h, v); err != nil {
		return ScrollStatus{}, stepErr(ErrBadRange, -1, el.Name(), "", err.Error())
	}
	ch, cv := sc.ScrollPercent(el)
	return ScrollStatus{H: ch, V: cv}, nil
}

// SelectLines selects one line or a contiguous line range (1-based,
// inclusive) of a Text-pattern control.
func (s *Session) SelectLines(lm *LabelMap, label string, start, end int) *StepError {
	el, serr := s.resolveLabel(lm, label)
	if serr != nil {
		return serr
	}
	tx, ok := el.Pattern(uia.TextPattern).(uia.Texter)
	if !ok {
		return s.noPattern(lm, el, "Text")
	}
	s.act()
	if err := tx.SelectLines(el, start, end); err != nil {
		return stepErr(ErrBadRange, -1, el.Name(), "",
			fmt.Sprintf("%v (control has %d lines)", err, tx.LineCount(el)))
	}
	return nil
}

// SelectParagraphs selects one paragraph or a contiguous paragraph range
// (1-based, inclusive) of a Text-pattern control.
func (s *Session) SelectParagraphs(lm *LabelMap, label string, start, end int) *StepError {
	el, serr := s.resolveLabel(lm, label)
	if serr != nil {
		return serr
	}
	tx, ok := el.Pattern(uia.TextPattern).(uia.Texter)
	if !ok {
		return s.noPattern(lm, el, "Text")
	}
	s.act()
	if err := tx.SelectParagraphs(el, start, end); err != nil {
		return stepErr(ErrBadRange, -1, el.Name(), "",
			fmt.Sprintf("%v (control has %d paragraphs)", err, tx.ParagraphCount(el)))
	}
	return nil
}

// SelectControls single- or multi-selects SelectionItem controls. All
// targets are validated before anything executes: if any control lacks the
// pattern, nothing is selected (§4.4, conservative execution).
func (s *Session) SelectControls(lm *LabelMap, labels []string) *StepError {
	if len(labels) == 0 {
		return stepErr(ErrBadRange, -1, "", "", "select_controls needs at least one label")
	}
	els := make([]*uia.Element, 0, len(labels))
	items := make([]uia.SelectionItem, 0, len(labels))
	for _, l := range labels {
		el, serr := s.resolveLabel(lm, l)
		if serr != nil {
			return serr
		}
		si, ok := el.Pattern(uia.SelectionItemPattern).(uia.SelectionItem)
		if !ok {
			return s.noPattern(lm, el, "SelectionItem")
		}
		els = append(els, el)
		items = append(items, si)
	}
	s.act()
	if err := items[0].Select(els[0]); err != nil {
		return stepErr(ErrBadRange, -1, els[0].Name(), "", err.Error())
	}
	for i := 1; i < len(els); i++ {
		s.act()
		if err := items[i].AddToSelection(els[i]); err != nil {
			return stepErr(ErrBadRange, -1, els[i].Name(), "", err.Error())
		}
	}
	return nil
}

// SetToggleState drives a Toggle-pattern control to the desired state
// idempotently: declaring "on" for an already-on control is a no-op rather
// than a toggle.
func (s *Session) SetToggleState(lm *LabelMap, label string, on bool) *StepError {
	el, serr := s.resolveLabel(lm, label)
	if serr != nil {
		return serr
	}
	tg, ok := el.Pattern(uia.TogglePattern).(uia.Toggler)
	if !ok {
		return s.noPattern(lm, el, "Toggle")
	}
	want := uia.ToggleOff
	if on {
		want = uia.ToggleOn
	}
	s.act()
	if err := tg.SetToggleState(el, want); err != nil {
		return stepErr(ErrBadRange, -1, el.Name(), "", err.Error())
	}
	return nil
}

// SetExpanded drives an ExpandCollapse-pattern control to the declared
// state.
func (s *Session) SetExpanded(lm *LabelMap, label string, expanded bool) *StepError {
	el, serr := s.resolveLabel(lm, label)
	if serr != nil {
		return serr
	}
	xc, ok := el.Pattern(uia.ExpandCollapsePattern).(uia.ExpandCollapser)
	if !ok {
		return s.noPattern(lm, el, "ExpandCollapse")
	}
	s.act()
	var err error
	if expanded {
		err = xc.Expand(el)
	} else {
		err = xc.Collapse(el)
	}
	if err != nil {
		return stepErr(ErrBadRange, -1, el.Name(), "", err.Error())
	}
	return nil
}

// SetTexts writes a Value-pattern control's content (builds on TextPattern
// and ValuePattern per Table 2's extensibility note).
func (s *Session) SetTexts(lm *LabelMap, label, text string) *StepError {
	el, serr := s.resolveLabel(lm, label)
	if serr != nil {
		return serr
	}
	v, ok := el.Pattern(uia.ValuePattern).(uia.Valuer)
	if !ok {
		return s.noPattern(lm, el, "Value")
	}
	s.act()
	if err := v.SetValue(el, text); err != nil {
		return stepErr(ErrInputFailed, -1, el.Name(), "", err.Error())
	}
	return nil
}

// GetTexts is the active observation mode: it retrieves the full textual
// content of the named controls through Text and Value patterns, without
// truncation (paper §3.5). Results are keyed by the labels exactly as the
// caller passed them, so callers can index the map with what they asked for
// regardless of casing or surrounding whitespace.
func (s *Session) GetTexts(lm *LabelMap, labels []string) (map[string]string, *StepError) {
	out := make(map[string]string, len(labels))
	for _, l := range labels {
		el, serr := s.resolveLabel(lm, l)
		if serr != nil {
			return nil, serr
		}
		text, ok := contentOf(el)
		if !ok {
			return nil, s.noPattern(lm, el, "Text or Value")
		}
		s.act()
		out[l] = text
	}
	return out, nil
}

// PassiveTexts is the passive observation mode invoked before each LLM
// call: every on-screen DataItem's value is collected, truncated to
// truncAt runes, and empty items are coalesced for brevity (paper §3.5,
// "supporting precise perception by default").
func (s *Session) PassiveTexts(lm *LabelMap, truncAt int) string {
	if truncAt <= 0 {
		truncAt = 24
	}
	var b strings.Builder
	empty := 0
	// Emit in capture order (lm.order): it is deterministic per capture and
	// keeps the rendered screen consistent with the labeling the LLM sees.
	// Sorting lines lexicographically by label would not — "AA" sorts
	// before "B" once a screen exceeds 26 controls.
	for _, e := range lm.order {
		if e.Type() != uia.DataItemControl {
			continue
		}
		text, ok := contentOf(e)
		if !ok {
			continue
		}
		if strings.TrimSpace(text) == "" {
			empty++
			continue
		}
		fmt.Fprintf(&b, "%s %s=%s\n",
			lm.labels[e], e.Name(), strutil.TruncateChars(text, truncAt))
	}
	if empty > 0 {
		fmt.Fprintf(&b, "(%d empty data items omitted)\n", empty)
	}
	return b.String()
}

// PromptStats walks the current screen once and returns the labeled-control
// count plus the passive DataItem payload — the two facts per-call prompt
// costing needs. The payload is byte-identical to
// PassiveTexts(CaptureLabels(), truncAt), but nothing beyond the rendered
// string is materialized: no LabelMap, no label/element maps. The prompt is
// costed before every LLM call, which made the full capture the executor's
// top allocation site.
func (s *Session) PromptStats(truncAt int) (controls int, passive string) {
	if truncAt <= 0 {
		truncAt = 24
	}
	var b strings.Builder
	empty := 0
	for _, e := range s.App.Desk.Snapshot() {
		if e.Parent() == nil {
			continue // window roots are not controls
		}
		i := controls
		controls++
		if e.Type() != uia.DataItemControl {
			continue
		}
		text, ok := contentOf(e)
		if !ok {
			continue
		}
		if strings.TrimSpace(text) == "" {
			empty++
			continue
		}
		fmt.Fprintf(&b, "%s %s=%s\n",
			alphaLabel(i), e.Name(), strutil.TruncateChars(text, truncAt))
	}
	if empty > 0 {
		fmt.Fprintf(&b, "(%d empty data items omitted)\n", empty)
	}
	return controls, b.String()
}

// resolveLabel maps a screen label to its element with structured errors.
func (s *Session) resolveLabel(lm *LabelMap, label string) (*uia.Element, *StepError) {
	if lm == nil {
		return nil, stepErr(ErrUnknownLabel, -1, label, "", "no screen capture available")
	}
	el := lm.Element(label)
	if el == nil {
		return nil, stepErr(ErrUnknownLabel, -1, label, "",
			"label not present on the current screen; labels are per-capture")
	}
	if !el.OnScreen() {
		return nil, stepErr(ErrNotFound, -1, el.Name(), "offscreen",
			"control left the screen since the capture")
	}
	return el, nil
}

func (s *Session) noPattern(lm *LabelMap, el *uia.Element, pattern string) *StepError {
	pats := el.PatternIDs()
	names := make([]string, 0, len(pats))
	for _, p := range pats {
		names = append(names, p.String())
	}
	sort.Strings(names)
	return stepErr(ErrNoPattern, -1, el.Name(), "supported="+strings.Join(names, "/"),
		"control does not support the "+pattern+" pattern")
}

func contentOf(e *uia.Element) (string, bool) {
	if v, ok := e.Pattern(uia.ValuePattern).(uia.Valuer); ok {
		return v.Value(e), true
	}
	if tx, ok := e.Pattern(uia.TextPattern).(uia.Texter); ok {
		return tx.Text(e), true
	}
	return "", false
}

func (s *Session) act() {
	s.Actions++
	s.App.Desk.Clock().Advance(uiCost)
}
