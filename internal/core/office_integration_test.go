package core

import (
	"strings"
	"testing"

	"repro/internal/describe"
	"repro/internal/forest"
	"repro/internal/office/excel"
	"repro/internal/office/slides"
	"repro/internal/office/word"
	"repro/internal/uia"
	"repro/internal/ung"
)

// officeSession rips a throwaway instance built by build, then binds the
// session to the live app.
func officeSession(t *testing.T, live *uia.Element, app interface{ Name() string }) {}

func makeWordSession(t *testing.T) (*word.App, *Session, *describe.Model) {
	t.Helper()
	g, _, err := ung.Rip(word.New().App, ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := forest.Transform(g, forest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := describe.NewModel(f)
	w := word.New()
	return w, NewSession(w.App, m, Options{}), m
}

func TestWordOrientationViaDMI(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale integration")
	}
	w, s, m := makeWordSession(t)
	landscape := m.FindLeafByName("Landscape")
	if landscape == nil {
		t.Fatal("Landscape not modeled")
	}
	res := s.Visit([]Command{Access(m.ID(landscape))})
	if !res.OK() {
		t.Fatalf("visit failed: %v", res.Err)
	}
	if w.Doc.Orientation != "Landscape" {
		t.Fatalf("orientation = %q", w.Doc.Orientation)
	}
}

func TestWordFontColorPathSemanticsViaDMI(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale integration")
	}
	w, s, m := makeWordSession(t)
	// NOTE: m.FindLeafByName("Blue") would find Design → Colors → "Blue"
	// (a theme color set) in the main tree — the generic-name ambiguity of
	// §3.3. The picker's standard-colors Blue lives in the externalized
	// picker subtree.
	var blue *forest.Node
	for _, id := range m.Forest.SharedOrder {
		m.Forest.Shared[id].Walk(func(n *forest.Node) bool {
			if blue == nil && n.IsLeaf() && n.Name == "Blue" &&
				strings.Contains(n.GID, "clrPickerStd") {
				blue = n
			}
			return true
		})
	}
	if blue == nil {
		t.Fatal("picker Blue cell not in any shared subtree")
	}
	tree := m.TreeOf(blue)
	if tree == "" {
		t.Fatal("picker not externalized as shared subtree")
	}
	// Pick the entry reference that routes through the Font Color opener.
	var viaFont, viaUnderline int
	for _, r := range m.RefsTo(tree) {
		for _, anc := range r.PathFromRoot() {
			if strings.HasPrefix(anc.GID, "btnFontColor|") {
				viaFont = m.ID(r)
			}
			if strings.HasPrefix(anc.GID, "btnUnderlineColor|") {
				viaUnderline = m.ID(r)
			}
		}
	}
	if viaFont == 0 || viaUnderline == 0 {
		t.Fatalf("entry refs not found (font=%d underline=%d)", viaFont, viaUnderline)
	}

	// One declarative call: select paragraphs via state declaration, then
	// two accesses through different entry references.
	lm := s.CaptureLabels()
	doc := lm.Find("Document", uia.DocumentControl)
	if serr := s.SelectParagraphs(lm, doc, 1, 2); serr != nil {
		t.Fatal(serr)
	}
	res := s.Visit([]Command{AccessRef(m.ID(blue), viaFont)})
	if !res.OK() {
		t.Fatalf("font-color visit failed: %v", res.Err)
	}
	if w.Doc.Paras[0].FontColor != "Blue" || w.Doc.Paras[1].FontColor != "Blue" {
		t.Fatal("font color not applied to selection")
	}

	w.Doc.SelectParas(1, 1)
	res = s.Visit([]Command{AccessRef(m.ID(blue), viaUnderline)})
	if !res.OK() {
		t.Fatalf("underline-color visit failed: %v", res.Err)
	}
	if w.Doc.Paras[0].UnderlineColor != "Blue" {
		t.Fatal("underline path semantics broken")
	}
}

func TestSlidesTable1Task1ViaDMI(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale integration")
	}
	// The paper's headline example (Table 1, Task 1): make the background
	// blue on all slides with a single declarative call:
	// visit(["Blue", "Apply to All"]).
	g, _, err := ung.Rip(slides.New(12).App, ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := forest.Transform(g, forest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := describe.NewModel(f)
	p := slides.New(12)
	s := NewSession(p.App, m, Options{})

	// "Blue" is a generic name (the Set Up Show pen-color list has one
	// too); target the picker's standard-colors cell specifically.
	var blue *forest.Node
	lookFor := func(tree *forest.Node) {
		tree.Walk(func(n *forest.Node) bool {
			if blue == nil && n.IsLeaf() && n.Name == "Blue" &&
				strings.Contains(n.GID, "clrPickerStd") {
				blue = n
			}
			return true
		})
	}
	lookFor(m.Forest.Main)
	for _, id := range m.Forest.SharedOrder {
		lookFor(m.Forest.Shared[id])
	}
	applyAll := m.FindLeafByName("Apply to All")
	if blue == nil || applyAll == nil {
		t.Fatal("targets not modeled")
	}
	cmds := []Command{Access(m.ID(blue)), Access(m.ID(applyAll))}
	if tree := m.TreeOf(blue); tree != "" {
		// Route through the Format Background pane's Fill Color opener.
		for _, r := range m.RefsTo(tree) {
			for _, anc := range r.PathFromRoot() {
				if strings.HasPrefix(anc.GID, "btnFillColor|") {
					cmds[0] = AccessRef(m.ID(blue), m.ID(r))
				}
			}
		}
	}
	res := s.Visit(cmds)
	if !res.OK() {
		t.Fatalf("Table 1 Task 1 visit failed: %v", res.Err)
	}
	if !p.Deck.AllBackgrounds("Blue") {
		t.Fatal("backgrounds not applied to all slides")
	}
}

func TestSlidesTable1Task2ViaDMI(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale integration")
	}
	// Table 1, Task 2: show the area close to the end —
	// set_scrollbar_pos(80%) instead of an iterative drag loop.
	p := slides.New(12)
	g, _, err := ung.Rip(slides.New(12).App, ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := forest.Transform(g, forest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(p.App, describe.NewModel(f), Options{})

	lm := s.CaptureLabels()
	sb := lm.Find("Slides Vertical Scroll Bar", uia.ScrollBarControl)
	if sb == "" {
		t.Fatal("scrollbar not labeled")
	}
	st, serr := s.SetScrollbarPos(lm, sb, uia.NoScroll, 80)
	if serr != nil {
		t.Fatal(serr)
	}
	if st.V != 80 {
		t.Fatalf("scroll status = %v", st)
	}
	if p.Thumb(10) == nil || !p.Thumb(10).OnScreen() {
		t.Fatal("end-of-deck slides not revealed")
	}
}

func TestExcelPassiveAndActiveObservation(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale integration")
	}
	g, _, err := ung.Rip(excel.New().App, ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := forest.Transform(g, forest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	x := excel.New()
	x.Sheet.SetValue("C2", "a very long cell value that is cut off on screen")
	s := NewSession(x.App, describe.NewModel(f), Options{})

	lm := s.CaptureLabels()
	passive := s.PassiveTexts(lm, 16)
	if !strings.Contains(passive, "B2=120") {
		t.Errorf("passive texts missing cell: %q", passive)
	}
	if strings.Contains(passive, "cut off on screen") {
		t.Error("passive texts not truncated")
	}
	label := lm.Find("C2", uia.DataItemControl)
	texts, serr := s.GetTexts(lm, []string{label})
	if serr != nil {
		t.Fatal(serr)
	}
	if texts[label] != "a very long cell value that is cut off on screen" {
		t.Errorf("active read truncated: %q", texts[label])
	}
}

func TestExcelNameBoxCommitViaDMI(t *testing.T) {
	if testing.Short() {
		t.Skip("office-scale integration")
	}
	g, _, err := ung.Rip(excel.New().App, ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	f, _, err := forest.Transform(g, forest.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m := describe.NewModel(f)
	x := excel.New()
	s := NewSession(x.App, m, Options{})

	nameBox := m.FindLeafByName("Name Box")
	if nameBox == nil {
		t.Fatal("Name Box not modeled")
	}
	res := s.Visit([]Command{
		Input(m.ID(nameBox), "B25"),
		Shortcut("ENTER"),
	})
	if !res.OK() {
		t.Fatalf("visit failed: %v", res.Err)
	}
	if x.Sheet.ActiveCell != "B25" {
		t.Fatalf("active cell = %q", x.Sheet.ActiveCell)
	}
}
