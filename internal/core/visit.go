package core

import (
	"fmt"
	"strings"

	"repro/internal/forest"
	"repro/internal/uia"
)

// CommandResult reports the outcome of one executed visit command.
type CommandResult struct {
	Cmd    Command
	Target string // resolved control name
	Clicks int    // primitive UI actions spent
	Err    *StepError
}

// VisitResult is the structured feedback of one visit call.
type VisitResult struct {
	Executed []CommandResult
	// Filtered lists commands dropped by non-leaf filtering (§3.4): the
	// executor takes over navigation, so navigation-node targets and
	// their trailing shortcuts are removed rather than failed.
	Filtered []Command
	// QueryText carries the further_query expansion when requested.
	QueryText string
	// Err is the first execution error; commands after it did not run
	// (§3.4: unexpected intermediate outcomes would invalidate them).
	Err *StepError
}

// OK reports whether every retained command executed successfully.
func (r *VisitResult) OK() bool { return r.Err == nil }

// Visit executes a batch of declarative commands sequentially (paper §3.4).
// further_query commands are exclusive; navigation-node targets are
// filtered out; execution stops at the first failure with structured error
// feedback.
func (s *Session) Visit(cmds []Command) *VisitResult {
	res := &VisitResult{}

	// further_query is exclusive.
	hasQuery := false
	for _, c := range cmds {
		if c.Kind() == KindFurtherQuery {
			hasQuery = true
		}
	}
	if hasQuery {
		if len(cmds) != 1 {
			res.Err = stepErr(ErrMixedQuery, -1, "", "",
				"further_query cannot be mixed with other commands in one call")
			return res
		}
		text, err := s.furtherQuery(cmds[0].FurtherQuery)
		if err != nil {
			res.Err = err
			return res
		}
		res.QueryText = text
		return res
	}

	retained := s.filterNonLeaf(cmds, res)

	for _, c := range retained {
		cr := s.execute(c)
		res.Executed = append(res.Executed, cr)
		if cr.Err != nil {
			res.Err = cr.Err
			return res
		}
	}
	return res
}

// furtherQuery renders the requested expansions: -1 yields the complete
// forest; otherwise each node's full substructure (§3.3 query on demand).
func (s *Session) furtherQuery(ids []int) (string, *StepError) {
	if len(ids) == 1 && ids[0] == -1 {
		return s.FullTopology(), nil
	}
	var b strings.Builder
	for _, id := range ids {
		text, err := s.Model.SerializeSubtree(id)
		if err != nil {
			return "", stepErr(ErrUnknownID, id, "", "",
				"further_query target does not exist in the topology")
		}
		b.WriteString(text)
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// filterNonLeaf drops commands that target navigation (non-leaf) nodes,
// along with any shortcut commands that immediately follow them (§3.4):
// functional nodes are topology leaves; DMI owns the navigation process.
func (s *Session) filterNonLeaf(cmds []Command, res *VisitResult) []Command {
	if s.Opt.DisableLeafFilter {
		return cmds
	}
	var retained []Command
	dropping := false
	for _, c := range cmds {
		switch c.Kind() {
		case KindAccess, KindInput:
			n := s.Model.Node(*c.ID)
			if n != nil && !n.IsLeaf() {
				res.Filtered = append(res.Filtered, c)
				dropping = true
				continue
			}
			dropping = false
			retained = append(retained, c)
		case KindShortcut:
			if dropping {
				res.Filtered = append(res.Filtered, c)
				continue
			}
			retained = append(retained, c)
		default:
			dropping = false
			retained = append(retained, c)
		}
	}
	return retained
}

// execute runs a single retained command.
func (s *Session) execute(c Command) CommandResult {
	cr := CommandResult{Cmd: c}
	switch c.Kind() {
	case KindShortcut:
		s.Actions++
		if err := s.App.Desk.PressKey(c.ShortcutKey); err != nil {
			// Shortcuts are never retried: repeating them can have side
			// effects (§3.4).
			cr.Err = stepErr(ErrShortcutFailed, -1, c.ShortcutKey, "", err.Error())
		}
		return cr
	case KindAccess, KindInput:
		target := s.Model.Node(*c.ID)
		if target == nil {
			cr.Err = stepErr(ErrUnknownID, *c.ID, "", "",
				"no control with this id; use further_query to expand the topology")
			return cr
		}
		cr.Target = target.Name
		steps, serr := s.resolvePath(target, c.EntryRefIDs)
		if serr != nil {
			cr.Err = serr
			return cr
		}
		el, clicks, serr := s.navigate(steps, *c.ID)
		cr.Clicks += clicks
		if serr != nil {
			cr.Err = serr
			return cr
		}
		if c.Kind() == KindInput {
			s.App.Desk.SetFocus(el)
			s.Actions++
			if err := s.App.Desk.TypeText(c.Text); err != nil {
				cr.Err = stepErr(ErrInputFailed, *c.ID, target.Name, "", err.Error())
				return cr
			}
		}
		return cr
	default:
		cr.Err = stepErr(ErrInvalidCommand, -1, "", "", "unrecognized command shape")
		return cr
	}
}

// resolvePath maps a target node (plus entry references for shared-subtree
// targets) to the unique root-to-target chain of topology steps. The
// virtual root and each subtree root are skipped: the former is not a
// control, the latter is covered by its reference node.
func (s *Session) resolvePath(target *forest.Node, entryRefs []int) ([]*forest.Node, *StepError) {
	targetTree := s.Model.TreeOf(target)

	var steps []*forest.Node
	expectedTree := ""
	for _, refID := range entryRefs {
		ref := s.Model.Node(refID)
		if ref == nil || !ref.IsRef() {
			return nil, stepErr(ErrBadEntryRef, refID, "", "",
				"entry_ref_id must name a reference node")
		}
		if s.Model.TreeOf(ref) != expectedTree {
			return nil, stepErr(ErrBadEntryRef, refID, ref.Name, "",
				"entry references must chain from the main tree toward the target")
		}
		steps = append(steps, ref.PathFromRoot()[1:]...)
		expectedTree = ref.RefTarget
	}
	if expectedTree != targetTree {
		if targetTree == "" {
			return nil, stepErr(ErrBadEntryRef, s.Model.ID(target), target.Name, "",
				"target is in the main tree; no entry references apply")
		}
		hint := "target lies in a shared subtree; pass entry_ref_id"
		if refs := s.Model.RefsTo(targetTree); len(refs) > 0 {
			ids := make([]string, 0, len(refs))
			for _, r := range refs {
				ids = append(ids, fmt.Sprint(s.Model.ID(r)))
			}
			hint += " (one of: " + strings.Join(ids, ", ") + ")"
		}
		return nil, stepErr(ErrNeedsEntryRef, s.Model.ID(target), target.Name, "", hint)
	}
	steps = append(steps, target.PathFromRoot()[1:]...)
	if len(steps) == 0 {
		return nil, stepErr(ErrUnknownID, s.Model.ID(target), target.Name, "",
			"cannot navigate to the topology root")
	}
	return steps, nil
}

// navigate re-establishes the target on screen and clicks it (§4.3). Each
// round it fetches the topmost window, matches the step chain from the end
// backward against the visible hierarchy, and proceeds forward from the
// deepest visible step; windows containing no remaining step are closed
// with priority OK > Close > Cancel. Missing controls are retried to absorb
// slow loading; name drift is absorbed by the fuzzy matcher.
func (s *Session) navigate(steps []*forest.Node, nodeID int) (*uia.Element, int, *StepError) {
	clicks := 0
	closes := 0
	retries := s.Opt.Retries
	if s.Opt.DisableRetry {
		retries = 0
	}
	lastProgress := -1

	limit := len(steps) + s.Opt.MaxWindowCloses + retries + 8
	for iter := 0; iter < limit; iter++ {
		win := s.App.Desk.TopWindow()
		if win == nil {
			return nil, clicks, stepErr(ErrNotFound, nodeID, "", "no-window",
				"no window is open")
		}
		snap := s.App.Desk.SnapshotWindow(win)

		// Backward match: deepest step visible in the top window.
		idx, el := s.deepestVisible(steps, snap)
		if idx < 0 {
			if s.isMainWindow(win) {
				if retries > 0 {
					retries--
					continue // slow load: re-observe
				}
				last := steps[len(steps)-1]
				return nil, clicks, stepErr(ErrNotFound, nodeID, last.Name, "offscreen",
					"no step of the navigation path is visible; the control may require an application context")
			}
			if closes >= s.Opt.MaxWindowCloses {
				return nil, clicks, stepErr(ErrNotFound, nodeID, win.Name(), "blocked",
					"window close limit reached while searching for the target")
			}
			clicks += s.closeTopWindow(win, snap)
			closes++
			continue
		}

		if !el.Enabled() {
			return nil, clicks, stepErr(ErrDisabled, nodeID, steps[idx].Name, "disabled",
				"control located but disabled in the current state")
		}

		if idx == len(steps)-1 {
			s.Actions++
			if err := s.App.Desk.Click(el); err != nil {
				return nil, clicks, stepErr(ErrNotFound, nodeID, steps[idx].Name,
					"click-failed", err.Error())
			}
			clicks++
			return el, clicks, nil
		}

		// Progress guard: re-clicking the same intermediate step burns a
		// retry (covers toggling navigators and slowly-loading content).
		if idx <= lastProgress {
			if retries <= 0 {
				return nil, clicks, stepErr(ErrNotFound, nodeID, steps[idx+1].Name,
					"offscreen", "navigation stalled: the next step never appeared")
			}
			retries--
			continue
		}
		lastProgress = idx
		s.Actions++
		if err := s.App.Desk.Click(el); err != nil {
			return nil, clicks, stepErr(ErrNotFound, nodeID, steps[idx].Name,
				"click-failed", err.Error())
		}
		clicks++
	}
	return nil, clicks, stepErr(ErrNotFound, nodeID, steps[len(steps)-1].Name, "offscreen",
		"navigation did not converge")
}

// deepestVisible returns the largest step index resolvable in the snapshot,
// with exact identifier matching first and fuzzy matching as fallback. The
// index map is session scratch: navigate calls this every observation round,
// so the map is cleared and refilled rather than reallocated.
func (s *Session) deepestVisible(steps []*forest.Node, snap []*uia.Element) (int, *uia.Element) {
	byGID := s.scratchByGID
	if byGID == nil {
		byGID = make(map[string]*uia.Element, len(snap))
		s.scratchByGID = byGID
	} else {
		clear(byGID)
	}
	for _, e := range snap {
		if e.Parent() == nil {
			continue
		}
		id := e.ControlID()
		if _, dup := byGID[id]; !dup {
			byGID[id] = e
		}
	}
	for i := len(steps) - 1; i >= 0; i-- {
		if el, ok := byGID[steps[i].GID]; ok {
			return i, el
		}
		if s.Opt.DisableFuzzy {
			continue
		}
		if el := s.fuzzyFind(steps[i], snap); el != nil {
			return i, el
		}
	}
	return -1, nil
}

// fuzzyFind locates the best fuzzy match for a step among on-screen
// elements of the same control type (§3.4: control type + ancestor
// hierarchy + name similarity). Container controls are exempt: sibling
// containers (the Home vs Insert tab panels) score deceptively high on
// ancestor overlap, and renames only afflict interactive controls.
func (s *Session) fuzzyFind(step *forest.Node, snap []*uia.Element) *uia.Element {
	if !fuzzyEligible(step.Type) {
		return nil
	}
	var best *uia.Element
	bestScore := s.Opt.FuzzyThreshold
	anc := s.scratchAnc
	for _, e := range snap {
		if e.Parent() == nil || e.Type() != step.Type {
			continue
		}
		anc = anc[:0] // per-element scratch: matchScore only reads it
		for cur := e.Parent(); cur != nil && cur.Parent() != nil; cur = cur.Parent() {
			anc = append(anc, primaryOf(cur))
		}
		score := matchScore(step, primaryOf(e), e.Name(), anc)
		if score > bestScore {
			bestScore = score
			best = e
		}
	}
	s.scratchAnc = anc
	return best
}

// fuzzyEligible reports whether controls of this type participate in fuzzy
// matching.
func fuzzyEligible(t uia.ControlType) bool {
	switch t {
	case uia.PaneControl, uia.GroupControl, uia.TabControl, uia.ListControl,
		uia.MenuControl, uia.MenuBarControl, uia.ToolBarControl,
		uia.TreeControl, uia.DataGridControl, uia.TableControl,
		uia.WindowControl, uia.HeaderControl, uia.TitleBarControl,
		uia.StatusBarControl, uia.DocumentControl:
		return false
	}
	return true
}

func primaryOf(e *uia.Element) string {
	if e.AutomationID() != "" {
		return e.AutomationID()
	}
	if e.Name() != "" {
		return e.Name()
	}
	return "[Unnamed]"
}

func (s *Session) isMainWindow(win *uia.Element) bool {
	ws := s.App.Desk.Windows()
	return len(ws) > 0 && ws[0] == win
}

// closeTopWindow dismisses a window that contains no remaining navigation
// step, favouring the saving of modifications: OK > Close > Cancel, with
// Esc as the final fallback (§4.3). It returns the number of primitive UI
// actions it spent (button clicks plus the possible Esc), so callers can
// account every action — a single close can cost up to four.
func (s *Session) closeTopWindow(win *uia.Element, snap []*uia.Element) int {
	acted := 0
	for _, name := range []string{"OK", "Close", "Cancel"} {
		for _, e := range snap {
			if e.Type() == uia.ButtonControl && e.Name() == name && e.Enabled() {
				s.Actions++
				acted++
				if err := s.App.Desk.Click(e); err == nil {
					if !s.App.Desk.IsOpen(win) {
						return acted
					}
				}
				break
			}
		}
		if !s.App.Desk.IsOpen(win) {
			return acted
		}
	}
	s.Actions++
	acted++
	_ = s.App.Desk.PressKey("ESC")
	return acted
}
