package core

// Regression tests for executor correctness fixes: passive-observation
// ordering, active-observation result keying, and primitive-action
// accounting during window-closing navigation.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/appkit"
	"repro/internal/forest"
	"repro/internal/uia"
)

// TestPassiveTextsEmitsCaptureOrder: the passive payload must list data
// items in capture order. Sorting the rendered lines lexicographically by
// label diverges once a screen exceeds 26 controls ("AA" sorts before "B"),
// making the prompt order disagree with the labeling the LLM sees.
func TestPassiveTextsEmitsCaptureOrder(t *testing.T) {
	a := appkit.New("GridApp")
	grid := uia.NewElement("grdBig", "BigGrid", uia.DataGridControl)
	a.Window().Custom(grid)
	for i := 0; i < 30; i++ {
		it := uia.NewElement("", fmt.Sprintf("C%02d", i), uia.DataItemControl)
		it.SetPattern(uia.ValuePattern, uia.NewValue(fmt.Sprintf("v%d", i), nil))
		grid.AddChild(it)
	}
	a.Layout()

	s := NewSession(a, nil, Options{})
	lm := s.CaptureLabels()

	var want []string
	for _, e := range lm.order {
		if e.Type() != uia.DataItemControl {
			continue
		}
		v, _ := e.Pattern(uia.ValuePattern).(uia.Valuer)
		want = append(want, fmt.Sprintf("%s %s=%s", lm.labels[e], e.Name(), v.Value(e)))
	}
	if len(want) != 30 {
		t.Fatalf("expected 30 data items on screen, got %d", len(want))
	}
	// The fixture must actually exercise the divergence: with >26 labeled
	// controls, capture order and lexicographic label order disagree.
	sorted := append([]string(nil), want...)
	sort.Strings(sorted)
	if strings.Join(sorted, "\n") == strings.Join(want, "\n") {
		t.Fatal("fixture too small: lexicographic order equals capture order")
	}

	got := s.PassiveTexts(lm, 24)
	if got != strings.Join(want, "\n")+"\n" {
		t.Errorf("passive texts not in capture order:\ngot:\n%swant:\n%s",
			got, strings.Join(want, "\n")+"\n")
	}
}

// TestGetTextsKeyedByCallerLabel: callers index the result with the label
// they passed; keying by the normalized (upper-cased, trimmed) label loses
// lookups for any caller that passes a lower-case or padded label.
func TestGetTextsKeyedByCallerLabel(t *testing.T) {
	ta := newTestApp()
	s, _ := modelOf(t, ta.App, Options{})
	lm := s.CaptureLabels()

	canonical := lm.Find("R1", uia.DataItemControl)
	if canonical == "" {
		t.Fatal("R1 not labeled")
	}
	passed := " " + strings.ToLower(canonical) + " "
	texts, serr := s.GetTexts(lm, []string{passed})
	if serr != nil {
		t.Fatal(serr)
	}
	if texts[passed] != "alpha" {
		t.Errorf("result not keyed by the caller's label %q: %v", passed, texts)
	}
	if len(texts) != 1 {
		t.Errorf("expected exactly one entry, got %v", texts)
	}
}

// TestMatchScoreIgnoresEmptyNames: the fuzzy matcher's name channel must
// stay silent when either side has no name — Similarity("", "") is 1 (they
// are equal strings), which would otherwise override a low identifier
// similarity and perfectly name-match any unnamed control to any unnamed
// step.
func TestMatchScoreIgnoresEmptyNames(t *testing.T) {
	step := &forest.Node{GID: "btnSave|Button|Home/Font", Name: ""}
	withNames := matchScore(step, "txtInput", "", []string{"Home", "Font"})
	// Identifier similarity for btnSave vs txtInput is low; with full
	// ancestor overlap the score must stay under the default fuzzy
	// threshold instead of being lifted to 0.7×1 + 0.3×1 = 1.
	var def Options
	def.fill()
	if withNames >= def.FuzzyThreshold {
		t.Errorf("score %v for unrelated unnamed controls reaches the fuzzy threshold %v",
			withNames, def.FuzzyThreshold)
	}
	// A genuine name match must still win.
	named := &forest.Node{GID: "btnSave|Button|Home/Font", Name: "Save As"}
	if s := matchScore(named, "generated-id", "Save  as", []string{"Home", "Font"}); s < def.FuzzyThreshold {
		t.Errorf("matching names scored %v, below threshold %v", s, def.FuzzyThreshold)
	}
}

// stubbornApp has a dialog whose OK button does nothing (the dialog stays
// open), so closing it during navigation costs two primitive actions: the
// useless OK click plus the title-bar Close click.
func stubbornApp() *appkit.App {
	a := appkit.New("StubApp")
	home := a.Tab("tabHome", "Home")
	home.Group("grpMain", "Main").Button("btnGo", "Go", nil)

	dlg := a.NewDialog("dlgStub", "Stubborn")
	dlg.Panel().Button("dlgStubOK", "OK", nil) // does not close the dialog
	ins := a.Tab("tabIns", "Insert")
	ins.Group("grpDlg", "Dialogs").DialogButton("btnStub", "Stub", dlg, nil)
	a.Layout()
	return a
}

// TestWindowCloseActionAccounting: closeTopWindow can spend several
// primitive actions (OK/Close/Cancel clicks, Esc); every one of them must
// show up in the command's Clicks, not a flat 1 per closed window. The
// invariant checked is exact: for a pure access command, the reported
// Clicks equal the session's primitive-action counter.
func TestWindowCloseActionAccounting(t *testing.T) {
	app := stubbornApp()
	s, m := sessionFor(t, app, stubbornApp, Options{})

	// Open the stubborn dialog, then visit a main-window target: the
	// executor must close the dialog first.
	app.ActivateTabByName("Insert")
	if err := app.Desk.Click(app.Win.FindByAutomationID("btnStub")); err != nil {
		t.Fatal(err)
	}
	if app.OpenPopups() != 1 {
		t.Fatal("dialog not open")
	}

	if s.Actions != 0 {
		t.Fatalf("fresh session has %d actions", s.Actions)
	}
	res := s.Visit([]Command{Access(leafID(t, m, "Go"))})
	if !res.OK() {
		t.Fatalf("visit failed: %v", res.Err)
	}
	if app.OpenPopups() != 0 {
		t.Fatal("dialog not closed by navigation")
	}
	if got := res.Executed[0].Clicks; got != s.Actions {
		t.Errorf("Clicks = %d, session actions = %d; closing actions under-counted",
			got, s.Actions)
	}
	// Closing the stubborn dialog costs at least the no-op OK click plus
	// the Close click, then navigation needs at least the final target
	// click — anything below 3 means the old flat clicks++ is back.
	if res.Executed[0].Clicks < 3 {
		t.Errorf("Clicks = %d, want ≥ 3 (OK + Close + target)", res.Executed[0].Clicks)
	}
}
