// Package core implements the Declarative Model Interface (DMI) runtime —
// the paper's primary contribution. It exposes the three declarative
// primitives to the LLM:
//
//   - access declaration: the visit interface (§3.4) takes structured
//     commands that name target controls by topology id; the executor
//     deterministically navigates from any current UI state to each target
//     and performs the primitive interaction.
//   - state declaration: interaction interfaces (§3.5) such as
//     set_scrollbar_pos, select_lines, select_paragraphs, select_controls,
//     set_toggle_state, set_expanded drive a control to a declared end
//     state, hiding compound interactions.
//   - observation declaration: get_texts (§3.5) retrieves structured
//     content, passively before every LLM call and actively on demand.
//
// Robustness (§3.4): non-leaf filtering of imperfect LLM output, fuzzy
// control matching, failure retries for slowly-loading controls, a window
// closing policy of OK > Close > Cancel, and structured error feedback.
package core
