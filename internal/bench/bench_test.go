package bench

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/agent"
	"repro/internal/llm"
	"repro/internal/osworld"
)

var (
	repOnce   sync.Once
	repModels *agent.Models
	repReport *Report
)

// sharedReport runs the full matrix once (≈ seconds) and shares it across
// the shape tests.
func sharedReport(t *testing.T) (*agent.Models, *Report) {
	t.Helper()
	repOnce.Do(func() {
		m, err := agent.BuildModels()
		if err != nil {
			t.Fatal(err)
		}
		repModels = m
		repReport = Run(m, 3)
	})
	if repReport == nil {
		t.Fatal("report unavailable")
	}
	return repModels, repReport
}

// TestTable3Shape asserts the paper's qualitative results (§5.3): DMI beats
// the GUI baseline on success rate and steps in every model setting, and
// reasoning/model strength orders success.
func TestTable3Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	_, rep := sharedReport(t)
	type pair struct{ model, reasoning string }
	for _, p := range []pair{{"GPT-5", "Medium"}, {"GPT-5", "Minimal"}, {"GPT-5-mini", "Medium"}} {
		gui, ok1 := rep.RowFor(agent.GUIOnly, p.model, p.reasoning)
		dmi, ok2 := rep.RowFor(agent.GUIDMI, p.model, p.reasoning)
		if !ok1 || !ok2 {
			t.Fatalf("missing rows for %+v", p)
		}
		if dmi.SR <= gui.SR {
			t.Errorf("%v: DMI SR %.3f ≤ GUI SR %.3f", p, dmi.SR, gui.SR)
		}
		if dmi.Steps >= gui.Steps {
			t.Errorf("%v: DMI steps %.2f ≥ GUI steps %.2f", p, dmi.Steps, gui.Steps)
		}
		if dmi.TimeS >= gui.TimeS {
			t.Errorf("%v: DMI time %.0f ≥ GUI time %.0f", p, dmi.TimeS, gui.TimeS)
		}
	}

	// Relative improvement in the core setting: paper reports 1.67×; the
	// reproduction should land in the same regime (>1.3×).
	gui, _ := rep.RowFor(agent.GUIOnly, "GPT-5", "Medium")
	dmi, _ := rep.RowFor(agent.GUIDMI, "GPT-5", "Medium")
	if ratio := dmi.SR / gui.SR; ratio < 1.3 {
		t.Errorf("core-setting SR improvement = %.2f×, want ≥ 1.3× (paper 1.67×)", ratio)
	}
	if cut := 1 - dmi.Steps/gui.Steps; cut < 0.2 {
		t.Errorf("step reduction = %.0f%%, want ≥ 20%% (paper 43.5%%)", 100*cut)
	}

	// Reasoning effort orders success for the same interface.
	med, _ := rep.RowFor(agent.GUIOnly, "GPT-5", "Medium")
	min, _ := rep.RowFor(agent.GUIOnly, "GPT-5", "Minimal")
	if med.SR <= min.SR {
		t.Errorf("medium reasoning (%.3f) should beat minimal (%.3f)", med.SR, min.SR)
	}
}

// TestAblationShape asserts §5.5: the navigation forest alone does not
// significantly help the strong model but helps the weak one; the full DMI
// interface dominates both.
func TestAblationShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	_, rep := sharedReport(t)

	guiM, _ := rep.RowFor(agent.GUIOnly, "GPT-5", "Medium")
	ablM, _ := rep.RowFor(agent.GUIForest, "GPT-5", "Medium")
	dmiM, _ := rep.RowFor(agent.GUIDMI, "GPT-5", "Medium")
	if diff := ablM.SR - guiM.SR; diff > 0.12 || diff < -0.12 {
		t.Errorf("forest knowledge changed strong-model SR by %.3f; paper: no significant change", diff)
	}
	if dmiM.SR <= ablM.SR {
		t.Error("full DMI must beat the knowledge-only ablation (interface, not knowledge, drives gains)")
	}

	guiS, _ := rep.RowFor(agent.GUIOnly, "GPT-5-mini", "Medium")
	ablS, _ := rep.RowFor(agent.GUIForest, "GPT-5-mini", "Medium")
	dmiS, _ := rep.RowFor(agent.GUIDMI, "GPT-5-mini", "Medium")
	if ablS.SR < guiS.SR {
		t.Errorf("forest knowledge should not hurt the weak model (%.3f vs %.3f)", ablS.SR, guiS.SR)
	}
	if dmiS.SR <= ablS.SR {
		t.Error("full DMI must beat the ablation for the weak model too")
	}
}

// TestFig6Shape asserts the failure redistribution: with DMI most failures
// are policy-level; with GUI-only the mechanism share is much larger.
func TestFig6Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	_, rep := sharedReport(t)
	dmiRow, _ := rep.RowFor(agent.GUIDMI, "GPT-5", "Medium")
	guiRow, _ := rep.RowFor(agent.GUIOnly, "GPT-5", "Medium")
	dmi := Failures(dmiRow)
	gui := Failures(guiRow)
	if dmi.Total == 0 || gui.Total == 0 {
		t.Fatal("no failures recorded")
	}
	dmiPolicy := float64(dmi.Policy) / float64(dmi.Total)
	guiPolicy := float64(gui.Policy) / float64(gui.Total)
	if dmiPolicy < 0.65 {
		t.Errorf("DMI policy share = %.2f, want ≥ 0.65 (paper 0.81)", dmiPolicy)
	}
	if guiMech := 1 - guiPolicy; guiMech < 0.40 {
		t.Errorf("GUI mechanism share = %.2f, want ≥ 0.40 (paper 0.53)", guiMech)
	}
	if dmiPolicy <= guiPolicy {
		t.Error("DMI must shift failures toward policy level")
	}
}

// TestOneShotShape asserts §5.3: the majority of successful DMI trials
// complete the core intent in a single LLM call.
func TestOneShotShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	_, rep := sharedReport(t)
	dmi, _ := rep.RowFor(agent.GUIDMI, "GPT-5", "Medium")
	if dmi.OneShot < 0.5 {
		t.Errorf("one-shot fraction = %.2f, want ≥ 0.5 (paper > 0.61)", dmi.OneShot)
	}
	gui, _ := rep.RowFor(agent.GUIOnly, "GPT-5", "Medium")
	if gui.OneShot >= dmi.OneShot {
		t.Error("GUI baseline should not out-one-shot DMI")
	}
}

// TestNormalizedStepsShape asserts Figure 5b: on the intersection of tasks
// all methods solve, DMI needs the fewest core steps.
func TestNormalizedStepsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	_, rep := sharedReport(t)
	var rows []Row
	for _, iface := range []agent.Interface{agent.GUIOnly, agent.GUIForest, agent.GUIDMI} {
		row, ok := rep.RowFor(iface, "GPT-5", "Medium")
		if !ok {
			t.Fatal("row missing")
		}
		rows = append(rows, row)
	}
	norm := rep.NormalizedCoreSteps(rows)
	if norm[2] <= 0 {
		t.Fatal("empty intersection")
	}
	if norm[2] >= norm[0] || norm[2] >= norm[1] {
		t.Errorf("normalized core steps: GUI %.2f, ablation %.2f, DMI %.2f — DMI must be lowest",
			norm[0], norm[1], norm[2])
	}
}

// TestNormalizedCoreStepsEdges covers the Figure 5b computation at its
// boundaries with hand-built rows: no rows, one row, an empty solved-task
// intersection, and the majority-of-runs rule that decides what "solved"
// means in the first place.
func TestNormalizedCoreStepsEdges(t *testing.T) {
	rep := &Report{}
	mkRow := func(solved map[string]bool, outcomes ...agent.Outcome) Row {
		return Row{SolvedTasks: solved, Outcomes: outcomes}
	}
	win := func(task string, core int) agent.Outcome {
		return agent.Outcome{Task: task, Success: true, CoreSteps: core}
	}
	loss := func(task string) agent.Outcome {
		return agent.Outcome{Task: task}
	}

	t.Run("no rows", func(t *testing.T) {
		if norm := rep.NormalizedCoreSteps(nil); norm != nil {
			t.Fatalf("nil rows must yield nil, got %v", norm)
		}
	})
	t.Run("single row normalizes over its own solved set", func(t *testing.T) {
		row := mkRow(map[string]bool{"a": true, "b": true},
			win("a", 2), win("b", 4), win("c", 100), loss("a"))
		norm := rep.NormalizedCoreSteps([]Row{row})
		// Mean over the successful runs of solved tasks only: (2+4)/2. The
		// solved-but-failed run and the unsolved task c contribute nothing.
		if len(norm) != 1 || norm[0] != 3 {
			t.Fatalf("norm = %v, want [3]", norm)
		}
	})
	t.Run("empty intersection yields zeros, not NaN", func(t *testing.T) {
		rows := []Row{
			mkRow(map[string]bool{"a": true}, win("a", 2)),
			mkRow(map[string]bool{"b": true}, win("b", 7)),
		}
		norm := rep.NormalizedCoreSteps(rows)
		if len(norm) != 2 || norm[0] != 0 || norm[1] != 0 {
			t.Fatalf("disjoint solved sets must yield zeros, got %v", norm)
		}
	})
	t.Run("intersection drops tasks any row missed", func(t *testing.T) {
		rows := []Row{
			mkRow(map[string]bool{"a": true, "b": true}, win("a", 2), win("b", 10)),
			mkRow(map[string]bool{"a": true}, win("a", 6)),
		}
		norm := rep.NormalizedCoreSteps(rows)
		if len(norm) != 2 || norm[0] != 2 || norm[1] != 6 {
			t.Fatalf("norm = %v, want [2 6]", norm)
		}
	})
	t.Run("majority rule boundary", func(t *testing.T) {
		task := osworld.All()[0]
		set := Matrix()[0]
		for _, c := range []struct {
			runs, wins int
			solved     bool
		}{
			{2, 1, false}, // exactly half is not a majority
			{2, 2, true},
			{3, 2, true},
			{3, 1, false},
			{1, 1, true},
			{1, 0, false},
		} {
			outcomes := make([]agent.Outcome, 0, c.runs)
			for i := 0; i < c.runs; i++ {
				if i < c.wins {
					outcomes = append(outcomes, win(task.ID, 3))
				} else {
					outcomes = append(outcomes, loss(task.ID))
				}
			}
			row := aggregate(set, []osworld.Task{task}, c.runs, outcomes)
			if got := row.SolvedTasks[task.ID]; got != c.solved {
				t.Errorf("%d wins of %d runs: solved = %v, want %v", c.wins, c.runs, got, c.solved)
			}
		}
	})
}

// TestTokenClaim asserts §5.4: despite per-call topology overhead, total
// tokens per task with DMI stay at or below the baseline's.
func TestTokenClaim(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	models, rep := sharedReport(t)
	gui, _ := rep.RowFor(agent.GUIOnly, "GPT-5", "Medium")
	dmi, _ := rep.RowFor(agent.GUIDMI, "GPT-5", "Medium")
	if dmi.Tokens > gui.Tokens*1.05 {
		t.Errorf("DMI tokens/task %.0f exceed baseline %.0f", dmi.Tokens, gui.Tokens)
	}
	// Per-control cost should sit in the ~15-token regime the paper
	// measures.
	for app, tok := range models.CoreTokens {
		if tok < 5000 || tok > 60000 {
			t.Errorf("%s core topology tokens = %d, implausible", app, tok)
		}
	}
}

// TestReportRendering smoke-tests every writer.
func TestReportRendering(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	models, rep := sharedReport(t)
	var buf bytes.Buffer
	rep.WriteTable3(&buf)
	rep.WriteFig5(&buf)
	rep.WriteFig6(&buf)
	rep.WriteOneShot(&buf)
	rep.WriteTokens(&buf, models)
	out := buf.String()
	for _, want := range []string{"Table 3", "Figure 5a", "Figure 5b", "Figure 6",
		"One-shot", "Token overhead", "GUI+DMI"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q", want)
		}
	}
}

// TestDeterministicReport: the whole evaluation is reproducible.
func TestDeterministicReport(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	models, rep := sharedReport(t)
	again := Run(models, 3)
	for i := range rep.Rows {
		if rep.Rows[i].SR != again.Rows[i].SR || rep.Rows[i].Steps != again.Rows[i].Steps {
			t.Fatalf("row %d not reproducible", i)
		}
	}
}

// renderAll renders every section of a report into one byte stream.
func renderAll(models *agent.Models, rep *Report) string {
	var buf bytes.Buffer
	rep.WriteTable3(&buf)
	rep.WriteFig5(&buf)
	rep.WriteFig6(&buf)
	rep.WriteOneShot(&buf)
	rep.WriteTokens(&buf, models)
	return buf.String()
}

// TestParallelReportEquivalence: the concurrent serving layer must be an
// implementation detail — RunParallel with a worker pool produces a Report
// whose every rendered byte matches the sequential run. Run under -race,
// this also proves the warm models are shared between concurrent sessions
// without unsynchronized mutation.
func TestParallelReportEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	models, rep := sharedReport(t)
	seq := renderAll(models, rep)
	for _, workers := range []int{4, 16} {
		par := RunParallel(models, 3, workers)
		if got := renderAll(models, par); got != seq {
			t.Fatalf("workers=%d: parallel report differs from sequential:\n--- parallel ---\n%s\n--- sequential ---\n%s",
				workers, got, seq)
		}
		// The structured outcomes must match cell-for-cell too, not just
		// the rendered aggregates.
		for i := range rep.Rows {
			if len(par.Rows[i].Outcomes) != len(rep.Rows[i].Outcomes) {
				t.Fatalf("workers=%d row %d: outcome count %d != %d",
					workers, i, len(par.Rows[i].Outcomes), len(rep.Rows[i].Outcomes))
			}
			for j, o := range rep.Rows[i].Outcomes {
				if par.Rows[i].Outcomes[j] != o {
					t.Fatalf("workers=%d row %d outcome %d: %+v != %+v",
						workers, i, j, par.Rows[i].Outcomes[j], o)
				}
			}
		}
	}
}

// TestRunSettingParallelEquivalence covers the single-cell entry point the
// focused benchmarks use.
func TestRunSettingParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("single-cell evaluation")
	}
	models, _ := sharedReport(t)
	set := Setting{Label: "GUI+DMI / GPT-5 / Medium", Interface: agent.GUIDMI, Profile: llm.GPT5Medium}
	seq := RunSetting(models, set, 3)
	par := RunSettingParallel(models, set, 3, 8)
	if seq.SR != par.SR || seq.Steps != par.Steps || seq.Tokens != par.Tokens ||
		seq.TimeS != par.TimeS || seq.OneShot != par.OneShot {
		t.Fatalf("parallel single-cell row differs: %+v != %+v", par, seq)
	}
	for j := range seq.Outcomes {
		if seq.Outcomes[j] != par.Outcomes[j] {
			t.Fatalf("outcome %d differs: %+v != %+v", j, par.Outcomes[j], seq.Outcomes[j])
		}
	}
}

// TestRunCellMatchesRun pins the serving-daemon contract: for every
// (setting, task) cell, RunCell returns exactly the slice of outcomes the
// full-matrix Run produced for that cell — same RNG streams, same order —
// at any worker count.
func TestRunCellMatchesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	models, rep := sharedReport(t)
	tasks := rep.Tasks
	// Spot-check one task per app across two settings; the grid slicing is
	// uniform, so this covers the indexing and the RNG stream derivation.
	picked := map[string]int{}
	for i, task := range tasks {
		if _, ok := picked[task.App]; !ok {
			picked[task.App] = i
		}
	}
	for _, label := range []string{"GUI+DMI / GPT-5 / Medium", "GUI-only / 5-mini / Medium"} {
		set, ok := SettingByLabel(label)
		if !ok {
			t.Fatalf("SettingByLabel(%q) missed", label)
		}
		var row Row
		found := false
		for _, r := range rep.Rows {
			if r.Setting.Label == label {
				row, found = r, true
			}
		}
		if !found {
			t.Fatalf("report lacks row %q", label)
		}
		for app, ti := range picked {
			want := row.Outcomes[ti*rep.Runs : (ti+1)*rep.Runs]
			for _, workers := range []int{1, 4} {
				got := RunCell(models, set, tasks[ti], rep.Runs, workers)
				if len(got) != len(want) {
					t.Fatalf("%s/%s workers=%d: %d outcomes, want %d", label, app, workers, len(got), len(want))
				}
				for r := range got {
					if got[r] != want[r] {
						t.Fatalf("%s/%s workers=%d run %d: cell outcome %+v != Run's %+v",
							label, app, workers, r, got[r], want[r])
					}
				}
			}
		}
	}
	if _, ok := SettingByLabel("No Such Setting"); ok {
		t.Fatal("SettingByLabel invented a setting")
	}
}
