package bench

import (
	"fmt"
	"time"
)

// Elastic membership: the replica list a RemoteDispatcher shards over is
// mutable at runtime. AddReplica and RemoveReplica adjust the fleet while
// dispatches are in flight — the coordinator drives them from a membership
// file re-read on SIGHUP — so capacity can grow or shrink without
// restarting a long-lived run.
//
// Lock discipline: membership operations take d.mu first and rep.mu second
// when they need both; every other path (Dispatch, Stats, Live, the
// prober) copies the membership slice under d.mu, releases it, and only
// then takes per-replica locks. d.mu → rep.mu is therefore the only
// nesting order in the package.

// AddReplica adds a replica to the rotation mid-run. The URL is normalized
// (NormalizeReplicaURL) before comparison. Re-adding a removed replica
// revives it in place: it keeps its counters and in-flight cap, rejoins as
// up, and its next failure re-arms the prober as usual. Adding a URL
// already present (and not removed) is an error.
func (d *RemoteDispatcher) AddReplica(raw string) error {
	base, err := normalizeBase(raw)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, rep := range d.replicas {
		if rep.base != base {
			continue
		}
		rep.mu.Lock()
		if !rep.removed {
			rep.mu.Unlock()
			return fmt.Errorf("bench: replica %s already present", base)
		}
		// Revive in place. The removed replica carries no prober (removal
		// stops it), so clear any stale down state and start fresh: if the
		// re-added replica is in fact still dead, the next dispatch fails
		// over and re-arms probing.
		rep.removed = false
		rep.down = false
		rep.downSince = time.Time{}
		rep.mu.Unlock()
		d.logf("replica %s re-added to rotation", base)
		return nil
	}
	d.replicas = append(d.replicas, &replica{base: base, slot: make(chan struct{}, d.inflight)})
	d.logf("replica %s added to rotation", base)
	return nil
}

// RemoveReplica takes a replica out of the rotation mid-run. In-flight
// cells on it finish (or fail over) normally; afterwards it is never
// picked, its prober (if any) stops, and its counters remain visible in
// Stats() flagged Removed. Removing an unknown or already-removed replica
// is an error.
func (d *RemoteDispatcher) RemoveReplica(raw string) error {
	base, err := normalizeBase(raw)
	if err != nil {
		return err
	}
	var target *replica
	d.mu.Lock()
	for _, rep := range d.replicas {
		if rep.base == base {
			target = rep
			break
		}
	}
	d.mu.Unlock()
	if target == nil {
		return fmt.Errorf("bench: replica %s not in membership", base)
	}
	target.mu.Lock()
	defer target.mu.Unlock()
	if target.removed {
		return fmt.Errorf("bench: replica %s already removed", base)
	}
	target.removed = true
	if target.down && !target.downSince.IsZero() {
		// Close out the down stretch: a removed replica is not "down", it
		// is gone, and DownSeconds should stop accruing.
		target.downTotal += time.Since(target.downSince)
		target.downSince = time.Time{}
	}
	d.logf("replica %s removed from rotation", base)
	return nil
}

// Members returns the current membership (non-removed replicas) in list
// order, in the normalized form AddReplica/RemoveReplica compare against.
func (d *RemoteDispatcher) Members() []string {
	var members []string
	for _, rep := range d.snapshot() {
		rep.mu.Lock()
		removed := rep.removed
		rep.mu.Unlock()
		if !removed {
			members = append(members, rep.base)
		}
	}
	return members
}

// Capacity reports how many cells the fleet can hold in flight right now:
// the per-replica cap times the number of replicas in rotation. Streaming
// dispatch (RunStreamedIn) polls it to pace its work queue, so capacity
// tracks the fleet through failures, recoveries, joins, and leaves.
func (d *RemoteDispatcher) Capacity() int {
	n := 0
	for _, rep := range d.snapshot() {
		rep.mu.Lock()
		ok := !rep.down && !rep.removed
		rep.mu.Unlock()
		if ok {
			n++
		}
	}
	return n * d.inflight
}
