package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/osworld"
	"repro/internal/serveproto"
	"repro/internal/taskpack"
)

// Cell is one serializable job unit of the evaluation grid: a (setting,
// task) pair with its repetition count. Everything in it is a string or an
// int, so a cell crosses process boundaries as-is — it is the body of the
// daemon's POST /session. A cell's outcomes are a pure function of the cell
// (the RNG streams derive from setting, task, and run index alone, and the
// offline models are read-only), which makes dispatching idempotent:
// re-running a cell anywhere produces the same bytes.
type Cell struct {
	App     string `json:"app"`
	Task    string `json:"task"`
	Setting string `json:"setting"`
	Runs    int    `json:"runs"`
}

// Dispatcher abstracts where a grid cell executes. LocalDispatcher runs it
// on this process's warm models; RemoteDispatcher ships it to a dmi-serve
// replica. Dispatch must return exactly cell.Runs outcomes in run order —
// the same slice bench.Run produces for the cell — or an error; it must be
// safe for concurrent use, because RunDispatched fans cells out over a pool.
type Dispatcher interface {
	Dispatch(ctx context.Context, cell Cell) ([]agent.Outcome, error)
}

// GridCells enumerates the full evaluation grid over the compiled-in task
// pack. See GridCellsIn.
func GridCells(runs int) []Cell {
	return GridCellsIn(taskpack.Builtin(), runs)
}

// GridCellsIn enumerates the full evaluation grid over a task registry in
// grid order (settings-major over the Table 3 matrix, then tasks in pack
// order): the canonical cell sequence every dispatcher-backed run fans out
// and every aggregation depends on.
func GridCellsIn(reg *taskpack.Registry, runs int) []Cell {
	settings := Matrix()
	tasks := reg.Tasks()
	cells := make([]Cell, 0, len(settings)*len(tasks))
	for _, set := range settings {
		for _, task := range tasks {
			cells = append(cells, Cell{App: task.App, Task: task.ID, Setting: set.Label, Runs: runs})
		}
	}
	return cells
}

// ErrUnknownCell marks a cell that names a task or setting outside the
// catalog/matrix — a lookup miss, as opposed to a malformed cell. The
// serving daemon maps it to 404 versus 400.
var ErrUnknownCell = errors.New("unknown")

// ResolveCell validates a cell against the compiled-in pack and the matrix.
// See ResolveCellIn.
func ResolveCell(cell Cell) (Setting, osworld.Task, error) {
	return ResolveCellIn(taskpack.Builtin(), cell)
}

// ResolveCellIn validates a cell against a task registry and the matrix. It
// is the shared gate: the local dispatcher uses it before executing, and the
// serving daemon applies the same checks to inbound requests.
func ResolveCellIn(reg *taskpack.Registry, cell Cell) (Setting, osworld.Task, error) {
	task, ok := reg.ByID(cell.Task)
	if !ok {
		return Setting{}, osworld.Task{}, fmt.Errorf("%w task %q", ErrUnknownCell, cell.Task)
	}
	if cell.App != "" && cell.App != task.App {
		return Setting{}, osworld.Task{}, fmt.Errorf("task %q belongs to %q, not %q", cell.Task, task.App, cell.App)
	}
	set, ok := SettingByLabel(cell.Setting)
	if !ok {
		return Setting{}, osworld.Task{}, fmt.Errorf("%w setting %q", ErrUnknownCell, cell.Setting)
	}
	if cell.Runs <= 0 {
		return Setting{}, osworld.Task{}, fmt.Errorf("runs %d must be positive", cell.Runs)
	}
	return set, task, nil
}

// LocalDispatcher executes cells in-process over the shared warm models —
// the same executeGrid worker pool RunParallel always used, now behind the
// seam. workers sizes the per-cell session pool (1 = each cell's runs are
// sequential; cross-cell concurrency comes from RunDispatched).
type LocalDispatcher struct {
	reg     *taskpack.Registry
	models  *agent.Models
	workers int
}

// NewLocalDispatcher wraps warm models as a dispatcher over the compiled-in
// pack. workers <= 1 runs a cell's repetitions sequentially.
func NewLocalDispatcher(models *agent.Models, workers int) *LocalDispatcher {
	return NewLocalDispatcherIn(taskpack.Builtin(), models, workers)
}

// NewLocalDispatcherIn wraps warm models as a dispatcher resolving cells
// against a task registry.
func NewLocalDispatcherIn(reg *taskpack.Registry, models *agent.Models, workers int) *LocalDispatcher {
	return &LocalDispatcher{reg: reg, models: models, workers: workers}
}

// Dispatch runs the cell through RunCell: same RNG streams, same run order,
// byte-identical to the slice bench.Run produces for the cell.
func (d *LocalDispatcher) Dispatch(ctx context.Context, cell Cell) ([]agent.Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	set, task, err := ResolveCellIn(d.reg, cell)
	if err != nil {
		return nil, err
	}
	return RunCell(d.models, set, task, cell.Runs, d.workers), nil
}

// RunDispatched executes the full evaluation grid over the compiled-in task
// pack. See RunDispatchedIn.
func RunDispatched(ctx context.Context, d Dispatcher, runs, concurrency int) (*Report, error) {
	return RunDispatchedIn(ctx, taskpack.Builtin(), d, runs, concurrency)
}

// RunDispatchedIn executes a task registry's full evaluation grid through a
// dispatcher with up to `concurrency` cells in flight (<= 0 uses
// GOMAXPROCS), collects the outcomes in grid order, and aggregates them
// sequentially — so the Report is byte-identical to the in-process Run
// whenever the dispatcher honors the cell contract, regardless of which
// replica ran which cell or in what order they finished. The first dispatch
// error cancels the remaining cells and is returned.
func RunDispatchedIn(ctx context.Context, reg *taskpack.Registry, d Dispatcher, runs, concurrency int) (*Report, error) {
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	settings := Matrix()
	tasks := reg.Tasks()
	var cells []Cell
	if runs > 0 {
		// runs <= 0 dispatches nothing and aggregates an empty report —
		// the same zeroed rows the pre-dispatcher executeGrid produced.
		cells = GridCellsIn(reg, runs)
	}
	out := make([][]agent.Outcome, len(cells))

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
			cancel()
		}
		mu.Unlock()
	}
	dispatch := func(i int) {
		cell := cells[i]
		outcomes, err := d.Dispatch(ctx, cell)
		if err != nil {
			fail(fmt.Errorf("dispatch %s/%s: %w", cell.Setting, cell.Task, err))
			return
		}
		if len(outcomes) != cell.Runs {
			fail(fmt.Errorf("dispatch %s/%s: %d outcomes for %d runs", cell.Setting, cell.Task, len(outcomes), cell.Runs))
			return
		}
		out[i] = outcomes
	}

	if concurrency == 1 || len(cells) <= 1 {
		for i := range cells {
			if ctx.Err() != nil {
				break
			}
			dispatch(i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					dispatch(i)
				}
			}()
		}
	feed:
		for i := range cells {
			select {
			case idx <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(idx)
		wg.Wait()
	}

	mu.Lock()
	err := firstErr
	mu.Unlock()
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	flat := make([]agent.Outcome, 0, len(cells)*runs)
	for _, outcomes := range out {
		flat = append(flat, outcomes...)
	}
	rep := &Report{Runs: runs, Tasks: tasks}
	per := 0
	if runs > 0 {
		per = len(tasks) * runs
	}
	for i, set := range settings {
		rep.Rows = append(rep.Rows, aggregate(set, tasks, runs, flat[i*per:(i+1)*per]))
	}
	return rep, nil
}

// Remote dispatch --------------------------------------------------------------

// ReplicaStats is one replica's share of a dispatched run.
type ReplicaStats struct {
	BaseURL  string `json:"base_url"`
	Cells    int    `json:"cells"`    // cells served successfully
	Failures int    `json:"failures"` // dispatch attempts that failed here
	Down     bool   `json:"down"`     // failure detection tripped; no longer picked
}

// RemoteOptions tunes a RemoteDispatcher.
type RemoteOptions struct {
	// InFlight caps concurrent cells per replica (default 4). The cap is
	// what keeps a fast coordinator from flooding a small replica: excess
	// dispatches queue on the least-loaded live replica's slot.
	InFlight int
	// Client issues the requests. The default carries a 5-minute timeout —
	// a hung replica must become a detected failure, never an indefinite
	// stall — sized to outlast the slowest legitimate cell (a max-runs
	// request against a cold model). Supply your own client to tighten it.
	Client *http.Client
	// Pack and PackHash stamp every session request with the task pack this
	// run resolves cells against. A replica serving a different pack rejects
	// the request with 409 instead of silently answering from different task
	// content — outcomes are pure functions of (pack, setting, task, run), so
	// a pack mismatch would corrupt the whole report, not just one cell.
	// Empty values skip the handshake (legacy behavior).
	Pack     string
	PackHash string
}

// RemoteDispatcher shards cells across N dmi-serve replicas over the
// HTTP/JSON POST /session protocol. Each dispatch picks the least-loaded
// live replica, bounded by the per-replica in-flight cap. A transport
// error, a 5xx, or a malformed response marks the replica down and the cell
// is re-dispatched to another replica — safe because cells are idempotent
// (see Cell). A 4xx is the request's fault, not the replica's: it is
// returned immediately without marking anything down, since every replica
// would reject it identically.
type RemoteDispatcher struct {
	replicas []*replica
	client   *http.Client
	pack     string
	packHash string

	mu      sync.Mutex
	retries int // cells re-dispatched after a replica failure
}

// replica is one backend's dispatch state.
type replica struct {
	base string
	slot chan struct{} // in-flight cap

	mu       sync.Mutex
	down     bool
	cells    int
	failures int
}

// NewRemoteDispatcher validates the replica list and builds a dispatcher.
func NewRemoteDispatcher(baseURLs []string, opt RemoteOptions) (*RemoteDispatcher, error) {
	if len(baseURLs) == 0 {
		return nil, errors.New("bench: remote dispatcher needs at least one replica")
	}
	inflight := opt.InFlight
	if inflight <= 0 {
		inflight = 4
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	d := &RemoteDispatcher{client: client, pack: opt.Pack, packHash: opt.PackHash}
	seen := make(map[string]bool)
	for _, raw := range baseURLs {
		base := strings.TrimRight(strings.TrimSpace(raw), "/")
		if base == "" {
			return nil, fmt.Errorf("bench: empty replica URL in %q", strings.Join(baseURLs, ","))
		}
		if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
			return nil, fmt.Errorf("bench: replica %q is not an http(s) base URL", raw)
		}
		if seen[base] {
			return nil, fmt.Errorf("bench: duplicate replica %q", base)
		}
		seen[base] = true
		d.replicas = append(d.replicas, &replica{base: base, slot: make(chan struct{}, inflight)})
	}
	return d, nil
}

// Dispatch ships the cell to a live replica, re-dispatching on replica
// failure until a replica answers or none are left.
func (d *RemoteDispatcher) Dispatch(ctx context.Context, cell Cell) ([]agent.Outcome, error) {
	if cell.Runs <= 0 {
		// The daemon would coerce runs<=0 to 1 and the response would then
		// fail the cell contract, reading as a replica failure — reject the
		// cell before it can down-mark healthy replicas.
		return nil, fmt.Errorf("runs %d must be positive", cell.Runs)
	}
	tried := make(map[*replica]bool)
	var failures []error
	for {
		rep := d.pick(tried)
		if rep == nil {
			if len(failures) == 0 {
				return nil, errors.New("no live replicas")
			}
			return nil, fmt.Errorf("all replicas failed: %w", errors.Join(failures...))
		}
		select {
		case rep.slot <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		// Another dispatch may have down-marked this replica while we
		// waited for a slot; posting anyway would burn a full client
		// timeout against a known-dead backend while live replicas idle.
		rep.mu.Lock()
		down := rep.down
		rep.mu.Unlock()
		if down {
			<-rep.slot
			continue // pick() skips down replicas
		}
		outcomes, err := d.post(ctx, rep, cell)
		<-rep.slot
		if err == nil {
			rep.mu.Lock()
			rep.cells++
			rep.mu.Unlock()
			if len(failures) > 0 {
				d.mu.Lock()
				d.retries += len(failures)
				d.mu.Unlock()
			}
			return outcomes, nil
		}
		if ctx.Err() != nil {
			// The run was cancelled; the replica is not to blame.
			return nil, ctx.Err()
		}
		var mismatch *PackMismatchError
		if errors.As(err, &mismatch) {
			// The replica is healthy but serving different task content; the
			// operator must restart one side with a matching pack, so keep
			// the replica up and surface the named error immediately.
			return nil, err
		}
		var bad *requestError
		if errors.As(err, &bad) {
			// The cell itself is invalid; every replica would agree.
			return nil, err
		}
		// Failure detection: stop picking this replica and try another.
		rep.mu.Lock()
		rep.failures++
		rep.down = true
		rep.mu.Unlock()
		tried[rep] = true
		failures = append(failures, fmt.Errorf("%s: %w", rep.base, err))
	}
}

// pick returns the live, not-yet-tried replica with the fewest cells in
// flight, or nil when none remain.
func (d *RemoteDispatcher) pick(tried map[*replica]bool) *replica {
	var best *replica
	bestLoad := 0
	for _, rep := range d.replicas {
		if tried[rep] {
			continue
		}
		rep.mu.Lock()
		down := rep.down
		rep.mu.Unlock()
		if down {
			continue
		}
		load := len(rep.slot)
		if best == nil || load < bestLoad {
			best, bestLoad = rep, load
		}
	}
	return best
}

// requestError marks a 4xx: the request is at fault, so re-dispatching the
// cell to another replica cannot help.
type requestError struct{ msg string }

func (e *requestError) Error() string { return e.msg }

// PackMismatchError reports a replica that is alive and well but serving a
// different task pack than the run dispatches against. It names both sides
// so the operator knows exactly which replica to restart and with what.
type PackMismatchError struct {
	Replica            string // replica base URL
	WantPack, WantHash string // the pack this run dispatches against
	HavePack, HaveHash string // the pack the replica is serving
}

func (e *PackMismatchError) Error() string {
	return fmt.Sprintf("replica %s serves task pack %s (hash %.12s), this run needs %s (hash %.12s)",
		e.Replica, e.HavePack, e.HaveHash, e.WantPack, e.WantHash)
}

// post runs one POST /session round trip and validates the response against
// the cell contract.
func (d *RemoteDispatcher) post(ctx context.Context, rep *replica, cell Cell) ([]agent.Outcome, error) {
	body, err := json.Marshal(serveproto.SessionRequest{
		App: cell.App, Task: cell.Task, Setting: cell.Setting, Runs: cell.Runs,
		Pack: d.pack, PackHash: d.packHash,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.base+"/session", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		var pm serveproto.PackMismatch
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1024)).Decode(&pm); err == nil {
			return nil, &PackMismatchError{
				Replica:  rep.base,
				WantPack: pm.WantPack, WantHash: pm.WantHash,
				HavePack: pm.HavePack, HaveHash: pm.HaveHash,
			}
		}
		return nil, &requestError{msg: fmt.Sprintf("status %d: unreadable pack-mismatch body", resp.StatusCode)}
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		msg := fmt.Sprintf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, &requestError{msg: msg}
		}
		return nil, errors.New(msg)
	}
	var sr serveproto.SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("malformed response: %w", err)
	}
	if sr.Task != cell.Task || sr.Setting != cell.Setting || len(sr.Outcomes) != cell.Runs {
		return nil, fmt.Errorf("response echoes (%q,%q,%d outcomes), want (%q,%q,%d)",
			sr.Task, sr.Setting, len(sr.Outcomes), cell.Task, cell.Setting, cell.Runs)
	}
	return sr.Outcomes, nil
}

// Retries reports how many re-dispatch attempts followed replica failures
// across the run.
func (d *RemoteDispatcher) Retries() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.retries
}

// Stats snapshots every replica's share of the run, in replica-list order.
func (d *RemoteDispatcher) Stats() []ReplicaStats {
	out := make([]ReplicaStats, len(d.replicas))
	for i, rep := range d.replicas {
		rep.mu.Lock()
		out[i] = ReplicaStats{BaseURL: rep.base, Cells: rep.cells, Failures: rep.failures, Down: rep.down}
		rep.mu.Unlock()
	}
	return out
}

// Live returns the base URLs of replicas not marked down, in replica-list
// order.
func (d *RemoteDispatcher) Live() []string {
	var live []string
	for _, rep := range d.replicas {
		rep.mu.Lock()
		if !rep.down {
			live = append(live, rep.base)
		}
		rep.mu.Unlock()
	}
	return live
}
