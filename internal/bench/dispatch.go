package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/osworld"
	"repro/internal/serveproto"
	"repro/internal/taskpack"
)

// Cell is one serializable job unit of the evaluation grid: a (setting,
// task) pair with its repetition count. Everything in it is a string or an
// int, so a cell crosses process boundaries as-is — it is the body of the
// daemon's POST /session. A cell's outcomes are a pure function of the cell
// (the RNG streams derive from setting, task, and run index alone, and the
// offline models are read-only), which makes dispatching idempotent:
// re-running a cell anywhere produces the same bytes.
type Cell struct {
	App     string `json:"app"`
	Task    string `json:"task"`
	Setting string `json:"setting"`
	Runs    int    `json:"runs"`
}

// Dispatcher abstracts where a grid cell executes. LocalDispatcher runs it
// on this process's warm models; RemoteDispatcher ships it to a dmi-serve
// replica. Dispatch must return exactly cell.Runs outcomes in run order —
// the same slice bench.Run produces for the cell — or an error; it must be
// safe for concurrent use, because RunDispatched fans cells out over a pool.
type Dispatcher interface {
	Dispatch(ctx context.Context, cell Cell) ([]agent.Outcome, error)
}

// GridCells enumerates the full evaluation grid over the compiled-in task
// pack. See GridCellsIn.
func GridCells(runs int) []Cell {
	return GridCellsIn(taskpack.Builtin(), runs)
}

// GridCellsIn enumerates the full evaluation grid over a task registry in
// grid order (settings-major over the Table 3 matrix, then tasks in pack
// order): the canonical cell sequence every dispatcher-backed run fans out
// and every aggregation depends on.
func GridCellsIn(reg *taskpack.Registry, runs int) []Cell {
	settings := Matrix()
	tasks := reg.Tasks()
	cells := make([]Cell, 0, len(settings)*len(tasks))
	for _, set := range settings {
		for _, task := range tasks {
			cells = append(cells, Cell{App: task.App, Task: task.ID, Setting: set.Label, Runs: runs})
		}
	}
	return cells
}

// ErrUnknownCell marks a cell that names a task or setting outside the
// catalog/matrix — a lookup miss, as opposed to a malformed cell. The
// serving daemon maps it to 404 versus 400.
var ErrUnknownCell = errors.New("unknown")

// ResolveCell validates a cell against the compiled-in pack and the matrix.
// See ResolveCellIn.
func ResolveCell(cell Cell) (Setting, osworld.Task, error) {
	return ResolveCellIn(taskpack.Builtin(), cell)
}

// ResolveCellIn validates a cell against a task registry and the matrix. It
// is the shared gate: the local dispatcher uses it before executing, and the
// serving daemon applies the same checks to inbound requests.
func ResolveCellIn(reg *taskpack.Registry, cell Cell) (Setting, osworld.Task, error) {
	task, ok := reg.ByID(cell.Task)
	if !ok {
		return Setting{}, osworld.Task{}, fmt.Errorf("%w task %q", ErrUnknownCell, cell.Task)
	}
	if cell.App != "" && cell.App != task.App {
		return Setting{}, osworld.Task{}, fmt.Errorf("task %q belongs to %q, not %q", cell.Task, task.App, cell.App)
	}
	set, ok := SettingByLabel(cell.Setting)
	if !ok {
		return Setting{}, osworld.Task{}, fmt.Errorf("%w setting %q", ErrUnknownCell, cell.Setting)
	}
	if cell.Runs <= 0 {
		return Setting{}, osworld.Task{}, fmt.Errorf("runs %d must be positive", cell.Runs)
	}
	return set, task, nil
}

// LocalDispatcher executes cells in-process over the shared warm models —
// the same executeGrid worker pool RunParallel always used, now behind the
// seam. workers sizes the per-cell session pool (1 = each cell's runs are
// sequential; cross-cell concurrency comes from RunDispatched).
type LocalDispatcher struct {
	reg     *taskpack.Registry
	models  *agent.Models
	workers int
}

// NewLocalDispatcher wraps warm models as a dispatcher over the compiled-in
// pack. workers <= 1 runs a cell's repetitions sequentially.
func NewLocalDispatcher(models *agent.Models, workers int) *LocalDispatcher {
	return NewLocalDispatcherIn(taskpack.Builtin(), models, workers)
}

// NewLocalDispatcherIn wraps warm models as a dispatcher resolving cells
// against a task registry.
func NewLocalDispatcherIn(reg *taskpack.Registry, models *agent.Models, workers int) *LocalDispatcher {
	return &LocalDispatcher{reg: reg, models: models, workers: workers}
}

// Dispatch runs the cell through RunCell: same RNG streams, same run order,
// byte-identical to the slice bench.Run produces for the cell.
func (d *LocalDispatcher) Dispatch(ctx context.Context, cell Cell) ([]agent.Outcome, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	set, task, err := ResolveCellIn(d.reg, cell)
	if err != nil {
		return nil, err
	}
	return RunCell(d.models, set, task, cell.Runs, d.workers), nil
}

// gridRun is the shared state of one dispatcher-backed grid execution: the
// canonical cell sequence, the grid-order result slots, and first-error-wins
// failure collection. Both fan-out strategies — RunDispatchedIn's fixed
// worker pool and RunStreamedIn's capacity-driven work queue — execute
// through it and aggregate through aggregateGrid, which is what keeps their
// reports byte-identical to each other and to the sequential Run.
type gridRun struct {
	d      Dispatcher
	cells  []Cell
	out    [][]agent.Outcome
	cancel context.CancelFunc

	mu       sync.Mutex
	firstErr error
}

func newGridRun(d Dispatcher, cells []Cell, cancel context.CancelFunc) *gridRun {
	return &gridRun{d: d, cells: cells, out: make([][]agent.Outcome, len(cells)), cancel: cancel}
}

// fail records the first error and cancels the remaining cells. A dispatch
// error therefore always wins over the cancellation it triggers: callers
// check firstErr before ctx.Err(), so the run's error names the cell that
// failed, not the collateral context.Canceled the other workers saw.
func (g *gridRun) fail(err error) {
	g.mu.Lock()
	if g.firstErr == nil {
		g.firstErr = err
		g.cancel()
	}
	g.mu.Unlock()
}

func (g *gridRun) err() error {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.firstErr
}

// dispatch executes cell i and stores its outcomes in the grid-order slot,
// enforcing the exactly-Runs-outcomes contract.
func (g *gridRun) dispatch(ctx context.Context, i int) {
	cell := g.cells[i]
	outcomes, err := g.d.Dispatch(ctx, cell)
	if err != nil {
		g.fail(fmt.Errorf("dispatch %s/%s: %w", cell.Setting, cell.Task, err))
		return
	}
	if len(outcomes) != cell.Runs {
		g.fail(fmt.Errorf("dispatch %s/%s: %d outcomes for %d runs", cell.Setting, cell.Task, len(outcomes), cell.Runs))
		return
	}
	g.out[i] = outcomes
}

// aggregateGrid flattens grid-order outcome slots and aggregates them
// sequentially into the Report — the exact code path the in-process Run
// feeds, so a dispatcher-backed report is byte-identical to it regardless
// of which replica ran which cell or in what order they finished.
func aggregateGrid(reg *taskpack.Registry, out [][]agent.Outcome, runs int) *Report {
	settings := Matrix()
	tasks := reg.Tasks()
	flat := make([]agent.Outcome, 0, len(out)*max(runs, 0))
	for _, outcomes := range out {
		flat = append(flat, outcomes...)
	}
	rep := &Report{Runs: runs, Tasks: tasks}
	per := 0
	if runs > 0 {
		per = len(tasks) * runs
	}
	for i, set := range settings {
		rep.Rows = append(rep.Rows, aggregate(set, tasks, runs, flat[i*per:(i+1)*per]))
	}
	return rep
}

// RunDispatched executes the full evaluation grid over the compiled-in task
// pack. See RunDispatchedIn.
func RunDispatched(ctx context.Context, d Dispatcher, runs, concurrency int) (*Report, error) {
	return RunDispatchedIn(ctx, taskpack.Builtin(), d, runs, concurrency)
}

// RunDispatchedIn executes a task registry's full evaluation grid through a
// dispatcher with up to `concurrency` cells in flight (<= 0 uses
// GOMAXPROCS), collects the outcomes in grid order, and aggregates them
// sequentially — so the Report is byte-identical to the in-process Run
// whenever the dispatcher honors the cell contract. The first dispatch
// error cancels the remaining cells and is returned; a pure external
// cancellation (no dispatch error recorded) returns ctx.Err(). For a run
// whose concurrency should follow the fleet as replicas fail, recover,
// join, and leave, see RunStreamedIn.
func RunDispatchedIn(ctx context.Context, reg *taskpack.Registry, d Dispatcher, runs, concurrency int) (*Report, error) {
	if concurrency <= 0 {
		concurrency = runtime.GOMAXPROCS(0)
	}
	var cells []Cell
	if runs > 0 {
		// runs <= 0 dispatches nothing and aggregates an empty report —
		// the same zeroed rows the pre-dispatcher executeGrid produced.
		cells = GridCellsIn(reg, runs)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	g := newGridRun(d, cells, cancel)

	if concurrency == 1 || len(cells) <= 1 {
		for i := range cells {
			if ctx.Err() != nil {
				break
			}
			g.dispatch(ctx, i)
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					g.dispatch(ctx, i)
				}
			}()
		}
	feed:
		for i := range cells {
			select {
			case idx <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(idx)
		wg.Wait()
	}

	if err := g.err(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return aggregateGrid(reg, g.out, runs), nil
}

// Remote dispatch --------------------------------------------------------------

// ReplicaStats is one replica's share of a dispatched run. The counters are
// defined so they stay mutually consistent across failover and recovery:
//
//   - Cells: session requests this replica answered successfully.
//   - Failures: dispatch attempts that reached this replica and failed
//     (transport error, 5xx, malformed response, malformed 409 body). Each
//     one sends its cell back through replica selection, so at quiescence
//     the dispatcher's Retries() equals the sum of Failures over replicas.
//   - Skips: dispatches that queued on this replica's in-flight slot but
//     found it down-marked by the time the slot freed. No request was made,
//     so a skip is neither a Cell nor a Failure — it only explains where a
//     dispatch's wait went.
//   - Recoveries: times a half-open probe returned this replica to rotation
//     after a down-mark.
//   - Down / DownSeconds: whether the replica is currently out of rotation,
//     and its cumulative down time (including the in-progress stretch).
//   - Removed: the replica was taken out of the membership mid-run; its
//     counters stay visible but it is never picked.
type ReplicaStats struct {
	BaseURL     string  `json:"base_url"`
	Cells       int     `json:"cells"`
	Failures    int     `json:"failures"`
	Skips       int     `json:"skips"`
	Recoveries  int     `json:"recoveries"`
	Down        bool    `json:"down"`
	Removed     bool    `json:"removed,omitempty"`
	DownSeconds float64 `json:"down_seconds"`
}

// RemoteOptions tunes a RemoteDispatcher.
type RemoteOptions struct {
	// InFlight caps concurrent cells per replica (default 4). The cap is
	// what keeps a fast coordinator from flooding a small replica: excess
	// dispatches queue on the least-loaded live replica's slot.
	InFlight int
	// Client issues the requests. The default carries a 5-minute timeout —
	// a hung replica must become a detected failure, never an indefinite
	// stall — sized to outlast the slowest legitimate cell (a max-runs
	// request against a cold model). Supply your own client to tighten it.
	Client *http.Client
	// Pack and PackHash stamp every session request with the task pack this
	// run resolves cells against. A replica serving a different pack rejects
	// the request with 409 instead of silently answering from different task
	// content — outcomes are pure functions of (pack, setting, task, run), so
	// a pack mismatch would corrupt the whole report, not just one cell.
	// Empty values skip the handshake (legacy behavior).
	Pack     string
	PackHash string
	// Batch, when > 1, coalesces up to that many concurrent dispatches into
	// one POST /v1/cells per call (clamped to serveproto.MaxBatchCells),
	// amortizing per-HTTP overhead at high cell rates. Batching is a pure
	// transport optimization: replicas that predate the /v1 surface, failed
	// batch envelopes, and individually failed cells all fall back to the
	// single-session path with its full retry/failover semantics, so reports
	// stay byte-identical to an unbatched run. A batch occupies one of its
	// replica's in-flight slots, so a coordinator sizing concurrency should
	// multiply by the batch factor.
	Batch int
	// ProbeInterval is the base delay between half-open /healthz probes of
	// a down-marked replica (default 1s; negative disables probing, which
	// freezes the pre-recovery behavior of a down-mark lasting the whole
	// run). Failed probes back off exponentially — ×2 per failure, capped
	// at ProbeMax (default 30s) — and every delay carries ±50% jitter so
	// probers for replicas downed together don't synchronize.
	ProbeInterval time.Duration
	ProbeMax      time.Duration
	// Logf, when set, receives membership and recovery events (replica
	// down-marked, recovered, added, removed). The coordinator points it at
	// stderr; nil discards them.
	Logf func(format string, args ...any)
}

// RemoteDispatcher shards cells across N dmi-serve replicas over the
// HTTP/JSON serving protocol. Each dispatch picks the least-loaded
// live replica (equal-load ties rotate round-robin), bounded by the
// per-replica in-flight cap. A transport error, a 5xx, or a malformed
// response marks the replica down and the cell is re-dispatched to another
// replica — safe because cells are idempotent (see Cell). A 4xx is the
// request's fault, not the replica's: it is returned immediately without
// marking anything down, since every replica would reject it identically.
//
// With RemoteOptions.Batch > 1 concurrent dispatches coalesce into
// POST /v1/cells batches (see batch.go); otherwise each cell is its own
// POST /session (or /v1/session once a replica's protocol generation is
// known — both route sets answer identically for one release).
//
// A down-mark is detection, not a death sentence: a half-open prober polls
// the replica's /healthz on a jittered backoff and returns it to rotation
// once it answers ready with a matching pack identity (see probe.go). The
// membership is elastic — AddReplica and RemoveReplica adjust the fleet
// mid-run (see membership.go). Close stops the background probers; a
// dispatcher used past a single run should be closed when retired.
type RemoteDispatcher struct {
	client      *http.Client
	probeClient *http.Client
	pack        string
	packHash    string
	inflight    int
	probeBase   time.Duration // 0 = probing disabled
	probeMax    time.Duration
	logf        func(string, ...any)

	batch  int             // max cells per /v1/cells call; <= 1 disables batching
	linger time.Duration   // how long the collector holds an underfull batch open
	batchQ chan *batchItem // dispatches parked for coalescing (nil when not batching)

	done      chan struct{} // closed by Close; stops probers and the batch collector
	closeOnce sync.Once

	mu       sync.Mutex
	replicas []*replica // elastic membership list
	rr       int        // rotating scan offset for pick's tie-break
	retries  int        // failed attempts that sent a cell back through pick
	rng      *rand.Rand // jitter source for probe backoff
}

// replica is one backend's dispatch state.
type replica struct {
	base string
	slot chan struct{} // in-flight cap

	mu         sync.Mutex
	proto      int // protoUnknown until detected from /healthz (see protoFor)
	down       bool
	removed    bool
	probing    bool // a half-open prober is watching this replica
	cells      int
	failures   int
	skips      int
	recoveries int
	downSince  time.Time     // start of the current down stretch (zero if up)
	downTotal  time.Duration // completed down stretches
	instance   string        // last /healthz instance id a probe saw
}

// NormalizeReplicaURL canonicalizes a replica base URL the way the
// dispatcher stores it (trimmed, no trailing slash) and validates that it
// is an http(s) URL — the form Members() returns and membership diffing
// compares against.
func NormalizeReplicaURL(raw string) (string, error) { return normalizeBase(raw) }

func normalizeBase(raw string) (string, error) {
	base := strings.TrimRight(strings.TrimSpace(raw), "/")
	if base == "" {
		return "", errors.New("bench: empty replica URL")
	}
	if !strings.HasPrefix(base, "http://") && !strings.HasPrefix(base, "https://") {
		return "", fmt.Errorf("bench: replica %q is not an http(s) base URL", raw)
	}
	return base, nil
}

// NewRemoteDispatcher validates the replica list and builds a dispatcher.
func NewRemoteDispatcher(baseURLs []string, opt RemoteOptions) (*RemoteDispatcher, error) {
	if len(baseURLs) == 0 {
		return nil, errors.New("bench: remote dispatcher needs at least one replica")
	}
	inflight := opt.InFlight
	if inflight <= 0 {
		inflight = 4
	}
	client := opt.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Minute}
	}
	probeBase := opt.ProbeInterval
	switch {
	case probeBase < 0:
		probeBase = 0 // probing disabled: down-marks last the dispatcher's lifetime
	case probeBase == 0:
		probeBase = time.Second
	}
	probeMax := opt.ProbeMax
	if probeMax <= 0 {
		probeMax = 30 * time.Second
	}
	if probeMax < probeBase {
		probeMax = probeBase
	}
	logf := opt.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	batch := opt.Batch
	if batch > serveproto.MaxBatchCells {
		batch = serveproto.MaxBatchCells
	}
	d := &RemoteDispatcher{
		client:      client,
		probeClient: &http.Client{Timeout: probeTimeout},
		pack:        opt.Pack,
		packHash:    opt.PackHash,
		inflight:    inflight,
		probeBase:   probeBase,
		probeMax:    probeMax,
		logf:        logf,
		batch:       batch,
		linger:      batchLinger,
		done:        make(chan struct{}),
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if batch > 1 {
		d.batchQ = make(chan *batchItem, batch)
	}
	seen := make(map[string]bool)
	for _, raw := range baseURLs {
		base, err := normalizeBase(raw)
		if err != nil {
			return nil, err
		}
		if seen[base] {
			return nil, fmt.Errorf("bench: duplicate replica %q", base)
		}
		seen[base] = true
		d.replicas = append(d.replicas, &replica{base: base, slot: make(chan struct{}, inflight)})
	}
	if d.batchQ != nil {
		go d.collect()
	}
	return d, nil
}

// Close stops the dispatcher's background probers and, when batching, its
// coalescing collector. In-flight Dispatch calls are unaffected (they carry
// their own contexts; a dispatch racing Close falls back to the
// single-session path); after Close a down-marked replica stays down. Safe
// to call more than once.
func (d *RemoteDispatcher) Close() {
	d.closeOnce.Do(func() { close(d.done) })
}

// Dispatch ships the cell to a live replica, re-dispatching on replica
// failure until a replica answers or none are left. When batching is
// enabled the cell first parks in the coalescing queue so concurrent
// dispatches share a POST /v1/cells; every batch failure mode falls back to
// the single-session path below, so the caller-visible contract is
// identical either way.
func (d *RemoteDispatcher) Dispatch(ctx context.Context, cell Cell) ([]agent.Outcome, error) {
	if cell.Runs <= 0 {
		// The daemon would coerce runs<=0 to 1 and the response would then
		// fail the cell contract, reading as a replica failure — reject the
		// cell before it can down-mark healthy replicas.
		return nil, fmt.Errorf("runs %d must be positive", cell.Runs)
	}
	if d.batchQ == nil {
		return d.dispatchSingle(ctx, cell)
	}
	select {
	case <-d.done:
		// Closed dispatcher: the collector is gone, don't park the cell.
		return d.dispatchSingle(ctx, cell)
	default:
	}
	it := &batchItem{ctx: ctx, cell: cell, res: make(chan batchResult, 1)}
	select {
	case d.batchQ <- it:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	select {
	case r := <-it.res:
		return r.outcomes, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// dispatchSingle is the one-cell-per-request dispatch loop: pick, post,
// and on replica failure re-dispatch until a replica answers or none are
// left. It is both the unbatched path and the fallback every batch failure
// mode degrades to.
func (d *RemoteDispatcher) dispatchSingle(ctx context.Context, cell Cell) ([]agent.Outcome, error) {
	if cell.Runs <= 0 {
		return nil, fmt.Errorf("runs %d must be positive", cell.Runs)
	}
	tried := make(map[*replica]bool)
	var failures []error
	for {
		rep := d.pick(tried)
		if rep == nil {
			// Count the failed attempts even though the cell is lost, so
			// Retries() agrees with the per-replica Failures counters
			// whether or not a survivor eventually answered.
			if n := len(failures); n > 0 {
				d.mu.Lock()
				d.retries += n
				d.mu.Unlock()
				return nil, fmt.Errorf("all replicas failed: %w", errors.Join(failures...))
			}
			return nil, errors.New("no live replicas")
		}
		select {
		case rep.slot <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		// Another dispatch may have down-marked (or a reload removed) this
		// replica while we waited for a slot; posting anyway would burn a
		// full client timeout against a known-dead backend while live
		// replicas idle. The skip is accounted (ReplicaStats.Skips) — no
		// request was made, so it is neither a cell nor a failure.
		rep.mu.Lock()
		skip := rep.down || rep.removed
		if skip {
			rep.skips++
		}
		rep.mu.Unlock()
		if skip {
			<-rep.slot
			continue // pick() skips down/removed replicas
		}
		outcomes, err := d.post(ctx, rep, cell)
		<-rep.slot
		if err == nil {
			rep.mu.Lock()
			rep.cells++
			rep.mu.Unlock()
			if len(failures) > 0 {
				d.mu.Lock()
				d.retries += len(failures)
				d.mu.Unlock()
			}
			return outcomes, nil
		}
		if ctx.Err() != nil {
			// The run was cancelled; the replica is not to blame.
			return nil, ctx.Err()
		}
		var mismatch *PackMismatchError
		if errors.As(err, &mismatch) {
			// The replica is healthy but serving different task content; the
			// operator must restart one side with a matching pack, so keep
			// the replica up and surface the named error immediately.
			return nil, err
		}
		var bad *requestError
		if errors.As(err, &bad) {
			// The cell itself is invalid; every replica would agree.
			return nil, err
		}
		// Failure detection: stop picking this replica, hand it to the
		// half-open prober, and try another.
		d.markDown(rep, err)
		tried[rep] = true
		failures = append(failures, fmt.Errorf("%s: %w", rep.base, err))
	}
}

// markDown trips the failure detector: the replica leaves rotation and, if
// probing is enabled, a half-open prober starts watching its /healthz for
// recovery (at most one prober per replica). Each call also counts one
// failed dispatch attempt on the replica.
func (d *RemoteDispatcher) markDown(rep *replica, cause error) {
	rep.mu.Lock()
	rep.failures++
	wasDown := rep.down
	startProbe := false
	if !wasDown {
		rep.down = true
		rep.downSince = time.Now()
		if d.probeBase > 0 && !rep.probing && !rep.removed {
			rep.probing = true
			startProbe = true
		}
	}
	rep.mu.Unlock()
	if !wasDown {
		d.logf("replica %s marked down: %v", rep.base, cause)
	}
	if startProbe {
		go d.probe(rep)
	}
}

// pick returns a live, not-yet-tried replica with the fewest cells in
// flight, or nil when none remain. Equal-load ties rotate: the scan starts
// one replica further along the membership list on every call, so an idle
// fleet shares cells round-robin instead of the lowest-index replica
// absorbing every dispatch whose predecessor finished before the next pick
// (the replica-0 skew this used to have at low concurrency).
func (d *RemoteDispatcher) pick(tried map[*replica]bool) *replica {
	d.mu.Lock()
	replicas := make([]*replica, len(d.replicas))
	copy(replicas, d.replicas)
	start := 0
	if len(replicas) > 0 {
		start = d.rr % len(replicas)
		d.rr++
	}
	d.mu.Unlock()
	var best *replica
	bestLoad := 0
	for i := range replicas {
		rep := replicas[(start+i)%len(replicas)]
		if tried[rep] {
			continue
		}
		rep.mu.Lock()
		skip := rep.down || rep.removed
		rep.mu.Unlock()
		if skip {
			continue
		}
		load := len(rep.slot)
		if best == nil || load < bestLoad {
			best, bestLoad = rep, load
		}
	}
	return best
}

// requestError marks a 4xx: the request is at fault, so re-dispatching the
// cell to another replica cannot help.
type requestError struct{ msg string }

func (e *requestError) Error() string { return e.msg }

// PackMismatchError reports a replica that is alive and well but serving a
// different task pack than the run dispatches against. It names both sides
// so the operator knows exactly which replica to restart and with what.
type PackMismatchError struct {
	Replica            string // replica base URL
	WantPack, WantHash string // the pack this run dispatches against
	HavePack, HaveHash string // the pack the replica is serving
}

func (e *PackMismatchError) Error() string {
	return fmt.Sprintf("replica %s serves task pack %s (hash %.12s), this run needs %s (hash %.12s)",
		e.Replica, e.HavePack, e.HaveHash, e.WantPack, e.WantHash)
}

// post runs one single-session round trip and validates the response
// against the cell contract. The request goes to /v1/session once the
// replica's protocol generation is known to be v1, and to the legacy
// /session otherwise — a replica whose generation was never detected (the
// common unbatched case) keeps the legacy route, which every generation
// answers.
func (d *RemoteDispatcher) post(ctx context.Context, rep *replica, cell Cell) ([]agent.Outcome, error) {
	body, err := json.Marshal(serveproto.SessionRequest{
		App: cell.App, Task: cell.Task, Setting: cell.Setting, Runs: cell.Runs,
		Pack: d.pack, PackHash: d.packHash,
	})
	if err != nil {
		return nil, err
	}
	path := "/session"
	rep.mu.Lock()
	if rep.proto == protoV1 {
		path = "/v1/session"
	}
	rep.mu.Unlock()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.base+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := d.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		// Only a well-formed PackMismatch with its pack fields filled in is
		// the replica's considered verdict. Anything else arriving as a 409
		// — a proxy error page, a truncated body, a zero-valued JSON object
		// — must read as a replica failure (down-mark + re-dispatch), never
		// as a pack mismatch or a final request error: both of those abort
		// the whole run on what is really one broken backend.
		var pm serveproto.PackMismatch
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1024)).Decode(&pm); err == nil &&
			(pm.HavePack != "" || pm.HaveHash != "") {
			return nil, &PackMismatchError{
				Replica:  rep.base,
				WantPack: pm.WantPack, WantHash: pm.WantHash,
				HavePack: pm.HavePack, HaveHash: pm.HaveHash,
			}
		}
		return nil, errors.New("status 409 with malformed pack-mismatch body")
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		msg := fmt.Sprintf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, &requestError{msg: msg}
		}
		return nil, errors.New(msg)
	}
	var sr serveproto.SessionResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, fmt.Errorf("malformed response: %w", err)
	}
	if sr.Task != cell.Task || sr.Setting != cell.Setting || len(sr.Outcomes) != cell.Runs {
		return nil, fmt.Errorf("response echoes (%q,%q,%d outcomes), want (%q,%q,%d)",
			sr.Task, sr.Setting, len(sr.Outcomes), cell.Task, cell.Setting, cell.Runs)
	}
	return sr.Outcomes, nil
}

// Retries reports how many dispatch attempts failed at a replica and sent
// their cell back through replica selection. Attempts on a cell that
// ultimately failed everywhere count too, so at quiescence Retries equals
// the sum of ReplicaStats.Failures across the fleet; slot-wait skips are
// counted separately (ReplicaStats.Skips) because no request was made.
func (d *RemoteDispatcher) Retries() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.retries
}

// Stats snapshots every replica's share of the run, in membership-list
// order (removed replicas included, flagged Removed).
func (d *RemoteDispatcher) Stats() []ReplicaStats {
	replicas := d.snapshot()
	out := make([]ReplicaStats, len(replicas))
	for i, rep := range replicas {
		rep.mu.Lock()
		downFor := rep.downTotal
		if rep.down && !rep.downSince.IsZero() {
			downFor += time.Since(rep.downSince)
		}
		out[i] = ReplicaStats{
			BaseURL:     rep.base,
			Cells:       rep.cells,
			Failures:    rep.failures,
			Skips:       rep.skips,
			Recoveries:  rep.recoveries,
			Down:        rep.down,
			Removed:     rep.removed,
			DownSeconds: downFor.Seconds(),
		}
		rep.mu.Unlock()
	}
	return out
}

// Live returns the base URLs of replicas in rotation (not down, not
// removed), in membership-list order.
func (d *RemoteDispatcher) Live() []string {
	var live []string
	for _, rep := range d.snapshot() {
		rep.mu.Lock()
		ok := !rep.down && !rep.removed
		rep.mu.Unlock()
		if ok {
			live = append(live, rep.base)
		}
	}
	return live
}

// snapshot copies the membership list under the lock so callers can walk it
// without holding d.mu across per-replica locking.
func (d *RemoteDispatcher) snapshot() []*replica {
	d.mu.Lock()
	defer d.mu.Unlock()
	replicas := make([]*replica, len(d.replicas))
	copy(replicas, d.replicas)
	return replicas
}
