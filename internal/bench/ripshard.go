package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/serveproto"
	"repro/internal/ung"
)

// maxRipSenders caps the RemoteExpander's sender pool. The natural pool size
// is the fleet's dispatch capacity (replicas × in-flight cap) — more senders
// than that can only queue on slots — and the cap keeps a huge fleet from
// spawning goroutines the coordinator's LIFO consumption can't use.
const maxRipSenders = 32

// RemoteExpander shards a rip's frame expansions across N dmi-serve
// replicas over POST /v1/rip — the ung.Expander seam implemented on the
// dispatcher's fleet machinery. Each envelope picks the least-loaded live
// replica (equal-load ties rotate round-robin), bounded by the per-replica
// in-flight cap. A transport error, a 5xx, or a malformed response marks
// the replica down — handing it to the same half-open /healthz prober the
// cell dispatcher uses — and the envelope's frames are re-dispatched to
// another replica. Re-dispatch is safe because an expansion is idempotent
// by construction: it is a function of (app, context, click path) on a
// soft-reset instance, so a frame that died with its replica mid-expansion
// produces the same differential capture anywhere else. A 4xx or a pack
// mismatch is the request's fault, not the replica's: it is delivered as a
// final per-frame error without marking anything down.
//
// The expander pops stacked frames most-recent-first and coalesces up to
// the configured batch of same-context frames per envelope — the LIFO
// discipline means the frames a coordinator will wait on soonest are the
// ones in flight, so all speculative work stays useful work.
type RemoteExpander struct {
	d     *RemoteDispatcher
	app   string
	batch int

	stack *ripStack
	wg    sync.WaitGroup

	mu        sync.Mutex
	clicks    int
	snapshots int
	//dmi:orderinvariant per-replica totals; Close takes an order-free max
	sim map[string]time.Duration

	closeOnce sync.Once
	stats     ung.ExpanderStats
}

// NewRemoteExpander validates the replica list and builds an expander for
// one application's rip. opt is interpreted exactly as for
// NewRemoteDispatcher, except that Batch coalesces rip frames per envelope
// (clamped to serveproto.MaxRipFrames, default 1) and the cell-batch
// collector is never started — rip envelopes have their own coalescing.
func NewRemoteExpander(baseURLs []string, app string, opt RemoteOptions) (*RemoteExpander, error) {
	if app == "" {
		return nil, errors.New("bench: remote expander needs an app name")
	}
	batch := opt.Batch
	if batch < 1 {
		batch = 1
	}
	if batch > serveproto.MaxRipFrames {
		batch = serveproto.MaxRipFrames
	}
	opt.Batch = 0 // rip coalescing replaces the cell collector
	d, err := NewRemoteDispatcher(baseURLs, opt)
	if err != nil {
		return nil, err
	}
	re := &RemoteExpander{
		d:     d,
		app:   app,
		batch: batch,
		stack: newRipStack(),
		sim:   make(map[string]time.Duration),
	}
	senders := len(baseURLs) * d.inflight
	if senders > maxRipSenders {
		senders = maxRipSenders
	}
	re.wg.Add(senders)
	for i := 0; i < senders; i++ {
		go re.sender()
	}
	re.stats.Workers = senders
	return re, nil
}

// Expand queues the frame for the fleet and returns its result channel.
// After Close the result is an immediate error (the coordinator only does
// this on an abort path it is already failing out of).
func (re *RemoteExpander) Expand(ctx string, f ung.Frame) <-chan ung.ExpandResult {
	it := &ripItem{ctx: ctx, f: f, done: make(chan ung.ExpandResult, 1)}
	if !re.stack.push(it) {
		it.done <- ung.ExpandResult{Err: errors.New("bench: remote expander closed")}
	}
	return it.done
}

// Close drains the expander: undispatched frames are dropped (their
// buffered result channels are garbage collected — no goroutine or channel
// leaks on an aborted rip), in-flight envelopes run to completion and their
// clicks are counted, the fleet's probers stop, and the lifetime stats are
// totaled. Idempotent.
func (re *RemoteExpander) Close() ung.ExpanderStats {
	re.closeOnce.Do(func() {
		re.stack.close()
		re.wg.Wait()
		re.d.Close()
		re.mu.Lock()
		re.stats.Clicks = re.clicks
		re.stats.Snapshots = re.snapshots
		// The wall-clock analog of a sharded rip is the busiest single
		// replica's accumulated simulated time.
		//dmi:orderinvariant max over per-replica totals is order-free
		for _, total := range re.sim {
			if total > re.stats.Longest {
				re.stats.Longest = total
			}
		}
		re.mu.Unlock()
	})
	return re.stats
}

// Stats snapshots every replica's share of the sharded rip (the Cells
// counter counts expanded frames here).
func (re *RemoteExpander) Stats() []ReplicaStats { return re.d.Stats() }

// Retries reports how many envelope attempts failed at a replica and sent
// their frames back through replica selection.
func (re *RemoteExpander) Retries() int { return re.d.Retries() }

// AddReplica joins a replica to the fleet mid-rip; see membership.go.
func (re *RemoteExpander) AddReplica(baseURL string) error { return re.d.AddReplica(baseURL) }

// RemoveReplica retires a replica mid-rip; see membership.go.
func (re *RemoteExpander) RemoveReplica(baseURL string) error { return re.d.RemoveReplica(baseURL) }

// sender is one dispatch worker: pop the most recent same-context frames,
// ship them as one envelope, deliver the results. Exits when the stack is
// closed and drained.
func (re *RemoteExpander) sender() {
	defer re.wg.Done()
	for {
		items := re.stack.popBatch(re.batch)
		if items == nil {
			return
		}
		re.deliver(items)
	}
}

// deliver runs one envelope's retry loop: pick a live replica, post, and on
// replica failure re-dispatch the whole envelope until a replica answers or
// none are left. Mirrors dispatchSingle's loop with the envelope as the
// retry unit — every frame in it is idempotent, so re-sending frames whose
// first attempt may or may not have executed is safe.
func (re *RemoteExpander) deliver(items []*ripItem) {
	tried := make(map[*replica]bool)
	var failures []error
	for {
		rep := re.d.pick(tried)
		if rep == nil {
			err := errors.New("no live replicas")
			if n := len(failures); n > 0 {
				re.d.mu.Lock()
				re.d.retries += n
				re.d.mu.Unlock()
				err = fmt.Errorf("all replicas failed: %w", errors.Join(failures...))
			}
			for _, it := range items {
				it.done <- ung.ExpandResult{Err: err}
			}
			return
		}
		rep.slot <- struct{}{}
		// Another dispatch may have down-marked (or a reload removed) this
		// replica while we waited for a slot; skip it without a request,
		// accounted like the cell path's slot-wait skips.
		rep.mu.Lock()
		skip := rep.down || rep.removed
		if skip {
			rep.skips++
		}
		rep.mu.Unlock()
		if skip {
			<-rep.slot
			continue
		}
		results, err := re.postRip(rep, items)
		<-rep.slot
		if err == nil {
			rep.mu.Lock()
			rep.cells += len(items)
			rep.mu.Unlock()
			if len(failures) > 0 {
				re.d.mu.Lock()
				re.d.retries += len(failures)
				re.d.mu.Unlock()
			}
			var clicks, snapshots int
			var sim time.Duration
			for i, it := range items {
				if results[i].Err == nil {
					clicks += results[i].Expansion.Clicks
					snapshots += results[i].Expansion.Snapshots
					sim += results[i].Expansion.Elapsed
				}
				it.done <- results[i]
			}
			re.mu.Lock()
			re.clicks += clicks
			re.snapshots += snapshots
			re.sim[rep.base] += sim
			re.mu.Unlock()
			return
		}
		var mismatch *PackMismatchError
		var bad *requestError
		if errors.As(err, &mismatch) || errors.As(err, &bad) {
			// The envelope (or the run's pack handshake) is at fault; every
			// replica would reject it identically. Final, no down-mark.
			for _, it := range items {
				it.done <- ung.ExpandResult{Err: err}
			}
			return
		}
		// Failure detection: stop picking this replica, hand it to the
		// half-open prober, and re-dispatch the envelope elsewhere.
		re.d.markDown(rep, err)
		tried[rep] = true
		failures = append(failures, fmt.Errorf("%s: %w", rep.base, err))
	}
}

// postRip runs one POST /v1/rip round trip and validates the response
// against the envelope contract: one result per frame, in order, each
// either a decodable expansion or a final per-frame rejection. An error
// return means the replica failed the envelope (transport, 5xx, malformed
// body, per-frame 5xx) and the whole envelope should be re-dispatched.
func (re *RemoteExpander) postRip(rep *replica, items []*ripItem) ([]ung.ExpandResult, error) {
	frames := make([]serveproto.RipFrame, len(items))
	for i, it := range items {
		frames[i] = serveproto.RipFrame{ID: it.f.ID, Path: it.f.Path}
	}
	body, err := json.Marshal(serveproto.RipRequest{
		Pack: re.d.pack, PackHash: re.d.packHash,
		App: re.app, Context: items[0].ctx, Frames: frames,
	})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(context.Background(), http.MethodPost, rep.base+"/v1/rip", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serveproto.RipBatchHeader, fmt.Sprint(len(frames)))
	resp, err := re.d.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		// Same verdict rule as the cell path: only a well-formed PackMismatch
		// is the replica's considered answer; anything else reads as a
		// replica failure.
		var pm serveproto.PackMismatch
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1024)).Decode(&pm); err == nil &&
			(pm.HavePack != "" || pm.HaveHash != "") {
			return nil, &PackMismatchError{
				Replica:  rep.base,
				WantPack: pm.WantPack, WantHash: pm.WantHash,
				HavePack: pm.HavePack, HaveHash: pm.HaveHash,
			}
		}
		return nil, errors.New("status 409 with malformed pack-mismatch body")
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		msg := fmt.Sprintf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, &requestError{msg: msg}
		}
		return nil, errors.New(msg)
	}
	var rr serveproto.RipResponse
	if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
		return nil, fmt.Errorf("malformed response: %w", err)
	}
	if len(rr.Results) != len(frames) {
		return nil, fmt.Errorf("response carries %d results for %d frames", len(rr.Results), len(frames))
	}
	out := make([]ung.ExpandResult, len(frames))
	for i, res := range rr.Results {
		switch {
		case res.Status == http.StatusOK && res.Expansion != nil:
			exp, err := res.Expansion.Expansion()
			if err != nil {
				// Protocol skew inside an otherwise well-formed response:
				// treat the envelope as a replica failure, like any other
				// malformed body.
				return nil, err
			}
			out[i] = ung.ExpandResult{Expansion: exp}
		case res.Status >= 400 && res.Status < 500:
			// The frame itself was rejected; every replica would agree.
			out[i] = ung.ExpandResult{Err: &requestError{msg: fmt.Sprintf("frame %q: status %d: %s",
				frames[i].ID, res.Status, res.Error)}}
		default:
			return nil, fmt.Errorf("frame %q: status %d: %s", frames[i].ID, res.Status, res.Error)
		}
	}
	return out, nil
}

// ripItem is one frame expansion parked on the expander's stack.
type ripItem struct {
	ctx  string
	f    ung.Frame
	done chan ung.ExpandResult // buffered: senders never block on the coordinator
}

// ripStack is the expander's LIFO work queue — the same discipline as the
// in-process pool's jobQueue: the coordinator consumes results in stack
// order, so the most recently pushed frames are the ones it will wait on
// soonest, and those are what senders should ship first.
type ripStack struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*ripItem
	closed bool
}

func newRipStack() *ripStack {
	s := &ripStack{}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// push parks an item; it reports false (and parks nothing) on a closed
// stack.
func (s *ripStack) push(it *ripItem) bool {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return false
	}
	s.items = append(s.items, it)
	s.mu.Unlock()
	s.cond.Signal()
	return true
}

// popBatch blocks until work is available, then returns up to max items
// from the top of the stack that share one context (an envelope addresses
// exactly one app context). Returns nil when the stack is closed and
// drained.
func (s *ripStack) popBatch(max int) []*ripItem {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.items) == 0 && !s.closed {
		s.cond.Wait()
	}
	if len(s.items) == 0 {
		return nil
	}
	top := s.items[len(s.items)-1]
	batch := []*ripItem{top}
	s.items = s.items[:len(s.items)-1]
	for len(batch) < max && len(s.items) > 0 && s.items[len(s.items)-1].ctx == top.ctx {
		batch = append(batch, s.items[len(s.items)-1])
		s.items = s.items[:len(s.items)-1]
	}
	return batch
}

// close wakes every sender and drops undispatched items (relevant when the
// coordinator aborts on the node limit — the dropped items' buffered result
// channels are simply garbage collected).
func (s *ripStack) close() {
	s.mu.Lock()
	s.closed = true
	s.items = nil
	s.mu.Unlock()
	s.cond.Broadcast()
}
