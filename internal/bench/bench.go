// Package bench is the evaluation harness: it runs the 39-task benchmark
// (the paper's 27 Office tasks plus the Settings and Files catalog tasks)
// across the paper's interface × model matrix and regenerates every table
// and figure of the evaluation section — Table 3, Figure 5a/5b, Figure 6,
// the one-shot completion statistic (§5.3), and the token-overhead
// accounting (§5.4).
package bench

import (
	"context"
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/agent"
	"repro/internal/llm"
	"repro/internal/osworld"
)

// Setting is one evaluated cell of the matrix.
type Setting struct {
	Label     string
	Interface agent.Interface
	Profile   llm.Profile
}

// Matrix returns the Table 3 rows in paper order.
func Matrix() []Setting {
	return []Setting{
		{"GUI-only / GPT-5 / Medium", agent.GUIOnly, llm.GPT5Medium},
		{"GUI-only+forest / GPT-5 / Medium", agent.GUIForest, llm.GPT5Medium},
		{"GUI+DMI / GPT-5 / Medium", agent.GUIDMI, llm.GPT5Medium},
		{"GUI-only / GPT-5 / Minimal", agent.GUIOnly, llm.GPT5Minimal},
		{"GUI+DMI / GPT-5 / Minimal", agent.GUIDMI, llm.GPT5Minimal},
		{"GUI-only / 5-mini / Medium", agent.GUIOnly, llm.GPT5Mini},
		{"GUI-only+forest / 5-mini / Medium", agent.GUIForest, llm.GPT5Mini},
		{"GUI+DMI / 5-mini / Medium", agent.GUIDMI, llm.GPT5Mini},
	}
}

// Row aggregates one setting.
type Row struct {
	Setting  Setting
	Total    int
	Success  int
	SR       float64
	Steps    float64 // mean LLM calls over successful runs
	CoreStep float64 // mean core steps over successful runs
	TimeS    float64 // mean seconds over successful runs
	Tokens   float64 // mean prompt+completion tokens per task (all runs)
	OneShot  float64 // fraction of successful runs completed in one core call
	// SolvedTasks lists task ids solved in a majority of runs.
	SolvedTasks map[string]bool
	Outcomes    []agent.Outcome
}

// Report is the complete evaluation output.
type Report struct {
	Runs  int
	Rows  []Row
	Tasks []osworld.Task
}

// Run executes the full matrix: every task, `runs` seeded repetitions per
// setting (the paper runs each task three times and averages).
func Run(models *agent.Models, runs int) *Report {
	return RunParallel(models, runs, 1)
}

// RunParallel is Run served from a worker pool: the evaluation grid fans
// out over `workers` concurrently dispatched cells that all share the warm
// describe.Models — the "computer as server" posture where many concurrent
// sessions multiplex one offline model. It is RunDispatched over a
// LocalDispatcher: the same seam that ships cells to remote replicas, bound
// to this process's goroutine pool. Every run owns its RNG stream and its
// own application instance, so runs are independent; outcomes are collected
// in grid order and aggregated sequentially, which makes the parallel
// Report byte-identical to the sequential one. workers <= 1 runs in-line;
// workers <= 0 uses GOMAXPROCS.
func RunParallel(models *agent.Models, runs, workers int) *Report {
	rep, err := RunDispatched(context.Background(), NewLocalDispatcher(models, 1), runs, workers)
	if err != nil {
		// The grid is enumerated from the matrix and the catalog themselves
		// and local dispatch has no transport, so an error here is a
		// programming bug, not a runtime condition.
		panic(fmt.Sprintf("bench: local dispatch failed: %v", err))
	}
	return rep
}

// SettingByLabel resolves a Table 3 row label to its matrix cell.
func SettingByLabel(label string) (Setting, bool) {
	for _, set := range Matrix() {
		if set.Label == label {
			return set, true
		}
	}
	return Setting{}, false
}

// RunCell evaluates one (setting, task) grid cell: `runs` seeded
// repetitions served from a pool of `workers` goroutines (semantics as in
// RunParallel). The returned outcomes are exactly the slice Run produces
// for the same cell — same RNG streams, same run order — which is the
// contract that lets a serving daemon answer per-cell requests
// byte-identically to the in-process evaluation (asserted by
// TestRunCellMatchesRun and the dmi-serve integration test).
func RunCell(models *agent.Models, set Setting, task osworld.Task, runs, workers int) []agent.Outcome {
	return executeGrid(models, []Setting{set}, []osworld.Task{task}, runs, workers)
}

// RunSetting evaluates a single matrix cell (exported for focused benches).
func RunSetting(models *agent.Models, set Setting, runs int) Row {
	return RunSettingParallel(models, set, runs, 1)
}

// RunSettingParallel evaluates a single matrix cell over a worker pool.
func RunSettingParallel(models *agent.Models, set Setting, runs, workers int) Row {
	tasks := osworld.All()
	outcomes := executeGrid(models, []Setting{set}, tasks, runs, workers)
	return aggregate(set, tasks, runs, outcomes)
}

// gridJob is one (setting, task, run) cell of the evaluation grid.
type gridJob struct {
	setting Setting
	task    osworld.Task
	run     int
}

// seedLabel derives the RNG experiment label. Common random numbers:
// settings that share a model profile share RNG streams, so differences
// between interfaces are driven by the interface, not seed luck (variance
// reduction across the matrix).
func seedLabel(set Setting) string {
	return set.Profile.Name + "/" + set.Profile.Reasoning
}

// executeGrid runs every grid cell and returns the outcomes in grid order
// (settings-major, then tasks, then runs) regardless of worker count. Each
// worker writes only its own slice elements, so collection needs no locks
// and preserves the deterministic order the aggregation depends on.
func executeGrid(models *agent.Models, settings []Setting, tasks []osworld.Task, runs, workers int) []agent.Outcome {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	jobs := make([]gridJob, 0, len(settings)*len(tasks)*runs)
	for _, set := range settings {
		for _, task := range tasks {
			for r := 0; r < runs; r++ {
				jobs = append(jobs, gridJob{setting: set, task: task, run: r})
			}
		}
	}
	out := make([]agent.Outcome, len(jobs))
	runJob := func(i int) {
		j := jobs[i]
		cfg := agent.Config{Interface: j.setting.Interface, Profile: j.setting.Profile}
		rng := llm.Rand(seedLabel(j.setting), j.task.ID, j.run)
		out[i] = agent.Run(models, j.task, cfg, rng)
	}
	if workers <= 1 || len(jobs) <= 1 {
		for i := range jobs {
			runJob(i)
		}
		return out
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				runJob(i)
			}
		}()
	}
	for i := range jobs {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// aggregate folds one setting's grid-ordered outcomes into its Table 3 row.
func aggregate(set Setting, tasks []osworld.Task, runs int, outcomes []agent.Outcome) Row {
	row := Row{Setting: set, SolvedTasks: make(map[string]bool)}
	var stepSum, coreSum, timeSum float64
	var tokSum float64
	oneShot := 0
	i := 0
	for _, task := range tasks {
		wins := 0
		for r := 0; r < runs; r++ {
			out := outcomes[i]
			i++
			row.Outcomes = append(row.Outcomes, out)
			row.Total++
			tokSum += float64(out.Prompt + out.Completed)
			if out.Success {
				row.Success++
				wins++
				stepSum += float64(out.Steps)
				coreSum += float64(out.CoreSteps)
				timeSum += out.Time.Seconds()
				if out.OneShot {
					oneShot++
				}
			}
		}
		if wins*2 > runs {
			row.SolvedTasks[task.ID] = true
		}
	}
	if row.Total > 0 {
		row.SR = float64(row.Success) / float64(row.Total)
		row.Tokens = tokSum / float64(row.Total)
	}
	if row.Success > 0 {
		row.Steps = stepSum / float64(row.Success)
		row.CoreStep = coreSum / float64(row.Success)
		row.TimeS = timeSum / float64(row.Success)
		row.OneShot = float64(oneShot) / float64(row.Success)
	}
	return row
}

// row lookup helpers ----------------------------------------------------------

// RowFor returns the row for an interface and profile name/reasoning.
func (r *Report) RowFor(iface agent.Interface, model, reasoning string) (Row, bool) {
	for _, row := range r.Rows {
		if row.Setting.Interface == iface &&
			row.Setting.Profile.Name == model &&
			row.Setting.Profile.Reasoning == reasoning {
			return row, true
		}
	}
	return Row{}, false
}

// NormalizedCoreSteps computes Figure 5b: mean core steps per setting over
// the intersection of tasks every listed setting solved (majority of runs).
func (r *Report) NormalizedCoreSteps(rows []Row) []float64 {
	if len(rows) == 0 {
		return nil
	}
	inter := make(map[string]bool)
	for id := range rows[0].SolvedTasks {
		inter[id] = true
	}
	for _, row := range rows[1:] {
		for id := range inter {
			if !row.SolvedTasks[id] {
				delete(inter, id)
			}
		}
	}
	out := make([]float64, len(rows))
	for i, row := range rows {
		sum, n := 0.0, 0
		for _, o := range row.Outcomes {
			if o.Success && inter[o.Task] {
				sum += float64(o.CoreSteps)
				n++
			}
		}
		if n > 0 {
			out[i] = sum / float64(n)
		}
	}
	return out
}

// FailureDistribution computes Figure 6 for a row: counts per channel plus
// the policy/mechanism split.
type FailureDistribution struct {
	Total     int
	ByChannel map[string]int
	Policy    int
	Mechanism int
}

// Failures aggregates the failure causes of a row.
func Failures(row Row) FailureDistribution {
	d := FailureDistribution{ByChannel: make(map[string]int)}
	for _, o := range row.Outcomes {
		if o.Success {
			continue
		}
		d.Total++
		d.ByChannel[o.Failure]++
		if osworld.PolicyLevel(o.Failure) {
			d.Policy++
		} else {
			d.Mechanism++
		}
	}
	return d
}

// Rendering ---------------------------------------------------------------------

// PaperTable3 carries the published numbers for side-by-side comparison.
var PaperTable3 = map[string][3]float64{ // label → SR%, steps, time(s)
	"GUI-only / GPT-5 / Medium":         {44.4, 8.16, 392},
	"GUI-only+forest / GPT-5 / Medium":  {42.0, 8.41, 353},
	"GUI+DMI / GPT-5 / Medium":          {74.1, 4.61, 239},
	"GUI-only / GPT-5 / Minimal":        {23.5, 8.42, 251},
	"GUI+DMI / GPT-5 / Minimal":         {40.7, 5.52, 140},
	"GUI-only / 5-mini / Medium":        {17.3, 7.14, 171},
	"GUI-only+forest / 5-mini / Medium": {23.5, 6.32, 150},
	"GUI+DMI / 5-mini / Medium":         {43.2, 4.43, 167},
}

// WriteTable3 renders the main results with the paper's numbers alongside.
func (r *Report) WriteTable3(w io.Writer) {
	fmt.Fprintln(w, "Table 3: results across interfaces and models (measured vs paper)")
	fmt.Fprintf(w, "%-36s %18s %15s %15s\n", "Interface / Model / Reasoning",
		"SR% (paper)", "Steps (paper)", "Time s (paper)")
	for _, row := range r.Rows {
		p := PaperTable3[row.Setting.Label]
		fmt.Fprintf(w, "%-36s %6.1f (%5.1f) %8.2f (%4.2f) %8.0f (%3.0f)\n",
			row.Setting.Label, 100*row.SR, p[0], row.Steps, p[1], row.TimeS, p[2])
	}
}

// WriteFig5 renders success-rate bars and intersection-normalized core
// steps per model setting.
func (r *Report) WriteFig5(w io.Writer) {
	fmt.Fprintln(w, "Figure 5a: success rate (%)")
	for _, row := range r.Rows {
		bar := strings.Repeat("█", int(row.SR*40+0.5))
		fmt.Fprintf(w, "%-36s %5.1f %s\n", row.Setting.Label, 100*row.SR, bar)
	}
	fmt.Fprintln(w, "\nFigure 5b: normalized core steps (intersection of tasks all methods solve)")
	groups := [][]string{
		{"GUI-only / GPT-5 / Medium", "GUI-only+forest / GPT-5 / Medium", "GUI+DMI / GPT-5 / Medium"},
		{"GUI-only / GPT-5 / Minimal", "GUI+DMI / GPT-5 / Minimal"},
		{"GUI-only / 5-mini / Medium", "GUI-only+forest / 5-mini / Medium", "GUI+DMI / 5-mini / Medium"},
	}
	for _, g := range groups {
		var rows []Row
		for _, label := range g {
			for _, row := range r.Rows {
				if row.Setting.Label == label {
					rows = append(rows, row)
				}
			}
		}
		norm := r.NormalizedCoreSteps(rows)
		for i, row := range rows {
			fmt.Fprintf(w, "%-36s %5.2f\n", row.Setting.Label, norm[i])
		}
		fmt.Fprintln(w)
	}
}

// WriteFig6 renders the failure-cause distribution of the core setting.
func (r *Report) WriteFig6(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: failure-cause distribution (GPT-5 medium)")
	for _, iface := range []agent.Interface{agent.GUIDMI, agent.GUIOnly} {
		row, ok := r.RowFor(iface, "GPT-5", "Medium")
		if !ok {
			continue
		}
		d := Failures(row)
		fmt.Fprintf(w, "\n%s: %d failures — policy %d (%.1f%%), mechanism %d (%.1f%%)\n",
			iface, d.Total, d.Policy, pct(d.Policy, d.Total),
			d.Mechanism, pct(d.Mechanism, d.Total))
		var channels []string
		//dmi:orderinvariant collected channel names are sorted before rendering
		for c := range d.ByChannel {
			channels = append(channels, c)
		}
		sort.Strings(channels)
		for _, c := range channels {
			fmt.Fprintf(w, "  %-24s %3d (%.1f%%)\n", c, d.ByChannel[c], pct(d.ByChannel[c], d.Total))
		}
	}
	fmt.Fprintln(w, "\nPaper: GUI+DMI 81.0% policy / 19.0% mechanism (17/21, 4/21);")
	fmt.Fprintln(w, "       GUI-only 46.7% policy / 53.3% mechanism (21/45, 24/45).")
}

// WriteOneShot renders the §5.3 one-shot statistic.
func (r *Report) WriteOneShot(w io.Writer) {
	row, ok := r.RowFor(agent.GUIDMI, "GPT-5", "Medium")
	if !ok {
		return
	}
	fmt.Fprintf(w, "One-shot completion (§5.3): %.1f%% of successful GUI+DMI trials finish the\n",
		100*row.OneShot)
	fmt.Fprintf(w, "core intent in a single LLM call (4 steps with the fixed 3-step framework\n")
	fmt.Fprintf(w, "overhead). Paper: >61%%.\n")
}

// WriteTokens renders §5.4 token accounting over the whole catalog.
// Catalog apps beyond the paper's three case studies have no published
// baseline to compare against.
func (r *Report) WriteTokens(w io.Writer, models *agent.Models) {
	fmt.Fprintln(w, "Token overhead (§5.4):")
	apps := agent.AppNames()
	paper := map[string]int{"Excel": 30000, "Word": 15000, "PowerPoint": 15000}
	for _, app := range apps {
		if p, ok := paper[app]; ok {
			fmt.Fprintf(w, "  %-11s core topology ≈ %6d tokens (paper ≈ %d)\n",
				app, models.CoreTokens[app], p)
		} else {
			fmt.Fprintf(w, "  %-11s core topology ≈ %6d tokens (catalog app; no paper baseline)\n",
				app, models.CoreTokens[app])
		}
	}
	if g, ok := r.RowFor(agent.GUIOnly, "GPT-5", "Medium"); ok {
		if dmi, ok2 := r.RowFor(agent.GUIDMI, "GPT-5", "Medium"); ok2 {
			fmt.Fprintf(w, "  mean tokens per task: GUI-only %.0f, GUI+DMI %.0f\n", g.Tokens, dmi.Tokens)
		}
	}
}

func pct(n, total int) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}
