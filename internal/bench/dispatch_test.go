package bench

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/osworld"
	"repro/internal/serveproto"
)

// TestGridCells pins the canonical cell enumeration every dispatcher-backed
// run and every aggregation depend on: settings-major over the matrix, then
// tasks in catalog order.
func TestGridCells(t *testing.T) {
	runs := 3
	cells := GridCells(runs)
	settings, tasks := Matrix(), osworld.All()
	if len(cells) != len(settings)*len(tasks) {
		t.Fatalf("%d cells, want %d", len(cells), len(settings)*len(tasks))
	}
	for i, cell := range cells {
		set, task := settings[i/len(tasks)], tasks[i%len(tasks)]
		want := Cell{App: task.App, Task: task.ID, Setting: set.Label, Runs: runs}
		if cell != want {
			t.Fatalf("cell %d = %+v, want %+v", i, cell, want)
		}
	}
}

// TestResolveCell covers the shared validation gate.
func TestResolveCell(t *testing.T) {
	task := osworld.All()[0]
	label := Matrix()[0].Label
	if _, _, err := ResolveCell(Cell{Task: task.ID, Setting: label, Runs: 1}); err != nil {
		t.Fatalf("valid cell rejected: %v", err)
	}
	cases := []struct {
		cell    Cell
		unknown bool
	}{
		{Cell{Task: "no-such-task", Setting: label, Runs: 1}, true},
		{Cell{Task: task.ID, Setting: "no-such-setting", Runs: 1}, true},
		{Cell{App: "WrongApp", Task: task.ID, Setting: label, Runs: 1}, false},
		{Cell{Task: task.ID, Setting: label, Runs: 0}, false},
	}
	for _, c := range cases {
		_, _, err := ResolveCell(c.cell)
		if err == nil {
			t.Errorf("ResolveCell(%+v) accepted an invalid cell", c.cell)
			continue
		}
		if got := errors.Is(err, ErrUnknownCell); got != c.unknown {
			t.Errorf("ResolveCell(%+v): ErrUnknownCell = %v, want %v (err %v)", c.cell, got, c.unknown, err)
		}
	}
}

// fakeDispatcher adapts a function to the Dispatcher interface for
// model-free plumbing tests.
type fakeDispatcher func(ctx context.Context, cell Cell) ([]agent.Outcome, error)

func (f fakeDispatcher) Dispatch(ctx context.Context, cell Cell) ([]agent.Outcome, error) {
	return f(ctx, cell)
}

// TestRunDispatchedPlumbing exercises the orchestration layer without
// models: cancellation, error propagation with cancellation of the
// remaining cells, and the runs-count contract.
func TestRunDispatchedPlumbing(t *testing.T) {
	t.Run("pre-cancelled context", func(t *testing.T) {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		called := false
		_, err := RunDispatched(ctx, fakeDispatcher(func(context.Context, Cell) ([]agent.Outcome, error) {
			called = true
			return nil, nil
		}), 1, 1)
		if err == nil {
			t.Fatal("cancelled run must error")
		}
		if called {
			t.Error("no cell should dispatch after cancellation")
		}
	})
	t.Run("first error cancels the rest", func(t *testing.T) {
		var dispatched atomic.Int64
		boom := errors.New("boom")
		_, err := RunDispatched(context.Background(), fakeDispatcher(func(ctx context.Context, cell Cell) ([]agent.Outcome, error) {
			dispatched.Add(1)
			return nil, boom
		}), 1, 4)
		if !errors.Is(err, boom) {
			t.Fatalf("error not propagated: %v", err)
		}
		if n, total := dispatched.Load(), int64(len(GridCells(1))); n >= total {
			t.Errorf("cancellation never stopped the fan-out: %d of %d cells dispatched", n, total)
		}
	})
	t.Run("non-positive runs dispatch nothing", func(t *testing.T) {
		// The pre-dispatcher executeGrid produced zero jobs and zeroed
		// rows for runs<=0; the seam must preserve that instead of
		// erroring or panicking.
		for _, runs := range []int{0, -3} {
			called := false
			rep, err := RunDispatched(context.Background(), fakeDispatcher(func(context.Context, Cell) ([]agent.Outcome, error) {
				called = true
				return nil, errors.New("no cell should dispatch")
			}), runs, 4)
			if err != nil {
				t.Fatalf("runs=%d: %v", runs, err)
			}
			if called {
				t.Errorf("runs=%d dispatched a cell", runs)
			}
			if len(rep.Rows) != len(Matrix()) || rep.Rows[0].Total != 0 {
				t.Errorf("runs=%d: report rows out of shape: %d rows, total %d",
					runs, len(rep.Rows), rep.Rows[0].Total)
			}
		}
	})
	t.Run("wrong outcome count is an error", func(t *testing.T) {
		_, err := RunDispatched(context.Background(), fakeDispatcher(func(ctx context.Context, cell Cell) ([]agent.Outcome, error) {
			return make([]agent.Outcome, cell.Runs+1), nil
		}), 2, 1)
		if err == nil || !strings.Contains(err.Error(), "outcomes for") {
			t.Fatalf("short/long outcome slices must fail the run, got %v", err)
		}
	})
}

// testReplica is an httptest-backed dmi-serve stand-in: it answers
// POST /session from the shared in-process models through the same
// ResolveCell + RunCell path the daemon uses, with injectable failure
// modes. Its /healthz mirrors the daemon's: 500 while the failure
// injection is active (a down replica's health endpoint is down too, so
// legacy down-stays-down tests hold), ready otherwise — and optionally
// recovering after a set number of probes, for the half-open circuit tests.
type testReplica struct {
	models *agent.Models
	// failAfter starts answering 500 once this many cells have been
	// served (-1 = never fail).
	failAfter int64
	// hang blocks every request until release is closed instead of
	// answering — the wedged-replica case the client timeout must catch.
	// (The request context is not reliable here: with an unread body the
	// server may never notice the client abort, and httptest.Server.Close
	// would wait on the wedged handlers forever.)
	hang    bool
	release chan struct{}
	// conflictBody, when set, answers every /session with 409 and this raw
	// body — the misclassification cases (proxy page, zero-valued JSON).
	conflictBody string
	// probesToRecover lifts the failAfter injection once this many /healthz
	// probes have arrived (0 = the outage is permanent).
	probesToRecover int64
	// instance is echoed on /healthz, mimicking the daemon's per-process id.
	instance string
	// v1 makes the replica speak the versioned protocol generation: its
	// /healthz advertises serveproto.ProtoV1 and it answers POST /v1/cells.
	// Left false, the replica is a faithful legacy stand-in — no proto in
	// its health body and a 404 on the batch route.
	v1 bool

	served           atomic.Int64 // successful cells
	failed           atomic.Int64 // injected failures
	probes           atomic.Int64 // /healthz requests received
	recovered        atomic.Bool  // failure injection lifted by a probe
	servedAtRecovery atomic.Int64 // cells served when recovery happened
	batchCalls       atomic.Int64 // POST /v1/cells envelopes received
	batchCells       atomic.Int64 // cells delivered inside those envelopes
}

// failing reports whether the injected outage is active.
func (tr *testReplica) failing() bool {
	return tr.failAfter >= 0 && tr.served.Load() >= tr.failAfter && !tr.recovered.Load()
}

func (tr *testReplica) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if tr.hang {
		select {
		case <-r.Context().Done():
		case <-tr.release:
		}
		return
	}
	if r.URL.Path == "/healthz" {
		n := tr.probes.Add(1)
		if tr.failing() {
			if tr.probesToRecover > 0 && n >= tr.probesToRecover {
				tr.servedAtRecovery.Store(tr.served.Load())
				tr.recovered.Store(true)
			} else {
				http.Error(w, "injected outage", http.StatusInternalServerError)
				return
			}
		}
		hz := serveproto.Health{OK: true, Apps: 1, Instance: tr.instance}
		if tr.v1 {
			hz.Proto = serveproto.ProtoV1
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(hz)
		return
	}
	if r.URL.Path == "/v1/cells" {
		tr.serveBatch(w, r)
		return
	}
	if tr.conflictBody != "" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		io.WriteString(w, tr.conflictBody)
		return
	}
	if tr.failing() {
		tr.failed.Add(1)
		http.Error(w, "injected replica failure", http.StatusInternalServerError)
		return
	}
	var req serveproto.SessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cell := Cell{App: req.App, Task: req.Task, Setting: req.Setting, Runs: req.Runs}
	set, task, err := ResolveCell(cell)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrUnknownCell) {
			status = http.StatusNotFound
		}
		http.Error(w, err.Error(), status)
		return
	}
	outcomes := RunCell(tr.models, set, task, cell.Runs, 1)
	tr.served.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(serveproto.SessionResponse{
		App: task.App, Task: task.ID, Setting: set.Label, Runs: cell.Runs, Outcomes: outcomes,
	})
}

// serveBatch answers POST /v1/cells with the daemon's per-cell semantics:
// the envelope-level failure injections apply as they do to a single
// session, and each cell carries its own would-be HTTP status so one bad
// cell cannot poison its batch-mates.
func (tr *testReplica) serveBatch(w http.ResponseWriter, r *http.Request) {
	if !tr.v1 {
		http.NotFound(w, r)
		return
	}
	if tr.conflictBody != "" {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		io.WriteString(w, tr.conflictBody)
		return
	}
	if tr.failing() {
		tr.failed.Add(1)
		http.Error(w, "injected replica failure", http.StatusInternalServerError)
		return
	}
	var req serveproto.BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	tr.batchCalls.Add(1)
	tr.batchCells.Add(int64(len(req.Cells)))
	resp := serveproto.BatchResponse{Results: make([]serveproto.BatchCellResult, len(req.Cells))}
	for i, cr := range req.Cells {
		cell := Cell{App: cr.App, Task: cr.Task, Setting: cr.Setting, Runs: cr.Runs}
		set, task, err := ResolveCell(cell)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, ErrUnknownCell) {
				status = http.StatusNotFound
			}
			resp.Results[i] = serveproto.BatchCellResult{Status: status, Error: err.Error()}
			continue
		}
		outcomes := RunCell(tr.models, set, task, cell.Runs, 1)
		tr.served.Add(1)
		resp.Results[i] = serveproto.BatchCellResult{Status: http.StatusOK, Response: &serveproto.SessionResponse{
			App: task.App, Task: task.ID, Setting: set.Label, Runs: cell.Runs, Outcomes: outcomes,
		}}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// startReplicas spins n healthy test replicas plus any custom ones and
// returns their base URLs.
func startReplicas(t *testing.T, replicas ...*testReplica) []string {
	t.Helper()
	urls := make([]string, len(replicas))
	for i, tr := range replicas {
		srv := httptest.NewServer(tr)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// TestRunDispatchedLocalEquivalence is the behavior-preservation proof for
// the tentpole refactor: the dispatcher-routed run renders byte-identically
// to the sequential Run and matches it outcome-for-outcome.
func TestRunDispatchedLocalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	models, rep := sharedReport(t)
	seq := renderAll(models, rep)
	for _, concurrency := range []int{1, 8} {
		got, err := RunDispatched(context.Background(), NewLocalDispatcher(models, 1), 3, concurrency)
		if err != nil {
			t.Fatalf("concurrency=%d: %v", concurrency, err)
		}
		if rendered := renderAll(models, got); rendered != seq {
			t.Fatalf("concurrency=%d: dispatched report differs from sequential", concurrency)
		}
		for i := range rep.Rows {
			for j, o := range rep.Rows[i].Outcomes {
				if got.Rows[i].Outcomes[j] != o {
					t.Fatalf("concurrency=%d row %d outcome %d: %+v != %+v",
						concurrency, i, j, got.Rows[i].Outcomes[j], o)
				}
			}
		}
	}
}

// TestDispatchIdempotent pins the re-dispatch contract the coordinator's
// whole failure-handling story rests on: a cell's outcomes are a pure
// function of (model, task, setting, run), so dispatching the same cell
// twice — on the same dispatcher or on a dispatcher over freshly built
// models, as a failover re-dispatch would — must yield byte-identical
// outcome slices.
func TestDispatchIdempotent(t *testing.T) {
	models, err := agent.BuildModels()
	if err != nil {
		t.Fatal(err)
	}
	rebuilt, err := agent.BuildModels()
	if err != nil {
		t.Fatal(err)
	}
	d := NewLocalDispatcher(models, 1)
	replica := NewLocalDispatcher(rebuilt, 1)
	settings := Matrix()
	cells := []Cell{
		{Task: osworld.All()[0].ID, Setting: settings[0].Label, Runs: 3},
		{Task: osworld.All()[0].ID, Setting: settings[len(settings)-1].Label, Runs: 3},
		{Task: osworld.All()[len(osworld.All())-1].ID, Setting: settings[0].Label, Runs: 2},
	}
	for _, cell := range cells {
		first, err := d.Dispatch(context.Background(), cell)
		if err != nil {
			t.Fatalf("%+v: %v", cell, err)
		}
		a, err := json.Marshal(first)
		if err != nil {
			t.Fatal(err)
		}
		again, err := d.Dispatch(context.Background(), cell)
		if err != nil {
			t.Fatalf("%+v re-dispatch: %v", cell, err)
		}
		b, err := json.Marshal(again)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(b) {
			t.Errorf("%+v: re-dispatch on the same dispatcher diverged:\n%s\n%s", cell, a, b)
		}
		other, err := replica.Dispatch(context.Background(), cell)
		if err != nil {
			t.Fatalf("%+v on rebuilt models: %v", cell, err)
		}
		c, err := json.Marshal(other)
		if err != nil {
			t.Fatal(err)
		}
		if string(a) != string(c) {
			t.Errorf("%+v: dispatch on freshly built models diverged:\n%s\n%s", cell, a, c)
		}
	}
}

// TestRemoteDispatcherEquivalence: two healthy replicas, full grid — the
// remote report must be byte-identical to the sequential in-process one,
// with cells actually sharded across both backends and zero retries.
func TestRemoteDispatcherEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation over HTTP")
	}
	models, rep := sharedReport(t)
	a := &testReplica{models: models, failAfter: -1}
	b := &testReplica{models: models, failAfter: -1}
	rd, err := NewRemoteDispatcher(startReplicas(t, a, b), RemoteOptions{InFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	got, err := RunDispatched(context.Background(), rd, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if renderAll(models, got) != renderAll(models, rep) {
		t.Fatal("remote report differs from sequential in-process run")
	}
	cells := int64(len(GridCells(3)))
	if a.served.Load()+b.served.Load() != cells {
		t.Errorf("replicas served %d+%d cells, want %d total", a.served.Load(), b.served.Load(), cells)
	}
	if a.served.Load() == 0 || b.served.Load() == 0 {
		t.Errorf("sharding is lopsided: %d vs %d cells", a.served.Load(), b.served.Load())
	}
	if rd.Retries() != 0 {
		t.Errorf("healthy replicas produced %d retries", rd.Retries())
	}
	if live := rd.Live(); len(live) != 2 {
		t.Errorf("both replicas should stay live, got %v", live)
	}
}

// TestRemoteDispatcherFailover is the remote failure path of the issue: a
// replica that errors mid-grid is detected, its cells are re-dispatched to
// the surviving replica, and the final report still matches the sequential
// one byte-for-byte (CI runs this under -race).
func TestRemoteDispatcherFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation over HTTP")
	}
	models, rep := sharedReport(t)
	flaky := &testReplica{models: models, failAfter: 10} // dies after 10 cells
	healthy := &testReplica{models: models, failAfter: -1}
	rd, err := NewRemoteDispatcher(startReplicas(t, flaky, healthy), RemoteOptions{InFlight: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	got, err := RunDispatched(context.Background(), rd, 3, 8)
	if err != nil {
		t.Fatalf("failover should absorb the replica failure: %v", err)
	}
	if renderAll(models, got) != renderAll(models, rep) {
		t.Fatal("report after mid-grid failover differs from sequential in-process run")
	}
	for i := range rep.Rows {
		for j, o := range rep.Rows[i].Outcomes {
			if got.Rows[i].Outcomes[j] != o {
				t.Fatalf("row %d outcome %d diverged after failover: %+v != %+v",
					i, j, got.Rows[i].Outcomes[j], o)
			}
		}
	}
	if rd.Retries() < 1 {
		t.Error("the failed cell was never counted as a re-dispatch")
	}
	cells := int64(len(GridCells(3)))
	if total := flaky.served.Load() + healthy.served.Load(); total != cells {
		t.Errorf("replicas served %d cells, want %d", total, cells)
	}
	stats := rd.Stats()
	if !stats[0].Down || stats[0].Failures < 1 {
		t.Errorf("flaky replica not detected as down: %+v", stats[0])
	}
	if stats[1].Down {
		t.Errorf("healthy replica wrongly marked down: %+v", stats[1])
	}
	if live := rd.Live(); len(live) != 1 {
		t.Errorf("exactly one replica should survive, got %v", live)
	}
}

// TestRemoteDispatcherHangingReplica: a wedged replica (accepts, never
// answers) must be timed out by the client, marked down, and its cells
// re-dispatched — the report still matches.
func TestRemoteDispatcherHangingReplica(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation over HTTP")
	}
	models, rep := sharedReport(t)
	hung := &testReplica{models: models, hang: true, release: make(chan struct{})}
	// Unblock the wedged handlers before the t.Cleanup server shutdowns
	// run (defers fire first), so Close doesn't wait on them.
	defer close(hung.release)
	healthy := &testReplica{models: models, failAfter: -1}
	rd, err := NewRemoteDispatcher(startReplicas(t, hung, healthy), RemoteOptions{
		InFlight: 4,
		Client:   &http.Client{Timeout: 2 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	got, err := RunDispatched(context.Background(), rd, 3, 8)
	if err != nil {
		t.Fatalf("hang detection should absorb the wedged replica: %v", err)
	}
	if renderAll(models, got) != renderAll(models, rep) {
		t.Fatal("report after hang failover differs from sequential in-process run")
	}
	if rd.Retries() < 1 {
		t.Error("timed-out cells were never re-dispatched")
	}
	if stats := rd.Stats(); !stats[0].Down {
		t.Errorf("hung replica not marked down: %+v", stats[0])
	}
}

// TestRemoteDispatcherAllDown: when every replica fails the run errors out
// instead of spinning.
func TestRemoteDispatcherAllDown(t *testing.T) {
	if testing.Short() {
		t.Skip("grid fan-out over HTTP")
	}
	models, _ := sharedReport(t)
	dead := &testReplica{models: models, failAfter: 0}
	rd, err := NewRemoteDispatcher(startReplicas(t, dead), RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if _, err := RunDispatched(context.Background(), rd, 1, 2); err == nil ||
		!strings.Contains(err.Error(), "all replicas failed") {
		t.Fatalf("run over dead replicas must fail, got %v", err)
	}
}

// TestRemoteDispatcherBadRequestIsFinal: a 4xx is the cell's fault; it must
// surface immediately without downing the replica.
func TestRemoteDispatcherBadRequestIsFinal(t *testing.T) {
	if testing.Short() {
		t.Skip("starts HTTP servers")
	}
	models, _ := sharedReport(t)
	a := &testReplica{models: models, failAfter: -1}
	rd, err := NewRemoteDispatcher(startReplicas(t, a), RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	_, err = rd.Dispatch(context.Background(), Cell{Task: "no-such-task", Setting: Matrix()[0].Label, Runs: 1})
	if err == nil || !strings.Contains(err.Error(), "unknown task") {
		t.Fatalf("404 must surface as the cell's error, got %v", err)
	}
	if stats := rd.Stats(); stats[0].Down {
		t.Error("a bad request must not down the replica")
	}
}

// TestRemoteDispatcherRejectsNonPositiveRuns: a runs<=0 cell must fail
// before any replica contact — the daemon would coerce it to 1 and the
// contract mismatch would read as a fleet-wide failure.
func TestRemoteDispatcherRejectsNonPositiveRuns(t *testing.T) {
	rd, err := NewRemoteDispatcher([]string{"http://127.0.0.1:1"}, RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if _, err := rd.Dispatch(context.Background(), Cell{Task: "x", Setting: "y", Runs: 0}); err == nil ||
		!strings.Contains(err.Error(), "must be positive") {
		t.Fatalf("runs=0 cell must be rejected, got %v", err)
	}
	if rd.Stats()[0].Down {
		t.Error("the guard must fire before any replica is contacted")
	}
}

// TestNewRemoteDispatcherValidation rejects unusable replica lists.
func TestNewRemoteDispatcherValidation(t *testing.T) {
	cases := [][]string{
		nil,
		{},
		{""},
		{"   "},
		{"not-a-url"},
		{"http://a:1", "http://a:1"}, // duplicate
	}
	for _, urls := range cases {
		if _, err := NewRemoteDispatcher(urls, RemoteOptions{}); err == nil {
			t.Errorf("NewRemoteDispatcher(%q) accepted a bad replica list", urls)
		}
	}
	rd, err := NewRemoteDispatcher([]string{"http://a:1/", "https://b:2"}, RemoteOptions{})
	if err != nil {
		t.Errorf("valid replica list rejected: %v", err)
	} else {
		rd.Close()
		rd.Close() // Close is idempotent
	}
}
