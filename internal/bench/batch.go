package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/agent"
	"repro/internal/serveproto"
)

// Wire protocol generations a replica can speak, cached per replica after
// one /healthz detection (Health.Proto). protoUnknown means no detection has
// run yet; protoLegacy is a pre-versioning replica that answers only the
// unversioned routes and therefore cannot take batched dispatches.
const (
	protoUnknown = 0
	protoV1      = serveproto.ProtoV1
	protoLegacy  = -1
)

// batchLinger is how long the collector holds an underfull batch open for
// more cells before shipping it. Two milliseconds is invisible next to a
// session round trip but long enough for a worker pool's burst of dispatches
// to coalesce; a batch that reaches the configured size ships immediately
// without waiting out the linger.
const batchLinger = 2 * time.Millisecond

// batchItem is one Dispatch call parked in the coalescing queue: its cell,
// the caller's context, and a one-shot result channel. The channel is
// buffered so a delivery never blocks on a caller that gave up (the caller
// returns ctx.Err() and the buffered result is dropped — harmless, cells are
// idempotent).
type batchItem struct {
	ctx  context.Context
	cell Cell
	res  chan batchResult
}

type batchResult struct {
	outcomes []agent.Outcome
	err      error
}

func (it *batchItem) deliver(outcomes []agent.Outcome, err error) {
	it.res <- batchResult{outcomes: outcomes, err: err}
}

// collect is the coalescing loop, one goroutine per batching dispatcher: it
// blocks for a first item, gathers follow-ups until the batch is full or the
// linger expires, and hands the batch to runBatch. Gathering and posting are
// decoupled (runBatch runs in its own goroutine) so a slow batch in flight
// never stalls the next batch from forming.
func (d *RemoteDispatcher) collect() {
	for {
		select {
		case <-d.done:
			// Close raced an enqueue: give stragglers a grace window, then
			// stop. Anything drained here re-dispatches through the
			// single-session path, so no caller is left waiting.
			for {
				select {
				case it := <-d.batchQ:
					d.fallback([]*batchItem{it})
				case <-time.After(10 * time.Millisecond):
					return
				}
			}
		case first := <-d.batchQ:
			items := []*batchItem{first}
			timer := time.NewTimer(d.linger)
		gather:
			for len(items) < d.batch {
				select {
				case it := <-d.batchQ:
					items = append(items, it)
				case <-timer.C:
					break gather
				case <-d.done:
					break gather
				}
			}
			timer.Stop()
			go d.runBatch(items)
		}
	}
}

// runBatch makes exactly one batched attempt — one POST /v1/cells against
// one picked replica, holding one of its in-flight slots — and falls back to
// the single-session path for anything the attempt cannot settle: no live
// replica, a legacy replica, a failed envelope, or individual cells the
// replica answered 5xx. The fallback is what keeps batching a pure transport
// optimization: every failure mode degrades to the exact retry/failover
// semantics dispatchSingle already has, so a batched run can never lose a
// cell a sequential run would have completed.
//
// Accounting invariant: every markDown here is paired with one retries
// increment, because the item goes back through replica selection via
// dispatchSingle — so Retries() still equals the sum of per-replica Failures
// at quiescence, batched or not.
func (d *RemoteDispatcher) runBatch(items []*batchItem) {
	rep := d.pick(nil)
	if rep == nil || d.protoFor(rep) != protoV1 {
		d.fallback(items)
		return
	}
	select {
	case rep.slot <- struct{}{}:
	case <-items[0].ctx.Done():
		d.fallback(items) // cancelled callers resolve instantly in dispatchSingle
		return
	}
	rep.mu.Lock()
	skip := rep.down || rep.removed
	if skip {
		rep.skips++
	}
	rep.mu.Unlock()
	if skip {
		<-rep.slot
		d.fallback(items)
		return
	}
	results, err := d.postBatch(items[0].ctx, rep, items)
	<-rep.slot
	if err != nil {
		d.settleBatchError(rep, items, err)
		return
	}
	var redo []*batchItem
	for i, it := range items {
		res := results[i]
		switch {
		case res.Status == http.StatusOK:
			sr := res.Response
			if sr == nil || sr.Task != it.cell.Task || sr.Setting != it.cell.Setting || len(sr.Outcomes) != it.cell.Runs {
				// A malformed per-cell answer is the replica's fault, exactly
				// like a malformed single-session response.
				d.markDown(rep, batchCellEchoError(it.cell, sr))
				d.countRetries(1)
				redo = append(redo, it)
				continue
			}
			rep.mu.Lock()
			rep.cells++
			rep.mu.Unlock()
			it.deliver(sr.Outcomes, nil)
		case res.Status == http.StatusConflict:
			// A per-cell 409 cannot happen from this client (the pack
			// handshake is request-level and rejects the whole envelope), so
			// if one arrives the replica is making a judgment this client
			// never asked for — surface it as the cell's final error.
			it.deliver(nil, fmt.Errorf("replica %s rejected batch cell: status 409: %s", rep.base, res.Error))
		case res.Status >= 400 && res.Status < 500:
			// The cell's own fault; every replica would reject it identically.
			it.deliver(nil, &requestError{msg: fmt.Sprintf("status %d: %s", res.Status, strings.TrimSpace(res.Error))})
		default:
			// 5xx (or a nonsensical status): this cell failed on this
			// replica; its batch-mates are unaffected.
			d.markDown(rep, fmt.Errorf("batch cell status %d: %s", res.Status, res.Error))
			d.countRetries(1)
			redo = append(redo, it)
		}
	}
	d.fallback(redo)
}

func batchCellEchoError(cell Cell, sr *serveproto.SessionResponse) error {
	if sr == nil {
		return errors.New("batch cell answered 200 with no response body")
	}
	return fmt.Errorf("batch cell echoes (%q,%q,%d outcomes), want (%q,%q,%d)",
		sr.Task, sr.Setting, len(sr.Outcomes), cell.Task, cell.Setting, cell.Runs)
}

// settleBatchError triages a failed batch envelope the way Dispatch triages
// a failed single post: cancellation and pack mismatch are not the replica's
// fault; a request-level 4xx means the batch surface itself misbehaved (a
// replica swapped to a pre-batch binary between detection and post), so the
// cached proto is dropped for re-detection; everything else is one failed
// attempt on the replica.
func (d *RemoteDispatcher) settleBatchError(rep *replica, items []*batchItem, err error) {
	if items[0].ctx.Err() != nil {
		d.fallback(items)
		return
	}
	var mismatch *PackMismatchError
	if errors.As(err, &mismatch) {
		// Fatal for every cell, exactly like the single path: the operator
		// must restart one side, re-dispatching cannot help.
		for _, it := range items {
			it.deliver(nil, err)
		}
		return
	}
	var bad *requestError
	if errors.As(err, &bad) {
		rep.mu.Lock()
		rep.proto = protoUnknown
		rep.mu.Unlock()
		d.logf("replica %s rejected a batch envelope (%v); re-detecting its protocol", rep.base, err)
		d.fallback(items)
		return
	}
	d.markDown(rep, err)
	d.countRetries(1)
	d.fallback(items)
}

// fallback re-dispatches items one cell at a time through the single-session
// path, each on its own goroutine so one slow cell does not serialize its
// former batch-mates. dispatchSingle carries its own retry/failover loop and
// its own accounting, so a fallen-back cell is indistinguishable from one
// dispatched without batching.
func (d *RemoteDispatcher) fallback(items []*batchItem) {
	for _, it := range items {
		go func(it *batchItem) {
			it.deliver(d.dispatchSingle(it.ctx, it.cell))
		}(it)
	}
}

// protoFor returns the wire generation a replica speaks, detecting it with
// one /healthz round trip on first use and caching the verdict. Detection
// failures are not cached (a blip must not pin a v1 replica on the slow
// path for the dispatcher's lifetime) and read as legacy for the attempt in
// hand. A legacy verdict logs a deprecation note once — the unversioned
// routes are a one-release compatibility alias.
func (d *RemoteDispatcher) protoFor(rep *replica) int {
	rep.mu.Lock()
	p := rep.proto
	rep.mu.Unlock()
	if p != protoUnknown {
		return p
	}
	hz, err := d.probeHealthz(rep.base)
	if err != nil {
		return protoLegacy
	}
	p = protoLegacy
	if hz.Proto >= serveproto.ProtoV1 {
		p = protoV1
	}
	rep.mu.Lock()
	rep.proto = p
	rep.mu.Unlock()
	if p == protoLegacy {
		d.logf("replica %s answers only the deprecated legacy routes (no proto in /healthz); "+
			"its cells will not batch — upgrade it to the /v1 surface", rep.base)
	}
	return p
}

func (d *RemoteDispatcher) countRetries(n int) {
	d.mu.Lock()
	d.retries += n
	d.mu.Unlock()
}

// postBatch runs one POST /v1/cells round trip: the items' cells in request
// order under the run's request-level pack handshake, the declared cell
// count in the size header so the replica can bound its body reader before
// reading a byte. The envelope-level 409 triage mirrors post()'s — only a
// well-formed PackMismatch is the replica's considered verdict.
func (d *RemoteDispatcher) postBatch(ctx context.Context, rep *replica, items []*batchItem) ([]serveproto.BatchCellResult, error) {
	cells := make([]serveproto.SessionRequest, len(items))
	for i, it := range items {
		cells[i] = serveproto.SessionRequest{
			App: it.cell.App, Task: it.cell.Task, Setting: it.cell.Setting, Runs: it.cell.Runs,
		}
	}
	body, err := json.Marshal(serveproto.BatchRequest{Pack: d.pack, PackHash: d.packHash, Cells: cells})
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rep.base+"/v1/cells", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serveproto.BatchSizeHeader, strconv.Itoa(len(cells)))
	resp, err := d.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusConflict {
		var pm serveproto.PackMismatch
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1024)).Decode(&pm); err == nil &&
			(pm.HavePack != "" || pm.HaveHash != "") {
			return nil, &PackMismatchError{
				Replica:  rep.base,
				WantPack: pm.WantPack, WantHash: pm.WantHash,
				HavePack: pm.HavePack, HaveHash: pm.HaveHash,
			}
		}
		return nil, errors.New("status 409 with malformed pack-mismatch body")
	}
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		msg := fmt.Sprintf("batch status %d: %s", resp.StatusCode, strings.TrimSpace(string(raw)))
		if resp.StatusCode >= 400 && resp.StatusCode < 500 {
			return nil, &requestError{msg: msg}
		}
		return nil, errors.New(msg)
	}
	var br serveproto.BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		return nil, fmt.Errorf("malformed batch response: %w", err)
	}
	if len(br.Results) != len(cells) {
		return nil, fmt.Errorf("batch answered %d results for %d cells", len(br.Results), len(cells))
	}
	return br.Results, nil
}
