package bench

import (
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestAddRemoveReplica covers the elastic-membership surface: validation,
// list semantics, capacity accounting, and revive-in-place on re-add.
func TestAddRemoveReplica(t *testing.T) {
	rd, err := NewRemoteDispatcher([]string{"http://a:1"}, RemoteOptions{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if err := rd.AddReplica("http://a:1"); err == nil {
		t.Error("adding a present replica must fail")
	}
	if err := rd.AddReplica("not-a-url"); err == nil {
		t.Error("adding a malformed URL must fail")
	}
	if err := rd.AddReplica("http://b:2/"); err != nil {
		t.Fatalf("add: %v", err)
	}
	if got := rd.Members(); len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:2" {
		t.Fatalf("Members() = %v, want [http://a:1 http://b:2]", got)
	}
	if got := rd.Capacity(); got != 8 { // 2 replicas × default in-flight 4
		t.Errorf("Capacity() = %d, want 8", got)
	}

	if err := rd.RemoveReplica("http://c:3"); err == nil {
		t.Error("removing an unknown replica must fail")
	}
	if err := rd.RemoveReplica("http://b:2"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if err := rd.RemoveReplica("http://b:2"); err == nil {
		t.Error("removing an already-removed replica must fail")
	}
	if got := rd.Members(); len(got) != 1 || got[0] != "http://a:1" {
		t.Errorf("Members() after remove = %v, want [http://a:1]", got)
	}
	if got := rd.Live(); len(got) != 1 {
		t.Errorf("Live() after remove = %v, want one replica", got)
	}
	if got := rd.Capacity(); got != 4 {
		t.Errorf("Capacity() after remove = %d, want 4", got)
	}
	// Removed replicas stay visible in Stats, flagged.
	stats := rd.Stats()
	if len(stats) != 2 || !stats[1].Removed {
		t.Errorf("Stats() must keep the removed replica flagged: %+v", stats)
	}

	// Re-adding revives in place: back in rotation, same membership slot.
	if err := rd.AddReplica("http://b:2"); err != nil {
		t.Fatalf("re-add: %v", err)
	}
	stats = rd.Stats()
	if len(stats) != 2 || stats[1].Removed || stats[1].Down {
		t.Errorf("re-added replica not revived in place: %+v", stats)
	}
	if got := rd.Live(); len(got) != 2 {
		t.Errorf("Live() after re-add = %v, want both", got)
	}
}

// TestMembershipChurnRace hammers Live/Stats/Members/Capacity/Retries
// readers against concurrent dispatching (with down-marking and fast
// recovery probes) and add/remove churn. The assertions are light — the
// point is the -race run: every counter access must hold the right lock.
func TestMembershipChurnRace(t *testing.T) {
	good := &echoReplica{}
	goodSrv := httptest.NewServer(good)
	t.Cleanup(goodSrv.Close)
	// A replica that flaps: sessions always 500, healthz always ready — so
	// every dispatch that reaches it down-marks it and the prober promptly
	// recovers it, exercising both transitions continuously.
	flap := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"ok":true,"apps":1}`))
			return
		}
		http.Error(w, "flap", http.StatusInternalServerError)
	}))
	t.Cleanup(flap.Close)

	rd, err := NewRemoteDispatcher([]string{goodSrv.URL, flap.URL}, RemoteOptions{
		InFlight:      2,
		ProbeInterval: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rd.Stats()
				rd.Live()
				rd.Members()
				rd.Capacity()
				rd.Retries()
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		third := "http://127.0.0.1:1"
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := rd.AddReplica(third); err == nil {
				rd.RemoveReplica(third)
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		cell := Cell{Task: "t", Setting: "s", Runs: 1}
		for {
			select {
			case <-stop:
				return
			default:
			}
			rd.Dispatch(context.Background(), cell) // errors expected; churn is the point
		}
	}()
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
	if good.served.Load() == 0 {
		t.Error("no cell ever reached the healthy replica during the churn")
	}
}
