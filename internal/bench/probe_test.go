package bench

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/osworld"
	"repro/internal/serveproto"
)

// waitForRecovery polls until the replica at stats index i reports at least
// one recovery, or the deadline passes.
func waitForRecovery(t *testing.T, rd *RemoteDispatcher, i int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for time.Now().Before(deadline) {
		if rd.Stats()[i].Recoveries >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("replica %d never recovered within %s: %+v", i, within, rd.Stats()[i])
}

// TestRemoteDispatcherRecovery is the half-open circuit acceptance test
// (run under -race in CI): a replica that fails mid-grid is down-marked,
// the run completes byte-identical on the survivor, the prober brings the
// failed replica back once its /healthz answers ready, and the recovered
// replica serves further cells.
func TestRemoteDispatcherRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation over HTTP")
	}
	models, rep := sharedReport(t)
	flaky := &testReplica{models: models, failAfter: 3, probesToRecover: 2, instance: "flaky-1"}
	healthy := &testReplica{models: models, failAfter: -1}
	rd, err := NewRemoteDispatcher(startReplicas(t, flaky, healthy), RemoteOptions{
		InFlight:      4,
		ProbeInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	got, err := RunDispatched(context.Background(), rd, 3, 8)
	if err != nil {
		t.Fatalf("recovery run failed: %v", err)
	}
	if renderAll(models, got) != renderAll(models, rep) {
		t.Fatal("report with a mid-run recovery differs from sequential in-process run")
	}
	waitForRecovery(t, rd, 0, 10*time.Second)
	stats := rd.Stats()
	if stats[0].Down {
		t.Errorf("recovered replica still marked down: %+v", stats[0])
	}
	if stats[0].DownSeconds <= 0 {
		t.Errorf("down duration not recorded: %+v", stats[0])
	}
	if live := rd.Live(); len(live) != 2 {
		t.Errorf("both replicas should be in rotation after recovery, got %v", live)
	}
	// The recovered replica must actually serve again: with two live
	// replicas and round-robin tie-breaking, four sequential cells cannot
	// all land on the survivor.
	cell := Cell{Task: osworld.All()[0].ID, Setting: Matrix()[0].Label, Runs: 1}
	before := flaky.served.Load()
	for i := 0; i < 4; i++ {
		if _, err := rd.Dispatch(context.Background(), cell); err != nil {
			t.Fatalf("dispatch after recovery: %v", err)
		}
	}
	if flaky.served.Load() <= before {
		t.Error("recovered replica never served a cell after rejoining rotation")
	}
}

// TestRemoteDispatcher409Misclassification pins the 409 triage fix: only a
// well-formed PackMismatch body with its replica-side fields filled in is a
// pack verdict. A proxy error page or a zero-valued JSON object arriving as
// 409 is a broken backend — down-mark it and re-dispatch the cell, instead
// of aborting the run with a bogus mismatch or a final request error.
func TestRemoteDispatcher409Misclassification(t *testing.T) {
	if testing.Short() {
		t.Skip("starts HTTP servers")
	}
	models, _ := sharedReport(t)
	cell := Cell{Task: osworld.All()[0].ID, Setting: Matrix()[0].Label, Runs: 1}
	cases := []struct {
		name, body string
	}{
		{"proxy html body", "<html>502 Bad Gateway</html>"},
		{"empty pack fields", `{"want_pack":"","want_hash":"","have_pack":"","have_hash":""}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bad := &testReplica{models: models, failAfter: -1, conflictBody: tc.body}
			good := &testReplica{models: models, failAfter: -1}
			rd, err := NewRemoteDispatcher(startReplicas(t, bad, good), RemoteOptions{ProbeInterval: -1})
			if err != nil {
				t.Fatal(err)
			}
			defer rd.Close()
			outcomes, err := rd.Dispatch(context.Background(), cell)
			if err != nil {
				t.Fatalf("malformed 409 must fail over, not abort: %v", err)
			}
			if len(outcomes) != 1 {
				t.Fatalf("%d outcomes from the failover, want 1", len(outcomes))
			}
			stats := rd.Stats()
			if !stats[0].Down {
				t.Errorf("replica answering malformed 409s not marked down: %+v", stats[0])
			}
			if stats[1].Down {
				t.Errorf("healthy failover replica wrongly down: %+v", stats[1])
			}
			if rd.Retries() != 1 {
				t.Errorf("Retries() = %d, want 1", rd.Retries())
			}
		})
	}
	t.Run("well-formed mismatch is still final", func(t *testing.T) {
		bad := &testReplica{models: models, failAfter: -1,
			conflictBody: `{"want_pack":"osworld-w","want_hash":"abc","have_pack":"other-pack","have_hash":"deadbeef"}`}
		good := &testReplica{models: models, failAfter: -1}
		rd, err := NewRemoteDispatcher(startReplicas(t, bad, good), RemoteOptions{ProbeInterval: -1})
		if err != nil {
			t.Fatal(err)
		}
		defer rd.Close()
		_, err = rd.Dispatch(context.Background(), cell)
		var mismatch *PackMismatchError
		if !errors.As(err, &mismatch) {
			t.Fatalf("well-formed 409 must surface as PackMismatchError, got %v", err)
		}
		if mismatch.HavePack != "other-pack" {
			t.Errorf("mismatch names pack %q, want %q", mismatch.HavePack, "other-pack")
		}
		if rd.Stats()[0].Down {
			t.Error("a pack mismatch is a configuration error, not a replica failure — no down-mark")
		}
	})
}

// echoReplica is a minimal protocol stub: it answers any /session with the
// requested number of zero outcomes and /healthz with ready. No models, so
// tie-break and membership tests stay cheap.
type echoReplica struct {
	served atomic.Int64
}

func (er *echoReplica) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serveproto.Health{OK: true, Apps: 1})
		return
	}
	var req serveproto.SessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	er.served.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(serveproto.SessionResponse{
		App: req.App, Task: req.Task, Setting: req.Setting, Runs: req.Runs,
		Outcomes: make([]agent.Outcome, req.Runs),
	})
}

// TestPickTieBreakRoundRobin pins the tie-break fix: sequential dispatches
// (every replica at load 0, a permanent tie) must rotate across the fleet
// instead of all landing on replica 0.
func TestPickTieBreakRoundRobin(t *testing.T) {
	replicas := []*echoReplica{{}, {}, {}}
	urls := make([]string, len(replicas))
	for i, er := range replicas {
		srv := httptest.NewServer(er)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	rd, err := NewRemoteDispatcher(urls, RemoteOptions{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	cell := Cell{Task: "t", Setting: "s", Runs: 1}
	for i := 0; i < 9; i++ {
		if _, err := rd.Dispatch(context.Background(), cell); err != nil {
			t.Fatalf("dispatch %d: %v", i, err)
		}
	}
	for i, er := range replicas {
		if n := er.served.Load(); n != 3 {
			t.Errorf("replica %d served %d cells, want 3 (equal-load ties must rotate)", i, n)
		}
	}
}
