package bench

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/serveproto"
)

// probeTimeout bounds one half-open /healthz round trip. Probes run against
// replicas already suspected dead, so they must fail fast: a hung replica
// costs one prober goroutine 5 seconds, not the 5-minute session timeout.
const probeTimeout = 5 * time.Second

// probe is the half-open side of the circuit breaker: one goroutine per
// down-marked replica, polling its /healthz on a jittered exponential
// backoff until the replica answers ready again (then it rejoins rotation)
// or the dispatcher is closed. "Half-open" because recovery is judged on
// the cheap health endpoint, not by risking a real cell: no session
// traffic reaches the replica until a probe has vouched for it.
//
// Recovery re-checks pack identity — a replica that restarted with a
// different task pack is alive but must not rejoin this run's rotation
// (its outcomes would come from different task content), so the prober
// keeps backing off until the packs agree. The /healthz instance id
// distinguishes a replica that blipped from one that was killed and
// restarted; both recover, but the log says which happened.
func (d *RemoteDispatcher) probe(rep *replica) {
	defer func() {
		rep.mu.Lock()
		rep.probing = false
		rep.mu.Unlock()
	}()
	backoff := d.probeBase
	for {
		select {
		case <-d.done:
			return
		case <-time.After(d.jitter(backoff)):
		}
		rep.mu.Lock()
		stop := rep.removed || !rep.down
		rep.mu.Unlock()
		if stop {
			return
		}
		hz, err := d.probeHealthz(rep.base)
		if err == nil && d.pack != "" && hz.Pack != "" && hz.Pack != d.pack {
			err = fmt.Errorf("pack %q, want %q", hz.Pack, d.pack)
		}
		if err == nil && d.packHash != "" && hz.PackHash != "" && hz.PackHash != d.packHash {
			err = fmt.Errorf("pack hash %.12s, want %.12s", hz.PackHash, d.packHash)
		}
		if err != nil {
			d.logf("replica %s still down (probe: %v)", rep.base, err)
			backoff *= 2
			if backoff > d.probeMax {
				backoff = d.probeMax
			}
			continue
		}
		rep.mu.Lock()
		if rep.removed {
			rep.mu.Unlock()
			return
		}
		rep.down = false
		rep.recoveries++
		var downFor time.Duration
		if !rep.downSince.IsZero() {
			downFor = time.Since(rep.downSince)
			rep.downTotal += downFor
			rep.downSince = time.Time{}
		}
		restarted := hz.Instance != "" && rep.instance != "" && hz.Instance != rep.instance
		rep.instance = hz.Instance
		// The probe already paid for a health round trip that carries the
		// protocol generation — refresh the cache, since a replica killed
		// and restarted may have come back as a different binary.
		if hz.Proto >= serveproto.ProtoV1 {
			rep.proto = protoV1
		} else {
			rep.proto = protoLegacy
		}
		rep.mu.Unlock()
		if restarted {
			d.logf("replica %s recovered after %s (new instance %s); back in rotation",
				rep.base, downFor.Round(time.Millisecond), hz.Instance)
		} else {
			d.logf("replica %s recovered after %s; back in rotation",
				rep.base, downFor.Round(time.Millisecond))
		}
		return
	}
}

// probeHealthz asks a replica whether it is ready to serve.
func (d *RemoteDispatcher) probeHealthz(base string) (*serveproto.Health, error) {
	resp, err := d.probeClient.Get(base + "/healthz")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var hz serveproto.Health
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		return nil, fmt.Errorf("malformed health body: %w", err)
	}
	if !hz.OK {
		return nil, fmt.Errorf("not ready")
	}
	return &hz, nil
}

// jitter spreads a backoff delay uniformly over [base/2, 3·base/2) so
// probers for replicas that went down together (one rack, one deploy)
// don't hammer them back in lockstep.
func (d *RemoteDispatcher) jitter(base time.Duration) time.Duration {
	if base <= 0 {
		return 0
	}
	d.mu.Lock()
	f := d.rng.Float64()
	d.mu.Unlock()
	return base/2 + time.Duration(f*float64(base))
}
