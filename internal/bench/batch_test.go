package bench

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/osworld"
)

// batchedDispatcher builds a RemoteDispatcher with coalescing enabled and a
// test-friendly linger: long enough that a burst of concurrent dispatches
// deterministically lands in one batch when the test wants it to.
func batchedDispatcher(t *testing.T, urls []string, opt RemoteOptions, linger time.Duration) *RemoteDispatcher {
	t.Helper()
	rd, err := NewRemoteDispatcher(urls, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rd.Close)
	// Safe before the first Dispatch: the collector only reads the linger
	// after receiving an item, which the enqueue channel orders after this
	// write.
	rd.linger = linger
	return rd
}

// TestRemoteDispatcherBatchEquivalence: two v1 replicas, full grid, batching
// on — the report must be byte-identical to the sequential in-process run,
// with every cell delivered through the batch surface and zero retries.
func TestRemoteDispatcherBatchEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation over HTTP")
	}
	models, rep := sharedReport(t)
	a := &testReplica{models: models, failAfter: -1, v1: true}
	b := &testReplica{models: models, failAfter: -1, v1: true}
	rd := batchedDispatcher(t, startReplicas(t, a, b), RemoteOptions{InFlight: 4, Batch: 8}, batchLinger)
	got, err := RunDispatched(context.Background(), rd, 3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if renderAll(models, got) != renderAll(models, rep) {
		t.Fatal("batched remote report differs from sequential in-process run")
	}
	cells := int64(len(GridCells(3)))
	if served := a.served.Load() + b.served.Load(); served != cells {
		t.Errorf("replicas served %d cells, want %d", served, cells)
	}
	if viaBatch := a.batchCells.Load() + b.batchCells.Load(); viaBatch != cells {
		t.Errorf("%d of %d cells travelled the batch surface; the rest leaked to /session", viaBatch, cells)
	}
	if a.batchCalls.Load() == 0 || b.batchCalls.Load() == 0 {
		t.Errorf("batch sharding is lopsided: %d vs %d envelopes", a.batchCalls.Load(), b.batchCalls.Load())
	}
	if rd.Retries() != 0 {
		t.Errorf("healthy batched replicas produced %d retries", rd.Retries())
	}
}

// TestRemoteDispatcherBatchCoalesces pins the transport amortization itself:
// four concurrent dispatches against a batch-of-4 dispatcher with a long
// linger must arrive as exactly one POST /v1/cells carrying four cells.
func TestRemoteDispatcherBatchCoalesces(t *testing.T) {
	if testing.Short() {
		t.Skip("starts HTTP servers")
	}
	models, _ := sharedReport(t)
	tr := &testReplica{models: models, failAfter: -1, v1: true}
	rd := batchedDispatcher(t, startReplicas(t, tr), RemoteOptions{Batch: 4}, 2*time.Second)
	settings, tasks := Matrix(), osworld.All()
	cells := []Cell{
		{Task: tasks[0].ID, Setting: settings[0].Label, Runs: 1},
		{Task: tasks[1].ID, Setting: settings[0].Label, Runs: 1},
		{Task: tasks[0].ID, Setting: settings[1].Label, Runs: 1},
		{Task: tasks[1].ID, Setting: settings[1].Label, Runs: 1},
	}
	var wg sync.WaitGroup
	errs := make([]error, len(cells))
	outs := make([][]agent.Outcome, len(cells))
	for i, cell := range cells {
		wg.Add(1)
		go func(i int, cell Cell) {
			defer wg.Done()
			outs[i], errs[i] = rd.Dispatch(context.Background(), cell)
		}(i, cell)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cell %d: %v", i, err)
		}
		if len(outs[i]) != 1 {
			t.Fatalf("cell %d: %d outcomes, want 1", i, len(outs[i]))
		}
	}
	if calls := tr.batchCalls.Load(); calls != 1 {
		t.Errorf("4 concurrent dispatches produced %d batch envelopes, want 1", calls)
	}
	if n := tr.batchCells.Load(); n != 4 {
		t.Errorf("the batch carried %d cells, want 4", n)
	}
}

// TestRemoteDispatcherBatchFailover: a v1 replica that dies mid-grid fails
// its batch envelopes; the cells must fall back through the single-session
// retry loop to the survivor, the report must still match the sequential
// run byte-for-byte, and the retry ledger must stay consistent with the
// per-replica failure counters.
func TestRemoteDispatcherBatchFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation over HTTP")
	}
	models, rep := sharedReport(t)
	flaky := &testReplica{models: models, failAfter: 10, v1: true}
	healthy := &testReplica{models: models, failAfter: -1, v1: true}
	rd := batchedDispatcher(t, startReplicas(t, flaky, healthy), RemoteOptions{InFlight: 4, Batch: 4}, batchLinger)
	got, err := RunDispatched(context.Background(), rd, 3, 8)
	if err != nil {
		t.Fatalf("batched failover should absorb the replica failure: %v", err)
	}
	if renderAll(models, got) != renderAll(models, rep) {
		t.Fatal("batched report after mid-grid failover differs from sequential run")
	}
	if rd.Retries() < 1 {
		t.Error("the failed batch was never counted as a re-dispatch")
	}
	sum := 0
	for _, st := range rd.Stats() {
		sum += st.Failures
	}
	if rd.Retries() != sum {
		t.Errorf("Retries() = %d, but per-replica failures sum to %d", rd.Retries(), sum)
	}
	if stats := rd.Stats(); !stats[0].Down || stats[1].Down {
		t.Errorf("down-marks landed on the wrong replica: %+v", stats)
	}
	if total := flaky.served.Load() + healthy.served.Load(); total != int64(len(GridCells(3))) {
		t.Errorf("replicas served %d cells, want %d", total, len(GridCells(3)))
	}
}

// TestRemoteDispatcherBatchBadCellIsFinal: one invalid cell inside a batch
// must surface as that cell's own final 4xx while its three batch-mates
// succeed untouched — the per-cell status contract that keeps one typo from
// poisoning a whole envelope. The replica is never at fault, so nothing is
// down-marked and nothing retries.
func TestRemoteDispatcherBatchBadCellIsFinal(t *testing.T) {
	if testing.Short() {
		t.Skip("starts HTTP servers")
	}
	models, _ := sharedReport(t)
	tr := &testReplica{models: models, failAfter: -1, v1: true}
	rd := batchedDispatcher(t, startReplicas(t, tr), RemoteOptions{Batch: 4}, 2*time.Second)
	settings, tasks := Matrix(), osworld.All()
	cells := []Cell{
		{Task: tasks[0].ID, Setting: settings[0].Label, Runs: 1},
		{Task: "no-such-task", Setting: settings[0].Label, Runs: 1},
		{Task: tasks[1].ID, Setting: settings[0].Label, Runs: 1},
		{Task: tasks[2].ID, Setting: settings[0].Label, Runs: 1},
	}
	var wg sync.WaitGroup
	errs := make([]error, len(cells))
	for i, cell := range cells {
		wg.Add(1)
		go func(i int, cell Cell) {
			defer wg.Done()
			_, errs[i] = rd.Dispatch(context.Background(), cell)
		}(i, cell)
	}
	wg.Wait()
	if errs[1] == nil || !strings.Contains(errs[1].Error(), "unknown task") {
		t.Fatalf("the bad cell must fail with its own 404, got %v", errs[1])
	}
	for _, i := range []int{0, 2, 3} {
		if errs[i] != nil {
			t.Errorf("cell %d poisoned by its bad batch-mate: %v", i, errs[i])
		}
	}
	if stats := rd.Stats(); stats[0].Down {
		t.Error("a bad cell must not down the replica")
	}
	if rd.Retries() != 0 {
		t.Errorf("a bad cell must not retry, got %d retries", rd.Retries())
	}
}

// TestRemoteDispatcherBatchLegacyFallback: a replica that predates the /v1
// surface takes batched dispatches through the single-session fallback —
// the run succeeds, no envelope ever reaches the replica, and the
// deprecation note names it exactly once.
func TestRemoteDispatcherBatchLegacyFallback(t *testing.T) {
	if testing.Short() {
		t.Skip("starts HTTP servers")
	}
	models, _ := sharedReport(t)
	tr := &testReplica{models: models, failAfter: -1} // legacy: no v1
	urls := startReplicas(t, tr)
	var mu sync.Mutex
	var logs []string
	rd := batchedDispatcher(t, urls, RemoteOptions{
		Batch: 4,
		Logf: func(format string, args ...any) {
			mu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			mu.Unlock()
		},
	}, 2*time.Second)
	settings, tasks := Matrix(), osworld.All()
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cell := Cell{Task: tasks[i].ID, Setting: settings[0].Label, Runs: 1}
			_, errs[i] = rd.Dispatch(context.Background(), cell)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cell %d through the legacy fallback: %v", i, err)
		}
	}
	if tr.batchCalls.Load() != 0 {
		t.Errorf("a legacy replica received %d batch envelopes", tr.batchCalls.Load())
	}
	if tr.served.Load() != 3 {
		t.Errorf("legacy replica served %d cells, want 3", tr.served.Load())
	}
	mu.Lock()
	joined := strings.Join(logs, "\n")
	mu.Unlock()
	if !strings.Contains(joined, "deprecated") || !strings.Contains(joined, urls[0]) {
		t.Errorf("legacy replica never drew a deprecation note naming it; logs:\n%s", joined)
	}
	if n := strings.Count(joined, "deprecated"); n != 1 {
		t.Errorf("deprecation note logged %d times, want once (the verdict is cached)", n)
	}
}

// TestRunStreamedBatchedEquivalence: the capacity-paced streaming runner and
// batching compose — cells coalesce transparently under RunStreamed and the
// report still renders byte-identically to the sequential run.
func TestRunStreamedBatchedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation over HTTP")
	}
	models, rep := sharedReport(t)
	a := &testReplica{models: models, failAfter: -1, v1: true}
	b := &testReplica{models: models, failAfter: -1, v1: true}
	rd := batchedDispatcher(t, startReplicas(t, a, b), RemoteOptions{InFlight: 4, Batch: 8}, batchLinger)
	got, err := RunStreamed(context.Background(), rd, 3)
	if err != nil {
		t.Fatal(err)
	}
	if renderAll(models, got) != renderAll(models, rep) {
		t.Fatal("streamed batched report differs from sequential in-process run")
	}
	if a.batchCalls.Load()+b.batchCalls.Load() == 0 {
		t.Error("no cell ever travelled the batch surface under streaming")
	}
}
