package bench

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/appkit"
	"repro/internal/serveproto"
	"repro/internal/ung"
)

// ripReplica is an httptest-backed rip replica: it answers POST /v1/rip by
// running real ung.ExpandFrame calls against its own app instance — exactly
// what the daemon's pooled instance does — with the same injectable failure
// modes as testReplica. One instance per replica mirrors production: each
// replica accumulates its own expansion history, and the merged graph must
// come out byte-identical anyway.
type ripReplica struct {
	app     string
	mu      sync.Mutex
	inst    *appkit.App
	factory func() *appkit.App

	// failAfter starts answering 500 (rip and health alike) once this many
	// envelopes have been served (-1 = never fail) — the kill-mid-rip knob.
	failAfter int64
	// conflictBody, when set, answers every envelope with 409 and this raw
	// body.
	conflictBody string
	// rejectID, when set, answers that frame with a per-frame 400 while its
	// envelope-mates still expand.
	rejectID string

	envelopes atomic.Int64 // envelopes served
	frames    atomic.Int64 // frames expanded inside them
	failed    atomic.Int64 // injected envelope failures
	probes    atomic.Int64 // /healthz requests received
}

func newRipReplica(app string) *ripReplica {
	factory := agent.Factories()[app]
	return &ripReplica{app: app, factory: factory, inst: factory(), failAfter: -1}
}

func (rr *ripReplica) failing() bool {
	return rr.failAfter >= 0 && rr.envelopes.Load() >= rr.failAfter
}

func (rr *ripReplica) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/healthz" {
		rr.probes.Add(1)
		if rr.failing() {
			http.Error(w, "injected outage", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(serveproto.Health{OK: true, Apps: 1, Proto: serveproto.ProtoV1})
		return
	}
	if r.URL.Path != "/v1/rip" || r.Method != http.MethodPost {
		http.NotFound(w, r)
		return
	}
	if rr.failing() {
		rr.failed.Add(1)
		http.Error(w, "injected outage", http.StatusInternalServerError)
		return
	}
	if rr.conflictBody != "" {
		rr.failed.Add(1)
		w.WriteHeader(http.StatusConflict)
		fmt.Fprint(w, rr.conflictBody)
		return
	}
	body := new(bytes.Buffer)
	body.ReadFrom(r.Body)
	req, err := serveproto.ParseRipRequest(body.Bytes())
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	resp := serveproto.RipResponse{App: req.App, Context: req.Context}
	rr.mu.Lock()
	for _, f := range req.Frames {
		if f.ID == rr.rejectID && rr.rejectID != "" {
			resp.Results = append(resp.Results, serveproto.RipResult{
				Status: http.StatusBadRequest, Error: "injected frame rejection"})
			continue
		}
		exp := ung.ExpandFrame(rr.inst, req.Context, ung.Frame{ID: f.ID, Path: f.Path})
		we := serveproto.FromExpansion(exp)
		resp.Results = append(resp.Results, serveproto.RipResult{Status: http.StatusOK, Expansion: &we})
		rr.frames.Add(1)
	}
	rr.mu.Unlock()
	rr.envelopes.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// ripGraphBytes snapshots a graph for byte comparison.
func ripGraphBytes(t *testing.T, g *ung.Graph) []byte {
	t.Helper()
	data, err := ung.Encode(g)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestRipShardedMatchesSequential is the distributed half of the merge
// determinism contract: ung.RipDispatched over a RemoteExpander sharding
// across 1, 2, and 4 replicas must produce a graph byte-identical to the
// sequential ung.Rip — same snapshot bytes, every replica carrying its own
// instance history.
func TestRipShardedMatchesSequential(t *testing.T) {
	const app = "Settings"
	factory := agent.Factories()[app]
	seq, _, err := ung.Rip(factory(), ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := ripGraphBytes(t, seq)

	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("replicas=%d", n), func(t *testing.T) {
			reps := make([]*ripReplica, n)
			handlers := make([]http.Handler, n)
			for i := range reps {
				reps[i] = newRipReplica(app)
				handlers[i] = reps[i]
			}
			urls := startRipReplicas(t, handlers...)
			re, err := NewRemoteExpander(urls, app, RemoteOptions{Batch: 8})
			if err != nil {
				t.Fatal(err)
			}
			g, st, err := ung.RipDispatched(factory(), ung.Config{}, re)
			if err != nil {
				t.Fatal(err)
			}
			if got := ripGraphBytes(t, g); !bytes.Equal(got, want) {
				t.Fatalf("sharded graph (%d replicas) is not byte-identical to sequential: %d vs %d bytes",
					n, len(got), len(want))
			}
			if st.Clicks == 0 || st.Workers == 0 {
				t.Errorf("folded stats look empty: %+v", st)
			}
			var served int64
			for _, rep := range reps {
				served += rep.frames.Load()
			}
			// Every expanded frame was served by exactly one replica (no
			// retries happened here), and with n > 1 the work actually spread.
			var cells int
			for _, rs := range re.Stats() {
				cells += rs.Cells
			}
			if served == 0 {
				t.Error("replicas expanded no frames")
			}
			if cells != int(served) {
				t.Errorf("dispatcher counted %d frames, replicas served %d", cells, served)
			}
			if n > 1 {
				busy := 0
				for _, rep := range reps {
					if rep.frames.Load() > 0 {
						busy++
					}
				}
				if busy < 2 {
					t.Errorf("only %d of %d replicas did work", busy, n)
				}
			}
		})
	}
}

// TestRipShardedFailover kills a replica mid-rip: after it has served a few
// envelopes it starts failing (health endpoint too, so it stays down). The
// expander must down-mark it, re-dispatch the lost envelopes to the
// survivor, and still merge a byte-identical graph — the idempotent
// re-dispatch argument, exercised.
func TestRipShardedFailover(t *testing.T) {
	const app = "Settings"
	factory := agent.Factories()[app]
	seq, _, err := ung.Rip(factory(), ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	want := ripGraphBytes(t, seq)

	dying := newRipReplica(app)
	dying.failAfter = 2
	healthy := newRipReplica(app)
	urls := startRipReplicas(t, dying, healthy)
	re, err := NewRemoteExpander(urls, app, RemoteOptions{Batch: 4, ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	g, _, err := ung.RipDispatched(factory(), ung.Config{}, re)
	if err != nil {
		t.Fatal(err)
	}
	if got := ripGraphBytes(t, g); !bytes.Equal(got, want) {
		t.Fatal("graph after mid-rip replica death is not byte-identical to sequential")
	}
	if re.Retries() == 0 {
		t.Error("no retries recorded despite a replica dying mid-rip")
	}
	var downFailures int
	for _, rs := range re.Stats() {
		if strings.Contains(rs.BaseURL, urls[0]) {
			if !rs.Down {
				t.Error("dying replica was never down-marked")
			}
			downFailures = rs.Failures
		}
	}
	if downFailures == 0 {
		t.Error("dying replica shows no failures")
	}
	if healthy.frames.Load() == 0 {
		t.Error("survivor expanded nothing")
	}
}

// TestRipShardedAllDown drives the rip against a fleet with no live
// replicas: every expansion fails, RipDispatched folds the expander and
// surfaces the error, and no sender goroutines are left behind.
func TestRipShardedAllDown(t *testing.T) {
	const app = "Settings"
	factory := agent.Factories()[app]
	dead := newRipReplica(app)
	dead.failAfter = 0
	urls := startRipReplicas(t, dead)
	before := runtime.NumGoroutine()
	tr := &http.Transport{}
	re, err := NewRemoteExpander(urls, app, RemoteOptions{
		ProbeInterval: -1,
		Client:        &http.Client{Transport: tr, Timeout: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, err = ung.RipDispatched(factory(), ung.Config{}, re)
	if err == nil {
		t.Fatal("rip against a dead fleet did not fail")
	}
	if !strings.Contains(err.Error(), "replicas") {
		t.Errorf("error does not name the fleet condition: %v", err)
	}
	// RipDispatched folded the expander on the error path; the sender pool
	// and prober goroutines must be gone (idle keep-alive conns aside).
	tr.CloseIdleConnections()
	waitForGoroutines(t, before)

	// Expand after Close answers an immediate error on the buffered channel.
	res := <-re.Expand("", ung.Frame{ID: "x"})
	if res.Err == nil || !strings.Contains(res.Err.Error(), "closed") {
		t.Errorf("Expand after Close: %+v", res)
	}
}

// TestRipShardedNodeLimit aborts a distributed rip on the node-limit safety
// valve: in-flight remote expansions run to completion and their clicks are
// counted in the error-path stats, undispatched frames are dropped, and no
// goroutine or channel leaks survive the abort.
func TestRipShardedNodeLimit(t *testing.T) {
	const app = "Settings"
	factory := agent.Factories()[app]
	// Size the limit so the abort lands mid-rip — past the seeded initial
	// screens, after remote expansions have been consumed — rather than
	// during seeding, where no envelope has landed yet.
	seq, _, err := ung.Rip(factory(), ung.Config{})
	if err != nil {
		t.Fatal(err)
	}
	limit := seq.NodeCount() / 2
	rep := newRipReplica(app)
	urls := startRipReplicas(t, rep)
	before := runtime.NumGoroutine()
	tr := &http.Transport{}
	re, err := NewRemoteExpander(urls, app, RemoteOptions{
		Batch:  4,
		Client: &http.Client{Transport: tr, Timeout: time.Minute},
	})
	if err != nil {
		t.Fatal(err)
	}
	g, st, err := ung.RipDispatched(factory(), ung.Config{MaxNodes: limit}, re)
	if err == nil {
		t.Fatal("node limit not enforced under distributed rip")
	}
	if g.NodeCount() <= limit {
		t.Fatalf("abort fired at %d nodes, below the %d limit", g.NodeCount(), limit)
	}
	if st.Clicks == 0 {
		t.Error("error-path stats lost the in-flight expansions' clicks")
	}
	tr.CloseIdleConnections()
	waitForGoroutines(t, before)
}

// TestRemoteExpanderPackMismatchFinal pins the 409 verdict rule on the rip
// path: a well-formed PackMismatch body is the replica's considered answer —
// a final per-frame error, with the replica left in rotation.
func TestRemoteExpanderPackMismatchFinal(t *testing.T) {
	const app = "Settings"
	rep := newRipReplica(app)
	mismatch, _ := json.Marshal(serveproto.PackMismatch{
		WantPack: "osworld-w", WantHash: "aaaa",
		HavePack: "other-pack", HaveHash: "bbbb",
	})
	rep.conflictBody = string(mismatch)
	urls := startRipReplicas(t, rep)
	re, err := NewRemoteExpander(urls, app, RemoteOptions{Pack: "osworld-w", PackHash: "aaaa"})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	res := <-re.Expand("", ung.Frame{ID: "x"})
	var pm *PackMismatchError
	if !errors.As(res.Err, &pm) {
		t.Fatalf("want PackMismatchError, got %v", res.Err)
	}
	for _, rs := range re.Stats() {
		if rs.Down || rs.Failures != 0 {
			t.Errorf("pack mismatch must not down-mark: %+v", rs)
		}
	}
	if re.Retries() != 0 {
		t.Errorf("pack mismatch must not re-dispatch, got %d retries", re.Retries())
	}

	// A malformed 409 body, by contrast, reads as a replica failure.
	rep2 := newRipReplica(app)
	rep2.conflictBody = `{"ok":`
	urls2 := startRipReplicas(t, rep2)
	re2, err := NewRemoteExpander(urls2, app, RemoteOptions{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer re2.Close()
	res = <-re2.Expand("", ung.Frame{ID: "x"})
	if errors.As(res.Err, &pm) {
		t.Fatal("malformed 409 body must not read as a pack mismatch")
	}
	if res.Err == nil {
		t.Fatal("malformed 409 delivered a result")
	}
	downed := false
	for _, rs := range re2.Stats() {
		downed = downed || rs.Down
	}
	if !downed {
		t.Error("malformed 409 must down-mark the replica")
	}
}

// TestRemoteExpanderFrameRejectionFinal pins per-frame 4xx independence: a
// rejected frame's error is final (no re-dispatch, no down-mark) while its
// envelope-mates' expansions are delivered normally.
func TestRemoteExpanderFrameRejectionFinal(t *testing.T) {
	const app = "Settings"
	rep := newRipReplica(app)
	rep.rejectID = "definitely-bad"
	urls := startRipReplicas(t, rep)
	re, err := NewRemoteExpander(urls, app, RemoteOptions{Batch: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	// Same context, pushed together: the stack coalesces them into one
	// envelope (batch 2), so the rejection and the expansion share a round
	// trip.
	good := re.Expand("", ung.Frame{ID: "no-such-control"})
	bad := re.Expand("", ung.Frame{ID: "definitely-bad"})
	if res := <-bad; res.Err == nil || !strings.Contains(res.Err.Error(), "definitely-bad") {
		t.Errorf("rejected frame: %+v", res)
	}
	if res := <-good; res.Err != nil {
		t.Errorf("envelope-mate of a rejected frame failed: %v", res.Err)
	} else if res.Expansion.Outcome != ung.ExpandSkipped {
		t.Errorf("unknown control should expand to a skip, got %v", res.Expansion.Outcome)
	}
	if re.Retries() != 0 {
		t.Errorf("per-frame rejection must not re-dispatch, got %d retries", re.Retries())
	}
	for _, rs := range re.Stats() {
		if rs.Down || rs.Failures != 0 {
			t.Errorf("per-frame rejection must not down-mark: %+v", rs)
		}
	}
}

// TestRemoteExpanderCloseDropsUndispatched closes an expander with frames
// still parked on its stack: Close returns without delivering them (their
// buffered channels are garbage collected), is idempotent, and reports the
// lifetime stats both times.
func TestRemoteExpanderCloseDropsUndispatched(t *testing.T) {
	const app = "Settings"
	rep := newRipReplica(app)
	urls := startRipReplicas(t, rep)
	re, err := NewRemoteExpander(urls, app, RemoteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// One frame we wait on, so at least one envelope lands...
	res := <-re.Expand("", ung.Frame{ID: "no-such-control"})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	// ...then a pile we never read before closing.
	for i := 0; i < 50; i++ {
		re.Expand("", ung.Frame{ID: fmt.Sprintf("ghost-%d", i)})
	}
	st1 := re.Close()
	st2 := re.Close()
	if st1 != st2 {
		t.Errorf("Close is not idempotent: %+v vs %+v", st1, st2)
	}
	if st1.Workers == 0 {
		t.Errorf("lifetime stats lost the sender count: %+v", st1)
	}
}

// startRipReplicas serves each handler on an httptest server and returns the
// base URLs.
func startRipReplicas(t *testing.T, handlers ...http.Handler) []string {
	t.Helper()
	urls := make([]string, len(handlers))
	for i, h := range handlers {
		srv := httptest.NewServer(h)
		t.Cleanup(srv.Close)
		urls[i] = srv.URL
	}
	return urls
}

// waitForGoroutines polls until the goroutine count returns to (roughly) the
// baseline, failing if leaked senders or probers persist.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		// httptest keep-alive conns and the test runner itself wobble by a
		// few goroutines; a leak of the sender pool would exceed that.
		if runtime.NumGoroutine() <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			t.Errorf("goroutines leaked: %d before, %d after", baseline, runtime.NumGoroutine())
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
}
