package bench

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/agent"
)

// TestRunStreamedLocalEquivalence: the streaming work queue must render the
// same bytes as the sequential Run and the fixed fan-out.
func TestRunStreamedLocalEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	models, rep := sharedReport(t)
	got, err := RunStreamed(context.Background(), NewLocalDispatcher(models, 1), 3)
	if err != nil {
		t.Fatal(err)
	}
	if renderAll(models, got) != renderAll(models, rep) {
		t.Fatal("streamed report differs from sequential in-process run")
	}
}

// TestRunStreamedElasticMembership: a replica added mid-stream picks up
// load — the capacity poll sees the fleet grow — and the report is still
// byte-identical.
func TestRunStreamedElasticMembership(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation over HTTP")
	}
	models, rep := sharedReport(t)
	a := &testReplica{models: models, failAfter: -1}
	b := &testReplica{models: models, failAfter: -1}
	urls := startReplicas(t, a, b)
	rd, err := NewRemoteDispatcher(urls[:1], RemoteOptions{InFlight: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()

	joined := make(chan error, 1)
	go func() {
		// Join b once a has demonstrably started serving, mid-stream.
		deadline := time.Now().Add(10 * time.Second)
		for a.served.Load() < 3 && time.Now().Before(deadline) {
			time.Sleep(5 * time.Millisecond)
		}
		joined <- rd.AddReplica(urls[1])
	}()
	got, err := RunStreamed(context.Background(), rd, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := <-joined; err != nil {
		t.Fatalf("mid-stream AddReplica: %v", err)
	}
	if renderAll(models, got) != renderAll(models, rep) {
		t.Fatal("streamed report with a mid-run join differs from sequential run")
	}
	if b.served.Load() == 0 {
		t.Error("the replica added mid-stream never served a cell")
	}
	if a.served.Load()+b.served.Load() != int64(len(GridCells(3))) {
		t.Errorf("replicas served %d+%d cells, want %d", a.served.Load(), b.served.Load(), len(GridCells(3)))
	}
}

// TestRunStreamedAllDown: with every replica failing and probing disabled,
// the stream must surface the terminal error instead of parking on the
// capacity poll.
func TestRunStreamedAllDown(t *testing.T) {
	if testing.Short() {
		t.Skip("grid fan-out over HTTP")
	}
	models, _ := sharedReport(t)
	dead := &testReplica{models: models, failAfter: 0}
	rd, err := NewRemoteDispatcher(startReplicas(t, dead), RemoteOptions{ProbeInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer rd.Close()
	if _, err := RunStreamed(context.Background(), rd, 1); err == nil ||
		!strings.Contains(err.Error(), "all replicas failed") {
		t.Fatalf("stream over dead replicas must fail, got %v", err)
	}
}

// TestRunStreamedPlumbing mirrors the RunDispatched plumbing contract for
// the streaming mode: runs<=0 aggregates the zeroed report without a
// single dispatch.
func TestRunStreamedPlumbing(t *testing.T) {
	called := false
	repo, err := RunStreamed(context.Background(), fakeDispatcher(func(context.Context, Cell) ([]agent.Outcome, error) {
		called = true
		return nil, errors.New("no cell should dispatch")
	}), 0)
	if err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("runs=0 dispatched a cell")
	}
	if len(repo.Rows) != len(Matrix()) || repo.Rows[0].Total != 0 {
		t.Errorf("report rows out of shape: %d rows", len(repo.Rows))
	}
}

// TestRunDispatchedCancellationOrdering pins the error-precedence contract
// shared by both fan-out modes: a dispatch error always beats the
// cancellation it triggers, and a pure external cancellation surfaces as
// ctx.Err().
func TestRunDispatchedCancellationOrdering(t *testing.T) {
	run := func(name string, f func(ctx context.Context, d Dispatcher, runs int) (*Report, error)) {
		t.Run(name+"/canceled while feeding", func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			started := make(chan struct{}, 1)
			go func() {
				<-started
				cancel()
			}()
			_, err := f(ctx, fakeDispatcher(func(ctx context.Context, cell Cell) ([]agent.Outcome, error) {
				select {
				case started <- struct{}{}:
				default:
				}
				<-ctx.Done() // block until the external cancel lands
				return nil, ctx.Err()
			}), 1)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("want context.Canceled, got %v", err)
			}
		})
		t.Run(name+"/dispatch error beats collateral cancel", func(t *testing.T) {
			boom := errors.New("boom")
			var calls atomic.Int64
			_, err := f(context.Background(), fakeDispatcher(func(ctx context.Context, cell Cell) ([]agent.Outcome, error) {
				if calls.Add(1) == 1 {
					return nil, boom
				}
				// Later cells see the cancellation the first error caused;
				// their ctx.Err returns must not displace it.
				<-ctx.Done()
				return nil, ctx.Err()
			}), 1)
			if !errors.Is(err, boom) {
				t.Fatalf("first dispatch error must win, got %v", err)
			}
		})
		t.Run(name+"/external cancel with healthy dispatcher", func(t *testing.T) {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			var once sync.Once
			_, err := f(ctx, fakeDispatcher(func(ctx context.Context, cell Cell) ([]agent.Outcome, error) {
				once.Do(cancel)
				return make([]agent.Outcome, cell.Runs), nil
			}), 1)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("pure external cancel must return ctx.Err, got %v", err)
			}
		})
	}
	run("dispatched", func(ctx context.Context, d Dispatcher, runs int) (*Report, error) {
		return RunDispatched(ctx, d, runs, 2)
	})
	run("streamed", RunStreamed)
}
