package bench

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/taskpack"
)

// CapacityReporter is implemented by dispatchers whose capacity changes at
// runtime — RemoteDispatcher's is the in-flight cap times the replicas in
// rotation. RunStreamedIn paces its work queue against it; dispatchers
// without it (LocalDispatcher) stream at GOMAXPROCS.
type CapacityReporter interface {
	Capacity() int
}

// streamPoll is how often the streaming feeder re-reads capacity while
// saturated. Capacity grows without a completion event when a replica
// recovers or joins; polling bounds how long that new headroom sits idle.
const streamPoll = 100 * time.Millisecond

// RunStreamed executes the full evaluation grid over the compiled-in task
// pack in streaming mode. See RunStreamedIn.
func RunStreamed(ctx context.Context, d Dispatcher, runs int) (*Report, error) {
	return RunStreamedIn(ctx, taskpack.Builtin(), d, runs)
}

// RunStreamedIn executes a task registry's full evaluation grid as a work
// queue: instead of pre-sharding the grid over a fixed worker pool, the
// feeder dispatches the next cell whenever the fleet has capacity for it,
// re-reading Capacity() as it goes. Concurrency therefore follows the
// fleet — it shrinks when replicas fail, grows when they recover or join
// mid-run — which is what a long-lived serving loop needs and a one-shot
// benchmark pool cannot do.
//
// Aggregation is unchanged: outcomes land in grid-order slots and are
// folded sequentially (aggregateGrid), so the report is byte-identical to
// RunDispatchedIn and to the in-process Run no matter how capacity
// fluctuated. Error semantics match RunDispatchedIn: first dispatch error
// cancels and wins; a pure external cancellation returns ctx.Err().
//
// When every replica is down the reported capacity is zero; the feeder
// still keeps one dispatch in flight so the run surfaces the terminal
// "all replicas failed" error — or rides a recovery — instead of parking
// forever on a poll loop.
func RunStreamedIn(ctx context.Context, reg *taskpack.Registry, d Dispatcher, runs int) (*Report, error) {
	var cells []Cell
	if runs > 0 {
		cells = GridCellsIn(reg, runs)
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	g := newGridRun(d, cells, cancel)

	capacity := func() int { return runtime.GOMAXPROCS(0) }
	if cr, ok := d.(CapacityReporter); ok {
		capacity = func() int {
			if c := cr.Capacity(); c > 0 {
				return c
			}
			return 1
		}
	}

	completed := make(chan struct{}, len(cells))
	poll := time.NewTicker(streamPoll)
	defer poll.Stop()
	var wg sync.WaitGroup
	inFlight := 0
feed:
	for i := 0; i < len(cells); {
		if ctx.Err() != nil {
			break feed
		}
		if inFlight >= capacity() {
			select {
			case <-completed:
				inFlight--
			case <-poll.C:
				// Re-read capacity: a recovered or newly added replica may
				// have opened headroom with no completion to signal it.
			case <-ctx.Done():
				break feed
			}
			continue
		}
		idx := i
		i++
		inFlight++
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.dispatch(ctx, idx)
			completed <- struct{}{}
		}()
	}
	wg.Wait()

	if err := g.err(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return aggregateGrid(reg, g.out, runs), nil
}
