package bench

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/internal/agent"
	"repro/internal/osworld"
	"repro/internal/serveproto"
	"repro/internal/taskpack"
)

// TestPackLoadedGridEquivalence is the behavior-preservation proof for the
// declarative task-pack refactor: the built-in grid exported to pack bytes,
// loaded back through the strict decoder, and run through the dispatcher
// seam renders a report byte-identical to the compiled-in sequential run —
// and the loaded tasks are structurally identical to the compiled-in ones,
// so nothing survives only because the renderer doesn't look at it.
func TestPackLoadedGridEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-matrix evaluation")
	}
	p, err := taskpack.BuiltinPack()
	if err != nil {
		t.Fatal(err)
	}
	data, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	reg, err := taskpack.Load(data)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(reg.Tasks(), osworld.All()) {
		t.Fatal("pack-loaded tasks are not structurally identical to the compiled-in grid")
	}
	if reg.Hash() != taskpack.Builtin().Hash() {
		t.Fatalf("loaded hash %s differs from builtin hash %s", reg.Hash(), taskpack.Builtin().Hash())
	}

	models, rep := sharedReport(t)
	seq := renderAll(models, rep)
	for _, concurrency := range []int{1, 8} {
		got, err := RunDispatchedIn(context.Background(), reg, NewLocalDispatcherIn(reg, models, 1), 3, concurrency)
		if err != nil {
			t.Fatalf("concurrency=%d: %v", concurrency, err)
		}
		if renderAll(models, got) != seq {
			t.Fatalf("concurrency=%d: pack-loaded report differs from the compiled-in sequential run", concurrency)
		}
	}
}

// TestRemoteDispatcherSendsPackIdentity pins the handshake fields on the
// wire: a dispatcher built with pack options stamps every session request
// with them.
func TestRemoteDispatcherSendsPackIdentity(t *testing.T) {
	var got serveproto.SessionRequest
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		json.NewEncoder(w).Encode(serveproto.SessionResponse{
			App: got.App, Task: got.Task, Setting: got.Setting, Runs: got.Runs,
			Outcomes: []agent.Outcome{},
		})
	}))
	t.Cleanup(srv.Close)

	rd, err := NewRemoteDispatcher([]string{srv.URL}, RemoteOptions{
		Pack: "custom", PackHash: "abc123",
	})
	if err != nil {
		t.Fatal(err)
	}
	task := osworld.All()[0]
	// The empty outcome slice fails the runs-count check downstream; the
	// wire fields are what this test is about.
	rd.Dispatch(context.Background(), Cell{App: task.App, Task: task.ID, Setting: Matrix()[0].Label, Runs: 1})
	if got.Pack != "custom" || got.PackHash != "abc123" {
		t.Errorf("session request carried pack=%q hash=%q, want custom/abc123", got.Pack, got.PackHash)
	}
}

// TestRemoteDispatcherPackMismatch pins the 409 path: a replica rejecting
// the handshake yields a *PackMismatchError naming the replica and both
// identities, immediately (no failover to other replicas, no down-mark —
// the replica is healthy, the configuration is wrong).
func TestRemoteDispatcherPackMismatch(t *testing.T) {
	mismatch := serveproto.PackMismatch{
		WantPack: "custom", WantHash: "abc", HavePack: "osworld-w", HaveHash: "def",
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		json.NewEncoder(w).Encode(mismatch)
	}))
	t.Cleanup(srv.Close)

	rd, err := NewRemoteDispatcher([]string{srv.URL}, RemoteOptions{Pack: "custom", PackHash: "abc"})
	if err != nil {
		t.Fatal(err)
	}
	task := osworld.All()[0]
	_, err = rd.Dispatch(context.Background(), Cell{Task: task.ID, Setting: Matrix()[0].Label, Runs: 1})
	var pm *PackMismatchError
	if !errors.As(err, &pm) {
		t.Fatalf("want *PackMismatchError, got %T: %v", err, err)
	}
	if pm.Replica != srv.URL {
		t.Errorf("error names replica %q, want %q", pm.Replica, srv.URL)
	}
	if pm.WantPack != "custom" || pm.WantHash != "abc" || pm.HavePack != "osworld-w" || pm.HaveHash != "def" {
		t.Errorf("mismatch identities not carried through: %+v", pm)
	}
	if live := rd.Live(); len(live) != 1 {
		t.Errorf("mismatched replica was down-marked: live=%v", live)
	}
}
