// Package osworld defines the evaluation benchmark: 39 single-application
// tasks over the simulated Word, Excel, and PowerPoint — the shape of the
// OSWorld-W (Windows) subset the paper evaluates (§5.1) — plus the Settings
// and Files applications of the extended catalog, which stress category
// trees, confirm dialogs, list selection state, and scroll viewports. Every
// task builds a fresh application instance, carries a ground-truth semantic
// plan annotated with difficulty and failure-trap metadata, and verifies
// success against real application state after the agent runs.
package osworld

import (
	"repro/internal/appkit"
	"repro/internal/uia"
)

// StepKind classifies ground-truth plan steps.
type StepKind int

// Plan step kinds.
const (
	StepAccess   StepKind = iota // navigate to a functional control and click
	StepInput                    // access an edit control and type
	StepShortcut                 // press a key combination
	StepState                    // drive a control to a target state (composite in GUI)
	StepObserve                  // retrieve information (answer tasks)
)

// Target names a functional control in interface-agnostic terms; the agent
// resolves it against the offline model (DMI) or the live UI (GUI).
type Target struct {
	// Primary is the control's primary identifier (automation id, or name
	// for unnamed-id controls).
	Primary string
	// GIDContains optionally disambiguates by requiring this substring in
	// the synthesized control id (e.g. the containing pane's id).
	GIDContains string
	// Via selects the entry path for shared-subtree targets: the primary
	// id of the opener whose semantics the task needs (Font Color vs
	// Underline Color).
	Via string
}

// StateOp describes a state or observation declaration target.
type StateOp struct {
	Op          string // "scrollbar", "select_lines", "select_paragraphs", "select_controls", "set_range_value"
	ControlName string
	ControlType uia.ControlType
	H, V        float64  // scrollbar percentages (uia.NoScroll to skip an axis)
	Start, End  int      // selection ranges (1-based)
	Names       []string // select_controls targets, by on-screen name
	Value       float64  // set_range_value
}

// PlanStep is one semantic step of the ground-truth plan.
type PlanStep struct {
	Kind   StepKind
	Target Target
	Text   string // StepInput
	Key    string // StepShortcut
	State  *StateOp

	// Ambiguity raises the semantic-error probability for this decision;
	// VisualDiff raises the grounding-error probability of imperative
	// execution.
	Ambiguity  float64
	VisualDiff float64

	// Trap models a specific plausible misinterpretation (the paper's
	// failure taxonomy): when it fires, the agent picks TrapAlt instead
	// of Target (or skips the step if TrapAlt is nil) and tags the
	// failure with TrapKind.
	TrapKind   string  // "control-semantics", "subtle-semantics", "ambiguous-task"
	TrapWeight float64 // multiplier on the profile's ControlSem channel
	TrapAlt    *Target
}

// Env is a live task environment: a fresh application, the probe that
// resolves verify-condition paths against its state, and the bound verify
// condition.
type Env struct {
	App  *appkit.App
	Kind string // "Word", "Excel", "PowerPoint", "Settings", "Files"

	// Answer records the agent's reply for observation tasks.
	Answer string

	// Expected is the ground-truth answer for observation tasks ("" for
	// action tasks).
	Expected string

	// probe resolves condition paths against the live application state.
	probe StateProbe

	// verify is the task's declarative success condition.
	verify Cond
}

// Verify reports task success from application state (and the recorded
// answer, for observation tasks). A condition that fails to evaluate —
// possible only for tasks that bypassed validation — reads as failure.
func (e *Env) Verify() bool {
	ok, err := e.verify.Eval(e)
	return err == nil && ok
}

// Probe resolves one verify-condition path against the live application
// state (exported for pack validators and focused tests).
func (e *Env) Probe(path string) (any, error) { return e.probe(path) }

// Task is one benchmark scenario — pure data. The environment it runs in is
// derived by Build from the app's compiled-in factory, the declarative
// Setup ops, and the Verify condition, which is what lets a task cross
// process boundaries as JSON (internal/taskpack) with no loss.
type Task struct {
	ID          string
	App         string
	Description string
	// Ambiguity is task-level instruction vagueness; it scales the
	// "ambiguous task description" failure channel.
	Ambiguity float64
	// Expected is the ground-truth answer for observation tasks.
	Expected string
	// Setup declares the environment deltas applied to a fresh application.
	Setup []SetupOp
	// Verify is the declarative success condition over application state.
	Verify Cond
	Plan   []PlanStep
}

// Failure channel tags (paper §5.6). Policy-level channels reflect
// semantic planning; mechanism-level channels reflect navigation and
// interaction.
const (
	FailAmbiguousTask = "ambiguous-task"
	FailControlSem    = "control-semantics"
	FailSubtleSem     = "subtle-semantics"
	FailVisualSem     = "visual-semantic"
	FailTopology      = "topology-inaccuracy"
	FailGroundingNav  = "grounding-navigation"
	FailComposite     = "composite-interaction"
	FailStepCap       = "step-cap"
	FailExecution     = "execution"
)

// PolicyLevel reports whether a failure channel is policy-level (semantic
// planning) as opposed to mechanism-level (navigation/interaction); the
// split of Figure 6.
func PolicyLevel(channel string) bool {
	switch channel {
	case FailAmbiguousTask, FailControlSem, FailSubtleSem:
		return true
	}
	return false
}
