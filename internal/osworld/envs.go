package osworld

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/apps/filemgr"
	"repro/internal/apps/settings"
	"repro/internal/office/excel"
	"repro/internal/office/slides"
	"repro/internal/office/word"
)

// Apps lists the application names tasks may target, in catalog order. The
// per-app env builders behind these names — factory, setup-op interpreter,
// state-probe vocabulary — are the only compiled-in part of a task; all
// other task content is data (internal/taskpack).
func Apps() []string {
	return []string{"Word", "Excel", "PowerPoint", "Settings", "Files"}
}

// Build constructs the task's live environment: a fresh application with
// the setup ops applied and the verify condition bound. The compiled-in
// grid is exhaustively tested and loaded packs are validated before they
// run, so a build failure here is a programming bug, and Build panics the
// way the old closure-based builders did on impossible state.
func (t Task) Build() *Env {
	env, err := t.BuildEnv()
	if err != nil {
		panic(fmt.Sprintf("osworld: build %s: %v", t.ID, err))
	}
	return env
}

// BuildEnv is Build with the error surfaced, for validators that must
// reject a bad task instead of crashing.
func (t Task) BuildEnv() (*Env, error) {
	var (
		env *Env
		err error
	)
	switch t.App {
	case "Word":
		env, err = wordEnv(t.Setup)
	case "Excel":
		env, err = excelEnv(t.Setup)
	case "PowerPoint":
		env, err = slidesEnv(t.Setup)
	case "Settings":
		env, err = settingsEnv(t.Setup)
	case "Files":
		env, err = filesEnv(t.Setup)
	default:
		return nil, fmt.Errorf("unknown application %q", t.App)
	}
	if err != nil {
		return nil, err
	}
	env.Kind = t.App
	env.Expected = t.Expected
	env.verify = t.Verify
	return env, nil
}

// Check builds a fresh environment and evaluates the verify condition once,
// surfacing unknown setup ops, unknown condition ops, and paths outside the
// application's probe vocabulary — the semantic half of pack validation.
func (t Task) Check() error {
	env, err := t.BuildEnv()
	if err != nil {
		return err
	}
	if _, err := t.Verify.Eval(env); err != nil {
		return fmt.Errorf("verify: %w", err)
	}
	return nil
}

// errPath reports a path outside an application's probe vocabulary.
func errPath(app, path string) error {
	return fmt.Errorf("unknown %s state path %q", app, path)
}

// errSetup reports a setup op an application's builder does not interpret.
func errSetup(app string, op SetupOp) error {
	return fmt.Errorf("setup op %q not supported by %s", op.Op, app)
}

// Word -------------------------------------------------------------------------

func wordEnv(setup []SetupOp) (*Env, error) {
	var texts []string
	for _, op := range setup {
		if op.Op != SetupWordParagraphs {
			return nil, errSetup("Word", op)
		}
		texts = op.Texts
	}
	w := word.New(texts...)
	probe := func(path string) (any, error) {
		switch path {
		case "orientation":
			return w.Doc.Orientation, nil
		case "saved":
			return w.Doc.Saved, nil
		case "header":
			return w.Doc.Header, nil
		case "sel-start":
			return float64(w.Doc.SelStart), nil
		case "sel-end":
			return float64(w.Doc.SelEnd), nil
		case "table.last.rows", "table.last.cols":
			tbl, ok := w.Doc.LastTable()
			if !ok {
				return nil, nil
			}
			if strings.HasSuffix(path, "rows") {
				return float64(tbl.Rows), nil
			}
			return float64(tbl.Cols), nil
		}
		if text, ok := strings.CutPrefix(path, "occurrences."); ok {
			return float64(w.Doc.CountOccurrences(text)), nil
		}
		if rest, ok := strings.CutPrefix(path, "para."); ok {
			idx, prop, found := strings.Cut(rest, ".")
			n, err := strconv.Atoi(idx)
			if !found || err != nil || n < 1 {
				return nil, errPath("Word", path)
			}
			if n > len(w.Doc.Paras) {
				return nil, nil
			}
			p := w.Doc.Paras[n-1]
			switch prop {
			case "font-color":
				return p.FontColor, nil
			case "underline":
				return p.Underline, nil
			case "underline-color":
				return p.UnderlineColor, nil
			case "bold":
				return p.Bold, nil
			case "line-spacing":
				return p.LineSpacing, nil
			}
		}
		return nil, errPath("Word", path)
	}
	return &Env{App: w.App, probe: probe}, nil
}

// Excel ------------------------------------------------------------------------

func excelEnv(setup []SetupOp) (*Env, error) {
	x := excel.New()
	for _, op := range setup {
		if op.Op != SetupExcelSetCell {
			return nil, errSetup("Excel", op)
		}
		v, ok := op.Value.(string)
		if !ok {
			return nil, fmt.Errorf("setup op %q: cell value must be a string, got %T", op.Op, op.Value)
		}
		if _, _, ok := excel.ParseRef(op.Ref); !ok {
			return nil, fmt.Errorf("setup op %q: invalid cell ref %q", op.Op, op.Ref)
		}
		x.Sheet.SetValue(op.Ref, v)
	}
	probe := func(path string) (any, error) {
		switch path {
		case "frozen-top-row":
			return x.Sheet.FrozenTopRow, nil
		case "frozen-first-col":
			return x.Sheet.FrozenFirstCol, nil
		case "used-rows":
			return float64(x.Sheet.UsedRows()), nil
		case "cond-rules":
			return float64(len(x.Sheet.CondRules)), nil
		case "sel-from":
			return x.Sheet.SelFrom, nil
		case "sel-to":
			return x.Sheet.SelTo, nil
		}
		if kind, ok := strings.CutPrefix(path, "charts."); ok {
			for _, c := range x.Sheet.Charts {
				if c == kind {
					return true, nil
				}
			}
			return false, nil
		}
		if col, ok := strings.CutPrefix(path, "col-width."); ok {
			return x.Sheet.ColWidth[col], nil
		}
		if rest, ok := strings.CutPrefix(path, "cell."); ok {
			ref, prop, found := strings.Cut(rest, ".")
			if !found {
				return nil, errPath("Excel", path)
			}
			c := x.Sheet.Cell(ref)
			if c == nil {
				return nil, errPath("Excel", path)
			}
			switch prop {
			case "value":
				return c.Value, nil
			case "format":
				return c.Format, nil
			case "fill":
				return c.Fill, nil
			case "font-color":
				return c.FontColor, nil
			case "bold":
				return c.Bold, nil
			}
		}
		return nil, errPath("Excel", path)
	}
	return &Env{App: x.App, probe: probe}, nil
}

// PowerPoint -------------------------------------------------------------------

// maxDeckSlides bounds declarative deck sizes (a real deck is far smaller;
// this only guards pack validation against allocation abuse).
const maxDeckSlides = 500

func slidesEnv(setup []SetupOp) (*Env, error) {
	count := 0 // slides.New treats <= 0 as the default deck
	for _, op := range setup {
		if op.Op != SetupSlidesDeck {
			return nil, errSetup("PowerPoint", op)
		}
		// Bound the deck so validating an untrusted pack cannot allocate an
		// absurd number of slides.
		if op.Count < 0 || op.Count > maxDeckSlides {
			return nil, fmt.Errorf("setup op %q: deck size %d outside [0,%d]", op.Op, op.Count, maxDeckSlides)
		}
		count = op.Count
	}
	p := slides.New(count)
	probe := func(path string) (any, error) {
		switch path {
		case "slide-count":
			return float64(len(p.Deck.Slides)), nil
		case "current-slide.layout":
			return p.Deck.CurrentSlide().Layout, nil
		case "slide-size":
			return p.Deck.SlideSize, nil
		case "picture-border":
			return p.PictureBorder, nil
		case "thumb-top":
			return float64(p.ThumbTop()), nil
		}
		if color, ok := strings.CutPrefix(path, "all-backgrounds."); ok {
			return p.Deck.AllBackgrounds(color), nil
		}
		if tr, ok := strings.CutPrefix(path, "all-transitions."); ok {
			return p.Deck.AllTransitions(tr), nil
		}
		if name, ok := strings.CutPrefix(path, "context."); ok {
			return p.ContextActive(name), nil
		}
		if rest, ok := strings.CutPrefix(path, "slide."); ok {
			idx, prop, found := strings.Cut(rest, ".")
			n, err := strconv.Atoi(idx)
			if !found || err != nil || n < 1 {
				return nil, errPath("PowerPoint", path)
			}
			if n > len(p.Deck.Slides) {
				return nil, nil
			}
			s := p.Deck.Slides[n-1]
			switch prop {
			case "hidden":
				return s.Hidden, nil
			case "layout":
				return s.Layout, nil
			case "background":
				return s.Background, nil
			case "transition":
				return s.Transition, nil
			case "title.text", "title.font-size":
				t := s.Title()
				if t == nil {
					return nil, nil
				}
				if prop == "title.text" {
					return t.Text, nil
				}
				return t.FontSize, nil
			}
		}
		return nil, errPath("PowerPoint", path)
	}
	return &Env{App: p.App, probe: probe}, nil
}

// Settings ---------------------------------------------------------------------

func settingsEnv(setup []SetupOp) (*Env, error) {
	s := settings.New()
	for _, op := range setup {
		if op.Op != SetupSettingsSet {
			return nil, errSetup("Settings", op)
		}
		if err := setSettingsField(s.State, op); err != nil {
			return nil, err
		}
	}
	probe := func(path string) (any, error) {
		st := s.State
		switch path {
		case "state.brightness":
			return st.Brightness, nil
		case "state.volume":
			return st.Volume, nil
		case "state.night-light":
			return st.NightLight, nil
		case "state.theme":
			return st.Theme, nil
		case "state.accent-color":
			return st.AccentColor, nil
		case "state.background-color":
			return st.BackgroundColor, nil
		case "state.wifi":
			return st.WiFi, nil
		case "state.vpn":
			return st.VPN, nil
		case "state.proxy-on":
			return st.ProxyOn, nil
		case "state.proxy-server":
			return st.ProxyServer, nil
		case "state.network-resets":
			return float64(st.NetworkResets), nil
		case "state.auto-time-zone":
			return st.AutoTimeZone, nil
		case "state.time-zone":
			return st.TimeZone, nil
		}
		return nil, errPath("Settings", path)
	}
	return &Env{App: s.App, probe: probe}, nil
}

// setSettingsField applies one settings-set op; the field vocabulary covers
// the network panel the grid's setup needs.
func setSettingsField(st *settings.State, op SetupOp) error {
	setBool := func(dst *bool) error {
		v, ok := op.Value.(bool)
		if !ok {
			return fmt.Errorf("setup op %q: field %q takes a bool, got %T", op.Op, op.Path, op.Value)
		}
		*dst = v
		return nil
	}
	switch op.Path {
	case "vpn":
		return setBool(&st.VPN)
	case "proxy-on":
		return setBool(&st.ProxyOn)
	case "wifi":
		return setBool(&st.WiFi)
	case "night-light":
		return setBool(&st.NightLight)
	case "proxy-server":
		v, ok := op.Value.(string)
		if !ok {
			return fmt.Errorf("setup op %q: field %q takes a string, got %T", op.Op, op.Path, op.Value)
		}
		st.ProxyServer = v
		return nil
	}
	return fmt.Errorf("setup op %q: unknown settings field %q", op.Op, op.Path)
}

// Files ------------------------------------------------------------------------

func filesEnv(setup []SetupOp) (*Env, error) {
	if len(setup) > 0 {
		return nil, errSetup("Files", setup[0])
	}
	f := filemgr.New()
	probe := func(path string) (any, error) {
		switch path {
		case "current":
			return f.Current, nil
		case "show-hidden":
			return f.ShowHidden, nil
		case "view-top":
			return float64(f.ViewTop()), nil
		case "text-clipboard":
			return f.FS.TextClipboard, nil
		case "preview-name":
			if p := f.PreviewOf(); p != nil {
				return p.Name, nil
			}
			return "", nil
		}
		if rest, ok := strings.CutPrefix(path, "has."); ok {
			folder, name, found := strings.Cut(rest, ".")
			if !found {
				return nil, errPath("Files", path)
			}
			return f.FS.Has(folder, name), nil
		}
		if name, ok := strings.CutPrefix(path, "trashed."); ok {
			return f.FS.Trashed(name), nil
		}
		return nil, errPath("Files", path)
	}
	return &Env{App: f.App, probe: probe}, nil
}
